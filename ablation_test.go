package passcloud

// Ablation tests: each design decision the paper argues for is tested by
// building the rejected alternative and demonstrating the failure the paper
// predicts.
//
//   - §4.1: a provenance database cached at clients and stored as one S3
//     object corrupts under concurrent update ("the database can become
//     corrupt if two clients pick up the same version of the database and
//     update it independently");
//   - §4.2: MD5 without the nonce misses the same-content overwrite
//     ("new provenance will be generated but the MD5sum of the data will
//     be the same as before");
//   - §4.3: renaming the temporary object instead of COPY-then-delete
//     breaks idempotent replay ("If we instead rename the temporary object
//     ... it cannot re-run the operations on system restart").

import (
	"context"
	"errors"
	"testing"
	"time"

	"passcloud/internal/cloud"
	"passcloud/internal/cloud/s3"
	"passcloud/internal/core/sdbprov"
	"passcloud/internal/prov"
)

// TestAblationSharedDatabaseOnS3LosesUpdates builds the §4.1 rejected
// design: the whole provenance "database" is one S3 object that clients
// download, modify, and upload. Two clients racing on it lose one client's
// records — which is exactly why the paper stores provenance per object.
func TestAblationSharedDatabaseOnS3LosesUpdates(t *testing.T) {
	ctx := context.Background()
	_ = ctx
	cl := cloud.New(cloud.Config{Seed: 3})
	if err := cl.S3.CreateBucket("pass"); err != nil {
		t.Fatal(err)
	}
	const dbKey = "provdb"

	// Seed the shared database with one record.
	seed := []prov.Record{prov.NewString(prov.Ref{Object: "/seed", Version: 0}, prov.AttrType, prov.TypeFile)}
	blob, err := prov.MarshalJSONRecords(seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.S3.Put("pass", dbKey, blob, nil); err != nil {
		t.Fatal(err)
	}

	// Both clients download (cache) the same version...
	readDB := func() []prov.Record {
		obj, err := cl.S3.Get("pass", dbKey)
		if err != nil {
			t.Fatal(err)
		}
		records, err := prov.UnmarshalJSONRecords(obj.Body)
		if err != nil {
			t.Fatal(err)
		}
		return records
	}
	cacheA := readDB()
	cacheB := readDB()

	// ...and independently add their own records, then upload.
	recA := prov.NewString(prov.Ref{Object: "/from-a", Version: 0}, prov.AttrType, prov.TypeFile)
	recB := prov.NewString(prov.Ref{Object: "/from-b", Version: 0}, prov.AttrType, prov.TypeFile)
	writeDB := func(records []prov.Record) {
		blob, err := prov.MarshalJSONRecords(records)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.S3.Put("pass", dbKey, blob, nil); err != nil {
			t.Fatal(err)
		}
	}
	writeDB(append(cacheA, recA))
	writeDB(append(cacheB, recB)) // last PUT wins

	final := readDB()
	subjects := map[prov.Ref]bool{}
	for _, r := range final {
		subjects[r.Subject] = true
	}
	if !subjects[recB.Subject] {
		t.Fatal("second writer's record missing; LWW did not apply")
	}
	if subjects[recA.Subject] {
		t.Fatal("both records survived; the shared-database design did not exhibit the lost update — the ablation premise is wrong")
	}
	// The paper's conclusion: client A's provenance is silently gone.
}

// TestAblationMD5WithoutNonceMissesSameContentOverwrite removes the nonce
// from the consistency record and shows the detector goes blind exactly
// where §4.2 predicts: a file overwritten with identical bytes.
func TestAblationMD5WithoutNonceMissesSameContentOverwrite(t *testing.T) {
	data := []byte("identical bytes both times")

	// Version 0 and version 1 store the same bytes.
	// Without a nonce, the consistency records collide...
	noNonceV0 := sdbprov.ConsistencyMD5(data, "")
	noNonceV1 := sdbprov.ConsistencyMD5(data, "")
	if noNonceV0 != noNonceV1 {
		t.Fatal("setup broken: same data hashed differently")
	}
	// ...so a reader holding version 1's provenance and version 0's stale
	// data verifies "consistent" — a silent read-correctness violation.
	staleDataDigest := noNonceV0
	if staleDataDigest != noNonceV1 {
		t.Fatal("unreachable")
	}

	// With version-derived nonces, the digests differ and the stale pair
	// is detected.
	withNonceV0 := sdbprov.ConsistencyMD5(data, "0-aaaa")
	withNonceV1 := sdbprov.ConsistencyMD5(data, "1-bbbb")
	if withNonceV0 == withNonceV1 {
		t.Fatal("nonce failed to separate identical-content versions")
	}
}

// TestAblationRenameBreaksCommitReplay mutates the commit protocol to
// rename (copy + immediately delete the temporary object) and shows replay
// after a daemon crash cannot re-run: the temporary object is gone. The
// paper: "It is important to COPY the temporary objects to their permanent
// locations before deleting them to maintain idempotency."
func TestAblationRenameBreaksCommitReplay(t *testing.T) {
	cl := cloud.New(cloud.Config{Seed: 5})
	if err := cl.S3.CreateBucket("pass"); err != nil {
		t.Fatal(err)
	}
	const (
		tmpKey  = "tmp/tx1"
		realKey = "data/obj"
	)
	if err := cl.S3.Put("pass", tmpKey, []byte("payload"), nil); err != nil {
		t.Fatal(err)
	}

	// The rename variant: COPY then DELETE the temp at once, before the
	// WAL messages are acknowledged.
	if err := cl.S3.Copy("pass", tmpKey, "pass", realKey, nil); err != nil {
		t.Fatal(err)
	}
	if err := cl.S3.Delete("pass", tmpKey); err != nil {
		t.Fatal(err)
	}

	// Daemon crashes here: messages were never deleted, so after the
	// visibility timeout the transaction is redelivered and replayed.
	// The replayed COPY now fails — the rename destroyed its source.
	err := cl.S3.Copy("pass", tmpKey, "pass", realKey, nil)
	if !errors.Is(err, s3.ErrNoSuchKey) {
		t.Fatalf("replayed copy after rename: err = %v, want NoSuchKey (replay impossible)", err)
	}

	// The paper's protocol — keep the temp until after message deletion —
	// replays cleanly (verified in s3sdbsqs's TestDaemonCrashReplayIsIdempotent).
}

// TestAblationEventualConsistencyWithoutVerificationTearsReads disables the
// §4.2 read verification (raw GET + GetAttributes, no MD5 comparison) and
// demonstrates the torn read the paper's consistency property exists to
// prevent.
func TestAblationEventualConsistencyWithoutVerificationTearsReads(t *testing.T) {
	ctx := context.Background()
	cl := cloud.New(cloud.Config{Seed: 11, MaxDelay: 30 * time.Second})
	layer, err := sdbprov.New(sdbprov.Config{Cloud: cl})
	if err != nil {
		t.Fatal(err)
	}

	// Store three generations, marking data and provenance with matching
	// generation tags; partial propagation between writes.
	for v := 0; v < 3; v++ {
		ref := prov.Ref{Object: "/t", Version: prov.Version(v)}
		marker := []byte{byte('0' + v)}
		nonce := string(marker)
		if err := layer.WriteItem(context.Background(), ref, []prov.Record{
			prov.NewString(ref, prov.AttrEnv, string(marker)),
		}, sdbprov.ConsistencyMD5(marker, nonce), "ablate"); err != nil {
			t.Fatal(err)
		}
		meta := map[string]string{sdbprov.MetaNonce: nonce, sdbprov.MetaVersion: "0"}
		// Note: version metadata deliberately pinned to 0 so the naive
		// reader always pairs the data with version 0's provenance.
		if err := cl.S3.Put("pass", sdbprov.DataKey("/t"), marker, meta); err != nil {
			t.Fatal(err)
		}
		cl.Clock.Advance(5 * time.Second)
	}

	// The naive reader: GET data, GET item "t_0", no verification.
	torn := false
	for i := 0; i < 200 && !torn; i++ {
		obj, err := cl.S3.Get("pass", sdbprov.DataKey("/t"))
		if err != nil {
			continue
		}
		records, _, ok, err := layer.FetchItem(context.Background(), prov.Ref{Object: "/t", Version: 0})
		if err != nil || !ok {
			continue
		}
		for _, r := range records {
			if r.Attr == prov.AttrEnv && r.Value.Str != string(obj.Body) {
				torn = true // data from one generation, provenance from another
			}
		}
	}
	if !torn {
		t.Fatal("naive unverified reads never tore; the consistency mechanism would be unnecessary")
	}

	// The verified reader on the same region either returns a matching
	// pair or an explicit error — never a torn pair.
	for i := 0; i < 100; i++ {
		obj, err := layer.VerifiedGet(ctx, "/t")
		if err != nil {
			continue
		}
		for _, r := range obj.Records {
			if r.Attr == prov.AttrEnv && r.Value.Str != string(obj.Data) {
				t.Fatalf("verified read returned torn pair: %q vs %q", r.Value.Str, obj.Data)
			}
		}
	}
}
