package passcloud

import (
	"context"
	"fmt"

	"passcloud/internal/core/integrity"
	"passcloud/internal/prov"
)

// Divergence is one verification finding: which record diverged, on which
// shard, and how. Kind is one of "chain-break", "chain-gap",
// "chain-missing", "root-mismatch", "checkpoint-missing".
type Divergence struct {
	Kind  string
	Shard int
	// Subject anchors the finding to an object version; it is the zero
	// Ref for shard-level findings (root-mismatch, checkpoint-missing).
	Subject Ref
	Detail  string
}

// String renders one finding.
func (d Divergence) String() string {
	if d.Subject == (Ref{}) {
		return fmt.Sprintf("shard %d: %s: %s", d.Shard, d.Kind, d.Detail)
	}
	return fmt.Sprintf("shard %d: %s: %s: %s", d.Shard, d.Kind, d.Subject, d.Detail)
}

func toPublicDivergence(d integrity.Divergence) Divergence {
	return Divergence{
		Kind:    d.Kind.String(),
		Shard:   d.Shard,
		Subject: toPublicRef(d.Subject),
		Detail:  d.Detail,
	}
}

func toPublicDivergences(ds []integrity.Divergence) []Divergence {
	out := make([]Divergence, len(ds))
	for i, d := range ds {
		out[i] = toPublicDivergence(d)
	}
	return out
}

// ShardVerification is one shard's full-store verification outcome.
type ShardVerification struct {
	Shard int
	// Subjects and Records count what the audit scanned.
	Subjects, Records int
	// Root is the Merkle root re-derived from the stored records; it is
	// compared against CheckpointRoot, the highest committed checkpoint.
	Root, CheckpointRoot string
	// CheckpointSeq is the committed checkpoint's sequence number.
	CheckpointSeq int
	// MultiWriter reports that several writers' checkpoints were found;
	// each writer commits only to its own writes, so the root comparison
	// is skipped (chain checks still run on every record).
	MultiWriter bool
	// Detached counts chain links that were unverifiable because the
	// writer attached the object mid-history (informational).
	Detached    int
	Divergences []Divergence
}

// Clean reports a divergence-free shard.
func (s *ShardVerification) Clean() bool { return len(s.Divergences) == 0 }

// VerifyReport is a whole namespace's verification outcome.
type VerifyReport struct {
	Shards []ShardVerification
	// NamespaceRoot composes the per-shard roots, in shard order, into
	// the single commitment that summarizes the entire namespace.
	NamespaceRoot string
}

// Clean reports a fully divergence-free namespace.
func (r *VerifyReport) Clean() bool {
	for i := range r.Shards {
		if !r.Shards[i].Clean() {
			return false
		}
	}
	return true
}

// Divergences flattens every shard's findings.
func (r *VerifyReport) Divergences() []Divergence {
	var out []Divergence
	for i := range r.Shards {
		out = append(out, r.Shards[i].Divergences...)
	}
	return out
}

// LineageReport is one object's chain verification outcome.
type LineageReport struct {
	Object string
	// Shard is the object's home shard (0 when unsharded).
	Shard int
	// Versions counts the stored versions of the object the audit found.
	Versions int
	// Detached counts unverifiable attach-point links (informational).
	Detached    int
	Divergences []Divergence
}

// Clean reports an intact lineage.
func (r *LineageReport) Clean() bool { return len(r.Divergences) == 0 }

// auditors returns each shard's store as an integrity.Auditor, in shard
// order.
func (c *Client) auditors() ([]integrity.Auditor, error) {
	out := make([]integrity.Auditor, 0, len(c.shardStores))
	for _, st := range c.shardStores {
		a, ok := st.(integrity.Auditor)
		if !ok {
			return nil, fmt.Errorf("passcloud: %s does not support verification", st.Name())
		}
		out = append(out, a)
	}
	return out, nil
}

// VerifyLineage checks one object's hash chain: every stored version must
// carry exactly one chain record whose embedded hash matches the
// re-derived hash of its predecessor's full record set. The check runs on
// the object's home shard against a live audit scan — never a cached
// snapshot — so it reflects what the cloud holds right now. Call Sync
// first for a fully-acknowledged view; on the WAL architecture, undrained
// transactions are invisible to the audit exactly as they are to queries.
func (c *Client) VerifyLineage(ctx context.Context, path string) (*LineageReport, error) {
	auds, err := c.auditors()
	if err != nil {
		return nil, err
	}
	object := prov.ObjectID(path)
	idx := 0
	if c.router != nil {
		idx = c.router.ShardFor(object)
	}
	a, err := auds[idx].Audit(ctx)
	if err != nil {
		return nil, err
	}
	ds, detached := integrity.VerifyObject(object, a.Entries, a.RetainsHistory, idx)
	rep := &LineageReport{
		Object:      path,
		Shard:       idx,
		Detached:    detached,
		Divergences: toPublicDivergences(ds),
	}
	for ref := range a.Entries {
		if ref.Object == object {
			rep.Versions++
		}
	}
	if rep.Versions == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return rep, nil
}

// VerifyAll verifies the whole namespace: every shard is audited with a
// live scan, every object's chain is walked, and each shard's re-derived
// Merkle root is compared against its highest committed checkpoint. The
// per-shard roots compose into the namespace root. The report's
// divergences name the record, the shard and the kind of tampering
// (chain-break vs. root-mismatch), so a clean report certifies that no
// committed record was altered, added or dropped post-commit. Call Sync
// first for a fully-acknowledged view.
func (c *Client) VerifyAll(ctx context.Context) (*VerifyReport, error) {
	auds, err := c.auditors()
	if err != nil {
		return nil, err
	}
	res, err := integrity.VerifyStores(ctx, auds)
	if err != nil {
		return nil, err
	}
	rep := &VerifyReport{NamespaceRoot: res.NamespaceRoot}
	for _, sr := range res.Shards {
		rep.Shards = append(rep.Shards, ShardVerification{
			Shard:          sr.Shard,
			Subjects:       sr.Subjects,
			Records:        sr.Records,
			Root:           sr.Root,
			CheckpointRoot: sr.Checkpoint.Root,
			CheckpointSeq:  sr.Checkpoint.Seq,
			MultiWriter:    sr.MultiWriter,
			Detached:       sr.Detached,
			Divergences:    toPublicDivergences(sr.Divergences),
		})
	}
	return rep, nil
}
