package passcloud

import (
	"context"
	"errors"
	"fmt"

	"passcloud/internal/core/shard/reshard"
)

// Resharding errors, re-exported for callers to match with errors.Is.
var (
	// ErrNotSharded: the client has fewer than two shards, so there is
	// nothing to migrate between.
	ErrNotSharded = errors.New("passcloud: resharding needs a client with at least 2 shards")
	// ErrMigrationActive: a migration is already journaled; call Recover.
	ErrMigrationActive = reshard.ErrMigrationActive
	// ErrReshardVerifyFailed: the pre-cutover verification found the
	// copied arc unfaithful; the migration rolled back to fully-unmoved.
	ErrReshardVerifyFailed = reshard.ErrVerifyFailed
)

// ReshardReport is one completed (or idle) reconciliation: what moved and
// what the migration itself cost on the cloud meters.
type ReshardReport struct {
	// Action is "none", "split" or "merge".
	Action string
	// Src and Dst are the shard pair (both -1 when Action is "none").
	Src, Dst int
	// Subjects and Objects count the moved arc; Bytes is the copied
	// payload volume.
	Subjects, Objects int
	Bytes             int64
	// Epoch is the ring epoch after the move.
	Epoch int
	// MigOps is the migration's cloud-op delta per shard; MigTotalOps
	// sums them, MigBytes is the transferred byte delta, and USD prices
	// the whole migration at January-2009 rates.
	MigOps      []int64
	MigTotalOps int64
	MigBytes    int64
	USD         float64
}

// ReshardStatus is a point-in-time view of the migration controller.
type ReshardStatus struct {
	// Phase is "idle", "copied" or "flipped" (the journal position).
	Phase string
	// Epoch is the router's current ring epoch.
	Epoch int
	// Migrating reports an open double-read window.
	Migrating bool
	// Shares are per-shard op shares since the last SampleBaseline (nil
	// before one is taken).
	Shares []float64
}

// Resharder is the client's elastic-resharding control plane: hot-shard
// detection from the per-shard billing meters and live arc migration with
// copy -> verify -> flip cutovers. Obtain one with Client.Resharder; the
// same instance (and its crash journal) is returned for the client's
// lifetime.
type Resharder struct {
	c    *Client
	ctrl *reshard.Controller
}

// Resharder returns the client's migration controller, building it on
// first use. It fails with ErrNotSharded on unsharded clients.
func (c *Client) Resharder() (*Resharder, error) {
	if c.resharder != nil {
		return c.resharder, nil
	}
	if c.router == nil || len(c.shardClouds) < 2 {
		return nil, ErrNotSharded
	}
	ctrl, err := reshard.New(reshard.Config{
		Router: c.router,
		Clouds: c.shardClouds,
		Drain:  func(ctx context.Context) error { return c.Sync(ctx) },
		Settle: c.Settle,
	})
	if err != nil {
		return nil, err
	}
	c.resharder = &Resharder{c: c, ctrl: ctrl}
	return c.resharder, nil
}

// SampleBaseline snapshots every shard's meter; subsequent Status.Shares
// and Rebalance hot-shard detection measure op deltas from here.
func (r *Resharder) SampleBaseline() { r.ctrl.SampleBaseline() }

// Split migrates alternating ring points off shard src onto dst (dst < 0
// picks the coldest shard). The arc is copied, verified against the
// source's Merkle leaves, and only then does the ring epoch flip.
func (r *Resharder) Split(ctx context.Context, src, dst int) (*ReshardReport, error) {
	plan, err := r.ctrl.PlanSplit(src, dst)
	if err != nil {
		return nil, err
	}
	return toPublicReshard(r.ctrl.Execute(ctx, plan))
}

// Merge drains every ring point off shard src onto dst (dst < 0 picks
// the coldest remaining shard), with the same verified cutover as Split.
func (r *Resharder) Merge(ctx context.Context, src, dst int) (*ReshardReport, error) {
	plan, err := r.ctrl.PlanMerge(src, dst)
	if err != nil {
		return nil, err
	}
	return toPublicReshard(r.ctrl.Execute(ctx, plan))
}

// Rebalance is one reconciliation pass: if a shard's op share since the
// baseline exceeds the hot ceiling (0.5), split it toward the coldest
// shard; otherwise report Action "none" at zero cloud ops.
func (r *Resharder) Rebalance(ctx context.Context) (*ReshardReport, error) {
	return toPublicReshard(r.ctrl.RunOnce(ctx))
}

// Recover completes an interrupted migration from its journal: rolled
// back to fully-unmoved when the crash preceded the ring flip, rolled
// forward to fully-moved after it. It reports the phase the journal was
// found in ("idle" when there was nothing to recover).
func (r *Resharder) Recover(ctx context.Context) (string, error) {
	phase, err := r.ctrl.Recover(ctx)
	return phase.String(), err
}

// Status reports the controller's journal phase, the ring epoch, and the
// per-shard op shares since the last baseline.
func (r *Resharder) Status() ReshardStatus {
	s := r.ctrl.Status()
	return ReshardStatus{
		Phase:     s.Phase.String(),
		Epoch:     s.Epoch,
		Migrating: s.Migrating,
		Shares:    s.Shares,
	}
}

func toPublicReshard(rep *reshard.Report, err error) (*ReshardReport, error) {
	if err != nil {
		return nil, err
	}
	out := &ReshardReport{
		Action:   rep.Action,
		Src:      -1,
		Dst:      -1,
		Subjects: rep.Subjects,
		Objects:  rep.Objects,
		Bytes:    rep.Bytes,
		Epoch:    rep.Epoch,

		MigOps:      rep.MigOps,
		MigTotalOps: rep.MigTotalOps,
		MigBytes:    rep.MigBytes,
		USD:         rep.USD,
	}
	if rep.Plan != nil {
		out.Src, out.Dst = rep.Plan.Src, rep.Plan.Dst
	}
	return out, nil
}

// String renders the report for status output.
func (r *ReshardReport) String() string {
	if r.Action == "none" {
		return fmt.Sprintf("none (epoch %d)", r.Epoch)
	}
	return fmt.Sprintf("%s %d->%d: %d subjects, %d objects, %d bytes moved; epoch %d; migration cost %d ops, %d bytes, $%.6f",
		r.Action, r.Src, r.Dst, r.Subjects, r.Objects, r.Bytes, r.Epoch, r.MigTotalOps, r.MigBytes, r.USD)
}
