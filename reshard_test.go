package passcloud

import (
	"errors"
	"fmt"
	"testing"
)

// driveReshardWorkload writes enough chained files that every shard of a
// 4-shard client ends up owning part of the namespace.
func driveReshardWorkload(t *testing.T, c *Client) []string {
	t.Helper()
	var paths []string
	for i := 0; i < 16; i++ {
		p := c.Exec(nil, ProcessSpec{Name: "gen", Argv: []string{"gen", fmt.Sprint(i)}})
		if i > 0 {
			if err := p.Read(paths[i-1]); err != nil {
				t.Fatal(err)
			}
		}
		path := fmt.Sprintf("/reshard/f%d", i)
		if err := p.Write(path, []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := p.Close(ctx, path); err != nil {
			t.Fatal(err)
		}
		p.Exit()
		paths = append(paths, path)
	}
	if err := c.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	c.Settle()
	return paths
}

// TestReshardVerifyAfterCutover: immediately after an elastic-resharding
// cutover, VerifyLineage must pass for every object — the moved ones now
// audited on the destination shard, the unmoved ones still on their
// source — and VerifyAll must certify every shard, on all three
// architectures.
func TestReshardVerifyAfterCutover(t *testing.T) {
	for _, arch := range allArchitectures {
		t.Run(arch.String(), func(t *testing.T) {
			c, err := New(Options{Architecture: arch, Seed: 77, Shards: 4})
			if err != nil {
				t.Fatal(err)
			}
			paths := driveReshardWorkload(t, c)

			// Record each object's pre-cutover home shard; lineage must
			// already be intact.
			pre := make(map[string]int, len(paths))
			for _, path := range paths {
				rep, err := c.VerifyLineage(ctx, path)
				if err != nil {
					t.Fatal(err)
				}
				if !rep.Clean() {
					t.Fatalf("pre-cutover lineage of %s diverged: %v", path, rep.Divergences)
				}
				pre[path] = rep.Shard
			}

			rs, err := c.Resharder()
			if err != nil {
				t.Fatal(err)
			}
			// Merge the first file's home shard into another: a provably
			// non-empty arc.
			src := pre[paths[0]]
			dst := (src + 1) % 4
			rep, err := rs.Merge(ctx, src, dst)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Action != "merge" || rep.Epoch != 1 || rep.Subjects == 0 {
				t.Fatalf("unexpected migration report: %+v", rep)
			}
			if st := rs.Status(); st.Phase != "idle" || st.Migrating {
				t.Fatalf("controller not idle after cutover: %+v", st)
			}

			// Every lineage must verify on its post-cutover home: objects
			// from src now audit on dst, the rest where they were.
			moved, stayed := 0, 0
			for _, path := range paths {
				lr, err := c.VerifyLineage(ctx, path)
				if err != nil {
					t.Fatalf("post-cutover VerifyLineage(%s): %v", path, err)
				}
				if !lr.Clean() {
					t.Errorf("post-cutover lineage of %s diverged: %v", path, lr.Divergences)
				}
				switch {
				case pre[path] == src:
					if lr.Shard != dst {
						t.Errorf("%s: moved object audits on shard %d, want %d", path, lr.Shard, dst)
					}
					moved++
				default:
					if lr.Shard != pre[path] {
						t.Errorf("%s: unmoved object changed home %d -> %d", path, pre[path], lr.Shard)
					}
					stayed++
				}
			}
			if moved == 0 || stayed == 0 {
				t.Fatalf("workload did not cover both sides of the cutover (moved=%d stayed=%d)", moved, stayed)
			}

			// The whole namespace — emptied source shard included — must
			// still certify.
			vr, err := c.VerifyAll(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if !vr.Clean() {
				t.Fatalf("post-cutover namespace verification failed: %v", vr.Divergences())
			}

			// The data plane agrees: every object still reads back with
			// provenance through the flipped ring.
			for i, path := range paths {
				obj, err := c.Get(ctx, path)
				if err != nil {
					t.Fatalf("Get(%s): %v", path, err)
				}
				if want := fmt.Sprintf("payload-%d", i); string(obj.Data) != want {
					t.Errorf("%s: data %q, want %q", path, obj.Data, want)
				}
				if len(obj.Records) == 0 {
					t.Errorf("%s: readable without provenance after cutover", path)
				}
			}
		})
	}
}

// TestResharderUnsharded: the controller is a sharded-deployment feature;
// unsharded clients get the typed error.
func TestResharderUnsharded(t *testing.T) {
	c, err := New(Options{Architecture: S3SimpleDB, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Resharder(); !errors.Is(err, ErrNotSharded) {
		t.Fatalf("Resharder on unsharded client: err=%v, want ErrNotSharded", err)
	}
}
