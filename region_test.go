package passcloud

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestRegionSharedBetweenClients(t *testing.T) {
	for _, arch := range allArchitectures {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			region, err := NewRegion(Options{Architecture: arch, Seed: 21})
			if err != nil {
				t.Fatal(err)
			}
			alice, err := region.NewClient("alice")
			if err != nil {
				t.Fatal(err)
			}
			bob, err := region.NewClient("bob")
			if err != nil {
				t.Fatal(err)
			}

			// Alice publishes a dataset and a derivation.
			if err := alice.Ingest(ctx, "/shared/base.dat", []byte("base")); err != nil {
				t.Fatal(err)
			}
			p := alice.Exec(nil, ProcessSpec{Name: "alice-tool"})
			if err := p.Read("/shared/base.dat"); err != nil {
				t.Fatal(err)
			}
			if err := p.Write("/shared/alice-out.dat", []byte("from alice")); err != nil {
				t.Fatal(err)
			}
			if err := p.Close(ctx, "/shared/alice-out.dat"); err != nil {
				t.Fatal(err)
			}
			if err := alice.Sync(ctx); err != nil {
				t.Fatal(err)
			}
			region.Settle()

			// Bob downloads Alice's object (with verified provenance) into
			// his local namespace and builds on it.
			obj, err := bob.Fetch(ctx, "/shared/alice-out.dat")
			if err != nil {
				t.Fatalf("bob cannot fetch alice's object: %v", err)
			}
			if string(obj.Data) != "from alice" {
				t.Fatalf("data = %q", obj.Data)
			}
			q := bob.Exec(nil, ProcessSpec{Name: "bob-tool"})
			if err := q.Read("/shared/alice-out.dat"); err != nil {
				t.Fatal(err)
			}
			if err := q.Write("/shared/bob-out.dat", []byte("from bob")); err != nil {
				t.Fatal(err)
			}
			if err := q.Close(ctx, "/shared/bob-out.dat"); err != nil {
				t.Fatal(err)
			}
			if err := bob.Sync(ctx); err != nil {
				t.Fatal(err)
			}
			region.Settle()

			// Cross-client lineage: bob's output descends from alice's tool.
			desc, err := alice.DescendantsOfOutputs(ctx, "alice-tool")
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, d := range desc {
				if d.Object == "/shared/bob-out.dat" {
					found = true
				}
			}
			if !found {
				t.Fatalf("cross-client descendants missing bob's output: %v", desc)
			}
		})
	}
}

func TestRegionConcurrentClientsDistinctObjects(t *testing.T) {
	// The paper's usage model: "multiple clients can concurrently update
	// different objects at the same time."
	region, err := NewRegion(Options{Architecture: S3SimpleDBSQS, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	const clients = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		c, err := region.NewClient(fmt.Sprintf("worker%d", i))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			p := c.Exec(nil, ProcessSpec{Name: fmt.Sprintf("job%d", i)})
			for f := 0; f < 5; f++ {
				path := fmt.Sprintf("/w%d/out%d.dat", i, f)
				if err := p.Write(path, []byte(fmt.Sprintf("payload %d/%d", i, f))); err != nil {
					errs <- err
					return
				}
				if err := p.Close(ctx, path); err != nil {
					errs <- err
					return
				}
			}
			if err := c.Sync(ctx); err != nil {
				errs <- err
				return
			}
			errs <- nil
		}(i, c)
	}
	wg.Wait()
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	region.Settle()

	// Every object landed, readable from any client.
	probe, err := region.NewClient("probe")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < clients; i++ {
		for f := 0; f < 5; f++ {
			path := fmt.Sprintf("/w%d/out%d.dat", i, f)
			obj, err := probe.Get(ctx, path)
			if err != nil {
				t.Fatalf("get %s: %v", path, err)
			}
			if string(obj.Data) != fmt.Sprintf("payload %d/%d", i, f) {
				t.Fatalf("%s data = %q", path, obj.Data)
			}
		}
	}
	if u := region.Usage(); u.SQSOps == 0 {
		t.Fatal("region usage not aggregated")
	}
}

func TestRegionRejectsUnknownArchitecture(t *testing.T) {
	if _, err := NewRegion(Options{Architecture: Architecture(42)}); err == nil {
		t.Fatal("unknown architecture accepted")
	}
}

func TestSafeDeleteRefusesWithDependents(t *testing.T) {
	for _, arch := range allArchitectures {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			c, err := New(Options{Architecture: arch, Seed: 55})
			if err != nil {
				t.Fatal(err)
			}
			runPipeline(t, c) // census -> trends.dat -> trends.png

			// The source has derivations: deletion must be refused.
			err = c.SafeDelete(ctx, "/census/data.csv")
			var hasDeps *ErrHasDependents
			if !errors.As(err, &hasDeps) {
				t.Fatalf("SafeDelete = %v, want ErrHasDependents", err)
			}
			if hasDeps.Object != "/census/data.csv" || len(hasDeps.Dependents) == 0 {
				t.Fatalf("dependents detail: %+v", hasDeps)
			}
			// The data is still there.
			if _, err := c.Get(ctx, "/census/data.csv"); err != nil {
				t.Fatalf("refused delete still removed data: %v", err)
			}

			// The leaf has no derivations: deletion proceeds.
			if err := c.SafeDelete(ctx, "/results/trends.png"); err != nil {
				t.Fatalf("leaf SafeDelete: %v", err)
			}
			c.Settle()
			if _, err := c.Get(ctx, "/results/trends.png"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("leaf still present after SafeDelete: %v", err)
			}
			// Its provenance survives as history.
			if _, err := c.Provenance(ctx, Ref{Object: "/results/trends.png", Version: 0}); err != nil && arch != S3Only {
				t.Fatalf("provenance history lost: %v", err)
			}
		})
	}
}

// TestDependentsSurviveOverwrite: overwriting an object must not erase the
// deletion guard for its earlier versions. On S3-only the overwrite
// replaces the object's per-version metadata, so version 0 survives in the
// scan-built graph only as its consumers' input edges — the descendants
// query must still seed it, matching the SimpleDB architectures' native
// starts-with-on-input semantics.
func TestDependentsSurviveOverwrite(t *testing.T) {
	for _, arch := range allArchitectures {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			c, err := New(Options{Architecture: arch, Seed: 77})
			if err != nil {
				t.Fatal(err)
			}
			runPipeline(t, c) // census:0 -> analyze -> trends.dat -> plot -> trends.png

			// A second (truncating) write supersedes /census/data.csv.
			w := c.Exec(nil, ProcessSpec{Name: "rewrite"})
			if err := w.Write("/census/data.csv", []byte("census-2010-data")); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(ctx, "/census/data.csv"); err != nil {
				t.Fatal(err)
			}
			w.Exit()
			if err := c.Sync(ctx); err != nil {
				t.Fatal(err)
			}
			c.Settle()

			deps, err := c.Dependents(ctx, "/census/data.csv")
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, d := range deps {
				if d.Object == "proc/1/analyze" {
					found = true
				}
			}
			if !found {
				t.Fatalf("Dependents after overwrite = %v, want the analyze process that consumed version 0", deps)
			}

			// The deletion guard must therefore still refuse.
			var hasDeps *ErrHasDependents
			if err := c.SafeDelete(ctx, "/census/data.csv"); !errors.As(err, &hasDeps) {
				t.Fatalf("SafeDelete after overwrite = %v, want ErrHasDependents", err)
			}
		})
	}
}

func TestDependentsListsDirectConsumers(t *testing.T) {
	c, err := New(Options{Architecture: S3SimpleDB, Seed: 66})
	if err != nil {
		t.Fatal(err)
	}
	runPipeline(t, c)
	deps, err := c.Dependents(ctx, "/results/trends.dat")
	if err != nil {
		t.Fatal(err)
	}
	// Direct consumers: the plot process (the png depends on the process,
	// not the file directly).
	if len(deps) != 1 || deps[0].Object != "proc/2/plot" {
		t.Fatalf("Dependents = %v", deps)
	}
}
