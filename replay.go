package passcloud

// Provenance-driven replay: the reproducibility loop of the cloud-aware-
// provenance line (Hasham et al., PAPERS.md) closed over this store.
// Client.Replay extracts an object version's lineage subgraph through the
// composable query path, re-executes the recorded processes against a
// fresh sandbox region, and diffs the re-derived content against what the
// repository holds — a divergence oracle for provenance-capture bugs.

import (
	"context"
	"fmt"

	"passcloud/internal/pass"
	"passcloud/internal/prov"
	"passcloud/internal/replay"
	"passcloud/internal/workload"
)

// ErrLineageCycle reports a dependency cycle in recorded lineage —
// impossible under PASS's cycle-avoidance versioning, so its presence is
// itself a capture bug. Replay surfaces it as a typed error instead of
// hanging. Match with errors.Is.
var ErrLineageCycle = replay.ErrLineageCycle

// ReplayDivergence is one replay finding: a subject version whose
// re-execution did not reproduce the repository's recorded state.
type ReplayDivergence struct {
	// Kind is "missing-input", "env-drift", "digest-mismatch" or
	// "unrunnable-tool" (see the README's replay threat model).
	Kind string
	// Subject is the object version the finding anchors to.
	Subject Ref
	// Detail is a human-readable description.
	Detail string
}

// String renders the finding.
func (d ReplayDivergence) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Kind, d.Subject, d.Detail)
}

// ReplayReport is the outcome of one replay run.
type ReplayReport struct {
	// Subjects counts the file versions whose content was re-derived
	// from recorded provenance.
	Subjects int
	// Sources counts ingested versions (no process ancestry) copied into
	// the sandbox as recorded inputs.
	Sources int
	// Processes counts the recorded process versions re-executed.
	Processes int
	// Compared counts the re-derived versions diffed against the
	// repository (only an object's current version still has original
	// bytes to compare).
	Compared int
	// Divergences lists every finding, sorted by subject then kind.
	Divergences []ReplayDivergence
	// Usage is the sandbox region's bill for the re-execution — the
	// cloud cost of reproducing the lineage, metered separately from the
	// source repository's.
	Usage UsageSummary
}

// Clean reports a divergence-free replay: every compared object is
// byte-identical to what its recorded provenance re-derives.
func (r *ReplayReport) Clean() bool { return len(r.Divergences) == 0 }

// Replay re-executes the lineage of path's current version on a fresh
// sandbox tenant and diffs the results against the repository. Call Sync
// first for a fully-acknowledged view. The sandbox shares nothing with
// this client's region; re-execution cloud ops appear in the report's
// Usage, not in this client's bill.
func (c *Client) Replay(ctx context.Context, path string) (*ReplayReport, error) {
	obj, err := c.store.Get(ctx, prov.ObjectID(path))
	if err != nil {
		return nil, err
	}
	return c.replay(ctx, obj.Ref)
}

// ReplayAll re-executes the lineage of every current file version in the
// repository — the full-repository divergence audit. Call Sync first for
// a fully-acknowledged view.
func (c *Client) ReplayAll(ctx context.Context) (*ReplayReport, error) {
	q, err := c.querier()
	if err != nil {
		return nil, err
	}
	current := make(map[prov.ObjectID]prov.Version)
	spec := prov.Query{Type: prov.TypeFile, Projection: prov.ProjectRefs}
	for entry, qerr := range q.Query(ctx, spec) {
		if qerr != nil {
			return nil, qerr
		}
		if v, ok := current[entry.Ref.Object]; !ok || entry.Ref.Version > v {
			current[entry.Ref.Object] = entry.Ref.Version
		}
	}
	targets := make([]prov.Ref, 0, len(current))
	for object, version := range current {
		targets = append(targets, prov.Ref{Object: object, Version: version})
	}
	if len(targets) == 0 {
		return &ReplayReport{}, nil
	}
	return c.replay(ctx, targets...)
}

// replay runs the extraction/schedule/re-execute/diff pipeline against a
// fresh sandbox client of the same architecture.
func (c *Client) replay(ctx context.Context, targets ...prov.Ref) (*ReplayReport, error) {
	q, err := c.querier()
	if err != nil {
		return nil, err
	}
	sandbox, err := New(Options{
		Architecture: c.opts.Architecture,
		Seed:         c.opts.Seed,
		Kernel:       c.opts.Kernel,
		Shards:       c.opts.Shards,
		Tenant:       replayTenant(c.opts.Tenant),
	})
	if err != nil {
		return nil, fmt.Errorf("passcloud: replay sandbox: %w", err)
	}
	rep, err := replay.Replay(ctx, replay.Config{
		Source: q,
		Fetch:  c.store.Get,
		Target: sandbox.store,
		Runner: workload.Tools{},
		Kernel: effectiveKernel(c.opts.Kernel),
	}, targets...)
	if err != nil {
		return nil, err
	}
	// Drain the sandbox (the WAL architecture commits asynchronously) so
	// its bill covers the whole re-execution.
	if err := sandbox.Sync(ctx); err != nil {
		return nil, fmt.Errorf("passcloud: replay sandbox sync: %w", err)
	}
	out := &ReplayReport{
		Subjects:  rep.Subjects,
		Sources:   rep.Sources,
		Processes: rep.Processes,
		Compared:  rep.Compared,
		Usage:     sandbox.TenantUsage(),
	}
	for _, d := range rep.Divergences {
		out.Divergences = append(out.Divergences, ReplayDivergence{
			Kind:    d.Kind.String(),
			Subject: toPublicRef(d.Subject),
			Detail:  d.Detail,
		})
	}
	return out, nil
}

// effectiveKernel resolves the kernel the client records on processes:
// Options.Kernel, or the capture layer's default. Replay compares
// recorded kernels against it for env-drift detection.
func effectiveKernel(kernel string) string {
	if kernel == "" {
		return pass.DefaultKernel
	}
	return kernel
}

// replayTenant names the sandbox tenant so its namespaces and meters are
// disjoint from the source tenant's even if the two ever share a region.
func replayTenant(tenant string) string {
	if tenant == "" {
		return "replay"
	}
	return tenant + "-replay"
}

// WriteDerived writes the registered tool's deterministic output for this
// process version at path: the bytes are a pure function of the version's
// recorded provenance (tool, argv, environment, pinned input versions)
// and the path — the contract that makes the write replayable. The
// process must have been Exec'd with the name of a tool in the workload
// registry (tee, cc, align_warp, ...); see the README's replay section.
func (p *Process) WriteDerived(path string) error {
	data, err := workload.DeriveOutput(p.c.sys, p.p, path)
	if err != nil {
		return err
	}
	return p.Write(path, data)
}
