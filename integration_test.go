package passcloud

// Cross-module integration tests: full workloads through every architecture
// with failures injected mid-stream, verifying the paper's eventual-causal-
// ordering guarantee holds for whatever survives.

import (
	"context"
	"errors"
	"testing"

	"passcloud/internal/cloud"
	"passcloud/internal/core"
	"passcloud/internal/core/s3only"
	"passcloud/internal/core/s3sdb"
	"passcloud/internal/core/s3sdbsqs"
	"passcloud/internal/pass"
	"passcloud/internal/prov"
	"passcloud/internal/sim"
	"passcloud/internal/workload"
)

// crashAfterN wraps a flush function and fails permanently after n events,
// simulating a client that dies mid-workload and never comes back. The
// crash severs whole batches: a batch that would cross the budget is
// rejected outright, like a client dying before its close's flush lands.
func crashAfterN(n int, next pass.FlushFunc) pass.FlushFunc {
	count := 0
	return func(ctx context.Context, batch []pass.FlushEvent) error {
		count += len(batch)
		if count > n {
			return errors.New("client crashed")
		}
		return next(ctx, batch)
	}
}

func TestCausalOrderingSurvivesMidWorkloadCrash(t *testing.T) {
	ctx := context.Background()
	type build struct {
		name string
		mk   func(cl *cloud.Cloud) (core.Store, func() error, error)
	}
	builds := []build{
		{"s3", func(cl *cloud.Cloud) (core.Store, func() error, error) {
			st, err := s3only.New(s3only.Config{Cloud: cl})
			return st, nil, err
		}},
		{"s3+sdb", func(cl *cloud.Cloud) (core.Store, func() error, error) {
			st, err := s3sdb.New(s3sdb.Config{Cloud: cl})
			if err != nil {
				return nil, nil, err
			}
			recover := func() error {
				_, err := st.OrphanScan(ctx)
				return err
			}
			return st, recover, nil
		}},
		{"s3+sdb+sqs", func(cl *cloud.Cloud) (core.Store, func() error, error) {
			st, err := s3sdbsqs.New(s3sdbsqs.Config{Cloud: cl})
			if err != nil {
				return nil, nil, err
			}
			recover := func() error {
				daemon := s3sdbsqs.NewCommitDaemon(st, nil)
				for i := 0; i < 30; i++ {
					n, err := daemon.RunOnce(ctx, true)
					if err != nil {
						return err
					}
					if n == 0 && daemon.PendingTransactions() == 0 {
						return nil
					}
					cl.Settle()
				}
				return nil
			}
			return st, recover, nil
		}},
	}

	for _, b := range builds {
		b := b
		t.Run(b.name, func(t *testing.T) {
			cl := cloud.New(cloud.Config{Seed: 17})
			st, recover, err := b.mk(cl)
			if err != nil {
				t.Fatal(err)
			}

			// Crash the client 400 events into the challenge workload.
			sys := pass.NewSystem(pass.Config{
				Flush: crashAfterN(400, core.Flusher(st)),
			})
			w := workload.DefaultProvChallenge(0.2) // 16 runs: plenty past the crash
			err = workload.Run(ctx, sys, sim.NewRNG(17), w)
			if err == nil {
				t.Fatal("workload survived the injected crash")
			}

			// The client restarts: recovery runs, replication settles.
			if recover != nil {
				if err := recover(); err != nil {
					t.Fatal(err)
				}
			}
			cl.Settle()

			// Whatever is retrievable must be causally complete: every
			// input reference of every surviving subject resolves.
			q := st.(core.Querier)
			all, err := core.AllProvenance(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			if len(all) < 100 {
				t.Fatalf("only %d subjects survived; crash point too early", len(all))
			}
			g := prov.NewGraph()
			for _, records := range all {
				g.AddAll(records)
			}
			if missing := g.MissingAncestors(); len(missing) != 0 {
				t.Fatalf("%s: %d dangling ancestors after crash (e.g. %v)",
					b.name, len(missing), missing[0])
			}
			if !g.IsAcyclic() {
				t.Fatal("cyclic provenance after crash")
			}
		})
	}
}

// TestWorkloadAnswersIdenticalAcrossArchitectures runs the same combined
// workload through all three architectures and demands bit-identical
// query answers — the efficiency differences must never change results.
func TestWorkloadAnswersIdenticalAcrossArchitectures(t *testing.T) {
	if testing.Short() {
		t.Skip("slow cross-architecture comparison")
	}
	ctx := context.Background()
	const seed, scale = 23, 0.01
	const tool = "softmean"

	type answers struct {
		subjects int
		outputs  []prov.Ref
		desc     int
	}
	run := func(mk func(cl *cloud.Cloud) (core.Store, func() error, error)) answers {
		cl := cloud.New(cloud.Config{Seed: seed})
		st, finish, err := mk(cl)
		if err != nil {
			t.Fatal(err)
		}
		sys := pass.NewSystem(pass.Config{Flush: core.Flusher(st)})
		if err := workload.Run(ctx, sys, sim.NewRNG(seed), workload.NewCombined(scale)); err != nil {
			t.Fatal(err)
		}
		if err := core.SyncStore(ctx, st); err != nil {
			t.Fatal(err)
		}
		if finish != nil {
			if err := finish(); err != nil {
				t.Fatal(err)
			}
		}
		cl.Settle()
		q := st.(core.Querier)
		all, err := core.AllProvenance(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		outputs, err := core.OutputsOf(ctx, q, tool)
		if err != nil {
			t.Fatal(err)
		}
		desc, err := core.DescendantsOfOutputs(ctx, q, tool)
		if err != nil {
			t.Fatal(err)
		}
		return answers{subjects: len(all), outputs: outputs, desc: len(desc)}
	}

	a1 := run(func(cl *cloud.Cloud) (core.Store, func() error, error) {
		st, err := s3only.New(s3only.Config{Cloud: cl})
		return st, nil, err
	})
	a2 := run(func(cl *cloud.Cloud) (core.Store, func() error, error) {
		st, err := s3sdb.New(s3sdb.Config{Cloud: cl})
		return st, nil, err
	})
	a3 := run(func(cl *cloud.Cloud) (core.Store, func() error, error) {
		st, err := s3sdbsqs.New(s3sdbsqs.Config{Cloud: cl})
		if err != nil {
			return nil, nil, err
		}
		daemon := s3sdbsqs.NewCommitDaemon(st, nil)
		finish := func() error {
			for {
				n, err := daemon.RunOnce(ctx, true)
				if err != nil {
					return err
				}
				if n == 0 && daemon.PendingTransactions() == 0 {
					return nil
				}
				cl.Settle()
			}
		}
		return st, finish, nil
	})

	if a1.subjects != a2.subjects || a2.subjects != a3.subjects {
		t.Errorf("subject counts differ: %d / %d / %d", a1.subjects, a2.subjects, a3.subjects)
	}
	if len(a1.outputs) != len(a2.outputs) || len(a2.outputs) != len(a3.outputs) {
		t.Errorf("output counts differ: %d / %d / %d", len(a1.outputs), len(a2.outputs), len(a3.outputs))
	}
	for i := range a1.outputs {
		if a1.outputs[i] != a2.outputs[i] || a2.outputs[i] != a3.outputs[i] {
			t.Errorf("output %d differs: %v / %v / %v", i, a1.outputs[i], a2.outputs[i], a3.outputs[i])
		}
	}
	if a1.desc != a2.desc || a2.desc != a3.desc {
		t.Errorf("descendant counts differ: %d / %d / %d", a1.desc, a2.desc, a3.desc)
	}
}
