package cloud

import (
	"testing"
	"time"

	"passcloud/internal/cloud/billing"
)

func TestNewWiresSharedInfrastructure(t *testing.T) {
	cl := New(Config{Seed: 1, MaxDelay: 5 * time.Second})
	if cl.S3 == nil || cl.SDB == nil || cl.SQS == nil {
		t.Fatal("services missing")
	}
	if cl.Clock == nil || cl.RNG == nil || cl.Meter == nil {
		t.Fatal("infrastructure missing")
	}
	// All services bill onto the same meter.
	if err := cl.S3.CreateBucket("abc"); err != nil {
		t.Fatal(err)
	}
	if err := cl.SDB.CreateDomain("d"); err != nil {
		t.Fatal(err)
	}
	if err := cl.SQS.CreateQueue("q"); err != nil {
		t.Fatal(err)
	}
	u := cl.Usage()
	if u.Ops(billing.S3) == 0 || u.Ops(billing.SimpleDB) == 0 || u.Ops(billing.SQS) == 0 {
		t.Fatalf("shared meter missing ops: %v", u)
	}
}

func TestSettleAdvancesPastHorizon(t *testing.T) {
	cl := New(Config{Seed: 2, MaxDelay: 10 * time.Second})
	if err := cl.S3.CreateBucket("abc"); err != nil {
		t.Fatal(err)
	}
	if err := cl.S3.Put("abc", "k", []byte("v"), nil); err != nil {
		t.Fatal(err)
	}
	before := cl.Clock.Now()
	cl.Settle()
	if got := cl.Clock.Now().Sub(before); got <= 10*time.Second {
		t.Fatalf("Settle advanced only %v", got)
	}
	// After settle every read succeeds.
	for i := 0; i < 20; i++ {
		if _, err := cl.S3.Get("abc", "k"); err != nil {
			t.Fatalf("read after settle: %v", err)
		}
	}
}

func TestSameSeedSameBehaviour(t *testing.T) {
	run := func() string {
		cl := New(Config{Seed: 42})
		if err := cl.SQS.CreateQueue("q"); err != nil {
			t.Fatal(err)
		}
		id, err := cl.SQS.SendMessage("q", "m")
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	if run() != run() {
		t.Fatal("same seed produced different message ids")
	}
}
