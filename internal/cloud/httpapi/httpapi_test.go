package httpapi

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"passcloud/internal/cloud"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(New(cloud.New(cloud.Config{Seed: 1})))
	t.Cleanup(srv.Close)
	return srv
}

func do(t *testing.T, method, url string, body string, headers map[string]string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(data)
}

func TestS3ObjectLifecycle(t *testing.T) {
	srv := newTestServer(t)

	resp, _ := do(t, http.MethodPut, srv.URL+"/s3/mybucket", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create bucket: %d", resp.StatusCode)
	}
	// Duplicate create conflicts.
	resp, _ = do(t, http.MethodPut, srv.URL+"/s3/mybucket", "", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate bucket: %d", resp.StatusCode)
	}

	resp, _ = do(t, http.MethodPut, srv.URL+"/s3/mybucket/data/file.txt", "hello", map[string]string{
		"X-Amz-Meta-Prov": "input=bar:2",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("put object: %d", resp.StatusCode)
	}

	resp, body := do(t, http.MethodGet, srv.URL+"/s3/mybucket/data/file.txt", "", nil)
	if resp.StatusCode != http.StatusOK || body != "hello" {
		t.Fatalf("get object: %d %q", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Amz-Meta-Prov"); got != "input=bar:2" {
		t.Fatalf("metadata header = %q", got)
	}
	if resp.Header.Get("ETag") == "" {
		t.Fatal("missing ETag")
	}

	// HEAD: metadata without body.
	resp, body = do(t, http.MethodHead, srv.URL+"/s3/mybucket/data/file.txt", "", nil)
	if resp.StatusCode != http.StatusOK || body != "" {
		t.Fatalf("head: %d %q", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Amz-Meta-Prov") == "" {
		t.Fatal("head lost metadata")
	}

	// Range GET.
	resp, body = do(t, http.MethodGet, srv.URL+"/s3/mybucket/data/file.txt", "", map[string]string{
		"Range": "bytes=1-3",
	})
	if body != "ell" {
		t.Fatalf("range get = %q", body)
	}

	// COPY via the header protocol, replacing metadata.
	resp, _ = do(t, http.MethodPut, srv.URL+"/s3/mybucket/data/copy.txt", "", map[string]string{
		"X-Amz-Copy-Source":        "/mybucket/data/file.txt",
		"X-Amz-Metadata-Directive": "REPLACE",
		"X-Amz-Meta-Fresh":         "yes",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("copy: %d", resp.StatusCode)
	}
	resp, body = do(t, http.MethodGet, srv.URL+"/s3/mybucket/data/copy.txt", "", nil)
	if body != "hello" || resp.Header.Get("X-Amz-Meta-Fresh") != "yes" || resp.Header.Get("X-Amz-Meta-Prov") != "" {
		t.Fatalf("copy content/meta wrong: %q %v", body, resp.Header)
	}

	// LIST with prefix.
	resp, body = do(t, http.MethodGet, srv.URL+"/s3/mybucket?prefix=data/", "", nil)
	var listing struct {
		Contents []struct{ Key string }
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Contents) != 2 {
		t.Fatalf("listing = %+v", listing)
	}

	// DELETE.
	resp, _ = do(t, http.MethodDelete, srv.URL+"/s3/mybucket/data/file.txt", "", nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	resp, _ = do(t, http.MethodGet, srv.URL+"/s3/mybucket/data/file.txt", "", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete: %d", resp.StatusCode)
	}
}

func TestS3Errors(t *testing.T) {
	srv := newTestServer(t)
	resp, _ := do(t, http.MethodGet, srv.URL+"/s3/nobucket/key", "", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing bucket: %d", resp.StatusCode)
	}
	resp, _ = do(t, http.MethodGet, srv.URL+"/s3/", "", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty bucket: %d", resp.StatusCode)
	}
	resp, _ = do(t, http.MethodPatch, srv.URL+"/s3/b/k", "", nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("bad method: %d", resp.StatusCode)
	}
}

func sdbCall(t *testing.T, srv *httptest.Server, params url.Values) (int, string) {
	t.Helper()
	resp, body := do(t, http.MethodPost, srv.URL+"/sdb", params.Encode(), map[string]string{
		"Content-Type": "application/x-www-form-urlencoded",
	})
	return resp.StatusCode, body
}

func TestSimpleDBProtocol(t *testing.T) {
	srv := newTestServer(t)

	status, _ := sdbCall(t, srv, url.Values{"Action": {"CreateDomain"}, "DomainName": {"prov"}})
	if status != http.StatusOK {
		t.Fatalf("create domain: %d", status)
	}

	status, _ = sdbCall(t, srv, url.Values{
		"Action": {"PutAttributes"}, "DomainName": {"prov"}, "ItemName": {"foo_2"},
		"Attribute.1.Name": {"input"}, "Attribute.1.Value": {"bar:2"},
		"Attribute.2.Name": {"type"}, "Attribute.2.Value": {"file"},
	})
	if status != http.StatusOK {
		t.Fatalf("put attributes: %d", status)
	}

	status, body := sdbCall(t, srv, url.Values{
		"Action": {"GetAttributes"}, "DomainName": {"prov"}, "ItemName": {"foo_2"},
	})
	if status != http.StatusOK || !strings.Contains(body, "bar:2") {
		t.Fatalf("get attributes: %d %s", status, body)
	}

	status, body = sdbCall(t, srv, url.Values{
		"Action": {"Query"}, "DomainName": {"prov"},
		"QueryExpression": {"['type' = 'file']"},
	})
	if status != http.StatusOK || !strings.Contains(body, "foo_2") {
		t.Fatalf("query: %d %s", status, body)
	}

	status, body = sdbCall(t, srv, url.Values{
		"Action":           {"Select"},
		"SelectExpression": {"select itemName() from prov where type = 'file'"},
	})
	if status != http.StatusOK || !strings.Contains(body, "foo_2") {
		t.Fatalf("select: %d %s", status, body)
	}

	status, _ = sdbCall(t, srv, url.Values{
		"Action": {"DeleteAttributes"}, "DomainName": {"prov"}, "ItemName": {"foo_2"},
	})
	if status != http.StatusOK {
		t.Fatalf("delete attributes: %d", status)
	}
	status, body = sdbCall(t, srv, url.Values{
		"Action": {"GetAttributes"}, "DomainName": {"prov"}, "ItemName": {"foo_2"},
	})
	if !strings.Contains(body, `"Exists":false`) {
		t.Fatalf("item survived: %s", body)
	}

	status, _ = sdbCall(t, srv, url.Values{"Action": {"Bogus"}})
	if status != http.StatusBadRequest {
		t.Fatalf("unknown action: %d", status)
	}
}

func sqsCall(t *testing.T, srv *httptest.Server, params url.Values) (int, string) {
	t.Helper()
	resp, body := do(t, http.MethodPost, srv.URL+"/sqs", params.Encode(), map[string]string{
		"Content-Type": "application/x-www-form-urlencoded",
	})
	return resp.StatusCode, body
}

func TestSQSProtocol(t *testing.T) {
	srv := newTestServer(t)

	status, _ := sqsCall(t, srv, url.Values{"Action": {"CreateQueue"}, "QueueName": {"wal"}})
	if status != http.StatusOK {
		t.Fatalf("create queue: %d", status)
	}
	status, body := sqsCall(t, srv, url.Values{
		"Action": {"SendMessage"}, "QueueName": {"wal"}, "MessageBody": {"begin tx1 3"},
	})
	if status != http.StatusOK || !strings.Contains(body, "MessageId") {
		t.Fatalf("send: %d %s", status, body)
	}

	status, body = sqsCall(t, srv, url.Values{
		"Action": {"ReceiveMessage"}, "QueueName": {"wal"}, "MaxNumberOfMessages": {"10"},
	})
	if status != http.StatusOK {
		t.Fatalf("receive: %d", status)
	}
	var recv struct {
		Messages []struct {
			Body          string
			ReceiptHandle string
		}
	}
	if err := json.Unmarshal([]byte(body), &recv); err != nil {
		t.Fatal(err)
	}
	// Sampling may miss; retry a few times.
	for i := 0; len(recv.Messages) == 0 && i < 20; i++ {
		_, body = sqsCall(t, srv, url.Values{
			"Action": {"ReceiveMessage"}, "QueueName": {"wal"}, "MaxNumberOfMessages": {"10"},
		})
		if err := json.Unmarshal([]byte(body), &recv); err != nil {
			t.Fatal(err)
		}
	}
	if len(recv.Messages) != 1 || recv.Messages[0].Body != "begin tx1 3" {
		t.Fatalf("received: %+v", recv)
	}

	status, _ = sqsCall(t, srv, url.Values{
		"Action": {"DeleteMessage"}, "QueueName": {"wal"},
		"ReceiptHandle": {recv.Messages[0].ReceiptHandle},
	})
	if status != http.StatusOK {
		t.Fatalf("delete message: %d", status)
	}

	status, body = sqsCall(t, srv, url.Values{
		"Action": {"GetQueueAttributes"}, "QueueName": {"wal"},
	})
	if status != http.StatusOK || !strings.Contains(body, "ApproximateNumberOfMessages") {
		t.Fatalf("attributes: %d %s", status, body)
	}
}

func TestUsageEndpoint(t *testing.T) {
	srv := newTestServer(t)
	do(t, http.MethodPut, srv.URL+"/s3/abc", "", nil)
	resp, body := do(t, http.MethodGet, srv.URL+"/usage", "", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "S3/PUT") {
		t.Fatalf("usage: %d %s", resp.StatusCode, body)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv := newTestServer(t)
	do(t, http.MethodPut, srv.URL+"/s3/shared", "", nil)
	done := make(chan error, 8)
	for c := 0; c < 8; c++ {
		go func(c int) {
			for i := 0; i < 20; i++ {
				key := fmt.Sprintf("k-%d-%d", c, i)
				resp, _ := do(t, http.MethodPut, srv.URL+"/s3/shared/"+key, "v", nil)
				if resp.StatusCode != http.StatusOK {
					done <- fmt.Errorf("put %s: %d", key, resp.StatusCode)
					return
				}
			}
			done <- nil
		}(c)
	}
	for c := 0; c < 8; c++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestSimpleDBBatchPutAttributes(t *testing.T) {
	srv := newTestServer(t)

	status, _ := sdbCall(t, srv, url.Values{"Action": {"CreateDomain"}, "DomainName": {"prov"}})
	if status != http.StatusOK {
		t.Fatalf("create domain: %d", status)
	}

	status, _ = sdbCall(t, srv, url.Values{
		"Action": {"BatchPutAttributes"}, "DomainName": {"prov"},
		"Item.1.ItemName":          {"a_0"},
		"Item.1.Attribute.1.Name":  {"type"},
		"Item.1.Attribute.1.Value": {"file"},
		"Item.2.ItemName":          {"b_0"},
		"Item.2.Attribute.1.Name":  {"type"},
		"Item.2.Attribute.1.Value": {"process"},
		"Item.2.Attribute.2.Name":  {"input"},
		"Item.2.Attribute.2.Value": {"a:0"},
	})
	if status != http.StatusOK {
		t.Fatalf("batch put: %d", status)
	}

	for item, want := range map[string]string{"a_0": "file", "b_0": "a:0"} {
		status, body := sdbCall(t, srv, url.Values{
			"Action": {"GetAttributes"}, "DomainName": {"prov"}, "ItemName": {item},
		})
		if status != http.StatusOK || !strings.Contains(body, want) {
			t.Fatalf("get %s: %d %s", item, status, body)
		}
	}

	// No items at all is a client error.
	status, _ = sdbCall(t, srv, url.Values{"Action": {"BatchPutAttributes"}, "DomainName": {"prov"}})
	if status != http.StatusBadRequest {
		t.Fatalf("empty batch: %d", status)
	}
}
