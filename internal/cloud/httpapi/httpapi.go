// Package httpapi exposes the simulated AWS services over HTTP, in the
// spirit of the 2009 interfaces the paper describes (§2: REST for S3, the
// query protocol for SimpleDB and SQS). Responses are JSON rather than the
// period-correct XML; the wire shapes (actions, parameters, headers) follow
// the originals closely enough that the endpoints read like AWS.
//
// cmd/awssim serves this API so the simulated region can be poked with
// curl; the package tests double as protocol documentation.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"passcloud/internal/cloud"
	"passcloud/internal/cloud/s3"
	"passcloud/internal/cloud/sdb"
	"passcloud/internal/cloud/sqs"
)

// metaHeaderPrefix carries user metadata on S3 requests, as on real S3.
const metaHeaderPrefix = "X-Amz-Meta-"

// Handler routes the three services.
type Handler struct {
	cloud *cloud.Cloud
	mux   *http.ServeMux
}

// New builds a handler over a simulated region.
func New(cl *cloud.Cloud) *Handler {
	h := &Handler{cloud: cl, mux: http.NewServeMux()}
	h.mux.HandleFunc("/s3/", h.serveS3)
	h.mux.HandleFunc("/sdb", h.serveSDB)
	h.mux.HandleFunc("/sqs", h.serveSQS)
	h.mux.HandleFunc("/usage", h.serveUsage)
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

// writeJSON renders a success body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr maps service errors onto AWS-ish status codes.
func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, s3.ErrNoSuchBucket), errors.Is(err, s3.ErrNoSuchKey),
		errors.Is(err, sdb.ErrNoSuchDomain), errors.Is(err, sqs.ErrNoSuchQueue):
		status = http.StatusNotFound
	case errors.Is(err, s3.ErrBucketAlreadyExists), errors.Is(err, sdb.ErrDomainExists),
		errors.Is(err, sqs.ErrQueueExists):
		status = http.StatusConflict
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// --- S3: REST-style ----------------------------------------------------------

// serveS3 handles /s3/{bucket}[/{key...}].
func (h *Handler) serveS3(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/s3/")
	bucket, key, hasKey := strings.Cut(rest, "/")
	if bucket == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "missing bucket"})
		return
	}

	switch {
	case !hasKey || key == "":
		h.serveS3Bucket(w, r, bucket)
	default:
		h.serveS3Object(w, r, bucket, key)
	}
}

func (h *Handler) serveS3Bucket(w http.ResponseWriter, r *http.Request, bucket string) {
	switch r.Method {
	case http.MethodPut:
		if err := h.cloud.S3.CreateBucket(bucket); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"bucket": bucket})
	case http.MethodDelete:
		if err := h.cloud.S3.DeleteBucket(bucket); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusNoContent, nil)
	case http.MethodGet:
		q := r.URL.Query()
		maxKeys := 0
		if v := q.Get("max-keys"); v != "" {
			maxKeys, _ = strconv.Atoi(v)
		}
		page, err := h.cloud.S3.List(bucket, q.Get("prefix"), q.Get("marker"), maxKeys)
		if err != nil {
			writeErr(w, err)
			return
		}
		type entry struct {
			Key          string    `json:"Key"`
			Size         int64     `json:"Size"`
			ETag         string    `json:"ETag"`
			LastModified time.Time `json:"LastModified"`
		}
		out := struct {
			Contents    []entry `json:"Contents"`
			IsTruncated bool    `json:"IsTruncated"`
			NextMarker  string  `json:"NextMarker,omitempty"`
		}{IsTruncated: page.IsTruncated, NextMarker: page.NextMarker}
		for _, o := range page.Objects {
			out.Contents = append(out.Contents, entry{Key: o.Key, Size: o.Size, ETag: o.ETag, LastModified: o.LastModified})
		}
		writeJSON(w, http.StatusOK, out)
	default:
		w.WriteHeader(http.StatusMethodNotAllowed)
	}
}

func (h *Handler) serveS3Object(w http.ResponseWriter, r *http.Request, bucket, key string) {
	switch r.Method {
	case http.MethodPut:
		if src := r.Header.Get("X-Amz-Copy-Source"); src != "" {
			srcBucket, srcKey, ok := strings.Cut(strings.TrimPrefix(src, "/"), "/")
			if !ok {
				writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad copy source"})
				return
			}
			var newMeta map[string]string
			if r.Header.Get("X-Amz-Metadata-Directive") == "REPLACE" {
				newMeta = metaFromHeaders(r.Header)
			}
			if err := h.cloud.S3.Copy(srcBucket, srcKey, bucket, key, newMeta); err != nil {
				writeErr(w, err)
				return
			}
			writeJSON(w, http.StatusOK, map[string]string{"copied": key})
			return
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			writeErr(w, err)
			return
		}
		if err := h.cloud.S3.Put(bucket, key, body, metaFromHeaders(r.Header)); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"key": key})

	case http.MethodGet:
		var obj *s3.Object
		var err error
		if rng := r.Header.Get("Range"); rng != "" {
			offset, length, perr := parseRange(rng)
			if perr != nil {
				writeErr(w, perr)
				return
			}
			obj, err = h.cloud.S3.GetRange(bucket, key, offset, length)
		} else {
			obj, err = h.cloud.S3.Get(bucket, key)
		}
		if err != nil {
			writeErr(w, err)
			return
		}
		metaToHeaders(w.Header(), obj.Metadata)
		w.Header().Set("ETag", obj.ETag)
		w.Header().Set("Content-Length", strconv.Itoa(len(obj.Body)))
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(obj.Body)

	case http.MethodHead:
		info, err := h.cloud.S3.Head(bucket, key)
		if err != nil {
			writeErr(w, err)
			return
		}
		metaToHeaders(w.Header(), info.Metadata)
		w.Header().Set("ETag", info.ETag)
		w.Header().Set("Content-Length", strconv.FormatInt(info.Size, 10))
		w.WriteHeader(http.StatusOK)

	case http.MethodDelete:
		if err := h.cloud.S3.Delete(bucket, key); err != nil {
			writeErr(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)

	default:
		w.WriteHeader(http.StatusMethodNotAllowed)
	}
}

func metaFromHeaders(hdr http.Header) map[string]string {
	var meta map[string]string
	for name, values := range hdr {
		if strings.HasPrefix(name, metaHeaderPrefix) && len(values) > 0 {
			if meta == nil {
				meta = make(map[string]string)
			}
			meta[strings.ToLower(strings.TrimPrefix(name, metaHeaderPrefix))] = values[0]
		}
	}
	return meta
}

func metaToHeaders(hdr http.Header, meta map[string]string) {
	for k, v := range meta {
		hdr.Set(metaHeaderPrefix+k, v)
	}
}

// parseRange handles "bytes=start-end" (end inclusive, may be empty).
func parseRange(s string) (offset, length int64, err error) {
	s = strings.TrimPrefix(s, "bytes=")
	startStr, endStr, ok := strings.Cut(s, "-")
	if !ok {
		return 0, 0, fmt.Errorf("malformed range %q", s)
	}
	offset, err = strconv.ParseInt(startStr, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("malformed range start %q", startStr)
	}
	if endStr == "" {
		return offset, -1, nil
	}
	end, err := strconv.ParseInt(endStr, 10, 64)
	if err != nil || end < offset {
		return 0, 0, fmt.Errorf("malformed range end %q", endStr)
	}
	return offset, end - offset + 1, nil
}

// --- SimpleDB: query protocol -------------------------------------------------

// serveSDB handles /sdb?Action=...
func (h *Handler) serveSDB(w http.ResponseWriter, r *http.Request) {
	if err := r.ParseForm(); err != nil {
		writeErr(w, err)
		return
	}
	get := func(k string) string { return r.Form.Get(k) }

	switch get("Action") {
	case "CreateDomain":
		if err := h.cloud.SDB.CreateDomain(get("DomainName")); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"domain": get("DomainName")})
	case "DeleteDomain":
		if err := h.cloud.SDB.DeleteDomain(get("DomainName")); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, nil)
	case "ListDomains":
		writeJSON(w, http.StatusOK, map[string][]string{"DomainNames": h.cloud.SDB.ListDomains()})
	case "PutAttributes":
		attrs, err := attrsFromForm(r.Form)
		if err != nil {
			writeErr(w, err)
			return
		}
		if err := h.cloud.SDB.PutAttributes(get("DomainName"), get("ItemName"), attrs); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, nil)
	case "BatchPutAttributes":
		items, err := batchItemsFromForm(r.Form)
		if err != nil {
			writeErr(w, err)
			return
		}
		if err := h.cloud.SDB.BatchPutAttributes(get("DomainName"), items); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, nil)
	case "DeleteAttributes":
		var del []sdb.Attr
		for i := 1; ; i++ {
			name := get(fmt.Sprintf("Attribute.%d.Name", i))
			if name == "" {
				break
			}
			del = append(del, sdb.Attr{Name: name, Value: get(fmt.Sprintf("Attribute.%d.Value", i))})
		}
		if err := h.cloud.SDB.DeleteAttributes(get("DomainName"), get("ItemName"), del); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, nil)
	case "GetAttributes":
		var names []string
		for i := 1; ; i++ {
			n := get(fmt.Sprintf("AttributeName.%d", i))
			if n == "" {
				break
			}
			names = append(names, n)
		}
		attrs, ok, err := h.cloud.SDB.GetAttributes(get("DomainName"), get("ItemName"), names...)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"Exists": ok, "Attributes": attrs})
	case "Query":
		maxResults, _ := strconv.Atoi(get("MaxNumberOfItems"))
		res, err := h.cloud.SDB.Query(get("DomainName"), get("QueryExpression"), maxResults, get("NextToken"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	case "QueryWithAttributes":
		var names []string
		for i := 1; ; i++ {
			n := get(fmt.Sprintf("AttributeName.%d", i))
			if n == "" {
				break
			}
			names = append(names, n)
		}
		maxResults, _ := strconv.Atoi(get("MaxNumberOfItems"))
		res, err := h.cloud.SDB.QueryWithAttributes(get("DomainName"), get("QueryExpression"), names, maxResults, get("NextToken"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	case "Select":
		res, err := h.cloud.SDB.Select(get("SelectExpression"), get("NextToken"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	default:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "unknown Action"})
	}
}

func attrsFromForm(form map[string][]string) ([]sdb.ReplaceableAttr, error) {
	get := func(k string) string {
		if v, ok := form[k]; ok && len(v) > 0 {
			return v[0]
		}
		return ""
	}
	var attrs []sdb.ReplaceableAttr
	for i := 1; ; i++ {
		name := get(fmt.Sprintf("Attribute.%d.Name", i))
		if name == "" {
			break
		}
		attrs = append(attrs, sdb.ReplaceableAttr{
			Name:    name,
			Value:   get(fmt.Sprintf("Attribute.%d.Value", i)),
			Replace: get(fmt.Sprintf("Attribute.%d.Replace", i)) == "true",
		})
	}
	if len(attrs) == 0 {
		return nil, errors.New("no attributes supplied")
	}
	return attrs, nil
}

// batchItemsFromForm parses the 2009 wire shape of BatchPutAttributes:
// Item.N.ItemName plus Item.N.Attribute.M.{Name,Value,Replace}.
func batchItemsFromForm(form map[string][]string) ([]sdb.BatchItem, error) {
	get := func(k string) string {
		if v, ok := form[k]; ok && len(v) > 0 {
			return v[0]
		}
		return ""
	}
	var items []sdb.BatchItem
	for i := 1; ; i++ {
		name := get(fmt.Sprintf("Item.%d.ItemName", i))
		if name == "" {
			break
		}
		item := sdb.BatchItem{Name: name}
		for j := 1; ; j++ {
			attrName := get(fmt.Sprintf("Item.%d.Attribute.%d.Name", i, j))
			if attrName == "" {
				break
			}
			item.Attrs = append(item.Attrs, sdb.ReplaceableAttr{
				Name:    attrName,
				Value:   get(fmt.Sprintf("Item.%d.Attribute.%d.Value", i, j)),
				Replace: get(fmt.Sprintf("Item.%d.Attribute.%d.Replace", i, j)) == "true",
			})
		}
		items = append(items, item)
	}
	if len(items) == 0 {
		return nil, errors.New("no items supplied")
	}
	return items, nil
}

// --- SQS: query protocol -------------------------------------------------------

// serveSQS handles /sqs?Action=...
func (h *Handler) serveSQS(w http.ResponseWriter, r *http.Request) {
	if err := r.ParseForm(); err != nil {
		writeErr(w, err)
		return
	}
	get := func(k string) string { return r.Form.Get(k) }

	switch get("Action") {
	case "CreateQueue":
		if err := h.cloud.SQS.CreateQueue(get("QueueName")); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"QueueUrl": "/sqs/" + get("QueueName")})
	case "DeleteQueue":
		if err := h.cloud.SQS.DeleteQueue(get("QueueName")); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, nil)
	case "ListQueues":
		writeJSON(w, http.StatusOK, map[string][]string{"QueueUrls": h.cloud.SQS.ListQueues()})
	case "SendMessage":
		id, err := h.cloud.SQS.SendMessage(get("QueueName"), get("MessageBody"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"MessageId": id})
	case "ReceiveMessage":
		maxMsgs, _ := strconv.Atoi(get("MaxNumberOfMessages"))
		visibility := time.Duration(0)
		if v := get("VisibilityTimeout"); v != "" {
			secs, _ := strconv.Atoi(v)
			visibility = time.Duration(secs) * time.Second
		}
		msgs, err := h.cloud.SQS.ReceiveMessage(get("QueueName"), maxMsgs, visibility)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"Messages": msgs})
	case "DeleteMessage":
		if err := h.cloud.SQS.DeleteMessage(get("QueueName"), get("ReceiptHandle")); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, nil)
	case "GetQueueAttributes":
		n, err := h.cloud.SQS.ApproximateNumberOfMessages(get("QueueName"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]int{"ApproximateNumberOfMessages": n})
	default:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "unknown Action"})
	}
}

// --- usage ---------------------------------------------------------------------

// serveUsage reports op counts and the current bill.
func (h *Handler) serveUsage(w http.ResponseWriter, _ *http.Request) {
	u := h.cloud.Usage()
	writeJSON(w, http.StatusOK, map[string]string{"usage": u.String()})
}
