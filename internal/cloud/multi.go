package cloud

import (
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"passcloud/internal/cloud/billing"
	"passcloud/internal/sim"
)

// Multi hosts several isolated namespaces inside one simulated region —
// the substrate the shard router and the multi-tenant load harness
// partition the provenance store over. Each namespace is a full *Cloud
// (its own S3, SimpleDB and SQS service instances and its own billing
// meter, so per-tenant and per-shard usage is separable), but every
// namespace shares one virtual clock: Settle converges the whole region
// at once, exactly as it does for a single-namespace Cloud.
//
// Namespace keys double as billing keys: Usage(key) reads one
// namespace's meter, Combined sums them all, and Keys enumerates the
// ledger. A key like "tenant3/shard1" therefore gives the operator both
// the per-tenant bill (sum over the tenant's shards) and the per-shard
// op counts the scale-out acceptance checks gate on.
type Multi struct {
	cfg   Config
	clock *sim.VirtualClock

	mu     sync.Mutex
	spaces map[string]*Cloud
	order  []string
}

// NewMulti builds an empty multi-namespace region from the same Config a
// single-namespace region takes. Per-namespace randomness derives from
// Config.Seed and the namespace key, so runs are reproducible and two
// namespaces never share a random stream.
func NewMulti(cfg Config) *Multi {
	return &Multi{
		cfg:    cfg,
		clock:  sim.NewVirtualClock(),
		spaces: make(map[string]*Cloud),
	}
}

// Namespace returns the named namespace, creating it on first use. The
// returned Cloud is a full region view — services, meter, clock — whose
// clock is shared with every other namespace of this Multi.
func (m *Multi) Namespace(key string) *Cloud {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.spaces[key]; ok {
		return c
	}
	cfg := m.cfg
	cfg.Seed = deriveSeed(m.cfg.Seed, key)
	c := newOnClock(cfg, m.clock)
	m.spaces[key] = c
	m.order = append(m.order, key)
	return c
}

// Keys returns the namespace (billing) keys created so far, sorted.
func (m *Multi) Keys() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := append([]string(nil), m.order...)
	sort.Strings(out)
	return out
}

// Clock exposes the shared virtual clock.
func (m *Multi) Clock() *sim.VirtualClock { return m.clock }

// Settle advances the shared clock past the propagation horizon so every
// namespace's services converge.
func (m *Multi) Settle() {
	m.clock.Advance(m.cfg.MaxDelay + time.Millisecond)
}

// Usage returns one namespace's billing snapshot (the per-tenant billing
// key read). Unknown keys read as zero usage.
func (m *Multi) Usage(key string) billing.Usage {
	m.mu.Lock()
	c, ok := m.spaces[key]
	m.mu.Unlock()
	if !ok {
		return billing.Usage{}
	}
	return c.Usage()
}

// Combined sums every namespace's usage — the whole region's bill.
func (m *Multi) Combined() billing.Usage {
	m.mu.Lock()
	clouds := make([]*Cloud, 0, len(m.spaces))
	for _, c := range m.spaces {
		clouds = append(clouds, c)
	}
	m.mu.Unlock()
	var sum billing.Usage
	for _, c := range clouds {
		sum = sum.Add(c.Usage())
	}
	return sum
}

// deriveSeed mixes a namespace key into the region seed so each
// namespace draws from its own deterministic random stream.
func deriveSeed(seed int64, key string) int64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return seed ^ int64(h.Sum64()&0x7fffffffffffffff)
}
