// Package billing meters simulated AWS usage and prices it with the
// January-2009 rate card the paper quotes.
//
// Amazon charges for (a) data transferred in and out, (b) storage, and
// (c) requests (S3, SQS) or machine hours (SimpleDB). The paper compares the
// three architectures by op counts and bytes, so the meter records those
// exactly; machine hours are additionally approximated from op counts via a
// constant per-op box usage, mirroring how SimpleDB reported BoxUsage.
//
// Every simulated service owns a *Meter and records each API call on it.
// Tables 2 and 3 are read directly off meter snapshots — the evaluation never
// recounts operations by hand.
package billing

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Service identifies which simulated AWS product an op belongs to.
type Service int

// The services the paper's architectures use.
const (
	S3 Service = iota
	SimpleDB
	SQS
	numServices
)

// String returns the conventional service name.
func (s Service) String() string {
	switch s {
	case S3:
		return "S3"
	case SimpleDB:
		return "SimpleDB"
	case SQS:
		return "SQS"
	default:
		return fmt.Sprintf("Service(%d)", int(s))
	}
}

// Tier is the request pricing class an operation bills under.
type Tier int

const (
	// TierMutation covers S3 PUT, COPY, POST and LIST requests:
	// USD 0.01 per 1,000.
	TierMutation Tier = iota
	// TierRetrieval covers S3 GET and all other S3 requests:
	// USD 0.01 per 10,000.
	TierRetrieval
	// TierBox covers SimpleDB operations, which Amazon billed by machine
	// hour; the meter counts ops and approximates box hours.
	TierBox
	// TierMessage covers SQS requests: USD 0.01 per 10,000.
	TierMessage
	numTiers
)

// String names the tier for reports.
func (t Tier) String() string {
	switch t {
	case TierMutation:
		return "mutation"
	case TierRetrieval:
		return "retrieval"
	case TierBox:
		return "box"
	case TierMessage:
		return "message"
	default:
		return fmt.Sprintf("Tier(%d)", int(t))
	}
}

// Meter accumulates usage. It is safe for concurrent use. The zero value is
// ready to use.
type Meter struct {
	mu sync.Mutex

	opsByName map[string]int64 // "S3/PUT" -> count
	opsByTier [numServices][numTiers]int64
	bytesIn   [numServices]int64
	bytesOut  [numServices]int64
	storage   [numServices]int64 // current resident bytes
	peak      [numServices]int64 // high-water resident bytes
}

// ErrSuffix marks failed requests in the by-name ledger: a request that was
// billed (AWS charges for rejected requests too) but did not change any
// state. Keeping failures keyed apart means state-change readers — the
// query cache's invalidation stamp, the planner's write attribution — never
// count a mutation that never landed as a mutation.
const ErrSuffix = "!err"

// OpErr records one failed API request: same pricing tier as Op, separate
// by-name key. Services call it on every billed failure path — injected
// transient/permanent faults, and errors discovered after the billing
// point (e.g. a COPY whose source has not propagated).
func (m *Meter) OpErr(svc Service, name string, tier Tier) {
	m.Op(svc, name+ErrSuffix, tier)
}

// Op records one API request against svc under the given pricing tier.
func (m *Meter) Op(svc Service, name string, tier Tier) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.opsByName == nil {
		m.opsByName = make(map[string]int64)
	}
	m.opsByName[svc.String()+"/"+name]++
	m.opsByTier[svc][tier]++
}

// In records n bytes transferred into the cloud (client upload).
func (m *Meter) In(svc Service, n int64) {
	if n <= 0 {
		return
	}
	m.mu.Lock()
	m.bytesIn[svc] += n
	m.mu.Unlock()
}

// Out records n bytes transferred out of the cloud (client download).
func (m *Meter) Out(svc Service, n int64) {
	if n <= 0 {
		return
	}
	m.mu.Lock()
	m.bytesOut[svc] += n
	m.mu.Unlock()
}

// StorageDelta adjusts the resident byte count for svc by delta (positive on
// store, negative on delete) and tracks the high-water mark.
func (m *Meter) StorageDelta(svc Service, delta int64) {
	m.mu.Lock()
	m.storage[svc] += delta
	if m.storage[svc] < 0 {
		// Deleting more than was stored indicates an accounting bug in a
		// service; clamp rather than corrupt downstream reports.
		m.storage[svc] = 0
	}
	if m.storage[svc] > m.peak[svc] {
		m.peak[svc] = m.storage[svc]
	}
	m.mu.Unlock()
}

// OpSum returns the summed count of the named ops without copying the
// meter. keys use Snapshot's "Service/Name" form ("S3/PUT"). Hot readers —
// the query cache samples its invalidation stamp on every lookup — use
// this instead of Snapshot.
func (m *Meter) OpSum(keys []string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	for _, k := range keys {
		n += m.opsByName[k]
	}
	return n
}

// Snapshot returns a copy of the current usage.
func (m *Meter) Snapshot() Usage {
	m.mu.Lock()
	defer m.mu.Unlock()
	u := Usage{opsByName: make(map[string]int64, len(m.opsByName))}
	for k, v := range m.opsByName {
		u.opsByName[k] = v
	}
	u.opsByTier = m.opsByTier
	u.bytesIn = m.bytesIn
	u.bytesOut = m.bytesOut
	u.storage = m.storage
	u.peak = m.peak
	return u
}

// Reset clears all accumulated usage. Benchmarks reset between phases so
// that, e.g., query costs are not polluted by the load phase.
func (m *Meter) Reset() {
	m.mu.Lock()
	m.opsByName = nil
	m.opsByTier = [numServices][numTiers]int64{}
	m.bytesIn = [numServices]int64{}
	m.bytesOut = [numServices]int64{}
	m.storage = [numServices]int64{}
	m.peak = [numServices]int64{}
	m.mu.Unlock()
}

// Usage is an immutable snapshot of meter state.
type Usage struct {
	opsByName map[string]int64
	opsByTier [numServices][numTiers]int64
	bytesIn   [numServices]int64
	bytesOut  [numServices]int64
	storage   [numServices]int64
	peak      [numServices]int64
}

// Ops returns the total request count against svc.
func (u Usage) Ops(svc Service) int64 {
	var total int64
	for t := Tier(0); t < numTiers; t++ {
		total += u.opsByTier[svc][t]
	}
	return total
}

// TotalOps returns the request count summed over all services.
func (u Usage) TotalOps() int64 {
	var total int64
	for s := Service(0); s < numServices; s++ {
		total += u.Ops(s)
	}
	return total
}

// OpsByTier returns the request count for one pricing tier of one service.
func (u Usage) OpsByTier(svc Service, tier Tier) int64 {
	return u.opsByTier[svc][tier]
}

// OpCount returns the count for a specific op, e.g. OpCount(S3, "PUT").
func (u Usage) OpCount(svc Service, name string) int64 {
	return u.opsByName[svc.String()+"/"+name]
}

// FailedOps returns the billed-but-failed request count against svc (the
// ErrSuffix-keyed ledger entries).
func (u Usage) FailedOps(svc Service) int64 {
	prefix := svc.String() + "/"
	var total int64
	for k, n := range u.opsByName {
		if strings.HasPrefix(k, prefix) && strings.HasSuffix(k, ErrSuffix) {
			total += n
		}
	}
	return total
}

// BytesIn returns bytes uploaded to svc.
func (u Usage) BytesIn(svc Service) int64 { return u.bytesIn[svc] }

// BytesOut returns bytes downloaded from svc.
func (u Usage) BytesOut(svc Service) int64 { return u.bytesOut[svc] }

// Storage returns the bytes currently resident in svc.
func (u Usage) Storage(svc Service) int64 { return u.storage[svc] }

// PeakStorage returns the high-water resident bytes for svc.
func (u Usage) PeakStorage(svc Service) int64 { return u.peak[svc] }

// Add returns the element-wise sum of two usages. The harness uses it to
// combine per-client meters.
func (u Usage) Add(v Usage) Usage {
	sum := Usage{opsByName: make(map[string]int64, len(u.opsByName)+len(v.opsByName))}
	for k, n := range u.opsByName {
		sum.opsByName[k] += n
	}
	for k, n := range v.opsByName {
		sum.opsByName[k] += n
	}
	for s := 0; s < int(numServices); s++ {
		for t := 0; t < int(numTiers); t++ {
			sum.opsByTier[s][t] = u.opsByTier[s][t] + v.opsByTier[s][t]
		}
		sum.bytesIn[s] = u.bytesIn[s] + v.bytesIn[s]
		sum.bytesOut[s] = u.bytesOut[s] + v.bytesOut[s]
		sum.storage[s] = u.storage[s] + v.storage[s]
		sum.peak[s] = u.peak[s] + v.peak[s]
	}
	return sum
}

// Sub returns the element-wise difference u - v, clamped at zero — the
// usage accrued between two snapshots of one meter. Storage gauges are
// point-in-time, not cumulative; Sub keeps u's values for them.
func (u Usage) Sub(v Usage) Usage {
	diff := Usage{opsByName: make(map[string]int64, len(u.opsByName))}
	for k, n := range u.opsByName {
		if d := n - v.opsByName[k]; d > 0 {
			diff.opsByName[k] = d
		}
	}
	clamp := func(d int64) int64 {
		if d < 0 {
			return 0
		}
		return d
	}
	for s := 0; s < int(numServices); s++ {
		for t := 0; t < int(numTiers); t++ {
			diff.opsByTier[s][t] = clamp(u.opsByTier[s][t] - v.opsByTier[s][t])
		}
		diff.bytesIn[s] = clamp(u.bytesIn[s] - v.bytesIn[s])
		diff.bytesOut[s] = clamp(u.bytesOut[s] - v.bytesOut[s])
		diff.storage[s] = u.storage[s]
		diff.peak[s] = u.peak[s]
	}
	return diff
}

// String renders a compact multi-line usage report, ops sorted by name.
func (u Usage) String() string {
	var b strings.Builder
	names := make([]string, 0, len(u.opsByName))
	for k := range u.opsByName {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(&b, "%-28s %12d\n", k, u.opsByName[k])
	}
	for s := Service(0); s < numServices; s++ {
		if u.bytesIn[s]+u.bytesOut[s]+u.storage[s] == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-10s in=%d out=%d stored=%d peak=%d\n",
			s, u.bytesIn[s], u.bytesOut[s], u.storage[s], u.peak[s])
	}
	return b.String()
}
