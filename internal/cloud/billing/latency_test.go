package billing

import (
	"strings"
	"testing"
	"time"
)

func TestLatencyEstimateRequestTerm(t *testing.T) {
	var m Meter
	for i := 0; i < 100; i++ {
		m.Op(S3, "PUT", TierMutation)
	}
	model := LatencyModel{S3Mutation: 100 * time.Millisecond, Concurrency: 1}
	if got, want := model.Estimate(m.Snapshot()), 10*time.Second; got != want {
		t.Fatalf("Estimate = %v, want %v", got, want)
	}
	// Four-way concurrency quarters it.
	model.Concurrency = 4
	if got, want := model.Estimate(m.Snapshot()), 2500*time.Millisecond; got != want {
		t.Fatalf("concurrent Estimate = %v, want %v", got, want)
	}
}

func TestLatencyEstimateBandwidthTerm(t *testing.T) {
	var m Meter
	m.In(S3, 10<<20) // 10 MB
	model := LatencyModel{UploadBps: 1 << 20, Concurrency: 1}
	if got, want := model.Estimate(m.Snapshot()), 10*time.Second; got != want {
		t.Fatalf("Estimate = %v, want %v", got, want)
	}
}

func TestLatencyZeroConcurrencyClamped(t *testing.T) {
	var m Meter
	m.Op(SQS, "SendMessage", TierMessage)
	model := LatencyModel{SQSOp: time.Second}
	if got := model.Estimate(m.Snapshot()); got != time.Second {
		t.Fatalf("Estimate with zero concurrency = %v", got)
	}
}

func TestLatencyOrderingAcrossArchitectures(t *testing.T) {
	// The op mixes of the three architectures (paper scale) must order the
	// same way in modeled time as in op count.
	mkUsage := func(s3Mut, s3Ret, sdbOps, sqsOps int) Usage {
		var m Meter
		for i := 0; i < s3Mut; i++ {
			m.Op(S3, "PUT", TierMutation)
		}
		for i := 0; i < s3Ret; i++ {
			m.Op(S3, "GET", TierRetrieval)
		}
		for i := 0; i < sdbOps; i++ {
			m.Op(SimpleDB, "PutAttributes", TierBox)
		}
		for i := 0; i < sqsOps; i++ {
			m.Op(SQS, "SendMessage", TierMessage)
		}
		return m.Snapshot()
	}
	arch1 := WAN2009.Estimate(mkUsage(56_132, 0, 0, 0))
	arch2 := WAN2009.Estimate(mkUsage(56_132, 0, 168_514, 0))
	arch3 := WAN2009.Estimate(mkUsage(62_360, 0, 168_514, 62_773))
	if !(arch1 < arch2 && arch2 < arch3) {
		t.Fatalf("modeled time ordering broken: %v %v %v", arch1, arch2, arch3)
	}
}

func TestWAN2009String(t *testing.T) {
	if !strings.Contains(WAN2009.String(), "4-way") {
		t.Fatalf("String = %q", WAN2009.String())
	}
}
