package billing

import (
	"fmt"
	"strings"
)

// GB is the unit Amazon bills storage and transfer in.
const GB = 1 << 30

// PriceSheet holds the USD rates applied to a Usage. All rates are USD.
type PriceSheet struct {
	// S3StoragePerGBMonth is the S3 storage price (first 50 TB tier).
	S3StoragePerGBMonth float64
	// TransferInPerGB is the price per GB uploaded (all services).
	TransferInPerGB float64
	// TransferOutPerGB is the price per GB downloaded (first 10 TB tier).
	TransferOutPerGB float64
	// S3MutationPer1000 prices S3 PUT/COPY/POST/LIST requests per 1,000.
	S3MutationPer1000 float64
	// S3RetrievalPer10000 prices S3 GET and other requests per 10,000.
	S3RetrievalPer10000 float64
	// SDBStoragePerGBMonth is the SimpleDB structured-storage price.
	SDBStoragePerGBMonth float64
	// SDBBoxHour is the SimpleDB machine-hour price.
	SDBBoxHour float64
	// SDBBoxHoursPerOp approximates machine hours consumed per operation.
	// Real SimpleDB reported a BoxUsage per call in this range for small
	// requests.
	SDBBoxHoursPerOp float64
	// SQSPer10000 prices SQS requests per 10,000.
	SQSPer10000 float64
}

// Jan2009 is the rate card quoted in the paper (section 2.1, an AWS snapshot
// from January 2009).
var Jan2009 = PriceSheet{
	S3StoragePerGBMonth:  0.15,
	TransferInPerGB:      0.10,
	TransferOutPerGB:     0.17,
	S3MutationPer1000:    0.01,
	S3RetrievalPer10000:  0.01,
	SDBStoragePerGBMonth: 1.50,
	SDBBoxHour:           0.14,
	SDBBoxHoursPerOp:     0.0000219907, // documented BoxUsage base for small ops
	SQSPer10000:          0.01,
}

// Cost is an itemized USD bill for one usage snapshot.
type Cost struct {
	// StorageMonthly is the recurring monthly storage charge across
	// services, assuming the snapshot's resident bytes persist.
	StorageMonthly float64
	// TransferIn is the one-time upload charge.
	TransferIn float64
	// TransferOut is the one-time download charge.
	TransferOut float64
	// Requests is the one-time request (or machine-hour) charge.
	Requests float64
}

// Total returns the sum of all cost components.
func (c Cost) Total() float64 {
	return c.StorageMonthly + c.TransferIn + c.TransferOut + c.Requests
}

// String renders the bill.
func (c Cost) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "storage/month $%.4f, in $%.4f, out $%.4f, requests $%.4f, total $%.4f",
		c.StorageMonthly, c.TransferIn, c.TransferOut, c.Requests, c.Total())
	return b.String()
}

// Price applies the sheet to a usage snapshot.
func (p PriceSheet) Price(u Usage) Cost {
	var c Cost

	gb := func(n int64) float64 { return float64(n) / GB }

	// Storage: S3 and SimpleDB at their respective rates; SQS message
	// residency was priced as storage too, at the S3 rate.
	c.StorageMonthly += gb(u.Storage(S3)) * p.S3StoragePerGBMonth
	c.StorageMonthly += gb(u.Storage(SimpleDB)) * p.SDBStoragePerGBMonth
	c.StorageMonthly += gb(u.Storage(SQS)) * p.S3StoragePerGBMonth

	for _, svc := range []Service{S3, SimpleDB, SQS} {
		c.TransferIn += gb(u.BytesIn(svc)) * p.TransferInPerGB
		c.TransferOut += gb(u.BytesOut(svc)) * p.TransferOutPerGB
	}

	c.Requests += float64(u.OpsByTier(S3, TierMutation)) / 1000 * p.S3MutationPer1000
	c.Requests += float64(u.OpsByTier(S3, TierRetrieval)) / 10000 * p.S3RetrievalPer10000
	c.Requests += float64(u.OpsByTier(SimpleDB, TierBox)) * p.SDBBoxHoursPerOp * p.SDBBoxHour
	c.Requests += float64(u.OpsByTier(SQS, TierMessage)) / 10000 * p.SQSPer10000

	return c
}
