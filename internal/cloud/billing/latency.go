package billing

import (
	"fmt"
	"time"
)

// LatencyModel estimates wall-clock time from a usage snapshot — the
// measurement the paper deferred to future work: "a prototype will allow us
// to measure the impact of the extra operations on elapsed time" (§7).
//
// The model charges a fixed round-trip per request class plus a bandwidth
// term for payload bytes, assuming a configurable request concurrency
// (clients pipelined requests; the commit daemon batches receives).
type LatencyModel struct {
	// Per-request round-trip times.
	S3Mutation  time.Duration // PUT/COPY/POST/LIST
	S3Retrieval time.Duration // GET/HEAD/DELETE
	SDBOp       time.Duration // all SimpleDB calls
	SQSOp       time.Duration // all SQS calls
	// Bandwidth for payload transfer, bytes per second.
	UploadBps   int64
	DownloadBps int64
	// Concurrency divides the request-latency total: the effective number
	// of requests in flight. 1 models a strictly serial client.
	Concurrency int
}

// WAN2009 approximates client-to-AWS behaviour contemporaneous with the
// paper: ~100 ms per S3 write, ~40 ms per read-class request, ~30 ms for
// the database/queue front-ends, DSL-era bandwidth.
var WAN2009 = LatencyModel{
	S3Mutation:  100 * time.Millisecond,
	S3Retrieval: 40 * time.Millisecond,
	SDBOp:       30 * time.Millisecond,
	SQSOp:       30 * time.Millisecond,
	UploadBps:   2 << 20, // 2 MB/s up
	DownloadBps: 8 << 20, // 8 MB/s down
	Concurrency: 4,
}

// Estimate computes the modeled elapsed time for a usage snapshot.
func (m LatencyModel) Estimate(u Usage) time.Duration {
	conc := m.Concurrency
	if conc < 1 {
		conc = 1
	}
	var reqTotal time.Duration
	reqTotal += time.Duration(u.OpsByTier(S3, TierMutation)) * m.S3Mutation
	reqTotal += time.Duration(u.OpsByTier(S3, TierRetrieval)) * m.S3Retrieval
	reqTotal += time.Duration(u.Ops(SimpleDB)) * m.SDBOp
	reqTotal += time.Duration(u.Ops(SQS)) * m.SQSOp
	reqTotal /= time.Duration(conc)

	var xfer time.Duration
	if m.UploadBps > 0 {
		in := u.BytesIn(S3) + u.BytesIn(SimpleDB) + u.BytesIn(SQS)
		xfer += time.Duration(float64(in) / float64(m.UploadBps) * float64(time.Second))
	}
	if m.DownloadBps > 0 {
		out := u.BytesOut(S3) + u.BytesOut(SimpleDB) + u.BytesOut(SQS)
		xfer += time.Duration(float64(out) / float64(m.DownloadBps) * float64(time.Second))
	}
	return reqTotal + xfer
}

// String describes the model compactly.
func (m LatencyModel) String() string {
	return fmt.Sprintf("s3 %v/%v, sdb %v, sqs %v, %d-way, %dMBps up / %dMBps down",
		m.S3Mutation, m.S3Retrieval, m.SDBOp, m.SQSOp,
		m.Concurrency, m.UploadBps>>20, m.DownloadBps>>20)
}
