package billing

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestMeterOpCounts(t *testing.T) {
	var m Meter
	m.Op(S3, "PUT", TierMutation)
	m.Op(S3, "PUT", TierMutation)
	m.Op(S3, "GET", TierRetrieval)
	m.Op(SimpleDB, "PutAttributes", TierBox)

	u := m.Snapshot()
	if got := u.OpCount(S3, "PUT"); got != 2 {
		t.Fatalf("OpCount(S3, PUT) = %d, want 2", got)
	}
	if got := u.OpCount(S3, "GET"); got != 1 {
		t.Fatalf("OpCount(S3, GET) = %d, want 1", got)
	}
	if got := u.Ops(S3); got != 3 {
		t.Fatalf("Ops(S3) = %d, want 3", got)
	}
	if got := u.Ops(SimpleDB); got != 1 {
		t.Fatalf("Ops(SimpleDB) = %d, want 1", got)
	}
	if got := u.TotalOps(); got != 4 {
		t.Fatalf("TotalOps = %d, want 4", got)
	}
	if got := u.OpsByTier(S3, TierMutation); got != 2 {
		t.Fatalf("OpsByTier(S3, mutation) = %d, want 2", got)
	}
}

func TestMeterBytes(t *testing.T) {
	var m Meter
	m.In(S3, 100)
	m.In(S3, 50)
	m.Out(S3, 30)
	m.In(SQS, 7)
	m.In(S3, -10) // ignored
	m.Out(S3, 0)  // ignored

	u := m.Snapshot()
	if got := u.BytesIn(S3); got != 150 {
		t.Fatalf("BytesIn(S3) = %d, want 150", got)
	}
	if got := u.BytesOut(S3); got != 30 {
		t.Fatalf("BytesOut(S3) = %d, want 30", got)
	}
	if got := u.BytesIn(SQS); got != 7 {
		t.Fatalf("BytesIn(SQS) = %d, want 7", got)
	}
}

func TestMeterStorageHighWater(t *testing.T) {
	var m Meter
	m.StorageDelta(S3, 1000)
	m.StorageDelta(S3, 500)
	m.StorageDelta(S3, -1200)
	u := m.Snapshot()
	if got := u.Storage(S3); got != 300 {
		t.Fatalf("Storage = %d, want 300", got)
	}
	if got := u.PeakStorage(S3); got != 1500 {
		t.Fatalf("PeakStorage = %d, want 1500", got)
	}
}

func TestMeterStorageClampsAtZero(t *testing.T) {
	var m Meter
	m.StorageDelta(SQS, 10)
	m.StorageDelta(SQS, -50)
	if got := m.Snapshot().Storage(SQS); got != 0 {
		t.Fatalf("Storage after over-delete = %d, want 0 (clamped)", got)
	}
}

func TestMeterReset(t *testing.T) {
	var m Meter
	m.Op(S3, "PUT", TierMutation)
	m.In(S3, 10)
	m.StorageDelta(S3, 10)
	m.Reset()
	u := m.Snapshot()
	if u.TotalOps() != 0 || u.BytesIn(S3) != 0 || u.Storage(S3) != 0 || u.PeakStorage(S3) != 0 {
		t.Fatalf("Reset left state behind: %v", u)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	var m Meter
	m.Op(S3, "PUT", TierMutation)
	u := m.Snapshot()
	m.Op(S3, "PUT", TierMutation)
	if got := u.OpCount(S3, "PUT"); got != 1 {
		t.Fatalf("snapshot mutated by later ops: %d", got)
	}
}

func TestUsageAdd(t *testing.T) {
	var a, b Meter
	a.Op(S3, "PUT", TierMutation)
	a.In(S3, 5)
	b.Op(S3, "PUT", TierMutation)
	b.Op(SQS, "SendMessage", TierMessage)
	b.Out(SQS, 9)

	sum := a.Snapshot().Add(b.Snapshot())
	if got := sum.OpCount(S3, "PUT"); got != 2 {
		t.Fatalf("Add: OpCount = %d, want 2", got)
	}
	if got := sum.Ops(SQS); got != 1 {
		t.Fatalf("Add: Ops(SQS) = %d, want 1", got)
	}
	if got := sum.BytesIn(S3); got != 5 {
		t.Fatalf("Add: BytesIn = %d, want 5", got)
	}
	if got := sum.BytesOut(SQS); got != 9 {
		t.Fatalf("Add: BytesOut = %d, want 9", got)
	}
}

func TestUsageAddCommutative(t *testing.T) {
	f := func(puts, gets uint8, in, out uint16) bool {
		var a, b Meter
		for i := 0; i < int(puts); i++ {
			a.Op(S3, "PUT", TierMutation)
		}
		for i := 0; i < int(gets); i++ {
			b.Op(S3, "GET", TierRetrieval)
		}
		a.In(S3, int64(in))
		b.Out(S3, int64(out))
		x := a.Snapshot().Add(b.Snapshot())
		y := b.Snapshot().Add(a.Snapshot())
		return x.TotalOps() == y.TotalOps() &&
			x.BytesIn(S3) == y.BytesIn(S3) &&
			x.BytesOut(S3) == y.BytesOut(S3)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeterConcurrent(t *testing.T) {
	var m Meter
	var wg sync.WaitGroup
	const workers, each = 8, 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				m.Op(S3, "PUT", TierMutation)
				m.In(S3, 1)
				m.StorageDelta(S3, 1)
			}
		}()
	}
	wg.Wait()
	u := m.Snapshot()
	if got := u.OpCount(S3, "PUT"); got != workers*each {
		t.Fatalf("lost ops under concurrency: %d", got)
	}
	if got := u.Storage(S3); got != workers*each {
		t.Fatalf("lost storage deltas under concurrency: %d", got)
	}
}

func TestJan2009S3RequestPricing(t *testing.T) {
	// The paper: $0.01 per 1,000 PUT/COPY/POST/LIST; $0.01 per 10,000 GET.
	var m Meter
	for i := 0; i < 1000; i++ {
		m.Op(S3, "PUT", TierMutation)
	}
	for i := 0; i < 10000; i++ {
		m.Op(S3, "GET", TierRetrieval)
	}
	c := Jan2009.Price(m.Snapshot())
	if got, want := c.Requests, 0.02; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Requests = %v, want %v", got, want)
	}
}

func TestJan2009StoragePricing(t *testing.T) {
	// $0.15 per GB-month on S3.
	var m Meter
	m.StorageDelta(S3, 2*GB)
	c := Jan2009.Price(m.Snapshot())
	if got, want := c.StorageMonthly, 0.30; math.Abs(got-want) > 1e-9 {
		t.Fatalf("StorageMonthly = %v, want %v", got, want)
	}
}

func TestJan2009TransferPricing(t *testing.T) {
	// $0.10/GB in, $0.17/GB out.
	var m Meter
	m.In(S3, 1*GB)
	m.Out(S3, 1*GB)
	c := Jan2009.Price(m.Snapshot())
	if math.Abs(c.TransferIn-0.10) > 1e-9 {
		t.Fatalf("TransferIn = %v, want 0.10", c.TransferIn)
	}
	if math.Abs(c.TransferOut-0.17) > 1e-9 {
		t.Fatalf("TransferOut = %v, want 0.17", c.TransferOut)
	}
}

func TestOpsCheaperThanStorage(t *testing.T) {
	// Section 5: "operations are much cheaper (in USD) than storage in the
	// AWS pricing model." Price the third architecture's op mix at paper
	// scale (each op billed under its own service) and compare with a year
	// of storing+transferring the dataset itself.
	var ops Meter
	for i := 0; i < 2*31_180; i++ { // temp PUT + COPY per object
		ops.Op(S3, "PUT", TierMutation)
	}
	for i := 0; i < 2*15_590; i++ { // WAL send + receive per 8 KB chunk
		ops.Op(SQS, "SendMessage", TierMessage)
	}
	for i := 0; i < 168_514; i++ { // SimpleDB provenance stores
		ops.Op(SimpleDB, "PutAttributes", TierBox)
	}
	opCost := Jan2009.Price(ops.Snapshot()).Total()

	var data Meter
	data.StorageDelta(S3, 1271*1024*1024) // the 1.27 GB dataset
	data.In(S3, 1271*1024*1024)
	snap := Jan2009.Price(data.Snapshot())
	yearOfData := snap.StorageMonthly*12 + snap.TransferIn

	if opCost > yearOfData {
		t.Fatalf("ops cost $%.4f exceeds a year of data storage $%.4f; the paper's cheap-ops claim would not hold", opCost, yearOfData)
	}
	if opCost > 2.00 {
		t.Fatalf("full provenance op mix cost $%.4f; expected a few dollars at most at paper scale", opCost)
	}
}

func TestCostTotalAndString(t *testing.T) {
	c := Cost{StorageMonthly: 1, TransferIn: 2, TransferOut: 3, Requests: 4}
	if got := c.Total(); got != 10 {
		t.Fatalf("Total = %v, want 10", got)
	}
	if s := c.String(); !strings.Contains(s, "total $10.0000") {
		t.Fatalf("String() = %q missing total", s)
	}
}

func TestServiceAndTierStrings(t *testing.T) {
	if S3.String() != "S3" || SimpleDB.String() != "SimpleDB" || SQS.String() != "SQS" {
		t.Fatal("service names wrong")
	}
	if Service(9).String() != "Service(9)" {
		t.Fatal("unknown service name wrong")
	}
	if TierMutation.String() != "mutation" || Tier(9).String() != "Tier(9)" {
		t.Fatal("tier names wrong")
	}
}

func TestUsageStringContainsOps(t *testing.T) {
	var m Meter
	m.Op(S3, "PUT", TierMutation)
	m.In(S3, 42)
	s := m.Snapshot().String()
	if !strings.Contains(s, "S3/PUT") || !strings.Contains(s, "in=42") {
		t.Fatalf("Usage.String() = %q missing expected fields", s)
	}
}
