package sdb

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"passcloud/internal/cloud/awserr"
	"passcloud/internal/cloud/billing"
)

// This file implements the 2009 SimpleDB Query language (paper §2.2):
//
//	['attr' op 'value' {and|or} ...] {intersection|union|not} [...] ... [sort 'attr' [asc|desc]]
//
// Every comparison inside one bracketed predicate must reference the same
// attribute; predicates over different attributes combine with the set
// operators. A predicate matches an item when some single value of the
// attribute satisfies the predicate's boolean combination — the documented
// multi-valued-attribute rule. All comparisons are lexicographic on strings,
// exactly like real SimpleDB (clients zero-pad numbers).

// queryExpr is a parsed query: a chain of predicates combined left-to-right
// with set operators, plus an optional sort.
type queryExpr struct {
	first    *predicate
	rest     []setTerm
	sortAttr string
	sortDesc bool
	hasSort  bool
}

type setTerm struct {
	op   string // "intersection", "union", "not"
	pred *predicate
}

// predicate is one bracketed group over a single attribute.
type predicate struct {
	attr string
	// tree of comparisons combined with and/or, all over attr.
	cond boolExpr
}

// boolExpr evaluates a predicate's condition against one attribute value.
type boolExpr interface {
	eval(value string) bool
}

type cmpExpr struct {
	op    string
	value string
}

func (c cmpExpr) eval(v string) bool {
	switch c.op {
	case "=":
		return v == c.value
	case "!=":
		return v != c.value
	case "<":
		return v < c.value
	case "<=":
		return v <= c.value
	case ">":
		return v > c.value
	case ">=":
		return v >= c.value
	case "starts-with":
		return strings.HasPrefix(v, c.value)
	case "does-not-start-with":
		return !strings.HasPrefix(v, c.value)
	default:
		return false
	}
}

type andExpr struct{ l, r boolExpr }

func (a andExpr) eval(v string) bool { return a.l.eval(v) && a.r.eval(v) }

type orExpr struct{ l, r boolExpr }

func (o orExpr) eval(v string) bool { return o.l.eval(v) || o.r.eval(v) }

// queryParser consumes a token stream.
type queryParser struct {
	toks []token
	pos  int
}

func (p *queryParser) peek() token { return p.toks[p.pos] }

func (p *queryParser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *queryParser) expect(kind tokenKind) (token, error) {
	t := p.advance()
	if t.kind != kind {
		return t, fmt.Errorf("expected %v, got %v %q at %d", kind, t.kind, t.text, t.pos)
	}
	return t, nil
}

// parseQuery parses a complete query expression.
func parseQuery(src string) (*queryExpr, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &queryParser{toks: toks}
	q := &queryExpr{}

	q.first, err = p.parsePredicate()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokWord {
			word := strings.ToLower(t.text)
			switch word {
			case "intersection", "union", "not":
				p.advance()
				pred, err := p.parsePredicate()
				if err != nil {
					return nil, err
				}
				q.rest = append(q.rest, setTerm{op: word, pred: pred})
				continue
			case "sort":
				p.advance()
				attrTok, err := p.expect(tokString)
				if err != nil {
					return nil, err
				}
				q.sortAttr = attrTok.text
				q.hasSort = true
				if t := p.peek(); t.kind == tokWord {
					switch strings.ToLower(t.text) {
					case "asc":
						p.advance()
					case "desc":
						p.advance()
						q.sortDesc = true
					}
				}
				continue
			}
		}
		break
	}
	if _, err := p.expect(tokEOF); err != nil {
		return nil, err
	}
	return q, nil
}

// parsePredicate parses ['attr' op 'value' {and|or} 'attr' op 'value' ...].
// All comparisons in one predicate must reference the same attribute.
func (p *queryParser) parsePredicate() (*predicate, error) {
	if _, err := p.expect(tokLBracket); err != nil {
		return nil, err
	}
	pred := &predicate{}
	cond, err := p.parseComparison(pred)
	if err != nil {
		return nil, err
	}
	for {
		t := p.advance()
		switch {
		case t.kind == tokRBracket:
			pred.cond = cond
			return pred, nil
		case t.kind == tokWord && strings.EqualFold(t.text, "and"):
			next, err := p.parseComparison(pred)
			if err != nil {
				return nil, err
			}
			cond = andExpr{l: cond, r: next}
		case t.kind == tokWord && strings.EqualFold(t.text, "or"):
			next, err := p.parseComparison(pred)
			if err != nil {
				return nil, err
			}
			cond = orExpr{l: cond, r: next}
		default:
			return nil, fmt.Errorf("expected ']', 'and' or 'or', got %q at %d", t.text, t.pos)
		}
	}
}

// parseComparison parses 'attr' op 'value', recording or checking the
// predicate's single attribute.
func (p *queryParser) parseComparison(pred *predicate) (boolExpr, error) {
	attrTok, err := p.expect(tokString)
	if err != nil {
		return nil, err
	}
	if pred.attr == "" {
		pred.attr = attrTok.text
	} else if pred.attr != attrTok.text {
		return nil, fmt.Errorf("predicate mixes attributes %q and %q at %d; use intersection between predicates",
			pred.attr, attrTok.text, attrTok.pos)
	}
	opTok, err := p.expect(tokOp)
	if err != nil {
		return nil, err
	}
	valTok, err := p.expect(tokString)
	if err != nil {
		return nil, err
	}
	return cmpExpr{op: opTok.text, value: valTok.text}, nil
}

// evalPredicate returns the set of item names matching pred in view v.
// Equality-only predicates are answered from the automatic index; other
// operators iterate the per-attribute value index, which is still far
// cheaper than scanning all items when attributes are selective.
func evalPredicate(v *view, pred *predicate) map[string]struct{} {
	out := make(map[string]struct{})
	byValue := v.index[pred.attr]
	for value, items := range byValue {
		if pred.cond.eval(value) {
			for item := range items {
				out[item] = struct{}{}
			}
		}
	}
	return out
}

// evalQuery evaluates a parsed query against view v, returning matching item
// names in result order (sorted by the sort attribute if present, item name
// otherwise).
func evalQuery(v *view, q *queryExpr) ([]string, error) {
	acc := evalPredicate(v, q.first)
	for _, term := range q.rest {
		next := evalPredicate(v, term.pred)
		switch term.op {
		case "intersection":
			for item := range acc {
				if _, ok := next[item]; !ok {
					delete(acc, item)
				}
			}
		case "union":
			for item := range next {
				acc[item] = struct{}{}
			}
		case "not":
			for item := range next {
				delete(acc, item)
			}
		}
	}

	names := make([]string, 0, len(acc))
	for item := range acc {
		names = append(names, item)
	}

	if q.hasSort {
		// Real SimpleDB drops items lacking the sort attribute.
		filtered := names[:0]
		keys := make(map[string]string, len(names))
		for _, item := range names {
			if val, ok := minAttrValue(v.items[item], q.sortAttr); ok {
				keys[item] = val
				filtered = append(filtered, item)
			}
		}
		names = filtered
		sort.Slice(names, func(i, j int) bool {
			ki, kj := keys[names[i]], keys[names[j]]
			if ki != kj {
				if q.sortDesc {
					return ki > kj
				}
				return ki < kj
			}
			return names[i] < names[j]
		})
		return names, nil
	}

	sort.Strings(names)
	return names, nil
}

// minAttrValue returns the lexicographically smallest value of attr on the
// item, for deterministic multi-valued sorting.
func minAttrValue(attrs []Attr, name string) (string, bool) {
	best, found := "", false
	for _, a := range attrs {
		if a.Name != name {
			continue
		}
		if !found || a.Value < best {
			best, found = a.Value, true
		}
	}
	return best, found
}

// QueryResult is one page of item names.
type QueryResult struct {
	ItemNames []string
	NextToken string
}

// QueryAttrResult is one page of items with attributes.
type QueryAttrResult struct {
	Items     []Item
	NextToken string
}

// Query returns the names of items matching expr, at most maxResults
// (default and cap QueryPageLimit) per page. An empty nextToken starts a new
// query; pass the returned NextToken to continue. Pagination is pinned to
// the replica that served the first page so one logical query observes one
// snapshot.
func (s *Service) Query(domainName, expr string, maxResults int, nextToken string) (*QueryResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	names, _, token, err := s.queryLocked("Query", domainName, expr, maxResults, nextToken, false, nil)
	if err != nil {
		return nil, err
	}
	return &QueryResult{ItemNames: names, NextToken: token}, nil
}

// QueryWithAttributes is Query returning each matching item's attributes,
// optionally restricted to attrNames (nil means all).
func (s *Service) QueryWithAttributes(domainName, expr string, attrNames []string, maxResults int, nextToken string) (*QueryAttrResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	names, items, token, err := s.queryLocked("QueryWithAttributes", domainName, expr, maxResults, nextToken, true, attrNames)
	if err != nil {
		return nil, err
	}
	_ = names
	return &QueryAttrResult{Items: items, NextToken: token}, nil
}

// queryLocked is the shared engine. Caller holds s.mu.
func (s *Service) queryLocked(op, domainName, expr string, maxResults int, nextToken string, withAttrs bool, attrNames []string) ([]string, []Item, string, error) {
	d, ok := s.domains[domainName]
	if !ok {
		return nil, nil, "", opErr(op, domainName, "", ErrNoSuchDomain)
	}
	failErr, ackLoss := s.checkFault(op, domainName, "")
	if failErr != nil {
		return nil, nil, "", failErr
	}
	s.cfg.Meter.Op(billing.SimpleDB, op, billing.TierBox)
	if ackLoss {
		return nil, nil, "", opErr(op, domainName, "", awserr.ErrRequestTimeout)
	}

	q, err := parseQuery(expr)
	if err != nil {
		return nil, nil, "", opErr(op, domainName, "", fmt.Errorf("%w: %w", ErrInvalidQuery, err))
	}
	if maxResults <= 0 || maxResults > QueryPageLimit {
		maxResults = QueryPageLimit
	}

	replicaIdx, offset, err := decodeToken(nextToken)
	if err != nil {
		return nil, nil, "", opErr(op, domainName, "", err)
	}
	if nextToken == "" {
		replicaIdx = s.cfg.RNG.Intn(len(d.views))
	}
	v := d.views[replicaIdx%len(d.views)]
	s.drain(v)

	all, err := evalQuery(v, q)
	if err != nil {
		return nil, nil, "", opErr(op, domainName, "", fmt.Errorf("%w: %w", ErrInvalidQuery, err))
	}
	if offset > len(all) {
		offset = len(all)
	}
	page := all[offset:]
	token := ""
	if len(page) > maxResults {
		page = page[:maxResults]
		token = encodeToken(replicaIdx, offset+maxResults)
	}

	var outBytes int64
	var items []Item
	if withAttrs {
		var filter map[string]bool
		if len(attrNames) > 0 {
			filter = make(map[string]bool, len(attrNames))
			for _, n := range attrNames {
				filter[n] = true
			}
		}
		for _, name := range page {
			item := Item{Name: name}
			for _, a := range v.items[name] {
				if filter == nil || filter[a.Name] {
					item.Attrs = append(item.Attrs, a)
					outBytes += int64(len(a.Name) + len(a.Value))
				}
			}
			outBytes += int64(len(name))
			items = append(items, item)
		}
	} else {
		for _, name := range page {
			outBytes += int64(len(name))
		}
	}
	s.cfg.Meter.Out(billing.SimpleDB, outBytes)
	return page, items, token, nil
}

func encodeToken(replica, offset int) string {
	return strconv.Itoa(replica) + ":" + strconv.Itoa(offset)
}

func decodeToken(tok string) (replica, offset int, err error) {
	if tok == "" {
		return 0, 0, nil
	}
	parts := strings.SplitN(tok, ":", 2)
	if len(parts) != 2 {
		return 0, 0, ErrInvalidNextToken
	}
	replica, err = strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, ErrInvalidNextToken
	}
	offset, err = strconv.Atoi(parts[1])
	if err != nil || offset < 0 || replica < 0 {
		return 0, 0, ErrInvalidNextToken
	}
	return replica, offset, nil
}
