package sdb

import (
	"errors"
	"fmt"
)

// Error codes mirroring the AWS SimpleDB error model.
var (
	// ErrNoSuchDomain is returned for operations on a missing domain.
	ErrNoSuchDomain = errors.New("NoSuchDomain")
	// ErrDomainExists is returned by CreateDomain on a name collision.
	ErrDomainExists = errors.New("DomainAlreadyExists")
	// ErrInvalidName is returned for malformed domain, item or attribute
	// names.
	ErrInvalidName = errors.New("InvalidParameterValue")
	// ErrTooLarge is returned when an attribute name or value exceeds
	// MaxNameValueLen (1 KB, paper §2.2).
	ErrTooLarge = errors.New("InvalidParameterValue: value exceeds 1024 bytes")
	// ErrTooManyAttrsPerCall is returned when one PutAttributes carries
	// more than MaxAttrsPerCall attributes (100, paper §4.2 step 3).
	ErrTooManyAttrsPerCall = errors.New("NumberSubmittedAttributesExceeded")
	// ErrTooManyAttrsPerItem is returned when an item would exceed
	// MaxAttrsPerItem attribute-value pairs (256, paper §2.2).
	ErrTooManyAttrsPerItem = errors.New("NumberDomainAttributesExceeded")
	// ErrTooManyItemsPerBatch is returned when one BatchPutAttributes call
	// carries more than MaxItemsPerBatch items (25, 2009 API).
	ErrTooManyItemsPerBatch = errors.New("NumberSubmittedItemsExceeded")
	// ErrDuplicateItemInBatch is returned when one BatchPutAttributes call
	// names the same item twice.
	ErrDuplicateItemInBatch = errors.New("DuplicateItemName")
	// ErrNoSuchItem is returned by GetAttributes for a missing item.
	// (Real SimpleDB returns an empty set; the explicit error makes
	// protocol code clearer and callers that want the soft behaviour use
	// GetAttributes' ok result.)
	ErrNoSuchItem = errors.New("NoSuchItem")
	// ErrInvalidQuery is returned for unparsable query or select
	// expressions.
	ErrInvalidQuery = errors.New("InvalidQueryExpression")
	// ErrInvalidNextToken is returned for corrupt pagination tokens.
	ErrInvalidNextToken = errors.New("InvalidNextToken")
)

// APIError carries the failing operation and target alongside the code.
type APIError struct {
	Op     string
	Domain string
	Item   string
	Err    error
}

// Error implements the error interface.
func (e *APIError) Error() string {
	if e.Item == "" {
		return fmt.Sprintf("sdb: %s %s: %v", e.Op, e.Domain, e.Err)
	}
	return fmt.Sprintf("sdb: %s %s[%s]: %v", e.Op, e.Domain, e.Item, e.Err)
}

// Unwrap exposes the sentinel code to errors.Is.
func (e *APIError) Unwrap() error { return e.Err }

func opErr(op, domain, item string, code error) error {
	return &APIError{Op: op, Domain: domain, Item: item, Err: code}
}
