package sdb

// Model-based property tests: the indexed query engine is checked against a
// brute-force reference evaluation over randomly generated domains and
// randomly generated (valid) query expressions. Any divergence between the
// two is a bug in the index, the parser, or the evaluator.

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"passcloud/internal/cloud/billing"
	"passcloud/internal/sim"
)

// modelItem mirrors a stored item for the reference evaluation.
type modelItem struct {
	name  string
	attrs []Attr
}

// refComparison evaluates one comparison against one value, mirroring the
// documented operator semantics.
func refComparison(op, operand, value string) bool {
	switch op {
	case "=":
		return operand == value
	case "!=":
		return operand != value
	case "<":
		return operand < value
	case ">":
		return operand > value
	case "starts-with":
		return strings.HasPrefix(operand, value)
	default:
		return false
	}
}

// refPredicate: does any single value of attr satisfy all/any comparisons?
// Mirrors the single-attribute predicate semantics: the comparisons combine
// with one connective (the generator only emits homogeneous connectives to
// keep the reference evaluation obviously correct).
func refPredicate(item modelItem, attr string, comps []refComp, conj bool) bool {
	for _, a := range item.attrs {
		if a.Name != attr {
			continue
		}
		matched := conj
		for _, c := range comps {
			ok := refComparison(c.op, a.Value, c.value)
			if conj {
				matched = matched && ok
			} else {
				matched = matched || ok
			}
		}
		if matched {
			return true
		}
	}
	return false
}

type refComp struct{ op, value string }

// genDomain builds a random set of items over small alphabets so that
// collisions (shared values, multi-valued attributes) actually happen.
func genDomain(rng *sim.RNG, n int) []modelItem {
	attrs := []string{"color", "size", "year"}
	values := []string{"red", "blue", "green", "small", "large", "1999", "2005", "2009"}
	items := make([]modelItem, 0, n)
	for i := 0; i < n; i++ {
		item := modelItem{name: fmt.Sprintf("item%03d", i)}
		nAttrs := 1 + rng.Intn(4)
		for a := 0; a < nAttrs; a++ {
			item.attrs = append(item.attrs, Attr{
				Name:  attrs[rng.Intn(len(attrs))],
				Value: values[rng.Intn(len(values))],
			})
		}
		// Deduplicate (name,value) pairs as the service does.
		seen := map[Attr]bool{}
		var uniq []Attr
		for _, a := range item.attrs {
			if !seen[a] {
				seen[a] = true
				uniq = append(uniq, a)
			}
		}
		item.attrs = uniq
		items = append(items, item)
	}
	return items
}

// genPredicate builds a random single-attribute predicate and its reference
// closure.
func genPredicate(rng *sim.RNG) (expr string, attr string, comps []refComp, conj bool) {
	attrs := []string{"color", "size", "year"}
	values := []string{"red", "blue", "green", "small", "large", "1999", "2005", "2009"}
	ops := []string{"=", "!=", "<", ">", "starts-with"}

	attr = attrs[rng.Intn(len(attrs))]
	n := 1 + rng.Intn(2)
	conj = rng.Intn(2) == 0
	connective := " and "
	if !conj {
		connective = " or "
	}
	var parts []string
	for i := 0; i < n; i++ {
		op := ops[rng.Intn(len(ops))]
		value := values[rng.Intn(len(values))]
		comps = append(comps, refComp{op: op, value: value})
		parts = append(parts, fmt.Sprintf("'%s' %s %s", attr, op, QuoteString(value)))
	}
	return "[" + strings.Join(parts, connective) + "]", attr, comps, conj
}

func TestQueryMatchesReferenceModelQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := sim.NewRNG(seed)
		items := genDomain(rng, 30+rng.Intn(40))

		svc := New(Config{
			Replicas: 1, // strong consistency: the model has no replicas
			Clock:    sim.NewVirtualClock(),
			RNG:      sim.NewRNG(seed + 1),
			Meter:    &billing.Meter{},
		})
		if err := svc.CreateDomain("d"); err != nil {
			return false
		}
		for _, item := range items {
			ras := make([]ReplaceableAttr, len(item.attrs))
			for i, a := range item.attrs {
				ras[i] = ReplaceableAttr{Name: a.Name, Value: a.Value}
			}
			if err := svc.PutAttributes("d", item.name, ras); err != nil {
				return false
			}
		}

		// A few random queries: single predicate, and two predicates
		// joined by each set operator.
		for trial := 0; trial < 6; trial++ {
			e1, a1, c1, j1 := genPredicate(rng)
			e2, a2, c2, j2 := genPredicate(rng)
			setOps := []string{"", "intersection", "union", "not"}
			setOp := setOps[rng.Intn(len(setOps))]

			expr := e1
			if setOp != "" {
				expr = e1 + " " + setOp + " " + e2
			}

			// Reference evaluation.
			var want []string
			for _, item := range items {
				in1 := refPredicate(item, a1, c1, j1)
				ok := in1
				if setOp != "" {
					in2 := refPredicate(item, a2, c2, j2)
					switch setOp {
					case "intersection":
						ok = in1 && in2
					case "union":
						ok = in1 || in2
					case "not":
						ok = in1 && !in2
					}
				}
				if ok {
					want = append(want, item.name)
				}
			}
			sort.Strings(want)

			// Engine evaluation, across pagination.
			var got []string
			token := ""
			for {
				res, err := svc.Query("d", expr, 7, token)
				if err != nil {
					t.Logf("query %q failed: %v", expr, err)
					return false
				}
				got = append(got, res.ItemNames...)
				if res.NextToken == "" {
					break
				}
				token = res.NextToken
			}
			sort.Strings(got)
			if !reflect.DeepEqual(got, want) {
				t.Logf("expr %q:\n got  %v\n want %v", expr, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectMatchesReferenceModelQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := sim.NewRNG(seed)
		items := genDomain(rng, 25+rng.Intn(30))

		svc := New(Config{
			Replicas: 1,
			Clock:    sim.NewVirtualClock(),
			RNG:      sim.NewRNG(seed + 1),
			Meter:    &billing.Meter{},
		})
		if err := svc.CreateDomain("d"); err != nil {
			return false
		}
		for _, item := range items {
			ras := make([]ReplaceableAttr, len(item.attrs))
			for i, a := range item.attrs {
				ras[i] = ReplaceableAttr{Name: a.Name, Value: a.Value}
			}
			if err := svc.PutAttributes("d", item.name, ras); err != nil {
				return false
			}
		}

		values := []string{"red", "blue", "1999", "2009", "small"}
		for trial := 0; trial < 5; trial++ {
			v1 := values[rng.Intn(len(values))]
			v2 := values[rng.Intn(len(values))]
			expr := fmt.Sprintf(
				"select itemName() from d where color = '%s' or (year > '%s' and size is not null)", v1, v2)

			var want []string
			for _, item := range items {
				colorMatch := false
				yearMatch := false
				sizePresent := false
				for _, a := range item.attrs {
					if a.Name == "color" && a.Value == v1 {
						colorMatch = true
					}
					if a.Name == "year" && a.Value > v2 {
						yearMatch = true
					}
					if a.Name == "size" {
						sizePresent = true
					}
				}
				if colorMatch || (yearMatch && sizePresent) {
					want = append(want, item.name)
				}
			}
			sort.Strings(want)

			var got []string
			token := ""
			for {
				res, err := svc.Select(expr, token)
				if err != nil {
					t.Logf("select %q failed: %v", expr, err)
					return false
				}
				for _, it := range res.Items {
					got = append(got, it.Name)
				}
				if res.NextToken == "" {
					break
				}
				token = res.NextToken
			}
			sort.Strings(got)
			if !reflect.DeepEqual(got, want) {
				t.Logf("expr %q:\n got  %v\n want %v", expr, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
