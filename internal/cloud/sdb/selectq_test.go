package sdb

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
)

func selectNames(t *testing.T, svc *Service, expr string) []string {
	t.Helper()
	var names []string
	token := ""
	for {
		res, err := svc.Select(expr, token)
		if err != nil {
			t.Fatalf("Select(%q): %v", expr, err)
		}
		for _, it := range res.Items {
			names = append(names, it.Name)
		}
		if res.NextToken == "" {
			return names
		}
		token = res.NextToken
	}
}

func TestSelectStar(t *testing.T) {
	svc, _, _ := newTestService(t)
	loadMovies(t, svc)
	res, err := svc.Select("select * from prov where Keyword = 'CD'", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 1 || res.Items[0].Name != "B000T9886K" || len(res.Items[0].Attrs) != 6 {
		t.Fatalf("res = %+v", res)
	}
}

func TestSelectProjection(t *testing.T) {
	svc, _, _ := newTestService(t)
	loadMovies(t, svc)
	res, err := svc.Select("select Title, Year from prov where Author = 'Tom Wolfe'", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 1 {
		t.Fatalf("items = %v", res.Items)
	}
	if len(res.Items[0].Attrs) != 2 {
		t.Fatalf("projected attrs = %v", res.Items[0].Attrs)
	}
}

func TestSelectProjectionOmitsEmptyItems(t *testing.T) {
	svc, _, _ := newTestService(t)
	putOne(t, svc, "has", Attr{"k", "1"}, Attr{"extra", "x"})
	putOne(t, svc, "lacks", Attr{"k", "1"})
	res, err := svc.Select("select extra from prov where k = '1'", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 1 || res.Items[0].Name != "has" {
		t.Fatalf("items = %v", res.Items)
	}
}

func TestSelectItemName(t *testing.T) {
	svc, _, _ := newTestService(t)
	loadMovies(t, svc)
	got := selectNames(t, svc, "select itemName() from prov where Keyword = 'Book'")
	want := []string{"0385333498", "0802131786", "1579124585"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestSelectCount(t *testing.T) {
	svc, _, _ := newTestService(t)
	loadMovies(t, svc)
	res, err := svc.Select("select count(*) from prov where Year >= '2000'", "")
	if err != nil {
		t.Fatal(err)
	}
	if !res.IsCount || res.Count != 2 {
		t.Fatalf("count = %+v", res)
	}
}

func TestSelectNoWhereReturnsAll(t *testing.T) {
	svc, _, _ := newTestService(t)
	loadMovies(t, svc)
	got := selectNames(t, svc, "select itemName() from prov")
	if len(got) != 5 {
		t.Fatalf("got %v", got)
	}
}

func TestSelectAndOrNotParens(t *testing.T) {
	svc, _, _ := newTestService(t)
	loadMovies(t, svc)
	got := selectNames(t, svc,
		"select itemName() from prov where (Keyword = 'CD' or Keyword = 'DVD') and not Rating = '***'")
	if len(got) != 1 || got[0] != "B000T9886K" {
		t.Fatalf("got %v", got)
	}
}

func TestSelectBetween(t *testing.T) {
	svc, _, _ := newTestService(t)
	loadMovies(t, svc)
	got := selectNames(t, svc, "select itemName() from prov where Year between '1950' and '1980'")
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestSelectIn(t *testing.T) {
	svc, _, _ := newTestService(t)
	loadMovies(t, svc)
	got := selectNames(t, svc, "select itemName() from prov where Year in ('1934', '2007')")
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestSelectLike(t *testing.T) {
	svc, _, _ := newTestService(t)
	loadMovies(t, svc)
	got := selectNames(t, svc, "select itemName() from prov where Title like 'The%'")
	if len(got) != 2 {
		t.Fatalf("prefix: got %v", got)
	}
	got = selectNames(t, svc, "select itemName() from prov where Title like '%of%'")
	if len(got) != 2 { // "The Sirens of Titan", "Tropic of Cancer"
		t.Fatalf("infix: got %v", got)
	}
	got = selectNames(t, svc, "select itemName() from prov where Title like '%Stuff'")
	if len(got) != 1 {
		t.Fatalf("suffix: got %v", got)
	}
}

func TestSelectIsNull(t *testing.T) {
	svc, _, _ := newTestService(t)
	putOne(t, svc, "a", Attr{"k", "1"}, Attr{"opt", "x"})
	putOne(t, svc, "b", Attr{"k", "1"})
	got := selectNames(t, svc, "select itemName() from prov where opt is null")
	if len(got) != 1 || got[0] != "b" {
		t.Fatalf("is null: %v", got)
	}
	got = selectNames(t, svc, "select itemName() from prov where opt is not null")
	if len(got) != 1 || got[0] != "a" {
		t.Fatalf("is not null: %v", got)
	}
}

func TestSelectEvery(t *testing.T) {
	svc, _, _ := newTestService(t)
	putOne(t, svc, "all-red", Attr{"color", "red"})
	putOne(t, svc, "mixed", Attr{"color", "red"}, Attr{"color", "blue"})
	got := selectNames(t, svc, "select itemName() from prov where every(color) = 'red'")
	if len(got) != 1 || got[0] != "all-red" {
		t.Fatalf("every: %v", got)
	}
	// Plain comparison: any value suffices.
	got = selectNames(t, svc, "select itemName() from prov where color = 'red'")
	if len(got) != 2 {
		t.Fatalf("any: %v", got)
	}
}

func TestSelectItemNameComparison(t *testing.T) {
	svc, _, _ := newTestService(t)
	loadMovies(t, svc)
	got := selectNames(t, svc, "select itemName() from prov where itemName() like 'B00%'")
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestSelectOrderByAndLimit(t *testing.T) {
	svc, _, _ := newTestService(t)
	loadMovies(t, svc)
	res, err := svc.Select("select Title from prov where Keyword = 'Book' order by Year desc limit 2", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 2 || res.Items[0].Name != "1579124585" {
		t.Fatalf("res = %+v", res.Items)
	}
	if res.NextToken == "" {
		t.Fatal("limit reached but no NextToken")
	}
	res2, err := svc.Select("select Title from prov where Keyword = 'Book' order by Year desc limit 2", res.NextToken)
	if err != nil || len(res2.Items) != 1 {
		t.Fatalf("page 2: %+v, %v", res2, err)
	}
}

func TestSelectOrderByItemNameDesc(t *testing.T) {
	svc, _, _ := newTestService(t)
	putOne(t, svc, "a", Attr{"k", "1"})
	putOne(t, svc, "b", Attr{"k", "1"})
	got := selectNames(t, svc, "select itemName() from prov order by itemName() desc")
	if !reflect.DeepEqual(got, []string{"b", "a"}) {
		t.Fatalf("got %v", got)
	}
}

func TestSelectPagination(t *testing.T) {
	svc, _, _ := newTestService(t)
	for i := 0; i < 30; i++ {
		putOne(t, svc, fmt.Sprintf("i%02d", i), Attr{"k", "1"})
	}
	got := selectNames(t, svc, "select itemName() from prov where k = '1' limit 7")
	if len(got) != 30 {
		t.Fatalf("paginated select total = %d, want 30", len(got))
	}
}

func TestSelectErrors(t *testing.T) {
	svc, _, _ := newTestService(t)
	for _, expr := range []string{
		"",
		"select",
		"select * from",
		"select * from nope2 where",
		"select * frm prov",
		"select * from prov where k",
		"select * from prov where k = ",
		"select * from prov limit '0'",
		"select * from prov limit zero",
		"select * from prov bogus",
		"select count(x) from prov",
	} {
		if _, err := svc.Select(expr, ""); !errors.Is(err, ErrInvalidQuery) {
			t.Fatalf("expr %q: err = %v, want ErrInvalidQuery", expr, err)
		}
	}
	if _, err := svc.Select("select * from missingdomain", ""); !errors.Is(err, ErrNoSuchDomain) {
		t.Fatalf("missing domain: %v", err)
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		v, pat string
		want   bool
	}{
		{"hello", "hello", true},
		{"hello", "hell", false},
		{"hello", "hell%", true},
		{"hello", "%llo", true},
		{"hello", "%ell%", true},
		{"hello", "%", true},
		{"hello", "h%o", true},
		{"hello", "h%x", false},
		{"", "%", true},
		{"abcabc", "a%b%c", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.v, c.pat); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.v, c.pat, got, c.want)
		}
	}
}
