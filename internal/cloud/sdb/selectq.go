package sdb

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"passcloud/internal/cloud/awserr"
	"passcloud/internal/cloud/billing"
)

// This file implements the SimpleDB Select language (paper §2.2: "SELECT
// provides functionality similar to QueryWithAttributes, with the main
// difference being that the queries are expressed in the standard SQL
// form"):
//
//	select (*|itemName()|count(*)|attr, attr, ...) from domain
//	    [where expr] [order by attr|itemName() [asc|desc]] [limit n]
//
// where expr supports comparisons (=, !=, <, <=, >, >=, like), between, in,
// is (not) null, every(attr), not, and/or with parentheses. Attribute names
// are bare words; values are single-quoted strings compared lexicographically.
//
// Multi-valued semantics follow the AWS documentation: a comparison is
// satisfied if any value of the attribute satisfies it, except inside
// every(), which requires all values to satisfy it.

// selectStmt is a parsed select statement.
type selectStmt struct {
	outputStar  bool
	outputName  bool // itemName()
	outputCount bool // count(*)
	outputAttrs []string
	domain      string
	where       selExpr // nil means all items
	orderBy     string  // attribute name, or "" for none
	orderByName bool    // order by itemName()
	orderDesc   bool
	limit       int // 0 means unset
}

// selExpr evaluates against one item (name + attributes).
type selExpr interface {
	match(name string, attrs []Attr) bool
}

type selAnd struct{ l, r selExpr }

func (e selAnd) match(n string, a []Attr) bool { return e.l.match(n, a) && e.r.match(n, a) }

type selOr struct{ l, r selExpr }

func (e selOr) match(n string, a []Attr) bool { return e.l.match(n, a) || e.r.match(n, a) }

type selNot struct{ x selExpr }

func (e selNot) match(n string, a []Attr) bool { return !e.x.match(n, a) }

// selComp is a comparison over one operand.
type selComp struct {
	attr     string // "" means itemName()
	itemName bool
	every    bool
	op       string   // =, !=, <, <=, >, >=, like, between, in, isnull, isnotnull
	value    string   // primary comparison value
	value2   string   // between upper bound
	values   []string // in list
}

func (c selComp) match(name string, attrs []Attr) bool {
	if c.itemName {
		return c.evalOne(name)
	}
	switch c.op {
	case "isnull":
		return !hasAttr(attrs, c.attr)
	case "isnotnull":
		return hasAttr(attrs, c.attr)
	}
	found := false
	all := true
	any := false
	for _, a := range attrs {
		if a.Name != c.attr {
			continue
		}
		found = true
		if c.evalOne(a.Value) {
			any = true
		} else {
			all = false
		}
	}
	if !found {
		return false
	}
	if c.every {
		return all
	}
	return any
}

func (c selComp) evalOne(v string) bool {
	switch c.op {
	case "=":
		return v == c.value
	case "!=":
		return v != c.value
	case "<":
		return v < c.value
	case "<=":
		return v <= c.value
	case ">":
		return v > c.value
	case ">=":
		return v >= c.value
	case "like":
		return likeMatch(v, c.value)
	case "between":
		return v >= c.value && v <= c.value2
	case "in":
		for _, x := range c.values {
			if v == x {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// likeMatch implements SQL LIKE with % wildcards (no _ support, matching
// SimpleDB).
func likeMatch(v, pattern string) bool {
	parts := strings.Split(pattern, "%")
	if len(parts) == 1 {
		return v == pattern
	}
	if !strings.HasPrefix(v, parts[0]) {
		return false
	}
	v = v[len(parts[0]):]
	for i := 1; i < len(parts)-1; i++ {
		idx := strings.Index(v, parts[i])
		if idx < 0 {
			return false
		}
		v = v[idx+len(parts[i]):]
	}
	return strings.HasSuffix(v, parts[len(parts)-1])
}

func hasAttr(attrs []Attr, name string) bool {
	for _, a := range attrs {
		if a.Name == name {
			return true
		}
	}
	return false
}

// selectParser consumes tokens.
type selectParser struct {
	toks []token
	pos  int
}

func (p *selectParser) peek() token { return p.toks[p.pos] }

func (p *selectParser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *selectParser) expectWord(word string) error {
	t := p.advance()
	if t.kind != tokWord || !strings.EqualFold(t.text, word) {
		return fmt.Errorf("expected %q, got %q at %d", word, t.text, t.pos)
	}
	return nil
}

func (p *selectParser) expect(kind tokenKind) (token, error) {
	t := p.advance()
	if t.kind != kind {
		return t, fmt.Errorf("expected %v, got %v %q at %d", kind, t.kind, t.text, t.pos)
	}
	return t, nil
}

// parseSelect parses a complete select statement.
func parseSelect(src string) (*selectStmt, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &selectParser{toks: toks}
	st := &selectStmt{}

	if err := p.expectWord("select"); err != nil {
		return nil, err
	}
	if err := p.parseOutput(st); err != nil {
		return nil, err
	}
	if err := p.expectWord("from"); err != nil {
		return nil, err
	}
	domTok := p.advance()
	if domTok.kind != tokWord && domTok.kind != tokString {
		return nil, fmt.Errorf("expected domain name, got %q at %d", domTok.text, domTok.pos)
	}
	st.domain = domTok.text

	for {
		t := p.peek()
		if t.kind != tokWord {
			break
		}
		switch strings.ToLower(t.text) {
		case "where":
			p.advance()
			st.where, err = p.parseOr()
			if err != nil {
				return nil, err
			}
		case "order":
			p.advance()
			if err := p.expectWord("by"); err != nil {
				return nil, err
			}
			key := p.advance()
			switch {
			case key.kind == tokWord && strings.EqualFold(key.text, "itemname"):
				if err := p.parseEmptyParens(); err != nil {
					return nil, err
				}
				st.orderByName = true
			case key.kind == tokWord || key.kind == tokString:
				st.orderBy = key.text
			default:
				return nil, fmt.Errorf("expected sort key, got %q at %d", key.text, key.pos)
			}
			if t := p.peek(); t.kind == tokWord {
				switch strings.ToLower(t.text) {
				case "asc":
					p.advance()
				case "desc":
					p.advance()
					st.orderDesc = true
				}
			}
		case "limit":
			p.advance()
			numTok := p.advance()
			n, err := strconv.Atoi(numTok.text)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("invalid limit %q at %d", numTok.text, numTok.pos)
			}
			st.limit = n
		default:
			return nil, fmt.Errorf("unexpected %q at %d", t.text, t.pos)
		}
	}
	if _, err := p.expect(tokEOF); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *selectParser) parseOutput(st *selectStmt) error {
	t := p.advance()
	switch {
	case t.kind == tokStar:
		st.outputStar = true
		return nil
	case t.kind == tokWord && strings.EqualFold(t.text, "itemname"):
		if err := p.parseEmptyParens(); err != nil {
			return err
		}
		st.outputName = true
		return nil
	case t.kind == tokWord && strings.EqualFold(t.text, "count"):
		if _, err := p.expect(tokLParen); err != nil {
			return err
		}
		if _, err := p.expect(tokStar); err != nil {
			return err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return err
		}
		st.outputCount = true
		return nil
	case t.kind == tokWord || t.kind == tokString:
		st.outputAttrs = append(st.outputAttrs, t.text)
		for p.peek().kind == tokComma {
			p.advance()
			a := p.advance()
			if a.kind != tokWord && a.kind != tokString {
				return fmt.Errorf("expected attribute name, got %q at %d", a.text, a.pos)
			}
			st.outputAttrs = append(st.outputAttrs, a.text)
		}
		return nil
	default:
		return fmt.Errorf("expected output list, got %q at %d", t.text, t.pos)
	}
}

func (p *selectParser) parseEmptyParens() error {
	if _, err := p.expect(tokLParen); err != nil {
		return err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return err
	}
	return nil
}

func (p *selectParser) parseOr() (selExpr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokWord && strings.EqualFold(t.text, "or") {
			p.advance()
			right, err := p.parseAnd()
			if err != nil {
				return nil, err
			}
			left = selOr{l: left, r: right}
			continue
		}
		return left, nil
	}
}

func (p *selectParser) parseAnd() (selExpr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokWord && strings.EqualFold(t.text, "and") {
			p.advance()
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = selAnd{l: left, r: right}
			continue
		}
		return left, nil
	}
}

func (p *selectParser) parseUnary() (selExpr, error) {
	t := p.peek()
	if t.kind == tokWord && strings.EqualFold(t.text, "not") {
		p.advance()
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return selNot{x: inner}, nil
	}
	if t.kind == tokLParen {
		p.advance()
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return p.parseComparison()
}

func (p *selectParser) parseComparison() (selExpr, error) {
	comp := selComp{}

	t := p.advance()
	switch {
	case t.kind == tokWord && strings.EqualFold(t.text, "every"):
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		a := p.advance()
		if a.kind != tokWord && a.kind != tokString {
			return nil, fmt.Errorf("expected attribute in every(), got %q at %d", a.text, a.pos)
		}
		comp.attr = a.text
		comp.every = true
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
	case t.kind == tokWord && strings.EqualFold(t.text, "itemname"):
		if err := p.parseEmptyParens(); err != nil {
			return nil, err
		}
		comp.itemName = true
	case t.kind == tokWord || t.kind == tokString:
		comp.attr = t.text
	default:
		return nil, fmt.Errorf("expected operand, got %q at %d", t.text, t.pos)
	}

	opTok := p.advance()
	switch {
	case opTok.kind == tokOp:
		comp.op = opTok.text
		v, err := p.expect(tokString)
		if err != nil {
			return nil, err
		}
		comp.value = v.text
	case opTok.kind == tokWord && strings.EqualFold(opTok.text, "like"):
		comp.op = "like"
		v, err := p.expect(tokString)
		if err != nil {
			return nil, err
		}
		comp.value = v.text
	case opTok.kind == tokWord && strings.EqualFold(opTok.text, "between"):
		comp.op = "between"
		lo, err := p.expect(tokString)
		if err != nil {
			return nil, err
		}
		if err := p.expectWord("and"); err != nil {
			return nil, err
		}
		hi, err := p.expect(tokString)
		if err != nil {
			return nil, err
		}
		comp.value, comp.value2 = lo.text, hi.text
	case opTok.kind == tokWord && strings.EqualFold(opTok.text, "in"):
		comp.op = "in"
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		for {
			v, err := p.expect(tokString)
			if err != nil {
				return nil, err
			}
			comp.values = append(comp.values, v.text)
			t := p.advance()
			if t.kind == tokRParen {
				break
			}
			if t.kind != tokComma {
				return nil, fmt.Errorf("expected ',' or ')', got %q at %d", t.text, t.pos)
			}
		}
	case opTok.kind == tokWord && strings.EqualFold(opTok.text, "is"):
		n := p.advance()
		if n.kind == tokWord && strings.EqualFold(n.text, "null") {
			comp.op = "isnull"
			break
		}
		if n.kind == tokWord && strings.EqualFold(n.text, "not") {
			if err := p.expectWord("null"); err != nil {
				return nil, err
			}
			comp.op = "isnotnull"
			break
		}
		return nil, fmt.Errorf("expected 'null' or 'not null', got %q at %d", n.text, n.pos)
	default:
		return nil, fmt.Errorf("expected comparison operator, got %q at %d", opTok.text, opTok.pos)
	}
	return comp, nil
}

// SelectResult is one page of select results. For count(*) queries Count is
// set and Items is empty.
type SelectResult struct {
	Items     []Item
	Count     int
	IsCount   bool
	NextToken string
}

// Select executes a select expression (the domain is named in the statement,
// as in SQL). Pagination mirrors Query: pass the previous NextToken to
// continue on the same replica snapshot.
func (s *Service) Select(expr string, nextToken string) (*SelectResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	st, err := parseSelect(expr)
	if err != nil {
		return nil, opErr("Select", "", "", fmt.Errorf("%w: %w", ErrInvalidQuery, err))
	}
	d, ok := s.domains[st.domain]
	if !ok {
		return nil, opErr("Select", st.domain, "", ErrNoSuchDomain)
	}
	failErr, ackLoss := s.checkFault("Select", st.domain, "")
	if failErr != nil {
		return nil, failErr
	}
	s.cfg.Meter.Op(billing.SimpleDB, "Select", billing.TierBox)
	if ackLoss {
		return nil, opErr("Select", st.domain, "", awserr.ErrRequestTimeout)
	}

	replicaIdx, offset, err := decodeToken(nextToken)
	if err != nil {
		return nil, opErr("Select", st.domain, "", err)
	}
	if nextToken == "" {
		replicaIdx = s.cfg.RNG.Intn(len(d.views))
	}
	v := d.views[replicaIdx%len(d.views)]
	s.drain(v)

	// Gather matching item names.
	var names []string
	for name, attrs := range v.items {
		if st.where == nil || st.where.match(name, attrs) {
			names = append(names, name)
		}
	}

	if st.outputCount {
		s.cfg.Meter.Out(billing.SimpleDB, 16)
		return &SelectResult{Count: len(names), IsCount: true}, nil
	}

	// Order.
	switch {
	case st.orderBy != "":
		keys := make(map[string]string, len(names))
		filtered := names[:0]
		for _, item := range names {
			if val, ok := minAttrValue(v.items[item], st.orderBy); ok {
				keys[item] = val
				filtered = append(filtered, item)
			}
		}
		names = filtered
		sort.Slice(names, func(i, j int) bool {
			ki, kj := keys[names[i]], keys[names[j]]
			if ki != kj {
				if st.orderDesc {
					return ki > kj
				}
				return ki < kj
			}
			return names[i] < names[j]
		})
	case st.orderByName && st.orderDesc:
		sort.Sort(sort.Reverse(sort.StringSlice(names)))
	default:
		sort.Strings(names)
	}

	// Page.
	pageSize := st.limit
	if pageSize <= 0 || pageSize > SelectPageLimit {
		pageSize = SelectPageLimit
	}
	if offset > len(names) {
		offset = len(names)
	}
	page := names[offset:]
	token := ""
	if len(page) > pageSize {
		page = page[:pageSize]
		token = encodeToken(replicaIdx, offset+pageSize)
	}

	// Project.
	res := &SelectResult{NextToken: token}
	var outBytes int64
	for _, name := range page {
		item := Item{Name: name}
		switch {
		case st.outputStar:
			item.Attrs = append(item.Attrs, v.items[name]...)
		case st.outputName:
			// name only
		default:
			want := make(map[string]bool, len(st.outputAttrs))
			for _, a := range st.outputAttrs {
				want[a] = true
			}
			for _, a := range v.items[name] {
				if want[a.Name] {
					item.Attrs = append(item.Attrs, a)
				}
			}
			if len(item.Attrs) == 0 {
				continue // no requested attribute present: omit item
			}
		}
		for _, a := range item.Attrs {
			outBytes += int64(len(a.Name) + len(a.Value))
		}
		outBytes += int64(len(name))
		res.Items = append(res.Items, item)
	}
	s.cfg.Meter.Out(billing.SimpleDB, outBytes)
	return res, nil
}
