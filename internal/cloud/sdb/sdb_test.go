package sdb

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"passcloud/internal/cloud/billing"
	"passcloud/internal/sim"
)

func newTestService(t *testing.T) (*Service, *sim.VirtualClock, *billing.Meter) {
	t.Helper()
	return newDelayedService(t, 0)
}

func newDelayedService(t *testing.T, maxDelay time.Duration) (*Service, *sim.VirtualClock, *billing.Meter) {
	t.Helper()
	clock := sim.NewVirtualClock()
	meter := &billing.Meter{}
	svc := New(Config{
		Replicas: 3,
		MaxDelay: maxDelay,
		Clock:    clock,
		RNG:      sim.NewRNG(1),
		Meter:    meter,
	})
	if err := svc.CreateDomain("prov"); err != nil {
		t.Fatalf("CreateDomain: %v", err)
	}
	return svc, clock, meter
}

func putOne(t *testing.T, svc *Service, item string, attrs ...Attr) {
	t.Helper()
	ras := make([]ReplaceableAttr, len(attrs))
	for i, a := range attrs {
		ras[i] = ReplaceableAttr{Name: a.Name, Value: a.Value}
	}
	if err := svc.PutAttributes("prov", item, ras); err != nil {
		t.Fatalf("PutAttributes(%s): %v", item, err)
	}
}

func TestPutGetAttributes(t *testing.T) {
	svc, _, _ := newTestService(t)
	putOne(t, svc, "foo_2",
		Attr{"input", "bar:2"},
		Attr{"type", "file"},
	)
	attrs, ok, err := svc.GetAttributes("prov", "foo_2")
	if err != nil || !ok {
		t.Fatalf("GetAttributes: %v, ok=%v", err, ok)
	}
	if len(attrs) != 2 {
		t.Fatalf("attrs = %v", attrs)
	}

	filtered, ok, err := svc.GetAttributes("prov", "foo_2", "type")
	if err != nil || !ok || len(filtered) != 1 || filtered[0] != (Attr{"type", "file"}) {
		t.Fatalf("filtered = %v, ok=%v, err=%v", filtered, ok, err)
	}
}

func TestGetMissingItem(t *testing.T) {
	svc, _, _ := newTestService(t)
	attrs, ok, err := svc.GetAttributes("prov", "ghost")
	if err != nil || ok || attrs != nil {
		t.Fatalf("missing item: attrs=%v ok=%v err=%v", attrs, ok, err)
	}
}

func TestMissingDomainErrors(t *testing.T) {
	svc, _, _ := newTestService(t)
	if err := svc.PutAttributes("nope", "i", []ReplaceableAttr{{Name: "a", Value: "1"}}); !errors.Is(err, ErrNoSuchDomain) {
		t.Fatalf("put: %v", err)
	}
	if _, _, err := svc.GetAttributes("nope", "i"); !errors.Is(err, ErrNoSuchDomain) {
		t.Fatalf("get: %v", err)
	}
	if _, err := svc.Query("nope", "['a' = '1']", 0, ""); !errors.Is(err, ErrNoSuchDomain) {
		t.Fatalf("query: %v", err)
	}
}

func TestMultiValuedAttributes(t *testing.T) {
	// "an item can have two phone attributes with different values" (§2.2)
	svc, _, _ := newTestService(t)
	putOne(t, svc, "item", Attr{"phone", "111"}, Attr{"phone", "222"})
	attrs, _, _ := svc.GetAttributes("prov", "item")
	if len(attrs) != 2 {
		t.Fatalf("attrs = %v, want two phone values", attrs)
	}
}

func TestPutAttributesIdempotent(t *testing.T) {
	// §2.2: "running PutAttributes multiple times with the same attributes
	// ... will not generate an error", and (name, value) pairs are sets.
	svc, _, _ := newTestService(t)
	for i := 0; i < 3; i++ {
		putOne(t, svc, "item", Attr{"a", "1"}, Attr{"b", "2"})
	}
	attrs, _, _ := svc.GetAttributes("prov", "item")
	if len(attrs) != 2 {
		t.Fatalf("idempotent put duplicated pairs: %v", attrs)
	}
}

func TestDeleteAttributesIdempotent(t *testing.T) {
	svc, _, _ := newTestService(t)
	putOne(t, svc, "item", Attr{"a", "1"})
	for i := 0; i < 3; i++ {
		if err := svc.DeleteAttributes("prov", "item", []Attr{{Name: "a", Value: "1"}}); err != nil {
			t.Fatalf("delete #%d: %v", i, err)
		}
	}
	if _, ok, _ := svc.GetAttributes("prov", "item"); ok {
		t.Fatal("item survived attribute deletion")
	}
	// Deleting a missing item entirely is also fine.
	if err := svc.DeleteAttributes("prov", "ghost", nil); err != nil {
		t.Fatalf("delete missing item: %v", err)
	}
}

func TestReplaceSemantics(t *testing.T) {
	svc, _, _ := newTestService(t)
	putOne(t, svc, "item", Attr{"v", "1"}, Attr{"v", "2"})
	if err := svc.PutAttributes("prov", "item", []ReplaceableAttr{{Name: "v", Value: "3", Replace: true}}); err != nil {
		t.Fatal(err)
	}
	attrs, _, _ := svc.GetAttributes("prov", "item")
	if len(attrs) != 1 || attrs[0] != (Attr{"v", "3"}) {
		t.Fatalf("replace left %v", attrs)
	}
}

func TestDeleteByNameOnly(t *testing.T) {
	svc, _, _ := newTestService(t)
	putOne(t, svc, "item", Attr{"v", "1"}, Attr{"v", "2"}, Attr{"keep", "x"})
	if err := svc.DeleteAttributes("prov", "item", []Attr{{Name: "v"}}); err != nil {
		t.Fatal(err)
	}
	attrs, _, _ := svc.GetAttributes("prov", "item")
	if len(attrs) != 1 || attrs[0] != (Attr{"keep", "x"}) {
		t.Fatalf("name-only delete left %v", attrs)
	}
}

func TestLimits(t *testing.T) {
	svc, _, _ := newTestService(t)

	big := strings.Repeat("v", MaxNameValueLen+1)
	if err := svc.PutAttributes("prov", "i", []ReplaceableAttr{{Name: "a", Value: big}}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("1KB value limit: %v", err)
	}
	if err := svc.PutAttributes("prov", "i", []ReplaceableAttr{{Name: big, Value: "v"}}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("1KB name limit: %v", err)
	}

	exact := strings.Repeat("v", MaxNameValueLen)
	if err := svc.PutAttributes("prov", "i", []ReplaceableAttr{{Name: "a", Value: exact}}); err != nil {
		t.Fatalf("exactly 1KB value rejected: %v", err)
	}

	many := make([]ReplaceableAttr, MaxAttrsPerCall+1)
	for i := range many {
		many[i] = ReplaceableAttr{Name: fmt.Sprintf("a%d", i), Value: "v"}
	}
	if err := svc.PutAttributes("prov", "i", many); !errors.Is(err, ErrTooManyAttrsPerCall) {
		t.Fatalf("100-per-call limit: %v", err)
	}

	// 256 pairs per item: three calls of 100+100+57 must fail on the last.
	for c := 0; c < 2; c++ {
		batch := make([]ReplaceableAttr, 100)
		for i := range batch {
			batch[i] = ReplaceableAttr{Name: fmt.Sprintf("n%d_%d", c, i), Value: "v"}
		}
		if err := svc.PutAttributes("prov", "full", batch); err != nil {
			t.Fatalf("batch %d: %v", c, err)
		}
	}
	last := make([]ReplaceableAttr, 57)
	for i := range last {
		last[i] = ReplaceableAttr{Name: fmt.Sprintf("n2_%d", i), Value: "v"}
	}
	if err := svc.PutAttributes("prov", "full", last); !errors.Is(err, ErrTooManyAttrsPerItem) {
		t.Fatalf("256-per-item limit: %v", err)
	}

	if err := svc.PutAttributes("prov", "i", nil); !errors.Is(err, ErrInvalidName) {
		t.Fatalf("empty attr list: %v", err)
	}
}

func TestDomainLifecycle(t *testing.T) {
	svc, _, _ := newTestService(t)
	if err := svc.CreateDomain("prov"); !errors.Is(err, ErrDomainExists) {
		t.Fatalf("duplicate domain: %v", err)
	}
	if got := svc.ListDomains(); len(got) != 1 || got[0] != "prov" {
		t.Fatalf("ListDomains = %v", got)
	}
	if err := svc.DeleteDomain("prov"); err != nil {
		t.Fatal(err)
	}
	if err := svc.DeleteDomain("prov"); err != nil { // idempotent
		t.Fatal(err)
	}
	if got := svc.ListDomains(); len(got) != 0 {
		t.Fatalf("ListDomains after delete = %v", got)
	}
}

func TestEventualConsistencyInsertNotImmediatelyQueryable(t *testing.T) {
	// §2.2: "An item inserted might not be returned in a query that is run
	// immediately after the insert."
	svc, clock, _ := newDelayedService(t, 10*time.Second)
	putOne(t, svc, "fresh", Attr{"type", "file"})

	missed := false
	for i := 0; i < 100; i++ {
		res, err := svc.Query("prov", "['type' = 'file']", 0, "")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.ItemNames) == 0 {
			missed = true
			break
		}
	}
	if !missed {
		t.Fatal("every immediate query saw the fresh insert; anomaly not modeled")
	}

	clock.Advance(11 * time.Second)
	if !svc.Converged() {
		t.Fatal("not converged after max delay")
	}
	res, err := svc.Query("prov", "['type' = 'file']", 0, "")
	if err != nil || len(res.ItemNames) != 1 || res.ItemNames[0] != "fresh" {
		t.Fatalf("after settle: %v, %v", res, err)
	}
}

func TestConvergenceAcrossReplicasQuick(t *testing.T) {
	// Property: after settling, GetAttributes agrees no matter which
	// replica serves, for any random op sequence.
	f := func(seed int64, ops []uint8) bool {
		clock := sim.NewVirtualClock()
		svc := New(Config{
			Replicas: 3,
			MinDelay: time.Second,
			MaxDelay: 20 * time.Second,
			Clock:    clock,
			RNG:      sim.NewRNG(seed),
			Meter:    &billing.Meter{},
		})
		if err := svc.CreateDomain("d"); err != nil {
			return false
		}
		for i, op := range ops {
			item := fmt.Sprintf("i%d", op%5)
			switch op % 3 {
			case 0:
				_ = svc.PutAttributes("d", item, []ReplaceableAttr{{Name: "a", Value: fmt.Sprintf("%d", i)}})
			case 1:
				_ = svc.PutAttributes("d", item, []ReplaceableAttr{{Name: "a", Value: fmt.Sprintf("%d", i), Replace: true}})
			case 2:
				_ = svc.DeleteAttributes("d", item, nil)
			}
			clock.Advance(time.Duration(op) * time.Millisecond)
		}
		clock.Advance(21 * time.Second)
		// Sample each item many times; all reads must agree.
		for v := 0; v < 5; v++ {
			item := fmt.Sprintf("i%d", v)
			var first []Attr
			var firstOK bool
			for trial := 0; trial < 12; trial++ {
				attrs, ok, err := svc.GetAttributes("d", item)
				if err != nil {
					return false
				}
				if trial == 0 {
					first, firstOK = attrs, ok
					continue
				}
				if ok != firstOK || len(attrs) != len(first) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStorageAccounting(t *testing.T) {
	svc, _, meter := newTestService(t)
	meter.Reset()
	putOne(t, svc, "item", Attr{"name", "value"}) // 4+45 + 4+5 = 58
	if got := meter.Snapshot().Storage(billing.SimpleDB); got != 58 {
		t.Fatalf("Storage = %d, want 58 (item+overhead+attr bytes)", got)
	}
	if err := svc.DeleteAttributes("prov", "item", nil); err != nil {
		t.Fatal(err)
	}
	if got := meter.Snapshot().Storage(billing.SimpleDB); got != 0 {
		t.Fatalf("Storage after delete = %d, want 0", got)
	}
}

func TestOpMetering(t *testing.T) {
	svc, _, meter := newTestService(t)
	meter.Reset()
	putOne(t, svc, "i", Attr{"a", "1"})
	if _, _, err := svc.GetAttributes("prov", "i"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Query("prov", "['a' = '1']", 0, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Select("select * from prov", ""); err != nil {
		t.Fatal(err)
	}
	u := meter.Snapshot()
	for _, op := range []string{"PutAttributes", "GetAttributes", "Query", "Select"} {
		if got := u.OpCount(billing.SimpleDB, op); got != 1 {
			t.Fatalf("OpCount(%s) = %d, want 1", op, got)
		}
	}
	if got := u.OpsByTier(billing.SimpleDB, billing.TierBox); got != 4 {
		t.Fatalf("box-tier ops = %d, want 4", got)
	}
}

func TestItemCount(t *testing.T) {
	svc, _, _ := newTestService(t)
	putOne(t, svc, "a", Attr{"x", "1"})
	putOne(t, svc, "b", Attr{"x", "1"})
	n, err := svc.ItemCount("prov")
	if err != nil || n != 2 {
		t.Fatalf("ItemCount = %d, %v", n, err)
	}
	if _, err := svc.ItemCount("nope"); !errors.Is(err, ErrNoSuchDomain) {
		t.Fatalf("ItemCount missing domain: %v", err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	svc, _, _ := newTestService(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				item := fmt.Sprintf("i%d", i%10)
				_ = svc.PutAttributes("prov", item, []ReplaceableAttr{{Name: "a", Value: fmt.Sprintf("%d", w)}})
				_, _, _ = svc.GetAttributes("prov", item)
				_, _ = svc.Query("prov", "['a' >= '0']", 0, "")
			}
		}(w)
	}
	wg.Wait()
	n, err := svc.ItemCount("prov")
	if err != nil || n != 10 {
		t.Fatalf("ItemCount = %d, %v", n, err)
	}
}

func TestBatchPutAttributes(t *testing.T) {
	svc, _, meter := newTestService(t)
	meter.Reset()

	items := make([]BatchItem, MaxItemsPerBatch)
	for i := range items {
		items[i] = BatchItem{
			Name:  fmt.Sprintf("batch_%02d", i),
			Attrs: []ReplaceableAttr{{Name: "type", Value: "file"}, {Name: "seq", Value: fmt.Sprintf("%d", i)}},
		}
	}
	if err := svc.BatchPutAttributes("prov", items); err != nil {
		t.Fatalf("BatchPutAttributes: %v", err)
	}

	// One metered op covers all 25 items — the whole point of batching.
	u := meter.Snapshot()
	if got := u.OpCount(billing.SimpleDB, "BatchPutAttributes"); got != 1 {
		t.Fatalf("OpCount(BatchPutAttributes) = %d, want 1", got)
	}
	for _, it := range items {
		attrs, ok, err := svc.GetAttributes("prov", it.Name)
		if err != nil || !ok {
			t.Fatalf("GetAttributes(%s): %v ok=%v", it.Name, err, ok)
		}
		if len(attrs) != 2 {
			t.Fatalf("attrs(%s) = %v", it.Name, attrs)
		}
	}
}

func TestBatchPutAttributesLimits(t *testing.T) {
	svc, _, _ := newTestService(t)

	one := func(name string) BatchItem {
		return BatchItem{Name: name, Attrs: []ReplaceableAttr{{Name: "a", Value: "1"}}}
	}

	// 26 items exceed the 25-item limit.
	over := make([]BatchItem, MaxItemsPerBatch+1)
	for i := range over {
		over[i] = one(fmt.Sprintf("i%02d", i))
	}
	if err := svc.BatchPutAttributes("prov", over); !errors.Is(err, ErrTooManyItemsPerBatch) {
		t.Fatalf("26-item batch: err = %v, want ErrTooManyItemsPerBatch", err)
	}

	// Duplicate item names are rejected.
	if err := svc.BatchPutAttributes("prov", []BatchItem{one("dup"), one("dup")}); !errors.Is(err, ErrDuplicateItemInBatch) {
		t.Fatalf("duplicate batch: err = %v, want ErrDuplicateItemInBatch", err)
	}

	// A bad item anywhere in the batch stores nothing (all-or-nothing
	// validation): the good sibling must not appear.
	bad := BatchItem{Name: "bad", Attrs: []ReplaceableAttr{{Name: "", Value: "x"}}}
	if err := svc.BatchPutAttributes("prov", []BatchItem{one("good"), bad}); err == nil {
		t.Fatal("batch with invalid attribute accepted")
	}
	if _, ok, err := svc.GetAttributes("prov", "good"); err != nil || ok {
		t.Fatalf("partial batch applied: good exists=%v err=%v", ok, err)
	}

	// Empty and missing-domain calls fail cleanly.
	if err := svc.BatchPutAttributes("prov", nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if err := svc.BatchPutAttributes("nope", []BatchItem{one("x")}); !errors.Is(err, ErrNoSuchDomain) {
		t.Fatalf("missing domain: err = %v", err)
	}
}
