package sdb

import (
	"fmt"
	"strings"
)

// tokenKind classifies lexer output for the two SimpleDB query languages.
type tokenKind int

const (
	tokEOF      tokenKind = iota
	tokString             // 'quoted' (quotes stripped, '' unescaped)
	tokWord               // bare identifier/keyword: and, or, select, count ...
	tokOp                 // comparison operator: = != < <= > >= starts-with ...
	tokLBracket           // [
	tokRBracket           // ]
	tokLParen             // (
	tokRParen             // )
	tokComma              // ,
	tokStar               // *
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokString:
		return "string"
	case tokWord:
		return "word"
	case tokOp:
		return "operator"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokStar:
		return "'*'"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer tokenizes SimpleDB Query and Select expressions. Both languages use
// single-quoted strings with doubled-quote escaping, bare keywords, bracket
// or parenthesis grouping, and the same comparison operators.
type lexer struct {
	src string
	pos int
}

func newLexer(src string) *lexer { return &lexer{src: src} }

// lexError reports a malformed expression.
type lexError struct {
	pos int
	msg string
}

func (e *lexError) Error() string {
	return fmt.Sprintf("position %d: %s", e.pos, e.msg)
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '\'':
		return l.lexString()
	case c == '[':
		l.pos++
		return token{kind: tokLBracket, text: "[", pos: start}, nil
	case c == ']':
		l.pos++
		return token{kind: tokRBracket, text: "]", pos: start}, nil
	case c == '(':
		l.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case c == ',':
		l.pos++
		return token{kind: tokComma, text: ",", pos: start}, nil
	case c == '*':
		l.pos++
		return token{kind: tokStar, text: "*", pos: start}, nil
	case c == '=':
		l.pos++
		return token{kind: tokOp, text: "=", pos: start}, nil
	case c == '!':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tokOp, text: "!=", pos: start}, nil
		}
		return token{}, &lexError{pos: start, msg: "expected '=' after '!'"}
	case c == '<':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokOp, text: "<=", pos: start}, nil
		}
		return token{kind: tokOp, text: "<", pos: start}, nil
	case c == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokOp, text: ">=", pos: start}, nil
		}
		return token{kind: tokOp, text: ">", pos: start}, nil
	case isWordByte(c):
		for l.pos < len(l.src) && isWordByte(l.src[l.pos]) {
			l.pos++
		}
		word := l.src[start:l.pos]
		// Multi-word operators written with hyphens lex as single words:
		// starts-with, does-not-start-with.
		switch strings.ToLower(word) {
		case "starts-with", "does-not-start-with":
			return token{kind: tokOp, text: strings.ToLower(word), pos: start}, nil
		}
		return token{kind: tokWord, text: word, pos: start}, nil
	default:
		return token{}, &lexError{pos: start, msg: fmt.Sprintf("unexpected character %q", c)}
	}
}

func (l *lexer) lexString() (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'') // '' escapes a quote
				l.pos += 2
				continue
			}
			l.pos++
			return token{kind: tokString, text: b.String(), pos: start}, nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return token{}, &lexError{pos: start, msg: "unterminated string"}
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

func isWordByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '_' || c == '-' || c == '.'
}

// tokenize runs the lexer to completion.
func tokenize(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}

// QuoteString renders s as a SimpleDB string literal, escaping quotes.
// Protocol code uses it when assembling query expressions from data.
func QuoteString(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}
