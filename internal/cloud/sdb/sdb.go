// Package sdb simulates Amazon SimpleDB as the paper describes it (§2.2,
// January-2009 snapshot): an eventually-consistent, automatically indexed
// store of items described by attribute-value pairs, queried with the 2009
// bracket query language and the SQL-style Select.
//
// Data model and limits (paper §2.2):
//
//   - items live in a domain and are sets of attribute-value pairs;
//   - an item holds at most 256 pairs; names and values are at most 1 KB;
//   - one PutAttributes call carries at most 100 attributes;
//   - PutAttributes and DeleteAttributes are idempotent;
//   - an item inserted might not be returned by a query run immediately
//     after the insert (eventual consistency).
//
// Replication model: each domain keeps one materialized view per replica.
// A write is assigned a per-replica visibility instant and queues on each
// view; views drain their queues in write order as the clock passes those
// instants. Reads and queries are served by one randomly chosen view, so a
// query sees a single consistent-but-possibly-stale snapshot, and all views
// converge once the propagation horizon passes.
//
// Locking: one service mutex guards all domains and views. Public methods
// hold it for their whole body; unexported helpers assume it is held.
package sdb

import (
	"sort"
	"sync"
	"time"

	"passcloud/internal/cloud/awserr"
	"passcloud/internal/cloud/billing"
	"passcloud/internal/sim"
)

// Limits from the paper's AWS snapshot.
const (
	// MaxNameValueLen bounds attribute names and values: 1 KB.
	MaxNameValueLen = 1 << 10
	// MaxAttrsPerItem bounds attribute-value pairs per item: 256.
	MaxAttrsPerItem = 256
	// MaxAttrsPerCall bounds attributes in one PutAttributes call: 100.
	MaxAttrsPerCall = 100
	// MaxItemsPerBatch bounds items in one BatchPutAttributes call: 25.
	// The 2009 API's amortization lever — "with a single operation, you can
	// store attributes for up to 25 items".
	MaxItemsPerBatch = 25
	// MaxItemNameLen bounds item names: 1 KB.
	MaxItemNameLen = 1 << 10
	// QueryPageLimit is the maximum (and default) number of item names one
	// Query/QueryWithAttributes call returns.
	QueryPageLimit = 250
	// SelectPageLimit is the maximum number of items one Select returns.
	SelectPageLimit = 2500
	// itemOverheadBytes is the per-item billing overhead Amazon charged on
	// top of raw name/value bytes.
	itemOverheadBytes = 45
)

// Attr is one attribute-value pair. Items may carry several pairs with the
// same name; (name, value) pairs are set-unique within an item.
type Attr struct {
	Name  string
	Value string
}

// ReplaceableAttr is a PutAttributes input: with Replace set, all existing
// values of Name are dropped before Value is added.
type ReplaceableAttr struct {
	Name    string
	Value   string
	Replace bool
}

// Item is a named set of attributes, as returned by queries.
type Item struct {
	Name  string
	Attrs []Attr
}

// Config parameterizes the service.
type Config struct {
	// Replicas is the number of materialized views per domain (default 3).
	Replicas int
	// MinDelay/MaxDelay bound the per-replica propagation delay. Both zero
	// means strongly consistent.
	MinDelay, MaxDelay time.Duration
	// Clock is the time source. Required.
	Clock sim.Clock
	// RNG drives replica choice and delays. Required.
	RNG *sim.RNG
	// Meter receives billing events. Required.
	Meter *billing.Meter
	// Faults optionally injects service-side failures (throttles, denials,
	// lost responses) per operation. Nil injects nothing.
	Faults *sim.FaultPlan
}

// Service is a simulated SimpleDB endpoint.
type Service struct {
	cfg Config

	mu      sync.Mutex
	domains map[string]*domain
}

// New returns an empty SimpleDB service.
func New(cfg Config) *Service {
	if cfg.Clock == nil {
		panic("sdb: Config.Clock is required")
	}
	if cfg.RNG == nil {
		panic("sdb: Config.RNG is required")
	}
	if cfg.Meter == nil {
		panic("sdb: Config.Meter is required")
	}
	if cfg.Replicas < 1 {
		cfg.Replicas = 3
	}
	if cfg.MaxDelay < cfg.MinDelay {
		cfg.MaxDelay = cfg.MinDelay
	}
	return &Service{cfg: cfg, domains: make(map[string]*domain)}
}

// MaxDelay returns the propagation horizon.
func (s *Service) MaxDelay() time.Duration { return s.cfg.MaxDelay }

// Meter returns the service's billing meter.
func (s *Service) Meter() *billing.Meter { return s.cfg.Meter }

// domain holds per-replica materialized views.
type domain struct {
	name  string
	views []*view
}

// view is one replica's materialized state: items plus the automatic
// equality index ("SimpleDB automatically indexes data as it is inserted").
type view struct {
	pending []pendingOp // FIFO in write order; drained as clock passes dueAt
	items   map[string][]Attr
	// index: attribute name -> value -> item-name set.
	index map[string]map[string]map[string]struct{}
}

type pendingOp struct {
	dueAt time.Time
	op    writeOp
}

// writeOp is a replicated mutation.
type writeOp struct {
	item      string
	put       []ReplaceableAttr // non-nil for PutAttributes
	del       []Attr            // used by DeleteAttributes
	deleteAll bool
}

func newDomain(name string, replicas int) *domain {
	d := &domain{name: name}
	for i := 0; i < replicas; i++ {
		d.views = append(d.views, &view{
			items: make(map[string][]Attr),
			index: make(map[string]map[string]map[string]struct{}),
		})
	}
	return d
}

// checkFault consults the fault plan for op ("sdb/<op>"). A fail-fast fault
// meters the failed request under the error-suffixed key and returns its
// error; ackLoss tells the caller to apply the op fully and then return a
// timeout anyway. Caller holds s.mu.
func (s *Service) checkFault(op, domainName, item string) (failErr error, ackLoss bool) {
	switch s.cfg.Faults.CheckOp("sdb/" + op) {
	case sim.OpFailTransient:
		s.cfg.Meter.OpErr(billing.SimpleDB, op, billing.TierBox)
		return opErr(op, domainName, item, awserr.ErrThrottled), false
	case sim.OpFailPermanent:
		s.cfg.Meter.OpErr(billing.SimpleDB, op, billing.TierBox)
		return opErr(op, domainName, item, awserr.ErrAccessDenied), false
	case sim.OpAckLoss:
		return nil, true
	}
	return nil, false
}

// CreateDomain creates a domain. Immediately visible; the paper's protocols
// create domains once at setup time.
func (s *Service) CreateDomain(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg.Meter.Op(billing.SimpleDB, "CreateDomain", billing.TierBox)
	if !validName(name, MaxItemNameLen) {
		return opErr("CreateDomain", name, "", ErrInvalidName)
	}
	if _, ok := s.domains[name]; ok {
		return opErr("CreateDomain", name, "", ErrDomainExists)
	}
	s.domains[name] = newDomain(name, s.cfg.Replicas)
	return nil
}

// DeleteDomain removes a domain and everything in it. Idempotent.
func (s *Service) DeleteDomain(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg.Meter.Op(billing.SimpleDB, "DeleteDomain", billing.TierBox)
	delete(s.domains, name)
	return nil
}

// ListDomains returns all domain names, sorted.
func (s *Service) ListDomains() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg.Meter.Op(billing.SimpleDB, "ListDomains", billing.TierBox)
	out := make([]string, 0, len(s.domains))
	for name := range s.domains {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// PutAttributes inserts or updates attributes of an item. It is idempotent:
// re-running the same call leaves the same state and returns no error
// (paper §2.2). At most MaxAttrsPerCall attributes per call.
func (s *Service) PutAttributes(domainName, itemName string, attrs []ReplaceableAttr) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.domains[domainName]
	if !ok {
		return opErr("PutAttributes", domainName, itemName, ErrNoSuchDomain)
	}
	// Billed requests that change nothing — validation rejections, injected
	// faults — meter under the error-suffixed key so mutation counters only
	// see writes that landed.
	fail := func(code error) error {
		s.cfg.Meter.OpErr(billing.SimpleDB, "PutAttributes", billing.TierBox)
		return opErr("PutAttributes", domainName, itemName, code)
	}
	if !validName(itemName, MaxItemNameLen) {
		return fail(ErrInvalidName)
	}
	if len(attrs) == 0 {
		return fail(ErrInvalidName)
	}
	if len(attrs) > MaxAttrsPerCall {
		return fail(ErrTooManyAttrsPerCall)
	}
	var inBytes int64
	for _, a := range attrs {
		if len(a.Name) == 0 || len(a.Name) > MaxNameValueLen || len(a.Value) > MaxNameValueLen {
			return fail(ErrTooLarge)
		}
		inBytes += int64(len(a.Name) + len(a.Value))
	}
	op := writeOp{item: itemName, put: append([]ReplaceableAttr(nil), attrs...)}

	// The 256-pair limit is validated against the authoritative (eventual)
	// state so a client cannot overfill an item by racing propagation.
	cur := eventualAttrs(d.views[0], itemName, writeOp{})
	after, _ := applyOp(append([]Attr(nil), cur...), cur != nil, op)
	if len(after) > MaxAttrsPerItem {
		return fail(ErrTooManyAttrsPerItem)
	}
	// Faults fire only on requests that passed every validation, so an
	// ack-loss outcome always means the write below applied.
	failErr, ackLoss := s.checkFault("PutAttributes", domainName, itemName)
	if failErr != nil {
		return failErr
	}

	s.cfg.Meter.Op(billing.SimpleDB, "PutAttributes", billing.TierBox)
	s.cfg.Meter.In(billing.SimpleDB, inBytes)
	s.replicate(d, op)
	if ackLoss {
		// The write landed; only the response was lost. PutAttributes is
		// idempotent (§2.2), so retrying is safe.
		return opErr("PutAttributes", domainName, itemName, awserr.ErrRequestTimeout)
	}
	return nil
}

// BatchItem is one item's worth of a BatchPutAttributes call.
type BatchItem struct {
	Name  string
	Attrs []ReplaceableAttr
}

// BatchPutAttributes inserts or updates attributes of up to MaxItemsPerBatch
// items in one metered request, amortizing per-call overhead across items.
// Per-item semantics match PutAttributes (idempotent, Replace honored); an
// item name may appear only once per call. The whole call is validated
// before any item is applied, so a limit violation stores nothing.
func (s *Service) BatchPutAttributes(domainName string, items []BatchItem) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.domains[domainName]
	if !ok {
		return opErr("BatchPutAttributes", domainName, "", ErrNoSuchDomain)
	}
	fail := func(item string, code error) error {
		s.cfg.Meter.OpErr(billing.SimpleDB, "BatchPutAttributes", billing.TierBox)
		return opErr("BatchPutAttributes", domainName, item, code)
	}
	if len(items) == 0 {
		return fail("", ErrInvalidName)
	}
	if len(items) > MaxItemsPerBatch {
		return fail("", ErrTooManyItemsPerBatch)
	}

	var inBytes int64
	seen := make(map[string]bool, len(items))
	ops := make([]writeOp, 0, len(items))
	for _, it := range items {
		if !validName(it.Name, MaxItemNameLen) {
			return fail(it.Name, ErrInvalidName)
		}
		if seen[it.Name] {
			return fail(it.Name, ErrDuplicateItemInBatch)
		}
		seen[it.Name] = true
		if len(it.Attrs) == 0 {
			return fail(it.Name, ErrInvalidName)
		}
		if len(it.Attrs) > MaxAttrsPerCall {
			return fail(it.Name, ErrTooManyAttrsPerCall)
		}
		for _, a := range it.Attrs {
			if len(a.Name) == 0 || len(a.Name) > MaxNameValueLen || len(a.Value) > MaxNameValueLen {
				return fail(it.Name, ErrTooLarge)
			}
			inBytes += int64(len(a.Name) + len(a.Value))
		}
		op := writeOp{item: it.Name, put: append([]ReplaceableAttr(nil), it.Attrs...)}
		cur := eventualAttrs(d.views[0], it.Name, writeOp{})
		after, _ := applyOp(append([]Attr(nil), cur...), cur != nil, op)
		if len(after) > MaxAttrsPerItem {
			return fail(it.Name, ErrTooManyAttrsPerItem)
		}
		ops = append(ops, op)
	}
	failErr, ackLoss := s.checkFault("BatchPutAttributes", domainName, "")
	if failErr != nil {
		return failErr
	}

	s.cfg.Meter.Op(billing.SimpleDB, "BatchPutAttributes", billing.TierBox)
	s.cfg.Meter.In(billing.SimpleDB, inBytes)
	for _, op := range ops {
		s.replicate(d, op)
	}
	if ackLoss {
		// Every item landed; only the response was lost. Per-item semantics
		// are idempotent, so re-sending the whole batch is safe.
		return opErr("BatchPutAttributes", domainName, "", awserr.ErrRequestTimeout)
	}
	return nil
}

// DeleteAttributes removes the given attributes from an item; with an empty
// attrs list the whole item is deleted. A delete spec with an empty Value
// removes every value of that name. Idempotent: deleting what is absent is
// not an error (paper §2.2).
func (s *Service) DeleteAttributes(domainName, itemName string, attrs []Attr) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.domains[domainName]
	if !ok {
		return opErr("DeleteAttributes", domainName, itemName, ErrNoSuchDomain)
	}
	failErr, ackLoss := s.checkFault("DeleteAttributes", domainName, itemName)
	if failErr != nil {
		return failErr
	}
	s.cfg.Meter.Op(billing.SimpleDB, "DeleteAttributes", billing.TierBox)
	if len(attrs) == 0 {
		s.replicate(d, writeOp{item: itemName, deleteAll: true})
	} else {
		s.replicate(d, writeOp{item: itemName, del: append([]Attr(nil), attrs...)})
	}
	if ackLoss {
		// The delete landed; DeleteAttributes is idempotent (§2.2).
		return opErr("DeleteAttributes", domainName, itemName, awserr.ErrRequestTimeout)
	}
	return nil
}

// GetAttributes returns the attributes of an item as one replica sees it,
// optionally filtered to the given names. A missing item yields ok=false
// with no error, matching SimpleDB's empty response.
func (s *Service) GetAttributes(domainName, itemName string, names ...string) (attrs []Attr, ok bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, found := s.domains[domainName]
	if !found {
		return nil, false, opErr("GetAttributes", domainName, itemName, ErrNoSuchDomain)
	}
	failErr, ackLoss := s.checkFault("GetAttributes", domainName, itemName)
	if failErr != nil {
		return nil, false, failErr
	}
	s.cfg.Meter.Op(billing.SimpleDB, "GetAttributes", billing.TierBox)
	if ackLoss {
		return nil, false, opErr("GetAttributes", domainName, itemName, awserr.ErrRequestTimeout)
	}
	v := d.views[s.cfg.RNG.Intn(len(d.views))]
	s.drain(v)

	stored, exists := v.items[itemName]
	if !exists {
		return nil, false, nil
	}
	var out []Attr
	if len(names) == 0 {
		out = append(out, stored...)
	} else {
		want := make(map[string]bool, len(names))
		for _, n := range names {
			want[n] = true
		}
		for _, a := range stored {
			if want[a.Name] {
				out = append(out, a)
			}
		}
	}
	var outBytes int64
	for _, a := range out {
		outBytes += int64(len(a.Name) + len(a.Value))
	}
	s.cfg.Meter.Out(billing.SimpleDB, outBytes)
	return out, true, nil
}

// replicate stamps per-replica visibility, queues the op on every view, and
// updates storage accounting from the authoritative state delta.
// Caller holds s.mu.
func (s *Service) replicate(d *domain, op writeOp) {
	now := s.cfg.Clock.Now()

	// Apply everything already due first, so the eventual-state walk below
	// only traverses genuinely pending ops. Without this, write-only
	// workloads accumulate pending lists and each write pays O(pending).
	for _, v := range d.views {
		s.drain(v)
	}

	before := billedSize(op.item, eventualAttrs(d.views[0], op.item, writeOp{}))

	accepting := s.cfg.RNG.Intn(len(d.views))
	for i, v := range d.views {
		due := now
		if i != accepting {
			due = now.Add(s.propagationDelay())
		}
		v.pending = append(v.pending, pendingOp{dueAt: due, op: op})
	}

	after := billedSize(op.item, eventualAttrs(d.views[0], op.item, writeOp{}))
	s.cfg.Meter.StorageDelta(billing.SimpleDB, after-before)
}

func (s *Service) propagationDelay() time.Duration {
	span := s.cfg.MaxDelay - s.cfg.MinDelay
	if span <= 0 {
		return s.cfg.MinDelay
	}
	return s.cfg.MinDelay + time.Duration(s.cfg.RNG.Int63()%int64(span+1))
}

// eventualAttrs computes item's attribute set after all of v's pending ops
// (plus optionally one extra op) apply. nil result means the item will not
// exist. Caller holds s.mu.
func eventualAttrs(v *view, item string, extra writeOp) []Attr {
	base := v.items[item]
	cur := append([]Attr(nil), base...)
	present := base != nil
	for _, p := range v.pending {
		if p.op.item == item {
			cur, present = applyOp(cur, present, p.op)
		}
	}
	if extra.item == item && (extra.put != nil || extra.del != nil || extra.deleteAll) {
		cur, present = applyOp(cur, present, extra)
	}
	if !present {
		return nil
	}
	if len(cur) == 0 {
		// Present but empty cannot happen post-applyOp; normalize anyway.
		return nil
	}
	return cur
}

// billedSize is the Amazon storage formula: raw name/value bytes + item name
// + 45 bytes of per-item overhead; zero for absent items.
func billedSize(item string, attrs []Attr) int64 {
	if attrs == nil {
		return 0
	}
	n := int64(len(item)) + itemOverheadBytes
	for _, a := range attrs {
		n += int64(len(a.Name) + len(a.Value))
	}
	return n
}

// applyOp applies one write op to an item's attribute set, returning the new
// set and whether the item exists afterwards. The caller owns cur.
func applyOp(cur []Attr, present bool, op writeOp) ([]Attr, bool) {
	switch {
	case op.deleteAll:
		return nil, false
	case op.del != nil:
		out := cur[:0]
		for _, a := range cur {
			if !matchesDelete(a, op.del) {
				out = append(out, a)
			}
		}
		if len(out) == 0 {
			return nil, false
		}
		return out, true
	case op.put != nil:
		replaced := make(map[string]bool)
		for _, ra := range op.put {
			if ra.Replace {
				replaced[ra.Name] = true
			}
		}
		out := make([]Attr, 0, len(cur)+len(op.put))
		for _, a := range cur {
			if !replaced[a.Name] {
				out = append(out, a)
			}
		}
		for _, ra := range op.put {
			pair := Attr{Name: ra.Name, Value: ra.Value}
			if !containsAttr(out, pair) {
				out = append(out, pair)
			}
		}
		return out, true
	default:
		return cur, present
	}
}

// matchesDelete reports whether a matches any delete spec.
func matchesDelete(a Attr, specs []Attr) bool {
	for _, d := range specs {
		if d.Name == a.Name && (d.Value == "" || d.Value == a.Value) {
			return true
		}
	}
	return false
}

func containsAttr(attrs []Attr, a Attr) bool {
	for _, x := range attrs {
		if x == a {
			return true
		}
	}
	return false
}

// drain applies every pending op whose visibility instant has passed, in
// write order, keeping the materialized items and index current.
// Caller holds s.mu.
func (s *Service) drain(v *view) {
	now := s.cfg.Clock.Now()
	i := 0
	for ; i < len(v.pending); i++ {
		p := v.pending[i]
		if p.dueAt.After(now) {
			break
		}
		applyToView(v, p.op)
	}
	if i > 0 {
		v.pending = append(v.pending[:0], v.pending[i:]...)
	}
}

// applyToView mutates the materialized map and the automatic index.
func applyToView(v *view, op writeOp) {
	before := v.items[op.item]
	after, present := applyOp(append([]Attr(nil), before...), before != nil, op)

	beforeSet := make(map[Attr]bool, len(before))
	for _, a := range before {
		beforeSet[a] = true
	}
	for _, a := range after {
		if !beforeSet[a] {
			indexAdd(v, op.item, a)
		}
		delete(beforeSet, a)
	}
	for a := range beforeSet {
		indexRemove(v, op.item, a)
	}

	if !present {
		delete(v.items, op.item)
		return
	}
	v.items[op.item] = after
}

func indexAdd(v *view, item string, a Attr) {
	byValue := v.index[a.Name]
	if byValue == nil {
		byValue = make(map[string]map[string]struct{})
		v.index[a.Name] = byValue
	}
	set := byValue[a.Value]
	if set == nil {
		set = make(map[string]struct{})
		byValue[a.Value] = set
	}
	set[item] = struct{}{}
}

func indexRemove(v *view, item string, a Attr) {
	byValue := v.index[a.Name]
	if byValue == nil {
		return
	}
	set := byValue[a.Value]
	if set == nil {
		return
	}
	delete(set, item)
	if len(set) == 0 {
		delete(byValue, a.Value)
	}
}

// Converged reports whether every view of every domain has fully drained.
func (s *Service) Converged() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.cfg.Clock.Now()
	for _, d := range s.domains {
		for _, v := range d.views {
			for _, p := range v.pending {
				if p.dueAt.After(now) {
					return false
				}
			}
		}
	}
	return true
}

// ItemCount reports the number of items visible on replica 0 of a domain; a
// cheap convergence and size probe for tests.
func (s *Service) ItemCount(domainName string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.domains[domainName]
	if !ok {
		return 0, opErr("ItemCount", domainName, "", ErrNoSuchDomain)
	}
	s.drain(d.views[0])
	return len(d.views[0].items), nil
}

func validName(name string, max int) bool {
	return len(name) >= 1 && len(name) <= max
}
