package sdb

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"passcloud/internal/cloud/billing"
	"passcloud/internal/sim"
)

// loadMovies fills the classic SimpleDB documentation example dataset.
func loadMovies(t *testing.T, svc *Service) {
	t.Helper()
	put := func(item string, attrs ...Attr) {
		t.Helper()
		putOne(t, svc, item, attrs...)
	}
	put("0385333498", Attr{"Title", "The Sirens of Titan"}, Attr{"Author", "Kurt Vonnegut"},
		Attr{"Year", "1959"}, Attr{"Keyword", "Book"}, Attr{"Keyword", "Paperback"}, Attr{"Rating", "*****"})
	put("0802131786", Attr{"Title", "Tropic of Cancer"}, Attr{"Author", "Henry Miller"},
		Attr{"Year", "1934"}, Attr{"Keyword", "Book"}, Attr{"Rating", "****"})
	put("1579124585", Attr{"Title", "The Right Stuff"}, Attr{"Author", "Tom Wolfe"},
		Attr{"Year", "1979"}, Attr{"Keyword", "Book"}, Attr{"Keyword", "Hardcover"}, Attr{"Rating", "****"})
	put("B000T9886K", Attr{"Title", "In Between"}, Attr{"Author", "Paul Van Dyk"},
		Attr{"Year", "2007"}, Attr{"Keyword", "CD"}, Attr{"Keyword", "Trance"}, Attr{"Rating", "****"})
	put("B00005JPLW", Attr{"Title", "300"}, Attr{"Author", "Zack Snyder"},
		Attr{"Year", "2007"}, Attr{"Keyword", "DVD"}, Attr{"Keyword", "Action"}, Attr{"Rating", "***"})
}

func queryNames(t *testing.T, svc *Service, expr string) []string {
	t.Helper()
	var names []string
	token := ""
	for {
		res, err := svc.Query("prov", expr, 0, token)
		if err != nil {
			t.Fatalf("Query(%q): %v", expr, err)
		}
		names = append(names, res.ItemNames...)
		if res.NextToken == "" {
			return names
		}
		token = res.NextToken
	}
}

func TestQueryEquality(t *testing.T) {
	svc, _, _ := newTestService(t)
	loadMovies(t, svc)
	got := queryNames(t, svc, "['Keyword' = 'Book']")
	want := []string{"0385333498", "0802131786", "1579124585"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestQueryRange(t *testing.T) {
	svc, _, _ := newTestService(t)
	loadMovies(t, svc)
	got := queryNames(t, svc, "['Year' > '1975' and 'Year' < '2008']")
	want := []string{"1579124585", "B000T9886K", "B00005JPLW"}
	if len(got) != 3 {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestQueryOrWithinPredicate(t *testing.T) {
	svc, _, _ := newTestService(t)
	loadMovies(t, svc)
	got := queryNames(t, svc, "['Rating' = '***' or 'Rating' = '*****']")
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestQueryIntersection(t *testing.T) {
	svc, _, _ := newTestService(t)
	loadMovies(t, svc)
	got := queryNames(t, svc, "['Keyword' = 'Book'] intersection ['Rating' = '****']")
	want := []string{"0802131786", "1579124585"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestQueryUnion(t *testing.T) {
	svc, _, _ := newTestService(t)
	loadMovies(t, svc)
	got := queryNames(t, svc, "['Keyword' = 'CD'] union ['Keyword' = 'DVD']")
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestQueryNot(t *testing.T) {
	svc, _, _ := newTestService(t)
	loadMovies(t, svc)
	got := queryNames(t, svc, "['Keyword' = 'Book'] not ['Rating' = '****']")
	want := []string{"0385333498"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestQueryStartsWith(t *testing.T) {
	svc, _, _ := newTestService(t)
	loadMovies(t, svc)
	got := queryNames(t, svc, "['Title' starts-with 'The ']")
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	got = queryNames(t, svc, "['Title' does-not-start-with 'The ']")
	if len(got) != 3 {
		t.Fatalf("negated: got %v", got)
	}
}

func TestQuerySort(t *testing.T) {
	svc, _, _ := newTestService(t)
	loadMovies(t, svc)
	got := queryNames(t, svc, "['Keyword' = 'Book'] sort 'Year' asc")
	want := []string{"0802131786", "0385333498", "1579124585"} // 1934, 1959, 1979
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("asc: got %v, want %v", got, want)
	}
	got = queryNames(t, svc, "['Keyword' = 'Book'] sort 'Year' desc")
	want = []string{"1579124585", "0385333498", "0802131786"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("desc: got %v, want %v", got, want)
	}
}

func TestQuerySortDropsItemsMissingAttr(t *testing.T) {
	svc, _, _ := newTestService(t)
	putOne(t, svc, "with", Attr{"t", "x"}, Attr{"k", "1"})
	putOne(t, svc, "without", Attr{"t", "x"})
	got := queryNames(t, svc, "['t' = 'x'] sort 'k'")
	if len(got) != 1 || got[0] != "with" {
		t.Fatalf("got %v, want [with]", got)
	}
}

func TestQueryMultiValueSingleValueRule(t *testing.T) {
	// A range conjunction must be satisfied by a single value: an item with
	// values {"0100", "9900"} must NOT match ['v' > '0500' and 'v' < '1000'].
	svc, _, _ := newTestService(t)
	putOne(t, svc, "item", Attr{"v", "0100"}, Attr{"v", "9900"})
	got := queryNames(t, svc, "['v' > '0500' and 'v' < '1000']")
	if len(got) != 0 {
		t.Fatalf("conjunction satisfied across different values: %v", got)
	}
	got = queryNames(t, svc, "['v' > '0050' and 'v' < '1000']")
	if len(got) != 1 {
		t.Fatalf("single value 0100 should satisfy: %v", got)
	}
}

func TestQueryMixedAttributePredicateRejected(t *testing.T) {
	svc, _, _ := newTestService(t)
	_, err := svc.Query("prov", "['a' = '1' and 'b' = '2']", 0, "")
	if !errors.Is(err, ErrInvalidQuery) {
		t.Fatalf("mixed-attribute predicate: %v", err)
	}
}

func TestQuerySyntaxErrors(t *testing.T) {
	svc, _, _ := newTestService(t)
	for _, expr := range []string{
		"",
		"[",
		"['a']",
		"['a' =]",
		"['a' = 'b'",
		"'a' = 'b'",
		"['a' = 'b'] bogus ['c' = 'd']",
		"['a' ! 'b']",
		"['a' = 'unterminated]",
	} {
		if _, err := svc.Query("prov", expr, 0, ""); !errors.Is(err, ErrInvalidQuery) {
			t.Fatalf("expr %q: err = %v, want ErrInvalidQuery", expr, err)
		}
	}
}

func TestQueryPagination(t *testing.T) {
	svc, _, _ := newTestService(t)
	for i := 0; i < 600; i++ {
		putOne(t, svc, fmt.Sprintf("item%04d", i), Attr{"t", "x"})
	}
	res, err := svc.Query("prov", "['t' = 'x']", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ItemNames) != QueryPageLimit || res.NextToken == "" {
		t.Fatalf("page 1: %d names, token %q", len(res.ItemNames), res.NextToken)
	}
	all := queryNames(t, svc, "['t' = 'x']")
	if len(all) != 600 {
		t.Fatalf("paginated total = %d, want 600", len(all))
	}
	seen := make(map[string]bool)
	for _, n := range all {
		if seen[n] {
			t.Fatalf("duplicate %q across pages", n)
		}
		seen[n] = true
	}
	if _, err := svc.Query("prov", "['t' = 'x']", 0, "garbage"); !errors.Is(err, ErrInvalidNextToken) {
		t.Fatalf("bad token: %v", err)
	}
}

func TestQueryWithAttributes(t *testing.T) {
	svc, _, _ := newTestService(t)
	loadMovies(t, svc)
	res, err := svc.QueryWithAttributes("prov", "['Keyword' = 'CD']", nil, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 1 || res.Items[0].Name != "B000T9886K" {
		t.Fatalf("items = %v", res.Items)
	}
	if len(res.Items[0].Attrs) != 6 {
		t.Fatalf("attrs = %v", res.Items[0].Attrs)
	}

	res, err = svc.QueryWithAttributes("prov", "['Keyword' = 'CD']", []string{"Title"}, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items[0].Attrs) != 1 || res.Items[0].Attrs[0].Name != "Title" {
		t.Fatalf("subset attrs = %v", res.Items[0].Attrs)
	}
}

func TestQueryAfterUpdateAndDelete(t *testing.T) {
	svc, _, _ := newTestService(t)
	putOne(t, svc, "a", Attr{"k", "1"})
	putOne(t, svc, "b", Attr{"k", "1"})
	if err := svc.PutAttributes("prov", "a", []ReplaceableAttr{{Name: "k", Value: "2", Replace: true}}); err != nil {
		t.Fatal(err)
	}
	if got := queryNames(t, svc, "['k' = '1']"); len(got) != 1 || got[0] != "b" {
		t.Fatalf("after replace: %v", got)
	}
	if err := svc.DeleteAttributes("prov", "b", nil); err != nil {
		t.Fatal(err)
	}
	if got := queryNames(t, svc, "['k' = '1']"); len(got) != 0 {
		t.Fatalf("after delete: %v (index stale)", got)
	}
	if got := queryNames(t, svc, "['k' = '2']"); len(got) != 1 || got[0] != "a" {
		t.Fatalf("new value: %v", got)
	}
}

func TestQuoteStringRoundTrip(t *testing.T) {
	f := func(raw string) bool {
		// Only printable-ish payloads appear in provenance values; the
		// lexer is byte-oriented so any string without NUL works.
		if strings.ContainsRune(raw, 0) {
			return true
		}
		toks, err := tokenize(QuoteString(raw))
		if err != nil {
			return false
		}
		return len(toks) == 2 && toks[0].kind == tokString && toks[0].text == raw
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQueryIndexConsistencyQuick(t *testing.T) {
	// Property: for random data, an indexed equality query returns exactly
	// the items a full scan would.
	f := func(seed int64, n uint8) bool {
		svc, _, _ := newQuickService(seed)
		names := make(map[string][]Attr)
		for i := 0; i < int(n); i++ {
			item := fmt.Sprintf("i%d", i%7)
			val := fmt.Sprintf("v%d", (int(seed)+i)%4)
			if err := svc.PutAttributes("d", item, []ReplaceableAttr{{Name: "k", Value: val}}); err != nil {
				return false
			}
			names[item] = append(names[item], Attr{"k", val})
		}
		for v := 0; v < 4; v++ {
			val := fmt.Sprintf("v%d", v)
			res, err := svc.Query("d", "['k' = "+QuoteString(val)+"]", 0, "")
			if err != nil {
				return false
			}
			// Scan ground truth.
			want := make(map[string]bool)
			for item, attrs := range names {
				for _, a := range attrs {
					if a.Value == val {
						want[item] = true
					}
				}
			}
			if len(res.ItemNames) != len(want) {
				return false
			}
			for _, item := range res.ItemNames {
				if !want[item] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func newQuickService(seed int64) (*Service, *sim.VirtualClock, *billing.Meter) {
	clock := sim.NewVirtualClock()
	meter := &billing.Meter{}
	svc := New(Config{
		Replicas: 2,
		Clock:    clock,
		RNG:      sim.NewRNG(seed),
		Meter:    meter,
	})
	_ = svc.CreateDomain("d")
	return svc, clock, meter
}
