// Package awserr classifies simulated AWS errors the way a resilient client
// must: transient failures (throttles, 5xx, timeouts) are worth retrying
// with backoff, everything else is permanent and must surface immediately.
//
// The simulated services (internal/cloud/{s3,sdb,sqs}) return these
// sentinels when a fault plan injects a service-side failure; the shared
// retry policy (internal/cloud/retry) consults Transient to decide whether
// another attempt can help. ErrRequestTimeout is the deliberately ambiguous
// case — the operation may have been applied even though the response was
// lost — so every retried write path must be idempotent under re-apply.
package awserr

import "errors"

// Transient error codes: another attempt, after backing off, may succeed.
var (
	// ErrThrottled mirrors "503 SlowDown / ServiceUnavailable: Please
	// reduce your request rate". The request was rejected before applying.
	ErrThrottled = errors.New("ServiceUnavailable: please reduce your request rate")
	// ErrInternal mirrors a 500 InternalError: the service failed before
	// applying the request.
	ErrInternal = errors.New("InternalError: we encountered an internal error, please try again")
	// ErrRequestTimeout mirrors a lost response: the connection died after
	// the request was sent, so the operation MAY have been applied. Retries
	// of ops that can fail this way must be idempotent.
	ErrRequestTimeout = errors.New("RequestTimeout: socket connection to the server was not read from or written to")
)

// Permanent error codes: retrying the identical request cannot succeed.
var (
	// ErrAccessDenied mirrors a 403: the request was refused and no amount
	// of retrying will change the answer.
	ErrAccessDenied = errors.New("AccessDenied")
)

// transients lists every sentinel Transient matches.
var transients = []error{ErrThrottled, ErrInternal, ErrRequestTimeout}

// Transient reports whether err is worth retrying: one of the transient
// sentinels (however wrapped), or any error advertising Transient() true.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	for _, t := range transients {
		if errors.Is(err, t) {
			return true
		}
	}
	var tr interface{ Transient() bool }
	if errors.As(err, &tr) {
		return tr.Transient()
	}
	return false
}
