package awserr

import (
	"errors"
	"fmt"
	"testing"
)

type transientish struct{}

func (transientish) Error() string   { return "custom" }
func (transientish) Transient() bool { return true }

func TestTransientClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{ErrThrottled, true},
		{ErrInternal, true},
		{ErrRequestTimeout, true},
		{ErrAccessDenied, false},
		{errors.New("NoSuchKey"), false},
		{fmt.Errorf("s3: PUT b/k: %w", ErrThrottled), true},
		{fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", ErrRequestTimeout)), true},
		{transientish{}, true},
	}
	for _, c := range cases {
		if got := Transient(c.err); got != c.want {
			t.Errorf("Transient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}
