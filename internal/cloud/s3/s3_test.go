package s3

import (
	"bytes"
	"crypto/md5"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"passcloud/internal/cloud/billing"
	"passcloud/internal/cloud/replica"
	"passcloud/internal/sim"
)

// newTestService returns a strongly consistent service for API-contract
// tests plus its clock and meter.
func newTestService(t *testing.T) (*Service, *sim.VirtualClock, *billing.Meter) {
	t.Helper()
	return newDelayedService(t, 0)
}

func newDelayedService(t *testing.T, maxDelay time.Duration) (*Service, *sim.VirtualClock, *billing.Meter) {
	t.Helper()
	clock := sim.NewVirtualClock()
	meter := &billing.Meter{}
	svc := New(Config{
		Replication: replica.Config{
			Replicas: 3,
			MaxDelay: maxDelay,
			Clock:    clock,
			RNG:      sim.NewRNG(1),
		},
		Meter: meter,
	})
	if err := svc.CreateBucket("test-bucket"); err != nil {
		t.Fatalf("CreateBucket: %v", err)
	}
	return svc, clock, meter
}

func TestPutGetRoundTrip(t *testing.T) {
	svc, _, _ := newTestService(t)
	body := []byte("hello provenance")
	meta := map[string]string{"x-amz-meta-type": "file"}
	if err := svc.Put("test-bucket", "obj", body, meta); err != nil {
		t.Fatalf("Put: %v", err)
	}
	obj, err := svc.Get("test-bucket", "obj")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(obj.Body, body) {
		t.Fatalf("body = %q, want %q", obj.Body, body)
	}
	if obj.Metadata["x-amz-meta-type"] != "file" {
		t.Fatalf("metadata = %v", obj.Metadata)
	}
	wantETag := md5.Sum(body)
	if obj.ETag != hex.EncodeToString(wantETag[:]) {
		t.Fatalf("ETag = %q", obj.ETag)
	}
	if obj.Size != int64(len(body)) {
		t.Fatalf("Size = %d", obj.Size)
	}
}

func TestPutOverwrites(t *testing.T) {
	svc, _, _ := newTestService(t)
	must(t, svc.Put("test-bucket", "k", []byte("v1"), nil))
	must(t, svc.Put("test-bucket", "k", []byte("v2"), nil))
	obj, err := svc.Get("test-bucket", "k")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(obj.Body) != "v2" {
		t.Fatalf("body = %q, want v2 (last PUT retained)", obj.Body)
	}
}

func TestPutLimits(t *testing.T) {
	svc, _, _ := newTestService(t)

	if err := svc.Put("test-bucket", "empty", nil, nil); !errors.Is(err, ErrEntityTooSmall) {
		t.Fatalf("empty body: err = %v, want EntityTooSmall", err)
	}

	big := map[string]string{"k": strings.Repeat("v", MaxMetadataSize)}
	if err := svc.Put("test-bucket", "m", []byte("x"), big); !errors.Is(err, ErrMetadataTooLarge) {
		t.Fatalf("oversize metadata: err = %v, want MetadataTooLarge", err)
	}

	exact := map[string]string{"ab": strings.Repeat("v", MaxMetadataSize-2)}
	if err := svc.Put("test-bucket", "m2", []byte("x"), exact); err != nil {
		t.Fatalf("exactly 2 KB metadata rejected: %v", err)
	}

	if err := svc.Put("test-bucket", "", []byte("x"), nil); !errors.Is(err, ErrInvalidName) {
		t.Fatalf("empty key: err = %v, want InvalidName", err)
	}
	if err := svc.Put("test-bucket", strings.Repeat("k", MaxKeyLength+1), []byte("x"), nil); !errors.Is(err, ErrInvalidName) {
		t.Fatalf("long key: err = %v, want InvalidName", err)
	}
}

func TestGetMissingKey(t *testing.T) {
	svc, _, _ := newTestService(t)
	_, err := svc.Get("test-bucket", "nope")
	if !errors.Is(err, ErrNoSuchKey) {
		t.Fatalf("err = %v, want NoSuchKey", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Op != "GET" || apiErr.Key != "nope" {
		t.Fatalf("APIError not populated: %v", err)
	}
}

func TestBucketLifecycle(t *testing.T) {
	svc, _, _ := newTestService(t)
	if err := svc.CreateBucket("test-bucket"); !errors.Is(err, ErrBucketAlreadyExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	if err := svc.CreateBucket("x"); !errors.Is(err, ErrInvalidName) {
		t.Fatalf("short name: %v", err)
	}
	if err := svc.CreateBucket("UPPER"); !errors.Is(err, ErrInvalidName) {
		t.Fatalf("uppercase name: %v", err)
	}
	must(t, svc.Put("test-bucket", "k", []byte("v"), nil))
	if err := svc.DeleteBucket("test-bucket"); !errors.Is(err, ErrBucketNotEmpty) {
		t.Fatalf("delete non-empty: %v", err)
	}
	must(t, svc.Delete("test-bucket", "k"))
	if err := svc.DeleteBucket("test-bucket"); err != nil {
		t.Fatalf("delete empty: %v", err)
	}
	if err := svc.DeleteBucket("test-bucket"); !errors.Is(err, ErrNoSuchBucket) {
		t.Fatalf("delete missing: %v", err)
	}
	if _, err := svc.Get("test-bucket", "k"); !errors.Is(err, ErrNoSuchBucket) {
		t.Fatalf("get from missing bucket: %v", err)
	}
}

func TestListBuckets(t *testing.T) {
	svc, _, _ := newTestService(t)
	must(t, svc.CreateBucket("aaa"))
	got := svc.ListBuckets()
	if len(got) != 2 || got[0] != "aaa" || got[1] != "test-bucket" {
		t.Fatalf("ListBuckets = %v", got)
	}
}

func TestGetRange(t *testing.T) {
	svc, _, _ := newTestService(t)
	must(t, svc.Put("test-bucket", "k", []byte("0123456789"), nil))

	obj, err := svc.GetRange("test-bucket", "k", 2, 3)
	if err != nil {
		t.Fatalf("GetRange: %v", err)
	}
	if string(obj.Body) != "234" {
		t.Fatalf("range body = %q, want 234", obj.Body)
	}
	if obj.Size != 10 {
		t.Fatalf("Size = %d, want full object size 10", obj.Size)
	}

	obj, err = svc.GetRange("test-bucket", "k", 7, -1)
	if err != nil || string(obj.Body) != "789" {
		t.Fatalf("open-ended range = %q, %v", obj.Body, err)
	}

	obj, err = svc.GetRange("test-bucket", "k", 8, 100)
	if err != nil || string(obj.Body) != "89" {
		t.Fatalf("over-long range = %q, %v", obj.Body, err)
	}

	if _, err := svc.GetRange("test-bucket", "k", -1, 2); !errors.Is(err, ErrInvalidRange) {
		t.Fatalf("negative offset: %v", err)
	}
	if _, err := svc.GetRange("test-bucket", "k", 11, 2); !errors.Is(err, ErrInvalidRange) {
		t.Fatalf("offset past end: %v", err)
	}
}

func TestHeadReturnsMetadataOnly(t *testing.T) {
	svc, _, meter := newTestService(t)
	meta := map[string]string{"prov": "x"}
	must(t, svc.Put("test-bucket", "k", []byte("0123456789"), meta))
	before := meter.Snapshot().BytesOut(billing.S3)

	info, err := svc.Head("test-bucket", "k")
	if err != nil {
		t.Fatalf("Head: %v", err)
	}
	if info.Metadata["prov"] != "x" || info.Size != 10 {
		t.Fatalf("Head info = %+v", info)
	}
	outDelta := meter.Snapshot().BytesOut(billing.S3) - before
	if outDelta >= 10 {
		t.Fatalf("HEAD billed %d bytes out; must not include the body", outDelta)
	}
}

func TestCopyPreservesAndReplacesMetadata(t *testing.T) {
	svc, _, _ := newTestService(t)
	must(t, svc.Put("test-bucket", "src", []byte("data"), map[string]string{"a": "1"}))

	must(t, svc.Copy("test-bucket", "src", "test-bucket", "kept", nil))
	obj, err := svc.Get("test-bucket", "kept")
	if err != nil || obj.Metadata["a"] != "1" || string(obj.Body) != "data" {
		t.Fatalf("copy with preserved metadata: %+v, %v", obj, err)
	}

	must(t, svc.Copy("test-bucket", "src", "test-bucket", "replaced", map[string]string{"b": "2"}))
	obj, err = svc.Get("test-bucket", "replaced")
	if err != nil || obj.Metadata["b"] != "2" || obj.Metadata["a"] != "" {
		t.Fatalf("copy with replaced metadata: %+v, %v", obj, err)
	}

	if err := svc.Copy("test-bucket", "ghost", "test-bucket", "dst", nil); !errors.Is(err, ErrNoSuchKey) {
		t.Fatalf("copy of missing source: %v", err)
	}
}

func TestDeleteIsIdempotent(t *testing.T) {
	svc, _, _ := newTestService(t)
	must(t, svc.Put("test-bucket", "k", []byte("v"), nil))
	must(t, svc.Delete("test-bucket", "k"))
	must(t, svc.Delete("test-bucket", "k")) // second delete: no error
	if _, err := svc.Get("test-bucket", "k"); !errors.Is(err, ErrNoSuchKey) {
		t.Fatalf("object visible after delete: %v", err)
	}
}

func TestListPrefixAndPagination(t *testing.T) {
	svc, _, _ := newTestService(t)
	for i := 0; i < 25; i++ {
		must(t, svc.Put("test-bucket", fmt.Sprintf("data/%03d", i), []byte("v"), nil))
	}
	must(t, svc.Put("test-bucket", "tmp/zzz", []byte("v"), nil))

	page, err := svc.List("test-bucket", "data/", "", 10)
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(page.Objects) != 10 || !page.IsTruncated {
		t.Fatalf("page 1: %d objects, truncated=%v", len(page.Objects), page.IsTruncated)
	}
	if page.Objects[0].Key != "data/000" {
		t.Fatalf("first key = %q", page.Objects[0].Key)
	}

	all, err := svc.ListAll("test-bucket", "data/")
	if err != nil {
		t.Fatalf("ListAll: %v", err)
	}
	if len(all) != 25 {
		t.Fatalf("ListAll returned %d keys, want 25", len(all))
	}
	for _, info := range all {
		if !strings.HasPrefix(info.Key, "data/") {
			t.Fatalf("prefix violated: %q", info.Key)
		}
	}
}

func TestEventualConsistencyGETAfterPUT(t *testing.T) {
	svc, clock, _ := newDelayedService(t, 10*time.Second)
	must(t, svc.Put("test-bucket", "k", []byte("old"), nil))
	clock.Advance(11 * time.Second)
	must(t, svc.Put("test-bucket", "k", []byte("new"), nil))

	sawOld := false
	for i := 0; i < 200; i++ {
		obj, err := svc.Get("test-bucket", "k")
		if err == nil && string(obj.Body) == "old" {
			sawOld = true
			break
		}
	}
	if !sawOld {
		t.Fatal("GET after PUT never returned the older copy (paper §2.1 anomaly)")
	}

	clock.Advance(11 * time.Second)
	for i := 0; i < 50; i++ {
		obj, err := svc.Get("test-bucket", "k")
		if err != nil || string(obj.Body) != "new" {
			t.Fatalf("after settle: %v, %v", obj, err)
		}
	}
}

func TestPutAtomicityOfDataAndMetadata(t *testing.T) {
	// Architecture 1 depends on this: data and metadata arrive in one PUT,
	// so no read may ever observe new data with old metadata or vice versa.
	svc, clock, _ := newDelayedService(t, 10*time.Second)
	must(t, svc.Put("test-bucket", "k", []byte("v1"), map[string]string{"gen": "1"}))
	clock.Advance(11 * time.Second)
	must(t, svc.Put("test-bucket", "k", []byte("v2"), map[string]string{"gen": "2"}))

	for i := 0; i < 300; i++ {
		obj, err := svc.Get("test-bucket", "k")
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		want := map[string]string{"v1": "1", "v2": "2"}[string(obj.Body)]
		if obj.Metadata["gen"] != want {
			t.Fatalf("torn read: body %q with gen %q", obj.Body, obj.Metadata["gen"])
		}
	}
}

func TestBodyIsolation(t *testing.T) {
	svc, _, _ := newTestService(t)
	body := []byte("mutable")
	must(t, svc.Put("test-bucket", "k", body, nil))
	body[0] = 'X' // caller reuses its buffer

	obj, err := svc.Get("test-bucket", "k")
	if err != nil || string(obj.Body) != "mutable" {
		t.Fatalf("stored body aliased caller buffer: %q, %v", obj.Body, err)
	}
	obj.Body[0] = 'Y' // caller scribbles on the returned copy
	obj2, _ := svc.Get("test-bucket", "k")
	if string(obj2.Body) != "mutable" {
		t.Fatalf("returned body aliased stored bytes: %q", obj2.Body)
	}
}

func TestMetering(t *testing.T) {
	svc, _, meter := newTestService(t)
	meter.Reset() // drop CreateBucket accounting

	body := bytes.Repeat([]byte("x"), 1000)
	must(t, svc.Put("test-bucket", "k", body, map[string]string{"m": "1"}))
	if _, err := svc.Get("test-bucket", "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Head("test-bucket", "k"); err != nil {
		t.Fatal(err)
	}
	must(t, svc.Copy("test-bucket", "k", "test-bucket", "k2", nil))
	if _, err := svc.List("test-bucket", "", "", 0); err != nil {
		t.Fatal(err)
	}
	must(t, svc.Delete("test-bucket", "k2"))

	u := meter.Snapshot()
	if got := u.OpCount(billing.S3, "PUT"); got != 1 {
		t.Fatalf("PUT count = %d", got)
	}
	if got := u.OpCount(billing.S3, "GET"); got != 1 {
		t.Fatalf("GET count = %d", got)
	}
	if got := u.OpCount(billing.S3, "COPY"); got != 1 {
		t.Fatalf("COPY count = %d", got)
	}
	if got := u.OpsByTier(billing.S3, billing.TierMutation); got != 3 { // PUT+COPY+LIST
		t.Fatalf("mutation-tier ops = %d, want 3", got)
	}
	if got := u.BytesIn(billing.S3); got != 1002 { // body + metadata "m"+"1"
		t.Fatalf("BytesIn = %d, want 1002", got)
	}
	// COPY must not bill transfer: bytes out come from GET (1002), HEAD (2)
	// and the LIST entries for keys "k" and "k2" (65 + 66).
	if got := u.BytesOut(billing.S3); got != 1002+2+65+66 {
		t.Fatalf("BytesOut = %d, want %d", got, 1002+2+65+66)
	}
	// Storage: original object resident + copy resident - deleted copy.
	if got := u.Storage(billing.S3); got != 1002 {
		t.Fatalf("Storage = %d, want 1002", got)
	}
}

func TestStorageAccountingOnOverwrite(t *testing.T) {
	svc, _, meter := newTestService(t)
	meter.Reset()
	must(t, svc.Put("test-bucket", "k", bytes.Repeat([]byte("a"), 500), nil))
	must(t, svc.Put("test-bucket", "k", bytes.Repeat([]byte("b"), 200), nil))
	if got := meter.Snapshot().Storage(billing.S3); got != 200 {
		t.Fatalf("Storage after overwrite = %d, want 200", got)
	}
}

func TestPutGetQuick(t *testing.T) {
	svc, _, _ := newTestService(t)
	i := 0
	f := func(raw []byte) bool {
		i++
		if len(raw) == 0 {
			return true
		}
		key := fmt.Sprintf("q/%d", i)
		if err := svc.Put("test-bucket", key, raw, nil); err != nil {
			return false
		}
		obj, err := svc.Get("test-bucket", key)
		return err == nil && bytes.Equal(obj.Body, raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
