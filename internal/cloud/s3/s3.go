// Package s3 simulates the Amazon Simple Storage Service as the paper
// describes it (§2.1, January-2009 snapshot): an eventually-consistent object
// store holding objects of 1 byte to 5 GB, each with up to 2 KB of
// client-supplied metadata, accessed via PUT, GET, HEAD, COPY, DELETE and
// LIST.
//
// Consistency semantics come from internal/cloud/replica: a GET right after a
// PUT may return an older copy, concurrent PUTs resolve last-writer-wins, and
// everything converges once the propagation horizon passes. Every operation
// meters requests and transfer on the service's billing.Meter using the
// paper's pricing classes (PUT/COPY/POST/LIST vs GET-and-other).
package s3

import (
	"crypto/md5"
	"encoding/hex"
	"sort"
	"strings"
	"sync"
	"time"

	"passcloud/internal/cloud/awserr"
	"passcloud/internal/cloud/billing"
	"passcloud/internal/cloud/replica"
	"passcloud/internal/sim"
)

// Limits from the paper's AWS snapshot.
const (
	// MaxObjectSize is the largest S3 object: 5 GB.
	MaxObjectSize = 5 << 30
	// MinObjectSize is the smallest S3 object: 1 byte.
	MinObjectSize = 1
	// MaxMetadataSize bounds user metadata per object: 2 KB total across
	// key and value bytes.
	MaxMetadataSize = 2 << 10
	// MaxKeyLength bounds object key names.
	MaxKeyLength = 1024
	// DefaultMaxKeys is the LIST page size.
	DefaultMaxKeys = 1000
)

// Object is a stored S3 object as returned by GET.
type Object struct {
	Bucket       string
	Key          string
	Body         []byte
	Metadata     map[string]string
	Size         int64
	ETag         string // hex MD5 of the body
	LastModified time.Time
}

// Info describes an object without its body, as returned by HEAD and LIST.
type Info struct {
	Bucket       string
	Key          string
	Metadata     map[string]string // populated by HEAD, not LIST
	Size         int64
	ETag         string
	LastModified time.Time
}

// stored is the immutable value kept in the replica store.
type stored struct {
	body     []byte
	metadata map[string]string
	size     int64
	etag     string
	modified time.Time
}

// Config parameterizes the service.
type Config struct {
	// Replication controls the consistency model. Clock and RNG are
	// required; see replica.Config.
	Replication replica.Config
	// Meter receives billing events. Required.
	Meter *billing.Meter
	// Faults optionally injects service-side failures (throttles, denials,
	// lost responses) per operation. Nil injects nothing.
	Faults *sim.FaultPlan
}

// Service is a simulated S3 endpoint.
type Service struct {
	cfg   Config
	clock sim.Clock

	mu      sync.Mutex
	buckets map[string]*replica.Store
}

// New returns an empty S3 service.
func New(cfg Config) *Service {
	if cfg.Meter == nil {
		panic("s3: Config.Meter is required")
	}
	if cfg.Replication.Clock == nil {
		panic("s3: Config.Replication.Clock is required")
	}
	return &Service{
		cfg:     cfg,
		clock:   cfg.Replication.Clock,
		buckets: make(map[string]*replica.Store),
	}
}

// Meter returns the service's billing meter.
func (s *Service) Meter() *billing.Meter { return s.cfg.Meter }

// MaxDelay returns the propagation horizon; advancing the clock past it
// after the last write guarantees convergence.
func (s *Service) MaxDelay() time.Duration {
	return s.cfg.Replication.MaxDelay
}

// CreateBucket creates a bucket. Bucket creation is immediately visible —
// the paper's protocols create buckets once at setup, so modeling their
// propagation adds nothing.
func (s *Service) CreateBucket(name string) error {
	if !validBucketName(name) {
		return opErr("CreateBucket", name, "", ErrInvalidName)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.buckets[name]; ok {
		return opErr("CreateBucket", name, "", ErrBucketAlreadyExists)
	}
	s.buckets[name] = replica.New(s.cfg.Replication)
	s.cfg.Meter.Op(billing.S3, "PUT", billing.TierMutation)
	return nil
}

// DeleteBucket removes an empty bucket.
func (s *Service) DeleteBucket(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[name]
	if !ok {
		return opErr("DeleteBucket", name, "", ErrNoSuchBucket)
	}
	if b.Len() > 0 {
		return opErr("DeleteBucket", name, "", ErrBucketNotEmpty)
	}
	delete(s.buckets, name)
	s.cfg.Meter.Op(billing.S3, "DELETE", billing.TierRetrieval)
	return nil
}

// ListBuckets returns all bucket names, sorted.
func (s *Service) ListBuckets() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg.Meter.Op(billing.S3, "LIST", billing.TierMutation)
	out := make([]string, 0, len(s.buckets))
	for name := range s.buckets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func (s *Service) bucket(name string) (*replica.Store, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[name]
	return b, ok
}

// checkFault consults the fault plan for op ("s3/<op>"). A fail-fast fault
// meters the failed request (AWS bills rejected requests, but the ErrSuffix
// keying keeps it out of mutation counters) and returns its error; ackLoss
// tells the caller to apply the op fully and then return a timeout anyway.
func (s *Service) checkFault(op, bucket, key string, tier billing.Tier) (failErr error, ackLoss bool) {
	switch s.cfg.Faults.CheckOp("s3/" + op) {
	case sim.OpFailTransient:
		s.cfg.Meter.OpErr(billing.S3, op, tier)
		return opErr(op, bucket, key, awserr.ErrThrottled), false
	case sim.OpFailPermanent:
		s.cfg.Meter.OpErr(billing.S3, op, tier)
		return opErr(op, bucket, key, awserr.ErrAccessDenied), false
	case sim.OpAckLoss:
		return nil, true
	}
	return nil, false
}

// Put stores body under bucket/key with the given user metadata, overwriting
// any existing object. Data and metadata travel in the same request, so they
// are stored atomically — the property architecture 1 builds on.
func (s *Service) Put(bucket, key string, body []byte, metadata map[string]string) error {
	b, ok := s.bucket(bucket)
	if !ok {
		return opErr("PUT", bucket, key, ErrNoSuchBucket)
	}
	if !validKey(key) {
		return opErr("PUT", bucket, key, ErrInvalidName)
	}
	if len(body) < MinObjectSize {
		return opErr("PUT", bucket, key, ErrEntityTooSmall)
	}
	if len(body) > MaxObjectSize {
		return opErr("PUT", bucket, key, ErrEntityTooLarge)
	}
	if metadataSize(metadata) > MaxMetadataSize {
		return opErr("PUT", bucket, key, ErrMetadataTooLarge)
	}
	failErr, ackLoss := s.checkFault("PUT", bucket, key, billing.TierMutation)
	if failErr != nil {
		return failErr
	}

	obj := newStored(body, metadata, s.clock.Now())
	s.accountReplace(b, key, obj)
	b.Put(key, obj)

	s.cfg.Meter.Op(billing.S3, "PUT", billing.TierMutation)
	s.cfg.Meter.In(billing.S3, obj.size+int64(metadataSize(metadata)))
	if ackLoss {
		// The object landed; only the response was lost.
		return opErr("PUT", bucket, key, awserr.ErrRequestTimeout)
	}
	return nil
}

// newStored deep-copies its inputs: stored values are immutable.
func newStored(body []byte, metadata map[string]string, now time.Time) *stored {
	sum := md5.Sum(body)
	return &stored{
		body:     append([]byte(nil), body...),
		metadata: copyMeta(metadata),
		size:     int64(len(body)),
		etag:     hex.EncodeToString(sum[:]),
		modified: now,
	}
}

// accountReplace adjusts resident storage: new object bytes in, previous
// authoritative version's bytes out.
func (s *Service) accountReplace(b *replica.Store, key string, obj *stored) {
	var prevSize int64
	if prev, ok := b.GetLatest(key); ok {
		p := prev.(*stored)
		prevSize = p.size + int64(metadataSize(p.metadata))
	}
	s.cfg.Meter.StorageDelta(billing.S3, obj.size+int64(metadataSize(obj.metadata))-prevSize)
}

// Get retrieves a whole object from a randomly chosen replica.
func (s *Service) Get(bucket, key string) (*Object, error) {
	return s.getRange(bucket, key, 0, -1)
}

// GetRange retrieves length bytes starting at offset. length < 0 means "to
// the end". Partial GETs are billed for the bytes actually returned.
func (s *Service) GetRange(bucket, key string, offset, length int64) (*Object, error) {
	return s.getRange(bucket, key, offset, length)
}

func (s *Service) getRange(bucket, key string, offset, length int64) (*Object, error) {
	b, ok := s.bucket(bucket)
	if !ok {
		return nil, opErr("GET", bucket, key, ErrNoSuchBucket)
	}
	failErr, ackLoss := s.checkFault("GET", bucket, key, billing.TierRetrieval)
	if failErr != nil {
		return nil, failErr
	}
	if ackLoss {
		// Reads have no state to apply; a lost response is billed normally
		// but yields nothing.
		s.cfg.Meter.Op(billing.S3, "GET", billing.TierRetrieval)
		return nil, opErr("GET", bucket, key, awserr.ErrRequestTimeout)
	}
	s.cfg.Meter.Op(billing.S3, "GET", billing.TierRetrieval)
	v, ok := b.Get(key)
	if !ok {
		return nil, opErr("GET", bucket, key, ErrNoSuchKey)
	}
	obj := v.(*stored)

	if offset < 0 || offset > obj.size {
		return nil, opErr("GET", bucket, key, ErrInvalidRange)
	}
	end := obj.size
	if length >= 0 && offset+length < end {
		end = offset + length
	}
	body := append([]byte(nil), obj.body[offset:end]...)

	s.cfg.Meter.Out(billing.S3, int64(len(body))+int64(metadataSize(obj.metadata)))
	return &Object{
		Bucket:       bucket,
		Key:          key,
		Body:         body,
		Metadata:     copyMeta(obj.metadata),
		Size:         obj.size,
		ETag:         obj.etag,
		LastModified: obj.modified,
	}, nil
}

// Head retrieves only an object's metadata (§2.1: "The HEAD operation
// retrieves only the metadata part of an object").
func (s *Service) Head(bucket, key string) (*Info, error) {
	b, ok := s.bucket(bucket)
	if !ok {
		return nil, opErr("HEAD", bucket, key, ErrNoSuchBucket)
	}
	failErr, ackLoss := s.checkFault("HEAD", bucket, key, billing.TierRetrieval)
	if failErr != nil {
		return nil, failErr
	}
	s.cfg.Meter.Op(billing.S3, "HEAD", billing.TierRetrieval)
	if ackLoss {
		return nil, opErr("HEAD", bucket, key, awserr.ErrRequestTimeout)
	}
	v, ok := b.Get(key)
	if !ok {
		return nil, opErr("HEAD", bucket, key, ErrNoSuchKey)
	}
	obj := v.(*stored)
	s.cfg.Meter.Out(billing.S3, int64(metadataSize(obj.metadata)))
	return &Info{
		Bucket:       bucket,
		Key:          key,
		Metadata:     copyMeta(obj.metadata),
		Size:         obj.size,
		ETag:         obj.etag,
		LastModified: obj.modified,
	}, nil
}

// Copy duplicates srcBucket/srcKey to dstBucket/dstKey server-side. If
// newMetadata is non-nil it replaces the source metadata (the REPLACE
// metadata directive); otherwise metadata is copied. COPY is billed as a
// mutation request but, per the paper (§5), not for data transfer.
//
// The source is read from a replica, so a COPY racing propagation can fail
// with NoSuchKey; the WAL commit daemon retries on exactly this error.
func (s *Service) Copy(srcBucket, srcKey, dstBucket, dstKey string, newMetadata map[string]string) error {
	sb, ok := s.bucket(srcBucket)
	if !ok {
		return opErr("COPY", srcBucket, srcKey, ErrNoSuchBucket)
	}
	db, ok := s.bucket(dstBucket)
	if !ok {
		return opErr("COPY", dstBucket, dstKey, ErrNoSuchBucket)
	}
	if !validKey(dstKey) {
		return opErr("COPY", dstBucket, dstKey, ErrInvalidName)
	}
	failErr, ackLoss := s.checkFault("COPY", dstBucket, dstKey, billing.TierMutation)
	if failErr != nil {
		return failErr
	}
	v, ok := sb.Get(srcKey)
	if !ok {
		// Billed, but nothing changed: the error-suffixed key keeps the
		// commit daemon's propagation retries out of mutation counters.
		s.cfg.Meter.OpErr(billing.S3, "COPY", billing.TierMutation)
		return opErr("COPY", srcBucket, srcKey, ErrNoSuchKey)
	}
	src := v.(*stored)
	meta := src.metadata
	if newMetadata != nil {
		meta = newMetadata
	}
	if metadataSize(meta) > MaxMetadataSize {
		s.cfg.Meter.OpErr(billing.S3, "COPY", billing.TierMutation)
		return opErr("COPY", dstBucket, dstKey, ErrMetadataTooLarge)
	}
	dst := &stored{
		body:     src.body, // bodies are immutable: share, don't copy
		metadata: copyMeta(meta),
		size:     src.size,
		etag:     src.etag,
		modified: s.clock.Now(),
	}
	s.cfg.Meter.Op(billing.S3, "COPY", billing.TierMutation)
	s.accountReplace(db, dstKey, dst)
	db.Put(dstKey, dst)
	if ackLoss {
		return opErr("COPY", dstBucket, dstKey, awserr.ErrRequestTimeout)
	}
	return nil
}

// Delete removes an object. Deleting a missing key is not an error,
// matching S3 (idempotent DELETE — required by the WAL replay protocol).
func (s *Service) Delete(bucket, key string) error {
	b, ok := s.bucket(bucket)
	if !ok {
		return opErr("DELETE", bucket, key, ErrNoSuchBucket)
	}
	failErr, ackLoss := s.checkFault("DELETE", bucket, key, billing.TierRetrieval)
	if failErr != nil {
		return failErr
	}
	s.cfg.Meter.Op(billing.S3, "DELETE", billing.TierRetrieval)
	if prev, ok := b.GetLatest(key); ok {
		p := prev.(*stored)
		s.cfg.Meter.StorageDelta(billing.S3, -(p.size + int64(metadataSize(p.metadata))))
	}
	b.Delete(key)
	if ackLoss {
		// The delete landed; only the response was lost. Re-deleting is
		// idempotent, so retries are harmless.
		return opErr("DELETE", bucket, key, awserr.ErrRequestTimeout)
	}
	return nil
}

// ListPage is one page of LIST results.
type ListPage struct {
	Objects     []Info
	IsTruncated bool
	NextMarker  string
}

// List returns up to maxKeys objects in bucket whose keys start with prefix,
// lexicographically after marker. maxKeys <= 0 uses DefaultMaxKeys. Like any
// read it serves from one replica and may lag recent writes.
func (s *Service) List(bucket, prefix, marker string, maxKeys int) (*ListPage, error) {
	b, ok := s.bucket(bucket)
	if !ok {
		return nil, opErr("LIST", bucket, "", ErrNoSuchBucket)
	}
	if maxKeys <= 0 {
		maxKeys = DefaultMaxKeys
	}
	failErr, ackLoss := s.checkFault("LIST", bucket, prefix, billing.TierMutation)
	if failErr != nil {
		return nil, failErr
	}
	s.cfg.Meter.Op(billing.S3, "LIST", billing.TierMutation)
	if ackLoss {
		return nil, opErr("LIST", bucket, prefix, awserr.ErrRequestTimeout)
	}

	keys := b.Keys() // sorted, single-replica view
	page := &ListPage{}
	for _, k := range keys {
		if !strings.HasPrefix(k, prefix) || k <= marker {
			continue
		}
		if len(page.Objects) == maxKeys {
			page.IsTruncated = true
			page.NextMarker = page.Objects[len(page.Objects)-1].Key
			break
		}
		v, ok := b.Get(k)
		if !ok {
			continue
		}
		obj := v.(*stored)
		page.Objects = append(page.Objects, Info{
			Bucket:       bucket,
			Key:          k,
			Size:         obj.size,
			ETag:         obj.etag,
			LastModified: obj.modified,
		})
		s.cfg.Meter.Out(billing.S3, int64(len(k))+64) // listing entry overhead
	}
	return page, nil
}

// ListAll walks every page of a prefix listing. Each underlying page is a
// billed LIST request, which is what makes full-scan provenance queries on
// architecture 1 expensive.
func (s *Service) ListAll(bucket, prefix string) ([]Info, error) {
	var out []Info
	marker := ""
	for {
		page, err := s.List(bucket, prefix, marker, 0)
		if err != nil {
			return nil, err
		}
		out = append(out, page.Objects...)
		if !page.IsTruncated {
			return out, nil
		}
		marker = page.NextMarker
	}
}

func metadataSize(m map[string]string) int {
	n := 0
	for k, v := range m {
		n += len(k) + len(v)
	}
	return n
}

func copyMeta(m map[string]string) map[string]string {
	if m == nil {
		return nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func validBucketName(name string) bool {
	if len(name) < 3 || len(name) > 63 {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '.':
		default:
			return false
		}
	}
	return name[0] != '-' && name[0] != '.'
}

func validKey(key string) bool {
	return len(key) >= 1 && len(key) <= MaxKeyLength
}
