package s3

import (
	"errors"
	"fmt"
)

// Error codes mirroring the AWS S3 error model. Protocol code matches on
// these with errors.Is.
var (
	// ErrNoSuchBucket is returned for operations on a bucket that does not
	// exist (or is not yet visible on the serving replica).
	ErrNoSuchBucket = errors.New("NoSuchBucket")
	// ErrBucketAlreadyExists is returned by CreateBucket on a name collision.
	ErrBucketAlreadyExists = errors.New("BucketAlreadyExists")
	// ErrBucketNotEmpty is returned by DeleteBucket when objects remain.
	ErrBucketNotEmpty = errors.New("BucketNotEmpty")
	// ErrNoSuchKey is returned when the requested object is not visible on
	// the serving replica.
	ErrNoSuchKey = errors.New("NoSuchKey")
	// ErrEntityTooLarge is returned by PUT for bodies above MaxObjectSize.
	ErrEntityTooLarge = errors.New("EntityTooLarge")
	// ErrEntityTooSmall is returned by PUT for empty bodies; S3 objects
	// range from 1 byte to 5 GB (paper §2.1).
	ErrEntityTooSmall = errors.New("EntityTooSmall")
	// ErrMetadataTooLarge is returned by PUT/COPY when user metadata
	// exceeds MaxMetadataSize.
	ErrMetadataTooLarge = errors.New("MetadataTooLarge")
	// ErrInvalidRange is returned by GetRange for an unsatisfiable range.
	ErrInvalidRange = errors.New("InvalidRange")
	// ErrInvalidName is returned for malformed bucket or object names.
	ErrInvalidName = errors.New("InvalidName")
)

// APIError carries the failing operation and target alongside the code, in
// the style of os.PathError.
type APIError struct {
	Op     string // "PUT", "GET", ...
	Bucket string
	Key    string
	Err    error // one of the sentinel codes above
}

// Error implements the error interface.
func (e *APIError) Error() string {
	if e.Key == "" {
		return fmt.Sprintf("s3: %s %s: %v", e.Op, e.Bucket, e.Err)
	}
	return fmt.Sprintf("s3: %s %s/%s: %v", e.Op, e.Bucket, e.Key, e.Err)
}

// Unwrap exposes the sentinel code to errors.Is.
func (e *APIError) Unwrap() error { return e.Err }

func opErr(op, bucket, key string, code error) error {
	return &APIError{Op: op, Bucket: bucket, Key: key, Err: code}
}
