// Package replica implements the eventually-consistent replicated key-value
// core shared by the simulated S3 and SimpleDB services.
//
// AWS services "sacrifice perfect consistency and provide eventual
// consistency" (paper §1): a read issued right after a write may be served by
// a replica that has not yet received the update, and concurrent writes
// resolve last-writer-wins. This package models exactly that contract:
//
//   - each write is accepted by one replica immediately and becomes visible
//     at every other replica after an independent random propagation delay;
//   - each read is served by a uniformly chosen replica and observes only
//     the updates that have propagated to it;
//   - among visible updates, the one with the largest (timestamp, sequence)
//     pair wins, so "the last PUT operation is retained" (§2.1).
//
// Because delays are measured on a sim.Clock, tests deterministically provoke
// both the anomaly (read before propagation) and the convergence (advance the
// clock past MaxDelay, after which every replica agrees).
package replica

import (
	"sort"
	"sync"
	"time"

	"passcloud/internal/sim"
)

// Config parameterizes a Store.
type Config struct {
	// Replicas is the number of replicas; values < 1 become 3, the
	// conventional durability factor.
	Replicas int
	// MinDelay and MaxDelay bound the uniform propagation delay from the
	// accepting replica to each other replica. With both zero the store is
	// strongly consistent — useful for benchmarks that are not probing
	// consistency behaviour.
	MinDelay, MaxDelay time.Duration
	// Clock is the time source. Required.
	Clock sim.Clock
	// RNG drives replica choice and delay sampling. Required.
	RNG *sim.RNG
}

func (c Config) withDefaults() Config {
	if c.Replicas < 1 {
		c.Replicas = 3
	}
	if c.MaxDelay < c.MinDelay {
		c.MaxDelay = c.MinDelay
	}
	return c
}

// Store is an eventually-consistent replicated map from string keys to
// immutable values. Values stored must not be mutated afterwards; all
// replicas share the same value pointer.
type Store struct {
	cfg Config

	mu   sync.Mutex
	seq  int64
	keys map[string]*keyState
}

type keyState struct {
	updates []update // ascending seq
}

type update struct {
	seq       int64
	at        time.Time
	visibleAt []time.Time // per replica index
	value     any         // nil means tombstone (delete)
}

// New returns an empty store.
func New(cfg Config) *Store {
	cfg = cfg.withDefaults()
	if cfg.Clock == nil {
		panic("replica: Config.Clock is required")
	}
	if cfg.RNG == nil {
		panic("replica: Config.RNG is required")
	}
	return &Store{cfg: cfg, keys: make(map[string]*keyState)}
}

// Replicas returns the configured replica count.
func (s *Store) Replicas() int { return s.cfg.Replicas }

// MaxDelay returns the configured maximum propagation delay. Advancing the
// clock by more than MaxDelay after the last write guarantees convergence.
func (s *Store) MaxDelay() time.Duration { return s.cfg.MaxDelay }

// Put stores value under key. The value must be treated as immutable by the
// caller from this point on.
func (s *Store) Put(key string, value any) {
	s.apply(key, value)
}

// Delete removes key. Like S3 DELETE it is not an error if the key does not
// exist; deletion propagates like any other update (a tombstone).
func (s *Store) Delete(key string) {
	s.apply(key, nil)
}

func (s *Store) apply(key string, value any) {
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()

	s.seq++
	u := update{
		seq:       s.seq,
		at:        now,
		visibleAt: make([]time.Time, s.cfg.Replicas),
		value:     value,
	}
	accepting := s.cfg.RNG.Intn(s.cfg.Replicas)
	for i := range u.visibleAt {
		if i == accepting {
			u.visibleAt[i] = now
			continue
		}
		u.visibleAt[i] = now.Add(s.delay())
	}

	ks := s.keys[key]
	if ks == nil {
		ks = &keyState{}
		s.keys[key] = ks
	}
	ks.updates = append(ks.updates, u)
	s.compactLocked(ks, now)
}

func (s *Store) delay() time.Duration {
	span := s.cfg.MaxDelay - s.cfg.MinDelay
	if span <= 0 {
		return s.cfg.MinDelay
	}
	return s.cfg.MinDelay + time.Duration(s.cfg.RNG.Int63()%int64(span+1))
}

// compactLocked drops updates that can never again be observed: every update
// older than the newest update that is visible on all replicas. Keeps
// per-key memory bounded no matter how often a key is rewritten.
func (s *Store) compactLocked(ks *keyState, now time.Time) {
	idx := -1
	for i := len(ks.updates) - 1; i >= 0; i-- {
		if fullyVisible(ks.updates[i], now) {
			idx = i
			break
		}
	}
	if idx > 0 {
		ks.updates = append(ks.updates[:0], ks.updates[idx:]...)
	}
}

func fullyVisible(u update, now time.Time) bool {
	for _, t := range u.visibleAt {
		if t.After(now) {
			return false
		}
	}
	return true
}

// Get reads key from a uniformly chosen replica. ok is false if the chosen
// replica has no visible value (never written, not yet propagated, or
// tombstoned).
func (s *Store) Get(key string) (value any, ok bool) {
	r := s.cfg.RNG.Intn(s.cfg.Replicas)
	return s.GetFromReplica(key, r)
}

// GetFromReplica reads key as replica r sees it now. Query engines use a
// fixed replica so one logical query observes a single consistent snapshot.
func (s *Store) GetFromReplica(key string, r int) (value any, ok bool) {
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	ks := s.keys[key]
	if ks == nil {
		return nil, false
	}
	u, found := latestVisible(ks.updates, r, now)
	if !found || u.value == nil {
		return nil, false
	}
	return u.value, true
}

// GetLatest returns the most recent write regardless of propagation — the
// authoritative value that all replicas will eventually converge to. Tests
// and recovery tooling use it; protocol paths must not.
func (s *Store) GetLatest(key string) (value any, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ks := s.keys[key]
	if ks == nil || len(ks.updates) == 0 {
		return nil, false
	}
	u := ks.updates[len(ks.updates)-1]
	if u.value == nil {
		return nil, false
	}
	return u.value, true
}

// latestVisible picks the winning update among those visible at replica r:
// the maximum (at, seq). Updates are appended in seq order and timestamps are
// monotone per clock, so scanning from the tail finds it.
func latestVisible(updates []update, r int, now time.Time) (update, bool) {
	for i := len(updates) - 1; i >= 0; i-- {
		if !updates[i].visibleAt[r].After(now) {
			return updates[i], true
		}
	}
	return update{}, false
}

// Keys returns the keys with a visible, non-tombstoned value at a uniformly
// chosen replica, sorted. This models LIST: like any read it may miss
// recent writes and show recently deleted entries.
func (s *Store) Keys() []string {
	r := s.cfg.RNG.Intn(s.cfg.Replicas)
	return s.KeysAtReplica(r)
}

// KeysAtReplica returns the sorted keys visible at replica r.
func (s *Store) KeysAtReplica(r int) []string {
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.keys))
	for k, ks := range s.keys {
		if u, ok := latestVisible(ks.updates, r, now); ok && u.value != nil {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Len reports the number of keys with a visible value at replica 0. It is a
// cheap convergence probe for tests.
func (s *Store) Len() int {
	return len(s.KeysAtReplica(0))
}

// Converged reports whether every replica currently observes the same value
// for every key — i.e. all propagation horizons have passed.
func (s *Store) Converged() bool {
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ks := range s.keys {
		if len(ks.updates) == 0 {
			continue
		}
		if !fullyVisible(ks.updates[len(ks.updates)-1], now) {
			return false
		}
	}
	return true
}
