package replica

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"passcloud/internal/sim"
)

func newTestStore(t *testing.T, min, max time.Duration) (*Store, *sim.VirtualClock) {
	t.Helper()
	clock := sim.NewVirtualClock()
	s := New(Config{
		Replicas: 3,
		MinDelay: min,
		MaxDelay: max,
		Clock:    clock,
		RNG:      sim.NewRNG(1),
	})
	return s, clock
}

// settle advances past the propagation horizon so all replicas agree.
func settle(c *sim.VirtualClock, s *Store) {
	c.Advance(s.MaxDelay() + time.Nanosecond)
}

func TestPutGetStronglyConsistentWhenNoDelay(t *testing.T) {
	s, _ := newTestStore(t, 0, 0)
	s.Put("k", "v1")
	for i := 0; i < 20; i++ {
		v, ok := s.Get("k")
		if !ok || v.(string) != "v1" {
			t.Fatalf("Get = %v, %v; want v1 with zero delay", v, ok)
		}
	}
}

func TestEventualConsistencyAnomalyAndConvergence(t *testing.T) {
	s, clock := newTestStore(t, time.Second, 5*time.Second)
	s.Put("k", "old")
	settle(clock, s)
	s.Put("k", "new")

	// Immediately after the second PUT only the accepting replica has it:
	// some reads must still see "old".
	sawOld := false
	for i := 0; i < 100; i++ {
		if v, ok := s.Get("k"); ok && v.(string) == "old" {
			sawOld = true
			break
		}
	}
	if !sawOld {
		t.Fatal("no read observed the stale value; eventual-consistency anomaly not modeled")
	}

	settle(clock, s)
	if !s.Converged() {
		t.Fatal("store did not converge after max delay")
	}
	for i := 0; i < 50; i++ {
		if v, ok := s.Get("k"); !ok || v.(string) != "new" {
			t.Fatalf("after convergence Get = %v, %v; want new", v, ok)
		}
	}
}

func TestLastWriterWins(t *testing.T) {
	s, clock := newTestStore(t, 0, time.Second)
	s.Put("k", "first")
	s.Put("k", "second") // same virtual instant: later seq must win
	settle(clock, s)
	v, ok := s.Get("k")
	if !ok || v.(string) != "second" {
		t.Fatalf("Get = %v, %v; want second (LWW)", v, ok)
	}
}

func TestDeletePropagates(t *testing.T) {
	s, clock := newTestStore(t, time.Second, 2*time.Second)
	s.Put("k", "v")
	settle(clock, s)
	s.Delete("k")
	settle(clock, s)
	if _, ok := s.Get("k"); ok {
		t.Fatal("key visible after settled delete")
	}
	if _, ok := s.GetLatest("k"); ok {
		t.Fatal("GetLatest returned a tombstoned key")
	}
}

func TestDeleteOfMissingKeyIsNoError(t *testing.T) {
	s, _ := newTestStore(t, 0, 0)
	s.Delete("ghost") // must not panic
	if _, ok := s.Get("ghost"); ok {
		t.Fatal("ghost key exists")
	}
}

func TestGetFromReplicaSnapshotStability(t *testing.T) {
	s, clock := newTestStore(t, time.Second, 10*time.Second)
	s.Put("k", "v1")
	settle(clock, s)
	s.Put("k", "v2")

	// Whatever a fixed replica sees, it must keep seeing at the same
	// instant (repeatable reads within one query snapshot).
	for r := 0; r < s.Replicas(); r++ {
		v1, ok1 := s.GetFromReplica("k", r)
		v2, ok2 := s.GetFromReplica("k", r)
		if ok1 != ok2 || (ok1 && v1 != v2) {
			t.Fatalf("replica %d unstable: (%v,%v) then (%v,%v)", r, v1, ok1, v2, ok2)
		}
	}
}

func TestKeysListsVisibleOnly(t *testing.T) {
	s, clock := newTestStore(t, time.Hour, time.Hour)
	s.Put("a", 1)
	settle(clock, s)
	s.Put("b", 2)

	// b was just written: at most one replica lists it.
	withB := 0
	for r := 0; r < s.Replicas(); r++ {
		ks := s.KeysAtReplica(r)
		for _, k := range ks {
			if k == "b" {
				withB++
			}
		}
	}
	if withB > 1 {
		t.Fatalf("%d replicas list fresh key; want at most the accepting one", withB)
	}
	settle(clock, s)
	keys := s.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("Keys after settle = %v, want [a b]", keys)
	}
}

func TestLenCountsReplicaZero(t *testing.T) {
	s, clock := newTestStore(t, 0, 0)
	for i := 0; i < 5; i++ {
		s.Put(fmt.Sprintf("k%d", i), i)
	}
	settle(clock, s)
	if got := s.Len(); got != 5 {
		t.Fatalf("Len = %d, want 5", got)
	}
}

func TestCompactionBoundsMemory(t *testing.T) {
	s, clock := newTestStore(t, time.Millisecond, time.Millisecond)
	for i := 0; i < 10_000; i++ {
		s.Put("hot", i)
		clock.Advance(2 * time.Millisecond)
	}
	s.mu.Lock()
	n := len(s.keys["hot"].updates)
	s.mu.Unlock()
	if n > 4 {
		t.Fatalf("update log for hot key holds %d entries; compaction not working", n)
	}
}

func TestConvergenceQuick(t *testing.T) {
	// Property: for any sequence of writes to random keys, after advancing
	// past MaxDelay every replica observes identical state.
	f := func(seed int64, opsRaw []uint8) bool {
		clock := sim.NewVirtualClock()
		s := New(Config{
			Replicas: 3,
			MinDelay: time.Second,
			MaxDelay: 30 * time.Second,
			Clock:    clock,
			RNG:      sim.NewRNG(seed),
		})
		for i, op := range opsRaw {
			key := fmt.Sprintf("k%d", op%8)
			if op%5 == 0 {
				s.Delete(key)
			} else {
				s.Put(key, i)
			}
			clock.Advance(time.Duration(op) * time.Millisecond)
		}
		clock.Advance(31 * time.Second)
		if !s.Converged() {
			return false
		}
		base := s.KeysAtReplica(0)
		for r := 1; r < s.Replicas(); r++ {
			other := s.KeysAtReplica(r)
			if len(other) != len(base) {
				return false
			}
			for i := range base {
				if base[i] != other[i] {
					return false
				}
				v0, _ := s.GetFromReplica(base[i], 0)
				vr, _ := s.GetFromReplica(base[i], r)
				if v0 != vr {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentPutsRace(t *testing.T) {
	s, clock := newTestStore(t, 0, time.Second)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Put(fmt.Sprintf("k%d", i%16), w*1000+i)
				s.Get(fmt.Sprintf("k%d", i%16))
			}
		}(w)
	}
	wg.Wait()
	settle(clock, s)
	if got := s.Len(); got != 16 {
		t.Fatalf("Len = %d, want 16", got)
	}
}

func TestConfigDefaults(t *testing.T) {
	s := New(Config{Clock: sim.NewVirtualClock(), RNG: sim.NewRNG(1)})
	if s.Replicas() != 3 {
		t.Fatalf("default replicas = %d, want 3", s.Replicas())
	}
}

func TestMissingClockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New without clock did not panic")
		}
	}()
	New(Config{RNG: sim.NewRNG(1)})
}

func TestMissingRNGPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New without RNG did not panic")
		}
	}()
	New(Config{Clock: sim.NewVirtualClock()})
}
