package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"passcloud/internal/cloud/awserr"
	"passcloud/internal/sim"
)

func newTestRetrier(p Policy) (*Retrier, *sim.VirtualClock) {
	clock := sim.NewVirtualClock()
	return New(p, clock, sim.NewRNG(1)), clock
}

func TestDoRetriesTransientUntilSuccess(t *testing.T) {
	r, clock := newTestRetrier(Policy{})
	start := clock.Now()
	attempts := 0
	err := r.Do(context.Background(), "op", func() error {
		attempts++
		if attempts < 3 {
			return fmt.Errorf("wrapped: %w", awserr.ErrThrottled)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
	if !clock.Now().After(start) {
		t.Fatal("backoff did not advance the virtual clock")
	}
	s := r.Snapshot()
	op := s.Ops["op"]
	if op.Attempts != 3 || op.Retries != 2 || op.Recovered != 1 || op.Exhausted != 0 {
		t.Fatalf("stats = %+v", op)
	}
	if s.Total.Wait == 0 {
		t.Fatal("no wait time recorded")
	}
}

func TestDoSurfacesPermanentImmediately(t *testing.T) {
	r, _ := newTestRetrier(Policy{})
	attempts := 0
	sentinel := errors.New("NoSuchKey")
	err := r.Do(context.Background(), "op", func() error {
		attempts++
		return sentinel
	})
	if !errors.Is(err, sentinel) || attempts != 1 {
		t.Fatalf("err=%v attempts=%d; permanent errors must not retry", err, attempts)
	}
}

func TestDoNeverRetriesClientCrashes(t *testing.T) {
	r, _ := newTestRetrier(Policy{})
	attempts := 0
	err := r.Do(context.Background(), "op", func() error {
		attempts++
		return &sim.CrashError{Point: "x"}
	})
	if !errors.Is(err, sim.ErrCrash) || attempts != 1 {
		t.Fatalf("err=%v attempts=%d; a dead client cannot retry", err, attempts)
	}
}

func TestDoExhaustsAttemptBudget(t *testing.T) {
	r, _ := newTestRetrier(Policy{MaxAttempts: 3})
	attempts := 0
	err := r.Do(context.Background(), "op", func() error {
		attempts++
		return awserr.ErrThrottled
	})
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
	if !errors.Is(err, awserr.ErrThrottled) {
		t.Fatalf("exhaustion must wrap the final transient error: %v", err)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
	if s := r.Snapshot().Ops["op"]; s.Exhausted != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDoHonorsWaitBudget(t *testing.T) {
	r, clock := newTestRetrier(Policy{MaxAttempts: 100, BaseDelay: 40 * time.Millisecond, MaxDelay: 40 * time.Millisecond, Budget: 100 * time.Millisecond})
	start := clock.Now()
	err := r.Do(context.Background(), "op", func() error { return awserr.ErrThrottled })
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v", err)
	}
	if waited := clock.Now().Sub(start); waited > 100*time.Millisecond {
		t.Fatalf("waited %v, beyond the 100ms budget", waited)
	}
}

func TestDoRespectsContextCancellation(t *testing.T) {
	r, _ := newTestRetrier(Policy{})
	ctx, cancel := context.WithCancel(context.Background())
	attempts := 0
	err := r.Do(ctx, "op", func() error {
		attempts++
		cancel()
		return awserr.ErrThrottled
	})
	if !errors.Is(err, context.Canceled) || attempts != 1 {
		t.Fatalf("err=%v attempts=%d; cancellation must stop retries", err, attempts)
	}
}

func TestNilRetrierRunsOnce(t *testing.T) {
	var r *Retrier
	attempts := 0
	err := r.Do(context.Background(), "op", func() error {
		attempts++
		return awserr.ErrThrottled
	})
	if attempts != 1 || !errors.Is(err, awserr.ErrThrottled) {
		t.Fatalf("nil retrier must run exactly once: attempts=%d err=%v", attempts, err)
	}
}

func TestBackoffIsBoundedAndGrowing(t *testing.T) {
	r, _ := newTestRetrier(Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond})
	prevMax := time.Duration(0)
	for attempt := 1; attempt <= 6; attempt++ {
		d := r.backoff(attempt)
		cap := r.policy.BaseDelay << (attempt - 1)
		if cap > r.policy.MaxDelay || cap <= 0 {
			cap = r.policy.MaxDelay
		}
		if d < cap/2 || d > cap {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, cap/2, cap)
		}
		if cap > prevMax {
			prevMax = cap
		}
	}
	if prevMax != 80*time.Millisecond {
		t.Fatalf("backoff never reached the cap: %v", prevMax)
	}
}
