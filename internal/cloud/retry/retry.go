// Package retry is the shared resilience policy for cloud I/O: jittered
// exponential backoff around individual service calls, bounded per-op by an
// attempt count and a total-wait budget, aware of context cancellation, and
// metered so the cost harness can report how much of a run's traffic was
// retry overhead.
//
// Only transient errors (awserr.Transient) are retried. Injected client
// crashes (sim.ErrCrash) and permanent service errors surface immediately —
// a crash is not an I/O failure, and retrying a permanent error only burns
// budget. Because the transient class includes lost responses
// (awserr.ErrRequestTimeout), every operation wrapped in a Retrier must be
// idempotent under re-apply; the fault sweep in internal/core/sweep proves
// each wrapped site is.
package retry

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"passcloud/internal/cloud/awserr"
	"passcloud/internal/sim"
)

// Policy bounds one operation's retry behaviour. The zero value means
// defaults, so configs can embed a Policy without ceremony.
type Policy struct {
	// MaxAttempts is the total number of tries including the first
	// (default 6).
	MaxAttempts int
	// BaseDelay is the first backoff interval (default 50ms); each retry
	// doubles it up to MaxDelay (default 2s).
	BaseDelay time.Duration
	// MaxDelay caps a single backoff interval.
	MaxDelay time.Duration
	// Budget caps the total backoff wait one operation may accumulate
	// (default 15s). Attempts stop when the next wait would exceed it.
	Budget time.Duration
}

// withDefaults fills zero fields.
func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 6
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Budget <= 0 {
		p.Budget = 15 * time.Second
	}
	return p
}

// OpStats counts one operation site's retry activity.
type OpStats struct {
	// Attempts is every call of the wrapped function, first tries included.
	Attempts int64
	// Retries is attempts beyond the first.
	Retries int64
	// Recovered counts operations that succeeded after at least one retry.
	Recovered int64
	// Exhausted counts operations that gave up: transient failures that
	// outlived the attempt count or wait budget.
	Exhausted int64
	// Wait is the total (virtual) time spent backing off.
	Wait time.Duration
}

// add accumulates o into the receiver.
func (s *OpStats) add(o OpStats) {
	s.Attempts += o.Attempts
	s.Retries += o.Retries
	s.Recovered += o.Recovered
	s.Exhausted += o.Exhausted
	s.Wait += o.Wait
}

// Snapshot is an immutable copy of a Retrier's counters.
type Snapshot struct {
	// Ops maps operation site names to their counters.
	Ops map[string]OpStats
	// Total sums every site.
	Total OpStats
}

// String renders the snapshot one site per line, sorted, for reports.
func (s Snapshot) String() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Ops))
	for k := range s.Ops {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		o := s.Ops[k]
		fmt.Fprintf(&b, "%-32s attempts=%d retries=%d recovered=%d exhausted=%d wait=%s\n",
			k, o.Attempts, o.Retries, o.Recovered, o.Exhausted, o.Wait)
	}
	return b.String()
}

// ErrExhausted wraps the final transient error when a Retrier gives up, so
// callers can distinguish "retried and lost" from "failed immediately".
var ErrExhausted = errors.New("retry: budget exhausted")

// Retrier executes operations under a Policy, advancing the simulated clock
// through backoff waits and metering every site. A nil *Retrier executes
// operations once with no retries, so call sites need no guards.
type Retrier struct {
	policy Policy
	clock  sim.Clock
	rng    *sim.RNG

	mu  sync.Mutex
	ops map[string]OpStats
}

// New builds a Retrier. clock drives the backoff waits (a *sim.VirtualClock
// advances; any other clock makes waits instantaneous, which is what tests
// on wall clocks want); rng supplies jitter.
func New(policy Policy, clock sim.Clock, rng *sim.RNG) *Retrier {
	return &Retrier{
		policy: policy.withDefaults(),
		clock:  clock,
		rng:    rng,
		ops:    make(map[string]OpStats),
	}
}

// Do runs f under the retry policy, metering against the op site name.
// Transient errors back off and retry; permanent errors, injected crashes
// and context cancellation surface immediately. When attempts or budget run
// out the last transient error is returned wrapped in ErrExhausted.
func (r *Retrier) Do(ctx context.Context, op string, f func() error) error {
	if r == nil {
		return f()
	}
	var waited time.Duration
	for attempt := 1; ; attempt++ {
		r.record(op, func(s *OpStats) { s.Attempts++ })
		err := f()
		if err == nil {
			if attempt > 1 {
				r.record(op, func(s *OpStats) { s.Recovered++ })
			}
			return nil
		}
		if errors.Is(err, sim.ErrCrash) || !awserr.Transient(err) {
			return err
		}
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		delay := r.backoff(attempt)
		if attempt >= r.policy.MaxAttempts || waited+delay > r.policy.Budget {
			r.record(op, func(s *OpStats) { s.Exhausted++ })
			return fmt.Errorf("%w after %d attempts (%s waited): %w", ErrExhausted, attempt, waited, err)
		}
		r.wait(delay)
		waited += delay
		r.record(op, func(s *OpStats) { s.Retries++; s.Wait += delay })
	}
}

// backoff computes the jittered exponential delay before retry number
// attempt (1-based: the wait after the first failure uses attempt 1).
// Full jitter on the upper half keeps herds apart while preserving a
// deterministic lower bound: delay ∈ [cap/2, cap].
func (r *Retrier) backoff(attempt int) time.Duration {
	cap := r.policy.BaseDelay << (attempt - 1)
	if cap <= 0 || cap > r.policy.MaxDelay {
		cap = r.policy.MaxDelay
	}
	half := cap / 2
	jitter := time.Duration(0)
	if r.rng != nil && half > 0 {
		jitter = time.Duration(r.rng.Float64() * float64(half))
	}
	return half + jitter
}

// wait advances the virtual clock through the backoff. Non-virtual clocks
// (wall-clock demos) skip the wait: real sleeping would only slow the
// simulation down without changing any observable ordering.
func (r *Retrier) wait(d time.Duration) {
	type advancer interface{ Advance(time.Duration) }
	if vc, ok := r.clock.(advancer); ok {
		vc.Advance(d)
	}
}

// record applies one mutation to an op's counters.
func (r *Retrier) record(op string, f func(*OpStats)) {
	r.mu.Lock()
	s := r.ops[op]
	f(&s)
	r.ops[op] = s
	r.mu.Unlock()
}

// Snapshot returns a copy of the counters.
func (r *Retrier) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{Ops: map[string]OpStats{}}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := Snapshot{Ops: make(map[string]OpStats, len(r.ops))}
	for k, v := range r.ops {
		out.Ops[k] = v
		out.Total.add(v)
	}
	return out
}
