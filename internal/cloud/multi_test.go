package cloud

import (
	"testing"
	"time"

	"passcloud/internal/cloud/billing"
)

// Namespaces must be isolated — separate services, separate meters — so a
// bucket created in one namespace is invisible to another and ops bill to
// their own key only.
func TestMultiNamespaceIsolation(t *testing.T) {
	m := NewMulti(Config{Seed: 1})
	a := m.Namespace("tenant0/shard0")
	b := m.Namespace("tenant0/shard1")
	if a == b {
		t.Fatal("distinct keys returned the same namespace")
	}
	if got := m.Namespace("tenant0/shard0"); got != a {
		t.Fatal("repeated key did not return the same namespace")
	}

	if err := a.S3.CreateBucket("pass"); err != nil {
		t.Fatal(err)
	}
	if err := a.S3.Put("pass", "k", []byte("v"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := b.S3.Get("pass", "k"); err == nil {
		t.Fatal("namespace b sees namespace a's bucket")
	}

	if ops := m.Usage("tenant0/shard0").Ops(billing.S3); ops == 0 {
		t.Fatal("namespace a's ops were not metered under its billing key")
	}
	if ops := m.Usage("tenant0/shard1").Ops(billing.S3); ops != 0 {
		t.Fatalf("namespace b billed %d ops it never performed", ops)
	}
	if got, want := m.Combined().Ops(billing.S3), m.Usage("tenant0/shard0").Ops(billing.S3); got != want {
		t.Fatalf("combined usage %d != sum of namespaces %d", got, want)
	}
}

// All namespaces share one clock: Settle must converge every namespace's
// replicas, not just the one it was reached through.
func TestMultiSharedClockSettle(t *testing.T) {
	m := NewMulti(Config{Seed: 7, MaxDelay: 50 * time.Millisecond})
	a := m.Namespace("a")
	b := m.Namespace("b")
	if a.Clock != b.Clock {
		t.Fatal("namespaces do not share a clock")
	}
	before := a.Clock.Now()
	m.Settle()
	if !a.Clock.Now().After(before) {
		t.Fatal("Settle did not advance the shared clock")
	}
	if m.Keys()[0] != "a" || m.Keys()[1] != "b" {
		t.Fatalf("Keys() = %v", m.Keys())
	}
}

// Namespace seeds must differ per key and be stable per (seed, key), so a
// run is reproducible but namespaces do not mirror each other's
// randomness.
func TestMultiDerivedSeeds(t *testing.T) {
	if deriveSeed(2009, "a") == deriveSeed(2009, "b") {
		t.Fatal("distinct keys derived the same seed")
	}
	if deriveSeed(2009, "a") != deriveSeed(2009, "a") {
		t.Fatal("seed derivation is not stable")
	}
}
