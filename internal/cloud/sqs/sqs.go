// Package sqs simulates the Amazon Simple Queue Service as the paper
// describes it (§2.3, January-2009 snapshot): a distributed message queue
// with at-least-once delivery, server sampling, visibility timeouts, and
// four-day retention.
//
// The semantics the WAL protocol (architecture 3) depends on are all here:
//
//   - messages are at most 8 KB of Unicode text;
//   - ReceiveMessage returns at most 10 messages, sampled from a subset of
//     the queue's servers, so one call may miss messages that exist ("the
//     clients need to repeat these requests until they receive all the
//     necessary messages");
//   - a received message is hidden from other consumers for the visibility
//     timeout; it reappears unless DeleteMessage is called with the receipt
//     handle — which is how SQS "ensures that there is only one client
//     processing a message at a single point of time";
//   - GetQueueAttributes:ApproximateNumberOfMessages is an approximation,
//     counted over a sample of servers;
//   - messages older than RetentionPeriod (4 days) are deleted automatically
//     ("SQS automatically deletes messages older than four days").
package sqs

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
	"unicode/utf8"

	"passcloud/internal/cloud/awserr"
	"passcloud/internal/cloud/billing"
	"passcloud/internal/sim"
)

// Limits and defaults from the paper's AWS snapshot.
const (
	// MaxMessageSize is the 8 KB message size limit (§2.3).
	MaxMessageSize = 8 << 10
	// MaxReceiveBatch is the most messages one ReceiveMessage returns.
	MaxReceiveBatch = 10
	// RetentionPeriod is how long undelivered messages survive: 4 days.
	RetentionPeriod = 4 * 24 * time.Hour
	// DefaultVisibilityTimeout hides received messages from other
	// consumers for 30 seconds unless overridden per receive.
	DefaultVisibilityTimeout = 30 * time.Second
	// defaultServers is the number of simulated storage servers a queue's
	// messages spread over; ReceiveMessage samples a subset.
	defaultServers = 4
)

// Error codes mirroring the AWS SQS error model.
var (
	// ErrNoSuchQueue is returned for operations on a missing queue.
	ErrNoSuchQueue = errors.New("AWS.SimpleQueueService.NonExistentQueue")
	// ErrQueueExists is returned by CreateQueue on a name collision.
	ErrQueueExists = errors.New("QueueAlreadyExists")
	// ErrMessageTooLong is returned by SendMessage for bodies over 8 KB.
	ErrMessageTooLong = errors.New("MessageTooLong")
	// ErrInvalidMessage is returned for non-UTF-8 (non-Unicode) bodies.
	ErrInvalidMessage = errors.New("InvalidMessageContents")
	// ErrInvalidReceipt is returned by DeleteMessage for unknown or
	// expired receipt handles.
	ErrInvalidReceipt = errors.New("ReceiptHandleIsInvalid")
	// ErrInvalidName is returned for malformed queue names.
	ErrInvalidName = errors.New("InvalidParameterValue")
)

// APIError carries the failing operation and queue alongside the code.
type APIError struct {
	Op    string
	Queue string
	Err   error
}

// Error implements the error interface.
func (e *APIError) Error() string {
	return fmt.Sprintf("sqs: %s %s: %v", e.Op, e.Queue, e.Err)
}

// Unwrap exposes the sentinel code to errors.Is.
func (e *APIError) Unwrap() error { return e.Err }

func opErr(op, queue string, code error) error {
	return &APIError{Op: op, Queue: queue, Err: code}
}

// Message is a received message.
type Message struct {
	// ID identifies the message across receives.
	ID string
	// Body is the message payload.
	Body string
	// ReceiptHandle authorizes deletion; it is minted per receive.
	ReceiptHandle string
	// SentAt is when the message was enqueued.
	SentAt time.Time
	// ReceiveCount is how many times the message has been delivered,
	// including this delivery. Values above 1 mean redelivery.
	ReceiveCount int
}

// message is the stored form.
type message struct {
	id            string
	body          string
	sentAt        time.Time
	invisibleTill time.Time
	receipt       string // current receipt handle; rotates per receive
	receiveCount  int
	server        int // which simulated server holds it
}

// queue is one named queue spread over several simulated servers.
type queue struct {
	name     string
	messages map[string]*message // by message id
	nextSeq  int64
	// oldestSent lower-bounds the send time of every live message, so the
	// retention reaper can skip scanning until something could actually
	// have expired. Zero means unknown (recompute on next reap).
	oldestSent time.Time
}

// Config parameterizes the service.
type Config struct {
	// Servers is the number of simulated storage servers per queue
	// (default 4). ReceiveMessage samples a strict subset when Servers > 1,
	// producing the partial-receive behaviour the paper describes.
	Servers int
	// SampleSize is how many servers one ReceiveMessage samples
	// (default Servers-1, minimum 1).
	SampleSize int
	// VisibilityTimeout applied when a receive does not override it.
	VisibilityTimeout time.Duration
	// Retention overrides the 4-day retention period (tests only).
	Retention time.Duration
	// Clock is the time source. Required.
	Clock sim.Clock
	// RNG drives sampling and receipt-handle minting. Required.
	RNG *sim.RNG
	// Meter receives billing events. Required.
	Meter *billing.Meter
	// Faults optionally injects service-side failures (throttles, denials,
	// lost responses) per operation. Nil injects nothing.
	Faults *sim.FaultPlan
}

// Service is a simulated SQS endpoint.
type Service struct {
	cfg Config

	mu     sync.Mutex
	queues map[string]*queue
	nextID int64
}

// New returns an empty SQS service.
func New(cfg Config) *Service {
	if cfg.Clock == nil {
		panic("sqs: Config.Clock is required")
	}
	if cfg.RNG == nil {
		panic("sqs: Config.RNG is required")
	}
	if cfg.Meter == nil {
		panic("sqs: Config.Meter is required")
	}
	if cfg.Servers < 1 {
		cfg.Servers = defaultServers
	}
	if cfg.SampleSize < 1 {
		cfg.SampleSize = cfg.Servers - 1
		if cfg.SampleSize < 1 {
			cfg.SampleSize = 1
		}
	}
	if cfg.SampleSize > cfg.Servers {
		cfg.SampleSize = cfg.Servers
	}
	if cfg.VisibilityTimeout <= 0 {
		cfg.VisibilityTimeout = DefaultVisibilityTimeout
	}
	if cfg.Retention <= 0 {
		cfg.Retention = RetentionPeriod
	}
	return &Service{cfg: cfg, queues: make(map[string]*queue)}
}

// Meter returns the service's billing meter.
func (s *Service) Meter() *billing.Meter { return s.cfg.Meter }

// VisibilityTimeout returns the configured default visibility timeout.
func (s *Service) VisibilityTimeout() time.Duration { return s.cfg.VisibilityTimeout }

// CreateQueue creates a queue. Queue URLs in real SQS are unique per user;
// here the name is the URL.
func (s *Service) CreateQueue(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg.Meter.Op(billing.SQS, "CreateQueue", billing.TierMessage)
	if len(name) < 1 || len(name) > 80 {
		return opErr("CreateQueue", name, ErrInvalidName)
	}
	if _, ok := s.queues[name]; ok {
		return opErr("CreateQueue", name, ErrQueueExists)
	}
	s.queues[name] = &queue{name: name, messages: make(map[string]*message)}
	return nil
}

// DeleteQueue removes a queue and all its messages. Idempotent.
func (s *Service) DeleteQueue(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg.Meter.Op(billing.SQS, "DeleteQueue", billing.TierMessage)
	if q, ok := s.queues[name]; ok {
		var resident int64
		for _, m := range q.messages {
			resident += int64(len(m.body))
		}
		s.cfg.Meter.StorageDelta(billing.SQS, -resident)
	}
	delete(s.queues, name)
	return nil
}

// ListQueues returns all queue names, sorted.
func (s *Service) ListQueues() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg.Meter.Op(billing.SQS, "ListQueues", billing.TierMessage)
	out := make([]string, 0, len(s.queues))
	for name := range s.queues {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// checkFault consults the fault plan for op ("sqs/<op>"). A fail-fast fault
// meters the failed request under the error-suffixed key and returns its
// error; ackLoss tells the caller to apply the op fully and then return a
// timeout anyway. Caller holds s.mu.
func (s *Service) checkFault(op, queueName string) (failErr error, ackLoss bool) {
	switch s.cfg.Faults.CheckOp("sqs/" + op) {
	case sim.OpFailTransient:
		s.cfg.Meter.OpErr(billing.SQS, op, billing.TierMessage)
		return opErr(op, queueName, awserr.ErrThrottled), false
	case sim.OpFailPermanent:
		s.cfg.Meter.OpErr(billing.SQS, op, billing.TierMessage)
		return opErr(op, queueName, awserr.ErrAccessDenied), false
	case sim.OpAckLoss:
		return nil, true
	}
	return nil, false
}

// SendMessage enqueues body and returns the message ID. Bodies must be
// valid Unicode text of at most 8 KB (§2.3).
func (s *Service) SendMessage(queueName, body string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fail := func(code error) (string, error) {
		s.cfg.Meter.OpErr(billing.SQS, "SendMessage", billing.TierMessage)
		return "", opErr("SendMessage", queueName, code)
	}
	q, ok := s.queues[queueName]
	if !ok {
		return fail(ErrNoSuchQueue)
	}
	if len(body) > MaxMessageSize {
		return fail(ErrMessageTooLong)
	}
	if !utf8.ValidString(body) {
		return fail(ErrInvalidMessage)
	}
	failErr, ackLoss := s.checkFault("SendMessage", queueName)
	if failErr != nil {
		return "", failErr
	}
	s.cfg.Meter.Op(billing.SQS, "SendMessage", billing.TierMessage)
	s.reapExpired(q)

	s.nextID++
	id := fmt.Sprintf("msg-%08d", s.nextID)
	q.nextSeq++
	now := s.cfg.Clock.Now()
	m := &message{
		id:     id,
		body:   body,
		sentAt: now,
		server: s.cfg.RNG.Intn(s.cfg.Servers),
	}
	q.messages[id] = m
	if q.oldestSent.IsZero() || now.Before(q.oldestSent) {
		q.oldestSent = now
	}
	s.cfg.Meter.In(billing.SQS, int64(len(body)))
	s.cfg.Meter.StorageDelta(billing.SQS, int64(len(body)))
	if ackLoss {
		// The message landed; the response carrying its ID was lost. A
		// retried send enqueues a duplicate — at-least-once delivery means
		// consumers must already tolerate that.
		return "", opErr("SendMessage", queueName, awserr.ErrRequestTimeout)
	}
	return id, nil
}

// ReceiveMessage returns up to max visible messages (capped at 10), sampled
// from a subset of the queue's servers. Returned messages become invisible
// for visibility (zero means the queue default). An empty result does not
// mean the queue is empty — repeat the call (§2.3).
func (s *Service) ReceiveMessage(queueName string, max int, visibility time.Duration) ([]Message, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queues[queueName]
	if !ok {
		s.cfg.Meter.OpErr(billing.SQS, "ReceiveMessage", billing.TierMessage)
		return nil, opErr("ReceiveMessage", queueName, ErrNoSuchQueue)
	}
	failErr, ackLoss := s.checkFault("ReceiveMessage", queueName)
	if failErr != nil {
		return nil, failErr
	}
	s.cfg.Meter.Op(billing.SQS, "ReceiveMessage", billing.TierMessage)
	if max <= 0 || max > MaxReceiveBatch {
		max = MaxReceiveBatch
	}
	if visibility <= 0 {
		visibility = s.cfg.VisibilityTimeout
	}
	s.reapExpired(q)
	now := s.cfg.Clock.Now()

	// Sample a subset of servers; only their messages are candidates.
	sampled := make(map[int]bool, s.cfg.SampleSize)
	for _, idx := range s.cfg.RNG.Perm(s.cfg.Servers)[:s.cfg.SampleSize] {
		sampled[idx] = true
	}

	// Collect candidates in arrival order (best-effort ordering).
	var candidates []*message
	for _, m := range q.messages {
		if sampled[m.server] && !m.invisibleTill.After(now) {
			candidates = append(candidates, m)
		}
	}
	sort.Slice(candidates, func(i, j int) bool {
		if !candidates[i].sentAt.Equal(candidates[j].sentAt) {
			return candidates[i].sentAt.Before(candidates[j].sentAt)
		}
		return candidates[i].id < candidates[j].id
	})
	if len(candidates) > max {
		candidates = candidates[:max]
	}

	var out []Message
	var outBytes int64
	for _, m := range candidates {
		m.invisibleTill = now.Add(visibility)
		m.receipt = s.cfg.RNG.Hex(16)
		m.receiveCount++
		out = append(out, Message{
			ID:            m.id,
			Body:          m.body,
			ReceiptHandle: m.receipt,
			SentAt:        m.sentAt,
			ReceiveCount:  m.receiveCount,
		})
		outBytes += int64(len(m.body))
	}
	s.cfg.Meter.Out(billing.SQS, outBytes)
	if ackLoss {
		// The receive happened server-side — the returned messages are now
		// invisible — but the response was lost. They reappear once the
		// visibility timeout lapses, exactly like a consumer that died
		// mid-processing.
		return nil, opErr("ReceiveMessage", queueName, awserr.ErrRequestTimeout)
	}
	return out, nil
}

// DeleteMessage removes a message using the receipt handle from its most
// recent receive. Deleting with a stale handle (the message was redelivered
// elsewhere meanwhile) fails with ErrInvalidReceipt; deleting an
// already-deleted message is idempotent and succeeds.
func (s *Service) DeleteMessage(queueName, receiptHandle string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queues[queueName]
	if !ok {
		s.cfg.Meter.OpErr(billing.SQS, "DeleteMessage", billing.TierMessage)
		return opErr("DeleteMessage", queueName, ErrNoSuchQueue)
	}
	if receiptHandle == "" {
		s.cfg.Meter.OpErr(billing.SQS, "DeleteMessage", billing.TierMessage)
		return opErr("DeleteMessage", queueName, ErrInvalidReceipt)
	}
	failErr, ackLoss := s.checkFault("DeleteMessage", queueName)
	if failErr != nil {
		return failErr
	}
	s.cfg.Meter.Op(billing.SQS, "DeleteMessage", billing.TierMessage)
	// Under ack loss the delete still applies below; a retried delete of the
	// now-missing handle succeeds idempotently.
	for id, m := range q.messages {
		if m.receipt == receiptHandle {
			s.cfg.Meter.StorageDelta(billing.SQS, -int64(len(m.body)))
			delete(q.messages, id)
			if ackLoss {
				return opErr("DeleteMessage", queueName, awserr.ErrRequestTimeout)
			}
			return nil
		}
	}
	if ackLoss {
		return opErr("DeleteMessage", queueName, awserr.ErrRequestTimeout)
	}
	// Unknown handle: either already deleted (fine, idempotent) or stale.
	// Without the original message there is no way to distinguish; real SQS
	// succeeds in both cases, and the WAL protocol depends on re-deletes
	// being harmless.
	return nil
}

// ApproximateNumberOfMessages estimates the number of visible messages by
// counting a server sample and scaling — "the result of this operation is an
// approximation" (§2.3).
func (s *Service) ApproximateNumberOfMessages(queueName string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queues[queueName]
	if !ok {
		s.cfg.Meter.OpErr(billing.SQS, "GetQueueAttributes", billing.TierMessage)
		return 0, opErr("GetQueueAttributes", queueName, ErrNoSuchQueue)
	}
	failErr, ackLoss := s.checkFault("GetQueueAttributes", queueName)
	if failErr != nil {
		return 0, failErr
	}
	s.cfg.Meter.Op(billing.SQS, "GetQueueAttributes", billing.TierMessage)
	if ackLoss {
		return 0, opErr("GetQueueAttributes", queueName, awserr.ErrRequestTimeout)
	}
	s.reapExpired(q)
	now := s.cfg.Clock.Now()

	sampled := make(map[int]bool, s.cfg.SampleSize)
	for _, idx := range s.cfg.RNG.Perm(s.cfg.Servers)[:s.cfg.SampleSize] {
		sampled[idx] = true
	}
	count := 0
	for _, m := range q.messages {
		if sampled[m.server] && !m.invisibleTill.After(now) {
			count++
		}
	}
	// Scale the sample to the full server set.
	return count * s.cfg.Servers / s.cfg.SampleSize, nil
}

// Exact returns the true number of messages (visible or not) in the queue.
// Tests and invariants use it; protocol code must use the approximation.
func (s *Service) Exact(queueName string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queues[queueName]
	if !ok {
		return 0, opErr("Exact", queueName, ErrNoSuchQueue)
	}
	s.reapExpired(q)
	return len(q.messages), nil
}

// reapExpired drops messages older than the retention period. Caller holds
// s.mu. Reaping is lazy (on access), which is indistinguishable from a
// background process under virtual time. The oldestSent horizon makes the
// no-expiry common case O(1): nothing can have expired while the oldest
// message is younger than the retention period.
func (s *Service) reapExpired(q *queue) {
	now := s.cfg.Clock.Now()
	if len(q.messages) == 0 {
		q.oldestSent = time.Time{}
		return
	}
	if !q.oldestSent.IsZero() && now.Sub(q.oldestSent) <= s.cfg.Retention {
		return
	}
	oldest := time.Time{}
	for id, m := range q.messages {
		if now.Sub(m.sentAt) > s.cfg.Retention {
			s.cfg.Meter.StorageDelta(billing.SQS, -int64(len(m.body)))
			delete(q.messages, id)
			continue
		}
		if oldest.IsZero() || m.sentAt.Before(oldest) {
			oldest = m.sentAt
		}
	}
	q.oldestSent = oldest
}
