package sqs

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"passcloud/internal/cloud/billing"
	"passcloud/internal/sim"
)

func newTestService(t *testing.T, servers, sample int) (*Service, *sim.VirtualClock, *billing.Meter) {
	t.Helper()
	clock := sim.NewVirtualClock()
	meter := &billing.Meter{}
	svc := New(Config{
		Servers:           servers,
		SampleSize:        sample,
		VisibilityTimeout: 30 * time.Second,
		Clock:             clock,
		RNG:               sim.NewRNG(1),
		Meter:             meter,
	})
	if err := svc.CreateQueue("wal"); err != nil {
		t.Fatalf("CreateQueue: %v", err)
	}
	return svc, clock, meter
}

// receiveAll drains every currently visible message by repeating
// ReceiveMessage, as the paper says clients must.
func receiveAll(t *testing.T, svc *Service, queue string) []Message {
	t.Helper()
	var out []Message
	misses := 0
	for misses < 50 {
		batch, err := svc.ReceiveMessage(queue, MaxReceiveBatch, 0)
		if err != nil {
			t.Fatalf("ReceiveMessage: %v", err)
		}
		if len(batch) == 0 {
			misses++
			continue
		}
		out = append(out, batch...)
	}
	return out
}

func TestSendReceiveDelete(t *testing.T) {
	svc, _, _ := newTestService(t, 1, 1) // single server: no sampling misses
	id, err := svc.SendMessage("wal", "hello")
	if err != nil {
		t.Fatalf("SendMessage: %v", err)
	}
	if id == "" {
		t.Fatal("empty message id")
	}
	msgs, err := svc.ReceiveMessage("wal", 10, 0)
	if err != nil || len(msgs) != 1 {
		t.Fatalf("ReceiveMessage: %v, %v", msgs, err)
	}
	m := msgs[0]
	if m.Body != "hello" || m.ID != id || m.ReceiptHandle == "" || m.ReceiveCount != 1 {
		t.Fatalf("message = %+v", m)
	}
	if err := svc.DeleteMessage("wal", m.ReceiptHandle); err != nil {
		t.Fatalf("DeleteMessage: %v", err)
	}
	if n, _ := svc.Exact("wal"); n != 0 {
		t.Fatalf("Exact after delete = %d", n)
	}
}

func TestMessageLimits(t *testing.T) {
	svc, _, _ := newTestService(t, 1, 1)
	if _, err := svc.SendMessage("wal", strings.Repeat("x", MaxMessageSize+1)); !errors.Is(err, ErrMessageTooLong) {
		t.Fatalf("oversize: %v", err)
	}
	if _, err := svc.SendMessage("wal", strings.Repeat("x", MaxMessageSize)); err != nil {
		t.Fatalf("exactly 8KB rejected: %v", err)
	}
	if _, err := svc.SendMessage("wal", string([]byte{0xff, 0xfe})); !errors.Is(err, ErrInvalidMessage) {
		t.Fatalf("invalid utf8: %v", err)
	}
	if _, err := svc.SendMessage("ghost", "x"); !errors.Is(err, ErrNoSuchQueue) {
		t.Fatalf("missing queue: %v", err)
	}
}

func TestQueueLifecycle(t *testing.T) {
	svc, _, _ := newTestService(t, 1, 1)
	if err := svc.CreateQueue("wal"); !errors.Is(err, ErrQueueExists) {
		t.Fatalf("duplicate queue: %v", err)
	}
	if err := svc.CreateQueue(""); !errors.Is(err, ErrInvalidName) {
		t.Fatalf("empty name: %v", err)
	}
	if got := svc.ListQueues(); len(got) != 1 || got[0] != "wal" {
		t.Fatalf("ListQueues = %v", got)
	}
	if err := svc.DeleteQueue("wal"); err != nil {
		t.Fatal(err)
	}
	if err := svc.DeleteQueue("wal"); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestVisibilityTimeoutHidesMessage(t *testing.T) {
	svc, clock, _ := newTestService(t, 1, 1)
	if _, err := svc.SendMessage("wal", "m"); err != nil {
		t.Fatal(err)
	}
	first, err := svc.ReceiveMessage("wal", 10, 30*time.Second)
	if err != nil || len(first) != 1 {
		t.Fatalf("first receive: %v, %v", first, err)
	}
	// While invisible, no other consumer may see it.
	for i := 0; i < 20; i++ {
		again, err := svc.ReceiveMessage("wal", 10, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(again) != 0 {
			t.Fatalf("message visible during timeout: %v", again)
		}
	}
	// After the timeout it reappears (at-least-once delivery).
	clock.Advance(31 * time.Second)
	again, err := svc.ReceiveMessage("wal", 10, 0)
	if err != nil || len(again) != 1 {
		t.Fatalf("redelivery: %v, %v", again, err)
	}
	if again[0].ReceiveCount != 2 {
		t.Fatalf("ReceiveCount = %d, want 2", again[0].ReceiveCount)
	}
	if again[0].ReceiptHandle == first[0].ReceiptHandle {
		t.Fatal("receipt handle not rotated on redelivery")
	}
}

func TestDeleteWithStaleHandleAfterRedelivery(t *testing.T) {
	svc, clock, _ := newTestService(t, 1, 1)
	if _, err := svc.SendMessage("wal", "m"); err != nil {
		t.Fatal(err)
	}
	first, _ := svc.ReceiveMessage("wal", 10, time.Second)
	clock.Advance(2 * time.Second)
	second, _ := svc.ReceiveMessage("wal", 10, time.Minute)
	if len(first) != 1 || len(second) != 1 {
		t.Fatal("setup failed")
	}
	// The first consumer's handle is stale; deleting with it must not
	// remove the message out from under the second consumer.
	if err := svc.DeleteMessage("wal", first[0].ReceiptHandle); err != nil {
		t.Fatalf("stale delete returned error: %v", err)
	}
	if n, _ := svc.Exact("wal"); n != 1 {
		t.Fatalf("stale handle deleted a redelivered message")
	}
	// The current handle works.
	if err := svc.DeleteMessage("wal", second[0].ReceiptHandle); err != nil {
		t.Fatal(err)
	}
	if n, _ := svc.Exact("wal"); n != 0 {
		t.Fatal("current handle failed to delete")
	}
}

func TestDeleteMessageIdempotent(t *testing.T) {
	svc, _, _ := newTestService(t, 1, 1)
	if _, err := svc.SendMessage("wal", "m"); err != nil {
		t.Fatal(err)
	}
	msgs, _ := svc.ReceiveMessage("wal", 10, 0)
	if err := svc.DeleteMessage("wal", msgs[0].ReceiptHandle); err != nil {
		t.Fatal(err)
	}
	// Re-delete with the same handle: idempotent success.
	if err := svc.DeleteMessage("wal", msgs[0].ReceiptHandle); err != nil {
		t.Fatalf("re-delete errored: %v", err)
	}
	if err := svc.DeleteMessage("wal", ""); !errors.Is(err, ErrInvalidReceipt) {
		t.Fatalf("empty handle: %v", err)
	}
}

func TestSamplingCanMissMessages(t *testing.T) {
	// With 4 servers and a sample of 1, a single ReceiveMessage must
	// sometimes miss messages that exist (§2.3).
	svc, _, _ := newTestService(t, 4, 1)
	for i := 0; i < 8; i++ {
		if _, err := svc.SendMessage("wal", fmt.Sprintf("m%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	missed := false
	for i := 0; i < 100; i++ {
		batch, err := svc.ReceiveMessage("wal", 10, time.Nanosecond)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) < 8 {
			missed = true
			break
		}
	}
	if !missed {
		t.Fatal("sampling never missed messages; partial receive not modeled")
	}
}

func TestRepeatedReceivesFindEverything(t *testing.T) {
	svc, _, _ := newTestService(t, 4, 2)
	want := make(map[string]bool)
	for i := 0; i < 40; i++ {
		body := fmt.Sprintf("m%02d", i)
		want[body] = true
		if _, err := svc.SendMessage("wal", body); err != nil {
			t.Fatal(err)
		}
	}
	got := make(map[string]bool)
	for _, m := range receiveAll(t, svc, "wal") {
		got[m.Body] = true
	}
	for body := range want {
		if !got[body] {
			t.Fatalf("message %q never received", body)
		}
	}
}

func TestReceiveBatchCap(t *testing.T) {
	svc, _, _ := newTestService(t, 1, 1)
	for i := 0; i < 25; i++ {
		if _, err := svc.SendMessage("wal", "m"); err != nil {
			t.Fatal(err)
		}
	}
	batch, err := svc.ReceiveMessage("wal", 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) > MaxReceiveBatch {
		t.Fatalf("batch = %d, cap is %d", len(batch), MaxReceiveBatch)
	}
	batch, err = svc.ReceiveMessage("wal", 3, 0)
	if err != nil || len(batch) != 3 {
		t.Fatalf("requested 3: got %d, %v", len(batch), err)
	}
}

func TestBestEffortOrdering(t *testing.T) {
	svc, clock, _ := newTestService(t, 1, 1)
	for i := 0; i < 5; i++ {
		if _, err := svc.SendMessage("wal", fmt.Sprintf("m%d", i)); err != nil {
			t.Fatal(err)
		}
		clock.Advance(time.Second)
	}
	batch, _ := svc.ReceiveMessage("wal", 5, 0)
	for i, m := range batch {
		if m.Body != fmt.Sprintf("m%d", i) {
			t.Fatalf("single-server ordering broken: %v", batch)
		}
	}
}

func TestApproximateCount(t *testing.T) {
	svc, _, _ := newTestService(t, 4, 2)
	for i := 0; i < 100; i++ {
		if _, err := svc.SendMessage("wal", "m"); err != nil {
			t.Fatal(err)
		}
	}
	// The approximation fluctuates; averaged over many calls it should be
	// in the right ballpark.
	total := 0
	const trials = 50
	for i := 0; i < trials; i++ {
		n, err := svc.ApproximateNumberOfMessages("wal")
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	avg := total / trials
	if avg < 50 || avg > 150 {
		t.Fatalf("approximate count average = %d, want around 100", avg)
	}
	if _, err := svc.ApproximateNumberOfMessages("ghost"); !errors.Is(err, ErrNoSuchQueue) {
		t.Fatalf("missing queue: %v", err)
	}
}

func TestRetentionReapsOldMessages(t *testing.T) {
	svc, clock, _ := newTestService(t, 1, 1)
	if _, err := svc.SendMessage("wal", "old"); err != nil {
		t.Fatal(err)
	}
	clock.Advance(RetentionPeriod + time.Hour)
	if _, err := svc.SendMessage("wal", "new"); err != nil {
		t.Fatal(err)
	}
	batch, err := svc.ReceiveMessage("wal", 10, 0)
	if err != nil || len(batch) != 1 || batch[0].Body != "new" {
		t.Fatalf("after retention: %v, %v", batch, err)
	}
	if n, _ := svc.Exact("wal"); n != 1 {
		t.Fatalf("Exact = %d, want 1 (old message reaped)", n)
	}
}

func TestMeteringAndStorage(t *testing.T) {
	svc, _, meter := newTestService(t, 1, 1)
	meter.Reset()
	if _, err := svc.SendMessage("wal", "12345"); err != nil {
		t.Fatal(err)
	}
	u := meter.Snapshot()
	if got := u.OpCount(billing.SQS, "SendMessage"); got != 1 {
		t.Fatalf("SendMessage ops = %d", got)
	}
	if got := u.BytesIn(billing.SQS); got != 5 {
		t.Fatalf("BytesIn = %d", got)
	}
	if got := u.Storage(billing.SQS); got != 5 {
		t.Fatalf("Storage = %d", got)
	}
	msgs, _ := svc.ReceiveMessage("wal", 1, 0)
	if got := meter.Snapshot().BytesOut(billing.SQS); got != 5 {
		t.Fatalf("BytesOut = %d", got)
	}
	if err := svc.DeleteMessage("wal", msgs[0].ReceiptHandle); err != nil {
		t.Fatal(err)
	}
	if got := meter.Snapshot().Storage(billing.SQS); got != 0 {
		t.Fatalf("Storage after delete = %d", got)
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	svc, _, _ := newTestService(t, 4, 4)
	const producers, perProducer = 4, 50
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if _, err := svc.SendMessage("wal", fmt.Sprintf("p%d-%d", p, i)); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(p)
	}
	var mu sync.Mutex
	seen := make(map[string]int)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				batch, err := svc.ReceiveMessage("wal", 10, time.Hour)
				if err != nil {
					t.Errorf("receive: %v", err)
					return
				}
				for _, m := range batch {
					mu.Lock()
					seen[m.Body]++
					mu.Unlock()
					if err := svc.DeleteMessage("wal", m.ReceiptHandle); err != nil {
						t.Errorf("delete: %v", err)
					}
				}
			}
		}()
	}
	wg.Wait()
	// With an hour-long visibility timeout and prompt deletes, no message
	// should have been processed twice.
	for body, count := range seen {
		if count != 1 {
			t.Fatalf("message %q processed %d times despite visibility lock", body, count)
		}
	}
}
