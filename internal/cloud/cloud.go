// Package cloud bundles the three simulated AWS services the paper's
// architectures build on, wired to one clock, one deterministic random
// source, and one billing meter.
package cloud

import (
	"time"

	"passcloud/internal/cloud/billing"
	"passcloud/internal/cloud/replica"
	"passcloud/internal/cloud/s3"
	"passcloud/internal/cloud/sdb"
	"passcloud/internal/cloud/sqs"
	"passcloud/internal/sim"
)

// Config parameterizes a simulated AWS region.
type Config struct {
	// Seed drives all randomness (replica choice, delays, sampling).
	Seed int64
	// Replicas per service (default 3).
	Replicas int
	// MinDelay/MaxDelay bound eventual-consistency propagation. Both zero
	// gives strong consistency — useful when a test targets something else.
	MinDelay, MaxDelay time.Duration
	// VisibilityTimeout for SQS receives (default 30s).
	VisibilityTimeout time.Duration
	// Faults optionally injects service-side failures — throttles,
	// permanent denials, applied-but-response-lost ops — into every service
	// of the region. Nil injects nothing. Client-side crash points use the
	// same plan but are checked by protocol code, not the services.
	Faults *sim.FaultPlan
}

// Cloud is one simulated AWS region.
type Cloud struct {
	Clock *sim.VirtualClock
	RNG   *sim.RNG
	Meter *billing.Meter
	S3    *s3.Service
	SDB   *sdb.Service
	SQS   *sqs.Service

	maxDelay time.Duration
}

// New builds a region.
func New(cfg Config) *Cloud {
	return newOnClock(cfg, sim.NewVirtualClock())
}

// newOnClock builds a region on an existing clock — the constructor Multi
// uses so all of its namespaces share one time source.
func newOnClock(cfg Config, clock *sim.VirtualClock) *Cloud {
	rng := sim.NewRNG(cfg.Seed)
	meter := &billing.Meter{}
	c := &Cloud{
		Clock:    clock,
		RNG:      rng,
		Meter:    meter,
		maxDelay: cfg.MaxDelay,
	}
	c.S3 = s3.New(s3.Config{
		Replication: replica.Config{
			Replicas: cfg.Replicas,
			MinDelay: cfg.MinDelay,
			MaxDelay: cfg.MaxDelay,
			Clock:    clock,
			RNG:      rng,
		},
		Meter:  meter,
		Faults: cfg.Faults,
	})
	c.SDB = sdb.New(sdb.Config{
		Replicas: cfg.Replicas,
		MinDelay: cfg.MinDelay,
		MaxDelay: cfg.MaxDelay,
		Clock:    clock,
		RNG:      rng,
		Meter:    meter,
		Faults:   cfg.Faults,
	})
	c.SQS = sqs.New(sqs.Config{
		VisibilityTimeout: cfg.VisibilityTimeout,
		Clock:             clock,
		RNG:               rng,
		Meter:             meter,
		Faults:            cfg.Faults,
	})
	return c
}

// Settle advances the clock past the propagation horizon so every service
// converges. Tests and the harness call it between phases.
func (c *Cloud) Settle() {
	c.Clock.Advance(c.maxDelay + time.Millisecond)
}

// Usage returns the current billing snapshot.
func (c *Cloud) Usage() billing.Usage { return c.Meter.Snapshot() }

// MaxDelay returns the region's propagation horizon (zero when strongly
// consistent). Query caches use it to bound how long a snapshot taken from
// a possibly stale replica may be served.
func (c *Cloud) MaxDelay() time.Duration { return c.maxDelay }
