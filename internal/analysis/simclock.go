package analysis

import (
	"go/ast"
	"go/types"
)

// Simclock reports wall-clock time sources in sim-driven packages.
//
// Every simulated service, store protocol and sweep schedule takes its
// time from sim.Clock, so a run is a pure function of its seed: the
// SWEEP_SEEDS matrix in CI replays locally byte-for-byte, and the
// billing meter's propagation windows are deterministic. One stray
// time.Now or time.Sleep reintroduces the host scheduler into that
// story and seeded replays stop reproducing. The clock substrate itself
// (internal/sim, where sim.WallClock bridges to the OS) is the one
// package allowed to touch the real clock; anything else annotates the
// call site with an allow directive stating why wall time is the point
// (e.g. the load harness's wall-latency histograms).
var Simclock = &Analyzer{
	Name: "simclock",
	Doc:  "forbid time.Now/time.Sleep/timer use in sim-driven packages; all time flows through sim.Clock",
	Run:  runSimclock,
}

// wallClockFuncs are the package time functions that read or wait on
// the host clock. Conversions and arithmetic (time.Duration, t.Add) are
// fine — only origination of wall time is restricted.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"Since":     true,
	"Until":     true,
}

// runSimclock flags wall-clock origination in scope.
func runSimclock(pass *Pass) error {
	path := pass.Pkg.Path()
	if !inLibrary(path) || path == modulePath+"/internal/sim" {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			// Methods (time.Time.After, time.Time.Sub, ...) are pure
			// arithmetic on values already obtained; only the package
			// functions originate wall time.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			if wallClockFuncs[fn.Name()] {
				pass.Reportf(call.Pos(), "time.%s reads the wall clock in a sim-driven package; take time from sim.Clock so seeded runs (SWEEP_SEEDS) stay replayable", fn.Name())
			}
			return true
		})
	}
	return nil
}
