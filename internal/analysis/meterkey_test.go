package analysis_test

import (
	"testing"

	"passcloud/internal/analysis"
	"passcloud/internal/analysis/analysistest"
)

// TestMeterkeyFixture proves meterkey catches dynamically built billing
// keys and retry op-site names — including at call sites of key
// forwarders — while literals, constants, constant concatenation and
// literal-fed parameters pass.
func TestMeterkeyFixture(t *testing.T) {
	analysistest.Run(t, analysis.Meterkey, "passcloud/internal/fix/meterkey")
}
