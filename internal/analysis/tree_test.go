package analysis_test

import (
	"testing"

	"passcloud/internal/analysis"
)

// TestTreeHasZeroFindings runs the whole suite over every package of
// the module — the same run `go run ./cmd/passvet ./...` performs — and
// requires zero findings. This is the gate that keeps the invariants
// true for every future change under plain `go test ./...`: a new raw
// mutation, wall-clock read, == sentinel comparison or dynamic meter
// key fails the build here, not in a reviewer's head.
func TestTreeHasZeroFindings(t *testing.T) {
	mod, err := analysis.Default()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	findings, err := analysis.Run(mod.Packages(), analysis.All())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Logf("fix the finding, or for a deliberate exception annotate the call site with `//passvet:allow <analyzer> -- <reason>`")
	}
}

// TestNarrowedRunKeepsDirectivesValid guards directive validation under
// `passvet -only`: running a subset of the suite over the tree must not
// report the repository's existing //passvet:allow annotations (which
// name analyzers outside the subset) as unknown.
func TestNarrowedRunKeepsDirectivesValid(t *testing.T) {
	mod, err := analysis.Default()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	findings, err := analysis.Run(mod.Packages(), []*analysis.Analyzer{analysis.Ctxflow})
	if err != nil {
		t.Fatalf("running ctxflow alone: %v", err)
	}
	for _, f := range findings {
		t.Errorf("narrowed run reported: %s", f)
	}
}

// TestSuiteShape pins the suite's composition: every analyzer present
// exactly once, each carrying a one-line doc for passvet -list.
func TestSuiteShape(t *testing.T) {
	want := []string{"ctxflow", "simclock", "retrywrap", "errsentinel", "meterkey"}
	suite := analysis.All()
	if len(suite) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing doc or run function", a.Name)
		}
	}
}
