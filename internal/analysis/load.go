package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// A Package is one parsed and type-checked package ready for analysis.
type Package struct {
	// PkgPath is the package's import path.
	PkgPath string
	// Dir is the directory holding the package's sources.
	Dir string
	// Fset is the file set shared by every package of one load.
	Fset *token.FileSet
	// Files are the parsed sources, comments included.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// TypesInfo records the type-checker's findings for Files.
	TypesInfo *types.Info
}

// A Module is one load of a Go module: the export data of every
// dependency plus the parsed, type-checked packages of the module
// itself. It is the unit the driver and the fixture runner share.
type Module struct {
	// Dir is the directory the packages were resolved from.
	Dir string
	// Path is the main module's path.
	Path string

	fset    *token.FileSet
	exports map[string]string // import path -> export-data file
	imp     types.ImporterFrom
	pkgs    []*Package
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Module     *struct {
		Path string
		Main bool
	}
}

// Load resolves patterns with the go command from dir, building export
// data for every dependency, and returns the main-module packages
// parsed and type-checked. Test files are not loaded: the invariants
// the suite enforces are library-code invariants (and several checks
// explicitly exempt tests), so the tree gate covers non-test sources.
//
// Only the standard library is used: instead of go/packages, the loader
// runs `go list -deps -export -json` and feeds the reported export
// files to the gc importer, so the module needs no dependency beyond
// the toolchain itself.
func Load(dir string, patterns ...string) (*Module, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,Export,GoFiles,Module"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		var ee *exec.ExitError
		if errors.As(err, &ee) {
			return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, ee.Stderr)
		}
		return nil, fmt.Errorf("go list %s: %w", strings.Join(patterns, " "), err)
	}
	m := &Module{
		Dir:     dir,
		fset:    token.NewFileSet(),
		exports: map[string]string{},
	}
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if p.Export != "" {
			m.exports[p.ImportPath] = p.Export
		}
		if p.Module != nil && p.Module.Main {
			m.Path = p.Module.Path
			targets = append(targets, p)
		}
	}
	m.imp = importer.ForCompiler(m.fset, "gc", m.lookup).(types.ImporterFrom)
	for _, t := range targets {
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		pkg, err := m.check(t.ImportPath, t.Dir, files)
		if err != nil {
			return nil, err
		}
		m.pkgs = append(m.pkgs, pkg)
	}
	return m, nil
}

// lookup opens the export data for one import path; the gc importer
// calls it for every package a type-checked file mentions.
func (m *Module) lookup(path string) (io.ReadCloser, error) {
	f, ok := m.exports[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(f)
}

// Packages returns the loaded main-module packages in load order.
func (m *Module) Packages() []*Package { return m.pkgs }

// check parses and type-checks one package from explicit file paths.
func (m *Module) check(pkgPath, dir string, files []string) (*Package, error) {
	pkg := &Package{PkgPath: pkgPath, Dir: dir, Fset: m.fset}
	for _, name := range files {
		f, err := parser.ParseFile(m.fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", name, err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	pkg.TypesInfo = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: m.imp}
	tpkg, err := conf.Check(pkgPath, m.fset, pkg.Files, pkg.TypesInfo)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", pkgPath, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}

// CheckDir parses every .go file in dir — test files included — as one
// package with the given import path and type-checks it against the
// module's export data. The fixture runner uses it to load testdata
// packages under synthetic import paths (the analyzers scope their
// rules by path), while still letting fixtures import the module's real
// packages so receiver-type checks run against the real types.
func (m *Module) CheckDir(dir, pkgPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	return m.check(pkgPath, dir, files)
}

var (
	defaultOnce sync.Once
	defaultMod  *Module
	defaultErr  error
)

// Default loads the enclosing module's ./... packages once per process
// and caches the result; the tree-gate test and every fixture test
// share it. The module root is found by walking up from the working
// directory to the nearest go.mod.
func Default() (*Module, error) {
	defaultOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			defaultErr = err
			return
		}
		defaultMod, defaultErr = Load(root, "./...")
	})
	return defaultMod, defaultErr
}

// moduleRoot walks up from the working directory to the directory
// holding go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", errors.New("no go.mod above working directory")
		}
		dir = parent
	}
}
