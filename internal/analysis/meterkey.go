package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Meterkey reports billing meter keys and retry op-site names that are
// built dynamically.
//
// Everything downstream of the meter is keyed by exact op-name strings:
// the query cache samples its invalidation stamp with Meter.OpSum over
// fixed key lists, failed writes are distinguished by the literal
// billing.ErrSuffix, and the benchdiff CI gate compares per-key counts
// between runs — a gate that, by design, fails when a section vanishes
// but cannot notice a key it has never seen. A key assembled at run
// time ("prefix-"+shardName) can therefore drift out of every reader
// silently. The check requires the key operand of billing.Meter.Op,
// billing.Meter.OpErr and retry.Retrier.Do to be a constant expression.
// The one extra shape allowed is a function parameter (optionally
// concatenated with constants): the function then becomes a key
// forwarder and the same rule is applied to that argument at each of
// its call sites in the package, so the key is still a literal at its
// origin. Forwarding across package boundaries is outside the
// analysis's reach and is flagged at the forwarding site unless the
// callee is one of the three methods above.
var Meterkey = &Analyzer{
	Name: "meterkey",
	Doc:  "billing meter keys and retry op names must be literals or constants (or parameters fed only by them)",
	Run:  runMeterkey,
}

// meterSeeds maps the metering entry points' full names to the operand
// index of their key argument.
var meterSeeds = map[string]int{
	"(*" + modulePath + "/internal/cloud/billing.Meter).Op":    1,
	"(*" + modulePath + "/internal/cloud/billing.Meter).OpErr": 1,
	"(*" + modulePath + "/internal/cloud/retry.Retrier).Do":    1,
}

// paramSite locates one declared-function parameter.
type paramSite struct {
	fn    *types.Func
	index int
}

// runMeterkey computes the package's key-forwarding closure and flags
// every dynamically built key argument.
func runMeterkey(pass *Pass) error {
	// Map every declared function's parameter objects to their slot, so
	// a key argument reading a parameter can be traced to the functions
	// whose call sites must then supply constants.
	paramOf := map[types.Object]paramSite{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Type.Params == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			idx := 0
			for _, field := range fd.Type.Params.List {
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						paramOf[obj] = paramSite{fn: fn, index: idx}
					}
					idx++
				}
				if len(field.Names) == 0 {
					idx++
				}
			}
		}
	}

	// keyed grows to the fixpoint of "parameters that end up as meter
	// keys"; only then is the final flagging pass exact.
	keyed := map[*types.Func]map[int]bool{}
	for {
		changed := false
		walkKeyArgs(pass, keyed, func(arg ast.Expr) {
			for _, obj := range keyParams(pass, arg) {
				site, ok := paramOf[obj]
				if !ok {
					continue
				}
				if keyed[site.fn] == nil {
					keyed[site.fn] = map[int]bool{}
				}
				if !keyed[site.fn][site.index] {
					keyed[site.fn][site.index] = true
					changed = true
				}
			}
		})
		if !changed {
			break
		}
	}

	walkKeyArgs(pass, keyed, func(arg ast.Expr) {
		if !staticKey(pass, arg, paramOf) {
			pass.Reportf(arg.Pos(), "meter key is built dynamically; use a string literal or package constant so the benchdiff gate sees every key")
		}
	})
	return nil
}

// walkKeyArgs calls fn for the key argument of every metering or
// key-forwarding call in the package.
func walkKeyArgs(pass *Pass, keyed map[*types.Func]map[int]bool, fn func(arg ast.Expr)) {
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pass.TypesInfo, call)
			if callee == nil {
				return true
			}
			if idx, ok := meterSeeds[callee.FullName()]; ok && idx < len(call.Args) {
				fn(call.Args[idx])
			}
			for idx := range keyed[callee] {
				if idx < len(call.Args) {
					fn(call.Args[idx])
				}
			}
			return true
		})
	}
}

// staticKey reports whether e is an acceptable key expression: a
// constant, a declared-function parameter, or a concatenation of those.
func staticKey(pass *Pass, e ast.Expr, paramOf map[types.Object]paramSite) bool {
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
		return true
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		_, ok := paramOf[pass.TypesInfo.Uses[e]]
		return ok
	case *ast.BinaryExpr:
		return e.Op == token.ADD && staticKey(pass, e.X, paramOf) && staticKey(pass, e.Y, paramOf)
	}
	return false
}

// keyParams collects the declared-function parameters a key expression
// reads, for forwarding-closure growth. Non-static expressions return
// nothing — they are flagged outright, not traced.
func keyParams(pass *Pass, e ast.Expr) []types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[e]; obj != nil {
			if _, isVar := obj.(*types.Var); isVar {
				return []types.Object{obj}
			}
		}
	case *ast.BinaryExpr:
		if e.Op == token.ADD {
			return append(keyParams(pass, e.X), keyParams(pass, e.Y)...)
		}
	}
	return nil
}
