package analysis_test

import (
	"testing"

	"passcloud/internal/analysis"
	"passcloud/internal/analysis/analysistest"
)

// TestSimclockFixture proves simclock catches wall-clock origination,
// permits sim.Clock use and time arithmetic (including the
// time.Time.After method), and honours the allow directive.
func TestSimclockFixture(t *testing.T) {
	analysistest.Run(t, analysis.Simclock, "passcloud/internal/fix/simclock")
}

// TestSimclockScope proves cmd/... packages are out of scope: demos on
// wall clocks (cmd/awssim) are legitimate.
func TestSimclockScope(t *testing.T) {
	analysistest.Run(t, analysis.Simclock, "passcloud/cmd/fixscope")
}
