package analysis

import (
	"go/ast"
)

// Ctxflow reports context.Background and context.TODO in library code.
//
// Every cloud call in the store takes a context so cancellation and
// deadlines reach the innermost retry loop (see cancel_test.go for the
// behaviour this buys). A context minted mid-library with
// context.Background severs that chain: the caller's cancellation
// silently stops propagating and a wedged cloud call can no longer be
// abandoned. Contexts must therefore flow in from the public API; only
// process entry points (cmd/..., examples/...) and test files may
// create roots.
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc:  "forbid context.Background/context.TODO in library code; contexts must flow in from the API",
	Run:  runCtxflow,
}

// runCtxflow flags context root constructors in scope.
func runCtxflow(pass *Pass) error {
	if !inLibrary(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
				return true
			}
			if name := fn.Name(); name == "Background" || name == "TODO" {
				pass.Reportf(call.Pos(), "context.%s in library code severs the caller's cancellation chain; accept a context from the API instead", name)
			}
			return true
		})
	}
	return nil
}
