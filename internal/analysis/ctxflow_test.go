package analysis_test

import (
	"testing"

	"passcloud/internal/analysis"
	"passcloud/internal/analysis/analysistest"
)

// TestCtxflowFixture proves ctxflow catches minted context roots in
// library code, leaves derived contexts alone, and exempts test files.
func TestCtxflowFixture(t *testing.T) {
	analysistest.Run(t, analysis.Ctxflow, "passcloud/internal/fix/ctxflow")
}

// TestCtxflowScope proves cmd/... packages are out of scope: a command
// may mint its own roots.
func TestCtxflowScope(t *testing.T) {
	analysistest.Run(t, analysis.Ctxflow, "passcloud/cmd/fixscope")
}
