// Package analysistest runs one analyzer over a golden fixture package
// and checks its findings against // want comments — the fixture
// discipline of golang.org/x/tools/go/analysis/analysistest, rebuilt on
// the self-contained loader in internal/analysis.
//
// Fixtures live under internal/analysis/testdata/src/<import-path>/ and
// are loaded with that import path, so analyzers that scope their rules
// by package path (all of them) see fixtures exactly as they would see
// real tree positions; testdata is invisible to the go tool, so the
// fixtures never leak into builds. Because fixtures type-check against
// the module's real export data they may import the real
// internal/cloud, internal/cloud/retry and internal/cloud/billing
// packages — receiver-type checks run against the true types, not
// stand-ins.
//
// Expectations: a line that should be flagged carries a trailing
//
//	// want "regexp"
//
// comment (several quoted regexps allowed); every finding must match a
// want on its line and every want must be matched. //passvet:allow
// directives are honoured before matching, so fixtures also prove the
// allowlist mechanism.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"passcloud/internal/analysis"
)

// wantRE matches one expectation comment; the regexps follow in either
// double-quoted or backquoted form.
var wantRE = regexp.MustCompile("//\\s*want((?:\\s+(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`))+)")

// quotedRE extracts the individual quoted expectations.
var quotedRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// Run loads the fixture package at
// internal/analysis/testdata/src/<pkgPath> under the import path
// pkgPath, applies the analyzer, and fails t on any mismatch between
// findings and // want expectations.
func Run(t *testing.T, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	mod, err := analysis.Default()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	dir := filepath.Join(mod.Dir, "internal/analysis/testdata/src", filepath.FromSlash(pkgPath))
	pkg, err := mod.CheckDir(dir, pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
	}
	findings, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range quotedRE.FindAllString(m[1], -1) {
					text, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(text)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, text, err)
					}
					k := key{pos.Filename, pos.Line}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	matched := map[key][]bool{}
	for _, f := range findings {
		k := key{f.Pos.Filename, f.Pos.Line}
		res := wants[k]
		hit := false
		for i, re := range res {
			if re.MatchString(f.Message) {
				if matched[k] == nil {
					matched[k] = make([]bool, len(res))
				}
				matched[k][i] = true
				hit = true
				break
			}
		}
		if !hit {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for k, res := range wants {
		for i, re := range res {
			if matched[k] == nil || !matched[k][i] {
				t.Errorf("%s:%d: no finding matched want %q", relTo(mod.Dir, k.file), k.line, re)
			}
		}
	}
}

// relTo shortens file paths in failure messages.
func relTo(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
