package analysis_test

import (
	"testing"

	"passcloud/internal/analysis"
	"passcloud/internal/analysis/analysistest"
)

// TestRetrywrapFixture proves retrywrap catches unwrapped S3, SimpleDB
// and SQS mutations in store-path packages, accepts mutations inside
// retry.Retrier.Do closures and plain reads, and honours the
// per-call-site allowlist directive.
func TestRetrywrapFixture(t *testing.T) {
	analysistest.Run(t, analysis.Retrywrap, "passcloud/internal/core/fix/retrywrap")
}

// TestRetrywrapSweepExempt proves internal/core/sweep/... is exempt:
// the fault sweep's corruption class mutates raw cloud state by design.
func TestRetrywrapSweepExempt(t *testing.T) {
	analysistest.Run(t, analysis.Retrywrap, "passcloud/internal/core/sweep/fix")
}
