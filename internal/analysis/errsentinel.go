package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
)

// Errsentinel reports error comparisons and wraps that defeat the
// errors.Is/errors.As chain.
//
// The fault model's dispatch is classification-driven: retry.Retrier
// keeps trying only while awserr.Transient(err) holds, recovery code
// matches sim.ErrCrash and the store's sentinels (ErrBadCursor,
// retry.ErrExhausted, ...) with errors.Is, and retry itself returns
// sentinels wrapped in context ("%w after %d attempts"). An `err ==
// ErrX` comparison is false the moment anyone adds such context, and a
// `fmt.Errorf("...: %v", err)` wrap flattens the chain so downstream
// errors.Is and awserr.Transient stop seeing the classification at all.
// The check flags ==/!= between error values (nil comparisons are
// fine), error-typed switch cases, and fmt.Errorf verbs other than %w
// applied to error operands.
var Errsentinel = &Analyzer{
	Name: "errsentinel",
	Doc:  "match sentinel errors with errors.Is and wrap causes with %w, not ==/%v, so awserr classification survives",
	Run:  runErrsentinel,
}

// runErrsentinel flags identity comparisons and flattening wraps.
func runErrsentinel(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					if errOperand(pass, n.X) && errOperand(pass, n.Y) {
						pass.Reportf(n.Pos(), "error compared with %s; use errors.Is so wrapped sentinels still match", n.Op)
					}
				}
			case *ast.SwitchStmt:
				checkErrSwitch(pass, n)
			case *ast.CallExpr:
				checkErrorfWrap(pass, n)
			}
			return true
		})
	}
	return nil
}

// errOperand reports whether e is a non-nil expression of a type
// implementing error.
func errOperand(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.IsNil() {
		return false
	}
	return implementsError(tv.Type)
}

// checkErrSwitch flags `switch err { case ErrX: }`, the == comparison
// in disguise.
func checkErrSwitch(pass *Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil || !errOperand(pass, sw.Tag) {
		return
	}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if errOperand(pass, e) {
				pass.Reportf(e.Pos(), "error matched by switch case identity; use errors.Is so wrapped sentinels still match")
			}
		}
	}
}

// checkErrorfWrap flags fmt.Errorf calls whose non-%w verbs consume
// error operands.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.FullName() != "fmt.Errorf" || len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	verbs, ok := formatVerbs(constant.StringVal(tv.Value))
	if !ok {
		return
	}
	operands := call.Args[1:]
	for _, v := range verbs {
		if v.verb == 'w' || v.arg >= len(operands) {
			continue
		}
		if errOperand(pass, operands[v.arg]) {
			pass.Reportf(operands[v.arg].Pos(), "error flattened by %%%c; wrap with %%w so errors.Is and awserr classification keep working", v.verb)
		}
	}
}

// verbUse pairs one conversion verb with the operand index it consumes.
type verbUse struct {
	arg  int
	verb rune
}

// formatVerbs scans a Printf-style format string and maps each
// argument-consuming verb to its operand index. Formats using explicit
// argument indexes (%[1]v) return ok=false and are skipped rather than
// guessed at.
func formatVerbs(format string) (uses []verbUse, ok bool) {
	arg := 0
	runes := []rune(format)
	for i := 0; i < len(runes); i++ {
		if runes[i] != '%' {
			continue
		}
		i++
		// Flags, width and precision; '*' consumes an operand.
		for i < len(runes) {
			c := runes[i]
			if c == '[' {
				return nil, false
			}
			if c == '*' {
				arg++
				i++
				continue
			}
			if c == '+' || c == '-' || c == '#' || c == ' ' || c == '0' || c == '.' || (c >= '0' && c <= '9') {
				i++
				continue
			}
			break
		}
		if i >= len(runes) {
			break
		}
		if runes[i] == '%' {
			continue
		}
		uses = append(uses, verbUse{arg: arg, verb: runes[i]})
		arg++
	}
	return uses, true
}
