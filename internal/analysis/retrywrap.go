package analysis

import (
	"go/ast"
	"strings"
)

// Retrywrap reports raw cloud mutations outside retry.Retrier.Do in
// store write paths.
//
// PR 4's resilience argument rests on every outer cloud write riding
// the shared retry policy: transient faults back off with jitter under
// an attempt and wait budget, the attempts are metered, and the fault
// sweep proves each wrapped site idempotent under re-apply. A mutation
// issued directly on an S3/SimpleDB/SQS service bypasses all of that —
// one injected throttle fails the whole write. The check applies to the
// store protocol packages (internal/core/...); internal/core/sweep is
// exempt because corrupting state through raw cloud access is exactly
// its job. Read paths are unrestricted, and deliberate raw mutations
// (e.g. one-shot setup guarded elsewhere) carry a per-call-site
// //passvet:allow retrywrap directive with the reason.
var Retrywrap = &Analyzer{
	Name: "retrywrap",
	Doc:  "raw S3/SimpleDB/SQS mutations in store write paths must run inside retry.Retrier.Do",
	Run:  runRetrywrap,
}

// retrierDo is the wrapper method every outer cloud write must run
// under.
const retrierDo = "(*" + modulePath + "/internal/cloud/retry.Retrier).Do"

// cloudMutations lists the simulated services' state-changing methods
// by full name. Reads (Get, Head, List, Select, GetAttributes,
// ReceiveMessage, ...) are deliberately absent: a lost read response is
// re-driven by the protocol, not the retry policy.
var cloudMutations = func() map[string]bool {
	m := map[string]bool{}
	for svc, methods := range map[string][]string{
		"s3":  {"Put", "Copy", "Delete", "CreateBucket", "DeleteBucket"},
		"sdb": {"PutAttributes", "BatchPutAttributes", "DeleteAttributes", "CreateDomain", "DeleteDomain"},
		"sqs": {"SendMessage", "DeleteMessage", "CreateQueue", "DeleteQueue"},
	} {
		for _, name := range methods {
			m["(*"+modulePath+"/internal/cloud/"+svc+".Service)."+name] = true
		}
	}
	return m
}()

// runRetrywrap flags unwrapped mutations in scope.
func runRetrywrap(pass *Pass) error {
	path := pass.Pkg.Path()
	storeScope := strings.HasPrefix(path, modulePath+"/internal/core")
	sweep := path == modulePath+"/internal/core/sweep" || strings.HasPrefix(path, modulePath+"/internal/core/sweep/")
	if !storeScope || sweep {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || !cloudMutations[fn.FullName()] {
				return true
			}
			if !wrappedByRetrier(pass, stack) {
				pass.Reportf(call.Pos(), "raw %s mutation outside retry.Retrier.Do; wrap it so transient faults back off under the shared policy (or annotate with %s retrywrap -- <reason>)", fn.Name(), allowPrefix)
			}
			return true
		})
	}
	return nil
}

// wrappedByRetrier reports whether the node whose ancestor stack is
// given sits inside a function literal passed directly to
// retry.Retrier.Do.
func wrappedByRetrier(pass *Pass, stack []ast.Node) bool {
	for i := len(stack) - 1; i > 0; i-- {
		lit, ok := stack[i].(*ast.FuncLit)
		if !ok {
			continue
		}
		call, ok := stack[i-1].(*ast.CallExpr)
		if !ok {
			continue
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.FullName() != retrierDo {
			continue
		}
		for _, arg := range call.Args {
			if ast.Unparen(arg) == lit {
				return true
			}
		}
	}
	return false
}
