// Package retrywrap is a golden fixture for the retrywrap analyzer:
// raw cloud mutations in store write paths are flagged unless they run
// inside retry.Retrier.Do or carry a per-call-site allow directive;
// reads are unrestricted.
package retrywrap

import (
	"context"

	"passcloud/internal/cloud/retry"
	"passcloud/internal/cloud/s3"
	"passcloud/internal/cloud/sdb"
	"passcloud/internal/cloud/sqs"
)

// bad issues mutations directly against the services.
func bad(svcS3 *s3.Service, svcSDB *sdb.Service, svcSQS *sqs.Service) {
	_ = svcS3.Put("b", "k", nil, nil)                   // want `raw Put mutation outside retry\.Retrier\.Do`
	_ = svcS3.Delete("b", "k")                          // want `raw Delete mutation outside retry\.Retrier\.Do`
	_ = svcSDB.PutAttributes("d", "i", nil)             // want `raw PutAttributes mutation outside retry\.Retrier\.Do`
	_, _ = svcSQS.SendMessage("q", "body")              // want `raw SendMessage mutation outside retry\.Retrier\.Do`
	_ = svcSQS.DeleteMessage("q", "receipt")            // want `raw DeleteMessage mutation outside retry\.Retrier\.Do`
	_ = svcSDB.BatchPutAttributes("d", []sdb.BatchItem{ // want `raw BatchPutAttributes mutation outside retry\.Retrier\.Do`
		{Name: "i"},
	})
}

// good wraps every mutation in the shared retry policy; reads need no
// wrapper, and the read/migration escape hatch is an explicit
// per-call-site directive.
func good(ctx context.Context, r *retry.Retrier, svcS3 *s3.Service, svcSDB *sdb.Service) error {
	if err := r.Do(ctx, "fix/put", func() error {
		return svcS3.Put("b", "k", nil, nil)
	}); err != nil {
		return err
	}
	if err := r.Do(ctx, "fix/batch-put", func() error {
		if err := svcSDB.PutAttributes("d", "i", nil); err != nil {
			return err
		}
		return svcSDB.DeleteAttributes("d", "i", nil)
	}); err != nil {
		return err
	}
	_, _ = svcS3.ListAll("b", "prefix") // reads are not restricted
	_, _, _ = svcSDB.GetAttributes("d", "i")
	//passvet:allow retrywrap -- fixture: deliberate one-shot mutation on a path with its own recovery story
	return svcS3.Delete("b", "stale")
}
