// Package fix is a golden fixture proving the retrywrap analyzer
// exempts internal/core/sweep/...: the fault sweep corrupts state
// through raw cloud access by design, so nothing here is flagged even
// though every call is an unwrapped mutation.
package fix

import "passcloud/internal/cloud/s3"

// corrupt mutates raw state the way the sweep's corruption fault class
// does. No want comments — a finding in this package fails the fixture.
func corrupt(svc *s3.Service) {
	_ = svc.Put("b", "k", []byte{0xff}, nil)
	_ = svc.Delete("b", "k")
}
