// Package simclock is a golden fixture for the simclock analyzer: wall
// clock origination is flagged, sim.Clock use and time arithmetic are
// not, and an allow directive suppresses a deliberate exception.
package simclock

import (
	"time"

	"passcloud/internal/sim"
)

// bad reads and waits on the host clock.
func bad() {
	_ = time.Now()                      // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond)        // want `time\.Sleep reads the wall clock`
	<-time.After(time.Millisecond)      // want `time\.After reads the wall clock`
	_ = time.NewTimer(time.Millisecond) // want `time\.NewTimer reads the wall clock`
	_ = time.Since(sim.Epoch)           // want `time\.Since reads the wall clock`
}

// good takes time from the injected clock; arithmetic on obtained
// values — including the time.Time.After method — is unrestricted.
func good(clock sim.Clock) bool {
	now := clock.Now()
	deadline := now.Add(30 * time.Second)
	return deadline.After(now) || now.Sub(sim.Epoch) > 0
}

// allowed demonstrates the per-call-site escape hatch.
func allowed() time.Time {
	//passvet:allow simclock -- fixture: wall time is the measurement here
	return time.Now()
}
