// Package meterkey is a golden fixture for the meterkey analyzer:
// billing meter keys and retry op-site names must be constants — or
// parameters of functions whose own call sites pass constants, the
// forwarding shape the services use for their shared fault-check
// helpers. Keys assembled from anything else (locals, loop variables,
// struct fields) are flagged where they are built.
package meterkey

import (
	"context"

	"passcloud/internal/cloud/billing"
	"passcloud/internal/cloud/retry"
)

// opPrefix is a package constant; constant concatenation stays static.
const opPrefix = "fix/"

// bad builds keys at run time from non-parameter values.
func bad(ctx context.Context, m *billing.Meter, r *retry.Retrier, shards []string) {
	for _, shard := range shards {
		m.Op(billing.S3, "put-"+shard, billing.TierMutation) // want `meter key is built dynamically`
		m.OpErr(billing.S3, shard, billing.TierMutation)     // want `meter key is built dynamically`
	}
	key := opPrefix + shards[0]
	_ = r.Do(ctx, key, func() error { return nil }) // want `meter key is built dynamically`
}

// good uses literals and constants.
func good(ctx context.Context, m *billing.Meter, r *retry.Retrier) {
	m.Op(billing.S3, "PUT", billing.TierMutation)
	m.Op(billing.SimpleDB, opPrefix+"select", billing.TierBox)
	m.OpErr(billing.SQS, "SendMessage", billing.TierMessage)
	_ = r.Do(ctx, opPrefix+"flush", func() error { return nil })
}

// forward is a key forwarder: its op parameter becomes a meter key, so
// every call site of forward is held to the static-key rule itself —
// the shape the services' checkFault helpers use.
func forward(m *billing.Meter, op string) {
	m.Op(billing.SimpleDB, op, billing.TierBox)
	m.OpErr(billing.SimpleDB, op+"-late", billing.TierBox)
}

// callers shows the rule following the key to the forwarder's call
// sites: constants pass, a locally assembled key is flagged there.
func callers(m *billing.Meter, items []string) {
	forward(m, "GetAttributes")
	forward(m, opPrefix+"Select")
	for _, item := range items {
		forward(m, "item-"+item) // want `meter key is built dynamically`
	}
}
