// Package errsentinel is a golden fixture for the errsentinel analyzer:
// identity comparisons of errors and non-%w wrapping verbs are flagged;
// errors.Is, %w wrapping and nil checks are not.
package errsentinel

import (
	"errors"
	"fmt"

	"passcloud/internal/cloud/retry"
)

// ErrLocal is a package sentinel.
var ErrLocal = errors.New("fixture: local sentinel")

// bad compares and wraps in the classification-stripping ways.
func bad(err error) error {
	if err == ErrLocal { // want `error compared with ==`
		return nil
	}
	if err != retry.ErrExhausted { // want `error compared with !=`
		return nil
	}
	switch err {
	case ErrLocal: // want `error matched by switch case identity`
		return nil
	}
	return fmt.Errorf("load failed: %v", err) // want `error flattened by %v`
}

// badFlatten loses the chain through %s and mixed verbs.
func badFlatten(err error) error {
	_ = fmt.Errorf("shard %d: %s", 4, err)                    // want `error flattened by %s`
	return fmt.Errorf("%w while draining: %v", ErrLocal, err) // want `error flattened by %v`
}

// good keeps the errors.Is chain intact.
func good(err error) error {
	if err == nil || errors.Is(err, ErrLocal) {
		return nil
	}
	if errors.Is(err, retry.ErrExhausted) {
		return fmt.Errorf("gave up: %w", err)
	}
	return fmt.Errorf("%w: %w", ErrLocal, err)
}
