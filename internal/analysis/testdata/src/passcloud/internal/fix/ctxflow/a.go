// Package ctxflow is a golden fixture for the ctxflow analyzer: context
// roots minted in library code are flagged; flowing contexts are not.
package ctxflow

import "context"

// bad mints context roots mid-library.
func bad() {
	ctx := context.Background() // want `context\.Background in library code`
	_ = ctx
	use(context.TODO()) // want `context\.TODO in library code`
}

// good receives its context from the caller, as the API contract
// requires, and derives children from it freely.
func good(ctx context.Context) {
	child, cancel := context.WithCancel(ctx)
	defer cancel()
	use(child)
	use(context.WithValue(ctx, ctxKey{}, "v"))
}

// ctxKey is a private context key type.
type ctxKey struct{}

// use sinks a context.
func use(context.Context) {}
