package ctxflow

import "context"

// testHelper may mint context roots: tests are the process entry point
// of their run, so the ctxflow analyzer exempts _test.go files. No
// want comments here — a finding in this file fails the fixture.
func testHelper() {
	use(context.Background())
	use(context.TODO())
}
