// Package fixscope is a golden fixture proving the library-scope
// predicate: cmd/... sits at the process boundary, so ctxflow and
// simclock leave its context roots and wall clocks alone. No want
// comments — any finding here fails the fixture.
package fixscope

import (
	"context"
	"time"
)

// entry does what a command entry point legitimately does.
func entry() {
	ctx := context.Background()
	_ = ctx
	_ = time.Now()
	time.Sleep(0)
}
