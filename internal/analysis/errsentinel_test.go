package analysis_test

import (
	"testing"

	"passcloud/internal/analysis"
	"passcloud/internal/analysis/analysistest"
)

// TestErrsentinelFixture proves errsentinel catches ==/!= and switch
// identity matches between errors and non-%w wrapping verbs, while
// errors.Is, %w (including multiple %w) and nil checks pass.
func TestErrsentinelFixture(t *testing.T) {
	analysistest.Run(t, analysis.Errsentinel, "passcloud/internal/fix/errsentinel")
}
