// Package analysis is the repository's static-analysis suite: five
// analyzers that encode invariants the store's correctness arguments
// depend on, plus the driver that runs them over type-checked packages.
// Command passvet (cmd/passvet) is the command-line front end; the
// package's own tests run every analyzer over the whole tree so the
// invariants hold under plain `go test ./...`, not just in CI.
//
// The analyzers:
//
//   - ctxflow: no context.Background/context.TODO in library code —
//     contexts must flow in from the public API so cancellation reaches
//     every cloud call (test files exempt).
//   - simclock: no wall-clock time (time.Now, time.Sleep, timers) in
//     sim-driven packages — all time must come from sim.Clock, or seeded
//     sweeps (SWEEP_SEEDS) stop replaying deterministically.
//   - retrywrap: raw S3/SimpleDB/SQS mutations in store write paths must
//     run inside retry.Retrier.Do, the shared resilience policy.
//   - errsentinel: sentinel errors compare with errors.Is, and error
//     causes wrap with %w — == comparisons and %v flattening strip the
//     awserr classification retry and recovery dispatch on.
//   - meterkey: billing meter keys (and retry op-site names) must be
//     string literals, constants, or literal-fed parameters, so the
//     benchdiff gate can never silently miss a dynamically built key.
//
// The API mirrors the shapes of golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) so the analyzers could be ported to the
// upstream multichecker verbatim, but it is implemented self-contained
// on the standard library: the module ships no third-party
// dependencies, and the loader (Load) gets its type information from
// `go list -export` plus the gc export-data importer instead of
// go/packages.
//
// Intentional exceptions are annotated at the call site with
//
//	//passvet:allow <analyzer> -- <reason>
//
// which suppresses that analyzer's findings on the same and the next
// line. The reason is mandatory; a malformed or unknown directive is
// itself reported, so stale annotations cannot accumulate silently.
// See ARCHITECTURE.md § "Static analysis" for what each invariant
// protects.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer so checks written here port
// to the upstream driver unchanged.
type Analyzer struct {
	// Name identifies the analyzer in reports and in
	// //passvet:allow directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run applies the check to one package, reporting findings through
	// the Pass.
	Run func(*Pass) error
}

// A Pass provides one analyzer run with a single type-checked package
// and a sink for its findings.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions for every file in the load.
	Fset *token.FileSet
	// Files are the package's parsed source files, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's expression, definition, use
	// and selection records for Files.
	TypesInfo *types.Info

	report func(Finding)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Finding is one reported violation, resolved to a file position.
type Finding struct {
	// Pos locates the offending expression.
	Pos token.Position
	// Analyzer names the check that fired ("passvet" for driver-level
	// findings such as malformed allow directives).
	Analyzer string
	// Message states the violation and the invariant it breaks.
	Message string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Ctxflow, Simclock, Retrywrap, Errsentinel, Meterkey}
}

// Run applies each analyzer to each package and returns the surviving
// findings sorted by position: //passvet:allow directives are applied,
// and malformed or unknown directives are reported under the "passvet"
// name so annotations stay well-formed. Directive names are validated
// against the full suite, not just the analyzers being run, so a
// narrowed run (passvet -only) never misreports a valid annotation.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []Finding
	for _, pkg := range pkgs {
		dirs, bad := directives(pkg, known)
		out = append(out, bad...)
		for _, a := range analyzers {
			var raw []Finding
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				report:    func(f Finding) { raw = append(raw, f) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.PkgPath, err)
			}
			for _, f := range raw {
				if !dirs.suppresses(a.Name, f.Pos) {
					out = append(out, f)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// allowPrefix introduces a suppression directive comment.
const allowPrefix = "//passvet:allow"

// allowSet indexes allow directives by file, analyzer and line.
type allowSet map[string]map[string]map[int]bool

// suppresses reports whether a directive for analyzer name covers pos.
// A directive covers its own line and the next, so it can sit either at
// the end of the offending line or on its own line above it.
func (s allowSet) suppresses(name string, pos token.Position) bool {
	lines := s[pos.Filename][name]
	return lines[pos.Line] || lines[pos.Line-1]
}

// directives scans a package's comments for //passvet:allow
// annotations. Malformed directives — unknown analyzer, missing
// "-- reason" — come back as findings so they fail the zero-findings
// gate instead of silently suppressing nothing.
func directives(pkg *Package, known map[string]bool) (allowSet, []Finding) {
	set := allowSet{}
	var bad []Finding
	report := func(pos token.Position, format string, args ...any) {
		bad = append(bad, Finding{Pos: pos, Analyzer: "passvet", Message: fmt.Sprintf(format, args...)})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest == "" || (rest[0] != ' ' && rest[0] != '\t') {
					report(pos, "malformed directive: want %q", allowPrefix+" <analyzer> -- <reason>")
					continue
				}
				name, reason, ok := strings.Cut(strings.TrimSpace(rest), "--")
				name = strings.TrimSpace(name)
				if !ok || strings.TrimSpace(reason) == "" {
					report(pos, "allow directive for %q needs a reason: %q", name, allowPrefix+" "+name+" -- <reason>")
					continue
				}
				if !known[name] {
					report(pos, "allow directive names unknown analyzer %q", name)
					continue
				}
				file := set[pos.Filename]
				if file == nil {
					file = map[string]map[int]bool{}
					set[pos.Filename] = file
				}
				lines := file[name]
				if lines == nil {
					lines = map[int]bool{}
					file[name] = lines
				}
				lines[pos.Line] = true
			}
		}
	}
	return set, bad
}
