package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// inspectStack walks every node of f depth-first, passing fn the node
// and its ancestor stack (outermost first, the node itself excluded).
// Returning false prunes the node's subtree.
func inspectStack(f *ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// calleeFunc resolves the function or method a call expression invokes,
// or nil when the callee is not a declared function (a function-typed
// variable, a type conversion, a builtin).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// isTestFile reports whether the file a pass position falls in is a
// _test.go file.
func isTestFile(p *Pass, f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// modulePath is the main module this suite's rules are written for:
// scope predicates and the mutation/retry method tables below name its
// packages explicitly.
const modulePath = "passcloud"

// inLibrary reports whether pkgPath is library code: the module root
// package or anything under internal/. Commands (cmd/...) and runnable
// examples (examples/...) sit at the process boundary where roots like
// context.Background and wall clocks legitimately originate.
func inLibrary(pkgPath string) bool {
	return pkgPath == modulePath || strings.HasPrefix(pkgPath, modulePath+"/internal/")
}

// errorIface is the universe error interface, for implements checks.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t implements error.
func implementsError(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}
