package pass

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"passcloud/internal/prov"
)

// landedErr mimics core.PartialWriteError through the landedReporter
// contract without importing core (pass must stay import-cycle-free).
type landedErr struct {
	landed []prov.Ref
}

func (e *landedErr) Error() string          { return fmt.Sprintf("half-landed: %v", e.landed) }
func (e *landedErr) LandedRefs() []prov.Ref { return e.landed }

// TestFlushPartialRecoveryRetriesOnlyUnlanded: events the store reports as
// landed are marked persistent despite the failed flush; the next flush
// re-sends only the remainder.
func TestFlushPartialRecoveryRetriesOnlyUnlanded(t *testing.T) {
	ctx := context.Background()
	var batches [][]prov.Ref
	var failWith error
	flush := func(ctx context.Context, batch []FlushEvent) error {
		refs := make([]prov.Ref, len(batch))
		for i, ev := range batch {
			refs[i] = ev.Ref
		}
		batches = append(batches, refs)
		return failWith
	}
	sys := NewSystem(Config{Flush: flush})

	p := sys.Exec(nil, ExecSpec{Name: "tool"})
	if err := sys.Write(p, "/a", []byte("a"), Truncate); err != nil {
		t.Fatal(err)
	}
	if err := sys.Read(p, "/a"); err != nil { // freezes /a
		t.Fatal(err)
	}
	if err := sys.Write(p, "/b", []byte("b"), Truncate); err != nil {
		t.Fatal(err)
	}

	// First close fails but reports /a (and the tool's first version, its
	// ancestor) landed.
	aRef := prov.Ref{Object: "/a", Version: 0}
	failWith = &landedErr{landed: []prov.Ref{aRef, {Object: "proc/1/tool", Version: 0}}}
	if err := sys.Close(ctx, p, "/b"); err == nil {
		t.Fatal("expected the close to fail")
	}
	first := batches[len(batches)-1]

	failWith = nil
	if err := sys.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	retry := batches[len(batches)-1]
	if len(retry) >= len(first) {
		t.Fatalf("retry re-sent %d of %d events", len(retry), len(first))
	}
	for _, ref := range retry {
		if ref == aRef {
			t.Fatalf("landed event %s was re-sent", ref)
		}
	}
	// /b must be in the retry — it did not land.
	found := false
	for _, ref := range retry {
		if ref.Object == "/b" {
			found = true
		}
	}
	if !found {
		t.Fatalf("unlanded event /b missing from retry batch %v", retry)
	}
}

// TestFlushPartialRecoveryIgnoresForeignRefs: a buggy or malicious store
// reporting refs outside the batch must not corrupt the pending set.
func TestFlushPartialRecoveryIgnoresForeignRefs(t *testing.T) {
	ctx := context.Background()
	calls := 0
	flush := func(ctx context.Context, batch []FlushEvent) error {
		calls++
		if calls == 1 {
			return &landedErr{landed: []prov.Ref{{Object: "/unrelated", Version: 3}}}
		}
		return nil
	}
	sys := NewSystem(Config{Flush: flush})
	if err := sys.Ingest(ctx, "/x", []byte("x")); err == nil {
		t.Fatal("expected first flush to fail")
	}
	if err := sys.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("flush called %d times, want 2 (the real event must be retried)", calls)
	}
}

// TestFlushErrorWithoutLandedKeepsEverythingPending: a plain error changes
// nothing — the whole batch retries, as before.
func TestFlushErrorWithoutLandedKeepsEverythingPending(t *testing.T) {
	ctx := context.Background()
	var sizes []int
	fail := errors.New("boom")
	var failWith error = fail
	flush := func(ctx context.Context, batch []FlushEvent) error {
		sizes = append(sizes, len(batch))
		return failWith
	}
	sys := NewSystem(Config{Flush: flush})
	if err := sys.Ingest(ctx, "/y", []byte("y")); !errors.Is(err, fail) {
		t.Fatalf("expected the flush error, got %v", err)
	}
	failWith = nil
	if err := sys.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 2 || sizes[0] != sizes[1] {
		t.Fatalf("batch sizes %v; the full batch must be retried", sizes)
	}
}
