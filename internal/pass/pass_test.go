package pass

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"passcloud/internal/prov"
)

// ctx is the shared background context for test syscalls.
var ctx = context.Background()

// collector accumulates flush events and checks causal ordering on the fly.
type collector struct {
	events  []FlushEvent
	calls   int // number of Flush invocations (batches)
	flushed map[prov.Ref]bool
	graph   *prov.Graph
	// violation is set if an event arrived before one of its ancestors.
	violation *prov.Ref
	failAfter int // inject a flush error after this many events; 0 disables
}

func newCollector() *collector {
	return &collector{flushed: make(map[prov.Ref]bool), graph: prov.NewGraph()}
}

func (c *collector) flush(_ context.Context, batch []FlushEvent) error {
	c.calls++
	for _, ev := range batch {
		if c.failAfter > 0 && len(c.events) >= c.failAfter {
			return errors.New("injected flush failure")
		}
		for _, r := range ev.Records {
			if r.Attr == prov.AttrInput && !c.flushed[r.Value.Ref] {
				bad := r.Value.Ref
				c.violation = &bad
			}
		}
		c.events = append(c.events, ev)
		c.flushed[ev.Ref] = true
		c.graph.AddAll(ev.Records)
	}
	return nil
}

func (c *collector) refs() map[prov.Ref]FlushEvent {
	out := make(map[prov.Ref]FlushEvent, len(c.events))
	for _, ev := range c.events {
		out[ev.Ref] = ev
	}
	return out
}

func newTestSystem(t *testing.T) (*System, *collector) {
	t.Helper()
	c := newCollector()
	return NewSystem(Config{Flush: c.flush}), c
}

func TestReadWriteCloseProducesPaperRecords(t *testing.T) {
	sys, c := newTestSystem(t)
	if err := sys.Ingest(ctx, "/in.dat", []byte("input data")); err != nil {
		t.Fatal(err)
	}
	p := sys.Exec(nil, ExecSpec{Name: "tool", Argv: []string{"tool", "-x"}})
	if err := sys.Read(p, "/in.dat"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Write(p, "/out.dat", []byte("result"), Truncate); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(ctx, p, "/out.dat"); err != nil {
		t.Fatal(err)
	}

	events := c.refs()
	out, ok := events[prov.Ref{Object: "/out.dat", Version: 0}]
	if !ok {
		t.Fatalf("output never flushed; events: %v", c.events)
	}
	if string(out.Data) != "result" {
		t.Fatalf("output data = %q", out.Data)
	}
	// The written file depends upon the process that wrote it.
	if got := c.graph.Inputs(out.Ref); len(got) != 1 || got[0] != p.Ref() {
		t.Fatalf("output inputs = %v, want [%v]", got, p.Ref())
	}
	// The process depends upon the file being read.
	procIn := c.graph.Inputs(p.Ref())
	if len(procIn) != 1 || procIn[0] != (prov.Ref{Object: "/in.dat", Version: 0}) {
		t.Fatalf("process inputs = %v", procIn)
	}
	// Process flush carries argv, pid, kernel, name, type.
	procEv := events[p.Ref()]
	attrs := map[string]string{}
	for _, r := range procEv.Records {
		if r.Value.Kind == prov.KindString {
			attrs[r.Attr] = r.Value.Str
		}
	}
	if attrs[prov.AttrName] != "tool" || attrs[prov.AttrArgv] != "tool -x" ||
		attrs[prov.AttrType] != prov.TypeProcess || attrs[prov.AttrKernel] == "" {
		t.Fatalf("process records = %v", procEv.Records)
	}
}

func TestCausalOrderingAncestorsFlushFirst(t *testing.T) {
	sys, c := newTestSystem(t)
	if err := sys.Ingest(ctx, "/a", []byte("a")); err != nil {
		t.Fatal(err)
	}
	// Chain: /a -> p1 -> /b -> p2 -> /c, closing only /c's ancestors late.
	p1 := sys.Exec(nil, ExecSpec{Name: "stage1"})
	must(t, sys.Read(p1, "/a"))
	must(t, sys.Write(p1, "/b", []byte("b"), Truncate))
	p2 := sys.Exec(nil, ExecSpec{Name: "stage2"})
	must(t, sys.Read(p2, "/b")) // freezes /b without an explicit close
	must(t, sys.Write(p2, "/c", []byte("c"), Truncate))
	must(t, sys.Close(ctx, p2, "/c"))

	if c.violation != nil {
		t.Fatalf("causal ordering violated: %v flushed after a descendant", *c.violation)
	}
	// Everything reachable from /c must be flushed.
	for _, want := range []prov.Ref{
		{Object: "/a", Version: 0},
		{Object: "/b", Version: 0},
		{Object: "/c", Version: 0},
		p1.Ref(), p2.Ref(),
	} {
		if !c.flushed[want] {
			t.Fatalf("ancestor %v not flushed", want)
		}
	}
	if missing := c.graph.MissingAncestors(); len(missing) != 0 {
		t.Fatalf("graph has dangling ancestors: %v", missing)
	}
}

func TestWriteAfterFreezeCreatesNewVersion(t *testing.T) {
	sys, c := newTestSystem(t)
	p := sys.Exec(nil, ExecSpec{Name: "writer"})
	must(t, sys.Write(p, "/f", []byte("v0"), Truncate))
	must(t, sys.Close(ctx, p, "/f"))
	must(t, sys.Write(p, "/f", []byte("v1"), Truncate))
	must(t, sys.Close(ctx, p, "/f"))

	v0 := prov.Ref{Object: "/f", Version: 0}
	v1 := prov.Ref{Object: "/f", Version: 1}
	events := c.refs()
	if _, ok := events[v0]; !ok {
		t.Fatal("v0 missing")
	}
	ev1, ok := events[v1]
	if !ok {
		t.Fatal("v1 missing; write after close did not version")
	}
	if string(ev1.Data) != "v1" {
		t.Fatalf("v1 data = %q", ev1.Data)
	}
	// Truncating write: v1 does not depend on v0 (content replaced), only
	// on the writer.
	if in := c.graph.Inputs(v1); len(in) != 1 || in[0].Object != p.Ref().Object {
		t.Fatalf("v1 inputs = %v", in)
	}
}

func TestAppendVersionDependsOnPrevious(t *testing.T) {
	sys, c := newTestSystem(t)
	p := sys.Exec(nil, ExecSpec{Name: "logger"})
	must(t, sys.Write(p, "/log", []byte("one"), Append))
	must(t, sys.Close(ctx, p, "/log"))
	must(t, sys.Write(p, "/log", []byte("two"), Append))
	must(t, sys.Close(ctx, p, "/log"))

	v1 := prov.Ref{Object: "/log", Version: 1}
	ev := c.refs()[v1]
	if string(ev.Data) != "onetwo" {
		t.Fatalf("append content = %q", ev.Data)
	}
	inputs := c.graph.Inputs(v1)
	wantPrev := prov.Ref{Object: "/log", Version: 0}
	foundPrev := false
	for _, in := range inputs {
		if in == wantPrev {
			foundPrev = true
		}
	}
	if !foundPrev {
		t.Fatalf("append version inputs %v missing previous version", inputs)
	}
}

func TestCycleAvoidanceProcessVersioning(t *testing.T) {
	// p writes f; q reads f and writes g; p reads g. Without process
	// versioning this creates the cycle the paper cites from PASS.
	sys, c := newTestSystem(t)
	p := sys.Exec(nil, ExecSpec{Name: "p"})
	q := sys.Exec(nil, ExecSpec{Name: "q"})
	must(t, sys.Write(p, "/f", []byte("f"), Truncate))
	must(t, sys.Close(ctx, p, "/f"))
	must(t, sys.Read(q, "/f"))
	must(t, sys.Write(q, "/g", []byte("g"), Truncate))
	must(t, sys.Close(ctx, q, "/g"))
	must(t, sys.Read(p, "/g")) // p must become version 1 here
	must(t, sys.Write(p, "/h", []byte("h"), Truncate))
	must(t, sys.Close(ctx, p, "/h"))

	if p.Ref().Version != 1 {
		t.Fatalf("p version = %d, want 1 after read-following-write", p.Ref().Version)
	}
	if !c.graph.IsAcyclic() {
		t.Fatal("provenance graph contains a cycle")
	}
	// p:1 must depend on p:0.
	inputs := c.graph.Inputs(p.Ref())
	foundSelf := false
	for _, in := range inputs {
		if in.Object == p.Ref().Object && in.Version == 0 {
			foundSelf = true
		}
	}
	if !foundSelf {
		t.Fatalf("p:1 inputs %v missing p:0", inputs)
	}
}

func TestFreezeOnReadOfDirtyFile(t *testing.T) {
	sys, c := newTestSystem(t)
	w := sys.Exec(nil, ExecSpec{Name: "w"})
	r := sys.Exec(nil, ExecSpec{Name: "r"})
	must(t, sys.Write(w, "/shared", []byte("data"), Truncate))
	must(t, sys.Read(r, "/shared")) // freezes version 0
	must(t, sys.Write(w, "/shared", []byte("more"), Truncate))
	must(t, sys.Write(r, "/out", []byte("out"), Truncate))
	must(t, sys.Close(ctx, r, "/out"))
	must(t, sys.Close(ctx, w, "/shared"))

	// r depends on version 0, not the later content.
	rIn := c.graph.Inputs(r.Ref())
	want := prov.Ref{Object: "/shared", Version: 0}
	found := false
	for _, in := range rIn {
		if in == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("reader inputs %v missing %v", rIn, want)
	}
	// The second write landed in version 1.
	if _, ok := c.refs()[prov.Ref{Object: "/shared", Version: 1}]; !ok {
		t.Fatal("second write did not create version 1")
	}
	if !c.graph.IsAcyclic() {
		t.Fatal("cycle created by freeze-on-read scenario")
	}
}

func TestDifferentWriterForcesVersion(t *testing.T) {
	sys, c := newTestSystem(t)
	a := sys.Exec(nil, ExecSpec{Name: "a"})
	b := sys.Exec(nil, ExecSpec{Name: "b"})
	must(t, sys.Write(a, "/f", []byte("from-a"), Truncate))
	must(t, sys.Write(b, "/f", []byte("from-b"), Truncate))
	must(t, sys.Close(ctx, b, "/f"))

	if _, ok := c.refs()[prov.Ref{Object: "/f", Version: 1}]; !ok {
		t.Fatal("writer change did not version the file")
	}
	if c.violation != nil {
		t.Fatalf("causal violation: %v", *c.violation)
	}
}

func TestExecLineage(t *testing.T) {
	sys, c := newTestSystem(t)
	parent := sys.Exec(nil, ExecSpec{Name: "make"})
	child := sys.Exec(parent, ExecSpec{Name: "cc"})
	must(t, sys.Write(child, "/o", []byte("obj"), Truncate))
	must(t, sys.Close(ctx, child, "/o"))

	childIn := c.graph.Inputs(child.Ref())
	if len(childIn) != 1 || childIn[0] != parent.Ref() {
		t.Fatalf("child inputs = %v, want parent %v", childIn, parent.Ref())
	}
	if !c.flushed[parent.Ref()] {
		t.Fatal("parent provenance not flushed with descendant")
	}
}

func TestPipeRelatesProcesses(t *testing.T) {
	sys, c := newTestSystem(t)
	from := sys.Exec(nil, ExecSpec{Name: "gen"})
	to := sys.Exec(nil, ExecSpec{Name: "sink"})
	must(t, sys.Pipe(from, to))
	must(t, sys.Write(to, "/out", []byte("x"), Truncate))
	must(t, sys.Close(ctx, to, "/out"))

	toIn := c.graph.Inputs(to.Ref())
	if len(toIn) != 1 {
		t.Fatalf("to inputs = %v", toIn)
	}
	pipeRef := toIn[0]
	pipeIn := c.graph.Inputs(pipeRef)
	if len(pipeIn) != 1 || pipeIn[0] != from.Ref() {
		t.Fatalf("pipe inputs = %v, want [%v]", pipeIn, from.Ref())
	}
	if !c.flushed[from.Ref()] {
		t.Fatal("pipe source not flushed with descendant")
	}
	if c.violation != nil {
		t.Fatalf("causal violation: %v", *c.violation)
	}
}

func TestFlushedProcessGainingInputBumps(t *testing.T) {
	// A process whose version was flushed via exec lineage (without ever
	// writing) must still version before taking new inputs.
	sys, c := newTestSystem(t)
	must(t, sys.Ingest(ctx, "/in", []byte("x")))
	parent := sys.Exec(nil, ExecSpec{Name: "shell"})
	child := sys.Exec(parent, ExecSpec{Name: "tool"})
	must(t, sys.Write(child, "/o1", []byte("1"), Truncate))
	must(t, sys.Close(ctx, child, "/o1")) // flushes parent:0 as lineage ancestor
	must(t, sys.Read(parent, "/in"))      // parent:0 is flushed: must bump
	if parent.Ref().Version != 1 {
		t.Fatalf("parent version = %d, want 1", parent.Ref().Version)
	}
	must(t, sys.Write(parent, "/o2", []byte("2"), Truncate))
	must(t, sys.Close(ctx, parent, "/o2"))
	if c.violation != nil {
		t.Fatalf("causal violation: %v", *c.violation)
	}
	if !c.graph.IsAcyclic() {
		t.Fatal("cycle after flushed-process bump")
	}
}

func TestIngest(t *testing.T) {
	sys, c := newTestSystem(t)
	if err := sys.Ingest(ctx, "/dataset", []byte("census data")); err != nil {
		t.Fatal(err)
	}
	ev, ok := c.refs()[prov.Ref{Object: "/dataset", Version: 0}]
	if !ok || string(ev.Data) != "census data" {
		t.Fatalf("ingest event = %+v, ok=%v", ev, ok)
	}
	if got := c.graph.Inputs(ev.Ref); len(got) != 0 {
		t.Fatalf("ingested file has ancestry %v", got)
	}
	if err := sys.Ingest(ctx, "/dataset", []byte("again")); err == nil {
		t.Fatal("double ingest succeeded")
	}
}

func TestSyscallErrors(t *testing.T) {
	sys, _ := newTestSystem(t)
	p := sys.Exec(nil, ExecSpec{Name: "p"})
	if err := sys.Read(p, "/missing"); !errors.Is(err, ErrNoSuchFile) {
		t.Fatalf("read missing: %v", err)
	}
	if err := sys.Close(ctx, p, "/missing"); !errors.Is(err, ErrNoSuchFile) {
		t.Fatalf("close missing: %v", err)
	}
	sys.Exit(p)
	if err := sys.Read(p, "/x"); !errors.Is(err, ErrExited) {
		t.Fatalf("read after exit: %v", err)
	}
	if err := sys.Write(p, "/x", nil, Truncate); !errors.Is(err, ErrExited) {
		t.Fatalf("write after exit: %v", err)
	}
}

func TestFlushFailurePropagates(t *testing.T) {
	c := newCollector()
	c.failAfter = 2 // the first close emits two events (process, file)
	sys := NewSystem(Config{Flush: c.flush})
	p := sys.Exec(nil, ExecSpec{Name: "p"})
	must(t, sys.Write(p, "/a", []byte("a"), Truncate))
	must(t, sys.Close(ctx, p, "/a"))
	// The third event (file /b) hits the injected failure.
	must(t, sys.Write(p, "/b", []byte("b"), Truncate))
	if err := sys.Close(ctx, p, "/b"); err == nil {
		t.Fatal("flush failure did not propagate")
	}
	// The failed version stays pending; a later retry succeeds.
	c.failAfter = 0
	if err := sys.Close(ctx, p, "/b"); err != nil {
		t.Fatalf("retry after failure: %v", err)
	}
	if !c.flushed[prov.Ref{Object: "/b", Version: 0}] {
		t.Fatal("retried close did not flush")
	}
}

func TestSyncDrainsPending(t *testing.T) {
	sys, c := newTestSystem(t)
	p := sys.Exec(nil, ExecSpec{Name: "p"})
	must(t, sys.Write(p, "/f", []byte("x"), Truncate))
	// Reading from another process freezes /f but nothing closes it.
	q := sys.Exec(nil, ExecSpec{Name: "q"})
	must(t, sys.Read(q, "/f"))
	if c.flushed[prov.Ref{Object: "/f", Version: 0}] {
		t.Fatal("frozen version flushed too early")
	}
	must(t, sys.Sync(ctx))
	if !c.flushed[prov.Ref{Object: "/f", Version: 0}] {
		t.Fatal("Sync did not flush pending version")
	}
	if c.violation != nil {
		t.Fatalf("causal violation during Sync: %v", *c.violation)
	}
}

func TestEnvRecordCarriesLargePayload(t *testing.T) {
	sys, c := newTestSystem(t)
	env := make([]byte, 3000)
	for i := range env {
		env[i] = 'e'
	}
	p := sys.Exec(nil, ExecSpec{Name: "p", Env: string(env)})
	must(t, sys.Write(p, "/o", []byte("x"), Truncate))
	must(t, sys.Close(ctx, p, "/o"))
	found := false
	for _, r := range c.refs()[p.Ref()].Records {
		if r.Attr == prov.AttrEnv && len(r.Value.Str) == 3000 {
			found = true
		}
	}
	if !found {
		t.Fatal("large env record missing")
	}
}

func TestStats(t *testing.T) {
	sys, _ := newTestSystem(t)
	must(t, sys.Ingest(ctx, "/in", []byte("12345")))
	p := sys.Exec(nil, ExecSpec{Name: "p"})
	must(t, sys.Read(p, "/in"))
	must(t, sys.Write(p, "/out", []byte("123"), Truncate))
	must(t, sys.Close(ctx, p, "/out"))

	st := sys.Stats()
	if st.Processes != 1 {
		t.Fatalf("Processes = %d", st.Processes)
	}
	if st.FileVersions != 2 {
		t.Fatalf("FileVersions = %d", st.FileVersions)
	}
	if st.TransientVersions != 1 {
		t.Fatalf("TransientVersions = %d", st.TransientVersions)
	}
	if st.DataBytes != 8 {
		t.Fatalf("DataBytes = %d", st.DataBytes)
	}
	if st.Records == 0 || st.ProvBytes == 0 {
		t.Fatalf("Records/ProvBytes = %d/%d", st.Records, st.ProvBytes)
	}
}

func TestFileContentAndCurrentVersion(t *testing.T) {
	sys, _ := newTestSystem(t)
	p := sys.Exec(nil, ExecSpec{Name: "p"})
	must(t, sys.Write(p, "/f", []byte("abc"), Truncate))
	content, ok := sys.FileContent("/f")
	if !ok || string(content) != "abc" {
		t.Fatalf("FileContent = %q, %v", content, ok)
	}
	ref, ok := sys.CurrentVersion("/f")
	if !ok || ref != (prov.Ref{Object: "/f", Version: 0}) {
		t.Fatalf("CurrentVersion = %v, %v", ref, ok)
	}
	if _, ok := sys.FileContent("/missing"); ok {
		t.Fatal("FileContent of missing file")
	}
	if _, ok := sys.CurrentVersion("/missing"); ok {
		t.Fatal("CurrentVersion of missing file")
	}
}

// TestRandomWorkloadInvariants drives random syscall sequences and asserts
// the three core invariants: the graph stays acyclic, flush order respects
// causality, and flushed provenance has no dangling ancestors.
func TestRandomWorkloadInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		c := newCollector()
		sys := NewSystem(Config{Flush: c.flush})
		var procs []*Process
		paths := []string{"/f0", "/f1", "/f2", "/f3"}
		procs = append(procs, sys.Exec(nil, ExecSpec{Name: "root"}))
		for i, op := range ops {
			p := procs[int(op)%len(procs)]
			path := paths[int(op>>2)%len(paths)]
			switch op % 5 {
			case 0:
				_ = sys.Write(p, path, []byte{byte(i)}, Truncate)
			case 1:
				_ = sys.Write(p, path, []byte{byte(i)}, Append)
			case 2:
				_ = sys.Read(p, path)
			case 3:
				_ = sys.Close(ctx, p, path)
			case 4:
				if len(procs) < 6 {
					procs = append(procs, sys.Exec(p, ExecSpec{Name: fmt.Sprintf("w%d", i)}))
				}
			}
		}
		if err := sys.Sync(ctx); err != nil {
			return false
		}
		if c.violation != nil {
			t.Logf("causal violation: %v", *c.violation)
			return false
		}
		if !c.graph.IsAcyclic() {
			t.Log("cycle detected")
			return false
		}
		if missing := c.graph.MissingAncestors(); len(missing) != 0 {
			t.Logf("missing ancestors: %v", missing)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// TestCloseCoalescesAncestorChainIntoOneBatch asserts the batch-first
// contract: closing a file whose ancestry holds K unpersisted versions
// hands the storage layer ONE batch containing the whole chain (ancestors
// first), not K sequential flushes.
func TestCloseCoalescesAncestorChainIntoOneBatch(t *testing.T) {
	sys, c := newTestSystem(t)
	must(t, sys.Ingest(ctx, "/seed", []byte("s")))
	callsAfterIngest := c.calls

	// Build a five-stage pipeline whose intermediate files are frozen by
	// reads, never closed: /seed -> p1 -> /m1 -> p2 -> /m2 -> ... -> /out.
	prev := "/seed"
	var lastProc *Process
	for i := 1; i <= 4; i++ {
		p := sys.Exec(nil, ExecSpec{Name: fmt.Sprintf("stage%d", i)})
		must(t, sys.Read(p, prev))
		next := fmt.Sprintf("/m%d", i)
		must(t, sys.Write(p, next, []byte{byte(i)}, Truncate))
		prev = next
		lastProc = p
		if i < 4 {
			q := sys.Exec(nil, ExecSpec{Name: "freezer"})
			must(t, sys.Read(q, next)) // freeze without close
		}
	}
	_ = lastProc
	must(t, sys.Close(ctx, nil, prev))

	if got := c.calls - callsAfterIngest; got != 1 {
		t.Fatalf("close issued %d flush calls, want 1 coalesced batch", got)
	}
	// The one batch carried the whole unflushed chain: every intermediate
	// file and process version, ancestors before descendants.
	last := c.events[len(c.events)-1]
	if last.Ref.Object != prov.ObjectID("/m4") {
		t.Fatalf("batch tail = %v, want /m4", last.Ref)
	}
	if len(c.events) < 9 { // 4 files + 4 stages + freezers(read-only, no deps) may vary; at least files+stages
		t.Fatalf("batch too small: %d events", len(c.events))
	}
	if c.violation != nil {
		t.Fatalf("causal violation inside batch: %v", *c.violation)
	}
}
