// Package pass simulates a Provenance-Aware Storage System (paper §2.4): a
// kernel-level observer that watches the system calls of simulated processes
// and turns them into provenance records.
//
// The observation rules are PASS's:
//
//   - "when a process issues a read system call, PASS creates a provenance
//     record stating that the process depends upon the file being read";
//   - "when that process then issues a write system call, PASS creates a
//     record stating that the written file depends upon the process";
//   - transient objects (processes, pipes) carry provenance too, because
//     files relate to each other through them;
//   - objects are versioned "appropriately in order to preserve causality":
//     a process that gains a new input after producing output gets a new
//     version (depending on its prior self), and a file that is re-written
//     after being frozen gets a new version (depending on its prior
//     version). This is the classic PASS cycle-avoidance algorithm, and the
//     package's tests assert the resulting graph is always acyclic.
//
// Persistence follows the paper's usage model: when the application closes a
// file, the file's data and provenance — preceded by the provenance of every
// not-yet-persisted ancestor, preserving causal ordering — are handed to the
// storage architecture via the configured FlushFunc.
package pass

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"passcloud/internal/core/integrity"
	"passcloud/internal/prov"
)

// WriteMode says how a write treats existing content.
type WriteMode int

// Write modes.
const (
	// Truncate replaces the file's content.
	Truncate WriteMode = iota
	// Append extends it.
	Append
)

// FlushEvent is one object version becoming persistent. For files Data is
// the frozen content; for transient objects (processes, pipes) Data is nil
// and only provenance is recorded.
type FlushEvent struct {
	Ref     prov.Ref
	Type    string // prov.TypeFile, TypeProcess, TypePipe
	Data    []byte
	Records []prov.Record
}

// Persistent reports whether the event carries file data.
func (e FlushEvent) Persistent() bool { return e.Type == prov.TypeFile }

// FlushFunc receives one close's (or sync's) worth of flush events as a
// single batch, in causal order (ancestors strictly before descendants), so
// the storage layer can amortize round trips across the whole ancestor
// chain. Returning an error aborts the close that triggered the flush: no
// event of the batch is considered persistent and the next close retries
// the full batch — exactly what a client crash looks like to the storage
// layer, whose protocols are idempotent for this reason.
type FlushFunc func(ctx context.Context, batch []FlushEvent) error

// Config parameterizes a System.
type Config struct {
	// Kernel is recorded on every process (prov.AttrKernel).
	Kernel string
	// Namespace distinguishes this system's transient objects when several
	// clients share one repository: process refs become
	// "proc/<namespace>/<pid>/<name>". Empty means a single-client
	// namespace ("proc/<pid>/<name>").
	Namespace string
	// Flush receives persistence events. Required.
	Flush FlushFunc
	// DisableChain turns off tamper-evident lineage chaining: flushed
	// record sets then omit the integrity.AttrChain record each version
	// normally carries. Used by baseline comparisons (the op-count parity
	// tests); production clients leave it off.
	DisableChain bool
}

// Errors.
var (
	// ErrNoSuchFile is returned when reading a file that was never written.
	ErrNoSuchFile = errors.New("pass: no such file")
	// ErrExited is returned for syscalls by an exited process.
	ErrExited = errors.New("pass: process has exited")
)

// Process is a simulated process handle.
type Process struct {
	pid  int
	name string
	obj  *object
	done bool
}

// PID returns the simulated process ID.
func (p *Process) PID() int { return p.pid }

// Name returns the program name.
func (p *Process) Name() string { return p.name }

// Ref returns the process's current version reference.
func (p *Process) Ref() prov.Ref { return p.obj.ref }

// Records returns a snapshot of the current version's provenance records:
// the identity records plus every input edge accumulated so far. Because a
// process version's input set is final by the time it produces output
// (cycle avoidance bumps the version on any later input), the snapshot
// taken at a Write equals the record set that eventually flushes for that
// version — which is what makes tool outputs derivable from recorded
// provenance (see internal/replay).
func (p *Process) Records() []prov.Record {
	return append([]prov.Record(nil), p.obj.records...)
}

// object is the versioned state behind a file, process, or pipe.
type object struct {
	ref  prov.Ref
	typ  string
	name string // human name (path or program)
	// identity holds the descriptive records (type, name, pid, kernel,
	// argv, env) re-asserted on every version: each PASS version is a
	// complete pnode, not a delta.
	identity []prov.Record
	content  []byte // files only: current content
	dirty    bool   // files: written since last freeze
	frozen   bool   // current version has been frozen (flushed or queued)
	tainted  bool   // processes: has produced output since current version
	inputs   map[prov.Ref]bool
	records  []prov.Record
	writer   int // files: pid of last writer of the current version
}

// pendingVersion is a frozen-but-unflushed version awaiting persistence.
type pendingVersion struct {
	ref     prov.Ref
	typ     string
	data    []byte
	records []prov.Record
	inputs  []prov.Ref
}

// System is the simulated OS with PASS observation. It is not safe for
// concurrent use: PASS observes one kernel's serialized syscall stream, and
// workload generators drive it single-threaded.
type System struct {
	cfg     Config
	nextPID int
	files   map[string]*object
	procs   map[int]*Process
	// byRef indexes live objects by their current version ref, so flushing
	// can find un-stashed ancestors in O(1).
	byRef map[prov.Ref]*object

	// pending holds frozen versions not yet flushed, keyed by ref.
	pending map[prov.Ref]*pendingVersion
	// flushedSet remembers everything handed to Flush, for causality
	// assertions and stats.
	flushedSet map[prov.Ref]bool

	// chainTok memoizes each version's chain token and tips memoizes its
	// flushed subject hash. Both survive partial-batch retries and store
	// replays, so a re-flushed version re-sends byte-identical records:
	// the lineage chain extends, it never forks, and no predecessor is
	// hashed twice with different results.
	chainTok map[prov.Ref]string
	tips     map[prov.Ref]string

	stats Stats
}

// Stats aggregates what the system has produced so far.
type Stats struct {
	// Processes is the number of Exec calls.
	Processes int
	// FileVersions counts frozen file versions.
	FileVersions int
	// TransientVersions counts flushed process and pipe versions.
	TransientVersions int
	// Records counts provenance records flushed.
	Records int
	// DataBytes counts file bytes flushed.
	DataBytes int64
	// ProvBytes counts provenance bytes flushed (Record.Size sum).
	ProvBytes int64
}

// DefaultKernel is the kernel version recorded when Config.Kernel is
// empty — the PASS kernel the paper's measurements ran on.
const DefaultKernel = "2.6.23.17-pass"

// NewSystem returns an empty system.
func NewSystem(cfg Config) *System {
	if cfg.Flush == nil {
		panic("pass: Config.Flush is required")
	}
	if cfg.Kernel == "" {
		cfg.Kernel = DefaultKernel
	}
	return &System{
		cfg:        cfg,
		files:      make(map[string]*object),
		procs:      make(map[int]*Process),
		byRef:      make(map[prov.Ref]*object),
		pending:    make(map[prov.Ref]*pendingVersion),
		flushedSet: make(map[prov.Ref]bool),
		chainTok:   make(map[prov.Ref]string),
		tips:       make(map[prov.Ref]string),
	}
}

// Stats returns a copy of the current counters.
func (s *System) Stats() Stats { return s.stats }

// nsPrefix renders the namespace segment of transient object names.
func (s *System) nsPrefix() string {
	if s.cfg.Namespace == "" {
		return ""
	}
	return s.cfg.Namespace + "/"
}

// ExecSpec describes a new process.
type ExecSpec struct {
	// Name is the program name, e.g. "cc" or "blastall".
	Name string
	// Argv is the full command line.
	Argv []string
	// Env is the captured environment. Large environments are the paper's
	// canonical source of >1 KB provenance records ("the provenance of a
	// process exceeds the 2KB limit (which we see regularly)").
	Env string
}

// Exec creates a process. If parent is non-nil the child records a
// dependency on the parent's current version, capturing fork/exec lineage.
func (s *System) Exec(parent *Process, spec ExecSpec) *Process {
	s.nextPID++
	pid := s.nextPID
	ref := prov.Ref{Object: prov.ObjectID(fmt.Sprintf("proc/%s%d/%s", s.nsPrefix(), pid, spec.Name)), Version: 0}
	obj := &object{
		ref:    ref,
		typ:    prov.TypeProcess,
		name:   spec.Name,
		inputs: make(map[prov.Ref]bool),
	}
	obj.identity = append(obj.identity,
		prov.NewString(ref, prov.AttrType, prov.TypeProcess),
		prov.NewString(ref, prov.AttrName, spec.Name),
		prov.NewString(ref, prov.AttrPID, fmt.Sprintf("%d", pid)),
		prov.NewString(ref, prov.AttrKernel, s.cfg.Kernel),
	)
	if len(spec.Argv) > 0 {
		obj.identity = append(obj.identity,
			prov.NewString(ref, prov.AttrArgv, strings.Join(spec.Argv, " ")))
	}
	if spec.Env != "" {
		obj.identity = append(obj.identity, prov.NewString(ref, prov.AttrEnv, spec.Env))
	}
	obj.records = append(obj.records, obj.identity...)
	p := &Process{pid: pid, name: spec.Name, obj: obj}
	if parent != nil && !parent.done {
		s.addInput(obj, parent.obj.ref)
		// The parent just became an ancestor: like producing output, this
		// must force a new parent version before it gains further inputs,
		// or child -> parent -> (parent's later input) could close a cycle.
		parent.obj.tainted = true
	}
	s.procs[pid] = p
	s.byRef[obj.ref] = obj
	s.stats.Processes++
	return p
}

// addInput records an input edge on the current version, deduplicated.
func (s *System) addInput(obj *object, in prov.Ref) {
	if obj.inputs[in] {
		return
	}
	obj.inputs[in] = true
	obj.records = append(obj.records, prov.NewInput(obj.ref, in))
}

// Read makes p depend on path's current content. Reading a file with
// unflushed writes freezes that version first (PASS freeze-on-read), so the
// dependency lands on immutable state.
func (s *System) Read(p *Process, path string) error {
	if p.done {
		return fmt.Errorf("%w: pid %d", ErrExited, p.pid)
	}
	f, ok := s.files[path]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchFile, path)
	}
	if f.dirty {
		s.freezeFile(f)
	}

	// Cycle avoidance: a process that gained output edges — or whose
	// current version is already persistent — must become a new version
	// before taking a new input. The first rule prevents cycles; the second
	// prevents mutating provenance that has already been flushed.
	if (p.obj.tainted || s.flushedSet[p.obj.ref]) && !p.obj.inputs[f.ref] {
		s.bumpProcess(p)
	}
	s.addInput(p.obj, f.ref)
	return nil
}

// bumpProcess starts a new process version depending on the prior one.
func (s *System) bumpProcess(p *Process) {
	prev := p.obj.ref
	// The old version's records become pending (they will flush when a
	// descendant is closed).
	s.stash(p.obj)

	delete(s.byRef, prev)
	next := prov.Ref{Object: prev.Object, Version: prev.Version + 1}
	p.obj.ref = next
	s.byRef[next] = p.obj
	p.obj.tainted = false
	p.obj.inputs = make(map[prov.Ref]bool)
	p.obj.records = nil
	// Each version is a complete pnode: re-assert the identity records
	// under the new subject.
	for _, r := range p.obj.identity {
		r.Subject = next
		p.obj.records = append(p.obj.records, r)
	}
	s.addInput(p.obj, prev)
}

// stash moves obj's current version into the pending set (frozen, awaiting
// flush). Data is snapshotted for files.
func (s *System) stash(obj *object) {
	if s.flushedSet[obj.ref] {
		return
	}
	if _, ok := s.pending[obj.ref]; ok {
		return
	}
	pv := &pendingVersion{
		ref:     obj.ref,
		typ:     obj.typ,
		records: append([]prov.Record(nil), obj.records...),
	}
	if obj.typ == prov.TypeFile {
		pv.data = append([]byte(nil), obj.content...)
	}
	for in := range obj.inputs {
		pv.inputs = append(pv.inputs, in)
	}
	sort.Slice(pv.inputs, func(i, j int) bool {
		if pv.inputs[i].Object != pv.inputs[j].Object {
			return pv.inputs[i].Object < pv.inputs[j].Object
		}
		return pv.inputs[i].Version < pv.inputs[j].Version
	})
	s.pending[obj.ref] = pv
}

// Write makes path's current version depend on p and updates content. The
// first write to a fresh path creates version 0 of a new file.
func (s *System) Write(p *Process, path string, data []byte, mode WriteMode) error {
	if p.done {
		return fmt.Errorf("%w: pid %d", ErrExited, p.pid)
	}
	f, ok := s.files[path]
	switch {
	case !ok:
		f = s.newFile(path)
	case f.frozen && !f.dirty:
		// Re-writing a frozen version: new version depending on the old.
		s.bumpFile(f, mode)
	case f.dirty && f.writer != p.pid:
		// A different writer takes over: version to keep causality exact.
		s.freezeFile(f)
		s.bumpFile(f, mode)
	}

	switch mode {
	case Truncate:
		if !f.dirty {
			f.content = f.content[:0]
		}
		f.content = append(f.content, data...)
	case Append:
		f.content = append(f.content, data...)
	}
	f.dirty = true
	f.writer = p.pid
	s.addInput(f, p.obj.ref)
	p.obj.tainted = true
	return nil
}

// newFile creates version 0 of a file object.
func (s *System) newFile(path string) *object {
	ref := prov.Ref{Object: prov.ObjectID(path), Version: 0}
	f := &object{
		ref:    ref,
		typ:    prov.TypeFile,
		name:   path,
		inputs: make(map[prov.Ref]bool),
	}
	f.records = append(f.records,
		prov.NewString(ref, prov.AttrType, prov.TypeFile),
		prov.NewString(ref, prov.AttrName, path),
	)
	s.files[path] = f
	s.byRef[ref] = f
	return f
}

// bumpFile starts a new file version. Appending versions depend on the
// prior version (content carries over); truncating versions start fresh.
func (s *System) bumpFile(f *object, mode WriteMode) {
	prev := f.ref
	delete(s.byRef, prev)
	next := prov.Ref{Object: prev.Object, Version: prev.Version + 1}
	f.ref = next
	s.byRef[next] = f
	f.frozen = false
	f.dirty = false
	f.inputs = make(map[prov.Ref]bool)
	f.records = nil
	f.records = append(f.records,
		prov.NewString(next, prov.AttrType, prov.TypeFile),
		prov.NewString(next, prov.AttrName, f.name),
	)
	if mode == Append {
		s.addInput(f, prev)
	} else {
		f.content = f.content[:0]
	}
}

// freezeFile freezes the current dirty version: it becomes immutable and
// pending persistence.
func (s *System) freezeFile(f *object) {
	f.dirty = false
	f.frozen = true
	s.stash(f)
	s.stats.FileVersions++
}

// Close freezes path's current version (if dirty) and flushes it together
// with every unflushed ancestor — the whole chain coalesced into one batch,
// ancestors first. This is the paper's "when the application issues a close
// on a file, we send both the file and its provenance" moment; batching the
// chain is what lets a store persist a close with K unpersisted ancestors
// in one round of cloud calls instead of K+1.
func (s *System) Close(ctx context.Context, p *Process, path string) error {
	if p != nil && p.done {
		return fmt.Errorf("%w: pid %d", ErrExited, p.pid)
	}
	f, ok := s.files[path]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchFile, path)
	}
	if f.dirty {
		s.freezeFile(f)
	}
	return s.flushBatch(ctx, []prov.Ref{f.ref})
}

// Sync flushes every pending version, coalesced into one causally ordered
// batch, without requiring a specific close — used by workloads at
// end-of-run to drain stragglers (e.g. processes whose outputs were all
// closed before their final inputs).
func (s *System) Sync(ctx context.Context) error {
	refs := make([]prov.Ref, 0, len(s.pending))
	for ref := range s.pending {
		refs = append(refs, ref)
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Object != refs[j].Object {
			return refs[i].Object < refs[j].Object
		}
		return refs[i].Version < refs[j].Version
	})
	return s.flushBatch(ctx, refs)
}

// landedReporter is the partial-batch recovery contract with the storage
// layer (core.PartialWriteError implements it): the listed refs are fully
// applied even though the flush as a whole failed.
type landedReporter interface {
	LandedRefs() []prov.Ref
}

// flushBatch coalesces the unflushed ancestor closures of refs into a
// single causally ordered batch and hands it to Flush in one call. On
// success everything is marked persistent. On failure, events the store
// reports as fully landed (a typed partial-write error) are marked
// persistent too — so the retry a later Close or Sync triggers re-sends
// only what actually needs re-sending, and a landed event is never
// double-applied by replaying it into a fresh store transaction.
func (s *System) flushBatch(ctx context.Context, refs []prov.Ref) error {
	var batch []*pendingVersion
	seen := make(map[prov.Ref]bool)
	for _, ref := range refs {
		s.collect(ref, seen, &batch)
	}
	if len(batch) == 0 {
		return nil
	}
	events := make([]FlushEvent, len(batch))
	for i, pv := range batch {
		events[i] = FlushEvent{Ref: pv.ref, Type: pv.typ, Data: pv.data, Records: s.chainedRecords(pv)}
	}
	if err := s.cfg.Flush(ctx, events); err != nil {
		var lr landedReporter
		if errors.As(err, &lr) {
			for _, ref := range lr.LandedRefs() {
				if pv, ok := s.pending[ref]; ok && seen[ref] {
					s.markFlushed(pv)
				}
			}
		}
		return err
	}
	for _, pv := range batch {
		s.markFlushed(pv)
	}
	return nil
}

// chainedRecords renders a pending version's flushed record set: its
// stashed records plus the tamper-evidence chain record embedding the
// predecessor version's subject hash. The token and the version's own
// resulting hash are memoized, so retries and replays flush identical
// bytes (the no-double-hashing guarantee) and successors link correctly
// whether their predecessor flushed in this batch, an earlier one, or a
// later one.
func (s *System) chainedRecords(pv *pendingVersion) []prov.Record {
	if s.cfg.DisableChain {
		return pv.records
	}
	records := append(make([]prov.Record, 0, len(pv.records)+1), pv.records...)
	records = append(records, integrity.ChainRecord(pv.ref, s.chainToken(pv.ref)))
	if _, ok := s.tips[pv.ref]; !ok {
		s.tips[pv.ref] = integrity.SubjectHash(pv.ref, records)
	}
	return records
}

// chainToken resolves (and memoizes) one version's chain token: genesis
// for version 0, a link embedding the predecessor's subject hash when the
// predecessor's flushed form is known or derivable, detached otherwise
// (an Attach-ed object whose history lives with another client).
func (s *System) chainToken(ref prov.Ref) string {
	if tok, ok := s.chainTok[ref]; ok {
		return tok
	}
	tok := s.computeChainToken(ref)
	s.chainTok[ref] = tok
	return tok
}

func (s *System) computeChainToken(ref prov.Ref) string {
	if ref.Version == 0 {
		return integrity.TokenGenesis
	}
	prev := prov.Ref{Object: ref.Object, Version: ref.Version - 1}
	if tip, ok := s.tips[prev]; ok {
		return integrity.LinkToken(tip)
	}
	if pv, ok := s.pending[prev]; ok {
		// The predecessor is stashed but flushes later (or in this batch
		// after us). Its stashed records are immutable, so its eventual
		// flushed form — records plus its own chain record — is derivable
		// now; memoizing the tip guarantees its own flush matches.
		records := append(make([]prov.Record, 0, len(pv.records)+1), pv.records...)
		records = append(records, integrity.ChainRecord(prev, s.chainToken(prev)))
		s.tips[prev] = integrity.SubjectHash(prev, records)
		return integrity.LinkToken(s.tips[prev])
	}
	return integrity.TokenDetached
}

// markFlushed records one pending version as durably persistent.
func (s *System) markFlushed(pv *pendingVersion) {
	if s.flushedSet[pv.ref] {
		return
	}
	s.flushedSet[pv.ref] = true
	delete(s.pending, pv.ref)
	s.stats.Records += len(pv.records)
	s.stats.ProvBytes += prov.RecordsSize(pv.records)
	if pv.typ == prov.TypeFile {
		s.stats.DataBytes += int64(len(pv.data))
	} else {
		s.stats.TransientVersions++
	}
}

// collect appends ref's unflushed ancestor closure to the batch, ancestors
// strictly before ref. Ancestors still live (un-frozen current versions of
// processes) are stashed now: a descendant is becoming persistent, so its
// transient ancestors' provenance must persist too.
func (s *System) collect(ref prov.Ref, seen map[prov.Ref]bool, batch *[]*pendingVersion) {
	if seen[ref] || s.flushedSet[ref] {
		return
	}
	pv, ok := s.pending[ref]
	if !ok {
		return // already flushed (or never frozen: nothing to do)
	}
	seen[ref] = true
	for _, in := range pv.inputs {
		if s.flushedSet[in] || seen[in] {
			continue
		}
		if _, pending := s.pending[in]; !pending {
			s.stashLive(in)
		}
		s.collect(in, seen, batch)
	}
	*batch = append(*batch, pv)
}

// stashLive freezes the current version of whatever object owns ref, if any.
// Older versions are always stashed at bump time, so only current versions
// need the index; an unknown ref simply finds nothing pending downstream.
func (s *System) stashLive(ref prov.Ref) {
	obj, ok := s.byRef[ref]
	if !ok {
		return
	}
	if obj.typ == prov.TypeFile && obj.dirty {
		s.freezeFile(obj)
		return
	}
	s.stash(obj)
}

// Pipe connects two processes through a transient pipe object: to depends on
// the pipe, the pipe depends on from. This is how PASS relates files that
// exchange data through IPC rather than the filesystem.
func (s *System) Pipe(from, to *Process) error {
	if from.done || to.done {
		return fmt.Errorf("%w", ErrExited)
	}
	s.nextPID++
	ref := prov.Ref{Object: prov.ObjectID(fmt.Sprintf("pipe/%s%d", s.nsPrefix(), s.nextPID)), Version: 0}
	pipe := &object{
		ref:    ref,
		typ:    prov.TypePipe,
		name:   string(ref.Object),
		inputs: make(map[prov.Ref]bool),
	}
	pipe.records = append(pipe.records, prov.NewString(ref, prov.AttrType, prov.TypePipe))
	s.addInput(pipe, from.obj.ref)
	from.obj.tainted = true
	if to.obj.tainted || s.flushedSet[to.obj.ref] {
		s.bumpProcess(to)
	}
	s.addInput(to.obj, ref)
	s.stash(pipe)
	return nil
}

// Exit marks p done. Further syscalls fail.
func (s *System) Exit(p *Process) {
	p.done = true
}

// FileContent returns the current content of path (test helper).
func (s *System) FileContent(path string) ([]byte, bool) {
	f, ok := s.files[path]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), f.content...), true
}

// CurrentVersion returns path's current version ref.
func (s *System) CurrentVersion(path string) (prov.Ref, bool) {
	f, ok := s.files[path]
	if !ok {
		return prov.Ref{}, false
	}
	return f.ref, true
}

// Attach registers an already-persistent object version as a local file —
// the result of downloading it from the shared cloud. Local reads bind to
// exactly that version (so cross-client ancestry stays connected), and a
// local write starts the next version.
func (s *System) Attach(path string, ref prov.Ref, content []byte) error {
	if _, ok := s.files[path]; ok {
		return fmt.Errorf("pass: Attach over existing file %s", path)
	}
	f := &object{
		ref:     ref,
		typ:     prov.TypeFile,
		name:    path,
		content: append([]byte(nil), content...),
		frozen:  true,
		inputs:  make(map[prov.Ref]bool),
	}
	s.files[path] = f
	s.byRef[ref] = f
	// The version is already persistent remotely: never re-flush it.
	s.flushedSet[ref] = true
	return nil
}

// Ingest creates a file that appears fully formed (a downloaded data set,
// per the paper's usage model) and persists it immediately: version 0 with
// no process ancestry.
func (s *System) Ingest(ctx context.Context, path string, content []byte) error {
	f, ok := s.files[path]
	if ok {
		return fmt.Errorf("pass: Ingest over existing file %s", path)
	}
	f = s.newFile(path)
	f.content = append([]byte(nil), content...)
	f.dirty = true
	f.writer = 0
	s.freezeFile(f)
	return s.flushBatch(ctx, []prov.Ref{f.ref})
}
