package pass

import (
	"strings"
	"testing"

	"passcloud/internal/prov"
)

func TestNamespaceSeparatesTransientRefs(t *testing.T) {
	mk := func(ns string) (*System, *collector) {
		c := newCollector()
		return NewSystem(Config{Namespace: ns, Flush: c.flush}), c
	}
	sysA, _ := mk("alice")
	sysB, _ := mk("bob")

	pa := sysA.Exec(nil, ExecSpec{Name: "tool"})
	pb := sysB.Exec(nil, ExecSpec{Name: "tool"})
	if pa.Ref() == pb.Ref() {
		t.Fatalf("same-named processes collide across namespaces: %v", pa.Ref())
	}
	if !strings.HasPrefix(string(pa.Ref().Object), "proc/alice/") {
		t.Fatalf("namespaced ref = %v", pa.Ref())
	}
	if !strings.HasPrefix(string(pb.Ref().Object), "proc/bob/") {
		t.Fatalf("namespaced ref = %v", pb.Ref())
	}

	// Pipes too.
	qa := sysA.Exec(nil, ExecSpec{Name: "sink"})
	if err := sysA.Pipe(pa, qa); err != nil {
		t.Fatal(err)
	}
	if err := sysA.Write(qa, "/out", []byte("x"), Truncate); err != nil {
		t.Fatal(err)
	}
	if err := sysA.Close(ctx, qa, "/out"); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyNamespaceKeepsLegacyNames(t *testing.T) {
	c := newCollector()
	sys := NewSystem(Config{Flush: c.flush})
	p := sys.Exec(nil, ExecSpec{Name: "tool"})
	if p.Ref() != (prov.Ref{Object: "proc/1/tool", Version: 0}) {
		t.Fatalf("legacy ref changed: %v", p.Ref())
	}
}

func TestAttachBindsExactVersion(t *testing.T) {
	c := newCollector()
	sys := NewSystem(Config{Flush: c.flush})
	remote := prov.Ref{Object: "/shared/x", Version: 3}
	if err := sys.Attach("/shared/x", remote, []byte("remote content")); err != nil {
		t.Fatal(err)
	}
	// Reads bind to the attached version.
	p := sys.Exec(nil, ExecSpec{Name: "reader"})
	if err := sys.Read(p, "/shared/x"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Write(p, "/derived", []byte("d"), Truncate); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(ctx, p, "/derived"); err != nil {
		t.Fatal(err)
	}
	inputs := c.graph.Inputs(p.Ref())
	if len(inputs) != 1 || inputs[0] != remote {
		t.Fatalf("reader inputs = %v, want [%v]", inputs, remote)
	}
	// The attached version itself is never re-flushed.
	if _, ok := c.refs()[remote]; ok {
		t.Fatal("attached version re-flushed locally")
	}
	// A local write creates the NEXT version, depending on the writer.
	if err := sys.Write(p, "/shared/x", []byte("local edit"), Truncate); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(ctx, p, "/shared/x"); err != nil {
		t.Fatal(err)
	}
	next := prov.Ref{Object: "/shared/x", Version: 4}
	if _, ok := c.refs()[next]; !ok {
		t.Fatalf("local write did not produce version 4; events %v", c.refs())
	}
	// Double attach is an error.
	if err := sys.Attach("/shared/x", remote, nil); err == nil {
		t.Fatal("double attach succeeded")
	}
}
