// Package leakcheck fails a test binary whose tests leave goroutines
// behind — the goleak discipline, self-contained so the module needs no
// dependency beyond the toolchain.
//
// The store's background machinery (the reshard controller's
// copy/verify workers, the WAL commit daemon's drain loops, the load
// harness's writer fleets, fan-out scans) is all join-before-return by
// design: every goroutine is accounted for by a WaitGroup or channel
// before the spawning call returns. A leaked goroutine therefore
// indicates a real bug — a missed join on an error path, a worker
// blocked forever on an unclosed channel — and the randomized sweeps
// only make such bugs likelier to appear. Packages that spawn
// goroutines wire Main into a TestMain so the leak becomes a test
// failure with the offender's stack, not silent state bleeding between
// tests:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
//
// Detection polls because goroutine exit is asynchronous: a goroutine
// that has done its work may not have been descheduled yet when the
// last test returns. Sites in this package that touch the wall clock
// for that polling carry passvet simclock annotations — waiting on the
// real scheduler is the one thing a virtual clock cannot do.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// Main runs the test binary's tests and exits; when the tests pass but
// goroutines outlive them, it prints their stacks and exits nonzero.
func Main(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if leaked := Check(); leaked != "" {
			fmt.Fprintf(os.Stderr, "leakcheck: goroutines outlived the tests:\n\n%s", leaked)
			code = 1
		}
	}
	os.Exit(code)
}

// Check reports goroutines that survive beyond the test framework's
// own, formatted one stack per stanza, or "" when none remain. It
// polls for up to two seconds so goroutines that are merely slow to
// unwind are not reported as leaks.
func Check() string {
	deadline := 40
	for {
		leaked := leakedStacks()
		if len(leaked) == 0 {
			return ""
		}
		deadline--
		if deadline <= 0 {
			return strings.Join(leaked, "\n\n") + "\n"
		}
		//passvet:allow simclock -- polls the real scheduler for goroutine exit; virtual time cannot advance another goroutine's unwinding
		time.Sleep(50 * time.Millisecond)
	}
}

// leakedStacks snapshots all goroutine stacks and filters the ones the
// runtime and testing framework own.
func leakedStacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var leaked []string
	// The first stanza is always the goroutine running this check;
	// everything after it is judged on its own stack.
	for i, stanza := range strings.Split(string(buf), "\n\n") {
		if i > 0 && stanza != "" && !benign(stanza) {
			leaked = append(leaked, stanza)
		}
	}
	return leaked
}

// benignMarks identify goroutines that legitimately outlive tests: the
// testing framework's own machinery and runtime service goroutines
// (finalizers, GC workers, signal handling).
var benignMarks = []string{
	"testing.Main(",
	"testing.(*M).",
	"testing.runTests",
	"testing.tRunner(", // parked parallel-test runners unwinding
	"created by runtime",
	"runtime.gc",
	"runtime.MHeap",
	"runtime.runfinq",
	"runtime.bgsweep",
	"runtime.bgscavenge",
	"os/signal.",
}

// benign reports whether a goroutine stanza belongs to the runtime or
// the test framework.
func benign(stanza string) bool {
	for _, mark := range benignMarks {
		if strings.Contains(stanza, mark) {
			return true
		}
	}
	return false
}
