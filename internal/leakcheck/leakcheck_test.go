package leakcheck

import (
	"strings"
	"testing"
)

// TestCheckDetectsLeak blocks a goroutine on a channel, confirms Check
// reports it with its stack, then releases it and confirms the report
// clears.
func TestCheckDetectsLeak(t *testing.T) {
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-release
	}()

	leaked := Check()
	if leaked == "" {
		t.Fatal("Check missed a goroutine parked on a channel receive")
	}
	if !strings.Contains(leaked, "TestCheckDetectsLeak") {
		t.Errorf("leak report does not name the spawning test:\n%s", leaked)
	}

	close(release)
	<-done
	if leaked := Check(); leaked != "" {
		t.Errorf("Check still reports a leak after the goroutine exited:\n%s", leaked)
	}
}

// TestBenignFiltersRuntime spot-checks the stanza filter.
func TestBenignFiltersRuntime(t *testing.T) {
	cases := map[string]bool{
		"goroutine 18 [syscall]:\nos/signal.signal_recv()":                       true,
		"goroutine 5 [GC worker (idle)]:\nruntime.gcBgMarkWorker()":              true,
		"goroutine 9 [chan receive]:\npasscloud/internal/core.(*fanout).drain()": false,
	}
	for stanza, want := range cases {
		if got := benign(stanza); got != want {
			t.Errorf("benign(%q) = %v, want %v", stanza, got, want)
		}
	}
}
