package prov

import (
	"strings"
	"testing"
)

func TestQueryKeyCanonical(t *testing.T) {
	// Attribute order and the Type shorthand must not matter.
	a := Query{Type: TypeFile, Attrs: []AttrFilter{{"custom", "x"}, {"argv", "y"}}}
	b := Query{Attrs: []AttrFilter{{"argv", "y"}, {AttrType, TypeFile}, {"custom", "x"}}}
	if a.Key() != b.Key() {
		t.Fatalf("equivalent descriptors key differently:\n%s\n%s", a.Key(), b.Key())
	}
	// Refs order must not matter.
	r1, r2 := Ref{Object: "/a", Version: 1}, Ref{Object: "/b", Version: 0}
	if (Query{Refs: []Ref{r1, r2}}).Key() != (Query{Refs: []Ref{r2, r1}}).Key() {
		t.Fatal("ref order changed the key")
	}
	// Pagination is not part of the logical key.
	p := Query{Tool: "blast", Limit: 10, Cursor: "abc"}
	if p.Key() != (Query{Tool: "blast"}).Key() {
		t.Fatal("pagination fields leaked into the key")
	}
	// Projection distinguishes keys, but not RefsKey.
	full := Query{Tool: "blast", Projection: ProjectFull}
	refs := Query{Tool: "blast", Projection: ProjectRefs}
	if full.Key() == refs.Key() {
		t.Fatal("projection missing from the key")
	}
	if full.RefsKey() != refs.RefsKey() {
		t.Fatal("RefsKey must normalize projection")
	}
}

func TestQueryKeyInjective(t *testing.T) {
	// Hostile values must not collide via delimiter confusion.
	pairs := [][2]Query{
		{{Tool: "a|type=b"}, {Tool: "a", Type: "b"}},
		{{Tool: `a"`}, {Tool: `a\"`}},
		{{RefPrefix: "x"}, {Tool: "x"}},
		{{Attrs: []AttrFilter{{"a", "b:c"}}}, {Attrs: []AttrFilter{{"a:b", "c"}}}},
	}
	for _, p := range pairs {
		if p[0].Key() == p[1].Key() {
			t.Errorf("distinct descriptors collide: %+v vs %+v -> %s", p[0], p[1], p[0].Key())
		}
	}
}

func TestQueryValidate(t *testing.T) {
	bad := []Query{
		{Depth: -1},
		{Limit: -2},
		{Depth: 2},           // depth without direction
		{IncludeSeeds: true}, // seeds knob without direction
	}
	for _, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", q)
		}
	}
	good := []Query{
		{},
		Q1(),
		QOutputsOf("blast"),
		QDescendantsOfOutputs("blast"),
		QAncestors(Ref{Object: "/f", Version: 0}),
		QDependents("/f"),
		{Tool: "t", Direction: TraverseDescendants, Depth: 3, Limit: 10},
	}
	for _, q := range good {
		if err := q.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v", q, err)
		}
	}
}

func TestCompilers(t *testing.T) {
	q := QDependents("/data/x")
	if q.RefPrefix != "/data/x:" || q.Direction != TraverseDescendants || q.Depth != 1 || !q.IncludeSeeds {
		t.Fatalf("QDependents = %+v", q)
	}
	if q.Projection != ProjectRefs {
		t.Fatal("dependents must not fetch records")
	}
	q2 := QOutputsOf("blast")
	if q2.Tool != "blast" || q2.Type != TypeFile {
		t.Fatalf("QOutputsOf = %+v", q2)
	}
	q3 := QDescendantsOfOutputs("blast")
	if q3.Direction != TraverseDescendants || q3.IncludeSeeds {
		t.Fatalf("QDescendantsOfOutputs = %+v", q3)
	}
	if got := QAncestors(Ref{Object: "/f", Version: 2}); len(got.Refs) != 1 || got.Direction != TraverseAncestors {
		t.Fatalf("QAncestors = %+v", got)
	}
}

func TestAttrFiltersDedup(t *testing.T) {
	q := Query{Type: TypeFile, Attrs: []AttrFilter{{AttrType, TypeFile}, {"a", "b"}, {"a", "b"}}}
	got := q.AttrFilters()
	if len(got) != 2 {
		t.Fatalf("AttrFilters = %v", got)
	}
	if !strings.Contains(q.Key(), "attr=") {
		t.Fatalf("key misses attrs: %s", q.Key())
	}
}
