package prov

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file defines the three wire encodings of provenance records:
//
//   - the S3 metadata form (architecture 1): records flattened into the
//     object's user-metadata key/value map, subject to the 2 KB limit;
//   - the SimpleDB form (architectures 2 and 3): one item per object
//     version, one attribute-value pair per record (paper §4.2 example:
//     ItemName=foo_2; input=bar:2; type=file);
//   - the JSON form: used for WAL messages (architecture 3), which must be
//     valid Unicode within SQS's 8 KB message limit.
//
// Every encoding round-trips: Decode(Encode(records)) == records up to
// record order within a subject.

// --- S3 metadata form -------------------------------------------------------

// s3KeyPrefix namespaces provenance entries in S3 user metadata.
const s3KeyPrefix = "p-"

// s3FieldSep separates attribute name from value inside one metadata value.
// Unit separator cannot appear in attribute names.
const s3FieldSep = "\x1f"

// EncodeS3Metadata renders records about a single subject as S3 user
// metadata: key "p-<n>", value "<attr>\x1f<value>". The subject itself is
// implied by the object the metadata is stored on, matching the paper's
// design where provenance rides on the object's own PUT.
func EncodeS3Metadata(records []Record) map[string]string {
	out := make(map[string]string, len(records))
	for i, r := range records {
		out[s3MetaKey(i)] = r.Attr + s3FieldSep + r.Value.String()
	}
	return out
}

func s3MetaKey(i int) string { return s3KeyPrefix + strconv.Itoa(i) }

// DecodeS3Metadata reverses EncodeS3Metadata for the given subject. Unknown
// (non provenance-prefixed) keys are ignored so protocol metadata (nonces,
// overflow pointers) can share the map.
func DecodeS3Metadata(subject Ref, meta map[string]string) ([]Record, error) {
	// Collect in key order for determinism.
	keys := make([]string, 0, len(meta))
	for k := range meta {
		if strings.HasPrefix(k, s3KeyPrefix) {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		// Numeric ordering of the suffix, so p-10 follows p-9.
		a, _ := strconv.Atoi(strings.TrimPrefix(keys[i], s3KeyPrefix))
		b, _ := strconv.Atoi(strings.TrimPrefix(keys[j], s3KeyPrefix))
		return a < b
	})
	out := make([]Record, 0, len(keys))
	for _, k := range keys {
		rec, err := decodeS3Value(subject, meta[k])
		if err != nil {
			return nil, fmt.Errorf("%w: key %q: %w", ErrMalformed, k, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

func decodeS3Value(subject Ref, v string) (Record, error) {
	i := strings.Index(v, s3FieldSep)
	if i < 0 {
		return Record{}, fmt.Errorf("missing field separator")
	}
	attr, raw := v[:i], v[i+len(s3FieldSep):]
	if attr == "" {
		return Record{}, fmt.Errorf("empty attribute")
	}
	return decodeRaw(subject, attr, raw)
}

func decodeRaw(subject Ref, attr, raw string) (Record, error) {
	if IsRefAttr(attr) {
		ref, err := ParseRef(raw)
		if err != nil {
			return Record{}, err
		}
		return Record{Subject: subject, Attr: attr, Value: RefValue(ref)}, nil
	}
	return Record{Subject: subject, Attr: attr, Value: StringValue(raw)}, nil
}

// S3MetadataSize is the byte size S3 charges for the encoded metadata: the
// sum of key and value lengths. Architecture 1 compares this against the
// 2 KB limit to decide what spills.
func S3MetadataSize(meta map[string]string) int {
	n := 0
	for k, v := range meta {
		n += len(k) + len(v)
	}
	return n
}

// --- SimpleDB form ----------------------------------------------------------

// itemNameSep joins object name and version in SimpleDB item names. The
// paper's example uses foo_2.
const itemNameSep = "_"

// EncodeItemName renders the SimpleDB item name for a subject: the
// "concatenation of the object name and the version" (§4.2).
func EncodeItemName(subject Ref) string {
	return string(subject.Object) + itemNameSep + strconv.Itoa(int(subject.Version))
}

// ParseItemName reverses EncodeItemName. The version is the digits after
// the final underscore, so object names may contain underscores.
func ParseItemName(item string) (Ref, error) {
	i := strings.LastIndex(item, itemNameSep)
	if i <= 0 || i == len(item)-1 {
		return Ref{}, fmt.Errorf("%w: item name %q", ErrMalformed, item)
	}
	v, err := strconv.Atoi(item[i+1:])
	if err != nil || v < 0 {
		return Ref{}, fmt.Errorf("%w: item name version %q", ErrMalformed, item)
	}
	return Ref{Object: ObjectID(item[:i]), Version: Version(v)}, nil
}

// SDBAttr is an attribute-value pair destined for SimpleDB. It mirrors
// sdb.Attr without importing the service package: prov stays a pure model.
type SDBAttr struct {
	Name  string
	Value string
}

// EncodeSDBAttrs renders a subject's records as SimpleDB attributes, one
// pair per record. Repeated attributes (several inputs) become multiple
// pairs with the same name, which SimpleDB's data model supports directly.
func EncodeSDBAttrs(records []Record) []SDBAttr {
	out := make([]SDBAttr, 0, len(records))
	for _, r := range records {
		out = append(out, SDBAttr{Name: r.Attr, Value: r.Value.String()})
	}
	return out
}

// DecodeSDBAttrs reverses EncodeSDBAttrs for a subject, skipping attribute
// names in ignore (protocol bookkeeping such as md5/nonce records).
func DecodeSDBAttrs(subject Ref, attrs []SDBAttr, ignore map[string]bool) ([]Record, error) {
	out := make([]Record, 0, len(attrs))
	for _, a := range attrs {
		if ignore[a.Name] {
			continue
		}
		rec, err := decodeRaw(subject, a.Name, a.Value)
		if err != nil {
			return nil, fmt.Errorf("%w: attr %q: %w", ErrMalformed, a.Name, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

// --- JSON form (WAL messages) ----------------------------------------------

// jsonRecord is the stable wire schema for one record.
type jsonRecord struct {
	Subject string `json:"s"`
	Attr    string `json:"a"`
	Ref     string `json:"r,omitempty"`
	Str     string `json:"v,omitempty"`
	IsStr   bool   `json:"t,omitempty"` // distinguishes empty string values
}

// MarshalJSONRecords encodes records as a JSON array — always valid UTF-8,
// as SQS requires.
func MarshalJSONRecords(records []Record) ([]byte, error) {
	out := make([]jsonRecord, len(records))
	for i, r := range records {
		out[i] = toJSONRecord(r)
	}
	return json.Marshal(out)
}

func toJSONRecord(r Record) jsonRecord {
	j := jsonRecord{Subject: r.Subject.String(), Attr: r.Attr}
	if r.Value.Kind == KindRef {
		j.Ref = r.Value.Ref.String()
	} else {
		j.Str = r.Value.Str
		j.IsStr = true
	}
	return j
}

// UnmarshalJSONRecords reverses MarshalJSONRecords.
func UnmarshalJSONRecords(data []byte) ([]Record, error) {
	var raw []jsonRecord
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrMalformed, err)
	}
	out := make([]Record, len(raw))
	for i, j := range raw {
		rec, err := fromJSONRecord(j)
		if err != nil {
			return nil, err
		}
		out[i] = rec
	}
	return out, nil
}

func fromJSONRecord(j jsonRecord) (Record, error) {
	subject, err := ParseRef(j.Subject)
	if err != nil {
		return Record{}, fmt.Errorf("%w: subject: %w", ErrMalformed, err)
	}
	if j.Attr == "" {
		return Record{}, fmt.Errorf("%w: empty attribute", ErrMalformed)
	}
	if j.IsStr {
		return Record{Subject: subject, Attr: j.Attr, Value: StringValue(j.Str)}, nil
	}
	ref, err := ParseRef(j.Ref)
	if err != nil {
		return Record{}, fmt.Errorf("%w: ref value: %w", ErrMalformed, err)
	}
	return Record{Subject: subject, Attr: j.Attr, Value: RefValue(ref)}, nil
}

// ChunkJSON packs records into JSON arrays of at most budget bytes each,
// preserving order across chunks. A single record whose encoding exceeds the
// budget is returned as its own oversized chunk; the caller (the WAL layer)
// must divert such records, exactly as the paper diverts >1 KB values to S3.
//
// The packing is exact: a JSON array is "[" + elements joined by "," + "]",
// so each record is marshaled once and sizes accumulate linearly.
func ChunkJSON(records []Record, budget int) ([][]byte, error) {
	if len(records) == 0 {
		return nil, nil
	}
	var chunks [][]byte
	var cur [][]byte
	curSize := 2 // "[" and "]"

	flush := func() {
		if len(cur) == 0 {
			return
		}
		buf := make([]byte, 0, curSize)
		buf = append(buf, '[')
		for i, enc := range cur {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = append(buf, enc...)
		}
		buf = append(buf, ']')
		chunks = append(chunks, buf)
		cur, curSize = cur[:0], 2
	}

	for _, r := range records {
		enc, err := json.Marshal(toJSONRecord(r))
		if err != nil {
			return nil, err
		}
		extra := len(enc)
		if len(cur) > 0 {
			extra++ // comma
		}
		if len(cur) > 0 && curSize+extra > budget {
			flush()
			extra = len(enc)
		}
		cur = append(cur, enc)
		curSize += extra
	}
	flush()
	return chunks, nil
}
