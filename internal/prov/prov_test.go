package prov

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func ref(obj string, v int) Ref {
	return Ref{Object: ObjectID(obj), Version: Version(v)}
}

func TestRefStringParse(t *testing.T) {
	cases := []Ref{
		ref("foo", 0),
		ref("/data/out.txt", 12),
		ref("proc/1423/blast", 3),
		ref("weird:name:with:colons", 7),
		ref("a_b_c", 9),
	}
	for _, r := range cases {
		got, err := ParseRef(r.String())
		if err != nil || got != r {
			t.Fatalf("round trip %v: got %v, err %v", r, got, err)
		}
	}
}

func TestParseRefErrors(t *testing.T) {
	for _, s := range []string{"", "noversion", "a:", ":1", "a:-1", "a:x"} {
		if _, err := ParseRef(s); err == nil {
			t.Fatalf("ParseRef(%q) succeeded", s)
		}
	}
}

func TestRefRoundTripQuick(t *testing.T) {
	f := func(obj string, v uint16) bool {
		if obj == "" {
			return true
		}
		r := Ref{Object: ObjectID(obj), Version: Version(v)}
		got, err := ParseRef(r.String())
		return err == nil && got == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValueAndRecordBasics(t *testing.T) {
	in := NewInput(ref("child", 1), ref("parent", 2))
	if in.Value.Kind != KindRef || in.Value.String() != "parent:2" {
		t.Fatalf("input record: %+v", in)
	}
	s := NewString(ref("child", 1), AttrName, "/bin/blast")
	if s.Value.Kind != KindString || s.Value.String() != "/bin/blast" {
		t.Fatalf("string record: %+v", s)
	}
	if got := s.Size(); got != len(AttrName)+len("/bin/blast") {
		t.Fatalf("Size = %d", got)
	}
	if got := RecordsSize([]Record{in, s}); got != int64(in.Size()+s.Size()) {
		t.Fatalf("RecordsSize = %d", got)
	}
	if !strings.Contains(in.String(), "input=parent:2") {
		t.Fatalf("Record.String = %q", in.String())
	}
}

func TestBySubject(t *testing.T) {
	records := []Record{
		NewString(ref("a", 0), AttrType, TypeFile),
		NewString(ref("b", 0), AttrType, TypeFile),
		NewInput(ref("a", 0), ref("b", 0)),
	}
	grouped := BySubject(records)
	if len(grouped) != 2 || len(grouped[ref("a", 0)]) != 2 || len(grouped[ref("b", 0)]) != 1 {
		t.Fatalf("grouped = %v", grouped)
	}
}

// sampleRecords builds a small pipeline: proc reads in.dat, writes out.dat.
func sampleRecords() []Record {
	proc := ref("proc/9/tool", 0)
	in := ref("/in.dat", 0)
	out := ref("/out.dat", 1)
	return []Record{
		NewString(in, AttrType, TypeFile),
		NewString(in, AttrName, "/in.dat"),
		NewString(proc, AttrType, TypeProcess),
		NewString(proc, AttrName, "tool"),
		NewString(proc, AttrArgv, "tool -x /in.dat"),
		NewInput(proc, in),
		NewString(out, AttrType, TypeFile),
		NewString(out, AttrName, "/out.dat"),
		NewInput(out, proc),
	}
}

func TestGraphEdgesAndClosures(t *testing.T) {
	g := NewGraph()
	g.AddAll(sampleRecords())

	proc := ref("proc/9/tool", 0)
	in := ref("/in.dat", 0)
	out := ref("/out.dat", 1)

	if g.Len() != 3 || g.NumRecords() != 9 {
		t.Fatalf("Len=%d NumRecords=%d", g.Len(), g.NumRecords())
	}
	if got := g.Inputs(out); !reflect.DeepEqual(got, []Ref{proc}) {
		t.Fatalf("Inputs(out) = %v", got)
	}
	if got := g.Ancestors(out); !reflect.DeepEqual(got, []Ref{in, proc}) {
		t.Fatalf("Ancestors(out) = %v", got)
	}
	if got := g.Descendants(in); !reflect.DeepEqual(got, []Ref{out, proc}) {
		t.Fatalf("Descendants(in) = %v", got)
	}
	if got := g.Children(in); !reflect.DeepEqual(got, []Ref{proc}) {
		t.Fatalf("Children(in) = %v", got)
	}
	if got := g.FindByAttr(AttrName, "tool"); !reflect.DeepEqual(got, []Ref{proc}) {
		t.Fatalf("FindByAttr = %v", got)
	}
	if !g.Has(proc) || g.Has(ref("ghost", 0)) {
		t.Fatal("Has misbehaves")
	}
}

func TestGraphAcyclicity(t *testing.T) {
	g := NewGraph()
	g.AddAll(sampleRecords())
	if !g.IsAcyclic() {
		t.Fatal("sample graph reported cyclic")
	}
	// Introduce a cycle: in.dat depends on out.dat.
	g.Add(NewInput(ref("/in.dat", 0), ref("/out.dat", 1)))
	if g.IsAcyclic() {
		t.Fatal("cycle not detected")
	}
}

func TestGraphMissingAncestors(t *testing.T) {
	g := NewGraph()
	g.AddAll(sampleRecords())
	if got := g.MissingAncestors(); len(got) != 0 {
		t.Fatalf("complete graph missing %v", got)
	}
	g.Add(NewInput(ref("/late.dat", 0), ref("/never-stored.dat", 4)))
	got := g.MissingAncestors()
	if len(got) != 1 || got[0] != ref("/never-stored.dat", 4) {
		t.Fatalf("MissingAncestors = %v", got)
	}
}

func TestGraphDiamondClosure(t *testing.T) {
	// a -> b, a -> c, b -> d, c -> d: descendants of d must list each once.
	g := NewGraph()
	a, b, c, d := ref("a", 0), ref("b", 0), ref("c", 0), ref("d", 0)
	g.Add(NewInput(a, b))
	g.Add(NewInput(a, c))
	g.Add(NewInput(b, d))
	g.Add(NewInput(c, d))
	if got := g.Descendants(d); !reflect.DeepEqual(got, []Ref{a, b, c}) {
		t.Fatalf("Descendants = %v", got)
	}
	if got := g.Ancestors(a); !reflect.DeepEqual(got, []Ref{b, c, d}) {
		t.Fatalf("Ancestors = %v", got)
	}
}

func TestWriteDOT(t *testing.T) {
	g := NewGraph()
	g.AddAll(sampleRecords())
	var b strings.Builder
	if err := g.WriteDOT(&b); err != nil {
		t.Fatal(err)
	}
	dot := b.String()
	for _, want := range []string{"digraph provenance", `"/out.dat:1" -> "proc/9/tool:0"`, "ellipse"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestS3MetadataRoundTrip(t *testing.T) {
	subject := ref("/out.dat", 1)
	records := []Record{
		NewString(subject, AttrType, TypeFile),
		NewInput(subject, ref("proc/9/tool", 0)),
		NewString(subject, AttrName, "/out.dat"),
		NewString(subject, AttrEnv, ""), // empty value must survive
	}
	meta := EncodeS3Metadata(records)
	got, err := DecodeS3Metadata(subject, meta)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, records) {
		t.Fatalf("round trip:\n got %v\nwant %v", got, records)
	}
}

func TestS3MetadataIgnoresForeignKeys(t *testing.T) {
	subject := ref("x", 0)
	meta := EncodeS3Metadata([]Record{NewString(subject, AttrType, TypeFile)})
	meta["nonce"] = "42"
	meta["overflow"] = "bucket/key"
	got, err := DecodeS3Metadata(subject, meta)
	if err != nil || len(got) != 1 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestS3MetadataOrdering(t *testing.T) {
	subject := ref("x", 0)
	var records []Record
	for i := 0; i < 15; i++ {
		records = append(records, NewString(subject, AttrEnv, fmt.Sprintf("v%d", i)))
	}
	meta := EncodeS3Metadata(records)
	got, err := DecodeS3Metadata(subject, meta)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range got {
		if r.Value.Str != fmt.Sprintf("v%d", i) {
			t.Fatalf("order broken at %d: %v", i, got)
		}
	}
}

func TestS3MetadataMalformed(t *testing.T) {
	subject := ref("x", 0)
	if _, err := DecodeS3Metadata(subject, map[string]string{"p-0": "no-separator"}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("missing separator: %v", err)
	}
	if _, err := DecodeS3Metadata(subject, map[string]string{"p-0": "input\x1fnot-a-ref"}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("bad ref: %v", err)
	}
}

func TestS3MetadataSize(t *testing.T) {
	meta := map[string]string{"ab": "cde", "f": ""}
	if got := S3MetadataSize(meta); got != 6 {
		t.Fatalf("S3MetadataSize = %d, want 6", got)
	}
}

func TestItemNameRoundTrip(t *testing.T) {
	cases := []Ref{
		ref("foo", 2),
		ref("/data/my_file.txt", 0),
		ref("a_b", 10),
	}
	for _, r := range cases {
		got, err := ParseItemName(EncodeItemName(r))
		if err != nil || got != r {
			t.Fatalf("item name round trip %v: %v, %v", r, got, err)
		}
	}
	// The paper's own example.
	if EncodeItemName(ref("foo", 2)) != "foo_2" {
		t.Fatalf("EncodeItemName(foo:2) = %q, want foo_2", EncodeItemName(ref("foo", 2)))
	}
}

func TestParseItemNameErrors(t *testing.T) {
	for _, s := range []string{"", "plain", "_2", "x_", "x_y"} {
		if _, err := ParseItemName(s); err == nil {
			t.Fatalf("ParseItemName(%q) succeeded", s)
		}
	}
}

func TestSDBAttrsRoundTrip(t *testing.T) {
	subject := ref("foo", 2)
	records := []Record{
		NewInput(subject, ref("bar", 2)),
		NewString(subject, AttrType, TypeFile),
	}
	attrs := EncodeSDBAttrs(records)
	// The paper's §4.2 representation.
	want := []SDBAttr{{"input", "bar:2"}, {"type", "file"}}
	if !reflect.DeepEqual(attrs, want) {
		t.Fatalf("attrs = %v, want %v", attrs, want)
	}
	got, err := DecodeSDBAttrs(subject, attrs, nil)
	if err != nil || !reflect.DeepEqual(got, records) {
		t.Fatalf("round trip: %v, %v", got, err)
	}
}

func TestSDBAttrsIgnoreSet(t *testing.T) {
	subject := ref("foo", 2)
	attrs := []SDBAttr{
		{"md5", "abc123"},
		{"type", "file"},
	}
	got, err := DecodeSDBAttrs(subject, attrs, map[string]bool{"md5": true})
	if err != nil || len(got) != 1 || got[0].Attr != "type" {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestJSONRecordsRoundTrip(t *testing.T) {
	records := sampleRecords()
	records = append(records, NewString(ref("e", 0), AttrEnv, "")) // empty string value
	data, err := MarshalJSONRecords(records)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalJSONRecords(data)
	if err != nil || !reflect.DeepEqual(got, records) {
		t.Fatalf("round trip failed: %v / %v", got, err)
	}
}

func TestJSONRecordsRoundTripQuick(t *testing.T) {
	f := func(obj string, ver uint8, attr string, val string, isRef bool) bool {
		if obj == "" || attr == "" || attr == AttrInput {
			return true
		}
		subject := Ref{Object: ObjectID(obj), Version: Version(ver)}
		var rec Record
		if isRef {
			rec = NewInput(subject, ref("dep", 3))
		} else {
			rec = NewString(subject, attr, val)
		}
		data, err := MarshalJSONRecords([]Record{rec})
		if err != nil {
			return false
		}
		got, err := UnmarshalJSONRecords(data)
		return err == nil && len(got) == 1 && got[0] == rec
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalJSONErrors(t *testing.T) {
	for _, data := range []string{
		"not json",
		`[{"s":"bad","a":"x","t":true}]`,          // malformed subject ref
		`[{"s":"a:1","a":"","t":true}]`,           // empty attr
		`[{"s":"a:1","a":"input","r":"notaref"}]`, // bad ref value
	} {
		if _, err := UnmarshalJSONRecords([]byte(data)); !errors.Is(err, ErrMalformed) {
			t.Fatalf("data %q: err = %v, want ErrMalformed", data, err)
		}
	}
}

func TestChunkJSONRespectsBudgetAndOrder(t *testing.T) {
	subject := ref("s", 0)
	var records []Record
	for i := 0; i < 200; i++ {
		records = append(records, NewString(subject, AttrEnv, fmt.Sprintf("value-%04d", i)))
	}
	const budget = 512
	chunks, err := ChunkJSON(records, budget)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) < 2 {
		t.Fatalf("expected multiple chunks, got %d", len(chunks))
	}
	var reassembled []Record
	for i, c := range chunks {
		if len(c) > budget {
			t.Fatalf("chunk %d is %d bytes > budget %d", i, len(c), budget)
		}
		part, err := UnmarshalJSONRecords(c)
		if err != nil {
			t.Fatalf("chunk %d undecodable: %v", i, err)
		}
		reassembled = append(reassembled, part...)
	}
	if !reflect.DeepEqual(reassembled, records) {
		t.Fatal("reassembly lost or reordered records")
	}
}

func TestChunkJSONOversizedSingleRecord(t *testing.T) {
	subject := ref("s", 0)
	big := NewString(subject, AttrEnv, strings.Repeat("x", 2000))
	chunks, err := ChunkJSON([]Record{big}, 512)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 1 || len(chunks[0]) <= 512 {
		t.Fatalf("oversized record should become its own oversized chunk; got %d chunks", len(chunks))
	}
}

func TestChunkJSONEmpty(t *testing.T) {
	chunks, err := ChunkJSON(nil, 100)
	if err != nil || chunks != nil {
		t.Fatalf("empty input: %v, %v", chunks, err)
	}
}

func TestChunkJSONMatchesMarshalQuick(t *testing.T) {
	// Property: chunking then concatenating record lists equals the input.
	f := func(vals []string, budgetRaw uint8) bool {
		budget := 64 + int(budgetRaw)*8
		subject := ref("s", 0)
		var records []Record
		for _, v := range vals {
			records = append(records, NewString(subject, AttrEnv, v))
		}
		chunks, err := ChunkJSON(records, budget)
		if err != nil {
			return false
		}
		var out []Record
		for _, c := range chunks {
			part, err := UnmarshalJSONRecords(c)
			if err != nil {
				return false
			}
			out = append(out, part...)
		}
		if len(out) != len(records) {
			return false
		}
		for i := range out {
			if out[i] != records[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
