package prov

import (
	"fmt"
	"io"
	"sort"
)

// Graph is an in-memory provenance graph: records indexed by subject, with
// forward (input) and reverse (derived-object) edges. Query engines build
// one from retrieved records; the S3-only architecture's full-scan queries
// materialize one as they go.
//
// Graph is not safe for concurrent mutation.
type Graph struct {
	records map[Ref][]Record
	// children: ancestor -> set of subjects that list it as input.
	children map[Ref][]Ref
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		records:  make(map[Ref][]Record),
		children: make(map[Ref][]Ref),
	}
}

// Add inserts one record.
func (g *Graph) Add(r Record) {
	g.records[r.Subject] = append(g.records[r.Subject], r)
	if r.Attr == AttrInput && r.Value.Kind == KindRef {
		g.children[r.Value.Ref] = append(g.children[r.Value.Ref], r.Subject)
	}
}

// AddAll inserts a batch of records.
func (g *Graph) AddAll(records []Record) {
	for _, r := range records {
		g.Add(r)
	}
}

// Len is the number of distinct subjects.
func (g *Graph) Len() int { return len(g.records) }

// NumRecords is the total record count.
func (g *Graph) NumRecords() int {
	n := 0
	for _, rs := range g.records {
		n += len(rs)
	}
	return n
}

// Records returns the records asserted about ref, in insertion order.
func (g *Graph) Records(ref Ref) []Record {
	return g.records[ref]
}

// Has reports whether any records exist for ref.
func (g *Graph) Has(ref Ref) bool {
	_, ok := g.records[ref]
	return ok
}

// Subjects returns all subject refs, sorted for determinism.
func (g *Graph) Subjects() []Ref {
	out := make([]Ref, 0, len(g.records))
	for r := range g.records {
		out = append(out, r)
	}
	sortRefs(out)
	return out
}

// EdgeSources returns every ref that some subject lists as an input,
// sorted — including refs with no records of their own. Such edge-only
// refs are real: on the S3-only architecture an overwrite replaces the
// object's per-version metadata, so a superseded version survives in a
// scan-built graph only as other subjects' input edges.
func (g *Graph) EdgeSources() []Ref {
	out := make([]Ref, 0, len(g.children))
	for r := range g.children {
		out = append(out, r)
	}
	sortRefs(out)
	return out
}

// Inputs returns ref's direct dependencies.
func (g *Graph) Inputs(ref Ref) []Ref {
	var out []Ref
	for _, r := range g.records[ref] {
		if r.Attr == AttrInput && r.Value.Kind == KindRef {
			out = append(out, r.Value.Ref)
		}
	}
	return out
}

// Children returns the subjects that directly depend on ref.
func (g *Graph) Children(ref Ref) []Ref {
	out := append([]Ref(nil), g.children[ref]...)
	sortRefs(out)
	return out
}

// Ancestors returns every ref reachable from ref through input edges,
// excluding ref itself, sorted.
func (g *Graph) Ancestors(ref Ref) []Ref {
	return g.closure(ref, g.Inputs)
}

// Descendants returns every ref that transitively depends on ref, excluding
// ref itself, sorted. This is the paper's Q.3 shape ("find all the
// descendants of files derived from blast").
func (g *Graph) Descendants(ref Ref) []Ref {
	return g.closure(ref, func(r Ref) []Ref { return g.children[r] })
}

func (g *Graph) closure(start Ref, next func(Ref) []Ref) []Ref {
	seen := map[Ref]bool{start: true}
	var out []Ref
	frontier := []Ref{start}
	for len(frontier) > 0 {
		var nextFrontier []Ref
		for _, r := range frontier {
			for _, n := range next(r) {
				if !seen[n] {
					seen[n] = true
					out = append(out, n)
					nextFrontier = append(nextFrontier, n)
				}
			}
		}
		frontier = nextFrontier
	}
	sortRefs(out)
	return out
}

// FindByAttr returns the subjects having a record attr=value, sorted. Query
// engines use it for phase-one lookups like "all objects whose name is
// blast".
func (g *Graph) FindByAttr(attr, value string) []Ref {
	var out []Ref
	for subject, rs := range g.records {
		for _, r := range rs {
			if r.Attr == attr && r.Value.String() == value {
				out = append(out, subject)
				break
			}
		}
	}
	sortRefs(out)
	return out
}

// IsAcyclic verifies the causality invariant: no ref is its own ancestor.
// PASS versioning must make this true by construction; tests assert it.
func (g *Graph) IsAcyclic() bool {
	const (
		unvisited = 0
		inStack   = 1
		done      = 2
	)
	state := make(map[Ref]int, len(g.records))
	var visit func(Ref) bool
	visit = func(r Ref) bool {
		switch state[r] {
		case inStack:
			return false
		case done:
			return true
		}
		state[r] = inStack
		for _, in := range g.Inputs(r) {
			if !visit(in) {
				return false
			}
		}
		state[r] = done
		return true
	}
	for r := range g.records {
		if !visit(r) {
			return false
		}
	}
	return true
}

// MissingAncestors returns input references that have no records in the
// graph — the causal-ordering violation the paper defines ("the object is
// disconnected from its provenance tree"). A complete graph returns none.
func (g *Graph) MissingAncestors() []Ref {
	seen := make(map[Ref]bool)
	var out []Ref
	for subject := range g.records {
		for _, in := range g.Inputs(subject) {
			if !g.Has(in) && !seen[in] {
				seen[in] = true
				out = append(out, in)
			}
		}
	}
	sortRefs(out)
	return out
}

// WriteDOT renders the graph in Graphviz DOT form for the examples.
func (g *Graph) WriteDOT(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "digraph provenance {"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "  rankdir=BT;"); err != nil {
		return err
	}
	for _, subject := range g.Subjects() {
		attrs := map[string]string{}
		for _, r := range g.records[subject] {
			if r.Attr == AttrType || r.Attr == AttrName {
				attrs[r.Attr] = r.Value.String()
			}
		}
		shape := "box"
		if attrs[AttrType] == TypeProcess {
			shape = "ellipse"
		}
		if _, err := fmt.Fprintf(w, "  %q [shape=%s];\n", subject.String(), shape); err != nil {
			return err
		}
		for _, in := range g.Inputs(subject) {
			if _, err := fmt.Fprintf(w, "  %q -> %q;\n", subject.String(), in.String()); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// SortRefs orders refs canonically: by object, then version. Query engines
// and the shared evaluator use it as the one deterministic result order.
func SortRefs(refs []Ref) { sortRefs(refs) }

func sortRefs(refs []Ref) {
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Object != refs[j].Object {
			return refs[i].Object < refs[j].Object
		}
		return refs[i].Version < refs[j].Version
	})
}
