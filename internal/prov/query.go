package prov

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file defines the composable query descriptor that replaced the
// fixed-verb query surface (AllProvenance / OutputsOf / DescendantsOfOutputs
// / Ancestors / Dependents). The paper's evaluation hardcodes three query
// classes; real provenance consumers ask arbitrary parameterized questions —
// by tool, by attribute, by lineage direction — so the descriptor carries
// filters, a traversal, a projection, and pagination, and every backend
// compiles it into its own cheapest plan.
//
// One descriptor answers all of the paper's queries:
//
//	Q.1  all provenance            Query{}
//	Q.2  outputs of blast          Query{Tool: "blast", Type: TypeFile, Projection: ProjectRefs}
//	Q.3  descendants of Q.2        Q.2 + Direction: TraverseDescendants
//	     ancestors of one version  Query{Refs: []Ref{r}, Direction: TraverseAncestors, Projection: ProjectRefs}
//	     dependents of an object   Query{RefPrefix: obj + ":", Direction: TraverseDescendants, Depth: 1, IncludeSeeds: true, Projection: ProjectRefs}

// Direction selects an ancestry traversal from the filtered seed set.
type Direction uint8

// Traversal directions.
const (
	// TraverseNone returns the seed set itself.
	TraverseNone Direction = iota
	// TraverseAncestors follows input edges away from the seeds.
	TraverseAncestors
	// TraverseDescendants follows derived-object edges away from the seeds.
	TraverseDescendants
)

// String names the direction for plans and canonical keys.
func (d Direction) String() string {
	switch d {
	case TraverseNone:
		return "none"
	case TraverseAncestors:
		return "ancestors"
	case TraverseDescendants:
		return "descendants"
	default:
		return fmt.Sprintf("Direction(%d)", uint8(d))
	}
}

// Projection selects how much of each matched entry is returned.
type Projection uint8

// Projections.
const (
	// ProjectFull returns each result with its provenance records.
	ProjectFull Projection = iota
	// ProjectRefs returns references only — no record fetch, which on
	// indexed backends avoids touching non-matching items entirely.
	ProjectRefs
)

// String names the projection for plans and canonical keys.
func (p Projection) String() string {
	if p == ProjectRefs {
		return "refs"
	}
	return "full"
}

// AttrFilter is one attribute equality predicate: the subject has some
// record attr = value. Attributes are multi-valued; any value may satisfy
// the predicate.
type AttrFilter struct {
	Attr  string
	Value string
}

// Query is the composable provenance query descriptor. All filters AND
// together to select the seed set; an empty filter section selects every
// subject in the repository. A traversal, when present, replaces the result
// set with the closure reached from the seeds.
type Query struct {
	// Tool selects subjects that are outputs of the named tool: they list
	// an instance of the tool (a subject carrying name = Tool) among their
	// inputs. This is the paper's Q.2 phrasing ("all the files that were
	// outputs of blast").
	Tool string
	// Type selects subjects carrying a record type = Type (TypeFile,
	// TypeProcess, TypePipe).
	Type string
	// Attrs selects subjects carrying, for every listed filter, some
	// record attr = value.
	Attrs []AttrFilter
	// RefPrefix selects subjects whose canonical "object:version" form has
	// the given prefix. "obj:" selects every version of obj (the
	// dependents idiom); "/data/" selects everything under /data/.
	RefPrefix string
	// Refs, when non-empty, pins the seed set to exactly these versions
	// (intersected with the other filters if any are set).
	Refs []Ref

	// Direction optionally traverses the ancestry graph from the seeds.
	Direction Direction
	// Depth bounds the traversal to that many edges from the seeds;
	// 0 means unlimited.
	Depth int
	// IncludeSeeds keeps traversal results that are themselves seeds.
	// The default (false) excludes the seed set from the closure — the
	// Q.3 shape, where the outputs themselves are not their own
	// descendants. Dependents-style queries set it so that later versions
	// of the queried object still count as dependents.
	IncludeSeeds bool

	// Projection selects refs-only or full-record results.
	Projection Projection

	// Limit, when positive, paginates: at most Limit entries are returned
	// and the last entry of a truncated page carries an opaque Cursor.
	Limit int
	// Cursor resumes a paginated query. Cursors are pinned to the
	// snapshot generation the first page was evaluated at, so pagination
	// stays consistent across concurrent writes.
	Cursor string
}

// HasFilters reports whether any seed filter is set.
func (q Query) HasFilters() bool {
	return q.Tool != "" || q.Type != "" || len(q.Attrs) > 0 || q.RefPrefix != "" || len(q.Refs) > 0
}

// AttrFilters returns the effective attribute predicates: Attrs plus the
// Type shorthand, deduplicated and sorted for deterministic plans.
func (q Query) AttrFilters() []AttrFilter {
	out := make([]AttrFilter, 0, len(q.Attrs)+1)
	if q.Type != "" {
		out = append(out, AttrFilter{Attr: AttrType, Value: q.Type})
	}
	out = append(out, q.Attrs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Attr != out[j].Attr {
			return out[i].Attr < out[j].Attr
		}
		return out[i].Value < out[j].Value
	})
	dedup := out[:0]
	for i, f := range out {
		if i == 0 || f != out[i-1] {
			dedup = append(dedup, f)
		}
	}
	return dedup
}

// Validate rejects descriptors no backend can answer.
func (q Query) Validate() error {
	if q.Depth < 0 {
		return fmt.Errorf("prov: negative query depth %d", q.Depth)
	}
	if q.Limit < 0 {
		return fmt.Errorf("prov: negative query limit %d", q.Limit)
	}
	if q.Depth > 0 && q.Direction == TraverseNone {
		return fmt.Errorf("prov: query depth without a traversal direction")
	}
	if q.IncludeSeeds && q.Direction == TraverseNone {
		return fmt.Errorf("prov: IncludeSeeds without a traversal direction")
	}
	if q.Cursor != "" && q.Direction == TraverseNone && !q.HasFilters() && q.Limit == 0 {
		return fmt.Errorf("prov: cursor without a limit on an unbounded query")
	}
	return nil
}

// Key is the canonical serialization of the logical query — everything
// except pagination state (Limit, Cursor). Two descriptors asking the same
// question serialize identically, so caches memoize results under it and
// cursors bind to it.
func (q Query) Key() string {
	var b strings.Builder
	b.WriteString("q2")
	field := func(tag, v string) {
		if v == "" {
			return
		}
		b.WriteString("|")
		b.WriteString(tag)
		b.WriteString("=")
		b.WriteString(strconv.Quote(v))
	}
	field("tool", q.Tool)
	for _, f := range q.AttrFilters() {
		b.WriteString("|attr=")
		b.WriteString(strconv.Quote(f.Attr))
		b.WriteString(":")
		b.WriteString(strconv.Quote(f.Value))
	}
	field("prefix", q.RefPrefix)
	if len(q.Refs) > 0 {
		refs := append([]Ref(nil), q.Refs...)
		sortRefs(refs)
		b.WriteString("|refs=")
		for i, r := range refs {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(strconv.Quote(r.String()))
		}
	}
	if q.Direction != TraverseNone {
		field("dir", q.Direction.String())
		if q.Depth > 0 {
			field("depth", strconv.Itoa(q.Depth))
		}
		if q.IncludeSeeds {
			field("seeds", "keep")
		}
	}
	field("proj", q.Projection.String())
	return b.String()
}

// RefsKey is the canonical key of the query's reference set — the Key with
// the projection normalized to refs-only. Backends compute the matched refs
// once and memoize them under this key regardless of projection.
func (q Query) RefsKey() string {
	q.Projection = ProjectRefs
	return q.Key()
}

// --- fixed-verb compilers ----------------------------------------------------
//
// The deprecated verbs of the original core.Querier compile to these
// descriptors; each backend's native plan reproduces the verb's exact cloud
// ops, so the paper's Table 3 is unchanged.

// Q1 compiles the paper's Q.1: the provenance of every object version.
func Q1() Query { return Query{Projection: ProjectFull} }

// QOutputsOf compiles the paper's Q.2: file versions written by instances
// of the named tool.
func QOutputsOf(tool string) Query {
	return Query{Tool: tool, Type: TypeFile, Projection: ProjectRefs}
}

// QDescendantsOfOutputs compiles the paper's Q.3: everything transitively
// derived from the named tool's outputs.
func QDescendantsOfOutputs(tool string) Query {
	return Query{Tool: tool, Type: TypeFile, Direction: TraverseDescendants, Projection: ProjectRefs}
}

// QAncestors compiles a full-ancestry walk from one object version.
func QAncestors(ref Ref) Query {
	return Query{Refs: []Ref{ref}, Direction: TraverseAncestors, Projection: ProjectRefs}
}

// QDependents compiles the deletion-guard query: every subject listing any
// version of object among its inputs. IncludeSeeds keeps later versions of
// the object itself, which depend on earlier ones.
func QDependents(object ObjectID) Query {
	return Query{
		RefPrefix:    string(object) + ":",
		Direction:    TraverseDescendants,
		Depth:        1,
		IncludeSeeds: true,
		Projection:   ProjectRefs,
	}
}
