// Package prov defines the provenance data model shared by every
// architecture in this repository: records, object references, the ancestry
// graph, and the wire encodings for each storage backend.
//
// The model follows PASS (paper §2.4): persistent objects (files) and
// transient objects (processes, pipes) are versioned, and provenance records
// relate a specific version of one object to versions of others ("when a
// process issues a read system call, PASS creates a provenance record
// stating that the process depends upon the file being read"). Versioning
// preserves causality and keeps the dependency graph acyclic.
package prov

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ObjectID names a PASS object: a file path like "/out/result.dat" or a
// process identity like "proc/1423/blast".
type ObjectID string

// Version numbers an object's causality-preserving versions, starting at 0.
type Version int

// Ref points at one version of one object. Its string form, "object:version",
// is the form stored in SimpleDB attribute values (the paper's example:
// provenance record (input, bar:2)).
type Ref struct {
	Object  ObjectID
	Version Version
}

// String renders the canonical object:version form.
func (r Ref) String() string {
	return string(r.Object) + ":" + strconv.Itoa(int(r.Version))
}

// ParseRef parses the canonical object:version form. The version is the
// digits after the last colon, so object names may themselves contain colons.
func ParseRef(s string) (Ref, error) {
	i := strings.LastIndexByte(s, ':')
	if i < 0 || i == len(s)-1 {
		return Ref{}, fmt.Errorf("prov: malformed ref %q", s)
	}
	v, err := strconv.Atoi(s[i+1:])
	if err != nil || v < 0 {
		return Ref{}, fmt.Errorf("prov: malformed ref version in %q", s)
	}
	if i == 0 {
		return Ref{}, fmt.Errorf("prov: empty object in ref %q", s)
	}
	return Ref{Object: ObjectID(s[:i]), Version: Version(v)}, nil
}

// Object types recorded under AttrType.
const (
	TypeFile    = "file"
	TypeProcess = "process"
	TypePipe    = "pipe"
)

// Well-known attribute names, following PASS conventions. AttrInput is the
// ancestry edge; everything else is descriptive.
const (
	// AttrInput records a dependency on another object version. Its value
	// is a Ref. This is the edge the ancestry graph is built from.
	AttrInput = "input"
	// AttrName is the object's human name (file path, program name).
	AttrName = "name"
	// AttrType is one of TypeFile, TypeProcess, TypePipe.
	AttrType = "type"
	// AttrArgv is a process's command line.
	AttrArgv = "argv"
	// AttrEnv is a process's environment (recorded selectively).
	AttrEnv = "env"
	// AttrPID is a process's numeric ID at capture time.
	AttrPID = "pid"
	// AttrKernel is the kernel version that produced the record.
	AttrKernel = "kernel"
)

// ValueKind discriminates record values.
type ValueKind uint8

// Value kinds.
const (
	KindString ValueKind = iota
	KindRef
)

// Value is a provenance record's value: either an opaque string or a
// reference to another object version.
type Value struct {
	Kind ValueKind
	Str  string
	Ref  Ref
}

// StringValue wraps a string.
func StringValue(s string) Value { return Value{Kind: KindString, Str: s} }

// RefValue wraps a reference.
func RefValue(r Ref) Value { return Value{Kind: KindRef, Ref: r} }

// String renders the value for storage: refs in object:version form.
func (v Value) String() string {
	if v.Kind == KindRef {
		return v.Ref.String()
	}
	return v.Str
}

// Size is the value's encoded length in bytes.
func (v Value) Size() int { return len(v.String()) }

// Record is one provenance assertion: Subject's Attr has Value. A subject
// typically carries many records (its type, name, and one input record per
// dependency).
type Record struct {
	Subject Ref
	Attr    string
	Value   Value
}

// String renders a debugging form.
func (r Record) String() string {
	return fmt.Sprintf("%s %s=%s", r.Subject, r.Attr, r.Value)
}

// Size is the record's approximate encoded size: attribute name plus value.
// The paper measures provenance sizes in exactly these terms (attribute
// name/value bytes).
func (r Record) Size() int { return len(r.Attr) + r.Value.Size() }

// ErrMalformed reports an undecodable stored record.
var ErrMalformed = errors.New("prov: malformed encoded record")

// NewInput builds the common dependency record: subject depends on input.
func NewInput(subject, input Ref) Record {
	return Record{Subject: subject, Attr: AttrInput, Value: RefValue(input)}
}

// NewString builds a descriptive string record.
func NewString(subject Ref, attr, value string) Record {
	return Record{Subject: subject, Attr: attr, Value: StringValue(value)}
}

// IsRefAttr reports whether attr carries Ref values. Stored forms do not tag
// value kinds; decoding relies on the attribute schema, which for PASS means
// exactly the input attribute.
func IsRefAttr(attr string) bool { return attr == AttrInput }

// RecordsSize sums Record.Size over records: the "provenance size" measure
// used throughout the paper's analysis.
func RecordsSize(records []Record) int64 {
	var n int64
	for _, r := range records {
		n += int64(r.Size())
	}
	return n
}

// BySubject groups records by subject reference, preserving order within a
// subject. Architectures flush one subject (one object version) at a time.
func BySubject(records []Record) map[Ref][]Record {
	out := make(map[Ref][]Record)
	for _, r := range records {
		out[r.Subject] = append(out[r.Subject], r)
	}
	return out
}
