package cost

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"passcloud/internal/cloud"
	"passcloud/internal/cloud/billing"
	"passcloud/internal/core"
	"passcloud/internal/core/integrity"
	"passcloud/internal/core/s3only"
	"passcloud/internal/core/s3sdb"
	"passcloud/internal/core/s3sdbsqs"
	"passcloud/internal/core/shard"
	"passcloud/internal/pass"
	"passcloud/internal/sim"
	"passcloud/internal/workload"
)

// ShardedQueryCost is one query class metered through the shard router.
// USD prices the query's metered delta (requests plus transfer; storage
// does not move under a read) at January-2009 rates, so the multi-hop
// planner's op savings on Q.2/Q.3 show up as dollars too.
type ShardedQueryCost struct {
	Query   string  `json:"query"`
	Ops     int64   `json:"ops"`
	DataOut int64   `json:"data_out"`
	Results int     `json:"results"`
	USD     float64 `json:"usd"`
}

// ShardedRow is one (architecture, shard count) cell of the sharded cost
// matrix: the Table 2 write cost and Table 3 query cost of the combined
// workload pushed through the router, plus what a full tamper-evidence
// audit of the resulting namespace costs.
type ShardedRow struct {
	Arch   string `json:"arch"`
	Shards int    `json:"shards"`
	// ProvBytes / ProvOps are the Table 2 provenance overheads summed
	// across the member shards' namespaces.
	ProvBytes int64 `json:"prov_bytes"`
	ProvOps   int64 `json:"prov_ops"`
	// Queries holds the Table 3 classes run through the router. Only the
	// first two architectures are queried (the paper: "the query results
	// are the same for the last two architectures").
	Queries []ShardedQueryCost `json:"queries,omitempty"`
	// VerifyOps / VerifyUSD are the cloud operations and the January-2009
	// bill a full VerifyStores audit of the namespace costs. VerifyUSD
	// prices only the audit's delta (requests and transfer; storage is
	// unchanged by reading).
	VerifyOps int64   `json:"verify_ops"`
	VerifyUSD float64 `json:"verify_usd"`
	// VerifySubjects / VerifyRecords report the audit's coverage, and
	// VerifyClean that the freshly loaded namespace verified with zero
	// divergences — a false positive here is a harness bug.
	VerifySubjects int  `json:"verify_subjects"`
	VerifyRecords  int  `json:"verify_records"`
	VerifyClean    bool `json:"verify_clean"`
}

// ShardedCosts is the sharded cost matrix: the Tables 2/3 workloads
// driven through the shard router at each shard count, with the
// verification cost of the loaded namespace alongside.
type ShardedCosts struct {
	Scale       float64      `json:"scale"`
	Seed        int64        `json:"seed"`
	Tool        string       `json:"tool"`
	ShardCounts []int        `json:"shard_counts"`
	Rows        []ShardedRow `json:"rows"`
}

// shardedBuild is the per-shard store construction for one architecture,
// mirroring the unsharded harness builds (uncached queries, the WAL
// architecture's polling commit daemon).
type shardedBuild struct {
	stores  []shard.Store
	clouds  []*cloud.Cloud
	daemons []*s3sdbsqs.CommitDaemon
}

func buildShardedArch(arch string, multi *cloud.Multi, n int) (*shardedBuild, error) {
	b := &shardedBuild{}
	for s := 0; s < n; s++ {
		cl := multi.Namespace(fmt.Sprintf("s%d", s))
		b.clouds = append(b.clouds, cl)
		switch arch {
		case "s3":
			st, err := s3only.New(s3only.Config{Cloud: cl, DisableQueryCache: true})
			if err != nil {
				return nil, err
			}
			b.stores = append(b.stores, st)
		case "s3+sdb":
			st, err := s3sdb.New(s3sdb.Config{Cloud: cl, DisableQueryCache: true})
			if err != nil {
				return nil, err
			}
			b.stores = append(b.stores, st)
		case "s3+sdb+sqs":
			st, err := s3sdbsqs.New(s3sdbsqs.Config{Cloud: cl, ClientID: fmt.Sprintf("s%d", s), DisableQueryCache: true})
			if err != nil {
				return nil, err
			}
			d := s3sdbsqs.NewCommitDaemon(st, nil)
			d.Threshold = 256
			b.daemons = append(b.daemons, d)
			b.stores = append(b.stores, st)
		default:
			return nil, fmt.Errorf("cost: unknown architecture %q", arch)
		}
	}
	return b, nil
}

// drain runs every commit daemon to quiescence (no-op off the WAL
// architecture).
func (b *shardedBuild) drain(ctx context.Context, multi *cloud.Multi) error {
	for _, d := range b.daemons {
		for i := 0; ; i++ {
			n, err := d.RunOnce(ctx, true)
			if err != nil {
				return err
			}
			if n == 0 && d.PendingTransactions() == 0 {
				break
			}
			if i >= 50 {
				return fmt.Errorf("cost: sharded commit daemon did not drain (%d pending)", d.PendingTransactions())
			}
			multi.Settle()
		}
	}
	return nil
}

// usage sums the member namespaces' meters.
func (b *shardedBuild) usage() billing.Usage {
	var u billing.Usage
	for _, cl := range b.clouds {
		u = u.Add(cl.Usage())
	}
	return u
}

// Sharded drives the combined workload through the shard router at each
// requested shard count and reads the billing meters: the Tables 2/3
// costs of scale-out, plus the ops and dollars a full tamper-evidence
// audit (integrity.VerifyStores) of each loaded namespace costs. Shard
// counts default to 1, 4 and 16; the 1-shard row is the unsharded
// baseline the others are read against.
func (h *Harness) Sharded(ctx context.Context, shardCounts []int) (*ShardedCosts, error) {
	h.defaults()
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 4, 16}
	}
	counts := append([]int(nil), shardCounts...)
	sort.Ints(counts)
	out := &ShardedCosts{Scale: h.Scale, Seed: h.Seed, Tool: h.Tool, ShardCounts: counts}

	for _, arch := range []string{"s3", "s3+sdb", "s3+sdb+sqs"} {
		for _, n := range counts {
			row, err := h.shardedRun(ctx, arch, n)
			if err != nil {
				return nil, fmt.Errorf("cost: sharded %s x%d: %w", arch, n, err)
			}
			out.Rows = append(out.Rows, *row)
		}
	}
	return out, nil
}

func (h *Harness) shardedRun(ctx context.Context, arch string, n int) (*ShardedRow, error) {
	multi := cloud.NewMulti(cloud.Config{Seed: h.Seed})
	b, err := buildShardedArch(arch, multi, n)
	if err != nil {
		return nil, err
	}
	var store core.Store
	if n == 1 {
		store = b.stores[0].(core.Store)
	} else {
		r, err := shard.New(shard.Config{Shards: b.stores})
		if err != nil {
			return nil, err
		}
		store = r
	}
	setup := b.usage()

	// Load: same flush shape as the unsharded harness — the WAL daemons
	// poll every few flushed events, then drain fully.
	events := 0
	flush := core.Flusher(store)
	if len(b.daemons) > 0 {
		inner := flush
		flush = func(ctx context.Context, batch []pass.FlushEvent) error {
			if err := inner(ctx, batch); err != nil {
				return err
			}
			events += len(batch)
			if events >= 64 {
				events = 0
				for _, d := range b.daemons {
					if _, err := d.RunOnce(ctx, false); err != nil {
						return err
					}
				}
			}
			return nil
		}
	}
	// Collect dataset stats if the unsharded harness has not run: the
	// sharded matrix sees the identical deterministic flush stream.
	var collector *Collector
	if h.stats.Objects == 0 {
		collector = &Collector{}
		flush = collector.Tee(flush)
	}
	sys := pass.NewSystem(pass.Config{Flush: flush})
	w := workload.NewCombined(h.Scale)
	if err := workload.Run(ctx, sys, sim.NewRNG(h.Seed), w); err != nil {
		return nil, err
	}
	if collector != nil {
		h.stats = collector.Stats
	}
	if err := core.SyncStore(ctx, store); err != nil {
		return nil, err
	}
	if err := b.drain(ctx, multi); err != nil {
		return nil, err
	}
	multi.Settle()
	loadEnd := b.usage()

	rawBytes, rawOps := h.stats.DataBytes, h.stats.Objects
	row := &ShardedRow{Arch: arch, Shards: n}
	row.ProvOps = loadEnd.TotalOps() - setup.TotalOps() - rawOps
	s3Extra := loadEnd.Storage(billing.S3) - rawBytes
	switch arch {
	case "s3":
		row.ProvBytes = s3Extra
	case "s3+sdb":
		row.ProvBytes = loadEnd.Storage(billing.SimpleDB) + s3Extra
	case "s3+sdb+sqs":
		row.ProvBytes = loadEnd.BytesIn(billing.SQS) + loadEnd.BytesOut(billing.SQS) +
			loadEnd.Storage(billing.SimpleDB) + s3Extra
	}

	// Table 3 classes through the router, cold, for the two backends the
	// paper reports.
	if arch != "s3+sdb+sqs" {
		querier, ok := store.(core.Querier)
		if !ok {
			return nil, fmt.Errorf("store is not a querier")
		}
		type queryFn struct {
			name string
			run  func() (int, error)
		}
		queries := []queryFn{
			{"Q.1", func() (int, error) {
				all, err := core.AllProvenance(ctx, querier)
				return len(all), err
			}},
			{"Q.2", func() (int, error) {
				refs, err := core.OutputsOf(ctx, querier, h.Tool)
				return len(refs), err
			}},
			{"Q.3", func() (int, error) {
				refs, err := core.DescendantsOfOutputs(ctx, querier, h.Tool)
				return len(refs), err
			}},
		}
		for _, q := range queries {
			before := b.usage()
			results, err := q.run()
			if err != nil {
				return nil, fmt.Errorf("%s: %w", q.name, err)
			}
			after := b.usage()
			row.Queries = append(row.Queries, ShardedQueryCost{
				Query:   q.name,
				Ops:     after.TotalOps() - before.TotalOps(),
				DataOut: totalOut(after) - totalOut(before),
				Results: results,
				USD:     billing.Jan2009.Price(after.Sub(before)).Total(),
			})
		}
	}

	// Verification cost: a full audit of every shard, composed into the
	// namespace root, priced off the meter delta.
	auditors := make([]integrity.Auditor, len(b.stores))
	for i, st := range b.stores {
		a, ok := st.(integrity.Auditor)
		if !ok {
			return nil, fmt.Errorf("shard %d is not auditable", i)
		}
		auditors[i] = a
	}
	before := b.usage()
	res, err := integrity.VerifyStores(ctx, auditors)
	if err != nil {
		return nil, fmt.Errorf("verify: %w", err)
	}
	after := b.usage()
	delta := after.Sub(before)
	row.VerifyOps = delta.TotalOps()
	row.VerifyUSD = billing.Jan2009.Price(delta).Total()
	row.VerifyClean = res.Clean()
	for _, sr := range res.Shards {
		row.VerifySubjects += sr.Subjects
		row.VerifyRecords += sr.Records
	}
	return row, nil
}

// String renders the matrix for terminal use.
func (t *ShardedCosts) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sharded cost matrix (scale %.2f, seed %d): combined workload through the shard router\n", t.Scale, t.Seed)
	fmt.Fprintf(&b, "%-12s %7s %12s %12s %10s %10s %10s %10s %10s %11s %10s\n",
		"arch", "shards", "prov-bytes", "prov-ops", "Q.1-ops", "Q.2-ops", "Q.3-ops", "Q.2-$", "Q.3-$", "verify-ops", "verify-$")
	for _, r := range t.Rows {
		qops := map[string]string{"Q.1": "-", "Q.2": "-", "Q.3": "-"}
		qusd := map[string]string{"Q.2": "-", "Q.3": "-"}
		for _, q := range r.Queries {
			qops[q.Query] = fmt.Sprintf("%d", q.Ops)
			if q.Query != "Q.1" {
				qusd[q.Query] = fmt.Sprintf("%.6f", q.USD)
			}
		}
		clean := ""
		if !r.VerifyClean {
			clean = "  DIVERGED"
		}
		fmt.Fprintf(&b, "%-12s %7d %12s %12d %10s %10s %10s %10s %10s %11d %10.4f%s\n",
			r.Arch, r.Shards, fmtBytes(r.ProvBytes), r.ProvOps,
			qops["Q.1"], qops["Q.2"], qops["Q.3"], qusd["Q.2"], qusd["Q.3"], r.VerifyOps, r.VerifyUSD, clean)
	}
	fmt.Fprintf(&b, "verification coverage: per-row subjects/records audited ride the JSON report (verify_subjects, verify_records)\n")
	return b.String()
}
