package cost

import (
	"context"
	"strings"
	"testing"

	"passcloud/internal/pass"
	"passcloud/internal/prov"
)

func TestCollectorCounts(t *testing.T) {
	c := &Collector{}
	fileRef := prov.Ref{Object: "/f", Version: 0}
	procRef := prov.Ref{Object: "proc/1/t", Version: 0}

	big := strings.Repeat("e", 2000)
	events := []pass.FlushEvent{
		{Ref: procRef, Type: prov.TypeProcess, Records: []prov.Record{
			prov.NewString(procRef, prov.AttrType, prov.TypeProcess),
			prov.NewString(procRef, prov.AttrEnv, big),
		}},
		{Ref: fileRef, Type: prov.TypeFile, Data: []byte("12345"), Records: []prov.Record{
			prov.NewString(fileRef, prov.AttrType, prov.TypeFile),
			prov.NewInput(fileRef, procRef),
		}},
	}
	if err := c.Flush(context.Background(), events); err != nil {
		t.Fatal(err)
	}
	st := c.Stats
	if st.Objects != 1 || st.Transients != 1 || st.Items != 2 {
		t.Fatalf("counts = %+v", st)
	}
	if st.DataBytes != 5 {
		t.Fatalf("DataBytes = %d", st.DataBytes)
	}
	if st.Records != 4 {
		t.Fatalf("Records = %d", st.Records)
	}
	if st.BigRecords != 1 {
		t.Fatalf("BigRecords = %d", st.BigRecords)
	}
	if st.ProvS3Bytes <= 0 || st.ProvSDBBytes <= st.ProvS3Bytes/2 {
		t.Fatalf("prov sizes = %d / %d", st.ProvS3Bytes, st.ProvSDBBytes)
	}
}

func TestCollectorTee(t *testing.T) {
	c := &Collector{}
	passed := 0
	fn := c.Tee(func(_ context.Context, batch []pass.FlushEvent) error { passed += len(batch); return nil })
	ref := prov.Ref{Object: "/f", Version: 0}
	ev := pass.FlushEvent{Ref: ref, Type: prov.TypeFile, Data: []byte("x"),
		Records: []prov.Record{prov.NewString(ref, prov.AttrType, prov.TypeFile)}}
	if err := fn(context.Background(), []pass.FlushEvent{ev}); err != nil {
		t.Fatal(err)
	}
	if passed != 1 || c.Stats.Objects != 1 {
		t.Fatalf("tee: passed=%d stats=%+v", passed, c.Stats)
	}
	// Nil next is fine.
	if err := c.Tee(nil)(context.Background(), []pass.FlushEvent{ev}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateFormulas(t *testing.T) {
	st := DatasetStats{
		Objects:      31_180,
		DataBytes:    1_363_148_800, // ~1.27 GB
		ProvS3Bytes:  127_716_556,   // ~121.8 MB
		ProvSDBBytes: 175_947_776,   // ~167.8 MB
		Items:        143_562,
		BigRecords:   24_952,
	}
	tbl := Estimate(st)
	if tbl.RawOps != 31_180 {
		t.Fatalf("RawOps = %d", tbl.RawOps)
	}
	rows := map[string]Table2Row{}
	for _, r := range tbl.Rows {
		rows[r.Arch] = r
	}

	// Architecture 1: ops = big records only.
	if got := rows["s3"].ProvOps; got != 24_952 {
		t.Fatalf("s3 ops = %d, want 24952", got)
	}
	// Architecture 2: items + big records.
	if got := rows["s3+sdb"].ProvOps; got != 143_562+24_952 {
		t.Fatalf("s3+sdb ops = %d", got)
	}
	// Architecture 3: 2*(objects + prov/8KB) + items + big records.
	wantOps := 2*(int64(31_180)+st.ProvS3Bytes/8192) + 143_562 + 24_952
	if got := rows["s3+sdb+sqs"].ProvOps; got != wantOps {
		t.Fatalf("s3+sdb+sqs ops = %d, want %d", got, wantOps)
	}
	// Architecture 3 storage: 2*S_SQS + S_SimpleDB.
	if got := rows["s3+sdb+sqs"].ProvBytes; got != 2*st.ProvS3Bytes+st.ProvSDBBytes {
		t.Fatalf("s3+sdb+sqs bytes = %d", got)
	}

	// The paper's ordering: each architecture costs more than the last.
	if !(rows["s3"].ProvBytes < rows["s3+sdb"].ProvBytes &&
		rows["s3+sdb"].ProvBytes < rows["s3+sdb+sqs"].ProvBytes) {
		t.Fatal("storage ordering violated")
	}
	if !(rows["s3"].ProvOps < rows["s3+sdb"].ProvOps &&
		rows["s3+sdb"].ProvOps < rows["s3+sdb+sqs"].ProvOps) {
		t.Fatal("ops ordering violated")
	}
}

func TestStatsScale(t *testing.T) {
	st := DatasetStats{Objects: 100, DataBytes: 1000, Items: 300}
	up := st.Scale(0.1)
	if up.Objects != 1000 || up.DataBytes != 10000 || up.Items != 3000 {
		t.Fatalf("scaled = %+v", up)
	}
	same := st.Scale(1)
	if same != st {
		t.Fatalf("scale 1 changed stats: %+v", same)
	}
}

func TestTableRendering(t *testing.T) {
	t2 := &Table2{RawBytes: 1 << 30, RawOps: 1000, Method: "measured", Scale: 0.1,
		Rows: []Table2Row{{Arch: "s3", ProvBytes: 100 << 20, ProvOps: 800}}}
	s := t2.String()
	for _, want := range []string{"Raw", "1.00GB", "100.0MB", "9.8%", "0.8x"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table2 output missing %q:\n%s", want, s)
		}
	}

	t3 := &Table3{Tool: "softmean", Scale: 0.1, Rows: []Table3Row{
		{Query: "Q.1", Arch: "S3", DataOut: 2048, Ops: 56, Results: 7}}}
	s = t3.String()
	for _, want := range []string{"Q.1", "S3", "2.0KB", "56"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table3 output missing %q:\n%s", want, s)
		}
	}

	s = Table1Report([]Table1Row{{Arch: "s3", Atomicity: true, Consistency: true, CausalOrdering: true}})
	if !strings.Contains(s, "yes") || !strings.Contains(s, "no") {
		t.Fatalf("Table1 output wrong:\n%s", s)
	}
}

// TestHarnessEndToEndSmall runs the full measured pipeline at a tiny scale
// and validates the paper's qualitative results: storage ordering, ops
// ordering, and the query-cost separation between S3 and SimpleDB.
func TestHarnessEndToEndSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run is slow")
	}
	ctx := context.Background()
	h := &Harness{Scale: 0.01, Seed: 2009}

	t2, err := h.Table2Measured(ctx)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", t2)
	rows := map[string]Table2Row{}
	for _, r := range t2.Rows {
		rows[r.Arch] = r
	}
	if !(rows["s3"].ProvOps < rows["s3+sdb"].ProvOps &&
		rows["s3+sdb"].ProvOps < rows["s3+sdb+sqs"].ProvOps) {
		t.Errorf("ops ordering violated: %+v", rows)
	}
	// Storage: the third architecture must dominate; the first two land
	// close together in the measured implementation (our S3 encoding pays
	// subject prefixes for piggybacked transient provenance, which the
	// paper's idealized accounting does not — see EXPERIMENTS.md).
	if rows["s3+sdb+sqs"].ProvBytes <= rows["s3+sdb"].ProvBytes {
		t.Errorf("s3+sdb+sqs storage must dominate: %+v", rows)
	}
	ratio := float64(rows["s3"].ProvBytes) / float64(rows["s3+sdb"].ProvBytes)
	if ratio < 0.6 || ratio > 1.6 {
		t.Errorf("s3 vs s3+sdb storage ratio %.2f outside comparable band", ratio)
	}
	// Overhead magnitude: around 10% for s3, tens of percent for sqs.
	s3Overhead := float64(rows["s3"].ProvBytes) / float64(t2.RawBytes)
	if s3Overhead < 0.03 || s3Overhead > 0.3 {
		t.Errorf("s3 provenance overhead = %.1f%%, out of plausible band", 100*s3Overhead)
	}

	t3, err := h.Table3Measured(ctx)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", t3)
	get := func(q, arch string) Table3Row {
		for _, r := range t3.Rows {
			if r.Query == q && r.Arch == arch {
				return r
			}
		}
		t.Fatalf("row %s/%s missing", q, arch)
		return Table3Row{}
	}
	// Q.2/Q.3: SimpleDB must beat S3 by a wide margin in ops and data.
	for _, q := range []string{"Q.2", "Q.3"} {
		s3row, sdbRow := get(q, "S3"), get(q, "SimpleDB")
		if sdbRow.Ops*10 > s3row.Ops {
			t.Errorf("%s: SimpleDB ops %d not an order of magnitude under S3 ops %d", q, sdbRow.Ops, s3row.Ops)
		}
		if sdbRow.DataOut*10 > s3row.DataOut {
			t.Errorf("%s: SimpleDB data %d not far under S3 data %d", q, sdbRow.DataOut, s3row.DataOut)
		}
		// Same answers on both backends.
		if s3row.Results != sdbRow.Results {
			t.Errorf("%s: result counts differ: S3 %d vs SimpleDB %d", q, s3row.Results, sdbRow.Results)
		}
	}
	// Q.1 returns every subject on both backends.
	if q1s3, q1sdb := get("Q.1", "S3"), get("Q.1", "SimpleDB"); q1s3.Results != q1sdb.Results {
		t.Errorf("Q.1 subject counts differ: %d vs %d", q1s3.Results, q1sdb.Results)
	}
}
