package cost

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"passcloud/internal/cloud"
	"passcloud/internal/cloud/billing"
	"passcloud/internal/core"
	"passcloud/internal/core/shard"
	"passcloud/internal/pass"
	"passcloud/internal/prov"
	"passcloud/internal/replay"
	"passcloud/internal/sim"
	"passcloud/internal/workload"
)

// ReplayRow is one (architecture, shard count) cell of the replay cost
// matrix: the coverage and the cloud bill of re-executing every current
// lineage of the combined workload against a fresh sandbox namespace.
type ReplayRow struct {
	Arch   string `json:"arch"`
	Shards int    `json:"shards"`
	// Subjects / Sources / Processes / Compared mirror the replay report's
	// coverage counters.
	Subjects  int `json:"subjects"`
	Sources   int `json:"sources"`
	Processes int `json:"processes"`
	Compared  int `json:"compared"`
	// Divergences must be zero: the harness replays its own faithful
	// capture, so a finding here is a capture or replay bug.
	Divergences int `json:"divergences"`
	// ExtractOps counts source-side cloud operations the lineage
	// extraction queries cost (paginated ancestry traversal).
	ExtractOps int64 `json:"extract_ops"`
	// ReplayOps / ReplayUSD are the sandbox namespace's operations and
	// January-2009 bill for materializing the re-execution — the cloud
	// cost of reproducing the repository from its provenance.
	ReplayOps int64   `json:"replay_ops"`
	ReplayUSD float64 `json:"replay_usd"`
}

// ReplayCosts is the replay cost matrix across architectures and shard
// counts.
type ReplayCosts struct {
	Scale       float64     `json:"scale"`
	Seed        int64       `json:"seed"`
	ShardCounts []int       `json:"shard_counts"`
	Rows        []ReplayRow `json:"rows"`
}

// Replay loads the combined workload on each architecture and shard
// count, then re-executes every current file version's lineage against a
// fresh sandbox namespace, metering the extraction queries on the source
// side and the re-execution on the sandbox side. Shard counts default to
// 1 and 4.
func (h *Harness) Replay(ctx context.Context, shardCounts []int) (*ReplayCosts, error) {
	h.defaults()
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 4}
	}
	counts := append([]int(nil), shardCounts...)
	sort.Ints(counts)
	out := &ReplayCosts{Scale: h.Scale, Seed: h.Seed, ShardCounts: counts}
	for _, arch := range []string{"s3", "s3+sdb", "s3+sdb+sqs"} {
		for _, n := range counts {
			row, err := h.replayRun(ctx, arch, n)
			if err != nil {
				return nil, fmt.Errorf("cost: replay %s x%d: %w", arch, n, err)
			}
			out.Rows = append(out.Rows, *row)
		}
	}
	return out, nil
}

// buildStoreMatrix assembles one architecture at one shard count on a
// fresh region, routing through the shard router when n > 1.
func buildStoreMatrix(arch string, seed int64, n int) (*cloud.Multi, *shardedBuild, core.Store, error) {
	multi := cloud.NewMulti(cloud.Config{Seed: seed})
	b, err := buildShardedArch(arch, multi, n)
	if err != nil {
		return nil, nil, nil, err
	}
	if n == 1 {
		return multi, b, b.stores[0].(core.Store), nil
	}
	r, err := shard.New(shard.Config{Shards: b.stores})
	if err != nil {
		return nil, nil, nil, err
	}
	return multi, b, r, nil
}

func (h *Harness) replayRun(ctx context.Context, arch string, n int) (*ReplayRow, error) {
	multi, b, store, err := buildStoreMatrix(arch, h.Seed, n)
	if err != nil {
		return nil, err
	}
	sys := pass.NewSystem(pass.Config{Flush: core.Flusher(store)})
	if err := workload.Run(ctx, sys, sim.NewRNG(h.Seed), workload.NewCombined(h.Scale)); err != nil {
		return nil, err
	}
	if err := core.SyncStore(ctx, store); err != nil {
		return nil, err
	}
	if err := b.drain(ctx, multi); err != nil {
		return nil, err
	}
	multi.Settle()

	querier, ok := store.(core.Querier)
	if !ok {
		return nil, fmt.Errorf("store is not a querier")
	}
	targets, err := currentFileVersions(ctx, querier)
	if err != nil {
		return nil, err
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("workload left no file versions to replay")
	}

	sandboxMulti, sb, sandboxStore, err := buildStoreMatrix(arch, h.Seed, n)
	if err != nil {
		return nil, err
	}
	setup := sb.usage()
	before := b.usage()
	rep, err := replay.Replay(ctx, replay.Config{
		Source: querier,
		Fetch:  store.Get,
		Target: sandboxStore,
		Runner: workload.Tools{},
		Kernel: pass.DefaultKernel,
	}, targets...)
	if err != nil {
		return nil, err
	}
	if err := sb.drain(ctx, sandboxMulti); err != nil {
		return nil, err
	}
	sandboxMulti.Settle()
	after := b.usage()
	spent := sb.usage().Sub(setup)

	return &ReplayRow{
		Arch:        arch,
		Shards:      n,
		Subjects:    rep.Subjects,
		Sources:     rep.Sources,
		Processes:   rep.Processes,
		Compared:    rep.Compared,
		Divergences: len(rep.Divergences),
		ExtractOps:  after.Sub(before).TotalOps(),
		ReplayOps:   spent.TotalOps(),
		ReplayUSD:   billing.Jan2009.Price(spent).Total(),
	}, nil
}

// currentFileVersions lists every object's newest recorded file version —
// the replay audit's target set.
func currentFileVersions(ctx context.Context, q core.Querier) ([]prov.Ref, error) {
	current := make(map[prov.ObjectID]prov.Version)
	for entry, err := range q.Query(ctx, prov.Query{Type: prov.TypeFile, Projection: prov.ProjectRefs}) {
		if err != nil {
			return nil, err
		}
		if v, ok := current[entry.Ref.Object]; !ok || entry.Ref.Version > v {
			current[entry.Ref.Object] = entry.Ref.Version
		}
	}
	targets := make([]prov.Ref, 0, len(current))
	for object, version := range current {
		targets = append(targets, prov.Ref{Object: object, Version: version})
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].Object < targets[j].Object })
	return targets, nil
}

// String renders the matrix for terminal use.
func (t *ReplayCosts) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Replay cost matrix (scale %.2f, seed %d): every current lineage re-executed on a fresh namespace\n", t.Scale, t.Seed)
	fmt.Fprintf(&b, "%-12s %7s %9s %8s %10s %9s %12s %12s %11s\n",
		"arch", "shards", "derived", "sources", "processes", "compared", "extract-ops", "replay-ops", "replay-$")
	for _, r := range t.Rows {
		status := ""
		if r.Divergences > 0 {
			status = fmt.Sprintf("  DIVERGED (%d)", r.Divergences)
		}
		fmt.Fprintf(&b, "%-12s %7d %9d %8d %10d %9d %12d %12d %11.4f%s\n",
			r.Arch, r.Shards, r.Subjects, r.Sources, r.Processes, r.Compared,
			r.ExtractOps, r.ReplayOps, r.ReplayUSD, status)
	}
	return b.String()
}
