// Package cost reproduces the paper's evaluation (§5): Table 2 (storage
// cost comparison) and Table 3 (query cost comparison), plus the USD pricing
// commentary.
//
// Two independent methods are provided, mirroring how the paper worked:
//
//   - the analytical estimator (Estimate) implements the paper's §5
//     formulas over dataset statistics, which can be collected at any scale
//     — including full paper scale — without running a cloud;
//   - the measured harness (Harness) actually pushes the workload through
//     each architecture against the simulated AWS and reads the billing
//     meters.
//
// EXPERIMENTS.md compares the two against the paper's published numbers.
package cost

import (
	"context"

	"passcloud/internal/pass"
	"passcloud/internal/prov"
)

// DatasetStats are the §5 quantities a dataset induces. All byte figures
// follow the paper's encodings.
type DatasetStats struct {
	// Objects is the number of stored S3 objects (file versions):
	// N(S3objects). The paper's "Raw ops" column.
	Objects int64
	// DataBytes is the raw data volume (the paper's 1.27 GB).
	DataBytes int64
	// Records is the total provenance record count.
	Records int64
	// ProvS3Bytes is the provenance size in S3 metadata form — what the
	// first architecture stores and what one WAL pass carries (S_SQS).
	ProvS3Bytes int64
	// ProvSDBBytes is the provenance size in SimpleDB form: item names,
	// attribute names and values, plus Amazon's 45-byte per-item overhead.
	ProvSDBBytes int64
	// Items is the number of SimpleDB items: one per object version,
	// transient objects included. N(SimpleDBitems).
	Items int64
	// BigRecords counts records whose value exceeds 1 KB:
	// N(provrecs>1KB).
	BigRecords int64
	// Transients is the number of transient (process/pipe) versions.
	Transients int64
}

// Collector accumulates DatasetStats from a PASS flush stream. Wire Flush
// as (or alongside) the system's flush function.
type Collector struct {
	Stats DatasetStats
}

// Flush implements pass.FlushFunc.
func (c *Collector) Flush(_ context.Context, batch []pass.FlushEvent) error {
	for _, ev := range batch {
		c.flushOne(ev)
	}
	return nil
}

func (c *Collector) flushOne(ev pass.FlushEvent) {
	if ev.Persistent() {
		c.Stats.Objects++
		c.Stats.DataBytes += int64(len(ev.Data))
	} else {
		c.Stats.Transients++
	}
	c.Stats.Items++

	itemName := prov.EncodeItemName(ev.Ref)
	c.Stats.ProvSDBBytes += int64(len(itemName)) + 45
	for _, r := range ev.Records {
		c.Stats.Records++
		size := int64(r.Size())
		// S3 metadata form: key ("p-NN") + attr + separator + value.
		c.Stats.ProvS3Bytes += size + 5
		// SimpleDB form: attribute name + value.
		c.Stats.ProvSDBBytes += size
		if r.Value.Size() > 1024 {
			c.Stats.BigRecords++
		}
	}
}

// Tee builds a flush function that feeds both the collector and next.
func (c *Collector) Tee(next pass.FlushFunc) pass.FlushFunc {
	return func(ctx context.Context, batch []pass.FlushEvent) error {
		if err := c.Flush(ctx, batch); err != nil {
			return err
		}
		if next == nil {
			return nil
		}
		return next(ctx, batch)
	}
}

// walChunkSize is the SQS message budget used by the §5 formula
// (provsize / 8KB).
const walChunkSize = 8 << 10

// Estimate applies the paper's §5 analytical formulas to dataset stats,
// producing the three provenance columns of Table 2.
func Estimate(st DatasetStats) *Table2 {
	t := &Table2{
		RawBytes: st.DataBytes,
		RawOps:   st.Objects,
	}

	// Architecture 1: provenance rides the data PUTs; the only extra ops
	// are the >1 KB records stored as separate objects ("There are 24,952
	// such records that result in an equal number of additional PUT
	// operations").
	t.Rows = append(t.Rows, Table2Row{
		Arch:      "s3",
		ProvBytes: st.ProvS3Bytes,
		ProvOps:   st.BigRecords,
	})

	// Architecture 2: N(SimpleDBitems) + N(provrecs>1KB).
	t.Rows = append(t.Rows, Table2Row{
		Arch:      "s3+sdb",
		ProvBytes: st.ProvSDBBytes,
		ProvOps:   st.Items + st.BigRecords,
	})

	// Architecture 3: storage 2·S_SQS + S_SimpleDB; ops
	// 2·[N(S3objects) + provsize/8KB] + N(SimpleDBitems) + N(provrecs>1KB).
	sqsBytes := st.ProvS3Bytes
	t.Rows = append(t.Rows, Table2Row{
		Arch:      "s3+sdb+sqs",
		ProvBytes: 2*sqsBytes + st.ProvSDBBytes,
		ProvOps:   2*(st.Objects+sqsBytes/walChunkSize) + st.Items + st.BigRecords,
	})
	return t
}

// Scale linearly extrapolates stats gathered at `from` scale to scale 1.0.
// Only counts and byte totals scale; ratios are preserved by construction.
func (st DatasetStats) Scale(from float64) DatasetStats {
	if from <= 0 || from == 1 {
		return st
	}
	f := 1 / from
	scale := func(v int64) int64 { return int64(float64(v) * f) }
	return DatasetStats{
		Objects:      scale(st.Objects),
		DataBytes:    scale(st.DataBytes),
		Records:      scale(st.Records),
		ProvS3Bytes:  scale(st.ProvS3Bytes),
		ProvSDBBytes: scale(st.ProvSDBBytes),
		Items:        scale(st.Items),
		BigRecords:   scale(st.BigRecords),
		Transients:   scale(st.Transients),
	}
}
