package cost

import (
	"context"
	"fmt"

	"passcloud/internal/cloud"
	"passcloud/internal/cloud/billing"
	"passcloud/internal/cloud/retry"
	"passcloud/internal/core"
	"passcloud/internal/core/s3only"
	"passcloud/internal/core/s3sdb"
	"passcloud/internal/core/s3sdbsqs"
	"passcloud/internal/pass"
	"passcloud/internal/sim"
	"passcloud/internal/workload"
)

// Harness runs the paper's evaluation: it loads the combined workload into
// each architecture against a fresh simulated AWS region and reads the
// billing meters to produce the measured Tables 2 and 3.
type Harness struct {
	// Scale is the workload scale (1.0 = paper scale). Default 0.1.
	Scale float64
	// Seed makes runs reproducible. Default 2009.
	Seed int64
	// Tool is the Q.2/Q.3 target. The paper queried blast; at our scaled
	// job counts blast has thousands of instances, so the default target
	// is softmean (the Provenance Challenge's bottleneck stage), which has
	// the selectivity the paper's blast queries had. See EXPERIMENTS.md.
	Tool string
	// CachedQueries enables the qcache snapshot cache on the loaded
	// stores. Off by default so Table 3 measures the paper's uncached
	// costs; when on, Table3Measured additionally reports each query's
	// repeat cost (~0 cloud ops on an unchanged repository). Note that
	// with the cache on, queries share warmth across classes too — e.g.
	// Q.2 on S3 reuses the snapshot Q.1 built, so even its base row can
	// read ~0. Authoritative cold costs come from the uncached default.
	CachedQueries bool

	loaded bool
	stats  DatasetStats
	runs   []*archRun
}

// archRun is one loaded architecture.
type archRun struct {
	name    string
	cloud   *cloud.Cloud
	store   core.Store
	querier core.Querier
	setup   billing.Usage // after construction, before load
	loadEnd billing.Usage // after load + settle
	// retryStats reports the store's cumulative retry overhead.
	retryStats func() retry.Snapshot
}

// defaults fills zero fields.
func (h *Harness) defaults() {
	if h.Scale == 0 {
		h.Scale = 0.1
	}
	if h.Seed == 0 {
		h.Seed = 2009
	}
	if h.Tool == "" {
		h.Tool = "softmean"
	}
}

// Stats returns the dataset statistics collected during Load.
func (h *Harness) Stats() DatasetStats { return h.stats }

// Load pushes the combined workload through all three architectures. It is
// idempotent; later table calls trigger it automatically.
func (h *Harness) Load(ctx context.Context) error {
	if h.loaded {
		return nil
	}
	h.defaults()

	type build struct {
		name string
		make func(cl *cloud.Cloud) (core.Store, pass.FlushFunc, func(context.Context) error, error)
	}
	uncached := !h.CachedQueries
	builds := []build{
		{name: "s3", make: func(cl *cloud.Cloud) (core.Store, pass.FlushFunc, func(context.Context) error, error) {
			st, err := s3only.New(s3only.Config{Cloud: cl, DisableQueryCache: uncached})
			if err != nil {
				return nil, nil, nil, err
			}
			return st, core.Flusher(st), nil, nil
		}},
		{name: "s3+sdb", make: func(cl *cloud.Cloud) (core.Store, pass.FlushFunc, func(context.Context) error, error) {
			st, err := s3sdb.New(s3sdb.Config{Cloud: cl, DisableQueryCache: uncached})
			if err != nil {
				return nil, nil, nil, err
			}
			return st, core.Flusher(st), nil, nil
		}},
		{name: "s3+sdb+sqs", make: func(cl *cloud.Cloud) (core.Store, pass.FlushFunc, func(context.Context) error, error) {
			st, err := s3sdbsqs.New(s3sdbsqs.Config{Cloud: cl, DisableQueryCache: uncached})
			if err != nil {
				return nil, nil, nil, err
			}
			daemon := s3sdbsqs.NewCommitDaemon(st, nil)
			daemon.Threshold = 256
			// The daemon "periodically monitors the WAL queue": poll every
			// few flushed events, drain when the threshold trips.
			events := 0
			flush := func(ctx context.Context, batch []pass.FlushEvent) error {
				if err := st.PutBatch(ctx, batch); err != nil {
					return err
				}
				events += len(batch)
				if events >= 64 {
					events = 0
					if _, err := daemon.RunOnce(ctx, false); err != nil {
						return err
					}
				}
				return nil
			}
			final := func(ctx context.Context) error {
				for i := 0; i < 50; i++ {
					n, err := daemon.RunOnce(ctx, true)
					if err != nil {
						return err
					}
					if n == 0 && daemon.PendingTransactions() == 0 {
						return nil
					}
					cl.Settle()
				}
				return fmt.Errorf("cost: commit daemon did not drain (%d pending)", daemon.PendingTransactions())
			}
			return st, flush, final, nil
		}},
	}

	collected := false
	for _, b := range builds {
		cl := cloud.New(cloud.Config{Seed: h.Seed})
		st, flush, finish, err := b.make(cl)
		if err != nil {
			return fmt.Errorf("cost: build %s: %w", b.name, err)
		}
		run := &archRun{name: b.name, cloud: cl, store: st, setup: cl.Usage()}
		if rs, ok := st.(interface{ RetryStats() retry.Snapshot }); ok {
			run.retryStats = rs.RetryStats
		}
		if q, ok := st.(core.Querier); ok {
			run.querier = q
		}

		// Collect dataset stats exactly once: all three runs see the same
		// deterministic flush stream.
		if !collected {
			collector := &Collector{}
			flush = collector.Tee(flush)
			defer func() { h.stats = collector.Stats }()
			collected = true
		}

		sys := pass.NewSystem(pass.Config{Flush: flush})
		w := workload.NewCombined(h.Scale)
		if err := workload.Run(ctx, sys, sim.NewRNG(h.Seed), w); err != nil {
			return fmt.Errorf("cost: load %s: %w", b.name, err)
		}
		if err := core.SyncStore(ctx, st); err != nil {
			return fmt.Errorf("cost: sync %s: %w", b.name, err)
		}
		if finish != nil {
			if err := finish(ctx); err != nil {
				return err
			}
		}
		cl.Settle()
		run.loadEnd = cl.Usage()
		h.runs = append(h.runs, run)
	}
	h.loaded = true
	return nil
}

// Table2Measured reads the storage comparison off the billing meters.
func (h *Harness) Table2Measured(ctx context.Context) (*Table2, error) {
	if err := h.Load(ctx); err != nil {
		return nil, err
	}
	t := &Table2{
		RawBytes: h.stats.DataBytes,
		RawOps:   h.stats.Objects,
		Method:   "measured",
		Scale:    h.Scale,
	}
	for _, run := range h.runs {
		u := run.loadEnd
		provOps := u.TotalOps() - run.setup.TotalOps() - t.RawOps

		var provBytes int64
		s3Extra := u.Storage(billing.S3) - t.RawBytes // metadata + overflow/spill objects
		switch run.name {
		case "s3":
			provBytes = s3Extra
		case "s3+sdb":
			provBytes = u.Storage(billing.SimpleDB) + s3Extra
		case "s3+sdb+sqs":
			// The paper's 2·S_SQS + S_SimpleDB: each provenance byte is
			// stored into and read back out of SQS once.
			provBytes = u.BytesIn(billing.SQS) + u.BytesOut(billing.SQS) +
				u.Storage(billing.SimpleDB) + s3Extra
		}
		t.Rows = append(t.Rows, Table2Row{
			Arch:      run.name,
			ProvBytes: provBytes,
			ProvOps:   provOps,
			Elapsed:   billing.WAN2009.Estimate(u),
		})
	}
	return t, nil
}

// Table2Estimated applies the paper's formulas to the collected stats,
// extrapolated to full paper scale.
func (h *Harness) Table2Estimated(ctx context.Context) (*Table2, error) {
	if err := h.Load(ctx); err != nil {
		return nil, err
	}
	t := Estimate(h.stats.Scale(h.Scale))
	t.Method = "estimated (paper formulas, extrapolated)"
	t.Scale = 1.0
	return t, nil
}

// Table3Measured runs the three query classes against the S3-only and
// SimpleDB backends, metering ops and data out. "The query results are the
// same for the last two architectures (as they both query SimpleDB), hence
// we omit the results for the third."
func (h *Harness) Table3Measured(ctx context.Context) (*Table3, error) {
	if err := h.Load(ctx); err != nil {
		return nil, err
	}
	t := &Table3{Tool: h.Tool, Scale: h.Scale}

	backends := []struct {
		label string
		run   *archRun
	}{
		{"S3", h.findRun("s3")},
		{"SimpleDB", h.findRun("s3+sdb")},
	}
	type queryFn struct {
		name string
		run  func(core.Querier) (int, error)
	}
	queries := []queryFn{
		{"Q.1", func(q core.Querier) (int, error) {
			all, err := core.AllProvenance(ctx, q)
			return len(all), err
		}},
		{"Q.2", func(q core.Querier) (int, error) {
			refs, err := core.OutputsOf(ctx, q, h.Tool)
			return len(refs), err
		}},
		{"Q.3", func(q core.Querier) (int, error) {
			refs, err := core.DescendantsOfOutputs(ctx, q, h.Tool)
			return len(refs), err
		}},
	}

	for _, query := range queries {
		for _, backend := range backends {
			if backend.run == nil {
				return nil, fmt.Errorf("cost: backend %s not loaded", backend.label)
			}
			before := backend.run.cloud.Usage()
			n, err := query.run(backend.run.querier)
			if err != nil {
				return nil, fmt.Errorf("cost: %s on %s: %w", query.name, backend.label, err)
			}
			after := backend.run.cloud.Usage()
			t.Rows = append(t.Rows, Table3Row{
				Query:   query.name,
				Arch:    backend.label,
				DataOut: totalOut(after) - totalOut(before),
				Ops:     after.TotalOps() - before.TotalOps(),
				Results: n,
			})
			if h.CachedQueries {
				// The repeat run: the repository has not changed, so the
				// snapshot cache answers without touching the cloud.
				n2, err := query.run(backend.run.querier)
				if err != nil {
					return nil, fmt.Errorf("cost: %s repeat on %s: %w", query.name, backend.label, err)
				}
				again := backend.run.cloud.Usage()
				t.Rows = append(t.Rows, Table3Row{
					Query:   query.name + "+",
					Arch:    backend.label,
					DataOut: totalOut(again) - totalOut(after),
					Ops:     again.TotalOps() - after.TotalOps(),
					Results: n2,
				})
			}
		}
	}
	return t, nil
}

// Usage returns the load-phase usage snapshot of one architecture.
func (h *Harness) Usage(arch string) (billing.Usage, bool) {
	if run := h.findRun(arch); run != nil {
		return run.loadEnd, true
	}
	return billing.Usage{}, false
}

// Store returns a loaded store by architecture name.
func (h *Harness) Store(arch string) (core.Store, bool) {
	if run := h.findRun(arch); run != nil {
		return run.store, true
	}
	return nil, false
}

// RetrySnapshot returns one architecture's cumulative retry counters —
// zero across the board on a healthy region, so trajectory tooling can
// gate on retry overhead appearing.
func (h *Harness) RetrySnapshot(arch string) (retry.Snapshot, bool) {
	if run := h.findRun(arch); run != nil && run.retryStats != nil {
		return run.retryStats(), true
	}
	return retry.Snapshot{}, false
}

func (h *Harness) findRun(name string) *archRun {
	for _, run := range h.runs {
		if run.name == name {
			return run
		}
	}
	return nil
}

func totalOut(u billing.Usage) int64 {
	return u.BytesOut(billing.S3) + u.BytesOut(billing.SimpleDB) + u.BytesOut(billing.SQS)
}
