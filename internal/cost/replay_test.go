package cost

import (
	"context"
	"testing"
)

// TestReplayCostsSmall runs the replay cost matrix at a tiny scale and
// checks its invariants: every architecture re-executes the same
// deterministic lineage (identical coverage across rows), the replay of a
// faithful capture stays divergence-free, and both sides of the bill —
// extraction ops on the source, re-execution ops and dollars on the
// sandbox — are nonzero.
func TestReplayCostsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run is slow")
	}
	ctx := context.Background()
	h := &Harness{Scale: 0.01, Seed: 2009}
	rc, err := h.Replay(ctx, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rc)
	if len(rc.Rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(rc.Rows))
	}
	first := rc.Rows[0]
	for _, r := range rc.Rows {
		if r.Divergences != 0 {
			t.Errorf("%s x%d: %d divergences replaying a faithful capture", r.Arch, r.Shards, r.Divergences)
		}
		if r.Subjects != first.Subjects || r.Sources != first.Sources ||
			r.Processes != first.Processes || r.Compared != first.Compared {
			t.Errorf("%s x%d: coverage %+v differs from %s x%d: the workload is deterministic",
				r.Arch, r.Shards, r, first.Arch, first.Shards)
		}
		if r.Compared != r.Subjects+r.Sources {
			t.Errorf("%s x%d: compared %d of %d file versions", r.Arch, r.Shards, r.Compared, r.Subjects+r.Sources)
		}
		if r.ExtractOps <= 0 || r.ReplayOps <= 0 || r.ReplayUSD <= 0 {
			t.Errorf("%s x%d: empty bill: %+v", r.Arch, r.Shards, r)
		}
	}
}
