package cost

import (
	"context"
	"testing"
)

// TestShardedCostsSmall runs the sharded matrix at a tiny scale and checks
// its invariants: the 1-shard row reproduces the unsharded Table 2 write
// cost, the router returns the same query answers at every shard count,
// and every freshly loaded namespace verifies clean at a nonzero audit
// cost.
func TestShardedCostsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run is slow")
	}
	ctx := context.Background()
	h := &Harness{Scale: 0.01, Seed: 2009}
	sc, err := h.Sharded(ctx, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", sc)
	if len(sc.Rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(sc.Rows))
	}

	t2, err := h.Table2Measured(ctx)
	if err != nil {
		t.Fatal(err)
	}
	unshardedOps := map[string]int64{}
	for _, r := range t2.Rows {
		unshardedOps[r.Arch] = r.ProvOps
	}

	results := map[string]map[string]int{} // arch -> query -> results
	for _, r := range sc.Rows {
		if r.ProvOps <= 0 || r.ProvBytes <= 0 {
			t.Errorf("%s x%d: empty write cost: %+v", r.Arch, r.Shards, r)
		}
		if !r.VerifyClean {
			t.Errorf("%s x%d: fresh namespace did not verify clean", r.Arch, r.Shards)
		}
		if r.VerifyOps <= 0 || r.VerifySubjects <= 0 || r.VerifyRecords <= 0 {
			t.Errorf("%s x%d: audit did not cover the namespace: %+v", r.Arch, r.Shards, r)
		}
		if r.VerifyUSD <= 0 {
			t.Errorf("%s x%d: audit priced at $%f", r.Arch, r.Shards, r.VerifyUSD)
		}
		if r.Shards == 1 {
			// The 1-shard run is the unsharded build driven by the same
			// deterministic workload: identical write op counts. The WAL
			// architecture's totals drift a few ops with queue
			// interleaving (the namespace derives its own seed), so it
			// gets a small band instead of equality.
			got, want := r.ProvOps, unshardedOps[r.Arch]
			if r.Arch == "s3+sdb+sqs" {
				if got < want-want/100 || got > want+want/100 {
					t.Errorf("%s x1: prov ops %d outside 1%% of unsharded harness %d", r.Arch, got, want)
				}
			} else if got != want {
				t.Errorf("%s x1: prov ops %d differ from unsharded harness %d", r.Arch, got, want)
			}
		}
		if r.Arch == "s3+sdb+sqs" {
			if len(r.Queries) != 0 {
				t.Errorf("%s x%d: unexpected query rows", r.Arch, r.Shards)
			}
			continue
		}
		if len(r.Queries) != 3 {
			t.Fatalf("%s x%d: got %d query rows, want 3", r.Arch, r.Shards, len(r.Queries))
		}
		for _, q := range r.Queries {
			if q.Ops > 0 && q.USD <= 0 {
				t.Errorf("%s x%d %s: %d metered ops priced at $%.9f; query deltas must carry a positive Jan-2009 bill",
					r.Arch, r.Shards, q.Query, q.Ops, q.USD)
			}
			if prev, ok := results[r.Arch][q.Query]; ok {
				if prev != q.Results {
					t.Errorf("%s %s: results changed across shard counts: %d vs %d",
						r.Arch, q.Query, prev, q.Results)
				}
			} else {
				if results[r.Arch] == nil {
					results[r.Arch] = map[string]int{}
				}
				results[r.Arch][q.Query] = q.Results
			}
		}
	}
}
