package cost

import (
	"context"
	"testing"

	"passcloud/internal/core"
	"passcloud/internal/prov"
)

// TestExplainMatchesMeteredOps is the planner's honesty check: on the
// uncached path (the paper-faithful Table 3 configuration), Explain's
// predicted operation count for each query class must equal the ops the
// billing meters record when the query actually runs. The harness is a
// single-writer repository, so predictions are exact by design.
func TestExplainMatchesMeteredOps(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the combined workload")
	}
	ctx := context.Background()
	h := &Harness{Scale: 0.05}
	if err := h.Load(ctx); err != nil {
		t.Fatal(err)
	}

	queries := []struct {
		name string
		q    prov.Query
	}{
		{"Q1", prov.Q1()},
		{"Q2", prov.QOutputsOf("softmean")},
		{"Q3", prov.QDescendantsOfOutputs("softmean")},
		{"Dependents", prov.QDependents("/challenge/j0/raw0.img")},
		{"AttrPushdown", prov.Query{Type: prov.TypeProcess, Projection: prov.ProjectRefs}},
		{"ToolRefPrefix", prov.Query{Tool: "softmean", RefPrefix: "/challenge/", Projection: prov.ProjectRefs}},
	}

	for _, arch := range []string{"s3", "s3+sdb"} {
		run := h.findRun(arch)
		if run == nil {
			t.Fatalf("backend %s not loaded", arch)
		}
		q, ok := run.store.(core.Querier)
		if !ok {
			t.Fatalf("%s is not a Querier", arch)
		}
		for _, tc := range queries {
			plan := q.Explain(tc.q)
			if !plan.Exact {
				t.Errorf("%s/%s: plan not exact on a single-writer repository", arch, tc.name)
			}
			if plan.Cached {
				t.Errorf("%s/%s: plan claims cached on the uncached path", arch, tc.name)
			}
			before := run.cloud.Usage().TotalOps()
			if _, err := core.CollectEntries(q.Query(ctx, tc.q)); err != nil {
				t.Fatalf("%s/%s: %v", arch, tc.name, err)
			}
			metered := run.cloud.Usage().TotalOps() - before
			if plan.EstOps != metered {
				t.Errorf("%s/%s: Explain predicted %d ops, meters recorded %d\nplan:\n%s",
					arch, tc.name, plan.EstOps, metered, plan)
			}
		}
	}
}

// TestExplainCachedPath: with the snapshot cache on and warm, Explain must
// predict zero ops and the meters must agree.
func TestExplainCachedPath(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the combined workload")
	}
	ctx := context.Background()
	h := &Harness{Scale: 0.05, CachedQueries: true}
	if err := h.Load(ctx); err != nil {
		t.Fatal(err)
	}
	for _, arch := range []string{"s3", "s3+sdb"} {
		run := h.findRun(arch)
		q := run.store.(core.Querier)
		// Warm the snapshot and the Q.2 memo.
		if _, err := core.AllProvenance(ctx, q); err != nil {
			t.Fatal(err)
		}
		if _, err := core.OutputsOf(ctx, q, "softmean"); err != nil {
			t.Fatal(err)
		}
		for _, desc := range []prov.Query{prov.Q1(), prov.QOutputsOf("softmean")} {
			plan := q.Explain(desc)
			if !plan.Cached || plan.EstOps != 0 {
				t.Errorf("%s: warm plan not cached/zero: cached=%v est=%d\n%s", arch, plan.Cached, plan.EstOps, plan)
			}
			before := run.cloud.Usage().TotalOps()
			if _, err := core.CollectEntries(q.Query(ctx, desc)); err != nil {
				t.Fatal(err)
			}
			if d := run.cloud.Usage().TotalOps() - before; d != 0 {
				t.Errorf("%s: warm query cost %d ops", arch, d)
			}
		}
	}
}
