package cost

import (
	"fmt"
	"strings"
	"time"

	"passcloud/internal/cloud/billing"
)

// Table2 is the storage cost comparison (paper Table 2).
type Table2 struct {
	// RawBytes / RawOps describe storing the data without any provenance —
	// the paper's "Raw" column.
	RawBytes int64
	RawOps   int64
	Rows     []Table2Row
	// Method records how the numbers were obtained ("estimated" per the
	// paper's formulas, or "measured" off the billing meters).
	Method string
	// Scale is the workload scale the numbers were produced at.
	Scale float64
}

// Table2Row is one architecture's provenance overhead.
type Table2Row struct {
	Arch string
	// ProvBytes is the provenance storage the architecture adds.
	ProvBytes int64
	// ProvOps is the operation count the provenance adds.
	ProvOps int64
	// Elapsed is the modeled wall-clock load time under billing.WAN2009 —
	// the measurement the paper deferred to future work (§7). Zero when
	// not computed (the analytical table).
	Elapsed time.Duration
}

// String renders the table in the paper's layout, with a modeled-time
// column when available.
func (t *Table2) String() string {
	var b strings.Builder
	showTime := false
	for _, r := range t.Rows {
		if r.Elapsed > 0 {
			showTime = true
		}
	}
	fmt.Fprintf(&b, "Table 2: storage cost comparison (%s, scale %.2f)\n", t.Method, t.Scale)
	fmt.Fprintf(&b, "%-12s %14s %14s %12s %10s", "", "Data", "Overhead", "ops", "ops-x")
	if showTime {
		fmt.Fprintf(&b, " %12s", "est-time")
	}
	fmt.Fprintln(&b)
	fmt.Fprintf(&b, "%-12s %14s %14s %12d %10s\n", "Raw", fmtBytes(t.RawBytes), "-", t.RawOps, "-")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-12s %14s %13.1f%% %12d %9.1fx",
			r.Arch, fmtBytes(r.ProvBytes),
			100*float64(r.ProvBytes)/float64(max64(t.RawBytes, 1)),
			r.ProvOps,
			float64(r.ProvOps)/float64(max64(t.RawOps, 1)))
		if showTime {
			fmt.Fprintf(&b, " %12s", r.Elapsed.Round(time.Second))
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// Table3 is the query cost comparison (paper Table 3).
type Table3 struct {
	Rows []Table3Row
	// Tool is the Q.2/Q.3 target tool.
	Tool  string
	Scale float64
}

// Table3Row is the cost of one query on one backend.
type Table3Row struct {
	// Query names the class: "Q.1", "Q.2", "Q.3". A trailing "+" marks a
	// repeat run answered from the snapshot cache (Harness.CachedQueries).
	// In cached runs, base rows after the first query may themselves be
	// warm (classes share the snapshot); only the uncached default
	// measures every class cold.
	Query string
	Arch  string // "S3" or "SimpleDB" (architectures 2 and 3 share it)
	// DataOut is the bytes transferred out of the cloud by the query.
	DataOut int64
	// Ops is the number of operations executed.
	Ops int64
	// Results is the number of refs (or subjects) the query returned.
	Results int
}

// String renders the table in the paper's layout.
func (t *Table3) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: query cost comparison (tool %q, scale %.2f)\n", t.Tool, t.Scale)
	fmt.Fprintf(&b, "%-6s %-10s %14s %12s %10s\n", "Query", "Backend", "Data", "ops", "results")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-6s %-10s %14s %12d %10d\n",
			r.Query, r.Arch, fmtBytes(r.DataOut), r.Ops, r.Results)
	}
	return b.String()
}

// Table1Report renders the properties matrix with check marks, in the
// paper's layout.
func Table1Report(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table 1: properties comparison")
	fmt.Fprintf(&b, "%-14s %-10s %-12s %-15s %-15s\n",
		"Architecture", "Atomicity", "Consistency", "CausalOrdering", "EfficientQuery")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-10s %-12s %-15s %-15s\n",
			r.Arch, mark(r.Atomicity), mark(r.Consistency), mark(r.CausalOrdering), mark(r.EfficientQuery))
	}
	return b.String()
}

// Table1Row is one measured row of the properties matrix.
type Table1Row struct {
	Arch                                                   string
	Atomicity, Consistency, CausalOrdering, EfficientQuery bool
}

func mark(ok bool) string {
	if ok {
		return "yes"
	}
	return "no"
}

// USDReport prices a usage snapshot with the paper's January-2009 rates.
func USDReport(name string, u billing.Usage) string {
	c := billing.Jan2009.Price(u)
	return fmt.Sprintf("%-12s %s", name, c)
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
