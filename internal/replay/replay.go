// Package replay re-executes recorded lineage subgraphs as a divergence
// oracle — the cloud-aware-provenance reproducibility loop (Hasham et
// al.) closed over the paper's store: given a target object version, the
// package extracts its ancestry through the composable query path
// (paginated on snapshot-pinned cursors), topologically schedules the
// recorded process versions, re-executes each one against a fresh region
// through a Runner, and diffs the resulting object digests
// subject-by-subject against what the source repository holds.
//
// The contract that makes this possible is the runnable-tool discipline:
// a runnable tool's output is a pure function of the writing process
// version's recorded provenance (identity records, argv, environment,
// pinned input versions) and the output path. PASS's cycle-avoidance
// versioning guarantees the process version's input set is final by the
// time it writes, so the record set replay extracts is exactly the record
// set the generator computed the bytes from. internal/workload's tools
// (blast, compile, challenge pipelines) are the first runners.
//
// Divergence taxonomy:
//
//   - missing-input: a pinned input version cannot be resolved — its
//     records are absent from the store or its content is no longer
//     retrievable at the recorded version.
//   - env-drift: a process was recorded under a kernel configuration
//     different from the replay environment's; its outputs re-execute
//     (record-derived) but cannot be certified against this environment.
//   - digest-mismatch: the re-executed content differs from what the
//     store holds for the same version — recorded provenance does not
//     explain the stored bytes.
//   - unrunnable-tool: the recorded writer is not in the runner's
//     registry, so the subject cannot be re-executed.
//
// A clean report certifies that every compared object is byte-identical
// to what its recorded provenance re-derives. A divergence localizes a
// provenance-capture bug (or tampering) to the exact subject — which is
// what no invariant check, Merkle root, or static analyzer can see.
package replay

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"

	"passcloud/internal/core"
	"passcloud/internal/core/integrity"
	"passcloud/internal/pass"
	"passcloud/internal/prov"
)

// ErrUnknownTool is the sentinel a Runner returns when the recorded tool
// is not in its registry; the driver reports the affected subjects as
// unrunnable-tool divergences.
var ErrUnknownTool = errors.New("replay: unknown tool")

// Call is one recorded tool invocation to re-execute: the process
// version's full recorded record set plus the output path it produced.
type Call struct {
	// Tool is the recorded program name (the AttrName identity record).
	Tool string
	// Proc is the recorded process version being re-executed.
	Proc prov.Ref
	// Records is the version's recorded record set with integrity riders
	// stripped — identity records plus pinned input edges.
	Records []prov.Record
	// Output is the path of the file content being produced.
	Output string
}

// InputResolver fetches the content of a pinned input version from the
// source repository. It fails when the version is no longer retrievable.
type InputResolver func(ref prov.Ref) ([]byte, error)

// Runner re-executes one recorded call, returning the bytes the tool
// writes at call.Output. Implementations must be deterministic in the
// call: same records, same output path, same bytes. ErrUnknownTool (or an
// error wrapping it) reports a tool outside the registry.
type Runner interface {
	Run(call Call, input InputResolver) ([]byte, error)
}

// Kind classifies one divergence.
type Kind int

// Divergence kinds.
const (
	// KindMissingInput: a pinned input version could not be resolved.
	KindMissingInput Kind = iota
	// KindEnvDrift: recorded kernel configuration differs from the
	// replay environment's.
	KindEnvDrift
	// KindDigestMismatch: re-executed content differs from the stored
	// content of the same version.
	KindDigestMismatch
	// KindUnrunnableTool: the recorded writer tool is not runnable.
	KindUnrunnableTool
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindMissingInput:
		return "missing-input"
	case KindEnvDrift:
		return "env-drift"
	case KindDigestMismatch:
		return "digest-mismatch"
	case KindUnrunnableTool:
		return "unrunnable-tool"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Divergence is one replay finding, anchored to the subject version whose
// re-execution diverged (a file version for content findings, a process
// version for env-drift).
type Divergence struct {
	Kind    Kind
	Subject prov.Ref
	Detail  string
}

// String renders one finding.
func (d Divergence) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Kind, d.Subject, d.Detail)
}

// Report is the outcome of one replay.
type Report struct {
	// Targets are the seed versions the lineage was extracted from.
	Targets []prov.Ref
	// Subjects counts the file versions whose content was re-derived.
	Subjects int
	// Sources counts ingested file versions (no process ancestry) copied
	// into the replay region as recorded inputs.
	Sources int
	// Processes counts the recorded process versions re-executed.
	Processes int
	// Compared counts the file versions diffed against the source store
	// (only a version that is still its object's current version has
	// retrievable original bytes to compare).
	Compared int
	// Divergences lists every finding, sorted by subject then kind.
	Divergences []Divergence
}

// Clean reports a divergence-free replay.
func (r *Report) Clean() bool { return len(r.Divergences) == 0 }

// Diverged returns the distinct subjects with at least one finding, in
// sorted order.
func (r *Report) Diverged() []prov.Ref {
	seen := make(map[prov.Ref]bool)
	var out []prov.Ref
	for _, d := range r.Divergences {
		if !seen[d.Subject] {
			seen[d.Subject] = true
			out = append(out, d.Subject)
		}
	}
	sort.Slice(out, func(i, j int) bool { return refLess(out[i], out[j]) })
	return out
}

// Config wires one replay run.
type Config struct {
	// Source answers the lineage extraction queries.
	Source core.Querier
	// Fetch retrieves an object's current version with content from the
	// source repository (core.Store.Get).
	Fetch func(ctx context.Context, object prov.ObjectID) (*core.Object, error)
	// Target receives the re-executed subjects — a store on a fresh
	// region/tenant, so re-execution is sandboxed and its cloud ops
	// metered separately. Nil skips materialization (diff only).
	Target core.Store
	// Runner re-executes recorded calls.
	Runner Runner
	// Kernel is the replay environment's kernel configuration; a process
	// recorded under a different one reports env-drift. Empty skips the
	// check.
	Kernel string
	// PageLimit is the extraction page size; every page sequence rides
	// one snapshot-pinned cursor. 0 uses DefaultPageLimit.
	PageLimit int
}

// DefaultPageLimit paginates extraction queries so every replay exercises
// the snapshot-pinned cursor path.
const DefaultPageLimit = 256

// Replay extracts the lineage subgraph of targets from cfg.Source,
// re-executes it in dependency order, and diffs the re-derived content
// against the source. See the package comment for the divergence
// taxonomy.
func Replay(ctx context.Context, cfg Config, targets ...prov.Ref) (*Report, error) {
	if cfg.Source == nil || cfg.Fetch == nil || cfg.Runner == nil {
		return nil, errors.New("replay: Config needs Source, Fetch and Runner")
	}
	if len(targets) == 0 {
		return nil, errors.New("replay: no targets")
	}
	graph, err := extract(ctx, cfg.Source, targets, cfg.PageLimit)
	if err != nil {
		return nil, err
	}
	order, err := scheduleSubjects(graph)
	if err != nil {
		return nil, err
	}
	rep := &Report{Targets: append([]prov.Ref(nil), targets...)}
	ex := &execution{cfg: cfg, graph: graph, content: make(map[prov.Ref][]byte), rep: rep}
	for _, ref := range order {
		if err := ex.step(ctx, ref); err != nil {
			return nil, err
		}
	}
	sort.Slice(rep.Divergences, func(i, j int) bool {
		a, b := rep.Divergences[i], rep.Divergences[j]
		if a.Subject != b.Subject {
			return refLess(a.Subject, b.Subject)
		}
		return a.Kind < b.Kind
	})
	return rep, nil
}

// execution threads the per-run state through the scheduled walk.
type execution struct {
	cfg   Config
	graph map[prov.Ref]*subject
	// content holds re-derived (or source-fetched) file contents by
	// version, for append-chain prefixes.
	content map[prov.Ref][]byte
	// pending buffers transient subjects' flush events until the next
	// file completes — the same causal coalescing the capture path uses.
	pending []pass.FlushEvent
	// drifted dedups env-drift findings per process version.
	drifted map[prov.Ref]bool
	rep     *Report
}

// step re-executes one scheduled subject.
func (ex *execution) step(ctx context.Context, ref prov.Ref) error {
	sub := ex.graph[ref]
	if sub.typ != prov.TypeFile {
		if sub.typ == prov.TypeProcess {
			ex.rep.Processes++
			ex.checkDrift(sub)
		}
		ex.pending = append(ex.pending, pass.FlushEvent{Ref: ref, Type: sub.typ, Records: sub.records})
		return nil
	}
	data, ok := ex.rebuild(ctx, sub)
	if !ok {
		// A divergence was recorded; dependents that need this version
		// report their own missing-input when resolution fails.
		return nil
	}
	ex.content[ref] = data
	if ex.cfg.Target != nil {
		events := append(ex.pending, pass.FlushEvent{Ref: ref, Type: prov.TypeFile, Data: data, Records: sub.records})
		ex.pending = nil
		if err := ex.cfg.Target.PutBatch(ctx, events); err != nil {
			return fmt.Errorf("replay: materialize %s: %w", ref, err)
		}
	}
	return ex.diff(ctx, sub, data)
}

// checkDrift reports env-drift once per process version.
func (ex *execution) checkDrift(sub *subject) {
	if ex.cfg.Kernel == "" {
		return
	}
	recorded, ok := sub.attr(prov.AttrKernel)
	if !ok || recorded == ex.cfg.Kernel {
		return
	}
	if ex.drifted == nil {
		ex.drifted = make(map[prov.Ref]bool)
	}
	if ex.drifted[sub.ref] {
		return
	}
	ex.drifted[sub.ref] = true
	ex.rep.Divergences = append(ex.rep.Divergences, Divergence{
		Kind:    KindEnvDrift,
		Subject: sub.ref,
		Detail:  fmt.Sprintf("recorded kernel %q, replay environment %q", recorded, ex.cfg.Kernel),
	})
}

// rebuild re-derives one file version's content: the append-chain
// prefix (the previous version of the same object, when recorded as an
// input) followed by one re-executed chunk per recorded writer process
// version, in (object, version) order. ok=false means a divergence was
// recorded and the content is unavailable.
func (ex *execution) rebuild(ctx context.Context, sub *subject) (data []byte, ok bool) {
	var procs []prov.Ref
	var prev *prov.Ref
	for _, in := range sub.inputs {
		in := in
		if in.Object == sub.ref.Object && in.Version == sub.ref.Version-1 {
			prev = &in
			continue
		}
		procs = append(procs, in)
	}
	if prev == nil && len(procs) == 0 {
		// No process ancestry: an ingested source. Its bytes are an
		// input to the replay, not an output of it — copy them from the
		// source repository as recorded.
		return ex.fetchSource(ctx, sub)
	}
	ex.rep.Subjects++
	if prev != nil {
		prefix, okPrev := ex.content[*prev]
		if !okPrev {
			ex.diverge(KindMissingInput, sub.ref, fmt.Sprintf("previous version %s unavailable for append chain", *prev))
			return nil, false
		}
		data = append(data, prefix...)
	}
	for _, pref := range procs {
		proc := ex.graph[pref]
		if proc == nil || len(proc.records) == 0 {
			ex.diverge(KindMissingInput, sub.ref, fmt.Sprintf("no provenance for recorded writer %s", pref))
			return nil, false
		}
		tool, okName := proc.attr(prov.AttrName)
		if !okName {
			ex.diverge(KindUnrunnableTool, sub.ref, fmt.Sprintf("writer %s has no recorded tool name", pref))
			return nil, false
		}
		chunk, err := ex.cfg.Runner.Run(Call{
			Tool:    tool,
			Proc:    pref,
			Records: proc.records,
			Output:  string(sub.ref.Object),
		}, ex.resolve(ctx))
		switch {
		case errors.Is(err, ErrUnknownTool):
			ex.diverge(KindUnrunnableTool, sub.ref, fmt.Sprintf("writer %s: %v", pref, err))
			return nil, false
		case err != nil:
			ex.diverge(KindMissingInput, sub.ref, fmt.Sprintf("writer %s: %v", pref, err))
			return nil, false
		}
		data = append(data, chunk...)
	}
	return data, true
}

// fetchSource copies an ingested file's recorded bytes from the source
// repository. Only the current version's bytes are retrievable.
func (ex *execution) fetchSource(ctx context.Context, sub *subject) ([]byte, bool) {
	ex.rep.Sources++
	obj, err := ex.cfg.Fetch(ctx, sub.ref.Object)
	if err != nil {
		ex.diverge(KindMissingInput, sub.ref, fmt.Sprintf("source fetch: %v", err))
		return nil, false
	}
	if obj.Ref != sub.ref {
		ex.diverge(KindMissingInput, sub.ref, fmt.Sprintf("source is at %s, pinned version unavailable", obj.Ref))
		return nil, false
	}
	return obj.Data, true
}

// resolve builds the InputResolver runners use for data-dependent tools:
// pinned versions resolve from re-derived content first (so the chain
// replays even when the source has moved on), then from the source store.
func (ex *execution) resolve(ctx context.Context) InputResolver {
	return func(ref prov.Ref) ([]byte, error) {
		if data, ok := ex.content[ref]; ok {
			return data, nil
		}
		obj, err := ex.cfg.Fetch(ctx, ref.Object)
		if err != nil {
			return nil, fmt.Errorf("input %s: %w", ref, err)
		}
		if obj.Ref != ref {
			return nil, fmt.Errorf("input %s: source is at %s, pinned version unavailable", ref, obj.Ref)
		}
		return obj.Data, nil
	}
}

// diff compares the re-derived content against the source store when the
// version is still current (historical versions have no retrievable
// original bytes).
func (ex *execution) diff(ctx context.Context, sub *subject, data []byte) error {
	obj, err := ex.cfg.Fetch(ctx, sub.ref.Object)
	if err != nil {
		if errors.Is(err, core.ErrNotFound) {
			ex.diverge(KindMissingInput, sub.ref, "recorded object no longer stored")
			return nil
		}
		return fmt.Errorf("replay: fetch %s: %w", sub.ref.Object, err)
	}
	if obj.Ref != sub.ref {
		return nil // historical version; nothing to compare against
	}
	ex.rep.Compared++
	got, want := digest(data), digest(obj.Data)
	if got != want {
		ex.diverge(KindDigestMismatch, sub.ref, fmt.Sprintf(
			"re-executed %d bytes (%s), stored %d bytes (%s)", len(data), got[:12], len(obj.Data), want[:12]))
	}
	return nil
}

func (ex *execution) diverge(kind Kind, subject prov.Ref, detail string) {
	ex.rep.Divergences = append(ex.rep.Divergences, Divergence{Kind: kind, Subject: subject, Detail: detail})
}

// digest is the content fingerprint replay compares.
func digest(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// extract pulls the targets' ancestry closure through the composable
// query path, paginated on a snapshot-pinned cursor, merging each
// subject's records across pages and carriers (duplicate record copies
// collapse; integrity riders are stripped — they are storage artifacts,
// not capture provenance). The ancestry traversal yields only subjects
// reached FROM the seeds, so a second pinned query fetches the targets'
// own records.
func extract(ctx context.Context, q core.Querier, targets []prov.Ref, pageLimit int) (map[prov.Ref]*subject, error) {
	if pageLimit <= 0 {
		pageLimit = DefaultPageLimit
	}
	graph := make(map[prov.Ref]*subject)
	queries := []prov.Query{
		{
			Refs:         targets,
			Direction:    prov.TraverseAncestors,
			IncludeSeeds: true,
			Projection:   prov.ProjectFull,
			Limit:        pageLimit,
		},
		{
			Refs:       targets,
			Projection: prov.ProjectFull,
			Limit:      pageLimit,
		},
	}
	for _, query := range queries {
		for {
			next := ""
			for entry, err := range q.Query(ctx, query) {
				if err != nil {
					return nil, fmt.Errorf("replay: extract: %w", err)
				}
				mergeEntry(graph, entry)
				if entry.Cursor != "" {
					next = entry.Cursor
				}
			}
			if next == "" {
				break
			}
			query.Cursor = next
		}
	}
	return graph, nil
}

// mergeEntry folds one query result into the graph, deduplicating
// records by (attr, value).
func mergeEntry(graph map[prov.Ref]*subject, entry core.Entry) {
	sub := graph[entry.Ref]
	if sub == nil {
		sub = &subject{ref: entry.Ref, seen: make(map[string]bool)}
		graph[entry.Ref] = sub
	}
	for _, r := range entry.Records {
		if r.Attr == integrity.AttrChain || r.Attr == integrity.AttrRoot {
			continue
		}
		key := r.Attr + "\x00" + r.Value.String()
		if sub.seen[key] {
			continue
		}
		sub.seen[key] = true
		sub.records = append(sub.records, r)
		switch {
		case r.Attr == prov.AttrInput && r.Value.Kind == prov.KindRef:
			sub.inputs = append(sub.inputs, r.Value.Ref)
		case r.Attr == prov.AttrType:
			sub.typ = r.Value.Str
		}
	}
	sort.Slice(sub.inputs, func(i, j int) bool { return refLess(sub.inputs[i], sub.inputs[j]) })
}

func refLess(a, b prov.Ref) bool {
	if a.Object != b.Object {
		return a.Object < b.Object
	}
	return a.Version < b.Version
}
