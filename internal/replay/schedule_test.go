package replay

import (
	"errors"
	"reflect"
	"testing"

	"passcloud/internal/prov"
)

// ref builds a version-0 ref for scheduler fixtures.
func ref(object string) prov.Ref {
	return prov.Ref{Object: prov.ObjectID(object)}
}

// mkGraph builds a subject graph from an adjacency list of input edges.
func mkGraph(deps map[string][]string) map[prov.Ref]*subject {
	graph := make(map[prov.Ref]*subject, len(deps))
	for node, inputs := range deps {
		sub := &subject{ref: ref(node)}
		for _, in := range inputs {
			sub.inputs = append(sub.inputs, ref(in))
		}
		graph[ref(node)] = sub
	}
	return graph
}

func refNames(refs []prov.Ref) []string {
	out := make([]string, len(refs))
	for i, r := range refs {
		out[i] = string(r.Object)
	}
	return out
}

func TestScheduleSubjects(t *testing.T) {
	cases := []struct {
		name string
		deps map[string][]string
		// want is the exact order: Kahn with sorted-ref tie-break is
		// fully deterministic, so the schedule is a single sequence, not
		// just any topological order.
		want []string
	}{
		{
			name: "diamond",
			deps: map[string][]string{
				"a": nil,
				"b": {"a"},
				"c": {"a"},
				"d": {"b", "c"},
			},
			want: []string{"a", "b", "c", "d"},
		},
		{
			name: "disconnected components interleave sorted",
			deps: map[string][]string{
				"x1": nil, "x2": {"x1"},
				"a1": nil, "a2": {"a1"},
			},
			want: []string{"a1", "a2", "x1", "x2"},
		},
		{
			name: "deep chain",
			deps: map[string][]string{
				"a": nil, "b": {"a"}, "c": {"b"}, "d": {"c"},
			},
			want: []string{"a", "b", "c", "d"},
		},
		{
			name: "edges outside the graph are ignored",
			deps: map[string][]string{
				"b": {"external-source"},
				"c": {"b", "another-external"},
			},
			want: []string{"b", "c"},
		},
		{
			name: "wide fan-in",
			deps: map[string][]string{
				"sink": {"m3", "m1", "m2"},
				"m1":   nil, "m2": nil, "m3": nil,
			},
			want: []string{"m1", "m2", "m3", "sink"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Map iteration order is randomized per run; the schedule must
			// not depend on it.
			for i := 0; i < 20; i++ {
				order, err := scheduleSubjects(mkGraph(tc.deps))
				if err != nil {
					t.Fatal(err)
				}
				if got := refNames(order); !reflect.DeepEqual(got, tc.want) {
					t.Fatalf("iteration %d: schedule %v, want %v", i, got, tc.want)
				}
			}
		})
	}
}

func TestScheduleLineageCycle(t *testing.T) {
	cases := []struct {
		name string
		deps map[string][]string
	}{
		{"two-cycle", map[string][]string{"a": {"b"}, "b": {"a"}}},
		{"self-loop", map[string][]string{"a": {"a"}}},
		{"cycle behind a valid prefix", map[string][]string{
			"root": nil,
			"x":    {"root", "z"},
			"y":    {"x"},
			"z":    {"y"},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := scheduleSubjects(mkGraph(tc.deps))
			if !errors.Is(err, ErrLineageCycle) {
				t.Fatalf("got %v, want ErrLineageCycle", err)
			}
		})
	}
}
