package replay

import (
	"testing"

	"passcloud/internal/leakcheck"
)

func TestMain(m *testing.M) { leakcheck.Main(m) }
