package replay

import (
	"errors"
	"fmt"
	"sort"

	"passcloud/internal/prov"
)

// ErrLineageCycle is returned when the recorded lineage contains a
// dependency cycle — impossible under PASS's cycle-avoidance versioning,
// so its presence is itself a capture bug. The scheduler surfaces it as
// a typed error instead of hanging.
var ErrLineageCycle = errors.New("replay: cycle in recorded lineage")

// subject is one extracted node: an object version and its merged,
// deduplicated record set.
type subject struct {
	ref     prov.Ref
	typ     string // prov.TypeFile, TypeProcess, TypePipe
	records []prov.Record
	inputs  []prov.Ref
	seen    map[string]bool // record dedup keys across pages and carriers
}

// attr returns the string value of the subject's first record with the
// given attribute.
func (s *subject) attr(name string) (string, bool) {
	for _, r := range s.records {
		if r.Attr == name && r.Value.Kind == prov.KindString {
			return r.Value.Str, true
		}
	}
	return "", false
}

// scheduleSubjects topologically orders the extracted graph (Kahn's
// algorithm) so every subject executes after all of its recorded inputs.
// Input edges pointing outside the graph are ignored — they are resolved
// from the source repository at execution time. Ties break on sorted
// refs, so the schedule is deterministic for a given graph. A cycle
// returns ErrLineageCycle naming one subject on it.
func scheduleSubjects(graph map[prov.Ref]*subject) ([]prov.Ref, error) {
	indegree := make(map[prov.Ref]int, len(graph))
	dependents := make(map[prov.Ref][]prov.Ref, len(graph))
	for ref, sub := range graph {
		if _, ok := indegree[ref]; !ok {
			indegree[ref] = 0
		}
		for _, in := range sub.inputs {
			if _, ok := graph[in]; !ok {
				continue // outside the extracted subgraph
			}
			indegree[ref]++
			dependents[in] = append(dependents[in], ref)
		}
	}
	ready := make([]prov.Ref, 0, len(graph))
	for ref, deg := range indegree {
		if deg == 0 {
			ready = append(ready, ref)
		}
	}
	sortRefs(ready)
	order := make([]prov.Ref, 0, len(graph))
	for len(ready) > 0 {
		ref := ready[0]
		ready = ready[1:]
		order = append(order, ref)
		var unblocked []prov.Ref
		for _, dep := range dependents[ref] {
			indegree[dep]--
			if indegree[dep] == 0 {
				unblocked = append(unblocked, dep)
			}
		}
		if len(unblocked) > 0 {
			sortRefs(unblocked)
			ready = mergeSorted(ready, unblocked)
		}
	}
	if len(order) != len(graph) {
		for _, ref := range sortedKeys(indegree) {
			if indegree[ref] > 0 {
				return nil, fmt.Errorf("%w (through %s)", ErrLineageCycle, ref)
			}
		}
		return nil, ErrLineageCycle
	}
	return order, nil
}

func sortRefs(refs []prov.Ref) {
	sort.Slice(refs, func(i, j int) bool { return refLess(refs[i], refs[j]) })
}

// mergeSorted merges two ref slices that are each already sorted.
func mergeSorted(a, b []prov.Ref) []prov.Ref {
	out := make([]prov.Ref, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if refLess(a[i], b[j]) {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

func sortedKeys(m map[prov.Ref]int) []prov.Ref {
	keys := make([]prov.Ref, 0, len(m))
	for ref := range m {
		keys = append(keys, ref)
	}
	sortRefs(keys)
	return keys
}
