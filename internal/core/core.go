// Package core defines the paper's primary contribution as Go interfaces:
// a provenance-aware cloud store with three interchangeable architectures
// (S3-only; S3+SimpleDB; S3+SimpleDB+SQS), the properties each must satisfy
// (Table 1), and the query classes of the evaluation (Table 3).
//
// The architecture implementations live in the subpackages s3only, s3sdb and
// s3sdbsqs; sdbprov holds the SimpleDB provenance layer the latter two
// share.
package core

import (
	"context"
	"errors"
	"fmt"
	"iter"

	"passcloud/internal/pass"
	"passcloud/internal/prov"
)

// Errors shared by all architectures.
var (
	// ErrNotFound is returned by Get/Provenance for unknown objects.
	ErrNotFound = errors.New("core: object not found")
	// ErrInconsistent is returned when a read could not produce data with
	// matching provenance within the retry budget — a read-correctness
	// failure surfaced instead of hidden.
	ErrInconsistent = errors.New("core: data and provenance inconsistent")
	// ErrNoProvenance is returned when data exists but its provenance
	// cannot be located — the atomicity-violation shape of §4.2.
	ErrNoProvenance = errors.New("core: object has no provenance")
)

// PartialWriteError reports a batch write that half-landed: the Landed
// events are fully applied — data and provenance both durably visible, or
// provenance alone for transient subjects, which carry no data — while the
// rest of the batch is not. Callers (pass.System) mark the landed events
// persistent and retry only the remainder, so a store-side failure never
// forces re-writing what already landed and never silently loses the rest.
//
// Events whose provenance landed without their data are deliberately NOT
// listed: they are the §4.2 orphan shape and must be repaired by the retry
// (idempotent re-write) or the recovery scan, not declared durable.
type PartialWriteError struct {
	// Landed lists the refs of fully applied events, in batch order.
	Landed []prov.Ref
	// Err is the failure that stopped the batch.
	Err error
}

// Error implements the error interface.
func (e *PartialWriteError) Error() string {
	return fmt.Sprintf("core: partial batch write (%d events landed): %v", len(e.Landed), e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *PartialWriteError) Unwrap() error { return e.Err }

// LandedRefs reports the fully applied refs; pass.System recovers partial
// batches through this interface method without importing core.
func (e *PartialWriteError) LandedRefs() []prov.Ref { return e.Landed }

// PartialWrite wraps err with the landed refs, collapsing the no-progress
// case to the bare error: a PartialWriteError with nothing landed would make
// callers walk an empty list for no information.
func PartialWrite(landed []prov.Ref, err error) error {
	if err == nil || len(landed) == 0 {
		return err
	}
	return &PartialWriteError{Landed: landed, Err: err}
}

// Object is a retrieved object with its verified provenance.
type Object struct {
	// Ref is the object version the data corresponds to.
	Ref prov.Ref
	// Data is the object content.
	Data []byte
	// Records is the provenance of exactly this version.
	Records []prov.Record
}

// Store is a provenance-aware cloud store. One Store instance corresponds
// to one PASS client; its PutBatch is wired as the pass.System flush
// function. The contract is batch-first: a close hands the store the whole
// causal chain of versions becoming persistent in one call, so every
// architecture can amortize cloud round trips (BatchPutAttributes for
// SimpleDB items, one write-ahead-log transaction per batch, concurrent S3
// PUTs) instead of paying one protocol run per record.
type Store interface {
	// Name identifies the architecture ("s3", "s3+sdb", "s3+sdb+sqs").
	Name() string

	// PutBatch persists a causally ordered batch of PASS flush events:
	// file versions with data, and transient object versions with
	// provenance only. Ancestors precede descendants within the batch.
	// The paper's write protocols run entirely inside PutBatch.
	// Implementations must be idempotent under batch replay: a failed or
	// cancelled batch is retried in full by the caller.
	PutBatch(ctx context.Context, batch []pass.FlushEvent) error

	// Get retrieves the current version of object together with
	// provenance that provably describes the returned bytes (read
	// correctness, to the degree the architecture supports it).
	Get(ctx context.Context, object prov.ObjectID) (*Object, error)

	// Provenance returns the provenance records of one specific object
	// version — the paper's Q.1 unit operation.
	Provenance(ctx context.Context, ref prov.Ref) ([]prov.Record, error)

	// Properties reports the architecture's Table 1 row as designed.
	// The props package verifies these claims empirically.
	Properties() Properties
}

// Put persists a single flush event: the one-element adapter over the
// batch-first contract, for callers (tests, probes) that deal in single
// events.
func Put(ctx context.Context, s Store, ev pass.FlushEvent) error {
	return s.PutBatch(ctx, []pass.FlushEvent{ev})
}

// Flusher adapts a Store to pass.Config.Flush: each coalesced close batch
// becomes one PutBatch call, with the caller's context threaded through.
func Flusher(s Store) pass.FlushFunc {
	return func(ctx context.Context, batch []pass.FlushEvent) error {
		return s.PutBatch(ctx, batch)
	}
}

// Syncer is implemented by stores that buffer client-side state between
// Puts (the S3-only architecture buffers transient provenance waiting for a
// descendant's PUT to ride on). Callers should Sync after the last Put of a
// session so trailing state persists.
type Syncer interface {
	Sync(ctx context.Context) error
}

// SyncStore syncs s if it buffers client-side state.
func SyncStore(ctx context.Context, s Store) error {
	if syncer, ok := s.(Syncer); ok {
		return syncer.Sync(ctx)
	}
	return nil
}

// Properties is one row of Table 1.
type Properties struct {
	// Atomicity: provenance is recorded atomically with the data it
	// describes (both or neither survive a crash).
	Atomicity bool
	// Consistency: retrieved data and provenance provably match.
	Consistency bool
	// CausalOrdering: ancestors' data and provenance are (eventually)
	// recorded whenever a descendant is.
	CausalOrdering bool
	// EfficientQuery: provenance queries do not require scanning every
	// object in the repository.
	EfficientQuery bool
}

// ReadCorrectness is the composite property: atomicity and consistency.
func (p Properties) ReadCorrectness() bool { return p.Atomicity && p.Consistency }

// Querier is the composable query surface every architecture implements:
// one entrypoint taking a prov.Query descriptor, plus a cost planner. The
// evaluation's fixed query classes (Table 3) are descriptor compilations —
// see the package-level AllProvenance, OutputsOf, DescendantsOfOutputs and
// Dependents helpers — and each backend's native plan reproduces the
// fixed verbs' exact cloud ops.
type Querier interface {
	// Query answers one descriptor, streaming entries. A non-nil error
	// ends the sequence (its entry is zero); breaking early is allowed
	// and releases the underlying scan. For paginated descriptors
	// (Limit/Cursor set) the last entry of a truncated page carries the
	// resume cursor.
	Query(ctx context.Context, q prov.Query) iter.Seq2[Entry, error]

	// Explain predicts the cloud cost of Query(q) without running it —
	// the Table 3 cost model extended to arbitrary descriptors. The
	// prediction uses client-side planner statistics: exact for the ops
	// this client performed itself, an estimate when other clients write
	// to the shared region.
	Explain(q prov.Query) QueryPlan
}

// Entry is one object version's provenance, as yielded by streaming
// queries.
type Entry struct {
	Ref     prov.Ref
	Records []prov.Record
	// Cursor is set only on the last entry of a truncated page of a
	// paginated query: pass it back via prov.Query.Cursor to resume.
	Cursor string
}

// --- fixed-verb wrappers -----------------------------------------------------
//
// Deprecated surface: each verb compiles to a prov.Query descriptor and
// runs through the one Querier entrypoint. They remain because the paper's
// evaluation is phrased in these verbs; new callers should build
// descriptors directly.

// AllProvenance retrieves the provenance of every object version in the
// repository — Q.1 "performed on all objects" — materialized as a map.
//
// Deprecated: build prov.Q1() and use Querier.Query.
func AllProvenance(ctx context.Context, q Querier) (map[prov.Ref][]prov.Record, error) {
	out := make(map[prov.Ref][]prov.Record)
	for entry, err := range q.Query(ctx, prov.Q1()) {
		if err != nil {
			return nil, err
		}
		out[entry.Ref] = append(out[entry.Ref], entry.Records...)
	}
	return out, nil
}

// OutputsOf finds every file version written by an instance of the named
// tool — Q.2 ("all the files that were outputs of blast").
//
// Deprecated: build prov.QOutputsOf and use Querier.Query.
func OutputsOf(ctx context.Context, q Querier, tool string) ([]prov.Ref, error) {
	return CollectRefs(q.Query(ctx, prov.QOutputsOf(tool)))
}

// DescendantsOfOutputs finds everything transitively derived from the named
// tool's outputs — Q.3 ("all the descendants of files derived from blast").
//
// Deprecated: build prov.QDescendantsOfOutputs and use Querier.Query.
func DescendantsOfOutputs(ctx context.Context, q Querier, tool string) ([]prov.Ref, error) {
	return CollectRefs(q.Query(ctx, prov.QDescendantsOfOutputs(tool)))
}

// Dependents finds every object version that lists any version of object
// among its inputs. It powers the provenance-aware deletion guard (the
// paper's §7 direction).
//
// Deprecated: build prov.QDependents and use Querier.Query.
func Dependents(ctx context.Context, q Querier, object prov.ObjectID) ([]prov.Ref, error) {
	return CollectRefs(q.Query(ctx, prov.QDependents(object)))
}

// CollectRefs drains a query stream into its references.
func CollectRefs(seq iter.Seq2[Entry, error]) ([]prov.Ref, error) {
	var out []prov.Ref
	for entry, err := range seq {
		if err != nil {
			return nil, err
		}
		out = append(out, entry.Ref)
	}
	return out, nil
}

// CollectEntries drains a query stream into a slice.
func CollectEntries(seq iter.Seq2[Entry, error]) ([]Entry, error) {
	var out []Entry
	for entry, err := range seq {
		if err != nil {
			return nil, err
		}
		out = append(out, entry)
	}
	return out, nil
}

// GraphQuerier is implemented by stores that can hand out the repository's
// provenance graph directly — from their query-cache snapshot when warm,
// at zero cloud ops. The returned graph is shared and must be treated as
// read-only. Callers that need a traversal (ancestry walks) should prefer
// this over re-materializing a graph from a streamed scan.
type GraphQuerier interface {
	ProvenanceGraph(ctx context.Context) (*prov.Graph, error)
}

// RefPlanner is implemented by stores whose Explain simulation can also
// predict the reference set a query's native plan would return, without
// cloud traffic. The shard router uses it to drive distributed multi-hop
// traversals in plan space: each BFS round's frontier is predicted per
// shard and merged exactly the way the live fan-out merges entries, which
// is what keeps Router.Explain's composed estimate equal to the metered
// run.
//
// ok reports shape support, not answer accuracy: it is false when the
// descriptor has no native indexed plan (shapes that fall back to a full
// graph materialization), and true otherwise even if foreign writers have
// made the client-side catalog stale — the accompanying QueryPlan's Exact
// flag carries that caveat. Beyond the natively planned shapes,
// implementations must support one virtual descriptor the router never
// executes directly: {Refs, TraverseAncestors, Depth: 1, IncludeSeeds:
// true, ProjectRefs, no other filters}, answering the raw union of the
// pinned refs' direct inputs (the plan-space mirror of the router's
// inputs-of-refs fan-out round).
type RefPlanner interface {
	PlanQueryRefs(q prov.Query) ([]prov.Ref, bool)
}

// ProvenanceGraph returns q's repository graph, preferring the store's own
// (possibly cached) graph and falling back to materializing the streamed
// scan. The result is shared: read-only.
func ProvenanceGraph(ctx context.Context, q Querier) (*prov.Graph, error) {
	if gq, ok := q.(GraphQuerier); ok {
		return gq.ProvenanceGraph(ctx)
	}
	g := prov.NewGraph()
	for entry, err := range q.Query(ctx, prov.Q1()) {
		if err != nil {
			return nil, err
		}
		g.AddAll(entry.Records)
	}
	return g, nil
}

// AllProvenanceSeq streams q's repository provenance — the Q.1 descriptor
// through the one query entrypoint.
//
// Deprecated: build prov.Q1() and use Querier.Query.
func AllProvenanceSeq(ctx context.Context, q Querier) iter.Seq2[Entry, error] {
	return q.Query(ctx, prov.Q1())
}
