// Package core defines the paper's primary contribution as Go interfaces:
// a provenance-aware cloud store with three interchangeable architectures
// (S3-only; S3+SimpleDB; S3+SimpleDB+SQS), the properties each must satisfy
// (Table 1), and the query classes of the evaluation (Table 3).
//
// The architecture implementations live in the subpackages s3only, s3sdb and
// s3sdbsqs; sdbprov holds the SimpleDB provenance layer the latter two
// share.
package core

import (
	"context"
	"errors"

	"passcloud/internal/pass"
	"passcloud/internal/prov"
)

// Errors shared by all architectures.
var (
	// ErrNotFound is returned by Get/Provenance for unknown objects.
	ErrNotFound = errors.New("core: object not found")
	// ErrInconsistent is returned when a read could not produce data with
	// matching provenance within the retry budget — a read-correctness
	// failure surfaced instead of hidden.
	ErrInconsistent = errors.New("core: data and provenance inconsistent")
	// ErrNoProvenance is returned when data exists but its provenance
	// cannot be located — the atomicity-violation shape of §4.2.
	ErrNoProvenance = errors.New("core: object has no provenance")
)

// Object is a retrieved object with its verified provenance.
type Object struct {
	// Ref is the object version the data corresponds to.
	Ref prov.Ref
	// Data is the object content.
	Data []byte
	// Records is the provenance of exactly this version.
	Records []prov.Record
}

// Store is a provenance-aware cloud store. One Store instance corresponds
// to one PASS client; its Put is wired as the pass.System flush function.
type Store interface {
	// Name identifies the architecture ("s3", "s3+sdb", "s3+sdb+sqs").
	Name() string

	// Put persists one PASS flush event: a file version with data, or a
	// transient object version with provenance only. The paper's protocols
	// run entirely inside Put.
	Put(ctx context.Context, ev pass.FlushEvent) error

	// Get retrieves the current version of object together with
	// provenance that provably describes the returned bytes (read
	// correctness, to the degree the architecture supports it).
	Get(ctx context.Context, object prov.ObjectID) (*Object, error)

	// Provenance returns the provenance records of one specific object
	// version — the paper's Q.1 unit operation.
	Provenance(ctx context.Context, ref prov.Ref) ([]prov.Record, error)

	// Properties reports the architecture's Table 1 row as designed.
	// The props package verifies these claims empirically.
	Properties() Properties
}

// Flusher adapts a Store to pass.Config.Flush.
func Flusher(ctx context.Context, s Store) pass.FlushFunc {
	return func(ev pass.FlushEvent) error {
		return s.Put(ctx, ev)
	}
}

// Syncer is implemented by stores that buffer client-side state between
// Puts (the S3-only architecture buffers transient provenance waiting for a
// descendant's PUT to ride on). Callers should Sync after the last Put of a
// session so trailing state persists.
type Syncer interface {
	Sync(ctx context.Context) error
}

// SyncStore syncs s if it buffers client-side state.
func SyncStore(ctx context.Context, s Store) error {
	if syncer, ok := s.(Syncer); ok {
		return syncer.Sync(ctx)
	}
	return nil
}

// Properties is one row of Table 1.
type Properties struct {
	// Atomicity: provenance is recorded atomically with the data it
	// describes (both or neither survive a crash).
	Atomicity bool
	// Consistency: retrieved data and provenance provably match.
	Consistency bool
	// CausalOrdering: ancestors' data and provenance are (eventually)
	// recorded whenever a descendant is.
	CausalOrdering bool
	// EfficientQuery: provenance queries do not require scanning every
	// object in the repository.
	EfficientQuery bool
}

// ReadCorrectness is the composite property: atomicity and consistency.
func (p Properties) ReadCorrectness() bool { return p.Atomicity && p.Consistency }

// Querier answers the evaluation's three query classes (Table 3). All three
// architectures implement it; the S3-only implementation necessarily scans.
type Querier interface {
	// AllProvenance retrieves the provenance of every object version in
	// the repository — Q.1 "performed on all objects".
	AllProvenance(ctx context.Context) (map[prov.Ref][]prov.Record, error)

	// OutputsOf finds every file version written by an instance of the
	// named tool — Q.2 ("all the files that were outputs of blast").
	OutputsOf(ctx context.Context, tool string) ([]prov.Ref, error)

	// DescendantsOfOutputs finds everything transitively derived from the
	// named tool's outputs — Q.3 ("all the descendants of files derived
	// from blast").
	DescendantsOfOutputs(ctx context.Context, tool string) ([]prov.Ref, error)

	// Dependents finds every object version that lists any version of
	// object among its inputs. It powers the provenance-aware deletion
	// guard (the paper's §7 direction: "how a cloud might take advantage
	// of this provenance").
	Dependents(ctx context.Context, object prov.ObjectID) ([]prov.Ref, error)
}
