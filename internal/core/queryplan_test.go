package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"passcloud/internal/prov"
)

func pageRef(i int) prov.Ref {
	return prov.Ref{Object: prov.ObjectID(fmt.Sprintf("/p/%02d", i)), Version: 0}
}

// runPage drives RunPaged once and collects the page.
func runPage(t *testing.T, q prov.Query, stamp string, pins *Pins, eval func(context.Context, prov.Query) ([]Entry, error)) ([]Entry, string, error) {
	t.Helper()
	var out []Entry
	var ferr error
	RunPaged(context.Background(), q, stamp, pins, eval, func(e Entry, err error) bool {
		if err != nil {
			ferr = err
			return false
		}
		out = append(out, e)
		return true
	})
	cursor := ""
	if len(out) > 0 {
		cursor = out[len(out)-1].Cursor
	}
	return out, cursor, ferr
}

func TestRunPagedSequence(t *testing.T) {
	evals := 0
	eval := func(context.Context, prov.Query) ([]Entry, error) {
		evals++
		var out []Entry
		for i := 4; i >= 0; i-- { // unsorted on purpose
			out = append(out, Entry{Ref: pageRef(i)})
		}
		return out, nil
	}
	pins := &Pins{}
	q := prov.Query{RefPrefix: "/p/", Limit: 2, Projection: prov.ProjectRefs}

	page1, cur1, err := runPage(t, q, "g1", pins, eval)
	if err != nil || len(page1) != 2 || cur1 == "" {
		t.Fatalf("page1 = %v cursor=%q err=%v", page1, cur1, err)
	}
	if page1[0].Ref != pageRef(0) || page1[1].Ref != pageRef(1) {
		t.Fatalf("page1 not ref-sorted: %v", page1)
	}

	// Later pages serve the pin even at a NEWER stamp (a write landed).
	q.Cursor = cur1
	page2, cur2, err := runPage(t, q, "g2", pins, eval)
	if err != nil || len(page2) != 2 || cur2 == "" {
		t.Fatalf("page2 = %v cursor=%q err=%v", page2, cur2, err)
	}
	q.Cursor = cur2
	page3, cur3, err := runPage(t, q, "g2", pins, eval)
	if err != nil || len(page3) != 1 || cur3 != "" {
		t.Fatalf("page3 = %v cursor=%q err=%v", page3, cur3, err)
	}
	if evals != 1 {
		t.Fatalf("pagination re-evaluated %d times; the pin must serve later pages", evals)
	}
}

func TestRunPagedCursorErrors(t *testing.T) {
	eval := func(context.Context, prov.Query) ([]Entry, error) {
		return []Entry{{Ref: pageRef(0)}, {Ref: pageRef(1)}, {Ref: pageRef(2)}}, nil
	}
	pins := &Pins{}
	q := prov.Query{RefPrefix: "/p/", Limit: 1, Projection: prov.ProjectRefs}
	_, cur, err := runPage(t, q, "g1", pins, eval)
	if err != nil || cur == "" {
		t.Fatalf("seed page: cursor=%q err=%v", cur, err)
	}

	// Garbage cursor.
	bad := q
	bad.Cursor = "!!not-base64!!"
	if _, _, err := runPage(t, bad, "g1", pins, eval); !errors.Is(err, ErrBadCursor) {
		t.Fatalf("garbage cursor err = %v", err)
	}

	// Cursor bound to a different logical query.
	other := prov.Query{RefPrefix: "/other/", Limit: 1, Projection: prov.ProjectRefs, Cursor: cur}
	if _, _, err := runPage(t, other, "g1", pins, eval); !errors.Is(err, ErrBadCursor) {
		t.Fatalf("cross-query cursor err = %v", err)
	}

	// Cursor minted by a different store instance, resumed at a stamp that
	// happens to collide with the foreign one (generation counters are
	// process-local): must fail deterministically, not silently re-evaluate
	// and pose as a continuation of a result set this instance never pinned.
	foreign := q
	foreign.Cursor = cur
	if _, _, err := runPage(t, foreign, "g1", &Pins{}, eval); !errors.Is(err, ErrBadCursor) {
		t.Fatalf("foreign-instance cursor err = %v", err)
	}

	// Evicted pin + changed repository: expired. Evict by pinning more
	// result sets than the registry retains.
	for i := 0; i < maxPins+1; i++ {
		filler := prov.Query{RefPrefix: fmt.Sprintf("/f%d/", i), Limit: 1, Projection: prov.ProjectRefs}
		if _, _, err := runPage(t, filler, "g1", pins, eval); err != nil {
			t.Fatal(err)
		}
	}
	expired := q
	expired.Cursor = cur
	if _, _, err := runPage(t, expired, "g9", pins, eval); !errors.Is(err, ErrCursorExpired) {
		t.Fatalf("expired cursor err = %v", err)
	}

	// Evicted pin at an UNCHANGED stamp: re-evaluate silently.
	if got, _, err := runPage(t, expired, "g1", pins, eval); err != nil || len(got) != 1 {
		t.Fatalf("same-stamp re-eval = %v err=%v", got, err)
	}
}

// TestPlanCursor: the planning-time disposition mirrors RunPaged's resume
// logic, including the evicted-pin re-evaluation Explain must cost.
func TestPlanCursor(t *testing.T) {
	eval := func(context.Context, prov.Query) ([]Entry, error) {
		return []Entry{{Ref: pageRef(0)}, {Ref: pageRef(1)}, {Ref: pageRef(2)}}, nil
	}
	pins := &Pins{}
	q := prov.Query{RefPrefix: "/p/", Limit: 1, Projection: prov.ProjectRefs}
	_, cur, err := runPage(t, q, "g1", pins, eval)
	if err != nil || cur == "" {
		t.Fatalf("seed page: cursor=%q err=%v", cur, err)
	}
	withCur := q
	withCur.Cursor = cur

	if got := PlanCursor(withCur, pins, "g1"); got != CursorPinned {
		t.Fatalf("resident pin disposition = %v, want CursorPinned", got)
	}
	if got := PlanCursor(withCur, &Pins{}, "g1"); got != CursorFails {
		t.Fatalf("foreign-instance disposition = %v, want CursorFails", got)
	}
	bad := q
	bad.Cursor = "!!garbage!!"
	if got := PlanCursor(bad, pins, "g1"); got != CursorFails {
		t.Fatalf("garbage disposition = %v, want CursorFails", got)
	}

	// Evict the pin with newer paginated queries.
	for i := 0; i < maxPins+1; i++ {
		filler := prov.Query{RefPrefix: fmt.Sprintf("/f%d/", i), Limit: 1, Projection: prov.ProjectRefs}
		if _, _, err := runPage(t, filler, "g1", pins, eval); err != nil {
			t.Fatal(err)
		}
	}
	if got := PlanCursor(withCur, pins, "g1"); got != CursorReEval {
		t.Fatalf("evicted-pin same-stamp disposition = %v, want CursorReEval", got)
	}
	if got := PlanCursor(withCur, pins, "g2"); got != CursorFails {
		t.Fatalf("evicted-pin changed-stamp disposition = %v, want CursorFails", got)
	}
}

func TestPlanPages(t *testing.T) {
	cases := []struct {
		n, limit int
		want     int64
	}{
		{0, 250, 1}, {1, 250, 1}, {250, 250, 1}, {251, 250, 2}, {500, 250, 2}, {501, 250, 3},
	}
	for _, c := range cases {
		if got := PlanPages(c.n, c.limit); got != c.want {
			t.Errorf("PlanPages(%d, %d) = %d, want %d", c.n, c.limit, got, c.want)
		}
	}
}
