// Arc migration: the store-side contract behind elastic resharding.
//
// A migration moves an *arc* — the set of objects a consistent-hash ring
// reassignment strips from one shard and hands to another — between two
// member stores of the same architecture. The router (internal/core/shard)
// orchestrates copy → verify → flip; the stores contribute the three
// primitives below, each implemented natively so the copy preserves the
// architecture's own encoding, consistency records and integrity
// commitments instead of replaying writes through the public path (which
// could not reconstruct historical versions or per-version nonces).
package core

import (
	"context"

	"passcloud/internal/prov"
)

// ArcExport is one shard's captured copy of a migrating arc. Subjects
// lists every provenance subject whose records travel with the arc —
// including transient riders whose own hash may place them elsewhere;
// they home with their carrier, and the router's double-read window is
// keyed off this exact set. Payload is architecture-specific; ImportArc
// rejects a payload minted by a different architecture.
type ArcExport struct {
	// Subjects are the provenance subjects the export carries.
	Subjects []prov.Ref
	// Objects counts the storage objects (carriers, items, data blobs)
	// captured.
	Objects int
	// Bytes is the payload volume: data bodies plus record values.
	Bytes int64
	// Payload holds the architecture-specific captured state.
	Payload any
}

// Migrator is the per-store migration surface. All three methods are
// idempotent with respect to crash recovery: re-importing an arc
// overwrites the same keys with the same contents, and re-removing an
// already-removed arc removes nothing.
type Migrator interface {
	// ExportArc captures every object whose ID matches, with full
	// provenance (own records and transient riders) in decoded form plus
	// whatever raw state the architecture needs to reproduce the objects
	// bit-identically (bodies, version metadata, consistency nonces).
	ExportArc(ctx context.Context, match func(prov.ObjectID) bool) (*ArcExport, error)
	// ImportArc writes a captured arc into this store natively: records
	// re-encode under this store's own pipeline and the store's OWN
	// integrity ledger commits the imported leaves (checkpoints are never
	// copied across stores — each shard stays single-writer).
	ImportArc(ctx context.Context, exp *ArcExport) error
	// RemoveArc deletes every matching object (and its provenance,
	// overflow/spill objects and ledger slots), then persists a fresh
	// checkpoint so the shard's commitment reflects the removal. It takes
	// the predicate rather than an export so crash recovery can re-derive
	// the removal set without in-memory state. Returns the number of
	// storage objects removed.
	RemoveArc(ctx context.Context, match func(prov.ObjectID) bool) (int, error)
}
