package props

import (
	"context"
	"testing"
)

// TestTable1 reproduces the paper's properties matrix empirically. The
// expected values are exactly Table 1:
//
//	Architecture   Atomicity  Consistency  CausalOrdering  EfficientQuery
//	s3             yes        yes          yes             no
//	s3+sdb         no         yes          yes             yes
//	s3+sdb+sqs     yes        yes          yes             yes
func TestTable1(t *testing.T) {
	ctx := context.Background()
	want := map[string][4]bool{
		"s3":         {true, true, true, false},
		"s3+sdb":     {false, true, true, true},
		"s3+sdb+sqs": {true, true, true, true},
	}
	for _, h := range StandardHarnesses(7) {
		h := h
		t.Run(h.Name, func(t *testing.T) {
			report, err := Check(ctx, h)
			if err != nil {
				t.Fatal(err)
			}
			w := want[h.Name]
			got := [4]bool{
				report.Measured.Atomicity,
				report.Measured.Consistency,
				report.Measured.CausalOrdering,
				report.Measured.EfficientQuery,
			}
			if got != w {
				t.Errorf("measured properties = %v, want %v (violations: %v)",
					got, w, report.Violations)
			}
			// The measured row must match the architecture's claim.
			claimed := [4]bool{
				report.Claimed.Atomicity,
				report.Claimed.Consistency,
				report.Claimed.CausalOrdering,
				report.Claimed.EfficientQuery,
			}
			if got != claimed {
				t.Errorf("measured %v disagrees with claimed %v", got, claimed)
			}
		})
	}
}

// TestAtomicityViolationIsRepaired confirms that the s3+sdb recovery path
// (the orphan scan) repairs the violation the checker provokes.
func TestAtomicityViolationIsRepaired(t *testing.T) {
	ctx := context.Background()
	for _, h := range StandardHarnesses(11) {
		if h.Name != "s3+sdb" {
			continue
		}
		report, err := Check(ctx, h)
		if err != nil {
			t.Fatal(err)
		}
		if report.Measured.Atomicity {
			t.Fatal("s3+sdb measured atomic; the crash window was not provoked")
		}
		for _, v := range report.Violations {
			if v == "atomicity: recovery failed to repair s3sdb/after-prov" {
				t.Fatalf("orphan scan failed: %v", report.Violations)
			}
		}
	}
}

// TestQueryCostSeparation pins the quantitative gap behind the
// EfficientQuery column: the S3-only architecture must pay on the order of
// one op per object, the SimpleDB-backed ones a small constant.
func TestQueryCostSeparation(t *testing.T) {
	ctx := context.Background()
	ops := map[string]int64{}
	for _, h := range StandardHarnesses(13) {
		report, err := Check(ctx, h)
		if err != nil {
			t.Fatal(err)
		}
		ops[h.Name] = report.QueryOps
		t.Logf("%s: %d ops over %d objects", h.Name, report.QueryOps, report.Objects)
	}
	if ops["s3"] < 60 {
		t.Errorf("s3 query ops = %d; expected a full scan (>= one per object)", ops["s3"])
	}
	if ops["s3+sdb"] >= ops["s3"]/4 {
		t.Errorf("s3+sdb query ops = %d vs s3 %d; expected an order-of-magnitude gap",
			ops["s3+sdb"], ops["s3"])
	}
	if ops["s3+sdb+sqs"] >= ops["s3"]/4 {
		t.Errorf("s3+sdb+sqs query ops = %d vs s3 %d; expected an order-of-magnitude gap",
			ops["s3+sdb+sqs"], ops["s3"])
	}
}
