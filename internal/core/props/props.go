// Package props verifies Table 1 empirically: for each architecture it runs
// scripted crash, consistency, causal-ordering and query-cost scenarios and
// reports which of the paper's properties actually hold. The benchmark
// harness prints the resulting matrix next to the paper's.
package props

import (
	"context"
	"errors"
	"fmt"
	"time"

	"passcloud/internal/cloud"
	"passcloud/internal/core"
	"passcloud/internal/core/s3only"
	"passcloud/internal/core/s3sdb"
	"passcloud/internal/core/s3sdbsqs"
	"passcloud/internal/pass"
	"passcloud/internal/prov"
	"passcloud/internal/sim"
)

// Env is one architecture under test, freshly constructed per scenario.
type Env struct {
	Cloud *cloud.Cloud
	Store core.Store
	// Pump drives background machinery (the commit daemon). It simulates a
	// *restarted* daemon, so in-memory daemon state does not survive a
	// crash scenario. Nil means no machinery.
	Pump func(ctx context.Context) error
	// Recover runs the architecture's crash-recovery path (orphan scan).
	// Nil means none.
	Recover func(ctx context.Context) error
	// AtomicityWindows are the client crash points whose aftermath must be
	// all-or-nothing for atomicity to hold.
	AtomicityWindows []string
}

// Harness builds Envs for one architecture.
type Harness struct {
	Name string
	New  func(faults *sim.FaultPlan) (*Env, error)
}

// Report is the measured Table 1 row plus evidence.
type Report struct {
	Name     string
	Measured core.Properties
	Claimed  core.Properties
	// Violations describes each observed property violation.
	Violations []string
	// QueryOps is the total op count of the efficiency probe; Objects is
	// the repository size it ran against.
	QueryOps int64
	Objects  int
}

// delayCfg is the consistency stress configuration shared by scenarios.
const propDelay = 5 * time.Second

// StandardHarnesses returns the three architectures wired for property
// checking.
func StandardHarnesses(seed int64) []Harness {
	return []Harness{
		{Name: "s3", New: func(f *sim.FaultPlan) (*Env, error) {
			cl := cloud.New(cloud.Config{Seed: seed, MaxDelay: propDelay})
			st, err := s3only.New(s3only.Config{Cloud: cl, Faults: f})
			if err != nil {
				return nil, err
			}
			return &Env{
				Cloud:            cl,
				Store:            st,
				AtomicityWindows: []string{"s3only/before-put", "s3only/after-overflow-put"},
			}, nil
		}},
		{Name: "s3+sdb", New: func(f *sim.FaultPlan) (*Env, error) {
			cl := cloud.New(cloud.Config{Seed: seed, MaxDelay: propDelay})
			st, err := s3sdb.New(s3sdb.Config{Cloud: cl, Faults: f})
			if err != nil {
				return nil, err
			}
			return &Env{
				Cloud: cl,
				Store: st,
				Recover: func(ctx context.Context) error {
					_, err := st.OrphanScan(ctx)
					return err
				},
				AtomicityWindows: []string{
					"s3sdb/after-prov",
					"s3sdb/after-batchput",
				},
			}, nil
		}},
		{Name: "s3+sdb+sqs", New: func(f *sim.FaultPlan) (*Env, error) {
			cl := cloud.New(cloud.Config{Seed: seed, MaxDelay: propDelay})
			st, err := s3sdbsqs.New(s3sdbsqs.Config{Cloud: cl, Faults: f})
			if err != nil {
				return nil, err
			}
			return &Env{
				Cloud: cl,
				Store: st,
				Pump: func(ctx context.Context) error {
					// A fresh daemon each pump models restart-after-crash.
					daemon := s3sdbsqs.NewCommitDaemon(st, nil)
					for i := 0; i < 10; i++ {
						n, err := daemon.RunOnce(ctx, true)
						if err != nil {
							return err
						}
						if n == 0 && daemon.PendingTransactions() == 0 {
							return nil
						}
						cl.Settle()
					}
					return nil
				},
				AtomicityWindows: []string{
					"wal/after-begin",
					"wal/after-tmp-put",
					"wal/after-record-0",
					"wal/after-record-1",
					"wal/before-commit",
					"wal/after-commit",
				},
			}, nil
		}},
	}
}

// Check measures every property for one harness.
func Check(ctx context.Context, h Harness) (*Report, error) {
	report := &Report{Name: h.Name}

	atomic, violations, err := checkAtomicity(ctx, h)
	if err != nil {
		return nil, fmt.Errorf("%s: atomicity check: %w", h.Name, err)
	}
	report.Measured.Atomicity = atomic
	report.Violations = append(report.Violations, violations...)

	consistent, violations, err := checkConsistency(ctx, h)
	if err != nil {
		return nil, fmt.Errorf("%s: consistency check: %w", h.Name, err)
	}
	report.Measured.Consistency = consistent
	report.Violations = append(report.Violations, violations...)

	causal, violations, err := checkCausalOrdering(ctx, h)
	if err != nil {
		return nil, fmt.Errorf("%s: causal ordering check: %w", h.Name, err)
	}
	report.Measured.CausalOrdering = causal
	report.Violations = append(report.Violations, violations...)

	efficient, ops, objects, err := checkEfficientQuery(ctx, h)
	if err != nil {
		return nil, fmt.Errorf("%s: query efficiency check: %w", h.Name, err)
	}
	report.Measured.EfficientQuery = efficient
	report.QueryOps = ops
	report.Objects = objects

	env, err := h.New(nil)
	if err != nil {
		return nil, err
	}
	report.Claimed = env.Store.Properties()
	return report, nil
}

// fileEvent builds a small test flush event.
func fileEvent(object string, records ...prov.Record) pass.FlushEvent {
	ref := prov.Ref{Object: prov.ObjectID(object), Version: 0}
	base := []prov.Record{
		prov.NewString(ref, prov.AttrType, prov.TypeFile),
		prov.NewString(ref, prov.AttrName, object),
	}
	return pass.FlushEvent{Ref: ref, Type: prov.TypeFile, Data: []byte("data-" + object), Records: append(base, records...)}
}

// checkAtomicity crashes the client at every protocol window and inspects
// the surviving state: atomicity holds iff data and provenance are always
// both present or both absent (after the background machinery catches up).
func checkAtomicity(ctx context.Context, h Harness) (bool, []string, error) {
	// Discover the windows from a probe env.
	probe, err := h.New(nil)
	if err != nil {
		return false, nil, err
	}
	atomic := true
	var violations []string

	for _, point := range probe.AtomicityWindows {
		faults := sim.NewFaultPlan()
		faults.Arm(point)
		env, err := h.New(faults)
		if err != nil {
			return false, nil, err
		}
		object := prov.ObjectID("/atom" + sanitize(point))
		perr := core.Put(ctx, env.Store, fileEvent(string(object)))
		if perr != nil && !errors.Is(perr, sim.ErrCrash) {
			return false, nil, perr
		}
		env.Cloud.Settle()
		if env.Pump != nil {
			if err := env.Pump(ctx); err != nil {
				return false, nil, err
			}
		}
		env.Cloud.Settle()

		dataOK, provOK, err := probeState(ctx, env.Store, object)
		if err != nil {
			return false, nil, err
		}
		if dataOK != provOK {
			atomic = false
			violations = append(violations,
				fmt.Sprintf("atomicity: crash at %s left data=%v provenance=%v", point, dataOK, provOK))
			// Verify the recovery path repairs it, as §4.2 prescribes.
			if env.Recover != nil {
				if err := env.Recover(ctx); err != nil {
					return false, nil, err
				}
				dataOK2, provOK2, err := probeState(ctx, env.Store, object)
				if err != nil {
					return false, nil, err
				}
				if dataOK2 != provOK2 {
					violations = append(violations,
						fmt.Sprintf("atomicity: recovery failed to repair %s", point))
				}
			}
		}
	}
	return atomic, violations, nil
}

// probeState reports whether the object's data and provenance are visible.
func probeState(ctx context.Context, st core.Store, object prov.ObjectID) (dataOK, provOK bool, err error) {
	_, gerr := st.Get(ctx, object)
	switch {
	case gerr == nil:
		dataOK, provOK = true, true
	case errors.Is(gerr, core.ErrNoProvenance):
		dataOK = true
	case errors.Is(gerr, core.ErrNotFound), errors.Is(gerr, core.ErrInconsistent):
		// fall through to the provenance probe
	default:
		return false, false, gerr
	}
	if !provOK {
		_, perr := st.Provenance(ctx, prov.Ref{Object: object, Version: 0})
		switch {
		case perr == nil:
			provOK = true
		case errors.Is(perr, core.ErrNotFound):
		default:
			return false, false, perr
		}
	}
	return dataOK, provOK, nil
}

// checkConsistency churns versions under propagation delay and watches for
// torn reads: data from one version paired with provenance from another.
func checkConsistency(ctx context.Context, h Harness) (bool, []string, error) {
	env, err := h.New(nil)
	if err != nil {
		return false, nil, err
	}
	const object = prov.ObjectID("/consistency")
	for v := 0; v < 4; v++ {
		ref := prov.Ref{Object: object, Version: prov.Version(v)}
		marker := fmt.Sprintf("gen-%d", v)
		ev := pass.FlushEvent{Ref: ref, Type: prov.TypeFile, Data: []byte(marker),
			Records: []prov.Record{
				prov.NewString(ref, prov.AttrType, prov.TypeFile),
				prov.NewString(ref, prov.AttrEnv, marker),
			}}
		if err := core.Put(ctx, env.Store, ev); err != nil {
			return false, nil, err
		}
		if env.Pump != nil {
			if err := env.Pump(ctx); err != nil {
				return false, nil, err
			}
		}
		env.Cloud.Clock.Advance(propDelay / 3) // partial propagation
	}

	consistent := true
	var violations []string
	for i := 0; i < 60; i++ {
		obj, err := env.Store.Get(ctx, object)
		if err != nil {
			continue // surfaced errors are acceptable; hidden mismatches are not
		}
		var marker string
		for _, r := range obj.Records {
			if r.Attr == prov.AttrEnv {
				marker = r.Value.Str
			}
		}
		if string(obj.Data) != marker {
			consistent = false
			violations = append(violations,
				fmt.Sprintf("consistency: read returned data %q with provenance %q", obj.Data, marker))
			break
		}
	}
	return consistent, violations, nil
}

// checkCausalOrdering runs a three-stage pipeline and verifies that every
// input reference in retrievable provenance resolves to retrievable
// provenance — no dangling ancestors (eventually).
func checkCausalOrdering(ctx context.Context, h Harness) (bool, []string, error) {
	env, err := h.New(nil)
	if err != nil {
		return false, nil, err
	}
	sys := pass.NewSystem(pass.Config{Flush: core.Flusher(env.Store)})
	if err := sys.Ingest(ctx, "/c/in", []byte("source")); err != nil {
		return false, nil, err
	}
	p1 := sys.Exec(nil, pass.ExecSpec{Name: "stage1"})
	if err := sys.Read(p1, "/c/in"); err != nil {
		return false, nil, err
	}
	if err := sys.Write(p1, "/c/mid", []byte("mid"), pass.Truncate); err != nil {
		return false, nil, err
	}
	p2 := sys.Exec(nil, pass.ExecSpec{Name: "stage2"})
	if err := sys.Read(p2, "/c/mid"); err != nil {
		return false, nil, err
	}
	if err := sys.Write(p2, "/c/out", []byte("out"), pass.Truncate); err != nil {
		return false, nil, err
	}
	if err := sys.Close(ctx, p2, "/c/out"); err != nil {
		return false, nil, err
	}
	if err := sys.Close(ctx, p1, "/c/mid"); err != nil {
		return false, nil, err
	}
	if env.Pump != nil {
		if err := env.Pump(ctx); err != nil {
			return false, nil, err
		}
	}
	env.Cloud.Settle()

	q, ok := env.Store.(core.Querier)
	if !ok {
		return false, nil, errors.New("store is not a Querier")
	}
	all, err := core.AllProvenance(ctx, q)
	if err != nil {
		return false, nil, err
	}
	g := prov.NewGraph()
	for _, records := range all {
		g.AddAll(records)
	}
	if missing := g.MissingAncestors(); len(missing) > 0 {
		return false, []string{fmt.Sprintf("causal ordering: dangling ancestors %v", missing)}, nil
	}
	if !g.IsAcyclic() {
		return false, []string{"causal ordering: retrieved provenance graph is cyclic"}, nil
	}
	return true, nil, nil
}

// checkEfficientQuery loads a repository of n objects and measures the op
// cost of one targeted Q.2 query. Efficient means the cost does not grow
// with repository size — operationally, well under one op per stored object.
func checkEfficientQuery(ctx context.Context, h Harness) (bool, int64, int, error) {
	env, err := h.New(nil)
	if err != nil {
		return false, 0, 0, err
	}
	const n = 60
	// One interesting producer...
	blastRef := prov.Ref{Object: "proc/1/blast", Version: 0}
	blast := pass.FlushEvent{Ref: blastRef, Type: prov.TypeProcess, Records: []prov.Record{
		prov.NewString(blastRef, prov.AttrType, prov.TypeProcess),
		prov.NewString(blastRef, prov.AttrName, "blast"),
	}}
	if err := core.Put(ctx, env.Store, blast); err != nil {
		return false, 0, 0, err
	}
	if err := core.Put(ctx, env.Store, fileEvent("/q/hit", prov.NewInput(prov.Ref{Object: "/q/hit"}, blastRef))); err != nil {
		return false, 0, 0, err
	}
	// ...drowned in unrelated objects.
	for i := 0; i < n; i++ {
		if err := core.Put(ctx, env.Store, fileEvent(fmt.Sprintf("/q/noise%03d", i))); err != nil {
			return false, 0, 0, err
		}
	}
	if env.Pump != nil {
		if err := env.Pump(ctx); err != nil {
			return false, 0, 0, err
		}
	}
	env.Cloud.Settle()

	q, ok := env.Store.(core.Querier)
	if !ok {
		return false, 0, 0, errors.New("store is not a Querier")
	}
	before := env.Cloud.Usage().TotalOps()
	outputs, err := core.OutputsOf(ctx, q, "blast")
	if err != nil {
		return false, 0, 0, err
	}
	if len(outputs) != 1 || outputs[0].Object != "/q/hit" {
		return false, 0, 0, fmt.Errorf("query returned wrong outputs: %v", outputs)
	}
	ops := env.Cloud.Usage().TotalOps() - before
	return ops < n/2, ops, n + 2, nil
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == '/' || r == '-' {
			out = append(out, '_')
			continue
		}
		out = append(out, r)
	}
	return string(out)
}
