// Package sweep is the randomized crash-recovery property harness: it runs
// a scripted PASS workload against one of the three architectures while a
// seeded, deterministic fault schedule injects every failure class the
// resilience subsystem distinguishes — transient service errors, permanent
// denials, applied-but-response-lost operations, client crashes at
// protocol points, and post-commit corruption — then drives the
// architecture's recovery machinery (flush retries, commit daemon,
// cleaner, orphan scan) and asserts the paper's core invariants over the
// converged state:
//
//   - no object is readable without provenance, and every workload file
//     converges to its expected latest version and content;
//   - no orphaned provenance survives recovery (items describing data that
//     never landed, §4.2's recovery obligation);
//   - retried operations never double-apply (no duplicated provenance
//     records, no version regressions from replayed WAL transactions);
//   - the query cache never serves stale results across failed/retried
//     writes (cached answers equal a fresh uncached evaluation);
//   - the WAL queue drains: no transaction wedges on redelivery;
//   - integrity verification is exact: a healthy converged run verifies
//     completely clean (zero false positives), and every injected
//     post-commit corruption — a flipped byte, a swapped version, a
//     dropped record — is detected (chain break or root mismatch on the
//     corrupted shard).
//
// With Config.Shards > 1 the same workload runs through the consistent-hash
// router over per-shard namespaces, and every invariant (and the
// corruption detection contract) must hold shard by shard.
//
// Everything is derived from Config.Seed — the region's randomness, the
// fault schedule, the corruption victims, and the workload — so a CI
// failure is replayable from the logged seed: same seed, same fault
// schedule, same final state digest.
package sweep

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"passcloud/internal/cloud"
	"passcloud/internal/cloud/retry"
	"passcloud/internal/cloud/s3"
	"passcloud/internal/core"
	"passcloud/internal/core/integrity"
	"passcloud/internal/core/s3only"
	"passcloud/internal/core/s3sdb"
	"passcloud/internal/core/s3sdbsqs"
	"passcloud/internal/core/sdbprov"
	"passcloud/internal/core/shard"
	"passcloud/internal/core/shard/reshard"
	"passcloud/internal/pass"
	"passcloud/internal/prov"
	"passcloud/internal/sim"
)

// Arches lists the architectures the sweep covers.
var Arches = []string{"s3", "s3+sdb", "s3+sdb+sqs"}

// AllClasses is the default fault-class mix (the recovery classes).
var AllClasses = []sim.FaultClass{sim.ClassCrash, sim.ClassTransient, sim.ClassPermanent, sim.ClassAckLoss}

// ClassesWithCorruption adds post-commit corruption to the recovery
// classes — the full tamper-evidence mix.
var ClassesWithCorruption = []sim.FaultClass{
	sim.ClassCrash, sim.ClassTransient, sim.ClassPermanent, sim.ClassAckLoss, sim.ClassCorrupt,
}

// Config parameterizes one sweep run.
type Config struct {
	// Arch is one of Arches.
	Arch string
	// Seed drives the region, the workload and the fault schedule.
	Seed int64
	// Faults is how many injections to schedule (default 6).
	Faults int
	// Classes restricts the classes drawn (default AllClasses).
	Classes []sim.FaultClass
	// MaxDelay is the region's propagation horizon (default 2s).
	MaxDelay time.Duration
	// Shards routes the workload through a consistent-hash router over
	// this many per-shard namespaces (0 or 1: the paper's single store).
	Shards int
	// Migrate adds the migration fault class (requires Shards > 1): after
	// recovery converges, a resharding split runs with one controller
	// crash point armed (seed-drawn), then Recover must converge the
	// store to fully-moved or fully-unmoved — never both — before the
	// invariant and verification phases run over the result.
	Migrate bool
	// MigrateTamper corrupts the migration's copy instead of crashing it
	// (requires Migrate): one moved record set is deleted from the
	// destination between import and verification, and the controller
	// must detect it before the flip — the run ends fully-unmoved at
	// epoch zero.
	MigrateTamper bool
}

// Result reports one run.
type Result struct {
	Arch string
	Seed int64
	// Shards echoes the effective shard count.
	Shards int
	// Schedule logs every injected fault, in arm order — the replay recipe.
	Schedule []string
	// FlushErrors are the workload-visible errors the faults caused. They
	// are expected; what must hold is that recovery repairs their effects.
	FlushErrors []string
	// Corruptions logs every post-commit corruption applied, in schedule
	// order — the rest of the replay recipe.
	Corruptions []string
	// VerifyClean reports that pre-corruption verification of the
	// converged run found zero divergences (no false positives).
	VerifyClean bool
	// DetectedAll reports that post-corruption verification flagged every
	// corrupted shard (vacuously true when nothing was corrupted).
	DetectedAll bool
	// PostDivergences counts the divergences verification reported after
	// the corruptions were applied.
	PostDivergences int
	// Migration logs the migration fault phase, when run: the armed
	// crash point (or the tamper), the journal phase recovered from, and
	// the final ring epoch — the rest of the replay recipe.
	Migration string
	// Violations lists invariant breaches. A correct implementation leaves
	// this empty for every seed.
	Violations []string
	// Digest fingerprints the final repository state (corruptions
	// included); identical seeds must produce identical digests
	// (deterministic replay).
	Digest string
	// Retry snapshots the run's retry overhead, summed across shards.
	Retry retry.Snapshot
}

// retryPolicy keeps sweep runs fast while still exercising multi-attempt
// recovery: 4 attempts cover transient windows up to 3 failures.
var retryPolicy = retry.Policy{
	MaxAttempts: 4,
	BaseDelay:   10 * time.Millisecond,
	MaxDelay:    100 * time.Millisecond,
	Budget:      2 * time.Second,
}

// faultMenu is what the schedule may draw for one architecture.
type faultMenu struct {
	crashPoints []string
	ops         []string
}

var menus = map[string]faultMenu{
	"s3": {
		crashPoints: []string{"s3only/before-put", "s3only/after-put", "s3only/after-overflow-put", "s3only/after-bundle-put"},
		ops:         []string{"s3/PUT"},
	},
	"s3+sdb": {
		crashPoints: []string{"s3sdb/before-put", "s3sdb/after-prov", "s3sdb/after-batchput", "s3sdb/after-data", "s3sdb/after-overflow-put", "s3sdb/after-putattrs-chunk"},
		ops:         []string{"s3/PUT", "sdb/PutAttributes", "sdb/BatchPutAttributes"},
	},
	"s3+sdb+sqs": {
		crashPoints: []string{
			"wal/before-begin", "wal/after-begin", "wal/after-tmp-put", "wal/after-record-0", "wal/after-record-1", "wal/before-commit", "wal/after-commit",
			"commit/after-copy", "commit/after-prov-write", "commit/after-delete-messages", "commit/after-tmp-delete",
		},
		ops: []string{"s3/PUT", "s3/COPY", "sdb/BatchPutAttributes", "sqs/SendMessage", "sqs/DeleteMessage", "sqs/ReceiveMessage"},
	},
}

// scheduledFault is one armed injection.
type scheduledFault struct {
	step  int
	class sim.FaultClass
	// target is a crash point (ClassCrash), an op name, or a corruption
	// kind (ClassCorrupt).
	target string
	skip   int
	count  int
	// kind and pick parameterize a ClassCorrupt draw.
	kind sim.CorruptKind
	pick int64
}

func (f scheduledFault) String() string {
	return fmt.Sprintf("step=%d class=%s target=%s skip=%d count=%d", f.step, f.class, f.target, f.skip, f.count)
}

// schedule draws cfg.Faults injections from the arch's menu, deterministic
// in the schedule RNG.
func schedule(cfg Config, rng *sim.RNG, steps int) []scheduledFault {
	menu := menus[cfg.Arch]
	var out []scheduledFault
	for i := 0; i < cfg.Faults; i++ {
		f := scheduledFault{step: rng.Intn(steps)}
		f.class = cfg.Classes[rng.Intn(len(cfg.Classes))]
		switch f.class {
		case sim.ClassCrash:
			f.target = menu.crashPoints[rng.Intn(len(menu.crashPoints))]
			f.skip = rng.Intn(2)
			f.count = 1
		case sim.ClassTransient:
			f.target = menu.ops[rng.Intn(len(menu.ops))]
			f.skip = rng.Intn(3)
			f.count = 1 + rng.Intn(3) // up to 3: the policy's 4 attempts absorb it
		case sim.ClassPermanent:
			f.target = menu.ops[rng.Intn(len(menu.ops))]
			f.skip = rng.Intn(3)
			f.count = 1 + rng.Intn(2)
		case sim.ClassAckLoss:
			f.target = menu.ops[rng.Intn(len(menu.ops))]
			f.skip = rng.Intn(3)
			f.count = 1 + rng.Intn(2) // stays under MaxAttempts: applied, then retried through
		case sim.ClassCorrupt:
			// Applied post-commit, after recovery converges; the step only
			// orders the schedule log. pick seeds the victim choice.
			f.kind = sim.CorruptKind(rng.Intn(3))
			f.pick = int64(rng.Intn(1 << 30))
			f.target = f.kind.String()
			f.count = 1
		}
		out = append(out, f)
	}
	return out
}

// shardEnv is one shard's slice of the environment.
type shardEnv struct {
	cloud  *cloud.Cloud
	store  shard.Store
	layer  *sdbprov.Layer // nil for s3-only
	s3sdb  *s3sdb.Store   // non-nil for the orphan-scan arch
	sqs    *s3sdbsqs.Store
	daemon func() *s3sdbsqs.CommitDaemon // fresh daemon per pump (restart semantics)
	stats  func() retry.Snapshot
	// mirror builds an uncached store over the same namespace for
	// freshness cross-checks; constructed lazily after recovery.
	mirror func() (shard.Store, error)
}

// env is the architecture wired for the sweep, one shardEnv per shard.
type env struct {
	single *cloud.Cloud // nil when sharded
	multi  *cloud.Multi // nil when unsharded
	shards []*shardEnv
	store  core.Store // the router, or the sole shard's store
	faults *sim.FaultPlan
	// tampered tracks victims already hit by a corruption, so a later draw
	// of the same kind cannot pick the same victim and silently undo the
	// tampering (swapping the same pair twice restores the original).
	tampered map[string]bool
}

// settle advances simulated time past the replication horizon on every
// namespace.
func (e *env) settle() {
	if e.multi != nil {
		e.multi.Settle()
		return
	}
	e.single.Settle()
}

// advance moves the (shared) virtual clock forward.
func (e *env) advance(d time.Duration) {
	if e.multi != nil {
		e.multi.Clock().Advance(d)
		return
	}
	e.single.Clock.Advance(d)
}

const daemonVisibility = 10 * time.Second

func buildEnv(cfg Config, faults *sim.FaultPlan) (*env, error) {
	n := cfg.Shards
	if n < 1 {
		n = 1
	}
	e := &env{faults: faults}
	ccfg := cloud.Config{Seed: cfg.Seed, MaxDelay: cfg.MaxDelay, Faults: faults}
	var clouds []*cloud.Cloud
	if n == 1 {
		e.single = cloud.New(ccfg)
		clouds = []*cloud.Cloud{e.single}
	} else {
		e.multi = cloud.NewMulti(ccfg)
		for i := 0; i < n; i++ {
			clouds = append(clouds, e.multi.Namespace(fmt.Sprintf("shard%d", i)))
		}
	}
	stores := make([]shard.Store, n)
	for i, cl := range clouds {
		se, err := buildShard(cfg, cl, faults)
		if err != nil {
			return nil, err
		}
		e.shards = append(e.shards, se)
		stores[i] = se.store
	}
	if n == 1 {
		e.store = stores[0]
		return e, nil
	}
	r, err := shard.New(shard.Config{Shards: stores})
	if err != nil {
		return nil, err
	}
	e.store = r
	return e, nil
}

// buildShard wires one shard's store on its namespace.
func buildShard(cfg Config, cl *cloud.Cloud, faults *sim.FaultPlan) (*shardEnv, error) {
	se := &shardEnv{cloud: cl}
	switch cfg.Arch {
	case "s3":
		st, err := s3only.New(s3only.Config{Cloud: cl, Faults: faults, PutConcurrency: 1, ScanConcurrency: 1, Retry: retryPolicy})
		if err != nil {
			return nil, err
		}
		se.store, se.stats = st, st.RetryStats
		se.mirror = func() (shard.Store, error) {
			return s3only.New(s3only.Config{Cloud: cl, PutConcurrency: 1, ScanConcurrency: 1, DisableQueryCache: true, DisableIntegrity: true})
		}
	case "s3+sdb":
		st, err := s3sdb.New(s3sdb.Config{Cloud: cl, Faults: faults, Retry: retryPolicy})
		if err != nil {
			return nil, err
		}
		se.store, se.layer, se.s3sdb, se.stats = st, st.Layer(), st, st.RetryStats
		se.mirror = func() (shard.Store, error) {
			return s3sdb.New(s3sdb.Config{Cloud: cl, DisableQueryCache: true, DisableIntegrity: true})
		}
	case "s3+sdb+sqs":
		st, err := s3sdbsqs.New(s3sdbsqs.Config{Cloud: cl, Faults: faults, Retry: retryPolicy})
		if err != nil {
			return nil, err
		}
		se.store, se.layer, se.sqs, se.stats = st, st.Layer(), st, st.RetryStats
		se.daemon = func() *s3sdbsqs.CommitDaemon {
			d := s3sdbsqs.NewCommitDaemon(st, faults)
			d.Visibility = daemonVisibility
			return d
		}
		se.mirror = func() (shard.Store, error) {
			return s3sdb.New(s3sdb.Config{Cloud: cl, DisableQueryCache: true, DisableIntegrity: true})
		}
	default:
		return nil, fmt.Errorf("sweep: unknown arch %q", cfg.Arch)
	}
	return se, nil
}

// mirror builds the uncached cross-check querier: the sole shard's
// uncached twin, or a router over every shard's twin (same ring order, so
// placement matches the primary).
func (e *env) mirror() (core.Querier, error) {
	twins := make([]shard.Store, len(e.shards))
	for i, se := range e.shards {
		m, err := se.mirror()
		if err != nil {
			return nil, err
		}
		twins[i] = m
	}
	if len(twins) == 1 {
		return twins[0], nil
	}
	return shard.New(shard.Config{Shards: twins})
}

// script is the deterministic workload: a pipeline with version churn,
// transient processes, a pipe, >1 KB record values (overflow objects) and a
// >2 KB process environment (metadata spill on architecture 1).
type script struct {
	sys *pass.System
	// procs carries process handles across steps.
	procs map[string]*pass.Process
	// paths tracks every file the workload writes, in creation order.
	paths []string
}

func (s *script) steps(ctx context.Context) []func() error {
	bigEnv := strings.Repeat("E", 1500) // > 1 KB: one overflow object
	track := func(p string) {
		for _, q := range s.paths {
			if q == p {
				return
			}
		}
		s.paths = append(s.paths, p)
	}
	return []func() error{
		func() error { track("/src/a"); return s.sys.Ingest(ctx, "/src/a", []byte("alpha")) },
		func() error { track("/src/b"); return s.sys.Ingest(ctx, "/src/b", []byte("beta")) },
		func() error {
			track("/out/1")
			p := s.sys.Exec(nil, pass.ExecSpec{Name: "tool1", Argv: []string{"tool1", "-x"}, Env: bigEnv})
			s.procs["p1"] = p
			if err := s.sys.Read(p, "/src/a"); err != nil {
				return err
			}
			if err := s.sys.Write(p, "/out/1", []byte("v0-out1"), pass.Truncate); err != nil {
				return err
			}
			return s.sys.Close(ctx, p, "/out/1")
		},
		func() error {
			track("/out/2")
			p := s.sys.Exec(nil, pass.ExecSpec{Name: "tool2", Env: strings.Repeat("H", 3*1024)})
			s.procs["p2"] = p
			if err := s.sys.Read(p, "/out/1"); err != nil {
				return err
			}
			if err := s.sys.Read(p, "/src/b"); err != nil {
				return err
			}
			if err := s.sys.Write(p, "/out/2", []byte("v0-out2"), pass.Truncate); err != nil {
				return err
			}
			return s.sys.Close(ctx, p, "/out/2")
		},
		func() error {
			p := s.sys.Exec(nil, pass.ExecSpec{Name: "tool3"})
			s.procs["p3"] = p
			if err := s.sys.Read(p, "/src/b"); err != nil {
				return err
			}
			if err := s.sys.Write(p, "/out/1", []byte("v1-out1"), pass.Truncate); err != nil {
				return err
			}
			return s.sys.Close(ctx, p, "/out/1")
		},
		func() error {
			track("/out/3")
			p4 := s.sys.Exec(nil, pass.ExecSpec{Name: "tool4"})
			p5 := s.sys.Exec(nil, pass.ExecSpec{Name: "tool5"})
			if err := s.sys.Read(p4, "/out/2"); err != nil {
				return err
			}
			if err := s.sys.Pipe(p4, p5); err != nil {
				return err
			}
			if err := s.sys.Write(p5, "/out/3", []byte("v0-out3"), pass.Truncate); err != nil {
				return err
			}
			return s.sys.Close(ctx, p5, "/out/3")
		},
		func() error { return s.sys.Sync(ctx) },
	}
}

// Run executes one sweep.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Faults == 0 {
		cfg.Faults = 6
	}
	if len(cfg.Classes) == 0 {
		cfg.Classes = AllClasses
	}
	if cfg.MaxDelay == 0 {
		cfg.MaxDelay = 2 * time.Second
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	res := &Result{Arch: cfg.Arch, Seed: cfg.Seed, Shards: cfg.Shards}

	faults := sim.NewFaultPlan()
	e, err := buildEnv(cfg, faults)
	if err != nil {
		return nil, err
	}
	sys := pass.NewSystem(pass.Config{Flush: core.Flusher(e.store)})
	sc := &script{sys: sys, procs: make(map[string]*pass.Process)}
	steps := sc.steps(ctx)

	// Draw the schedule from its own seeded RNG so region randomness and
	// fault placement cannot perturb each other.
	srng := sim.NewRNG(cfg.Seed*7919 + 17)
	plan := schedule(cfg, srng, len(steps))
	for _, f := range plan {
		res.Schedule = append(res.Schedule, f.String())
	}

	// Workload phase: arm each step's faults, run the step, pump background
	// machinery. Errors are recorded, not fatal — they are the point.
	record := func(stage string, err error) {
		if err != nil {
			res.FlushErrors = append(res.FlushErrors, fmt.Sprintf("%s: %v", stage, err))
		}
	}
	for i, step := range steps {
		for _, f := range plan {
			if f.step != i {
				continue
			}
			switch f.class {
			case sim.ClassCrash:
				faults.ArmAfter(f.target, f.skip)
			case sim.ClassCorrupt:
				faults.ArmCorruption(sim.Corruption{Kind: f.kind, Pick: f.pick})
			default:
				faults.ArmOp(f.target, f.class, f.skip, f.count)
			}
		}
		if err := step(); err != nil {
			record(fmt.Sprintf("step %d", i), err)
		}
		for si, se := range e.shards {
			if se.daemon == nil {
				continue
			}
			if _, err := se.daemon().RunOnce(ctx, true); err != nil {
				record(fmt.Sprintf("pump %d shard %d", i, si), err)
			}
		}
		if e.shards[0].daemon != nil {
			e.advance(daemonVisibility + time.Second)
		}
	}

	// Recovery phase 1: finish the workload. Every fault window is finite,
	// so repeated Sync attempts must converge.
	synced := false
	for attempt := 0; attempt < 12; attempt++ {
		if err := sys.Sync(ctx); err != nil {
			record("sync", err)
			e.settle()
			continue
		}
		synced = true
		break
	}
	if !synced {
		res.Violations = append(res.Violations, "workload never converged: Sync kept failing after fault windows closed")
	}
	if err := core.SyncStore(ctx, e.store); err != nil {
		record("store-sync", err)
		if err := core.SyncStore(ctx, e.store); err != nil {
			res.Violations = append(res.Violations, fmt.Sprintf("store sync never converged: %v", err))
		}
	}

	// Recovery phase 2: drain the WAL (fresh daemon per round = restart
	// semantics), advancing past the visibility timeout so messages locked
	// by a crashed round redeliver. The loop runs until several consecutive
	// rounds commit nothing across every shard — committed transactions
	// must all land here. Messages that remain afterwards can only belong
	// to uncommitted transactions (a crash mid-log): SQS retention reaps
	// those, and the cleaner then reaps their abandoned temporaries.
	if e.shards[0].daemon != nil {
		idle := 0
		for round := 0; round < 30 && idle < 3; round++ {
			committed := 0
			failed := false
			for si, se := range e.shards {
				n, err := se.daemon().RunOnce(ctx, true)
				if err != nil {
					record(fmt.Sprintf("recovery-pump shard %d", si), err)
					failed = true
				}
				committed += n
			}
			if failed || committed > 0 {
				idle = 0
			} else {
				idle++
			}
			e.advance(daemonVisibility + time.Second)
			e.settle()
		}
		if idle < 3 {
			res.Violations = append(res.Violations, "WAL queue never drained: transaction wedged on redelivery")
		}
		// Past the retention horizon: uncommitted-transaction messages are
		// reaped; the cleaner removes their temporary objects; one final
		// daemon round proves nothing committable was lost to retention.
		e.advance(4*24*time.Hour + time.Hour)
		for si, se := range e.shards {
			cleaner := s3sdbsqs.NewCleaner(se.sqs)
			for attempt := 0; attempt < 4; attempt++ {
				if _, err := cleaner.RunOnce(ctx); err != nil {
					record(fmt.Sprintf("cleaner shard %d", si), err)
					continue
				}
				break
			}
			if n, err := se.daemon().RunOnce(ctx, true); err != nil {
				record(fmt.Sprintf("post-retention-pump shard %d", si), err)
			} else if n > 0 {
				res.Violations = append(res.Violations, fmt.Sprintf("shard %d: %d transactions committed only after the retention horizon: drain loop is losing committed work", si, n))
			}
		}
	}

	// Recovery phase 3: the §4.2 orphan scan, per shard.
	for si, se := range e.shards {
		if se.s3sdb == nil {
			continue
		}
		for attempt := 0; attempt < 4; attempt++ {
			if _, err := se.s3sdb.OrphanScan(ctx); err != nil {
				record(fmt.Sprintf("orphan-scan shard %d", si), err)
				e.settle()
				continue
			}
			break
		}
	}
	e.settle()

	// Migration fault phase: a resharding split under an injected crash
	// (or a tampered copy) must converge to fully-moved or fully-unmoved
	// before the converged state is judged.
	if cfg.Migrate {
		e.runMigration(ctx, cfg, srng, faults, res)
	}

	for _, se := range e.shards {
		mergeSnapshot(&res.Retry, se.stats())
	}
	res.Violations = append(res.Violations, e.checkInvariants(ctx, cfg, sys, sc)...)

	// Verification phase: a healthy converged run must verify completely
	// clean — the zero-false-positive half of the tamper-evidence
	// contract. This runs on every sweep, whatever the fault mix: crashes,
	// retries, WAL replays and orphan-scan deletions must never leave the
	// chains or the committed roots inconsistent.
	pre, err := e.verify(ctx)
	if err != nil {
		res.Violations = append(res.Violations, fmt.Sprintf("verification failed to run: %v", err))
	} else {
		res.VerifyClean = pre.Clean()
		for _, d := range pre.Divergences() {
			res.Violations = append(res.Violations, "verifier flagged a healthy run (false positive): "+d.String())
		}
	}

	// Corruption phase: apply the armed post-commit corruptions through
	// raw cloud access, then verification must flag every corrupted shard
	// — the 100%-detection half.
	res.DetectedAll = true
	if cs := faults.Corruptions(); len(cs) > 0 && err == nil {
		// The adversary's raw access is not subject to the workload's
		// fault schedule; leftover unfired windows must not block it.
		faults.DisarmOps()
		applied := e.applyCorruptions(ctx, cs, &res.Violations)
		corrupted := make(map[int]bool)
		for _, a := range applied {
			res.Corruptions = append(res.Corruptions, a.desc)
			if a.shard >= 0 {
				corrupted[a.shard] = true
			}
		}
		if len(corrupted) > 0 {
			e.settle()
			post, verr := e.verify(ctx)
			if verr != nil {
				res.DetectedAll = false
				res.Violations = append(res.Violations, fmt.Sprintf("post-corruption verification failed to run: %v", verr))
			} else {
				res.PostDivergences = len(post.Divergences())
				for _, sr := range post.Shards {
					switch {
					case corrupted[sr.Shard] && sr.Clean():
						res.DetectedAll = false
						res.Violations = append(res.Violations, fmt.Sprintf("shard %d: injected corruption went undetected", sr.Shard))
					case !corrupted[sr.Shard] && !sr.Clean():
						res.Violations = append(res.Violations, fmt.Sprintf("shard %d: flagged but never corrupted (false positive): %s", sr.Shard, sr.Divergences[0]))
					}
				}
			}
		}
	}

	res.Digest = e.digest(ctx)
	return res, nil
}

// MigrationPoints lists the resharding controller's crash points the
// migration fault class draws from.
var MigrationPoints = []string{
	reshard.PointBeforeImport,
	reshard.PointAfterImport,
	reshard.PointBeforeFlip,
	reshard.PointAfterFlip,
}

// runMigration is the migration fault phase: split shard 0 toward shard
// 1 with either a seed-drawn controller crash point armed or the copy
// tampered mid-flight, then require convergence — the journal recovered
// to idle, the double-read window closed, and every moved subject homed
// on exactly one shard (fully-moved or fully-unmoved, never both).
func (e *env) runMigration(ctx context.Context, cfg Config, rng *sim.RNG, faults *sim.FaultPlan, res *Result) {
	router, ok := e.store.(*shard.Router)
	if !ok {
		res.Violations = append(res.Violations, "migration fault class requires Shards > 1")
		return
	}
	// The migration phase is its own experiment: leftover unfired
	// workload fault windows must not perturb it.
	faults.DisarmOps()
	clouds := make([]*cloud.Cloud, len(e.shards))
	for i, se := range e.shards {
		clouds[i] = se.cloud
	}
	drain := func(ctx context.Context) error {
		for _, se := range e.shards {
			if se.daemon == nil {
				continue
			}
			if _, err := se.daemon().RunOnce(ctx, true); err != nil {
				return err
			}
		}
		if e.shards[0].daemon != nil {
			e.advance(daemonVisibility + time.Second)
		}
		return nil
	}
	ccfg := reshard.Config{Router: router, Clouds: clouds, Faults: faults, Drain: drain, Settle: e.settle}

	var ctrl *reshard.Controller
	var plan *reshard.Plan
	point := ""
	if cfg.MigrateTamper {
		// The adversary deletes one moved record set from the destination
		// between import and verification. The victim is chosen from the
		// source side, so it is provably part of the copied arc and the
		// deletion can only be the copy's corruption.
		point = "tamper"
		ccfg.BeforeVerify = func(ctx context.Context) error {
			match := plan.Moved(ctrl)
			src, dst := e.shards[plan.Src], e.shards[plan.Dst]
			if src.layer != nil {
				for _, it := range e.sdbItems(src, &res.Violations) {
					if !match(it.ref.Object) {
						continue
					}
					return dst.cloud.SDB.DeleteAttributes(dst.layer.Domain(), it.name, nil)
				}
			} else {
				for _, o := range e.s3Objects(src, &res.Violations) {
					if !match(prov.ObjectID(strings.TrimPrefix(o.key, dataPrefixS3))) {
						continue
					}
					return dst.cloud.S3.Delete(s3Bucket, o.key)
				}
			}
			return fmt.Errorf("sweep: no moved record set to tamper with")
		}
	} else {
		point = MigrationPoints[rng.Intn(len(MigrationPoints))]
		faults.Arm(point)
	}

	ctrl, err := reshard.New(ccfg)
	if err != nil {
		res.Violations = append(res.Violations, fmt.Sprintf("migration controller: %v", err))
		return
	}
	// Choose a pair that provably moves a non-empty arc — drain the
	// most-populated shard onto the least-populated one. (A split of the
	// sweep's sparse workload can land every moved ring point on an
	// empty arc, which flips without traversing the crash points.)
	counts := make([]int, len(e.shards))
	for si, se := range e.shards {
		a, ok := se.store.(integrity.Auditor)
		if !ok {
			continue
		}
		audit, aerr := a.Audit(ctx)
		if aerr != nil {
			res.Violations = append(res.Violations, fmt.Sprintf("pre-migration audit shard %d: %v", si, aerr))
			return
		}
		for ref := range audit.Entries {
			if router.ShardFor(ref.Object) == si {
				counts[si]++
			}
		}
	}
	msrc, mdst := 0, -1
	for i, n := range counts {
		if n > counts[msrc] {
			msrc = i
		}
	}
	for i, n := range counts {
		if i != msrc && (mdst < 0 || n < counts[mdst]) {
			mdst = i
		}
	}
	if counts[msrc] == 0 {
		res.Violations = append(res.Violations, "workload left no migratable subjects")
		return
	}
	plan, err = ctrl.PlanMerge(msrc, mdst)
	if err != nil {
		res.Violations = append(res.Violations, fmt.Sprintf("migration plan: %v", err))
		return
	}
	_, execErr := ctrl.Execute(ctx, plan)
	if cfg.MigrateTamper {
		if !errors.Is(execErr, reshard.ErrVerifyFailed) {
			res.Violations = append(res.Violations, fmt.Sprintf("tampered copy was not detected before the flip: %v", execErr))
		}
		if epoch := router.RingEpoch(); epoch != 0 {
			res.Violations = append(res.Violations, fmt.Sprintf("ring flipped to epoch %d over a tampered copy", epoch))
		}
	} else if execErr == nil {
		res.Violations = append(res.Violations, fmt.Sprintf("armed migration crash point %s never fired", point))
	}
	recovered, rerr := ctrl.Recover(ctx)
	if rerr != nil {
		res.Violations = append(res.Violations, fmt.Sprintf("migration recovery: %v", rerr))
	}
	if st := ctrl.Status(); st.Phase != reshard.PhaseIdle || router.Migrating() {
		res.Violations = append(res.Violations, fmt.Sprintf("migration did not converge: phase=%s migrating=%v", st.Phase, router.Migrating()))
	}
	// Never both: every subject homes on exactly one shard.
	homes := make(map[prov.Ref]int)
	for si, se := range e.shards {
		a, ok := se.store.(integrity.Auditor)
		if !ok {
			continue
		}
		audit, aerr := a.Audit(ctx)
		if aerr != nil {
			res.Violations = append(res.Violations, fmt.Sprintf("post-migration audit shard %d: %v", si, aerr))
			continue
		}
		for ref := range audit.Entries {
			if prev, dup := homes[ref]; dup {
				res.Violations = append(res.Violations, fmt.Sprintf("%s homed on shards %d and %d after migration recovery (partial move)", ref, prev, si))
			}
			homes[ref] = si
		}
	}
	res.Migration = fmt.Sprintf("point=%s recovered=%s epoch=%d", point, recovered, router.RingEpoch())
}

// verify audits every shard and runs the integrity verifier over the
// namespace.
func (e *env) verify(ctx context.Context) (*integrity.Result, error) {
	auditors := make([]integrity.Auditor, len(e.shards))
	for i, se := range e.shards {
		a, ok := se.store.(integrity.Auditor)
		if !ok {
			return nil, fmt.Errorf("sweep: shard %d store is not auditable", i)
		}
		auditors[i] = a
	}
	return integrity.VerifyStores(ctx, auditors)
}

// mergeSnapshot folds one shard's retry counters into the sum.
func mergeSnapshot(sum *retry.Snapshot, s retry.Snapshot) {
	if sum.Ops == nil {
		sum.Ops = make(map[string]retry.OpStats)
	}
	for name, o := range s.Ops {
		have := sum.Ops[name]
		have.Attempts += o.Attempts
		have.Retries += o.Retries
		have.Recovered += o.Recovered
		have.Exhausted += o.Exhausted
		have.Wait += o.Wait
		sum.Ops[name] = have
	}
	sum.Total.Attempts += s.Total.Attempts
	sum.Total.Retries += s.Total.Retries
	sum.Total.Recovered += s.Total.Recovered
	sum.Total.Exhausted += s.Total.Exhausted
	sum.Total.Wait += s.Total.Wait
}

// checkInvariants verifies the converged state.
func (e *env) checkInvariants(ctx context.Context, cfg Config, sys *pass.System, sc *script) []string {
	var v []string

	// (1) every workload file is readable at its final version with
	// matching content, and never readable without provenance.
	for _, path := range sc.paths {
		ref, ok := sys.CurrentVersion(path)
		if !ok {
			continue
		}
		want, _ := sys.FileContent(path)
		obj, err := e.store.Get(ctx, ref.Object)
		switch {
		case errors.Is(err, core.ErrNoProvenance):
			v = append(v, fmt.Sprintf("%s: data readable without provenance: %v", path, err))
		case err != nil:
			v = append(v, fmt.Sprintf("%s: unreadable after recovery: %v", path, err))
		case obj.Ref.Version != ref.Version:
			v = append(v, fmt.Sprintf("%s: version regressed: have v%d, want v%d", path, obj.Ref.Version, ref.Version))
		case string(obj.Data) != string(want):
			v = append(v, fmt.Sprintf("%s: content mismatch: have %q, want %q", path, obj.Data, want))
		}
	}

	for si, se := range e.shards {
		if se.layer == nil {
			continue
		}
		// (2) no data object without a provenance item for its version.
		infos, err := se.cloud.S3.ListAll(se.layer.Bucket(), sdbprov.DataPrefix)
		if err != nil {
			v = append(v, fmt.Sprintf("shard %d: data listing failed: %v", si, err))
		}
		for _, info := range infos {
			object := prov.ObjectID(strings.TrimPrefix(info.Key, sdbprov.DataPrefix))
			full, err := se.cloud.S3.Head(se.layer.Bucket(), info.Key)
			if err != nil {
				v = append(v, fmt.Sprintf("shard %d: %s: head failed: %v", si, info.Key, err))
				continue
			}
			verStr := full.Metadata[sdbprov.MetaVersion]
			var ver int
			fmt.Sscanf(verStr, "%d", &ver)
			ref := prov.Ref{Object: object, Version: prov.Version(ver)}
			_, _, ok, err := se.layer.FetchItem(ctx, ref)
			if err != nil {
				v = append(v, fmt.Sprintf("shard %d: %s: provenance fetch failed: %v", si, ref, err))
			} else if !ok {
				v = append(v, fmt.Sprintf("shard %d: %s: data without provenance item", si, ref))
			}
		}

		// (3) no orphaned provenance: every item carrying a consistency
		// record must describe data that exists at or beyond its version.
		if orphans := e.orphanItems(ctx, se, si, &v); len(orphans) > 0 {
			v = append(v, fmt.Sprintf("shard %d: orphaned provenance after recovery: %v", si, orphans))
		}
	}

	// (4)+(5) duplicates and cache freshness, from a fresh uncached mirror.
	mirror, err := e.mirror()
	if err != nil {
		v = append(v, fmt.Sprintf("mirror build failed: %v", err))
		return v
	}
	uncached, err := core.AllProvenance(ctx, mirror)
	if err != nil {
		v = append(v, fmt.Sprintf("uncached scan failed: %v", err))
		return v
	}
	for ref, records := range uncached {
		seen := make(map[string]int)
		for _, r := range records {
			seen[r.Attr+"\x00"+r.Value.String()]++
		}
		for key, n := range seen {
			if n > 1 {
				attr := key[:strings.Index(key, "\x00")]
				v = append(v, fmt.Sprintf("%s: record %q applied %d times (retry double-apply)", ref, attr, n))
			}
		}
	}
	if q, ok := e.store.(core.Querier); ok {
		cached, err := core.AllProvenance(ctx, q)
		if err != nil {
			v = append(v, fmt.Sprintf("cached scan failed: %v", err))
		} else if diff := diffProvenance(cached, uncached); diff != "" {
			v = append(v, "query cache stale after failed/retried writes: "+diff)
		} else {
			// Repeat on the warm path: the memoized answer must agree too.
			again, err := core.AllProvenance(ctx, q)
			if err != nil {
				v = append(v, fmt.Sprintf("warm cached scan failed: %v", err))
			} else if diff := diffProvenance(again, uncached); diff != "" {
				v = append(v, "warm query cache stale: "+diff)
			}
		}
	}

	// (6) nothing left behind on architecture 3.
	for si, se := range e.shards {
		if se.sqs == nil {
			continue
		}
		if n, err := se.cloud.SQS.Exact(se.sqs.Queue()); err == nil && n > 0 {
			v = append(v, fmt.Sprintf("shard %d: %d WAL messages wedged after recovery and retention", si, n))
		}
		if tmps, err := se.cloud.S3.ListAll(se.layer.Bucket(), s3sdbsqs.TmpPrefix); err == nil && len(tmps) > 0 {
			v = append(v, fmt.Sprintf("shard %d: %d temporary objects leaked past the cleaner", si, len(tmps)))
		}
	}
	return v
}

// orphanItems lists refs whose items carry an MD5 record but whose data is
// missing or older than the item claims.
func (e *env) orphanItems(ctx context.Context, se *shardEnv, si int, v *[]string) []prov.Ref {
	var orphans []prov.Ref
	token := ""
	for {
		res, err := se.cloud.SDB.Select("select itemName() from "+se.layer.Domain(), token)
		if err != nil {
			*v = append(*v, fmt.Sprintf("shard %d: orphan scan select failed: %v", si, err))
			return orphans
		}
		for _, item := range res.Items {
			ref, err := prov.ParseItemName(item.Name)
			if err != nil {
				continue
			}
			_, md5hex, ok, err := se.layer.FetchItem(ctx, ref)
			if err != nil || !ok || md5hex == "" {
				continue
			}
			info, err := se.cloud.S3.Head(se.layer.Bucket(), sdbprov.DataKey(ref.Object))
			if err != nil {
				if errors.Is(err, s3.ErrNoSuchKey) {
					orphans = append(orphans, ref)
				}
				continue
			}
			var ver int
			fmt.Sscanf(info.Metadata[sdbprov.MetaVersion], "%d", &ver)
			if prov.Version(ver) < ref.Version {
				orphans = append(orphans, ref)
			}
		}
		if res.NextToken == "" {
			return orphans
		}
		token = res.NextToken
	}
}

// diffProvenance compares two repository maps; empty string means equal.
func diffProvenance(a, b map[prov.Ref][]prov.Record) string {
	if len(a) != len(b) {
		return fmt.Sprintf("%d vs %d subjects", len(a), len(b))
	}
	for ref, ra := range a {
		rb, ok := b[ref]
		if !ok {
			return fmt.Sprintf("subject %s only on one side", ref)
		}
		if canonRecords(ra) != canonRecords(rb) {
			return fmt.Sprintf("records differ for %s", ref)
		}
	}
	return ""
}

// canonRecords renders records order-independently.
func canonRecords(records []prov.Record) string {
	lines := make([]string, 0, len(records))
	for _, r := range records {
		lines = append(lines, r.Attr+"="+r.Value.String())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// digest fingerprints the final repository: every provenance item and
// every data object on every shard, canonically ordered. Identical seeds
// must reproduce it exactly.
func (e *env) digest(ctx context.Context) string {
	h := sha256.New()
	var entries []string

	for si, se := range e.shards {
		if se.layer != nil {
			token := ""
			for {
				res, err := se.cloud.SDB.Select("select itemName() from "+se.layer.Domain(), token)
				if err != nil {
					fmt.Fprintf(h, "shard%d select-err %v\n", si, err)
					break
				}
				for _, item := range res.Items {
					ref, err := prov.ParseItemName(item.Name)
					if err != nil {
						continue
					}
					records, md5hex, ok, err := se.layer.FetchItem(ctx, ref)
					if err != nil || !ok {
						continue
					}
					entries = append(entries, fmt.Sprintf("shard%d item %s md5=%s\n%s", si, item.Name, md5hex, canonRecords(records)))
				}
				if res.NextToken == "" {
					break
				}
				token = res.NextToken
			}
		} else if q, ok := se.store.(core.Querier); ok {
			all, err := core.AllProvenance(ctx, q)
			if err == nil {
				for ref, records := range all {
					entries = append(entries, fmt.Sprintf("shard%d item %s\n%s", si, ref, canonRecords(records)))
				}
			}
		}

		bucket := "pass"
		if se.layer != nil {
			bucket = se.layer.Bucket()
		}
		if infos, err := se.cloud.S3.ListAll(bucket, "data"); err == nil {
			for _, info := range infos {
				obj, err := se.cloud.S3.Get(bucket, info.Key)
				if err != nil {
					continue
				}
				sum := sha256.Sum256(obj.Body)
				entries = append(entries, fmt.Sprintf("shard%d data %s ver=%s sha=%s", si, info.Key, obj.Metadata["x-ver"], hex.EncodeToString(sum[:8])))
			}
		}
	}

	sort.Strings(entries)
	for _, line := range entries {
		fmt.Fprintln(h, line)
	}
	return hex.EncodeToString(h.Sum(nil))
}
