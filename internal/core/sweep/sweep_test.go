package sweep

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"passcloud/internal/sim"
)

// seeds returns the seed matrix: the fixed CI set, overridable via
// SWEEP_SEEDS ("3,17,42") so a failure logged from any environment is
// replayable verbatim.
func seeds(t *testing.T) []int64 {
	if env := os.Getenv("SWEEP_SEEDS"); env != "" {
		var out []int64
		for _, part := range strings.Split(env, ",") {
			n, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
			if err != nil {
				t.Fatalf("SWEEP_SEEDS: %v", err)
			}
			out = append(out, n)
		}
		return out
	}
	return []int64{1, 2, 7, 2009}
}

// TestFaultSweepRecovery is the randomized crash-recovery property check:
// for every architecture, seed and fault-class mix, the workload must
// converge with zero invariant violations. On failure the log line carries
// the seed and the full fault schedule — rerun with SWEEP_SEEDS=<seed>.
func TestFaultSweepRecovery(t *testing.T) {
	ctx := context.Background()
	mixes := []struct {
		name    string
		classes []sim.FaultClass
	}{
		{"transient", []sim.FaultClass{sim.ClassTransient}},
		{"permanent", []sim.FaultClass{sim.ClassPermanent}},
		{"ackloss", []sim.FaultClass{sim.ClassAckLoss}},
		{"crash", []sim.FaultClass{sim.ClassCrash}},
		{"corrupt", []sim.FaultClass{sim.ClassCorrupt}},
		{"all", AllClasses},
		{"all+corrupt", ClassesWithCorruption},
	}
	for _, arch := range Arches {
		for _, mix := range mixes {
			for _, seed := range seeds(t) {
				t.Run(fmt.Sprintf("%s/%s/seed%d", arch, mix.name, seed), func(t *testing.T) {
					res, err := Run(ctx, Config{Arch: arch, Seed: seed, Classes: mix.classes})
					if err != nil {
						t.Fatalf("sweep run failed: %v", err)
					}
					if len(res.Violations) > 0 {
						t.Errorf("seed %d: %d invariant violations:\n  %s\nschedule:\n  %s\nflush errors:\n  %s",
							seed, len(res.Violations),
							strings.Join(res.Violations, "\n  "),
							strings.Join(res.Schedule, "\n  "),
							strings.Join(res.FlushErrors, "\n  "))
					}
				})
			}
		}
	}
}

// TestFaultSweepCorruptionDetection is the tamper-evidence property check:
// with post-commit corruption armed, the converged run must first verify
// completely clean (zero false positives), then — after the harness
// tampers through raw cloud access — verification must flag every
// corrupted shard, for every architecture at 1 and 4 shards.
func TestFaultSweepCorruptionDetection(t *testing.T) {
	ctx := context.Background()
	for _, arch := range Arches {
		for _, shards := range []int{1, 4} {
			for _, seed := range []int64{1, 7} {
				t.Run(fmt.Sprintf("%s/shards%d/seed%d", arch, shards, seed), func(t *testing.T) {
					cfg := Config{Arch: arch, Seed: seed, Shards: shards,
						Classes: []sim.FaultClass{sim.ClassCorrupt}, Faults: 3}
					if shards > 1 {
						// Corruption during the migration's copy: the moved
						// record set deleted from the destination must be
						// detected before the ring flips.
						cfg.Migrate, cfg.MigrateTamper = true, true
					}
					res, err := Run(ctx, cfg)
					if err != nil {
						t.Fatalf("sweep run failed: %v", err)
					}
					if shards > 1 && !strings.Contains(res.Migration, "epoch=0") {
						t.Errorf("tampered migration did not end fully-unmoved: %s", res.Migration)
					}
					if len(res.Violations) > 0 {
						t.Errorf("seed %d: %d violations:\n  %s\ncorruptions:\n  %s",
							seed, len(res.Violations),
							strings.Join(res.Violations, "\n  "),
							strings.Join(res.Corruptions, "\n  "))
					}
					if !res.VerifyClean {
						t.Error("healthy converged run did not verify clean (false positive)")
					}
					applied := 0
					for _, c := range res.Corruptions {
						if !strings.Contains(c, "skipped") {
							applied++
						}
					}
					if applied == 0 {
						t.Fatalf("no corruption was applied; detection was never exercised: %v", res.Corruptions)
					}
					if !res.DetectedAll {
						t.Errorf("injected corruption went undetected:\n  %s", strings.Join(res.Corruptions, "\n  "))
					}
					if res.PostDivergences == 0 {
						t.Error("post-corruption verification reported zero divergences")
					}
				})
			}
		}
	}
}

// TestFaultSweepMigrationRecovery is the migration fault class: after
// the workload converges, a resharding split runs with a seed-drawn
// controller crash point armed (before-import, after-import, before-flip
// or after-flip). Recovery must converge the store to fully-moved or
// fully-unmoved — never both — and every recovery invariant and the
// clean-verification contract must hold over the result.
func TestFaultSweepMigrationRecovery(t *testing.T) {
	ctx := context.Background()
	for _, arch := range Arches {
		for _, seed := range seeds(t) {
			t.Run(fmt.Sprintf("%s/seed%d", arch, seed), func(t *testing.T) {
				res, err := Run(ctx, Config{Arch: arch, Seed: seed, Shards: 4, Migrate: true})
				if err != nil {
					t.Fatalf("sweep run failed: %v", err)
				}
				if res.Migration == "" {
					t.Fatal("migration fault phase never ran")
				}
				if len(res.Violations) > 0 {
					t.Errorf("seed %d (%s): %d violations:\n  %s\nschedule:\n  %s",
						seed, res.Migration, len(res.Violations),
						strings.Join(res.Violations, "\n  "),
						strings.Join(res.Schedule, "\n  "))
				}
				if !res.VerifyClean {
					t.Errorf("post-migration state did not verify clean (%s)", res.Migration)
				}
				t.Logf("migration: %s", res.Migration)
			})
		}
	}
}

// TestFaultSweepShardedRecovery runs the full mix — recovery faults plus
// corruption — through the consistent-hash router: every invariant and
// the detection contract must hold shard by shard.
func TestFaultSweepShardedRecovery(t *testing.T) {
	ctx := context.Background()
	for _, arch := range Arches {
		for _, seed := range []int64{1, 7} {
			t.Run(fmt.Sprintf("%s/seed%d", arch, seed), func(t *testing.T) {
				res, err := Run(ctx, Config{Arch: arch, Seed: seed, Shards: 4, Classes: ClassesWithCorruption})
				if err != nil {
					t.Fatalf("sweep run failed: %v", err)
				}
				if len(res.Violations) > 0 {
					t.Errorf("seed %d: %d violations:\n  %s\nschedule:\n  %s",
						seed, len(res.Violations),
						strings.Join(res.Violations, "\n  "),
						strings.Join(res.Schedule, "\n  "))
				}
			})
		}
	}
}

// TestFaultSweepDeterministicReplay proves the replay contract CI failures
// depend on: the same seed yields the identical fault schedule, identical
// workload-visible errors, and a bit-identical final state digest.
func TestFaultSweepDeterministicReplay(t *testing.T) {
	ctx := context.Background()
	for _, arch := range Arches {
		t.Run(arch, func(t *testing.T) {
			const seed = 31337
			a, err := Run(ctx, Config{Arch: arch, Seed: seed})
			if err != nil {
				t.Fatalf("first run: %v", err)
			}
			b, err := Run(ctx, Config{Arch: arch, Seed: seed})
			if err != nil {
				t.Fatalf("second run: %v", err)
			}
			if got, want := strings.Join(a.Schedule, ";"), strings.Join(b.Schedule, ";"); got != want {
				t.Errorf("fault schedules diverged:\n%s\nvs\n%s", got, want)
			}
			if got, want := strings.Join(a.FlushErrors, ";"), strings.Join(b.FlushErrors, ";"); got != want {
				t.Errorf("flush errors diverged:\n%s\nvs\n%s", got, want)
			}
			if a.Digest != b.Digest {
				t.Errorf("final state digests diverged: %s vs %s", a.Digest, b.Digest)
			}
			// And a different seed must actually change the schedule —
			// otherwise the sweep is not exploring anything.
			c, err := Run(ctx, Config{Arch: arch, Seed: seed + 1})
			if err != nil {
				t.Fatalf("third run: %v", err)
			}
			if strings.Join(a.Schedule, ";") == strings.Join(c.Schedule, ";") {
				t.Errorf("seed %d and %d drew the same fault schedule", seed, seed+1)
			}
		})
	}
}

// TestFaultSweepRetryOverheadMetered asserts the sweep's retries are
// visible to the metering the cost harness reports: a transient-only run
// that recovered must show recovered attempts.
func TestFaultSweepRetryOverheadMetered(t *testing.T) {
	ctx := context.Background()
	res, err := Run(ctx, Config{Arch: "s3+sdb", Seed: 5, Faults: 8,
		Classes: []sim.FaultClass{sim.ClassTransient}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.Retry.Total.Retries == 0 {
		t.Error("transient fault sweep finished with zero metered retries; retry wiring is not covering the write path")
	}
}
