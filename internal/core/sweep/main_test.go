package sweep

import (
	"testing"

	"passcloud/internal/leakcheck"
)

// TestMain fails the binary if the randomized crash-recovery sweeps —
// which drive every store's background machinery through injected
// faults — leave goroutines behind after the tests pass.
func TestMain(m *testing.M) { leakcheck.Main(m) }
