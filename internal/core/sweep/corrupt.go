package sweep

// Post-commit corruption: the applier behind sim.ClassCorrupt. Once
// recovery has converged and the run has verified clean, each armed
// sim.Corruption mutates committed state through raw cloud access — below
// the store APIs, the way a misbehaving service or an attacker with bucket
// credentials would — and the verifier must then flag the corrupted shard.
//
// Victim choice is deterministic: candidates are enumerated in canonical
// order and picked by an RNG seeded from Corruption.Pick, so a logged
// schedule replays to the identical mutation.
//
// The kinds target state whose tampering the integrity layer promises to
// catch, and deliberately avoid mutations that are semantically invisible
// (corrupting a duplicated rider copy of a record, or the version stamp of
// a bare parent-node marker, changes nothing the verifier — or any reader
// — can distinguish from healthy state):
//
//   - flip-byte mutates a stored chain token (SimpleDB: the x-chain
//     attribute; S3-only: a p-* own-record entry carrying x-chain);
//   - swap-version exchanges the chain tokens of two adjacent versions
//     (SimpleDB), or forges the version stamp of a data object (S3-only,
//     which keeps one version per key — caught by the root commitment);
//   - drop-record deletes one committed provenance record (SimpleDB: any
//     non-bookkeeping attribute pair; S3-only: a p-* entry).

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"passcloud/internal/cloud/sdb"
	"passcloud/internal/core/integrity"
	"passcloud/internal/core/sdbprov"
	"passcloud/internal/prov"
	"passcloud/internal/sim"
)

// s3FieldSep mirrors the attr/value separator of the S3-only metadata
// encoding (s3only.fieldSep).
const s3FieldSep = "\x1f"

// s3Bucket is the S3-only architecture's default bucket.
const s3Bucket = "pass"

// appliedCorruption records one applied (or skipped) corruption. shard is
// -1 when no victim existed for the drawn kind.
type appliedCorruption struct {
	shard int
	desc  string
}

// applyCorruptions applies every armed corruption in schedule order,
// settling after each so the mutation is visible to the verification that
// follows. Failures to apply are violations — the harness must be able to
// tamper, or the detection assertion would pass vacuously.
func (e *env) applyCorruptions(ctx context.Context, cs []sim.Corruption, violations *[]string) []appliedCorruption {
	var out []appliedCorruption
	for _, c := range cs {
		rng := sim.NewRNG(c.Pick)
		var a appliedCorruption
		switch c.Kind {
		case sim.CorruptFlipByte:
			a = e.corruptFlipByte(ctx, rng, violations)
		case sim.CorruptSwapVersion:
			a = e.corruptSwapVersion(ctx, rng, violations)
		case sim.CorruptDropRecord:
			a = e.corruptDropRecord(ctx, rng, violations)
		default:
			a = appliedCorruption{shard: -1, desc: fmt.Sprintf("%s: unknown kind", c.Kind)}
		}
		out = append(out, a)
		e.settle()
	}
	return out
}

// pickFresh filters out already-tampered victims, picks one
// deterministically, and records the choice so no later corruption of the
// same kind re-hits it (re-swapping a swapped pair would silently restore
// the original state and leave detection nothing to detect). It returns an
// index into ids, or -1 when every victim was already hit.
func (e *env) pickFresh(rng *sim.RNG, ids []string) int {
	var fresh []int
	for i, id := range ids {
		if !e.tampered[id] {
			fresh = append(fresh, i)
		}
	}
	if len(fresh) == 0 {
		return -1
	}
	i := fresh[rng.Intn(len(fresh))]
	if e.tampered == nil {
		e.tampered = make(map[string]bool)
	}
	e.tampered[ids[i]] = true
	return i
}

// mutateTail changes the last byte of a stored value — the minimal
// tampering the chain must catch.
func mutateTail(s string) string {
	if s == "" {
		return "Z"
	}
	last := byte('Z')
	if s[len(s)-1] == 'Z' {
		last = 'Y'
	}
	return s[:len(s)-1] + string(last)
}

// rawWrite runs one raw mutation with a few attempts: leftover armed fault
// windows from the workload schedule may still fire on the underlying op.
func (e *env) rawWrite(desc string, violations *[]string, f func() error) bool {
	var err error
	for attempt := 0; attempt < 4; attempt++ {
		if err = f(); err == nil {
			return true
		}
		e.settle()
	}
	*violations = append(*violations, fmt.Sprintf("corruption apply failed: %s: %v", desc, err))
	return false
}

// sdbItem is one provenance item as enumerated for victim choice.
type sdbItem struct {
	ref   prov.Ref
	name  string
	attrs []sdb.Attr
}

// sdbItems enumerates one shard's provenance items (bookkeeping items,
// like the ledger, are excluded) in canonical name order.
func (e *env) sdbItems(se *shardEnv, violations *[]string) []sdbItem {
	var items []sdbItem
	token := ""
	for {
		res, err := se.cloud.SDB.Select("select itemName() from "+se.layer.Domain(), token)
		if err != nil {
			*violations = append(*violations, fmt.Sprintf("corruption enumerate select failed: %v", err))
			return nil
		}
		for _, it := range res.Items {
			ref, err := prov.ParseItemName(it.Name)
			if err != nil {
				continue
			}
			attrs, ok, err := se.cloud.SDB.GetAttributes(se.layer.Domain(), it.Name)
			if err != nil || !ok {
				continue
			}
			items = append(items, sdbItem{ref: ref, name: it.Name, attrs: attrs})
		}
		if res.NextToken == "" {
			break
		}
		token = res.NextToken
	}
	sort.Slice(items, func(i, j int) bool { return items[i].name < items[j].name })
	return items
}

// s3Object is one data object as enumerated for victim choice.
type s3Object struct {
	key  string
	body []byte
	meta map[string]string
	// pKeys are the object's own-record metadata keys, sorted. Own records
	// live only on their own data object (never duplicated onto another
	// carrier), so mutating one is always a semantic change.
	pKeys []string
}

// s3Objects enumerates one shard's data objects in canonical key order.
func (e *env) s3Objects(se *shardEnv, violations *[]string) []s3Object {
	infos, err := se.cloud.S3.ListAll(s3Bucket, dataPrefixS3)
	if err != nil {
		*violations = append(*violations, fmt.Sprintf("corruption enumerate list failed: %v", err))
		return nil
	}
	var objs []s3Object
	for _, info := range infos {
		obj, err := se.cloud.S3.Get(s3Bucket, info.Key)
		if err != nil {
			continue // deleted between LIST and GET
		}
		o := s3Object{key: info.Key, body: obj.Body, meta: obj.Metadata}
		for k := range o.meta {
			if strings.HasPrefix(k, "p-") {
				o.pKeys = append(o.pKeys, k)
			}
		}
		sort.Strings(o.pKeys)
		objs = append(objs, o)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].key < objs[j].key })
	return objs
}

// dataPrefixS3 mirrors the S3-only data key prefix.
const dataPrefixS3 = "data"

// corruptFlipByte mutates one stored chain token.
func (e *env) corruptFlipByte(ctx context.Context, rng *sim.RNG, violations *[]string) appliedCorruption {
	if e.shards[0].layer != nil {
		type victim struct {
			shard int
			item  string
			value string
		}
		var victims []victim
		for si, se := range e.shards {
			for _, it := range e.sdbItems(se, violations) {
				for _, a := range it.attrs {
					if a.Name == integrity.AttrChain {
						victims = append(victims, victim{shard: si, item: it.name, value: a.Value})
						break
					}
				}
			}
		}
		ids := make([]string, len(victims))
		for i, v := range victims {
			ids[i] = fmt.Sprintf("flip|%d|%s", v.shard, v.item)
		}
		i := e.pickFresh(rng, ids)
		if i < 0 {
			return appliedCorruption{shard: -1, desc: "flip-byte: skipped (no victim)"}
		}
		v := victims[i]
		se := e.shards[v.shard]
		desc := fmt.Sprintf("flip-byte shard %d item %s attr %s", v.shard, v.item, integrity.AttrChain)
		e.rawWrite(desc, violations, func() error {
			return se.cloud.SDB.PutAttributes(se.layer.Domain(), v.item, []sdb.ReplaceableAttr{
				{Name: integrity.AttrChain, Value: mutateTail(v.value), Replace: true},
			})
		})
		return appliedCorruption{shard: v.shard, desc: desc}
	}

	type victim struct {
		shard   int
		key     string
		metaKey string
	}
	var victims []victim
	for si, se := range e.shards {
		for _, o := range e.s3Objects(se, violations) {
			for _, k := range o.pKeys {
				if strings.HasPrefix(o.meta[k], integrity.AttrChain+s3FieldSep) {
					victims = append(victims, victim{shard: si, key: o.key, metaKey: k})
				}
			}
		}
	}
	ids := make([]string, len(victims))
	for i, v := range victims {
		ids[i] = fmt.Sprintf("flip|%d|%s|%s", v.shard, v.key, v.metaKey)
	}
	i := e.pickFresh(rng, ids)
	if i < 0 {
		return appliedCorruption{shard: -1, desc: "flip-byte: skipped (no victim)"}
	}
	v := victims[i]
	se := e.shards[v.shard]
	desc := fmt.Sprintf("flip-byte shard %d object %s entry %s", v.shard, v.key, v.metaKey)
	e.rawWrite(desc, violations, func() error {
		obj, err := se.cloud.S3.Get(s3Bucket, v.key)
		if err != nil {
			return err
		}
		obj.Metadata[v.metaKey] = mutateTail(obj.Metadata[v.metaKey])
		return se.cloud.S3.Put(s3Bucket, v.key, obj.Body, obj.Metadata)
	})
	return appliedCorruption{shard: v.shard, desc: desc}
}

// corruptSwapVersion exchanges lineage between adjacent versions
// (SimpleDB) or forges a stored version stamp (S3-only).
func (e *env) corruptSwapVersion(ctx context.Context, rng *sim.RNG, violations *[]string) appliedCorruption {
	if e.shards[0].layer != nil {
		type victim struct {
			shard          int
			hiItem, loItem string
			hiVal, loVal   string
		}
		var victims []victim
		for si, se := range e.shards {
			items := e.sdbItems(se, violations)
			chain := make(map[prov.Ref]sdbItem)
			for _, it := range items {
				for _, a := range it.attrs {
					if a.Name == integrity.AttrChain {
						chain[it.ref] = it
						break
					}
				}
			}
			for _, it := range items {
				hi, hiOK := chain[it.ref]
				lo, loOK := chain[prov.Ref{Object: it.ref.Object, Version: it.ref.Version - 1}]
				if it.ref.Version == 0 || !hiOK || !loOK {
					continue
				}
				var hiVal, loVal string
				for _, a := range hi.attrs {
					if a.Name == integrity.AttrChain {
						hiVal = a.Value
						break
					}
				}
				for _, a := range lo.attrs {
					if a.Name == integrity.AttrChain {
						loVal = a.Value
						break
					}
				}
				victims = append(victims, victim{shard: si, hiItem: hi.name, loItem: lo.name, hiVal: hiVal, loVal: loVal})
			}
		}
		ids := make([]string, len(victims))
		for i, v := range victims {
			ids[i] = fmt.Sprintf("swap|%d|%s", v.shard, v.hiItem)
		}
		i := e.pickFresh(rng, ids)
		if i < 0 {
			return appliedCorruption{shard: -1, desc: "swap-version: skipped (no victim)"}
		}
		v := victims[i]
		se := e.shards[v.shard]
		desc := fmt.Sprintf("swap-version shard %d items %s <-> %s", v.shard, v.hiItem, v.loItem)
		ok := e.rawWrite(desc, violations, func() error {
			return se.cloud.SDB.PutAttributes(se.layer.Domain(), v.hiItem, []sdb.ReplaceableAttr{
				{Name: integrity.AttrChain, Value: v.loVal, Replace: true},
			})
		})
		if ok {
			e.rawWrite(desc, violations, func() error {
				return se.cloud.SDB.PutAttributes(se.layer.Domain(), v.loItem, []sdb.ReplaceableAttr{
					{Name: integrity.AttrChain, Value: v.hiVal, Replace: true},
				})
			})
		}
		return appliedCorruption{shard: v.shard, desc: desc}
	}

	type victim struct {
		shard int
		key   string
	}
	var victims []victim
	for si, se := range e.shards {
		for _, o := range e.s3Objects(se, violations) {
			// Only objects carrying own records: forging the version of a
			// bare parent-node marker changes nothing verifiable.
			if len(o.pKeys) > 0 {
				victims = append(victims, victim{shard: si, key: o.key})
			}
		}
	}
	ids := make([]string, len(victims))
	for i, v := range victims {
		ids[i] = fmt.Sprintf("swap|%d|%s", v.shard, v.key)
	}
	i := e.pickFresh(rng, ids)
	if i < 0 {
		return appliedCorruption{shard: -1, desc: "swap-version: skipped (no victim)"}
	}
	v := victims[i]
	se := e.shards[v.shard]
	desc := fmt.Sprintf("swap-version shard %d object %s (forged version stamp)", v.shard, v.key)
	e.rawWrite(desc, violations, func() error {
		obj, err := se.cloud.S3.Get(s3Bucket, v.key)
		if err != nil {
			return err
		}
		ver, _ := strconv.Atoi(obj.Metadata["x-ver"])
		obj.Metadata["x-ver"] = strconv.Itoa(ver + 1)
		return se.cloud.S3.Put(s3Bucket, v.key, obj.Body, obj.Metadata)
	})
	return appliedCorruption{shard: v.shard, desc: desc}
}

// corruptDropRecord silently deletes one committed provenance record.
func (e *env) corruptDropRecord(ctx context.Context, rng *sim.RNG, violations *[]string) appliedCorruption {
	if e.shards[0].layer != nil {
		type victim struct {
			shard       int
			item        string
			name, value string
		}
		var victims []victim
		for si, se := range e.shards {
			for _, it := range e.sdbItems(se, violations) {
				for _, a := range it.attrs {
					// Bookkeeping attrs are not provenance records; dropping
					// them is out of the integrity layer's contract.
					if a.Name == sdbprov.AttrMD5 || a.Name == sdbprov.AttrMore || a.Name == integrity.AttrRoot {
						continue
					}
					victims = append(victims, victim{shard: si, item: it.name, name: a.Name, value: a.Value})
				}
			}
		}
		ids := make([]string, len(victims))
		for i, v := range victims {
			ids[i] = fmt.Sprintf("drop|%d|%s|%s|%s", v.shard, v.item, v.name, v.value)
		}
		i := e.pickFresh(rng, ids)
		if i < 0 {
			return appliedCorruption{shard: -1, desc: "drop-record: skipped (no victim)"}
		}
		v := victims[i]
		se := e.shards[v.shard]
		desc := fmt.Sprintf("drop-record shard %d item %s attr %s", v.shard, v.item, v.name)
		e.rawWrite(desc, violations, func() error {
			return se.cloud.SDB.DeleteAttributes(se.layer.Domain(), v.item, []sdb.Attr{{Name: v.name, Value: v.value}})
		})
		return appliedCorruption{shard: v.shard, desc: desc}
	}

	type victim struct {
		shard   int
		key     string
		metaKey string
	}
	var victims []victim
	for si, se := range e.shards {
		for _, o := range e.s3Objects(se, violations) {
			for _, k := range o.pKeys {
				victims = append(victims, victim{shard: si, key: o.key, metaKey: k})
			}
		}
	}
	ids := make([]string, len(victims))
	for i, v := range victims {
		ids[i] = fmt.Sprintf("drop|%d|%s|%s", v.shard, v.key, v.metaKey)
	}
	i := e.pickFresh(rng, ids)
	if i < 0 {
		return appliedCorruption{shard: -1, desc: "drop-record: skipped (no victim)"}
	}
	v := victims[i]
	se := e.shards[v.shard]
	desc := fmt.Sprintf("drop-record shard %d object %s entry %s", v.shard, v.key, v.metaKey)
	e.rawWrite(desc, violations, func() error {
		obj, err := se.cloud.S3.Get(s3Bucket, v.key)
		if err != nil {
			return err
		}
		delete(obj.Metadata, v.metaKey)
		return se.cloud.S3.Put(s3Bucket, v.key, obj.Body, obj.Metadata)
	})
	return appliedCorruption{shard: v.shard, desc: desc}
}
