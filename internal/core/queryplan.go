package core

import (
	"context"
	"crypto/rand"
	"encoding/base64"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
	"sync"

	"passcloud/internal/prov"
)

// This file holds the query planner's public shapes (QueryPlan, PlanStep),
// the opaque pagination cursor, and the snapshot-pinned paging runner every
// backend shares.

// PlanStep is one predicted cloud operation class of a query plan.
type PlanStep struct {
	// Service is the metered service ("S3", "SimpleDB") or "-" for
	// client-side work.
	Service string
	// Op is the operation ("Select", "GetAttributes", "QueryWithAttributes",
	// "LIST", "HEAD", "GET", ...).
	Op string
	// Count is the predicted number of calls.
	Count int64
	// Note explains the step ("one page per 2500 items", ...).
	Note string
}

// QueryPlan is Explain's answer: how a backend will execute a descriptor
// and what it predicts the execution will cost — the paper's Table 3 cost
// model extended from three fixed queries to arbitrary descriptors.
type QueryPlan struct {
	// Arch names the architecture that produced the plan.
	Arch string
	// Strategy names the chosen plan shape: "snapshot" (serve from the
	// warm cache), "scan" (full repository scan), "indexed-two-phase"
	// (instances then dependents), "indexed-pushdown" (predicates in the
	// backend expression), "indexed-prefix" (starts-with traversal),
	// "item-listing", "graph-walk", "pinned-page", "memo".
	Strategy string
	// Pushdown lists the predicate expressions evaluated inside the
	// backend rather than client-side.
	Pushdown []string
	// Steps breaks the prediction down per operation class.
	Steps []PlanStep
	// EstOps is the predicted total cloud operations.
	EstOps int64
	// Cached is true when a warm snapshot or memoized result answers the
	// query without touching the cloud (EstOps 0).
	Cached bool
	// Exact is true when the prediction derives from complete planner
	// statistics (this client performed every write). Writes by other
	// clients of a shared region degrade predictions to estimates.
	Exact bool
}

// AddStep appends a step and accumulates its count into EstOps.
func (p *QueryPlan) AddStep(service, op string, count int64, note string) {
	p.Steps = append(p.Steps, PlanStep{Service: service, Op: op, Count: count, Note: note})
	if service != "-" {
		p.EstOps += count
	}
}

// String renders a compact multi-line form for CLI output.
func (p QueryPlan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan arch=%s strategy=%s est_ops=%d", p.Arch, p.Strategy, p.EstOps)
	if p.Cached {
		b.WriteString(" (cached)")
	}
	if !p.Exact {
		b.WriteString(" (estimate)")
	}
	for _, pd := range p.Pushdown {
		fmt.Fprintf(&b, "\n  pushdown %s", pd)
	}
	for _, s := range p.Steps {
		fmt.Fprintf(&b, "\n  step %s/%s x%d", s.Service, s.Op, s.Count)
		if s.Note != "" {
			fmt.Fprintf(&b, "  -- %s", s.Note)
		}
	}
	return b.String()
}

// PlanPages is the shared page-count model: how many paged calls a backend
// needs to return n results at pageLimit per page. Zero results still cost
// the one call that discovers there are none.
func PlanPages(n, pageLimit int) int64 {
	if n <= 0 {
		return 1
	}
	return int64((n + pageLimit - 1) / pageLimit)
}

// Stamped is implemented by stores that can render their current
// repository generation as an opaque token — the same token their own
// pagination cursors bind to. Composers (the shard router) concatenate
// member tokens into a composite stamp, so a write to any member changes
// the composite and fresh queries observe a new generation while resident
// pins keep serving in-flight page sequences.
type Stamped interface {
	// StampToken renders the store's current repository stamp. Tokens are
	// comparable for equality only; any write that could change query
	// results yields a different token.
	StampToken() string
}

// --- cursors -----------------------------------------------------------------

// Cursor errors.
var (
	// ErrBadCursor is returned for cursors this store never issued (or
	// issued for a different descriptor).
	ErrBadCursor = errors.New("core: malformed or mismatched query cursor")
	// ErrCursorExpired is returned when a cursor's pinned snapshot has
	// been evicted and the repository has changed since, so the page
	// sequence can no longer be served consistently.
	ErrCursorExpired = errors.New("core: query cursor expired")
)

// cursorState is the decoded form of an opaque cursor.
type cursorState struct {
	hash   uint64 // QueryHash of the logical query
	stamp  string // snapshot generation the result set was evaluated at
	offset int    // next entry index
}

// QueryHash fingerprints the logical query a cursor belongs to, so a cursor
// cannot resume a different descriptor.
func QueryHash(q prov.Query) uint64 {
	h := fnv.New64a()
	h.Write([]byte(q.Key()))
	return h.Sum64()
}

// encodeCursor renders an opaque resume token.
func encodeCursor(st cursorState) string {
	raw := fmt.Sprintf("c1|%016x|%s|%d", st.hash, st.stamp, st.offset)
	return base64.RawURLEncoding.EncodeToString([]byte(raw))
}

// decodeCursor parses an opaque resume token.
func decodeCursor(s string) (cursorState, error) {
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return cursorState{}, fmt.Errorf("%w: %w", ErrBadCursor, err)
	}
	parts := strings.Split(string(raw), "|")
	if len(parts) != 4 || parts[0] != "c1" {
		return cursorState{}, ErrBadCursor
	}
	hash, err := strconv.ParseUint(parts[1], 16, 64)
	if err != nil {
		return cursorState{}, ErrBadCursor
	}
	offset, err := strconv.Atoi(parts[3])
	if err != nil || offset < 0 {
		return cursorState{}, ErrBadCursor
	}
	return cursorState{hash: hash, stamp: parts[2], offset: offset}, nil
}

// --- snapshot pins -----------------------------------------------------------

// maxPins bounds how many evaluated result sets a store retains for
// in-flight cursors. Oldest pins evict first; resuming an evicted cursor
// after the repository changed returns ErrCursorExpired.
const maxPins = 8

// pin is one retained result set: the entries a paginated query evaluated
// at one snapshot generation.
type pin struct {
	hash    uint64
	stamp   string
	entries []Entry
}

// Pins retains evaluated result sets for paginated queries, keyed by
// (query, snapshot generation). Pinning is what keeps a page sequence
// consistent across concurrent writes: later pages serve from the pinned
// evaluation even after the live repository moved on. Safe for concurrent
// use.
type Pins struct {
	mu   sync.Mutex
	inst string // random instance token mixed into cursor stamps
	pins []*pin // append order; evict from the front
}

// instance returns this registry's random token, generated on first use.
// Mixing it into cursor stamps makes a cursor minted by a different store
// instance (another client, an earlier process) fail with ErrBadCursor
// instead of colliding with a fresh store's process-local generation
// counter and silently resuming a result set this store never pinned.
func (p *Pins) instance() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.inst == "" {
		var b [8]byte
		rand.Read(b[:])
		p.inst = hex.EncodeToString(b[:])
	}
	return p.inst
}

// token is the full stamp cursors bind to: instance token + repository
// generation.
func (p *Pins) token(stamp string) string {
	return p.instance() + "@" + stamp
}

// put retains entries for (hash, stamp), replacing any previous pin.
func (p *Pins) put(hash uint64, stamp string, entries []Entry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, pn := range p.pins {
		if pn.hash == hash && pn.stamp == stamp {
			p.pins = append(p.pins[:i], p.pins[i+1:]...)
			break
		}
	}
	p.pins = append(p.pins, &pin{hash: hash, stamp: stamp, entries: entries})
	if len(p.pins) > maxPins {
		p.pins = p.pins[len(p.pins)-maxPins:]
	}
}

// get returns the pinned entries for (hash, stamp).
func (p *Pins) get(hash uint64, stamp string) ([]Entry, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, pn := range p.pins {
		if pn.hash == hash && pn.stamp == stamp {
			return pn.entries, true
		}
	}
	return nil, false
}

// RunPaged executes a paginated descriptor over a backend's full-evaluation
// callback, yielding one page. The first page evaluates the query natively
// (eval receives the descriptor with pagination stripped), sorts the result
// canonically, and pins it under the current snapshot stamp; later pages
// decode the cursor and serve the pinned evaluation — zero cloud ops, and
// consistent even if writes landed in between. The last entry of a
// truncated page carries the next cursor.
func RunPaged(
	ctx context.Context,
	q prov.Query,
	stamp string,
	pins *Pins,
	eval func(context.Context, prov.Query) ([]Entry, error),
	yield func(Entry, error) bool,
) {
	hash := QueryHash(q)
	token := pins.token(stamp)

	evalAndPin := func(at string) ([]Entry, error) {
		inner := q
		inner.Limit, inner.Cursor = 0, ""
		entries, err := eval(ctx, inner)
		if err != nil {
			return nil, err
		}
		SortEntries(entries)
		pins.put(hash, at, entries)
		return entries, nil
	}

	var entries []Entry
	offset := 0
	at := token
	if q.Cursor != "" {
		st, err := decodeCursor(q.Cursor)
		if err != nil {
			yield(Entry{}, err)
			return
		}
		if st.hash != hash {
			yield(Entry{}, fmt.Errorf("%w: cursor belongs to a different query", ErrBadCursor))
			return
		}
		if inst, _, ok := strings.Cut(st.stamp, "@"); !ok || inst != pins.instance() {
			yield(Entry{}, fmt.Errorf("%w: cursor was minted by a different store instance", ErrBadCursor))
			return
		}
		offset, at = st.offset, st.stamp
		pinned, ok := pins.get(st.hash, st.stamp)
		if !ok {
			if st.stamp != token {
				yield(Entry{}, ErrCursorExpired)
				return
			}
			// The pin was evicted but the repository has not changed:
			// re-evaluating reproduces the same result set (and the
			// memoized refs usually make it free).
			if pinned, err = evalAndPin(st.stamp); err != nil {
				yield(Entry{}, err)
				return
			}
		}
		entries = pinned
	} else {
		var err error
		if entries, err = evalAndPin(token); err != nil {
			yield(Entry{}, err)
			return
		}
	}

	end := len(entries)
	if q.Limit > 0 && offset+q.Limit < end {
		end = offset + q.Limit
	}
	for i := offset; i < end; i++ {
		e := entries[i]
		if i == end-1 && end < len(entries) {
			e.Cursor = encodeCursor(cursorState{hash: hash, stamp: at, offset: end})
		}
		if !yield(e, nil) {
			return
		}
	}
}

// CursorDisposition classifies how a backend will serve a cursor-bearing
// descriptor — the planning-time mirror of RunPaged's resume logic, for
// Explain.
type CursorDisposition int

const (
	// CursorPinned: the pinned evaluation is resident; resuming serves it
	// at zero cloud ops.
	CursorPinned CursorDisposition = iota
	// CursorReEval: the pin was evicted but the repository is unchanged;
	// resuming re-evaluates the descriptor at the current stamp.
	CursorReEval
	// CursorFails: the cursor is malformed, foreign, or expired; resuming
	// fails (ErrBadCursor/ErrCursorExpired) without cloud ops.
	CursorFails
)

// ExplainCursor fills p for a cursor-bearing descriptor when the resume
// can be planned without costing an evaluation: a resident pin (free) or a
// cursor that fails outright. It returns true when the plan is complete;
// false means the pin was evicted at an unchanged stamp, so the caller
// must cost the re-evaluation (a note step is already added). Backends
// share this so their plan output for cursors cannot desynchronize.
func ExplainCursor(p *QueryPlan, q prov.Query, pins *Pins, stamp string) bool {
	switch PlanCursor(q, pins, stamp) {
	case CursorPinned:
		p.Strategy = "pinned-page"
		p.Cached = true
		p.AddStep("-", "pinned-page", 0, "resumed pages serve from the pinned evaluation at zero cloud ops")
		return true
	case CursorFails:
		p.Strategy = "pinned-page"
		p.AddStep("-", "pinned-page", 0, "cursor cannot resume (foreign or expired): fails without cloud ops")
		return true
	default: // CursorReEval
		p.AddStep("-", "pinned-page", 0, "pin evicted at an unchanged generation: resume re-evaluates")
		return false
	}
}

// PlanCursor predicts RunPaged's disposition of q.Cursor against the
// current repository stamp.
func PlanCursor(q prov.Query, pins *Pins, stamp string) CursorDisposition {
	st, err := decodeCursor(q.Cursor)
	if err != nil || st.hash != QueryHash(q) {
		return CursorFails
	}
	if inst, _, ok := strings.Cut(st.stamp, "@"); !ok || inst != pins.instance() {
		return CursorFails
	}
	if _, ok := pins.get(st.hash, st.stamp); ok {
		return CursorPinned
	}
	if st.stamp == pins.token(stamp) {
		return CursorReEval
	}
	return CursorFails
}
