package shard_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"passcloud/internal/core"
	"passcloud/internal/pass"
	"passcloud/internal/prov"
)

// fileEvent builds a one-file flush batch.
func fileEvent(path string, version int, data string) []pass.FlushEvent {
	ref := prov.Ref{Object: prov.ObjectID(path), Version: prov.Version(version)}
	return []pass.FlushEvent{{Ref: ref, Type: prov.TypeFile, Data: []byte(data), Records: []prov.Record{
		{Subject: ref, Attr: prov.AttrType, Value: prov.StringValue(prov.TypeFile)},
		{Subject: ref, Attr: prov.AttrName, Value: prov.StringValue(path)},
	}}}
}

// collectPage runs one page of q and returns its refs and resume cursor.
func collectPage(t *testing.T, ctx context.Context, q core.Querier, desc prov.Query) ([]prov.Ref, string) {
	t.Helper()
	var refs []prov.Ref
	cursor := ""
	for e, err := range q.Query(ctx, desc) {
		if err != nil {
			t.Fatalf("page: %v", err)
		}
		refs = append(refs, e.Ref)
		if e.Cursor != "" {
			cursor = e.Cursor
		}
	}
	return refs, cursor
}

// TestCrossShardCursorStability extends the PR 3 cursor-stability test to
// a 4-shard router: a page sequence pinned at the first page must survive
// concurrent writes landing on several shards — no drops, no duplicates,
// no phantoms — while a fresh query observes the new generation.
func TestCrossShardCursorStability(t *testing.T) {
	ctx := context.Background()
	batches := captureBatches(t)
	tg := buildTarget(t, "s3+sdb", 4, 13, false)
	replay(t, ctx, tg, batches)

	desc := prov.Query{Type: prov.TypeFile, Projection: prov.ProjectRefs}

	// The reference result at the pinned generation.
	var want []prov.Ref
	for e, err := range tg.querier().Query(ctx, desc) {
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, e.Ref)
	}
	if len(want) < 6 {
		t.Fatalf("workload too small for pagination test: %d files", len(want))
	}

	paged := desc
	paged.Limit = 2
	var got []prov.Ref
	page, cursor := collectPage(t, ctx, tg.querier(), paged)
	got = append(got, page...)
	writeN := 0
	for cursor != "" {
		// Concurrent writers land new files between pages — spread across
		// shards by the router's own placement.
		writeN++
		for i := 0; i < 2; i++ {
			path := fmt.Sprintf("/concurrent/w%d-%d", writeN, i)
			if err := tg.store.PutBatch(ctx, fileEvent(path, 1, "new")); err != nil {
				t.Fatal(err)
			}
		}
		next := paged
		next.Cursor = cursor
		page, cursor = collectPage(t, ctx, tg.querier(), next)
		got = append(got, page...)
	}

	if len(got) != len(want) {
		t.Fatalf("page sequence returned %d refs, want %d\ngot:  %v\nwant: %v", len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("page sequence diverged at %d: got %v want %v", i, got[i], want[i])
		}
	}
	seen := make(map[prov.Ref]bool)
	for _, r := range got {
		if seen[r] {
			t.Fatalf("duplicate ref %v across pages", r)
		}
		seen[r] = true
	}

	// A fresh (cursor-less) query observes the new generation: the
	// concurrently written files appear.
	var fresh []prov.Ref
	for e, err := range tg.querier().Query(ctx, desc) {
		if err != nil {
			t.Fatal(err)
		}
		fresh = append(fresh, e.Ref)
	}
	if len(fresh) != len(want)+2*writeN {
		t.Fatalf("fresh query saw %d files, want %d", len(fresh), len(want)+2*writeN)
	}
}

// TestCrossShardCursorForeign: a cursor minted by a different router
// instance must fail with ErrBadCursor, never silently resume.
func TestCrossShardCursorForeign(t *testing.T) {
	ctx := context.Background()
	batches := captureBatches(t)
	a := buildTarget(t, "s3+sdb", 4, 17, false)
	b := buildTarget(t, "s3+sdb", 4, 17, false)
	replay(t, ctx, a, batches)
	replay(t, ctx, b, batches)

	paged := prov.Query{Type: prov.TypeFile, Projection: prov.ProjectRefs, Limit: 2}
	_, cursor := collectPage(t, ctx, a.querier(), paged)
	if cursor == "" {
		t.Fatal("expected a truncated first page")
	}
	foreign := paged
	foreign.Cursor = cursor
	var gotErr error
	for _, err := range b.querier().Query(ctx, foreign) {
		if err != nil {
			gotErr = err
			break
		}
	}
	if !errors.Is(gotErr, core.ErrBadCursor) {
		t.Fatalf("foreign cursor resumed with %v, want ErrBadCursor", gotErr)
	}
}
