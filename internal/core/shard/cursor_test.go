package shard_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"passcloud/internal/core"
	"passcloud/internal/core/shard/reshard"
	"passcloud/internal/pass"
	"passcloud/internal/prov"
)

// fileEvent builds a one-file flush batch.
func fileEvent(path string, version int, data string) []pass.FlushEvent {
	ref := prov.Ref{Object: prov.ObjectID(path), Version: prov.Version(version)}
	return []pass.FlushEvent{{Ref: ref, Type: prov.TypeFile, Data: []byte(data), Records: []prov.Record{
		{Subject: ref, Attr: prov.AttrType, Value: prov.StringValue(prov.TypeFile)},
		{Subject: ref, Attr: prov.AttrName, Value: prov.StringValue(path)},
	}}}
}

// collectPage runs one page of q and returns its refs and resume cursor.
func collectPage(t *testing.T, ctx context.Context, q core.Querier, desc prov.Query) ([]prov.Ref, string) {
	t.Helper()
	var refs []prov.Ref
	cursor := ""
	for e, err := range q.Query(ctx, desc) {
		if err != nil {
			t.Fatalf("page: %v", err)
		}
		refs = append(refs, e.Ref)
		if e.Cursor != "" {
			cursor = e.Cursor
		}
	}
	return refs, cursor
}

// TestCrossShardCursorStability extends the PR 3 cursor-stability test to
// a 4-shard router: a page sequence pinned at the first page must survive
// concurrent writes landing on several shards — no drops, no duplicates,
// no phantoms — while a fresh query observes the new generation.
func TestCrossShardCursorStability(t *testing.T) {
	ctx := context.Background()
	batches := captureBatches(t)
	tg := buildTarget(t, "s3+sdb", 4, 13, false)
	replay(t, ctx, tg, batches)

	desc := prov.Query{Type: prov.TypeFile, Projection: prov.ProjectRefs}

	// The reference result at the pinned generation.
	var want []prov.Ref
	for e, err := range tg.querier().Query(ctx, desc) {
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, e.Ref)
	}
	if len(want) < 6 {
		t.Fatalf("workload too small for pagination test: %d files", len(want))
	}

	paged := desc
	paged.Limit = 2
	var got []prov.Ref
	page, cursor := collectPage(t, ctx, tg.querier(), paged)
	got = append(got, page...)
	writeN := 0
	for cursor != "" {
		// Concurrent writers land new files between pages — spread across
		// shards by the router's own placement.
		writeN++
		for i := 0; i < 2; i++ {
			path := fmt.Sprintf("/concurrent/w%d-%d", writeN, i)
			if err := tg.store.PutBatch(ctx, fileEvent(path, 1, "new")); err != nil {
				t.Fatal(err)
			}
		}
		next := paged
		next.Cursor = cursor
		page, cursor = collectPage(t, ctx, tg.querier(), next)
		got = append(got, page...)
	}

	if len(got) != len(want) {
		t.Fatalf("page sequence returned %d refs, want %d\ngot:  %v\nwant: %v", len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("page sequence diverged at %d: got %v want %v", i, got[i], want[i])
		}
	}
	seen := make(map[prov.Ref]bool)
	for _, r := range got {
		if seen[r] {
			t.Fatalf("duplicate ref %v across pages", r)
		}
		seen[r] = true
	}

	// A fresh (cursor-less) query observes the new generation: the
	// concurrently written files appear.
	var fresh []prov.Ref
	for e, err := range tg.querier().Query(ctx, desc) {
		if err != nil {
			t.Fatal(err)
		}
		fresh = append(fresh, e.Ref)
	}
	if len(fresh) != len(want)+2*writeN {
		t.Fatalf("fresh query saw %d files, want %d", len(fresh), len(want)+2*writeN)
	}
}

// TestCursorStabilityAcrossRingFlip: a cursor pinned before an elastic
// resharding cutover must either keep returning its exact snapshot pages
// or fail with the typed core.ErrCursorExpired — never drop, duplicate,
// or invent refs. Both legal outcomes are exercised: a resident pin
// survives the ring-epoch flip serving bit-identical pages, and a pin
// evicted after the flip cannot revalidate against the new epoch's stamp
// and must expire.
func TestCursorStabilityAcrossRingFlip(t *testing.T) {
	ctx := context.Background()
	batches := captureBatches(t)
	tg := buildTarget(t, "s3+sdb", 4, 13, false)
	replay(t, ctx, tg, batches)

	desc := prov.Query{Type: prov.TypeFile, Projection: prov.ProjectRefs}
	var want []prov.Ref
	for e, err := range tg.querier().Query(ctx, desc) {
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, e.Ref)
	}
	if len(want) < 6 {
		t.Fatalf("workload too small for pagination test: %d files", len(want))
	}
	paged := desc
	paged.Limit = 2
	got, cursor := collectPage(t, ctx, tg.querier(), paged)
	if cursor == "" {
		t.Fatal("expected a truncated first page")
	}
	evictee, evicteeCursor := collectPage(t, ctx, tg.querier(), paged)
	if len(evictee) == 0 || evicteeCursor == "" {
		t.Fatal("expected a second pinned cursor")
	}

	// The cutover: split shard 0 toward shard 1 through the controller.
	c, err := reshard.New(reshard.Config{
		Router: tg.router,
		Clouds: tg.clouds,
		Drain: func(ctx context.Context) error {
			for _, d := range tg.drains {
				if err := d(ctx); err != nil {
					return err
				}
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := c.PlanSplit(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Execute(ctx, plan); err != nil {
		t.Fatal(err)
	}
	if tg.router.RingEpoch() != 1 || tg.router.Migrating() {
		t.Fatalf("cutover did not complete: epoch=%d migrating=%v", tg.router.RingEpoch(), tg.router.Migrating())
	}

	// Resume the pinned sequence across the flip: every page must extend
	// the exact snapshot, or the cursor must expire with the typed error.
	expired := false
	for cursor != "" {
		next := paged
		next.Cursor = cursor
		var page []prov.Ref
		pageCursor := ""
		for e, err := range tg.querier().Query(ctx, next) {
			if err != nil {
				if !errors.Is(err, core.ErrCursorExpired) {
					t.Fatalf("mid-flip page failed with %v, want ErrCursorExpired or success", err)
				}
				expired = true
				break
			}
			page = append(page, e.Ref)
			if e.Cursor != "" {
				pageCursor = e.Cursor
			}
		}
		if expired {
			break
		}
		got = append(got, page...)
		cursor = pageCursor
	}
	if !expired {
		if len(got) != len(want) {
			t.Fatalf("page sequence across the flip returned %d refs, want %d\ngot:  %v\nwant: %v", len(got), len(want), got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("snapshot diverged at %d after the flip: got %v want %v", i, got[i], want[i])
			}
		}
		seen := make(map[prov.Ref]bool)
		for _, r := range got {
			if seen[r] {
				t.Fatalf("duplicate ref %v across the flip", r)
			}
			seen[r] = true
		}
	}

	// Evict the second pin (the pin table holds 8 distinct queries), then
	// resume it: the stamp changed with the ring epoch, so it must expire
	// — typed, with no partial page.
	for i := 0; i < 9; i++ {
		flood := desc
		flood.Limit = 2
		flood.RefPrefix = fmt.Sprintf("/t0/w%d", i)
		collectPage(t, ctx, tg.querier(), flood)
	}
	resumed := paged
	resumed.Cursor = evicteeCursor
	var gotErr error
	n := 0
	for _, err := range tg.querier().Query(ctx, resumed) {
		if err != nil {
			gotErr = err
			break
		}
		n++
	}
	if !errors.Is(gotErr, core.ErrCursorExpired) {
		t.Fatalf("evicted cursor resumed across the flip with err=%v (%d refs), want ErrCursorExpired", gotErr, n)
	}
	if n != 0 {
		t.Fatalf("expired cursor leaked %d refs before failing", n)
	}
}

// TestCrossShardCursorForeign: a cursor minted by a different router
// instance must fail with ErrBadCursor, never silently resume.
func TestCrossShardCursorForeign(t *testing.T) {
	ctx := context.Background()
	batches := captureBatches(t)
	a := buildTarget(t, "s3+sdb", 4, 17, false)
	b := buildTarget(t, "s3+sdb", 4, 17, false)
	replay(t, ctx, a, batches)
	replay(t, ctx, b, batches)

	paged := prov.Query{Type: prov.TypeFile, Projection: prov.ProjectRefs, Limit: 2}
	_, cursor := collectPage(t, ctx, a.querier(), paged)
	if cursor == "" {
		t.Fatal("expected a truncated first page")
	}
	foreign := paged
	foreign.Cursor = cursor
	var gotErr error
	for _, err := range b.querier().Query(ctx, foreign) {
		if err != nil {
			gotErr = err
			break
		}
	}
	if !errors.Is(gotErr, core.ErrBadCursor) {
		t.Fatalf("foreign cursor resumed with %v, want ErrBadCursor", gotErr)
	}
}
