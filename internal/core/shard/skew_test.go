package shard_test

import (
	"context"
	"fmt"
	"testing"

	"passcloud/internal/cloud"
	"passcloud/internal/cloud/retry"
	"passcloud/internal/core"
	"passcloud/internal/core/s3sdb"
	"passcloud/internal/core/shard"
	"passcloud/internal/core/shard/reshard"
	"passcloud/internal/pass"
	"passcloud/internal/prov"
	"passcloud/internal/sim"
)

// TestHotShardSkew routes ~90% of a workload onto one shard while that
// shard's cloud injects transient faults through a deliberately tight
// retry budget — so sub-batches fail partially and the flush layer's
// recovery machinery runs for real. The PR 4 sweep invariants must hold
// afterwards: no data readable without provenance, no orphaned
// provenance, no double-applied records, and the (cached) sharded query
// results agree with a fresh uncached scan of the same namespaces.
func TestHotShardSkew(t *testing.T) {
	ctx := context.Background()
	const shards = 4

	faults := sim.NewFaultPlan()
	// Transient storms on the hot shard's services, spaced so several
	// batches hit a failing window. The tight retry budget (2 attempts, no
	// wait) turns storms into partial-write errors instead of silently
	// absorbed retries.
	for skip := 2; skip < 60; skip += 9 {
		faults.ArmOp("sdb/BatchPutAttributes", sim.ClassTransient, skip, 3)
	}
	for skip := 4; skip < 80; skip += 11 {
		faults.ArmOp("s3/PUT", sim.ClassTransient, skip, 3)
	}
	tight := retry.Policy{MaxAttempts: 2}

	multi := cloud.NewMulti(cloud.Config{Seed: 23})
	hotCloud := cloud.New(cloud.Config{Seed: 24, Faults: faults})
	clouds := make([]*cloud.Cloud, shards)
	stores := make([]shard.Store, shards)
	concrete := make([]*s3sdb.Store, shards)
	for i := 0; i < shards; i++ {
		cl := multi.Namespace(fmt.Sprintf("s%d", i))
		cfg := s3sdb.Config{Cloud: cl}
		if i == 0 {
			cl = hotCloud
			cfg = s3sdb.Config{Cloud: cl, Retry: tight}
		}
		st, err := s3sdb.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		clouds[i] = cl
		stores[i] = st
		concrete[i] = st
	}
	r, err := shard.New(shard.Config{Shards: stores})
	if err != nil {
		t.Fatal(err)
	}

	// 90% of traffic on shard 0: pick file names by probing placement.
	nameOn := func(hot bool) func() prov.ObjectID {
		n := 0
		return func() prov.ObjectID {
			for {
				obj := prov.ObjectID(fmt.Sprintf("/skew/%v/f%d", hot, n))
				n++
				if (r.ShardFor(obj) == 0) == hot {
					return obj
				}
			}
		}
	}
	hotName, coldName := nameOn(true), nameOn(false)

	sys := pass.NewSystem(pass.Config{Kernel: "2.6.23", Flush: core.Flusher(r)})
	want := make(map[prov.ObjectID]string)
	var flushErrs int
	for b := 0; b < 40; b++ {
		p := sys.Exec(nil, pass.ExecSpec{Name: fmt.Sprintf("gen%d", b), Argv: []string{"gen"}})
		var obj prov.ObjectID
		if b%10 == 9 {
			obj = coldName()
		} else {
			obj = hotName()
		}
		content := fmt.Sprintf("payload-%d", b)
		if err := sys.Write(p, string(obj), []byte(content), pass.Truncate); err != nil {
			t.Fatal(err)
		}
		if err := sys.Close(ctx, p, string(obj)); err != nil {
			flushErrs++ // partial batch: recovery retries the remainder later
		}
		want[obj] = content
		sys.Exit(p)
	}
	// Drive recovery to quiescence: each Sync retries only what has not
	// durably landed. The fault windows are finite, so this converges.
	synced := false
	for i := 0; i < 30; i++ {
		if err := sys.Sync(ctx); err == nil {
			synced = true
			break
		}
	}
	if !synced {
		t.Fatal("recovery never reached quiescence")
	}
	if flushErrs == 0 {
		t.Fatal("fault schedule never fired — the test exercised nothing")
	}

	// Invariant: every file is readable with provenance describing the
	// latest content (no data-without-provenance, no regressed versions).
	for obj, content := range want {
		got, err := r.Get(ctx, obj)
		if err != nil {
			t.Fatalf("Get(%s): %v", obj, err)
		}
		if string(got.Data) != content {
			t.Errorf("%s: data %q, want %q", obj, got.Data, content)
		}
		if len(got.Records) == 0 {
			t.Errorf("%s: data readable without provenance", obj)
		}
	}

	// Invariant: no orphaned provenance survives recovery on any shard.
	for i, st := range concrete {
		orphans, err := st.OrphanScan(ctx)
		if err != nil {
			t.Fatalf("shard %d orphan scan: %v", i, err)
		}
		if len(orphans) != 0 {
			t.Errorf("shard %d: %d orphans survive recovery: %v", i, len(orphans), orphans)
		}
	}

	// Invariant: the sharded (cached) query results equal a fresh uncached
	// scan of the same namespaces, and no record was double-applied.
	fresh := make([]shard.Store, shards)
	for i := range clouds {
		st, err := s3sdb.New(s3sdb.Config{Cloud: clouds[i], DisableQueryCache: true})
		if err != nil {
			t.Fatal(err)
		}
		fresh[i] = st
	}
	freshR, err := shard.New(shard.Config{Shards: fresh})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []prov.Query{prov.Q1(), {Type: prov.TypeFile, Projection: prov.ProjectRefs}} {
		cached := canonical(t, ctx, r, q)
		scanned := canonical(t, ctx, freshR, q)
		if cached != scanned {
			t.Errorf("cached sharded result diverges from uncached scan for %s:\ncached:\n%s\nscan:\n%s", q.Key(), cached, scanned)
		}
	}
	g, err := r.ProvenanceGraph(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, subject := range g.Subjects() {
		seen := make(map[string]int)
		for _, rec := range g.Records(subject) {
			seen[rec.Attr+"\x00"+rec.Value.String()]++
		}
		for k, n := range seen {
			if n > 1 {
				t.Errorf("%s: record %q applied %d times", subject, k, n)
			}
		}
	}
}

// TestSkewConvergenceUnderCeiling is the controller's convergence
// invariant: after one reconciliation pass over a 90%-hot workload, the
// hot shard's op share of fresh traffic — generated against the FROZEN
// pre-migration placement, so it is the same traffic pattern that made
// the shard hot — must fall below the configured ceiling, and repeated
// reconciliation passes must drive every shard under the ceiling.
func TestSkewConvergenceUnderCeiling(t *testing.T) {
	ctx := context.Background()
	const (
		shards  = 4
		hot     = 0
		ceiling = 0.5
	)
	tg := buildTarget(t, "s3+sdb", shards, 41, false)
	ctrl, err := reshard.New(reshard.Config{
		Router:     tg.router,
		Clouds:     tg.clouds,
		HotCeiling: ceiling,
		Drain: func(ctx context.Context) error {
			for _, d := range tg.drains {
				if err := d(ctx); err != nil {
					return err
				}
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// runPhase drives 50 batches, 90% of them onto names the probe calls
	// hot, through a fresh PASS client.
	runPhase := func(tag string, hotName func(prov.ObjectID) bool) {
		t.Helper()
		sys := pass.NewSystem(pass.Config{Kernel: "2.6.23", Namespace: tag, Flush: core.Flusher(tg.store)})
		probe := 0
		nameOn := func(want bool) prov.ObjectID {
			for {
				obj := prov.ObjectID(fmt.Sprintf("/conv/%s/f%d", tag, probe))
				probe++
				if hotName(obj) == want {
					return obj
				}
			}
		}
		for b := 0; b < 50; b++ {
			p := sys.Exec(nil, pass.ExecSpec{Name: "gen", Argv: []string{"gen", tag}})
			obj := nameOn(b%10 != 9)
			if err := sys.Write(p, string(obj), []byte(fmt.Sprintf("%s-%d", tag, b)), pass.Truncate); err != nil {
				t.Fatal(err)
			}
			if err := sys.Close(ctx, p, string(obj)); err != nil {
				t.Fatal(err)
			}
			sys.Exit(p)
		}
		if err := sys.Sync(ctx); err != nil {
			t.Fatal(err)
		}
		tg.drain(ctx, t)
	}

	// Phase 1: heat shard 0 against the live ring; the detector must see
	// it over the ceiling and one reconciliation pass must split it.
	ctrl.SampleBaseline()
	frozen := tg.router.Assignment()
	runPhase("p1", func(o prov.ObjectID) bool { return tg.router.ShardFor(o) == hot })
	if got, share, ok := ctrl.DetectHot(); !ok || got != hot {
		t.Fatalf("detector missed the hot shard: hot=%d share=%.2f ok=%v (shares %v)", got, share, ok, ctrl.Shares())
	}
	rep, err := ctrl.RunOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Action != "split" || rep.Plan == nil || rep.Plan.Src != hot {
		t.Fatalf("reconciliation did not split the hot shard: %+v", rep)
	}
	if tg.router.RingEpoch() != 1 || tg.router.Migrating() {
		t.Fatalf("cutover incomplete: epoch=%d migrating=%v", tg.router.RingEpoch(), tg.router.Migrating())
	}

	// Phase 2: the same traffic pattern, probed against the frozen
	// pre-migration ring, through the flipped ring. The original hot
	// shard must land under the ceiling after the single split.
	frozenProbe := func(o prov.ObjectID) bool { return tg.router.OwnerIn(frozen, o) == hot }
	ctrl.SampleBaseline()
	runPhase("p2", frozenProbe)
	shares := ctrl.Shares()
	if shares[hot] >= ceiling {
		t.Fatalf("post-split hot shard still carries %.0f%% of ops, want < %.0f%% (shares %v)",
			100*shares[hot], 100*ceiling, shares)
	}
	t.Logf("hot-shard share after split: %.1f%% (shares %v)", 100*shares[hot], shares)

	// Shedding half a 90% hotspot can make the destination the new
	// hottest shard; the reconciliation loop must converge — every shard
	// under the ceiling — within a few further passes, and the original
	// hot shard must never reheat.
	for round := 3; ; round++ {
		got, share, ok := ctrl.DetectHot()
		if !ok {
			break
		}
		if got == hot {
			t.Fatalf("original hot shard reheated to %.0f%%", 100*share)
		}
		if round > 6 {
			t.Fatalf("reconciliation loop did not converge: shard %d still at %.0f%%", got, 100*share)
		}
		if _, err := ctrl.RunOnce(ctx); err != nil {
			t.Fatal(err)
		}
		ctrl.SampleBaseline()
		runPhase(fmt.Sprintf("p%d", round), frozenProbe)
	}
	final := ctrl.Shares()
	for i, s := range final {
		if s >= ceiling {
			t.Fatalf("shard %d ends at %.0f%%, want every shard < %.0f%% (shares %v)", i, 100*s, 100*ceiling, final)
		}
	}
	t.Logf("converged shares: %v (ring epoch %d)", final, tg.router.RingEpoch())
}
