package shard_test

import (
	"testing"

	"passcloud/internal/leakcheck"
)

// TestMain fails the binary if the router's fan-out queries or the
// migration double-read window leave goroutines behind after the tests
// pass.
func TestMain(m *testing.M) { leakcheck.Main(m) }
