// Ring reassignment and the migration double-read window: the router
// half of elastic resharding. The reshard controller (shard/reshard)
// drives the protocol — copy the moving arc, verify it against the
// integrity ledgers, flip the ring — through the surface here; the
// router's job is to keep every query path bit-identical while both
// copies of the arc exist.
//
// The window has two states. Before the flip the old ring is active: the
// source shard is authoritative for the arc and the destination's
// freshly imported copy is excluded from fan-ins, union-graph merges,
// multi-hop rounds and provenance probes. FlipRing atomically swaps the
// assignment and advances the ring epoch; the destination becomes
// authoritative (the active ring now routes there) and the source's
// stale copy is excluded until EndMigration confirms its removal.
// Exclusion is keyed by the exact exported subject set — transient
// riders home with their carrier, not with their own hash — so the
// filter and the copy always agree on what moved.
package shard

import (
	"fmt"
	"sort"

	"passcloud/internal/core"
	"passcloud/internal/prov"
)

// migration is the published double-read window state. Values are
// immutable once published under Router.mig; transitions replace the
// pointer.
type migration struct {
	// flipped is false while the old ring is active (exclude the
	// destination's copy), true between FlipRing and EndMigration
	// (exclude the source's stale copy).
	flipped  bool
	src, dst int
	// moved is the exported subject set's objects: every object whose
	// records travel with the arc, transient riders included.
	moved map[prov.ObjectID]bool
}

// migSnapshot reads the current migration window, nil when idle.
func (r *Router) migSnapshot() *migration {
	r.ringMu.RLock()
	defer r.ringMu.RUnlock()
	return r.mig
}

// excluded reports whether shard i's copy of object is the
// non-authoritative side of the window.
func (m *migration) excluded(i int, object prov.ObjectID) bool {
	if m == nil || !m.moved[object] {
		return false
	}
	if m.flipped {
		return i == m.src
	}
	return i == m.dst
}

// filterEntries drops shard i's entries for subjects whose copy on i is
// non-authoritative. Outside a migration window it returns entries
// unchanged without allocating.
func (m *migration) filterEntries(i int, entries []core.Entry) []core.Entry {
	if m == nil || (i != m.src && i != m.dst) {
		return entries
	}
	kept := entries[:0]
	for _, e := range entries {
		if !m.excluded(i, e.Ref.Object) {
			kept = append(kept, e)
		}
	}
	return kept
}

// RingEpoch returns the number of ring reassignments this router has
// performed. Zero means the boot assignment is still active.
func (r *Router) RingEpoch() int {
	r.ringMu.RLock()
	defer r.ringMu.RUnlock()
	return r.epoch
}

// Migrating reports whether a double-read window is open.
func (r *Router) Migrating() bool { return r.migSnapshot() != nil }

// Assignment returns the current owner of every ring point, in ring
// order. Ring point hashes never change after New, so an assignment
// edited by index and passed to FlipRing describes a reassignment of
// the same virtual nodes.
func (r *Router) Assignment() []int {
	r.ringMu.RLock()
	defer r.ringMu.RUnlock()
	owners := make([]int, len(r.ring))
	for i, p := range r.ring {
		owners[i] = p.shard
	}
	return owners
}

// OwnerIn places object under a hypothetical assignment (one owner per
// ring point, in ring order) without touching the active ring — the
// planner's and the moved-arc predicate's placement primitive.
func (r *Router) OwnerIn(assign []int, object prov.ObjectID) int {
	r.ringMu.RLock()
	defer r.ringMu.RUnlock()
	h := hash64(string(object))
	i := sort.Search(len(r.ring), func(i int) bool { return r.ring[i].hash >= h })
	if i == len(r.ring) {
		i = 0
	}
	return assign[i]
}

// validAssignment checks a target assignment's shape.
func (r *Router) validAssignment(assign []int) error {
	if len(assign) != len(r.ring) {
		return fmt.Errorf("shard: assignment has %d owners, ring has %d points", len(assign), len(r.ring))
	}
	for _, owner := range assign {
		if owner < 0 || owner >= len(r.shards) {
			return fmt.Errorf("shard: assignment owner %d out of range [0,%d)", owner, len(r.shards))
		}
	}
	return nil
}

// BeginMigration opens the double-read window for an arc moving from
// src to dst: subjects' objects are excluded from dst reads until the
// flip. Call it after the arc is exported and before it is imported, so
// no query ever sees the destination's partial copy.
func (r *Router) BeginMigration(src, dst int, subjects []prov.Ref) error {
	if src == dst || src < 0 || dst < 0 || src >= len(r.shards) || dst >= len(r.shards) {
		return fmt.Errorf("shard: invalid migration %d -> %d", src, dst)
	}
	moved := make(map[prov.ObjectID]bool, len(subjects))
	for _, ref := range subjects {
		moved[ref.Object] = true
	}
	r.ringMu.Lock()
	if r.mig != nil {
		r.ringMu.Unlock()
		return fmt.Errorf("shard: migration already active (%d -> %d)", r.mig.src, r.mig.dst)
	}
	r.mig = &migration{src: src, dst: dst, moved: moved}
	r.ringMu.Unlock()
	r.dropMergedGraph()
	return nil
}

// FlipRing atomically applies the target assignment and advances the
// ring epoch. Inside a migration window the cutover moves authority to
// the destination in the same step: the active ring now routes the arc
// to dst, and the window flips to excluding the source's stale copy.
func (r *Router) FlipRing(target []int) error {
	r.ringMu.Lock()
	if err := r.validAssignment(target); err != nil {
		r.ringMu.Unlock()
		return err
	}
	for i := range r.ring {
		r.ring[i].shard = target[i]
	}
	r.epoch++
	if r.mig != nil {
		flipped := *r.mig
		flipped.flipped = true
		r.mig = &flipped
	}
	r.ringMu.Unlock()
	r.dropMergedGraph()
	return nil
}

// EndMigration closes the window after the source's stale copy is
// removed: reads stop filtering and the ring alone decides placement.
func (r *Router) EndMigration() {
	r.ringMu.Lock()
	r.mig = nil
	r.ringMu.Unlock()
	r.dropMergedGraph()
}

// AbortMigration closes the window without a flip — the rollback path
// after the destination's partial or failed copy is removed. The old
// ring never stopped being active, so reads converge to fully-unmoved.
func (r *Router) AbortMigration() {
	r.ringMu.Lock()
	r.mig = nil
	r.ringMu.Unlock()
	r.dropMergedGraph()
}

// dropMergedGraph invalidates the union-graph cache's merged graph at a
// migration state transition. Per-shard parts stay: they are raw and
// stamp-keyed, only the filtered merge is state-dependent.
func (r *Router) dropMergedGraph() {
	c := &r.gcache
	c.mu.Lock()
	c.graph = nil
	c.mu.Unlock()
}
