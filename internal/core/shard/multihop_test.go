package shard_test

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"passcloud/internal/core"
	"passcloud/internal/pass"
	"passcloud/internal/prov"
	"passcloud/internal/sim"
)

// canonicalEntries renders an evaluated entry slice in the same
// comparison form canonical() renders a query stream, so router answers
// can be checked against core.EvalQuery oracle output.
func canonicalEntries(entries []core.Entry) string {
	byRef := make(map[prov.Ref][]string)
	var refs []prov.Ref
	for _, e := range entries {
		if _, ok := byRef[e.Ref]; !ok {
			refs = append(refs, e.Ref)
		}
		for _, r := range e.Records {
			byRef[e.Ref] = append(byRef[e.Ref], fmt.Sprintf("%s|%s|%s", r.Subject, r.Attr, r.Value.String()))
		}
	}
	prov.SortRefs(refs)
	var b strings.Builder
	for _, ref := range refs {
		lines := byRef[ref]
		sort.Strings(lines)
		fmt.Fprintf(&b, "%s :: %s\n", ref, strings.Join(lines, " ; "))
	}
	return b.String()
}

// writeEvent builds a minimal one-file flush event for cache-invalidation
// probes.
func writeEvent(obj prov.ObjectID) pass.FlushEvent {
	ref := prov.Ref{Object: obj, Version: 1}
	return pass.FlushEvent{
		Ref:  ref,
		Type: prov.TypeFile,
		Data: []byte("x"),
		Records: []prov.Record{
			{Subject: ref, Attr: prov.AttrType, Value: prov.StringValue(prov.TypeFile)},
			{Subject: ref, Attr: prov.AttrName, Value: prov.StringValue(string(obj))},
		},
	}
}

// TestMultihopIndexedPlans: on members that plan references client-side
// (SimpleDB-backed), Q.2/Q.3-class descriptors must take the distributed
// multi-hop strategy with indexed rounds — no step of any round may be a
// repository Select scan (the union path's per-shard Q.1 marker). The
// op/$ improvement over the scan floor is a scale property and is gated
// at workload scale by the sharded cost matrix (internal/cost) and
// benchdiff; this test pins the plan shape.
func TestMultihopIndexedPlans(t *testing.T) {
	ctx := context.Background()
	batches := captureBatches(t)

	multihopQueries := []prov.Query{
		prov.QOutputsOf("blast"),            // Q.2 class
		prov.QDescendantsOfOutputs("blast"), // Q.3 class
		{Tool: "softmean", Type: prov.TypeFile, Direction: prov.TraverseDescendants, Depth: 2, Projection: prov.ProjectRefs},
		{Refs: []prov.Ref{{Object: "/res/mean", Version: 2}}, Direction: prov.TraverseAncestors, Projection: prov.ProjectRefs},
	}

	t.Run("s3+sdb", func(t *testing.T) {
		tg := buildTarget(t, "s3+sdb", 4, 23, true)
		replay(t, ctx, tg, batches)
		for i, q := range multihopQueries {
			plan := tg.router.Explain(q)
			if plan.Strategy != "multihop" {
				t.Fatalf("query %d (%s): strategy %q, want multihop\n%s", i, q.Key(), plan.Strategy, plan)
			}
			if plan.EstOps <= 0 {
				t.Errorf("query %d (%s): empty plan\n%s", i, q.Key(), plan)
			}
			for _, st := range plan.Steps {
				if st.Op == "Select" {
					t.Errorf("query %d (%s): multihop plan contains a Select scan step\n%s", i, q.Key(), plan)
				}
			}
		}
	})

	t.Run("s3-keeps-union", func(t *testing.T) {
		tg := buildTarget(t, "s3", 4, 23, true)
		replay(t, ctx, tg, batches)
		plan := tg.router.Explain(prov.QDescendantsOfOutputs("blast"))
		if plan.Strategy != "union-graph" {
			t.Fatalf("members without RefPlanner must keep the union graph, got %q", plan.Strategy)
		}
	})
}

// TestRouterGraphCacheInvalidation: repeated whole-graph queries on an
// unchanged namespace must cost zero cloud ops (the router's union-graph
// cache), and one write must invalidate exactly the written shard's
// contribution — the others keep serving from the cache.
func TestRouterGraphCacheInvalidation(t *testing.T) {
	ctx := context.Background()
	batches := captureBatches(t)
	// Uncached members: any masking by per-shard snapshots is off, so the
	// metered zeros below belong to the router cache alone.
	tg := buildTarget(t, "s3", 4, 29, true)
	replay(t, ctx, tg, batches)

	anc := prov.Query{
		Refs:       []prov.Ref{{Object: "/res/mean", Version: 2}},
		Direction:  prov.TraverseAncestors,
		Projection: prov.ProjectRefs,
	}
	run := func() int64 {
		before := tg.totalOps()
		for _, err := range tg.router.Query(ctx, anc) {
			if err != nil {
				t.Fatal(err)
			}
		}
		return tg.totalOps() - before
	}

	if cold := run(); cold <= 0 {
		t.Fatalf("cold union-graph query metered %d ops, want > 0", cold)
	}
	plan := tg.router.Explain(anc)
	if !plan.Cached || plan.EstOps != 0 {
		t.Fatalf("warm router cache not predicted: %s", plan)
	}
	if warm := run(); warm != 0 {
		t.Fatalf("repeated query on an unchanged namespace metered %d ops, want 0", warm)
	}

	// One write: exactly one shard's contribution refetches.
	obj := prov.ObjectID("/post/gcache")
	hot := tg.router.ShardFor(obj)
	if err := tg.store.PutBatch(ctx, []pass.FlushEvent{writeEvent(obj)}); err != nil {
		t.Fatal(err)
	}
	plan = tg.router.Explain(anc)
	if plan.Cached {
		t.Fatalf("plan still claims cached after a write: %s", plan)
	}
	perShardBefore := make([]int64, len(tg.clouds))
	for i, cl := range tg.clouds {
		perShardBefore[i] = cl.Usage().TotalOps()
	}
	for _, err := range tg.router.Query(ctx, anc) {
		if err != nil {
			t.Fatal(err)
		}
	}
	var metered int64
	for i, cl := range tg.clouds {
		delta := cl.Usage().TotalOps() - perShardBefore[i]
		metered += delta
		if i == hot && delta == 0 {
			t.Errorf("written shard %d served from the stale cached contribution", i)
		}
		if i != hot && delta != 0 {
			t.Errorf("unwritten shard %d refetched (%d ops) after a foreign-shard write", i, delta)
		}
	}
	if plan.EstOps != metered {
		t.Errorf("post-write plan predicted %d ops, metered %d\n%s", plan.EstOps, metered, plan)
	}
	if again := run(); again != 0 {
		t.Fatalf("query after the refetch metered %d ops, want 0 (cache re-pinned)", again)
	}
}

// TestExplainReevalLabel: a cursor whose pin was evicted at an unchanged
// generation re-evaluates; its plan's strategy must carry the
// "pinned-reeval/" prefix so passctl output is unambiguous about which
// path ran.
func TestExplainReevalLabel(t *testing.T) {
	ctx := context.Background()
	batches := captureBatches(t)
	tg := buildTarget(t, "s3+sdb", 4, 31, false)
	replay(t, ctx, tg, batches)

	paged := prov.QDescendantsOfOutputs("blast")
	paged.Limit = 1
	_, cursor := collectPage(t, ctx, tg.querier(), paged)
	if cursor == "" {
		t.Fatal("expected a truncated first page")
	}

	// Evict the pin: the pin pool holds a bounded number of evaluations,
	// so enough distinct paginated descriptors push the first one out.
	for i := 0; i < 12; i++ {
		evict := prov.Query{RefPrefix: fmt.Sprintf("/data/in%d", i%6), Type: prov.TypeFile, Projection: prov.ProjectRefs, Limit: 1}
		if i >= 6 {
			evict.RefPrefix = fmt.Sprintf("/out/blast%d", i%6)
		}
		collectPage(t, ctx, tg.querier(), evict)
	}

	resume := paged
	resume.Cursor = cursor
	plan := tg.router.Explain(resume)
	if !strings.HasPrefix(plan.Strategy, "pinned-reeval/") {
		t.Fatalf("evicted-cursor plan strategy %q lacks the pinned-reeval/ prefix\n%s", plan.Strategy, plan)
	}
	fresh := tg.router.Explain(paged)
	if plan.Strategy == fresh.Strategy {
		t.Fatalf("re-evaluation plan indistinguishable from a fresh query's (%q)", fresh.Strategy)
	}
}

// TestMultihopRandomizedOracle is the cross-shard equivalence oracle: a
// seeded generator drives descriptors — multi-hop traversals included —
// through routers of every architecture at 1/4/16 shards, and every
// answer must match core.EvalQuery on the union graph. A final phase
// checks pinned-cursor stability: a page sequence started before a
// mid-traversal write must return exactly the pre-write evaluation.
func TestMultihopRandomizedOracle(t *testing.T) {
	ctx := context.Background()
	batches := captureBatches(t)

	tools := []string{"blast", "sort", "softmean", "missing"}
	types := []string{prov.TypeFile, prov.TypeProcess, ""}
	prefixes := []string{"", "/out/", "/data/", "/res/mean:", "/nope/"}
	refPool := []prov.Ref{
		{Object: "/out/blast0", Version: 1}, {Object: "/out/blast0", Version: 2},
		{Object: "/res/mean", Version: 1}, {Object: "/res/mean", Version: 2},
		{Object: "/data/in2", Version: 1}, {Object: "/ghost", Version: 7},
	}

	for _, arch := range []string{"s3", "s3+sdb", "s3+sdb+sqs"} {
		for _, shards := range []int{1, 4, 16} {
			t.Run(fmt.Sprintf("%s/x%d", arch, shards), func(t *testing.T) {
				flat := buildTarget(t, arch, 1, 2027, false)
				sharded := buildTarget(t, arch, shards, 2027, false)
				replay(t, ctx, flat, batches)
				replay(t, ctx, sharded, batches)
				g, err := core.ProvenanceGraph(ctx, flat.querier())
				if err != nil {
					t.Fatal(err)
				}

				rng := sim.NewRNG(int64(7001 + shards))
				randomQuery := func() prov.Query {
					q := prov.Query{}
					if rng.Intn(3) == 0 {
						q.Tool = tools[rng.Intn(len(tools))]
					}
					q.Type = types[rng.Intn(len(types))]
					if rng.Intn(3) == 0 {
						q.Attrs = append(q.Attrs, prov.AttrFilter{Attr: prov.AttrName, Value: tools[rng.Intn(len(tools))]})
					}
					q.RefPrefix = prefixes[rng.Intn(len(prefixes))]
					if rng.Intn(3) == 0 {
						n := 1 + rng.Intn(2)
						for i := 0; i < n; i++ {
							q.Refs = append(q.Refs, refPool[rng.Intn(len(refPool))])
						}
					}
					switch rng.Intn(3) {
					case 1:
						q.Direction = prov.TraverseDescendants
					case 2:
						q.Direction = prov.TraverseAncestors
					}
					if q.Direction != prov.TraverseNone {
						q.Depth = rng.Intn(4)
						q.IncludeSeeds = rng.Intn(2) == 0
					}
					if rng.Intn(2) == 0 {
						q.Projection = prov.ProjectRefs
					}
					return q
				}

				for i := 0; i < 40; i++ {
					q := randomQuery()
					if q.Validate() != nil {
						continue
					}
					want := canonicalEntries(core.EvalQuery(g, q))
					got := canonical(t, ctx, sharded.querier(), q)
					if want != got {
						t.Fatalf("random query %d (%s):\noracle:\n%s\nsharded:\n%s", i, q.Key(), want, got)
					}
				}

				// Mid-traversal write under a pinned cursor: the page
				// sequence must serve the pre-write evaluation, while the
				// write lands normally for fresh queries.
				paged := prov.QDescendantsOfOutputs("blast")
				paged.Limit = 2
				stripped := paged
				stripped.Limit = 0
				var wantRefs []prov.Ref
				for _, e := range core.EvalQuery(g, stripped) {
					wantRefs = append(wantRefs, e.Ref)
				}
				got, cursor := collectPage(t, ctx, sharded.querier(), paged)
				if err := sharded.store.PutBatch(ctx, []pass.FlushEvent{writeEvent("/mid/write")}); err != nil {
					t.Fatal(err)
				}
				for cursor != "" {
					next := paged
					next.Cursor = cursor
					var page []prov.Ref
					page, cursor = collectPage(t, ctx, sharded.querier(), next)
					got = append(got, page...)
				}
				if fmt.Sprint(got) != fmt.Sprint(wantRefs) {
					t.Fatalf("pinned page sequence diverged from the pre-write evaluation:\ngot:  %v\nwant: %v", got, wantRefs)
				}
			})
		}
	}
}
