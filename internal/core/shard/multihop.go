// Distributed multi-hop query planning: the router's indexed alternative
// to materializing the union graph. Seeds resolve on their home shards
// via the members' native plans (tool instances, predicate pushdown,
// pinned fetches, starts-with listings); each subsequent BFS level fans a
// dependents-of-refs (or, for ancestor walks, an inputs-of-refs fetch)
// descriptor out to every shard and merges the frontiers. Every round is
// a natively planned shard descriptor, so Q.2/Q.3-class lineage keeps
// SimpleDB's indexed pricing instead of paying a per-shard Q.1 scan.
//
// The traversal is written once, against the mhRunner interface, and
// driven by two executors: mhRun fans the rounds out live, mhPlan walks
// the identical rounds in plan space (per-shard Explain for the cost,
// core.RefPlanner for the next frontier). Sharing the driver is what
// keeps Router.Explain's composed estimate equal to the metered run.
package shard

import (
	"context"
	"fmt"
	"strings"

	"passcloud/internal/core"
	"passcloud/internal/prov"
)

// pushableValue mirrors the members' predicate-pushdown bound: values
// longer than the overflow threshold are pointer-encoded in the backend
// and cannot be matched inside a query expression.
func pushableValue(v string) bool { return len(v) <= core.OverflowThreshold }

// multihopEligible reports whether every round of q's traversal has a
// native indexed plan on the members, i.e. whether the distributed
// multi-hop path answers q without any shard falling back to a scan. The
// shapes left out keep the (cached) union graph: seed sections that need
// the whole repository anyway (unfiltered multi-hop descendants of
// everything, ancestor walks without pinned or tool seeds) and filter
// values past the pushdown bound without pinned refs to fetch instead.
func multihopEligible(q prov.Query) bool {
	filters := q.AttrFilters()
	if q.Tool != "" {
		// Tool seeds resolve in two indexed rounds (instances, then their
		// dependents); the member layers themselves would fall back to a
		// graph walk for a pinned or unpushable tool section, and so does
		// the router.
		if len(q.Refs) > 0 || !pushableValue(q.Tool) {
			return false
		}
		for _, f := range filters {
			if !pushableValue(f.Value) {
				return false
			}
		}
		return true
	}
	switch q.Direction {
	case prov.TraverseDescendants:
		if len(q.Refs) > 0 {
			// Pinned seeds: filters (any value size) apply via per-ref
			// fetches on the candidates' home shards.
			return true
		}
		if len(filters) > 0 {
			for _, f := range filters {
				if !pushableValue(f.Value) {
					return false
				}
			}
			return true
		}
		// Record-free prefix seeds: one starts-with round covers level 1.
		// Seeding on everything means touching every subject anyway — the
		// union graph is the cheaper whole-repository representation.
		return q.RefPrefix != ""
	case prov.TraverseAncestors:
		return len(q.Refs) > 0
	default:
		// TraverseNone without a Tool is always distributable and never
		// reaches the multi-hop planner.
		return false
	}
}

// mhRunner is one multi-hop execution substrate. fanRefs fans a round
// descriptor to every shard and returns the merged reference set,
// deduplicated and ref-sorted; full-projection rounds also retain (run)
// or cost (plan) the fetched records. expandAncestors fetches the
// frontier's records from every shard and returns the union of their
// direct inputs. fetchFull tops up records for refs no earlier round
// fetched.
type mhRunner interface {
	fanRefs(q prov.Query, note string) ([]prov.Ref, error)
	expandAncestors(frontier []prov.Ref) ([]prov.Ref, error)
	fetchFull(refs []prov.Ref) error
}

// multihop drives the distributed traversal for q on x and returns the
// result references in canonical ref order. The rounds — and therefore
// the cost — are identical for both executors; only where the answers
// come from differs (the shards vs. their plan catalogs).
//
// The traversal mirrors core.EvalQuery exactly: seeds are never emitted
// at level zero, a node is emitted when first reached (seeds only when
// IncludeSeeds), and a node expands at most once.
func (r *Router) multihop(x mhRunner, q prov.Query) ([]prov.Ref, error) {
	filters := q.AttrFilters()

	var (
		seeds   []prov.Ref
		isSeed  func(prov.Ref) bool
		level   int
		found   = make(map[prov.Ref]bool)
		visited = make(map[prov.Ref]bool)
		out     []prov.Ref
	)

	emit := func(n prov.Ref) {
		if !found[n] && (q.IncludeSeeds || !isSeed(n)) {
			found[n] = true
			out = append(out, n)
		}
	}

	switch {
	case q.Tool != "":
		// Round 1: instances of the tool, on their home shards.
		instances, err := x.fanRefs(prov.Query{
			Attrs:      []prov.AttrFilter{{Attr: prov.AttrName, Value: q.Tool}},
			Projection: prov.ProjectRefs,
		}, "tool instances on their home shards")
		if err != nil {
			return nil, err
		}
		// Round 2: subjects that list any instance among their inputs.
		var cands []prov.Ref
		if len(instances) > 0 {
			cands, err = x.fanRefs(prov.Query{
				Refs:         instances,
				Direction:    prov.TraverseDescendants,
				Depth:        1,
				IncludeSeeds: true,
				Projection:   prov.ProjectRefs,
			}, "dependents of the instances")
			if err != nil {
				return nil, err
			}
		}
		cands = filterRefPrefix(cands, q.RefPrefix)
		// Round 3 (only under attribute filters): fetch the candidates on
		// their home shards and keep the ones whose records match.
		if len(filters) > 0 && len(cands) > 0 {
			cands, err = x.fanRefs(prov.Query{
				Refs:       cands,
				Attrs:      filters,
				Projection: prov.ProjectRefs,
			}, "apply attribute filters on the candidates' home shards")
			if err != nil {
				return nil, err
			}
		}
		seeds = cands

	case len(q.Refs) > 0:
		seeds = dedupeRefs(q.Refs)
		seeds = filterRefPrefix(seeds, q.RefPrefix)
		if len(filters) > 0 && len(seeds) > 0 {
			var err error
			seeds, err = x.fanRefs(prov.Query{
				Refs:       seeds,
				Attrs:      filters,
				Projection: prov.ProjectRefs,
			}, "apply attribute filters on the pinned refs' home shards")
			if err != nil {
				return nil, err
			}
		}

	case len(filters) > 0:
		var err error
		seeds, err = x.fanRefs(prov.Query{
			Attrs:      filters,
			RefPrefix:  q.RefPrefix,
			Projection: prov.ProjectRefs,
		}, "predicate pushdown on every shard")
		if err != nil {
			return nil, err
		}

	default:
		// Record-free prefix seeds, descendants only (eligibility): one
		// starts-with round covers every matching version's children at
		// once, exactly like the members' native listing plan. The seed
		// set itself stays implicit — the prefix predicate decides both
		// seed-ness and (with the visited set) expansion.
		prefix := q.RefPrefix
		isSeed = func(n prov.Ref) bool { return strings.HasPrefix(n.String(), prefix) }
		level1, err := x.fanRefs(prov.Query{
			RefPrefix:    prefix,
			Direction:    prov.TraverseDescendants,
			Depth:        1,
			IncludeSeeds: true,
			Projection:   prov.ProjectRefs,
		}, "starts-with covers every matching version's children at once")
		if err != nil {
			return nil, err
		}
		frontier := make([]prov.Ref, 0, len(level1))
		for _, n := range level1 {
			emit(n)
			if !visited[n] && !isSeed(n) {
				visited[n] = true
				frontier = append(frontier, n)
			}
		}
		return r.multihopWalk(x, q, frontier, isSeed, visited, found, out, 1)
	}

	seedSet := make(map[prov.Ref]bool, len(seeds))
	for _, s := range seeds {
		seedSet[s] = true
		visited[s] = true
	}
	isSeed = func(n prov.Ref) bool { return seedSet[n] }

	if q.Direction == prov.TraverseNone {
		// Tool filter without traversal: the seeds are the answer.
		prov.SortRefs(seeds)
		if q.Projection == prov.ProjectFull {
			if err := x.fetchFull(seeds); err != nil {
				return nil, err
			}
		}
		return seeds, nil
	}
	return r.multihopWalk(x, q, seeds, isSeed, visited, found, out, level)
}

// multihopWalk runs the per-level BFS: each level is one fan-out round
// (dependents-of-refs for descendants, an inputs-of-refs fetch for
// ancestors) whose merged result feeds core.EvalQuery's emit/expand
// rules. The frontier buffer is reused across levels.
func (r *Router) multihopWalk(x mhRunner, q prov.Query, frontier []prov.Ref,
	isSeed func(prov.Ref) bool, visited, found map[prov.Ref]bool, out []prov.Ref, level int) ([]prov.Ref, error) {
	for ; len(frontier) > 0 && (q.Depth == 0 || level < q.Depth); level++ {
		var next []prov.Ref
		var err error
		if q.Direction == prov.TraverseDescendants {
			next, err = x.fanRefs(prov.Query{
				Refs:         frontier,
				Direction:    prov.TraverseDescendants,
				Depth:        1,
				IncludeSeeds: true,
				Projection:   prov.ProjectRefs,
			}, fmt.Sprintf("level %d: dependents-of-refs fan-out", level+1))
		} else {
			next, err = x.expandAncestors(frontier)
		}
		if err != nil {
			return nil, err
		}
		frontier = frontier[:0]
		for _, n := range next {
			emitOK := !found[n] && (q.IncludeSeeds || !isSeed(n))
			if emitOK {
				found[n] = true
				out = append(out, n)
			}
			if !visited[n] && !isSeed(n) {
				visited[n] = true
				frontier = append(frontier, n)
			}
		}
	}
	prov.SortRefs(out)
	if q.Projection == prov.ProjectFull {
		if err := x.fetchFull(out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// dedupeRefs returns refs with duplicates removed, order preserved.
func dedupeRefs(refs []prov.Ref) []prov.Ref {
	seen := make(map[prov.Ref]bool, len(refs))
	out := make([]prov.Ref, 0, len(refs))
	for _, r := range refs {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}

// filterRefPrefix keeps the refs whose string form starts with prefix.
func filterRefPrefix(refs []prov.Ref, prefix string) []prov.Ref {
	if prefix == "" {
		return refs
	}
	out := refs[:0]
	for _, r := range refs {
		if strings.HasPrefix(r.String(), prefix) {
			out = append(out, r)
		}
	}
	return out
}

// --- live executor -----------------------------------------------------------

// mhRun fans rounds out to the shards. Records fetched by full-projection
// rounds accumulate in g (the traversal's record source for ancestor
// expansion and full-projection output); seen is the per-round merge
// scratch, reused across levels.
type mhRun struct {
	r       *Router
	ctx     context.Context
	g       *prov.Graph
	fetched map[prov.Ref]bool
	seen    map[prov.Ref]bool
	// mig is the migration window sampled once at run start, so every
	// round of one traversal filters the same double-read copies.
	mig *migration
}

func (r *Router) newMHRun(ctx context.Context) *mhRun {
	return &mhRun{
		r: r, ctx: ctx,
		g:       prov.NewGraph(),
		fetched: make(map[prov.Ref]bool),
		seen:    make(map[prov.Ref]bool),
		mig:     r.migSnapshot(),
	}
}

func (x *mhRun) fanRefs(q prov.Query, _ string) ([]prov.Ref, error) {
	r := x.r
	perShard := make([][]core.Entry, len(r.shards))
	err := core.RunLimited(x.ctx, len(r.shards), r.fanout, func(i int) error {
		entries, err := collectMerged(r.shards[i].Query(x.ctx, q))
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		perShard[i] = x.mig.filterEntries(i, entries)
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, entries := range perShard {
		total += len(entries)
	}
	clear(x.seen)
	out := make([]prov.Ref, 0, total)
	for _, entries := range perShard {
		for _, e := range entries {
			if q.Projection == prov.ProjectFull && len(e.Records) > 0 {
				x.g.AddAll(e.Records)
			}
			if !x.seen[e.Ref] {
				x.seen[e.Ref] = true
				out = append(out, e.Ref)
			}
		}
	}
	if q.Projection == prov.ProjectFull {
		// Every requested ref was probed on every shard; re-fetching a
		// ghost would find nothing new.
		for _, ref := range q.Refs {
			x.fetched[ref] = true
		}
	}
	prov.SortRefs(out)
	return out, nil
}

func (x *mhRun) expandAncestors(frontier []prov.Ref) ([]prov.Ref, error) {
	if _, err := x.fanRefs(prov.Query{Refs: frontier, Projection: prov.ProjectFull},
		"inputs-of-refs: fetch the frontier's records"); err != nil {
		return nil, err
	}
	clear(x.seen)
	var parents []prov.Ref
	for _, f := range frontier {
		for _, p := range x.g.Inputs(f) {
			if !x.seen[p] {
				x.seen[p] = true
				parents = append(parents, p)
			}
		}
	}
	prov.SortRefs(parents)
	return parents, nil
}

func (x *mhRun) fetchFull(refs []prov.Ref) error {
	missing := make([]prov.Ref, 0, len(refs))
	for _, ref := range refs {
		if !x.fetched[ref] {
			missing = append(missing, ref)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	_, err := x.fanRefs(prov.Query{Refs: missing, Projection: prov.ProjectFull},
		"fetch matched records")
	return err
}

// runMultihop materializes one distributed multi-hop evaluation: the
// result refs in canonical order, with records from the rounds' fetches
// under ProjectFull.
func (r *Router) runMultihop(ctx context.Context, q prov.Query) ([]core.Entry, error) {
	x := r.newMHRun(ctx)
	refs, err := r.multihop(x, q)
	if err != nil {
		return nil, err
	}
	entries := make([]core.Entry, len(refs))
	for i, ref := range refs {
		entries[i] = core.Entry{Ref: ref}
		if q.Projection == prov.ProjectFull {
			entries[i].Records = x.g.Records(ref)
		}
	}
	return entries, nil
}

// --- plan-space executor -----------------------------------------------------

// mhPlan walks the same rounds in plan space: each round folds the
// per-shard Explains into the composite plan and predicts the merged
// frontier with core.RefPlanner. allPlanned turns false if any shard
// cannot predict a round's refs (defensive — eligibility requires every
// member to be a RefPlanner); the plan then stops claiming exactness.
type mhPlan struct {
	r          *Router
	p          *core.QueryPlan
	fetched    map[prov.Ref]bool
	round      int
	cached     bool
	allPlanned bool
}

func (r *Router) newMHPlan(p *core.QueryPlan) *mhPlan {
	return &mhPlan{r: r, p: p, fetched: make(map[prov.Ref]bool), cached: true, allPlanned: true}
}

func (x *mhPlan) fanRefs(q prov.Query, note string) ([]prov.Ref, error) {
	r := x.r
	x.round++
	x.p.AddStep("-", "round", 0, fmt.Sprintf("round %d: %s", x.round, note))
	plans := make([]core.QueryPlan, len(r.shards))
	for i, s := range r.shards {
		plans[i] = s.Explain(q)
	}
	x.cached = foldPlans(x.p, plans) && x.cached

	seen := make(map[prov.Ref]bool)
	var out []prov.Ref
	for _, s := range r.shards {
		rp, ok := s.(core.RefPlanner)
		if !ok {
			x.allPlanned = false
			continue
		}
		refs, ok := rp.PlanQueryRefs(q)
		if !ok {
			x.allPlanned = false
			continue
		}
		for _, ref := range refs {
			if !seen[ref] {
				seen[ref] = true
				out = append(out, ref)
			}
		}
	}
	if q.Projection == prov.ProjectFull {
		for _, ref := range q.Refs {
			x.fetched[ref] = true
		}
	}
	prov.SortRefs(out)
	return out, nil
}

func (x *mhPlan) expandAncestors(frontier []prov.Ref) ([]prov.Ref, error) {
	if _, err := x.fanRefs(prov.Query{Refs: frontier, Projection: prov.ProjectFull},
		"inputs-of-refs: fetch the frontier's records"); err != nil {
		return nil, err
	}
	// The next frontier comes from the virtual inputs-of-refs descriptor
	// every RefPlanner supports — no extra round, the fetch above already
	// paid for the records.
	seen := make(map[prov.Ref]bool)
	var parents []prov.Ref
	for _, s := range x.r.shards {
		rp, ok := s.(core.RefPlanner)
		if !ok {
			x.allPlanned = false
			continue
		}
		refs, ok := rp.PlanQueryRefs(prov.Query{
			Refs:         frontier,
			Direction:    prov.TraverseAncestors,
			Depth:        1,
			IncludeSeeds: true,
			Projection:   prov.ProjectRefs,
		})
		if !ok {
			x.allPlanned = false
			continue
		}
		for _, ref := range refs {
			if !seen[ref] {
				seen[ref] = true
				parents = append(parents, ref)
			}
		}
	}
	prov.SortRefs(parents)
	return parents, nil
}

func (x *mhPlan) fetchFull(refs []prov.Ref) error {
	missing := make([]prov.Ref, 0, len(refs))
	for _, ref := range refs {
		if !x.fetched[ref] {
			missing = append(missing, ref)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	_, err := x.fanRefs(prov.Query{Refs: missing, Projection: prov.ProjectFull},
		"fetch matched records")
	return err
}

// explainMultihop composes the rounds the live traversal will run into p.
func (r *Router) explainMultihop(p *core.QueryPlan, q prov.Query) {
	x := r.newMHPlan(p)
	if _, err := r.multihop(x, q); err != nil {
		// The plan-space executor never errors; keep the composite honest
		// if that ever changes.
		p.Exact = false
		return
	}
	if !x.allPlanned {
		p.Exact = false
	}
	p.Cached = x.cached && p.EstOps == 0
}
