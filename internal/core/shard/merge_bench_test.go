package shard

// Allocation benchmarks for the router's hot merge paths: the cross-shard
// entry fan-in (entryMerger) and the multi-hop frontier dedupe. Run with
//
//	go test -bench BenchmarkMerge -benchmem ./internal/core/shard/
//
// to see per-op allocation counts; the pre-sized merger should fold a wide
// fan-in without map rehashes or slice regrowth beyond the initial arena.

import (
	"fmt"
	"testing"

	"passcloud/internal/prov"

	"passcloud/internal/core"
)

// benchShardEntries fabricates nShards per-shard result slices of n entries
// each. A fraction of refs repeats across shards (pinned refs echoed by
// non-home shards) so the merger exercises both the append and the
// concatenate branch.
func benchShardEntries(nShards, n int) [][]core.Entry {
	perShard := make([][]core.Entry, nShards)
	for s := range perShard {
		entries := make([]core.Entry, 0, n)
		for i := 0; i < n; i++ {
			ref := prov.Ref{Object: prov.ObjectID(fmt.Sprintf("/bench/obj-%04d", i)), Version: 1}
			if i%8 != 0 { // 1-in-8 refs shared across every shard
				ref.Object = prov.ObjectID(fmt.Sprintf("/bench/s%d/obj-%04d", s, i))
			}
			entries = append(entries, core.Entry{
				Ref:     ref,
				Records: []prov.Record{{Subject: ref, Attr: prov.AttrType, Value: prov.StringValue("file")}},
			})
		}
		perShard[s] = entries
	}
	return perShard
}

func benchMergeFanIn(b *testing.B, nShards, n int, sized bool) {
	perShard := benchShardEntries(nShards, n)
	total := 0
	for _, entries := range perShard {
		total += len(entries)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		var merged *entryMerger
		if sized {
			merged = newEntryMergerCap(total)
		} else {
			merged = newEntryMerger()
		}
		for _, entries := range perShard {
			for _, e := range entries {
				merged.add(e)
			}
		}
		if len(merged.entries) == 0 {
			b.Fatal("empty merge")
		}
	}
}

func BenchmarkMergeFanInSized(b *testing.B) {
	for _, shards := range []int{4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchMergeFanIn(b, shards, 256, true)
		})
	}
}

func BenchmarkMergeFanInUnsized(b *testing.B) {
	for _, shards := range []int{4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchMergeFanIn(b, shards, 256, false)
		})
	}
}

// BenchmarkMergeFrontierDedupe covers the multi-hop round boundary: the
// concatenated per-shard frontier is deduped and re-sorted once per BFS
// level.
func BenchmarkMergeFrontierDedupe(b *testing.B) {
	refs := make([]prov.Ref, 0, 4*256)
	for s := 0; s < 4; s++ {
		for i := 0; i < 256; i++ {
			refs = append(refs, prov.Ref{Object: prov.ObjectID(fmt.Sprintf("/bench/obj-%04d", i%96)), Version: prov.Version(1 + i%3)})
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		out := dedupeRefs(refs)
		prov.SortRefs(out)
		if len(out) == 0 {
			b.Fatal("empty dedupe")
		}
	}
}
