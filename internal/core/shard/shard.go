// Package shard scales the provenance store out: a Router composes N
// independent store instances — any of the paper's three architectures —
// behind the same core.Store / core.Querier surface a single store
// presents, so everything above the storage layer (pass.System, the
// public Client, the harnesses) is shard-oblivious.
//
// Placement is consistent hashing of object IDs onto shards (a fixed
// ring of virtual nodes, so shard counts can change between deployments
// without reshuffling every object). All versions of one object land on
// one shard; transient ancestors (processes, pipes) travel with the file
// flush that triggered them, preserving each architecture's ride-along
// write amortization. Op parity with the unsharded store is exact for
// the S3-only and S3+SimpleDB write paths; batches that split across
// shards pay per-sub-batch envelope costs on the WAL architecture (a
// begin/commit pair each) and re-round SimpleDB's ceil(K/25) grouping,
// a few percent at small shard counts — the load harness reports it as
// the amplification column.
//
// Queries fan out and merge ref-sorted. Descriptors whose answer is
// shard-local — any filter combination without a Tool predicate, plus
// single-hop descendant traversals seeded by record-free filters (the
// Dependents idiom) — run each shard's native plan and merge the
// streams. Descriptors that need edges from more than one shard (tool
// queries, multi-hop lineage, pinned ancestor walks) run the distributed
// multi-hop planner when every member can plan references client-side
// (core.RefPlanner): seeds resolve on their home shards via native plans,
// then each BFS level fans one dependents-of-refs (or inputs-of-refs)
// descriptor to all shards and merges frontiers — per-level indexed
// pricing instead of per-shard scans. The remaining whole-graph shapes
// evaluate on the union graph, which the router caches under the member
// stamps with per-shard invalidation: repeated sweeps on an unchanged
// namespace cost zero cloud ops and no rebuild, and one write refetches
// only the written shard's contribution. Explain composes honestly on
// every path: the plan is the sum of the per-shard plans — round by
// round, on the multi-hop path — the router will actually run.
package shard

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"iter"
	"sort"
	"strings"
	"sync"

	"passcloud/internal/core"
	"passcloud/internal/pass"
	"passcloud/internal/prov"
)

// Store is the composed per-shard contract: a queryable provenance store
// that can report its repository stamp (so the router can mint composite
// pagination cursors). All three architecture stores satisfy it.
type Store interface {
	core.Store
	core.Querier
	core.Stamped
}

// Config parameterizes a Router.
type Config struct {
	// Shards are the member stores, in ring order. Required, non-empty.
	// Members are typically bound to disjoint cloud namespaces (their own
	// bucket/domain/queue and billing key); the router never assumes they
	// share anything.
	Shards []Store
	// VirtualNodes is the number of ring points per shard (default 256).
	// More points smooth placement balance at the cost of a larger ring;
	// 256 keeps the worst shard within ~15% of the mean for workloads of
	// a few dozen objects and within a few percent at scale.
	VirtualNodes int
	// FanOut bounds concurrent per-shard calls during batch writes and
	// query fan-outs (default: number of shards).
	FanOut int
}

// Router is a sharded provenance store. It implements core.Store,
// core.Querier, core.GraphQuerier, core.Syncer and core.Stamped, and is
// safe for concurrent use.
type Router struct {
	shards []Store
	fanout int

	// ringMu guards the ring's owner assignment, the ring epoch and the
	// migration window state. Ring point hashes are immutable after New;
	// only owners change (FlipRing), so readers take the read lock.
	ringMu sync.RWMutex
	ring   []ringPoint
	// epoch counts ring reassignments. It joins the composite stamp (only
	// when non-zero, keeping never-migrated routers byte-identical to the
	// pre-epoch format), so a flip expires evicted cursor pins exactly
	// like a member write does.
	epoch int
	// mig is the active migration window, nil when idle. Published as an
	// immutable snapshot: transitions replace the pointer, never mutate a
	// published value, so query paths read it once per evaluation.
	mig *migration

	// refPlanned records whether every member implements core.RefPlanner,
	// the capability the distributed multi-hop planner needs to compose
	// Explain round by round. Mixed or incapable member sets keep the
	// union-graph path for non-distributable descriptors.
	refPlanned bool

	// pins retains paginated queries' evaluated result sets; cursors bind
	// to the concatenation of the member stamps, so a write to any shard
	// moves fresh queries to a new generation while resident pins keep
	// serving in-flight page sequences.
	pins core.Pins

	// gcache retains the union graph between whole-graph evaluations,
	// keyed by per-shard stamps so one shard's write invalidates only that
	// shard's contribution.
	gcache graphCache

	// mu serializes Sync against itself (member Syncs are already safe;
	// this just keeps marker sequences deterministic under concurrent
	// drains).
	mu sync.Mutex
}

// ringPoint is one virtual node on the hash ring.
type ringPoint struct {
	hash  uint64
	shard int
}

// New builds a router over the given shards.
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("shard: Config.Shards is required")
	}
	vnodes := cfg.VirtualNodes
	if vnodes <= 0 {
		vnodes = 256
	}
	fanout := cfg.FanOut
	if fanout <= 0 {
		fanout = len(cfg.Shards)
	}
	r := &Router{shards: cfg.Shards, fanout: fanout}
	r.refPlanned = true
	for _, s := range cfg.Shards {
		if _, ok := s.(core.RefPlanner); !ok {
			r.refPlanned = false
			break
		}
	}
	r.ring = make([]ringPoint, 0, len(cfg.Shards)*vnodes)
	for i := range cfg.Shards {
		for v := 0; v < vnodes; v++ {
			r.ring = append(r.ring, ringPoint{hash: hash64(fmt.Sprintf("shard-%d/vn-%d", i, v)), shard: i})
		}
	}
	sort.Slice(r.ring, func(i, j int) bool {
		if r.ring[i].hash != r.ring[j].hash {
			return r.ring[i].hash < r.ring[j].hash
		}
		return r.ring[i].shard < r.ring[j].shard
	})
	return r, nil
}

// hash64 is the placement hash: FNV-1a finished with a murmur-style
// avalanche. Raw FNV of near-identical keys ("/t/w0/f1", "/t/w0/f2", …)
// clusters in a narrow band of the 64-bit space — whole workloads would
// land on one ring arc — so the finalizer spreads every bit before the
// ring lookup. Stable across processes (no per-run seeding): placement
// must agree between clients and across restarts.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// NumShards returns the shard count.
func (r *Router) NumShards() int { return len(r.shards) }

// Shard returns the i-th member store.
func (r *Router) Shard(i int) Store { return r.shards[i] }

// ShardFor places an object on the ring: the first virtual node at or
// after the object's hash owns it (wrapping). Every version of an object
// maps to the same shard.
func (r *Router) ShardFor(object prov.ObjectID) int {
	r.ringMu.RLock()
	defer r.ringMu.RUnlock()
	h := hash64(string(object))
	i := sort.Search(len(r.ring), func(i int) bool { return r.ring[i].hash >= h })
	if i == len(r.ring) {
		i = 0
	}
	return r.ring[i].shard
}

// Name implements core.Store.
func (r *Router) Name() string {
	return fmt.Sprintf("%s x%d", r.shards[0].Name(), len(r.shards))
}

// Properties implements core.Store: the conjunction of the members'
// guarantees. Causal ordering across shards is eventual — a sub-batch on
// one shard can land before its ancestors' sub-batch on another, and the
// flush layer's retry closes the gap — which matches the per-architecture
// "eventually recorded" reading of Table 1.
func (r *Router) Properties() core.Properties {
	p := core.Properties{Atomicity: true, Consistency: true, CausalOrdering: true, EfficientQuery: true}
	for _, s := range r.shards {
		sp := s.Properties()
		p.Atomicity = p.Atomicity && sp.Atomicity
		p.Consistency = p.Consistency && sp.Consistency
		p.CausalOrdering = p.CausalOrdering && sp.CausalOrdering
		p.EfficientQuery = p.EfficientQuery && sp.EfficientQuery
	}
	return p
}

// StampToken implements core.Stamped: the concatenation of every member's
// stamp. Any member write yields a new composite token. The separator
// must stay out of the cursor encoding's field alphabet ("|"). After a
// ring reassignment the token gains a leading ring-epoch component, so a
// flip moves the composite stamp even if no member wrote — evicted
// cursor pins then expire instead of silently re-evaluating against the
// new placement. Epoch zero omits the component, keeping a never-
// migrated router's tokens byte-identical to the pre-epoch format.
func (r *Router) StampToken() string {
	r.ringMu.RLock()
	epoch := r.epoch
	r.ringMu.RUnlock()
	parts := make([]string, len(r.shards))
	for i, s := range r.shards {
		parts[i] = s.StampToken()
	}
	token := strings.Join(parts, ",")
	if epoch > 0 {
		token = fmt.Sprintf("e%d,%s", epoch, token)
	}
	return token
}

// --- write path --------------------------------------------------------------

// routeBatch partitions a flush batch into per-shard sub-batches,
// preserving causal order within each. Persistent events place by object
// hash; transient events travel with the next persistent event of the
// batch (their triggering descendant, by PASS flush order), so
// architectures whose transients ride a carrier PUT keep that
// amortization shard-locally. Trailing transients follow the batch's last
// file; an all-transient batch routes by its first subject.
func (r *Router) routeBatch(batch []pass.FlushEvent) [][]pass.FlushEvent {
	subs := make([][]pass.FlushEvent, len(r.shards))
	var pending []pass.FlushEvent
	lastShard := -1
	for _, ev := range batch {
		if !ev.Persistent() {
			pending = append(pending, ev)
			continue
		}
		i := r.ShardFor(ev.Ref.Object)
		subs[i] = append(subs[i], pending...)
		subs[i] = append(subs[i], ev)
		pending = pending[:0]
		lastShard = i
	}
	if len(pending) > 0 {
		i := lastShard
		if i < 0 {
			i = r.ShardFor(pending[0].Ref.Object)
		}
		subs[i] = append(subs[i], pending...)
	}
	return subs
}

// PutBatch implements core.Store: the batch splits into per-shard
// sub-batches that execute concurrently under the FanOut bound. Failures
// merge into one typed core.PartialWriteError whose Landed set is the
// union of every shard's fully applied events (a shard that succeeded
// outright contributes its whole sub-batch), so the flush layer retries
// exactly the remainder, shard placement included.
func (r *Router) PutBatch(ctx context.Context, batch []pass.FlushEvent) error {
	subs := r.routeBatch(batch)
	var active []int
	for i, sub := range subs {
		if len(sub) > 0 {
			active = append(active, i)
		}
	}
	if len(active) == 0 {
		return nil
	}

	var mu sync.Mutex
	var landed []prov.Ref
	var errs []error
	err := core.RunLimited(ctx, len(active), r.fanout, func(k int) error {
		i := active[k]
		sub := subs[i]
		err := r.shards[i].PutBatch(ctx, sub)
		mu.Lock()
		defer mu.Unlock()
		switch {
		case err == nil:
			for _, ev := range sub {
				landed = append(landed, ev.Ref)
			}
		default:
			var pw *core.PartialWriteError
			if errors.As(err, &pw) {
				landed = append(landed, pw.Landed...)
				err = pw.Err
			}
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
		// Never abort sibling sub-batches on one shard's failure: each
		// shard makes whatever progress it can, and the merged partial
		// error reports it all.
		return nil
	})
	mu.Lock()
	defer mu.Unlock()
	if err != nil { // context cancellation from RunLimited itself
		errs = append(errs, err)
	}
	if len(errs) == 0 {
		return nil
	}
	return core.PartialWrite(landed, errors.Join(errs...))
}

// Get implements core.Store: one read on the object's home shard.
func (r *Router) Get(ctx context.Context, object prov.ObjectID) (*core.Object, error) {
	return r.shards[r.ShardFor(object)].Get(ctx, object)
}

// Provenance implements core.Store. File versions live on their home
// shard; a transient subject's records live wherever its carrier file
// landed, so a home-shard miss falls back to probing the remaining
// shards concurrently under the FanOut bound — one extra round trip of
// latency instead of up to N-1 sequential ones.
func (r *Router) Provenance(ctx context.Context, ref prov.Ref) ([]prov.Record, error) {
	mig := r.migSnapshot()
	home := r.ShardFor(ref.Object)
	records, err := r.shards[home].Provenance(ctx, ref)
	if err == nil || !errors.Is(err, core.ErrNotFound) {
		return records, err
	}
	others := make([]int, 0, len(r.shards)-1)
	for i := range r.shards {
		// Skip the non-authoritative copy of a mid-migration arc: the home
		// read above already consulted the authoritative side (the active
		// ring always points there), so the probe must not surface the
		// double-read window's other copy.
		if i != home && !mig.excluded(i, ref.Object) {
			others = append(others, i)
		}
	}
	var mu sync.Mutex
	var found []prov.Record
	ok := false
	err = core.RunLimited(ctx, len(others), r.fanout, func(k int) error {
		records, err := r.shards[others[k]].Provenance(ctx, ref)
		if err != nil {
			if errors.Is(err, core.ErrNotFound) {
				return nil
			}
			return err
		}
		mu.Lock()
		// Records exist on exactly one shard, so first-hit-wins is the
		// only hit; keep the guard anyway for defensive determinism.
		if !ok {
			found, ok = records, true
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	if ok {
		return found, nil
	}
	return nil, fmt.Errorf("%w: %s", core.ErrNotFound, ref)
}

// Sync implements core.Syncer: drain every member that buffers
// client-side state.
func (r *Router) Sync(ctx context.Context) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var errs []error
	for i, s := range r.shards {
		if err := core.SyncStore(ctx, s); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// --- query path --------------------------------------------------------------

// distributable reports whether q's answer is the union of per-shard
// native evaluations. Subjects (and therefore their records and filter
// evidence) live on exactly one shard, so any pure filter section
// distributes — except Tool, whose evidence is the *input's* records,
// which may live on a different shard than the matching subject. A
// descendant traversal distributes only single-hop and only from
// record-free seeds (prefix or pinned refs): the edge to a child is
// stored with the child, but a second hop or a record-dependent seed
// filter would need another shard's records.
func distributable(q prov.Query) bool {
	if q.Tool != "" {
		return false
	}
	switch q.Direction {
	case prov.TraverseNone:
		return true
	case prov.TraverseDescendants:
		return q.Depth == 1 && len(q.AttrFilters()) == 0
	default: // ancestors: results are other shards' subjects
		return false
	}
}

// Query implements core.Querier. Entries stream ref-sorted (the fan-in
// merge order); paginated descriptors pin their evaluation under the
// composite stamp exactly like a single store does.
func (r *Router) Query(ctx context.Context, q prov.Query) iter.Seq2[core.Entry, error] {
	return func(yield func(core.Entry, error) bool) {
		if err := q.Validate(); err != nil {
			yield(core.Entry{}, err)
			return
		}
		if q.Limit > 0 || q.Cursor != "" {
			core.RunPaged(ctx, q, r.StampToken(), &r.pins, r.evalAll, yield)
			return
		}
		entries, err := r.evalAll(ctx, q)
		if err != nil {
			yield(core.Entry{}, err)
			return
		}
		for _, e := range entries {
			if !yield(e, nil) {
				return
			}
		}
	}
}

// Router query strategies, in preference order: the single-round fan-in
// for shard-local descriptors, the distributed multi-hop planner for
// traversals every member can plan natively, the (cached) union graph
// for whole-repository shapes.
const (
	planFanIn      = "fanout"
	planMultihop   = "multihop"
	planUnionGraph = "union-graph"
)

// strategyFor picks the evaluation strategy for a non-paginated
// descriptor. Query and Explain both route through it, so the plan always
// describes the path the run takes.
func (r *Router) strategyFor(q prov.Query) string {
	if distributable(q) {
		return planFanIn
	}
	if r.refPlanned && multihopEligible(q) {
		return planMultihop
	}
	return planUnionGraph
}

// evalAll materializes one non-paginated evaluation under the strategy
// strategyFor picks. Results are ref-sorted with one entry per ref.
func (r *Router) evalAll(ctx context.Context, q prov.Query) ([]core.Entry, error) {
	switch r.strategyFor(q) {
	case planFanIn:
		return r.fanIn(ctx, q)
	case planMultihop:
		return r.runMultihop(ctx, q)
	}
	g, err := r.unionGraph(ctx)
	if err != nil {
		return nil, err
	}
	return core.EvalQuery(g, q), nil
}

// fanIn runs q on every shard's native engine concurrently and merges the
// results ref-sorted. Entries for the same ref from several shards (a
// pinned ref echoed by non-home shards) merge into one, their records
// concatenated; within one shard, a subject whose records streamed in
// pieces is merged the same way.
func (r *Router) fanIn(ctx context.Context, q prov.Query) ([]core.Entry, error) {
	mig := r.migSnapshot()
	perShard := make([][]core.Entry, len(r.shards))
	err := core.RunLimited(ctx, len(r.shards), r.fanout, func(i int) error {
		entries, err := collectMerged(r.shards[i].Query(ctx, q))
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		perShard[i] = mig.filterEntries(i, entries)
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, entries := range perShard {
		total += len(entries)
	}
	merged := newEntryMergerCap(total)
	for _, entries := range perShard {
		for _, e := range entries {
			merged.add(e)
		}
	}
	out := merged.entries
	core.SortEntries(out)
	return out, nil
}

// collectMerged drains one shard's stream into one entry per ref.
func collectMerged(seq iter.Seq2[core.Entry, error]) ([]core.Entry, error) {
	merged := newEntryMerger()
	for e, err := range seq {
		if err != nil {
			return nil, err
		}
		merged.add(e)
	}
	return merged.entries, nil
}

// entryMerger folds a stream of entries into one entry per ref,
// concatenating records of duplicate refs in arrival order — the one
// merge rule both per-shard piece merging and cross-shard fan-in use.
type entryMerger struct {
	entries []core.Entry
	idx     map[prov.Ref]int
}

func newEntryMerger() *entryMerger {
	return &entryMerger{idx: make(map[prov.Ref]int)}
}

// newEntryMergerCap pre-sizes the merger for a known upper bound of
// distinct refs, so wide fan-ins fold without rehash/regrow churn.
func newEntryMergerCap(n int) *entryMerger {
	return &entryMerger{idx: make(map[prov.Ref]int, n), entries: make([]core.Entry, 0, n)}
}

func (m *entryMerger) add(e core.Entry) {
	if j, ok := m.idx[e.Ref]; ok {
		m.entries[j].Records = append(m.entries[j].Records, e.Records...)
		return
	}
	m.idx[e.Ref] = len(m.entries)
	m.entries = append(m.entries, e)
}

// graphCache retains the union graph between whole-graph evaluations.
// Each shard's Q.1 contribution is pinned under the stamp the shard
// reported when it was fetched; a member write moves that shard's stamp
// and invalidates exactly its contribution. An unchanged namespace
// therefore answers repeated union-graph queries at zero cloud ops
// without re-merging records client-side.
type graphCache struct {
	mu      sync.Mutex
	fetched []bool
	stamps  []string
	parts   [][]prov.Record
	graph   *prov.Graph
}

// validFor reports whether shard i's cached contribution is current at
// stamp — and the merged graph exists, so a union-graph query would serve
// that contribution without touching the shard.
func (c *graphCache) validFor(i int, stamp string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.graph != nil && i < len(c.fetched) && c.fetched[i] && c.stamps[i] == stamp
}

// unionGraph materializes every shard's provenance into one graph by
// draining each shard's Q.1 stream — served from the router's own graph
// cache when the shard's stamp is unchanged (zero cloud ops), from the
// shard's warm snapshot when it has one, and by a full native pass
// otherwise (exactly what the composite Explain predicts). The returned
// graph is shared and must be treated as read-only.
func (r *Router) unionGraph(ctx context.Context) (*prov.Graph, error) {
	mig := r.migSnapshot()
	c := &r.gcache
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fetched == nil {
		c.fetched = make([]bool, len(r.shards))
		c.stamps = make([]string, len(r.shards))
		c.parts = make([][]prov.Record, len(r.shards))
	}
	// Sample stamps before fetching: a write landing mid-fetch leaves the
	// recorded stamp older than the data, so the next call conservatively
	// refetches that shard.
	stale := make([]int, 0, len(r.shards))
	cur := make([]string, len(r.shards))
	for i, s := range r.shards {
		cur[i] = s.StampToken()
		if !c.fetched[i] || c.stamps[i] != cur[i] {
			stale = append(stale, i)
		}
	}
	if len(stale) == 0 && c.graph != nil && mig == nil {
		return c.graph, nil
	}
	err := core.RunLimited(ctx, len(stale), r.fanout, func(k int) error {
		i := stale[k]
		var records []prov.Record
		for e, err := range r.shards[i].Query(ctx, prov.Q1()) {
			if err != nil {
				return fmt.Errorf("shard %d: %w", i, err)
			}
			records = append(records, e.Records...)
		}
		c.parts[i] = records
		return nil
	})
	if err != nil {
		// A partial refetch leaves unknown staleness behind; drop the
		// merged graph so the next call starts from the per-shard marks.
		c.graph = nil
		for _, i := range stale {
			c.fetched[i] = false
		}
		return nil, err
	}
	for _, i := range stale {
		c.fetched[i] = true
		c.stamps[i] = cur[i]
	}
	g := prov.NewGraph()
	for i, records := range c.parts {
		if mig == nil {
			g.AddAll(records)
			continue
		}
		// Mid-migration: the moved arc exists on both sides of the copy.
		// Cached parts stay raw (keyed by stamp, so they survive the
		// window), but the merged graph drops the non-authoritative copy
		// — and is never cached, since the filter changes at each
		// migration state transition, not at a member stamp.
		kept := make([]prov.Record, 0, len(records))
		for _, rec := range records {
			if !mig.excluded(i, rec.Subject.Object) {
				kept = append(kept, rec)
			}
		}
		g.AddAll(kept)
	}
	if mig == nil {
		c.graph = g
	} else {
		c.graph = nil
	}
	return g, nil
}

// ProvenanceGraph implements core.GraphQuerier: the union of every
// shard's graph, served from the router's graph cache when the member
// stamps are unchanged. The result is shared: read-only.
func (r *Router) ProvenanceGraph(ctx context.Context) (*prov.Graph, error) {
	return r.unionGraph(ctx)
}

// Explain implements core.Querier: the plan is the sum of the per-shard
// plans the router will actually run — each shard's native plan for the
// descriptor on the fan-out path, round-by-round composed plans on the
// distributed multi-hop path, each shard's Q.1 plan (or its cached
// router-snapshot contribution) on the union-graph path — with identical
// operation classes merged across shards within each round. Cached and
// Exact hold only when they hold on every shard. A paginated descriptor
// whose pin was evicted at an unchanged generation re-evaluates; its
// strategy carries a "pinned-reeval/" prefix so the output is
// distinguishable from a fresh query's plan.
func (r *Router) Explain(q prov.Query) core.QueryPlan {
	p := core.QueryPlan{Arch: r.Name(), Exact: true}
	if err := q.Validate(); err != nil {
		p.Strategy = "invalid"
		return p
	}
	reeval := false
	if q.Cursor != "" {
		if core.ExplainCursor(&p, q, &r.pins, r.StampToken()) {
			return p
		}
		// Evicted pin at an unchanged composite stamp: fall through and
		// cost the re-evaluation.
		reeval = true
	}
	stripped := q
	stripped.Limit, stripped.Cursor = 0, ""

	strategy := r.strategyFor(stripped)
	p.Strategy = strategy
	switch strategy {
	case planFanIn:
		p.AddStep("-", strategy, 0, fmt.Sprintf("%d shards: per-shard native plans, ref-sorted fan-in merge", len(r.shards)))
		plans := make([]core.QueryPlan, len(r.shards))
		for i, s := range r.shards {
			plans[i] = s.Explain(stripped)
		}
		mergePlans(&p, plans)
	case planMultihop:
		p.AddStep("-", strategy, 0, fmt.Sprintf("%d shards: seeds via native plans, then one indexed fan-out round per BFS level", len(r.shards)))
		r.explainMultihop(&p, stripped)
	default:
		p.AddStep("-", strategy, 0, fmt.Sprintf("%d shards: materialize every shard's provenance (Q.1 per shard, cached contributions free), evaluate on the union graph", len(r.shards)))
		plans := make([]core.QueryPlan, len(r.shards))
		for i, s := range r.shards {
			if r.gcache.validFor(i, s.StampToken()) {
				plans[i] = core.QueryPlan{Cached: true, Exact: true}
				plans[i].AddStep("-", "router-snapshot", 0, "shard contribution cached at its current stamp: zero cloud ops")
				continue
			}
			plans[i] = s.Explain(prov.Q1())
		}
		mergePlans(&p, plans)
	}
	if reeval {
		p.Strategy = "pinned-reeval/" + p.Strategy
	}
	if q.Limit > 0 {
		p.AddStep("-", "paginate", 0, "first page evaluates fully, sorts and pins; later pages are free")
	}
	return p
}

// mergePlans folds per-shard plans into the composite: steps with the
// same (service, op) sum their counts, pushdown expressions deduplicate,
// and the composite is cached/exact only if every member is.
func mergePlans(p *core.QueryPlan, plans []core.QueryPlan) {
	cached := foldPlans(p, plans)
	p.Cached = cached && p.EstOps == 0
}

// foldPlans merges one round of per-shard plans into the composite
// without settling the composite's Cached bit, so multi-round plans can
// fold several rounds and AND the results: steps with the same (service,
// op) sum their counts, pushdown expressions deduplicate, Exact holds
// only if every member is exact. Returns whether every member plan was
// cached.
func foldPlans(p *core.QueryPlan, plans []core.QueryPlan) bool {
	type key struct{ service, op string }
	order := make([]key, 0, 8)
	steps := make(map[key]core.PlanStep)
	cached := true
	seenPush := make(map[string]bool)
	for _, sp := range plans {
		cached = cached && sp.Cached
		p.Exact = p.Exact && sp.Exact
		for _, expr := range sp.Pushdown {
			if !seenPush[expr] {
				seenPush[expr] = true
				p.Pushdown = append(p.Pushdown, expr)
			}
		}
		for _, st := range sp.Steps {
			k := key{st.Service, st.Op}
			if prev, ok := steps[k]; ok {
				prev.Count += st.Count
				steps[k] = prev
				continue
			}
			order = append(order, k)
			steps[k] = st
		}
	}
	for _, k := range order {
		st := steps[k]
		p.AddStep(st.Service, st.Op, st.Count, st.Note)
	}
	return cached
}

var (
	_ core.Store        = (*Router)(nil)
	_ core.Querier      = (*Router)(nil)
	_ core.GraphQuerier = (*Router)(nil)
	_ core.Syncer       = (*Router)(nil)
	_ core.Stamped      = (*Router)(nil)
)
