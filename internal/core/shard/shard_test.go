package shard_test

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"passcloud/internal/cloud"
	"passcloud/internal/core"
	"passcloud/internal/core/s3only"
	"passcloud/internal/core/s3sdb"
	"passcloud/internal/core/s3sdbsqs"
	"passcloud/internal/core/shard"
	"passcloud/internal/pass"
	"passcloud/internal/prov"
	"passcloud/internal/sim"
)

// target bundles one store under test with the bookkeeping the harness
// needs: the clouds metering it and any commit-daemon drain.
type target struct {
	store  shard.Store
	router *shard.Router // nil for unsharded targets
	clouds []*cloud.Cloud
	drains []func(context.Context) error
}

func (tg *target) querier() core.Querier { return tg.store.(core.Querier) }

func (tg *target) drain(ctx context.Context, t *testing.T) {
	t.Helper()
	for _, d := range tg.drains {
		if err := d(ctx); err != nil {
			t.Fatalf("drain: %v", err)
		}
	}
}

func (tg *target) totalOps() int64 {
	var n int64
	for _, cl := range tg.clouds {
		n += cl.Usage().TotalOps()
	}
	return n
}

// buildStore constructs one architecture store on cl.
func buildStore(t *testing.T, arch string, cl *cloud.Cloud, clientID string, uncached bool) (shard.Store, func(context.Context) error) {
	t.Helper()
	switch arch {
	case "s3":
		st, err := s3only.New(s3only.Config{Cloud: cl, DisableQueryCache: uncached})
		if err != nil {
			t.Fatal(err)
		}
		return st, nil
	case "s3+sdb":
		st, err := s3sdb.New(s3sdb.Config{Cloud: cl, DisableQueryCache: uncached})
		if err != nil {
			t.Fatal(err)
		}
		return st, nil
	case "s3+sdb+sqs":
		st, err := s3sdbsqs.New(s3sdbsqs.Config{Cloud: cl, ClientID: clientID, DisableQueryCache: uncached})
		if err != nil {
			t.Fatal(err)
		}
		daemon := s3sdbsqs.NewCommitDaemon(st, nil)
		drain := func(ctx context.Context) error {
			for i := 0; i < 50; i++ {
				n, err := daemon.RunOnce(ctx, true)
				if err != nil {
					return err
				}
				if n == 0 && daemon.PendingTransactions() == 0 {
					return nil
				}
			}
			return errors.New("commit daemon did not drain")
		}
		return st, drain
	default:
		t.Fatalf("unknown arch %q", arch)
		return nil, nil
	}
}

// buildTarget builds an n-shard router (or, for n = 1, the bare store)
// over isolated namespaces of one simulated region.
func buildTarget(t *testing.T, arch string, n int, seed int64, uncached bool) *target {
	t.Helper()
	multi := cloud.NewMulti(cloud.Config{Seed: seed})
	tg := &target{}
	var stores []shard.Store
	for i := 0; i < n; i++ {
		cl := multi.Namespace(fmt.Sprintf("shard%d", i))
		st, drain := buildStore(t, arch, cl, fmt.Sprintf("c%d", i), uncached)
		stores = append(stores, st)
		tg.clouds = append(tg.clouds, cl)
		if drain != nil {
			tg.drains = append(tg.drains, drain)
		}
	}
	if n == 1 {
		tg.store = stores[0]
		return tg
	}
	r, err := shard.New(shard.Config{Shards: stores})
	if err != nil {
		t.Fatal(err)
	}
	tg.store = r
	tg.router = r
	return tg
}

// captureBatches drives a scripted PASS workload and records the flush
// batches, so the identical event stream can replay into any store.
func captureBatches(t *testing.T) [][]pass.FlushEvent {
	t.Helper()
	ctx := context.Background()
	var batches [][]pass.FlushEvent
	sys := pass.NewSystem(pass.Config{Kernel: "2.6.23", Flush: func(_ context.Context, b []pass.FlushEvent) error {
		batches = append(batches, append([]pass.FlushEvent(nil), b...))
		return nil
	}})
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		must(sys.Ingest(ctx, fmt.Sprintf("/data/in%d", i), []byte(fmt.Sprintf("dataset-%d", i))))
	}
	blast := sys.Exec(nil, pass.ExecSpec{Name: "blast", Argv: []string{"blast", "-p"}, Env: "LAB=x " + strings.Repeat("E", 1200)})
	must(sys.Read(blast, "/data/in0"))
	must(sys.Read(blast, "/data/in1"))
	must(sys.Write(blast, "/out/blast0", []byte("hits-0"), pass.Truncate))
	must(sys.Close(ctx, blast, "/out/blast0"))
	must(sys.Read(blast, "/data/in2"))
	must(sys.Write(blast, "/out/blast1", []byte("hits-1"), pass.Truncate))
	must(sys.Close(ctx, blast, "/out/blast1"))

	sorter := sys.Exec(nil, pass.ExecSpec{Name: "sort", Argv: []string{"sort", "-n"}})
	must(sys.Read(sorter, "/out/blast0"))
	must(sys.Read(sorter, "/data/in3"))
	must(sys.Write(sorter, "/res/sorted0", []byte("sorted"), pass.Truncate))
	must(sys.Close(ctx, sorter, "/res/sorted0"))

	mean := sys.Exec(nil, pass.ExecSpec{Name: "softmean", Argv: []string{"softmean"}})
	must(sys.Read(mean, "/out/blast1"))
	must(sys.Read(mean, "/res/sorted0"))
	must(sys.Write(mean, "/res/mean", []byte("m0"), pass.Truncate))
	must(sys.Close(ctx, mean, "/res/mean"))
	// Overwrite an output (superseded version survives only as input edges
	// on the S3-only architecture) and append a new version elsewhere.
	redo := sys.Exec(nil, pass.ExecSpec{Name: "blast", Argv: []string{"blast", "-redo"}})
	must(sys.Read(redo, "/data/in4"))
	must(sys.Write(redo, "/out/blast0", []byte("hits-0b"), pass.Truncate))
	must(sys.Close(ctx, redo, "/out/blast0"))
	must(sys.Read(mean, "/out/blast0"))
	must(sys.Write(mean, "/res/mean", []byte("m0+m1"), pass.Append))
	must(sys.Close(ctx, mean, "/res/mean"))
	sys.Exit(blast)
	sys.Exit(sorter)
	sys.Exit(mean)
	sys.Exit(redo)
	must(sys.Sync(ctx))
	return batches
}

// replay writes the captured batches into tg and settles it.
func replay(t *testing.T, ctx context.Context, tg *target, batches [][]pass.FlushEvent) {
	t.Helper()
	for _, b := range batches {
		if err := tg.store.PutBatch(ctx, b); err != nil {
			t.Fatalf("replay PutBatch: %v", err)
		}
	}
	if err := core.SyncStore(ctx, tg.store); err != nil {
		t.Fatalf("replay sync: %v", err)
	}
	tg.drain(ctx, t)
}

// canonical renders a query result set in comparison form: one line per
// ref, records sorted, so two stores answering the same question must
// produce equal strings regardless of stream order.
func canonical(t *testing.T, ctx context.Context, q core.Querier, desc prov.Query) string {
	t.Helper()
	byRef := make(map[prov.Ref][]string)
	var refs []prov.Ref
	for e, err := range q.Query(ctx, desc) {
		if err != nil {
			t.Fatalf("query %s: %v", desc.Key(), err)
		}
		if _, ok := byRef[e.Ref]; !ok {
			refs = append(refs, e.Ref)
		}
		for _, r := range e.Records {
			byRef[e.Ref] = append(byRef[e.Ref], fmt.Sprintf("%s|%s|%s", r.Subject, r.Attr, r.Value.String()))
		}
	}
	prov.SortRefs(refs)
	var b strings.Builder
	for _, ref := range refs {
		lines := byRef[ref]
		sort.Strings(lines)
		fmt.Fprintf(&b, "%s :: %s\n", ref, strings.Join(lines, " ; "))
	}
	return b.String()
}

// testQueries is the fixed descriptor set every equivalence check runs.
func testQueries() []prov.Query {
	return []prov.Query{
		prov.Q1(),
		prov.QOutputsOf("blast"),
		prov.QDescendantsOfOutputs("blast"),
		prov.QDependents("/data/in0"),
		prov.QDependents("/out/blast0"),
		{Refs: []prov.Ref{{Object: "/res/mean", Version: 2}}, Direction: prov.TraverseAncestors, Projection: prov.ProjectRefs},
		{Type: prov.TypeFile, Projection: prov.ProjectRefs},
		{Type: prov.TypeProcess, Projection: prov.ProjectFull},
		{RefPrefix: "/out/", Projection: prov.ProjectFull},
		{Attrs: []prov.AttrFilter{{Attr: prov.AttrName, Value: "blast"}}, Projection: prov.ProjectFull},
		{Type: prov.TypeFile, RefPrefix: "/res/", Projection: prov.ProjectRefs},
		{Tool: "softmean", Type: prov.TypeFile, Direction: prov.TraverseDescendants, Depth: 2, Projection: prov.ProjectRefs},
		{Refs: []prov.Ref{{Object: "/out/blast0", Version: 1}, {Object: "/data/in5", Version: 1}}, Projection: prov.ProjectFull},
		{RefPrefix: "/data/in1:", Direction: prov.TraverseDescendants, Depth: 1, IncludeSeeds: true, Projection: prov.ProjectRefs},
	}
}

// TestShardedMatchesUnsharded is the scale-out correctness property: for
// every architecture, a 4-shard router must answer every descriptor
// identically to an unsharded store holding the union of the data.
func TestShardedMatchesUnsharded(t *testing.T) {
	ctx := context.Background()
	batches := captureBatches(t)
	for _, arch := range []string{"s3", "s3+sdb", "s3+sdb+sqs"} {
		for _, uncached := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/uncached=%v", arch, uncached), func(t *testing.T) {
				flat := buildTarget(t, arch, 1, 2009, uncached)
				sharded := buildTarget(t, arch, 4, 2009, uncached)
				replay(t, ctx, flat, batches)
				replay(t, ctx, sharded, batches)
				for i, q := range testQueries() {
					want := canonical(t, ctx, flat.querier(), q)
					got := canonical(t, ctx, sharded.querier(), q)
					if want != got {
						t.Errorf("query %d (%s):\nunsharded:\n%s\nsharded:\n%s", i, q.Key(), want, got)
					}
				}
			})
		}
	}
}

// TestShardedMatchesUnshardedRandomized drives seeded random descriptors
// through the 4-shard router and the unsharded reference store.
func TestShardedMatchesUnshardedRandomized(t *testing.T) {
	ctx := context.Background()
	batches := captureBatches(t)
	rng := sim.NewRNG(4242)

	tools := []string{"blast", "sort", "softmean", "missing"}
	types := []string{prov.TypeFile, prov.TypeProcess, ""}
	prefixes := []string{"", "/out/", "/data/", "/data/in0:", "/res/mean:", "/nope/"}
	refPool := []prov.Ref{
		{Object: "/out/blast0", Version: 1}, {Object: "/out/blast0", Version: 2},
		{Object: "/res/mean", Version: 1}, {Object: "/data/in2", Version: 1},
		{Object: "/ghost", Version: 7},
	}

	randomQuery := func() prov.Query {
		q := prov.Query{}
		if rng.Intn(4) == 0 {
			q.Tool = tools[rng.Intn(len(tools))]
		}
		q.Type = types[rng.Intn(len(types))]
		if rng.Intn(3) == 0 {
			q.Attrs = append(q.Attrs, prov.AttrFilter{Attr: prov.AttrName, Value: tools[rng.Intn(len(tools))]})
		}
		q.RefPrefix = prefixes[rng.Intn(len(prefixes))]
		if rng.Intn(4) == 0 {
			n := 1 + rng.Intn(2)
			for i := 0; i < n; i++ {
				q.Refs = append(q.Refs, refPool[rng.Intn(len(refPool))])
			}
		}
		switch rng.Intn(3) {
		case 1:
			q.Direction = prov.TraverseDescendants
		case 2:
			q.Direction = prov.TraverseAncestors
		}
		if q.Direction != prov.TraverseNone {
			q.Depth = rng.Intn(3)
			q.IncludeSeeds = rng.Intn(2) == 0
		}
		if rng.Intn(2) == 0 {
			q.Projection = prov.ProjectRefs
		}
		return q
	}

	for _, arch := range []string{"s3", "s3+sdb"} {
		t.Run(arch, func(t *testing.T) {
			flat := buildTarget(t, arch, 1, 99, false)
			sharded := buildTarget(t, arch, 4, 99, false)
			replay(t, ctx, flat, batches)
			replay(t, ctx, sharded, batches)
			for i := 0; i < 60; i++ {
				q := randomQuery()
				if q.Validate() != nil {
					continue
				}
				want := canonical(t, ctx, flat.querier(), q)
				got := canonical(t, ctx, sharded.querier(), q)
				if want != got {
					t.Fatalf("random query %d (%s):\nunsharded:\n%s\nsharded:\n%s", i, q.Key(), want, got)
				}
			}
		})
	}
}

// TestRouterExplainMatchesMeteredOps: on the uncached path, the composite
// plan must predict the metered cross-shard operation count exactly —
// the acceptance bar for honest fan-in plans.
func TestRouterExplainMatchesMeteredOps(t *testing.T) {
	ctx := context.Background()
	batches := captureBatches(t)
	for _, arch := range []string{"s3", "s3+sdb"} {
		t.Run(arch, func(t *testing.T) {
			tg := buildTarget(t, arch, 4, 7, true)
			replay(t, ctx, tg, batches)
			for i, q := range testQueries() {
				plan := tg.router.Explain(q)
				if !plan.Exact {
					t.Fatalf("query %d (%s): plan degraded to estimate on a single-writer repository", i, q.Key())
				}
				before := tg.totalOps()
				for _, err := range tg.router.Query(ctx, q) {
					if err != nil {
						t.Fatalf("query %d: %v", i, err)
					}
				}
				metered := tg.totalOps() - before
				if plan.EstOps != metered {
					t.Errorf("query %d (%s): predicted %d ops, metered %d\n%s", i, q.Key(), plan.EstOps, metered, plan)
				}
			}
		})
	}
}

// TestPerShardCacheInvalidation: a write through the router must
// invalidate only the written shard's snapshot; the other shards keep
// answering from their warm caches — the scale-out dividend of
// per-shard qcache invalidation.
func TestPerShardCacheInvalidation(t *testing.T) {
	ctx := context.Background()
	batches := captureBatches(t)
	tg := buildTarget(t, "s3", 4, 11, false)
	replay(t, ctx, tg, batches)

	// Warm every shard.
	for _, err := range tg.router.Query(ctx, prov.Q1()) {
		if err != nil {
			t.Fatal(err)
		}
	}
	if p := tg.router.Explain(prov.Q1()); !p.Cached || p.EstOps != 0 {
		t.Fatalf("expected fully warm composite plan, got %s", p)
	}

	// One write to one object: exactly one shard invalidates.
	obj := prov.ObjectID("/post/warm")
	hot := tg.router.ShardFor(obj)
	ev := pass.FlushEvent{
		Ref:  prov.Ref{Object: obj, Version: 1},
		Type: prov.TypeFile,
		Data: []byte("x"),
		Records: []prov.Record{
			{Subject: prov.Ref{Object: obj, Version: 1}, Attr: prov.AttrType, Value: prov.StringValue(prov.TypeFile)},
			{Subject: prov.Ref{Object: obj, Version: 1}, Attr: prov.AttrName, Value: prov.StringValue("/post/warm")},
		},
	}
	if err := tg.store.PutBatch(ctx, []pass.FlushEvent{ev}); err != nil {
		t.Fatal(err)
	}

	plan := tg.router.Explain(prov.Q1())
	if plan.Cached {
		t.Fatalf("composite plan still claims cached after a write: %s", plan)
	}
	perShardBefore := make([]int64, len(tg.clouds))
	for i, cl := range tg.clouds {
		perShardBefore[i] = cl.Usage().TotalOps()
	}
	for _, err := range tg.router.Query(ctx, prov.Q1()) {
		if err != nil {
			t.Fatal(err)
		}
	}
	var metered int64
	for i, cl := range tg.clouds {
		delta := cl.Usage().TotalOps() - perShardBefore[i]
		metered += delta
		if i == hot && delta == 0 {
			t.Errorf("written shard %d served from a stale cache", i)
		}
		if i != hot && delta != 0 {
			t.Errorf("unwritten shard %d re-scanned (%d ops) after a foreign-shard write", i, delta)
		}
	}
	if plan.EstOps != metered {
		t.Errorf("post-write plan predicted %d ops, metered %d\n%s", plan.EstOps, metered, plan)
	}
}

// TestPartialWriteMerge: when one shard's sub-batch fails, the router's
// error must be a typed PartialWriteError whose Landed set is the union
// of every shard's durable events, so the flush layer retries only the
// remainder.
func TestPartialWriteMerge(t *testing.T) {
	ctx := context.Background()
	multi := cloud.NewMulti(cloud.Config{Seed: 3})
	okCl := multi.Namespace("ok")
	badFaults := sim.NewFaultPlan()
	badCl := cloud.New(cloud.Config{Seed: 4, Faults: badFaults})

	okStore, err := s3only.New(s3only.Config{Cloud: okCl})
	if err != nil {
		t.Fatal(err)
	}
	badStore, err := s3only.New(s3only.Config{Cloud: badCl, PutConcurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	r, err := shard.New(shard.Config{Shards: []shard.Store{okStore, badStore}})
	if err != nil {
		t.Fatal(err)
	}

	// Find object names homed on each shard.
	nameOn := func(want int) prov.ObjectID {
		for i := 0; ; i++ {
			obj := prov.ObjectID(fmt.Sprintf("/f/p%d", i))
			if r.ShardFor(obj) == want {
				return obj
			}
		}
	}
	okObj, badObj := nameOn(0), nameOn(1)
	mk := func(obj prov.ObjectID) pass.FlushEvent {
		ref := prov.Ref{Object: obj, Version: 1}
		return pass.FlushEvent{Ref: ref, Type: prov.TypeFile, Data: []byte("d"), Records: []prov.Record{
			{Subject: ref, Attr: prov.AttrType, Value: prov.StringValue(prov.TypeFile)},
		}}
	}

	badFaults.ArmOp("s3/PUT", sim.ClassPermanent, 0, 8) // every data PUT on the bad shard fails
	err = r.PutBatch(ctx, []pass.FlushEvent{mk(okObj), mk(badObj)})
	if err == nil {
		t.Fatal("expected a partial-write error")
	}
	var pw *core.PartialWriteError
	if !errors.As(err, &pw) {
		t.Fatalf("expected PartialWriteError, got %v", err)
	}
	landed := make(map[prov.Ref]bool)
	for _, ref := range pw.Landed {
		landed[ref] = true
	}
	if !landed[prov.Ref{Object: okObj, Version: 1}] {
		t.Errorf("healthy shard's event missing from Landed: %v", pw.Landed)
	}
	if landed[prov.Ref{Object: badObj, Version: 1}] {
		t.Errorf("failed shard's event reported durable: %v", pw.Landed)
	}
}

// TestRingPlacement: placement is deterministic, version-independent and
// reasonably balanced.
func TestRingPlacement(t *testing.T) {
	var stores []shard.Store
	multi := cloud.NewMulti(cloud.Config{Seed: 5})
	for i := 0; i < 4; i++ {
		st, err := s3only.New(s3only.Config{Cloud: multi.Namespace(fmt.Sprintf("s%d", i))})
		if err != nil {
			t.Fatal(err)
		}
		stores = append(stores, st)
	}
	r, err := shard.New(shard.Config{Shards: stores})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := shard.New(shard.Config{Shards: stores})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	for i := 0; i < 4000; i++ {
		obj := prov.ObjectID(fmt.Sprintf("/w/%d/file%d", i%7, i))
		s := r.ShardFor(obj)
		if s2 := r2.ShardFor(obj); s2 != s {
			t.Fatalf("placement not deterministic for %s: %d vs %d", obj, s, s2)
		}
		counts[s]++
	}
	for i, c := range counts {
		if c < 400 || c > 2200 {
			t.Errorf("shard %d owns %d/4000 objects — ring badly unbalanced: %v", i, c, counts)
		}
	}
}
