package reshard_test

import (
	"testing"

	"passcloud/internal/leakcheck"
)

// TestMain fails the binary if the migration controller's copy, verify
// or recovery paths leave goroutines behind after the tests pass.
func TestMain(m *testing.M) { leakcheck.Main(m) }
