// Hot-arc detection and migration planning. Detection is meter-driven:
// the controller samples every shard's billing usage as a baseline and
// later reads each shard's op-count delta; a shard whose share of the
// delta exceeds the configured ceiling is hot. Planning is declarative:
// a Plan captures the ring assignment before and after the move, and
// the moved-arc predicate is derived from those two assignments alone —
// recovery re-derives the exact same predicate from the journal, so the
// copy, the verification, and the cleanup always agree on what moved.
package reshard

import (
	"fmt"

	"passcloud/internal/prov"
)

// Plan is one declarative migration: the arc is every object the ring
// owned by Src under Before and owns by Dst under Target.
type Plan struct {
	// Kind is "split" (shed half a hot shard's ring points) or "merge"
	// (drain all of a cold shard's points).
	Kind     string
	Src, Dst int
	// Before and Target are full ring assignments (one owner per ring
	// point, in ring order) captured at plan time. They are journaled:
	// recovery must re-derive the moved predicate from the planned
	// assignments, never from the live ring.
	Before, Target []int
	// PreShares are the per-shard op shares at plan time (nil when no
	// baseline was set).
	PreShares []float64
}

// Moved is the arc-membership predicate: an object moves iff the plan
// reassigns its ring point from Src to Dst.
func (p *Plan) Moved(c *Controller) func(prov.ObjectID) bool {
	r := c.cfg.Router
	return func(o prov.ObjectID) bool {
		return r.OwnerIn(p.Before, o) == p.Src && r.OwnerIn(p.Target, o) == p.Dst
	}
}

// SampleBaseline snapshots every shard's meter; Shares and DetectHot
// measure op deltas from here.
func (c *Controller) SampleBaseline() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.baseline = c.baseline[:0]
	for _, cl := range c.cfg.Clouds {
		c.baseline = append(c.baseline, cl.Usage())
	}
	c.baselineSet = true
}

// Shares returns each shard's fraction of the namespace's total cloud
// ops since the baseline sample, or nil when no baseline is set.
func (c *Controller) Shares() []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sharesLocked()
}

func (c *Controller) sharesLocked() []float64 {
	if !c.baselineSet {
		return nil
	}
	deltas := make([]int64, len(c.cfg.Clouds))
	total := int64(0)
	for i, cl := range c.cfg.Clouds {
		deltas[i] = cl.Usage().Sub(c.baseline[i]).TotalOps()
		if deltas[i] < 0 {
			deltas[i] = 0
		}
		total += deltas[i]
	}
	if total == 0 {
		return make([]float64, len(deltas))
	}
	shares := make([]float64, len(deltas))
	for i, d := range deltas {
		shares[i] = float64(d) / float64(total)
	}
	return shares
}

// DetectHot returns the shard whose op share exceeds the hot ceiling,
// if any. With several over the ceiling (impossible for ceilings >=
// 0.5) the hottest wins.
func (c *Controller) DetectHot() (hot int, share float64, ok bool) {
	shares := c.Shares()
	hot = -1
	for i, s := range shares {
		if s > c.cfg.HotCeiling && (hot < 0 || s > share) {
			hot, share = i, s
		}
	}
	return hot, share, hot >= 0
}

// coldest picks the shard with the lowest op share, excluding hot.
// Without a baseline it falls back to the shard owning the fewest ring
// points.
func (c *Controller) coldest(hot int, shares []float64) int {
	cold := -1
	if shares != nil {
		for i, s := range shares {
			if i != hot && (cold < 0 || s < shares[cold]) {
				cold = i
			}
		}
		return cold
	}
	counts := make([]int, c.cfg.Router.NumShards())
	for _, owner := range c.cfg.Router.Assignment() {
		counts[owner]++
	}
	for i, n := range counts {
		if i != hot && (cold < 0 || n < counts[cold]) {
			cold = i
		}
	}
	return cold
}

// PlanSplit plans moving alternating ring points off the hot shard.
// dst < 0 picks the coldest shard automatically.
func (c *Controller) PlanSplit(hot, dst int) (*Plan, error) {
	c.mu.Lock()
	shares := c.sharesLocked()
	c.mu.Unlock()
	if dst < 0 {
		dst = c.coldest(hot, shares)
	}
	if err := c.validPair(hot, dst); err != nil {
		return nil, err
	}
	before := c.cfg.Router.Assignment()
	target := append([]int(nil), before...)
	moved, owned := 0, 0
	for i, owner := range before {
		if owner != hot {
			continue
		}
		// Alternating points halve the arc while keeping the shed load
		// spread across the hash space rather than one contiguous range.
		if owned%2 == 1 {
			target[i] = dst
			moved++
		}
		owned++
	}
	if owned == 0 {
		return nil, fmt.Errorf("reshard: shard %d owns no ring points", hot)
	}
	if moved == 0 {
		return nil, fmt.Errorf("reshard: shard %d owns a single ring point; nothing to split", hot)
	}
	return &Plan{Kind: "split", Src: hot, Dst: dst, Before: before, Target: target, PreShares: shares}, nil
}

// PlanMerge plans draining every ring point off a cold shard onto dst.
// dst < 0 picks the coldest remaining shard.
func (c *Controller) PlanMerge(cold, dst int) (*Plan, error) {
	c.mu.Lock()
	shares := c.sharesLocked()
	c.mu.Unlock()
	if dst < 0 {
		dst = c.coldest(cold, shares)
	}
	if err := c.validPair(cold, dst); err != nil {
		return nil, err
	}
	before := c.cfg.Router.Assignment()
	target := append([]int(nil), before...)
	moved := 0
	for i, owner := range before {
		if owner == cold {
			target[i] = dst
			moved++
		}
	}
	if moved == 0 {
		return nil, fmt.Errorf("reshard: shard %d owns no ring points", cold)
	}
	return &Plan{Kind: "merge", Src: cold, Dst: dst, Before: before, Target: target, PreShares: shares}, nil
}

func (c *Controller) validPair(src, dst int) error {
	n := c.cfg.Router.NumShards()
	if src < 0 || src >= n || dst < 0 || dst >= n || src == dst {
		return fmt.Errorf("reshard: invalid shard pair %d -> %d (%d shards)", src, dst, n)
	}
	return nil
}
