// Migration execution: copy -> verify -> flip -> cleanup, with the
// journal and Recover providing copy/flip crash atomicity. Verification
// deliberately avoids the full per-shard chain verifier mid-migration
// (transient chains legitimately span shards); it compares the moved
// subjects' re-derived Merkle leaves between a fresh source audit and a
// fresh destination audit, cross-checks each side's whole-shard root
// against its own ledger's highest committed checkpoint, and only then
// lets the ring flip.
package reshard

import (
	"context"
	"errors"
	"fmt"

	"passcloud/internal/cloud/billing"
	"passcloud/internal/core"
	"passcloud/internal/core/integrity"
	"passcloud/internal/prov"
)

// Report is one reconciliation outcome with the migration's metered
// cost: what moved, what it took, and what it would have cost at the
// paper's January-2009 prices.
type Report struct {
	// Action is "none" (no hot shard detected), "split" or "merge".
	Action string
	// Plan is the executed plan, nil when Action is "none".
	Plan *Plan
	// Subjects and Objects count the moved arc; Bytes is the copied
	// payload volume (record values plus data bodies).
	Subjects, Objects int
	Bytes             int64
	// Epoch is the ring epoch after the flip.
	Epoch int
	// Retried counts export re-reads forced by source-stamp movement.
	Retried int
	// MigOps is each shard's cloud-op delta across the migration;
	// MigTotalOps sums them. MigBytes is the transferred byte delta and
	// USD the Jan-2009 price of the whole migration.
	MigOps      []int64
	MigTotalOps int64
	MigBytes    int64
	USD         float64
}

// usages snapshots every shard's meter.
func (c *Controller) usages() []billing.Usage {
	out := make([]billing.Usage, len(c.cfg.Clouds))
	for i, cl := range c.cfg.Clouds {
		out[i] = cl.Usage()
	}
	return out
}

// setJournal records the migration's phase transition.
func (c *Controller) setJournal(phase Phase, plan *Plan) {
	c.mu.Lock()
	c.phase, c.plan = phase, plan
	c.mu.Unlock()
}

// finish meters the migration window into the report.
func (c *Controller) finish(rep *Report, pre []billing.Usage) {
	post := c.usages()
	rep.MigOps = make([]int64, len(post))
	for i := range post {
		d := post[i].Sub(pre[i])
		rep.MigOps[i] = d.TotalOps()
		rep.MigTotalOps += d.TotalOps()
		for svc := billing.S3; svc <= billing.SQS; svc++ {
			rep.MigBytes += d.BytesIn(svc) + d.BytesOut(svc)
		}
		rep.USD += billing.Jan2009.Price(d).Total()
	}
	c.mu.Lock()
	c.last = rep
	c.mu.Unlock()
}

// RunOnce is one reconciliation pass: detect a hot shard against the
// baseline sample and, if one exceeds the ceiling, split it toward the
// coldest shard. Without a hot shard it reports Action "none" and
// performs zero cloud operations.
func (c *Controller) RunOnce(ctx context.Context) (*Report, error) {
	hot, _, ok := c.DetectHot()
	if !ok {
		rep := &Report{Action: "none", Epoch: c.cfg.Router.RingEpoch()}
		c.mu.Lock()
		c.last = rep
		c.mu.Unlock()
		return rep, nil
	}
	plan, err := c.PlanSplit(hot, -1)
	if err != nil {
		return nil, err
	}
	return c.Execute(ctx, plan)
}

// Execute runs one planned migration through copy -> verify -> flip ->
// cleanup. A verification failure rolls back to fully-unmoved and
// returns ErrVerifyFailed; an injected crash leaves the journal at the
// phase it reached for Recover.
func (c *Controller) Execute(ctx context.Context, plan *Plan) (*Report, error) {
	c.mu.Lock()
	busy := c.phase != PhaseIdle
	c.mu.Unlock()
	if busy || c.cfg.Router.Migrating() {
		return nil, ErrMigrationActive
	}
	if err := c.validPair(plan.Src, plan.Dst); err != nil {
		return nil, err
	}
	if err := c.drain(ctx); err != nil {
		return nil, err
	}
	r := c.cfg.Router
	match := plan.Moved(c)
	pre := c.usages()
	src, dst := c.migs[plan.Src], c.migs[plan.Dst]

	// Copy: export the arc under a stable source stamp. A stamp that
	// moved mid-scan means a writer raced the export; re-read.
	var exp *core.ArcExport
	retried := 0
	stamp := r.Shard(plan.Src).StampToken()
	for {
		e, err := src.ExportArc(ctx, match)
		if err != nil {
			return nil, fmt.Errorf("reshard: export: %w", err)
		}
		if now := r.Shard(plan.Src).StampToken(); now == stamp {
			exp = e
			break
		}
		retried++
		if retried >= c.cfg.Retries {
			return nil, ErrSourceUnstable
		}
		if err := c.drain(ctx); err != nil {
			return nil, err
		}
		stamp = r.Shard(plan.Src).StampToken()
	}
	rep := &Report{Action: plan.Kind, Plan: plan, Subjects: len(exp.Subjects),
		Objects: exp.Objects, Bytes: exp.Bytes, Retried: retried}

	// An empty arc still flips: future writes to the moved ring points
	// land on the new owner.
	if len(exp.Subjects) == 0 {
		if err := r.FlipRing(plan.Target); err != nil {
			return nil, err
		}
		rep.Epoch = r.RingEpoch()
		c.finish(rep, pre)
		return rep, nil
	}

	// The journal opens before the window: any crash past this line is
	// recoverable from the journaled plan alone.
	c.setJournal(PhaseCopied, plan)
	if err := r.BeginMigration(plan.Src, plan.Dst, exp.Subjects); err != nil {
		c.setJournal(PhaseIdle, nil)
		return nil, err
	}
	if err := c.check(PointBeforeImport); err != nil {
		return nil, err
	}
	if err := dst.ImportArc(ctx, exp); err != nil {
		return nil, c.abort(ctx, plan, match, fmt.Errorf("reshard: import: %w", err))
	}
	c.settle()
	if err := c.check(PointAfterImport); err != nil {
		return nil, err
	}
	if c.cfg.BeforeVerify != nil {
		if err := c.cfg.BeforeVerify(ctx); err != nil {
			return nil, c.abort(ctx, plan, match, err)
		}
		c.settle()
	}

	// Verify: integrity is the migration's oracle. A copy altered in any
	// byte fails here and the move aborts to fully-unmoved.
	if err := c.verifyCopy(ctx, plan, exp.Subjects); err != nil {
		return nil, c.abort(ctx, plan, match, err)
	}
	if err := c.check(PointBeforeFlip); err != nil {
		return nil, err
	}

	// Flip: the cutover. One atomic ring swap moves authority to the
	// destination.
	if err := r.FlipRing(plan.Target); err != nil {
		return nil, c.abort(ctx, plan, match, err)
	}
	c.setJournal(PhaseFlipped, plan)
	if err := c.check(PointAfterFlip); err != nil {
		return nil, err
	}

	// Cleanup: drop the source's stale copy and close the window. A
	// failure here leaves the journal at PhaseFlipped; Recover rolls
	// forward.
	if _, err := src.RemoveArc(ctx, match); err != nil {
		return nil, fmt.Errorf("reshard: cleanup: %w", err)
	}
	c.settle()
	r.EndMigration()
	c.setJournal(PhaseIdle, nil)
	rep.Epoch = r.RingEpoch()
	c.finish(rep, pre)
	return rep, nil
}

// rollbackMatch narrows the moved-arc predicate to objects the source
// actually holds. The destination may natively host records for moved
// ring points — a transient subject's records home with the carrier
// batch that wrote them, not with the ring — and rollback must remove
// only what the import copied. Everything the import copied still
// exists on the intact source, so source residency is the filter.
func (c *Controller) rollbackMatch(ctx context.Context, plan *Plan, match func(prov.ObjectID) bool) (func(prov.ObjectID) bool, error) {
	sa, err := c.audit(ctx, plan.Src)
	if err != nil {
		return nil, err
	}
	onSrc := make(map[prov.ObjectID]bool, len(sa.Entries))
	for ref := range sa.Entries {
		onSrc[ref.Object] = true
	}
	return func(o prov.ObjectID) bool { return match(o) && onSrc[o] }, nil
}

// abort rolls an unflipped migration back to fully-unmoved: the
// destination's copy is removed and the window closes with the old ring
// still active. If even the rollback fails the journal stays at
// PhaseCopied for Recover.
func (c *Controller) abort(ctx context.Context, plan *Plan, match func(prov.ObjectID) bool, cause error) error {
	rb, err := c.rollbackMatch(ctx, plan, match)
	if err != nil {
		return errors.Join(cause, fmt.Errorf("reshard: rollback: %w", err))
	}
	if _, err := c.migs[plan.Dst].RemoveArc(ctx, rb); err != nil {
		return errors.Join(cause, fmt.Errorf("reshard: rollback: %w", err))
	}
	c.settle()
	c.cfg.Router.AbortMigration()
	c.setJournal(PhaseIdle, nil)
	return cause
}

// Recover converges an interrupted migration: a journal at PhaseCopied
// rolls back (the ring never flipped; the destination's partial copy is
// removed), a journal at PhaseFlipped rolls forward (the cutover
// happened; the source's stale copy is removed). Both paths are
// idempotent — RemoveArc with no matching state is a no-op — so Recover
// may itself be interrupted and re-run. It returns the phase it
// recovered from (PhaseIdle when there was nothing to do).
func (c *Controller) Recover(ctx context.Context) (Phase, error) {
	c.mu.Lock()
	phase, plan := c.phase, c.plan
	c.mu.Unlock()
	if phase == PhaseIdle || plan == nil {
		return PhaseIdle, nil
	}
	match := plan.Moved(c)
	switch phase {
	case PhaseCopied:
		rb, rerr := c.rollbackMatch(ctx, plan, match)
		if rerr != nil {
			return phase, fmt.Errorf("reshard: recover rollback: %w", rerr)
		}
		if _, err := c.migs[plan.Dst].RemoveArc(ctx, rb); err != nil {
			return phase, fmt.Errorf("reshard: recover rollback: %w", err)
		}
		c.cfg.Router.AbortMigration()
	case PhaseFlipped:
		if _, err := c.migs[plan.Src].RemoveArc(ctx, match); err != nil {
			return phase, fmt.Errorf("reshard: recover roll-forward: %w", err)
		}
		c.cfg.Router.EndMigration()
	}
	c.settle()
	c.setJournal(PhaseIdle, nil)
	return phase, nil
}

// verifyCopy re-derives the moved subjects' Merkle leaves from fresh
// audits of both sides and requires them equal, subject by subject and
// as folded roots; each side's whole-shard root is also cross-checked
// against its ledger's highest committed checkpoint when exactly one
// writer committed there.
func (c *Controller) verifyCopy(ctx context.Context, plan *Plan, subjects []prov.Ref) error {
	sa, err := c.audit(ctx, plan.Src)
	if err != nil {
		return err
	}
	da, err := c.audit(ctx, plan.Dst)
	if err != nil {
		return err
	}
	srcLeaves := make([]string, 0, len(subjects))
	dstLeaves := make([]string, 0, len(subjects))
	for _, ref := range subjects {
		srcRecs, okS := sa.Entries[ref]
		dstRecs, okD := da.Entries[ref]
		if !okS {
			return fmt.Errorf("%w: %s vanished from the source mid-copy", ErrVerifyFailed, ref)
		}
		if !okD {
			return fmt.Errorf("%w: %s missing on the destination", ErrVerifyFailed, ref)
		}
		sl := integrity.SubjectHash(ref, integrity.DedupRecords(srcRecs))
		dl := integrity.SubjectHash(ref, integrity.DedupRecords(dstRecs))
		if sl != dl {
			return fmt.Errorf("%w: %s: source leaf %s != destination leaf %s",
				ErrVerifyFailed, ref, sl, dl)
		}
		srcLeaves = append(srcLeaves, sl)
		dstLeaves = append(dstLeaves, dl)
	}
	if sr, dr := integrity.MerkleRoot(srcLeaves), integrity.MerkleRoot(dstLeaves); sr != dr {
		return fmt.Errorf("%w: moved-arc root %s != destination root %s", ErrVerifyFailed, sr, dr)
	}
	if err := ledgerCheck("source", sa); err != nil {
		return err
	}
	if err := ledgerCheck("destination", da); err != nil {
		return err
	}
	return nil
}

// audit runs one shard's integrity audit.
func (c *Controller) audit(ctx context.Context, i int) (*integrity.Audit, error) {
	a, ok := c.cfg.Router.Shard(i).(integrity.Auditor)
	if !ok {
		return nil, fmt.Errorf("%w: shard %d has no auditor", ErrNotMigratable, i)
	}
	audit, err := a.Audit(ctx)
	if err != nil {
		return nil, fmt.Errorf("reshard: audit shard %d: %w", i, err)
	}
	return audit, nil
}

// ledgerCheck compares a shard's re-derived whole-shard root against
// its ledger's highest committed checkpoint. Skipped when no checkpoint
// survived or several writers committed (each writer's root covers only
// its own writes).
func ledgerCheck(side string, a *integrity.Audit) error {
	latest := make(map[string]integrity.Checkpoint)
	for _, cp := range a.Checkpoints {
		if have, ok := latest[cp.Writer]; !ok || cp.Seq > have.Seq {
			latest[cp.Writer] = cp
		}
	}
	if len(latest) != 1 {
		return nil
	}
	leaves := make([]string, 0, len(a.Entries))
	for ref, records := range a.Entries {
		leaves = append(leaves, integrity.SubjectHash(ref, integrity.DedupRecords(records)))
	}
	derived := integrity.MerkleRoot(leaves)
	for _, cp := range latest {
		if cp.Root != derived {
			return fmt.Errorf("%w: %s ledger committed root %s != derived root %s",
				ErrVerifyFailed, side, cp.Root, derived)
		}
	}
	return nil
}
