package reshard_test

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"passcloud/internal/cloud"
	"passcloud/internal/cloud/sdb"
	"passcloud/internal/core"
	"passcloud/internal/core/integrity"
	"passcloud/internal/core/s3only"
	"passcloud/internal/core/s3sdb"
	"passcloud/internal/core/s3sdbsqs"
	"passcloud/internal/core/shard"
	"passcloud/internal/core/shard/reshard"
	"passcloud/internal/pass"
	"passcloud/internal/prov"
	"passcloud/internal/sim"
)

var arches = []string{"s3", "s3+sdb", "s3+sdb+sqs"}

// target is one sharded namespace under test.
type target struct {
	router *shard.Router
	clouds []*cloud.Cloud
	drains []func(context.Context) error
}

func (tg *target) drainAll(ctx context.Context) error {
	for _, d := range tg.drains {
		if err := d(ctx); err != nil {
			return err
		}
	}
	return nil
}

func (tg *target) totalOps() int64 {
	var n int64
	for _, cl := range tg.clouds {
		n += cl.Usage().TotalOps()
	}
	return n
}

func (tg *target) auditors() []integrity.Auditor {
	out := make([]integrity.Auditor, tg.router.NumShards())
	for i := range out {
		out[i] = tg.router.Shard(i).(integrity.Auditor)
	}
	return out
}

func buildTarget(t *testing.T, arch string, n int, seed int64) *target {
	t.Helper()
	multi := cloud.NewMulti(cloud.Config{Seed: seed})
	tg := &target{}
	var stores []shard.Store
	for i := 0; i < n; i++ {
		cl := multi.Namespace(fmt.Sprintf("shard%d", i))
		tg.clouds = append(tg.clouds, cl)
		switch arch {
		case "s3":
			st, err := s3only.New(s3only.Config{Cloud: cl})
			if err != nil {
				t.Fatal(err)
			}
			stores = append(stores, st)
		case "s3+sdb":
			st, err := s3sdb.New(s3sdb.Config{Cloud: cl})
			if err != nil {
				t.Fatal(err)
			}
			stores = append(stores, st)
		case "s3+sdb+sqs":
			st, err := s3sdbsqs.New(s3sdbsqs.Config{Cloud: cl, ClientID: fmt.Sprintf("c%d", i)})
			if err != nil {
				t.Fatal(err)
			}
			daemon := s3sdbsqs.NewCommitDaemon(st, nil)
			tg.drains = append(tg.drains, func(ctx context.Context) error {
				for j := 0; j < 50; j++ {
					k, err := daemon.RunOnce(ctx, true)
					if err != nil {
						return err
					}
					if k == 0 && daemon.PendingTransactions() == 0 {
						return nil
					}
				}
				return errors.New("commit daemon did not drain")
			})
			stores = append(stores, st)
		default:
			t.Fatalf("unknown arch %q", arch)
		}
	}
	r, err := shard.New(shard.Config{Shards: stores})
	if err != nil {
		t.Fatal(err)
	}
	tg.router = r
	return tg
}

// controller builds a reshard controller over tg.
func controller(t *testing.T, tg *target, faults *sim.FaultPlan, beforeVerify func(context.Context) error) *reshard.Controller {
	t.Helper()
	c, err := reshard.New(reshard.Config{
		Router:       tg.router,
		Clouds:       tg.clouds,
		Faults:       faults,
		Drain:        tg.drainAll,
		BeforeVerify: beforeVerify,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// workloadBatches captures a deterministic PASS event stream with enough
// objects to populate every shard of a 4-way ring.
func workloadBatches(t *testing.T) [][]pass.FlushEvent {
	t.Helper()
	ctx := context.Background()
	var batches [][]pass.FlushEvent
	sys := pass.NewSystem(pass.Config{Kernel: "2.6.23", Flush: func(_ context.Context, b []pass.FlushEvent) error {
		batches = append(batches, append([]pass.FlushEvent(nil), b...))
		return nil
	}})
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		must(sys.Ingest(ctx, fmt.Sprintf("/data/in%d", i), []byte(fmt.Sprintf("dataset-%d", i))))
	}
	for i := 0; i < 4; i++ {
		p := sys.Exec(nil, pass.ExecSpec{Name: "blast", Argv: []string{"blast", fmt.Sprint(i)}})
		must(sys.Read(p, fmt.Sprintf("/data/in%d", i)))
		must(sys.Read(p, fmt.Sprintf("/data/in%d", (i+3)%10)))
		must(sys.Write(p, fmt.Sprintf("/out/blast%d", i), []byte(fmt.Sprintf("hits-%d", i)), pass.Truncate))
		must(sys.Close(ctx, p, fmt.Sprintf("/out/blast%d", i)))
		sys.Exit(p)
	}
	mean := sys.Exec(nil, pass.ExecSpec{Name: "softmean", Argv: []string{"softmean"}})
	for i := 0; i < 4; i++ {
		must(sys.Read(mean, fmt.Sprintf("/out/blast%d", i)))
	}
	must(sys.Write(mean, "/res/mean", []byte("m"), pass.Truncate))
	must(sys.Close(ctx, mean, "/res/mean"))
	sys.Exit(mean)
	must(sys.Sync(ctx))
	return batches
}

func replay(t *testing.T, ctx context.Context, tg *target, batches [][]pass.FlushEvent) {
	t.Helper()
	for _, b := range batches {
		if err := tg.router.PutBatch(ctx, b); err != nil {
			t.Fatalf("replay PutBatch: %v", err)
		}
	}
	if err := core.SyncStore(ctx, tg.router); err != nil {
		t.Fatalf("replay sync: %v", err)
	}
	if err := tg.drainAll(ctx); err != nil {
		t.Fatalf("replay drain: %v", err)
	}
}

func oracleQueries() []prov.Query {
	return []prov.Query{
		prov.Q1(),
		{Type: prov.TypeFile, Projection: prov.ProjectRefs},
		{Type: prov.TypeProcess, Projection: prov.ProjectFull},
		{RefPrefix: "/out/", Projection: prov.ProjectFull},
		{Attrs: []prov.AttrFilter{{Attr: prov.AttrName, Value: "blast"}}, Projection: prov.ProjectFull},
		{RefPrefix: "/data/in1:", Direction: prov.TraverseDescendants, Depth: 1, IncludeSeeds: true, Projection: prov.ProjectRefs},
		{Refs: []prov.Ref{{Object: "/res/mean", Version: 1}}, Direction: prov.TraverseAncestors, Projection: prov.ProjectRefs},
	}
}

// canonical renders a query result order- and shard-insensitively.
func canonical(t *testing.T, ctx context.Context, q core.Querier, desc prov.Query) string {
	t.Helper()
	byRef := make(map[prov.Ref][]string)
	var refs []prov.Ref
	for e, err := range q.Query(ctx, desc) {
		if err != nil {
			t.Fatalf("query %s: %v", desc.Key(), err)
		}
		if _, ok := byRef[e.Ref]; !ok {
			refs = append(refs, e.Ref)
		}
		for _, r := range e.Records {
			byRef[e.Ref] = append(byRef[e.Ref], fmt.Sprintf("%s|%s|%s", r.Subject, r.Attr, r.Value.String()))
		}
	}
	prov.SortRefs(refs)
	var b strings.Builder
	for _, ref := range refs {
		lines := byRef[ref]
		sort.Strings(lines)
		fmt.Fprintf(&b, "%s :: %s\n", ref, strings.Join(lines, " ; "))
	}
	return b.String()
}

// assertOracle requires got to answer every oracle query bit-identically
// to want.
func assertOracle(t *testing.T, ctx context.Context, want, got *target, when string) {
	t.Helper()
	for i, q := range oracleQueries() {
		w := canonical(t, ctx, want.router, q)
		g := canonical(t, ctx, got.router, q)
		if w != g {
			t.Fatalf("%s: query %d (%s) diverged:\ncontrol:\n%s\nmigrated:\n%s", when, i, q.Key(), w, g)
		}
	}
}

// assertClean requires every shard of tg to verify divergence-free.
func assertClean(t *testing.T, ctx context.Context, tg *target, when string) {
	t.Helper()
	res, err := integrity.VerifyStores(ctx, tg.auditors())
	if err != nil {
		t.Fatalf("%s: verify: %v", when, err)
	}
	if !res.Clean() {
		t.Fatalf("%s: verification found divergences: %v", when, res.Divergences())
	}
}

// assertSingleHome requires every stored subject to live on exactly one
// shard — the fully-moved-or-fully-unmoved invariant.
func assertSingleHome(t *testing.T, ctx context.Context, tg *target, when string) {
	t.Helper()
	home := make(map[prov.Ref]int)
	for i, a := range tg.auditors() {
		audit, err := a.Audit(ctx)
		if err != nil {
			t.Fatalf("%s: audit shard %d: %v", when, i, err)
		}
		for ref := range audit.Entries {
			if prev, ok := home[ref]; ok {
				t.Fatalf("%s: %s stored on both shard %d and shard %d (partial migration)", when, ref, prev, i)
			}
			home[ref] = i
		}
	}
}

// TestSplitMigrationOracle: a full split must keep every query
// bit-identical to a never-migrated control, move a non-empty arc, and
// leave both sides verifying clean.
func TestSplitMigrationOracle(t *testing.T) {
	ctx := context.Background()
	batches := workloadBatches(t)
	for _, arch := range arches {
		for _, seed := range []int64{1, 2009} {
			t.Run(fmt.Sprintf("%s/seed=%d", arch, seed), func(t *testing.T) {
				control := buildTarget(t, arch, 4, seed)
				migrated := buildTarget(t, arch, 4, seed)
				replay(t, ctx, control, batches)
				replay(t, ctx, migrated, batches)
				assertOracle(t, ctx, control, migrated, "before migration")

				c := controller(t, migrated, nil, nil)
				plan, err := c.PlanSplit(0, 1)
				if err != nil {
					t.Fatalf("plan: %v", err)
				}
				rep, err := c.Execute(ctx, plan)
				if err != nil {
					t.Fatalf("execute: %v", err)
				}
				if rep.Subjects == 0 {
					t.Fatal("split moved no subjects; workload too small to exercise the arc")
				}
				if rep.Epoch != 1 || migrated.router.RingEpoch() != 1 {
					t.Fatalf("ring epoch = %d after one flip", migrated.router.RingEpoch())
				}
				if migrated.router.Migrating() {
					t.Fatal("double-read window left open after Execute")
				}
				if rep.MigTotalOps == 0 || rep.USD <= 0 {
					t.Fatalf("migration cost not metered: ops=%d usd=%f", rep.MigTotalOps, rep.USD)
				}
				assertOracle(t, ctx, control, migrated, "after migration")
				assertClean(t, ctx, migrated, "after migration")
				assertSingleHome(t, ctx, migrated, "after migration")
			})
		}
	}
}

// TestMergeRestoresPlacement: a split followed by a merge back must
// return every object to the source and stay query-identical.
func TestMergeRestoresPlacement(t *testing.T) {
	ctx := context.Background()
	batches := workloadBatches(t)
	control := buildTarget(t, "s3+sdb", 4, 7)
	migrated := buildTarget(t, "s3+sdb", 4, 7)
	replay(t, ctx, control, batches)
	replay(t, ctx, migrated, batches)

	c := controller(t, migrated, nil, nil)
	plan, err := c.PlanSplit(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Execute(ctx, plan); err != nil {
		t.Fatalf("split: %v", err)
	}
	// Merge shard 3 back into shard 0 — note merge moves *all* of 3's
	// points, including any it owned at boot.
	mplan, err := c.PlanMerge(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Execute(ctx, mplan); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if got := migrated.router.RingEpoch(); got != 2 {
		t.Fatalf("ring epoch = %d after two flips", got)
	}
	assertOracle(t, ctx, control, migrated, "after split+merge")
	assertClean(t, ctx, migrated, "after split+merge")
	assertSingleHome(t, ctx, migrated, "after split+merge")
}

// TestMigrationCrashPoints arms a crash at every controller fault point
// and requires: queries stay bit-identical through the open window,
// recovery converges to fully-moved or fully-unmoved (never partial),
// and the namespace verifies clean afterwards.
func TestMigrationCrashPoints(t *testing.T) {
	ctx := context.Background()
	batches := workloadBatches(t)
	points := []struct {
		point string
		want  reshard.Phase
	}{
		{reshard.PointBeforeImport, reshard.PhaseCopied},
		{reshard.PointAfterImport, reshard.PhaseCopied},
		{reshard.PointBeforeFlip, reshard.PhaseCopied},
		{reshard.PointAfterFlip, reshard.PhaseFlipped},
	}
	for _, arch := range arches {
		for _, pt := range points {
			t.Run(fmt.Sprintf("%s/%s", arch, pt.point), func(t *testing.T) {
				control := buildTarget(t, arch, 4, 11)
				migrated := buildTarget(t, arch, 4, 11)
				replay(t, ctx, control, batches)
				replay(t, ctx, migrated, batches)

				faults := sim.NewFaultPlan()
				faults.Arm(pt.point)
				c := controller(t, migrated, faults, nil)
				plan, err := c.PlanSplit(0, 2)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := c.Execute(ctx, plan); err == nil {
					t.Fatal("armed crash did not fire")
				}
				if got := c.Status().Phase; got != pt.want {
					t.Fatalf("journal phase after crash = %v, want %v", got, pt.want)
				}
				// The double-read window must keep mid-crash queries exact.
				assertOracle(t, ctx, control, migrated, "mid-crash")

				from, err := c.Recover(ctx)
				if err != nil {
					t.Fatalf("recover: %v", err)
				}
				if from != pt.want {
					t.Fatalf("recovered from %v, want %v", from, pt.want)
				}
				if c.Status().Phase != reshard.PhaseIdle || migrated.router.Migrating() {
					t.Fatal("recovery did not close the migration")
				}
				// Fully-moved or fully-unmoved: the flip decides which.
				wantEpoch := 0
				if pt.want == reshard.PhaseFlipped {
					wantEpoch = 1
				}
				if got := migrated.router.RingEpoch(); got != wantEpoch {
					t.Fatalf("ring epoch after recovery = %d, want %d", got, wantEpoch)
				}
				assertOracle(t, ctx, control, migrated, "post-recovery")
				assertClean(t, ctx, migrated, "post-recovery")
				assertSingleHome(t, ctx, migrated, "post-recovery")

				// Recover is idempotent.
				if from, err := c.Recover(ctx); err != nil || from != reshard.PhaseIdle {
					t.Fatalf("second recover = (%v, %v), want (idle, nil)", from, err)
				}
			})
		}
	}
}

// TestCorruptionDuringCopyDetectedBeforeFlip tampers with the
// destination's freshly imported copy and requires the pre-cutover
// verification to abort the migration to fully-unmoved — the ring never
// flips over a corrupt copy.
func TestCorruptionDuringCopyDetectedBeforeFlip(t *testing.T) {
	ctx := context.Background()
	batches := workloadBatches(t)
	for _, arch := range []string{"s3", "s3+sdb"} {
		t.Run(arch, func(t *testing.T) {
			control := buildTarget(t, arch, 4, 13)
			migrated := buildTarget(t, arch, 4, 13)
			replay(t, ctx, control, batches)
			replay(t, ctx, migrated, batches)

			var c *reshard.Controller
			var plan *reshard.Plan
			tampered := false
			tamper := func(ctx context.Context) error {
				moved := plan.Moved(c)
				dst := migrated.clouds[plan.Dst]
				switch arch {
				case "s3+sdb":
					// Drop one record attribute from a moved item.
					res, err := dst.SDB.Select("select itemName() from provenance", "")
					if err != nil {
						return err
					}
					for _, item := range res.Items {
						ref, perr := prov.ParseItemName(item.Name)
						if perr != nil || !moved(ref.Object) {
							continue
						}
						attrs, ok, err := dst.SDB.GetAttributes("provenance", item.Name)
						if err != nil || !ok {
							continue
						}
						for _, a := range attrs {
							if a.Name == "x-md5" || a.Name == "x-more" || a.Name == integrity.AttrRoot {
								continue
							}
							if err := dst.SDB.DeleteAttributes("provenance", item.Name, []sdb.Attr{a}); err != nil {
								return err
							}
							tampered = true
							return nil
						}
					}
				case "s3":
					// Delete one moved carrier outright.
					page, err := dst.S3.List("pass", "data/", "", 0)
					if err != nil {
						return err
					}
					for _, info := range page.Objects {
						object := prov.ObjectID(strings.TrimPrefix(info.Key, "data"))
						if !moved(object) {
							continue
						}
						if err := dst.S3.Delete("pass", info.Key); err != nil {
							return err
						}
						tampered = true
						return nil
					}
				}
				return errors.New("no moved state found to tamper with")
			}
			c = controller(t, migrated, nil, tamper)
			var err error
			plan, err = c.PlanSplit(0, 1)
			if err != nil {
				t.Fatal(err)
			}
			_, err = c.Execute(ctx, plan)
			if !errors.Is(err, reshard.ErrVerifyFailed) {
				t.Fatalf("execute with tampered copy = %v, want ErrVerifyFailed", err)
			}
			if !tampered {
				t.Fatal("tamper hook never mutated the destination")
			}
			if got := migrated.router.RingEpoch(); got != 0 {
				t.Fatalf("ring flipped (epoch %d) over a corrupt copy", got)
			}
			if migrated.router.Migrating() || c.Status().Phase != reshard.PhaseIdle {
				t.Fatal("aborted migration left the window open")
			}
			assertOracle(t, ctx, control, migrated, "after abort")
			assertClean(t, ctx, migrated, "after abort")
			assertSingleHome(t, ctx, migrated, "after abort")
		})
	}
}

// TestIdleControllerCostParity: a namespace with an idle controller must
// spend exactly the same cloud ops as one without any controller, and
// stamps must keep their pre-epoch format.
func TestIdleControllerCostParity(t *testing.T) {
	ctx := context.Background()
	batches := workloadBatches(t)
	plain := buildTarget(t, "s3+sdb", 4, 17)
	managed := buildTarget(t, "s3+sdb", 4, 17)
	c := controller(t, managed, nil, nil)
	c.SampleBaseline()

	replay(t, ctx, plain, batches)
	replay(t, ctx, managed, batches)
	for _, q := range oracleQueries() {
		canonical(t, ctx, plain.router, q)
		canonical(t, ctx, managed.router, q)
	}
	rep, err := c.RunOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Balanced traffic across 4 shards never crosses the 0.5 ceiling.
	if rep.Action != "none" {
		t.Fatalf("idle reconciliation acted: %q", rep.Action)
	}
	if p, m := plain.totalOps(), managed.totalOps(); p != m {
		t.Fatalf("idle controller changed op count: plain=%d managed=%d", p, m)
	}
	if s := managed.router.StampToken(); strings.HasPrefix(s, "e") {
		t.Fatalf("idle stamp carries an epoch prefix: %q", s)
	}
}
