// Package reshard is the elastic-resharding control plane: a
// reconciliation loop that watches per-shard billing meters for hot
// arcs, plans a split of the hot shard's ring points (or a merge of a
// cold shard's), and executes the move as copy -> verify -> flip.
// Integrity is the migration's own oracle: before the cutover the
// destination's Merkle leaves over the moved subjects are re-derived
// from a fresh audit and cross-checked against the source's — a copy
// altered in any byte fails verification and the migration aborts to
// fully-unmoved. Only after the leaves match does the controller
// atomically flip the router's ring epoch; the double-read window
// (shard.BeginMigration .. EndMigration) keeps every query bit-identical
// while both copies of the arc exist.
//
// Crash atomicity: the journal records which side of the flip the
// controller reached. Recover rolls an interrupted migration back
// (journal says copied: remove the destination's copy) or forward
// (journal says flipped: remove the source's stale copy) — the store
// never converges to a state where the arc is partially moved.
package reshard

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"passcloud/internal/cloud"
	"passcloud/internal/cloud/billing"
	"passcloud/internal/core"
	"passcloud/internal/core/shard"
	"passcloud/internal/sim"
)

// The controller's crash points, in protocol order. The fault sweep's
// migration class arms these to prove copy->flip atomicity.
const (
	PointBeforeImport = "reshard/before-import"
	PointAfterImport  = "reshard/after-import"
	PointBeforeFlip   = "reshard/before-flip"
	PointAfterFlip    = "reshard/after-flip"
)

// Typed failures callers branch on.
var (
	// ErrMigrationActive: Execute was called while a journaled migration
	// is still open; Recover first.
	ErrMigrationActive = errors.New("reshard: migration already in progress")
	// ErrSourceUnstable: the source shard's stamp kept moving during
	// export; drain writers and retry.
	ErrSourceUnstable = errors.New("reshard: source shard changed during export")
	// ErrVerifyFailed: the destination's re-derived leaves do not match
	// the source's — the copy is not faithful. The migration aborted to
	// fully-unmoved.
	ErrVerifyFailed = errors.New("reshard: pre-cutover verification failed")
	// ErrNotMigratable: a shard's store does not implement core.Migrator.
	ErrNotMigratable = errors.New("reshard: shard store does not support arc migration")
)

// Phase is the journal's position in the copy/verify/flip state machine.
type Phase int

const (
	// PhaseIdle: no migration in flight.
	PhaseIdle Phase = iota
	// PhaseCopied: the arc is exported (and possibly imported) but the
	// ring has not flipped; recovery rolls back to fully-unmoved.
	PhaseCopied
	// PhaseFlipped: the ring flipped but the source's stale copy may
	// remain; recovery rolls forward to fully-moved.
	PhaseFlipped
)

// String names the phase for status output.
func (p Phase) String() string {
	switch p {
	case PhaseIdle:
		return "idle"
	case PhaseCopied:
		return "copied"
	case PhaseFlipped:
		return "flipped"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Config wires a controller to one namespace's router and clouds.
type Config struct {
	// Router is the namespace's shard router.
	Router *shard.Router
	// Clouds are the per-shard clouds, index-aligned with the router's
	// shards; their meters are the hot-arc detector's signal and the
	// migration cost ledger.
	Clouds []*cloud.Cloud
	// Faults, when non-nil, is checked at the controller's crash points.
	Faults *sim.FaultPlan
	// HotCeiling is the op-share above which a shard counts as hot (and
	// the convergence target a split must land under). Default 0.5.
	HotCeiling float64
	// Retries bounds export re-reads when the source stamp moves
	// mid-export. Default 3.
	Retries int
	// Drain, when non-nil, quiesces buffered writers (client WAL, commit
	// daemons) before an arc is exported. The router's own Sync always
	// runs as well.
	Drain func(ctx context.Context) error
	// Settle, when non-nil, delivers in-flight simulated-cloud traffic
	// (eventual-consistency windows) before scans. Defaults to settling
	// every configured cloud.
	Settle func()
	// BeforeVerify, when non-nil, runs between the import and the
	// pre-cutover verification — the fault sweep's and the tests'
	// tampering point for proving that a copy corrupted in flight is
	// detected before the ring flips.
	BeforeVerify func(ctx context.Context) error
}

// Controller owns one namespace's migrations. All methods are
// serialized; queries never pass through the controller.
type Controller struct {
	cfg  Config
	migs []core.Migrator

	mu sync.Mutex
	// journal is the crash-recovery record: the active plan and which
	// side of the flip it reached.
	phase Phase
	plan  *Plan

	// baseline is the per-shard usage snapshot op shares are measured
	// against.
	baseline    []billing.Usage
	baselineSet bool

	last *Report
}

// New validates the wiring and type-asserts every shard's store to
// core.Migrator.
func New(cfg Config) (*Controller, error) {
	if cfg.Router == nil {
		return nil, errors.New("reshard: config needs a router")
	}
	n := cfg.Router.NumShards()
	if len(cfg.Clouds) != n {
		return nil, fmt.Errorf("reshard: %d clouds for %d shards", len(cfg.Clouds), n)
	}
	if cfg.HotCeiling <= 0 || cfg.HotCeiling >= 1 {
		cfg.HotCeiling = 0.5
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 3
	}
	migs := make([]core.Migrator, n)
	for i := 0; i < n; i++ {
		m, ok := cfg.Router.Shard(i).(core.Migrator)
		if !ok {
			return nil, fmt.Errorf("%w: shard %d (%T)", ErrNotMigratable, i, cfg.Router.Shard(i))
		}
		migs[i] = m
	}
	return &Controller{cfg: cfg, migs: migs}, nil
}

// Status is a point-in-time view of the controller and ring.
type Status struct {
	Phase     Phase
	Epoch     int
	Migrating bool
	// Shares are the per-shard op shares since the baseline sample
	// (nil when no baseline is set).
	Shares []float64
	// Plan is the journaled plan when Phase != PhaseIdle.
	Plan *Plan
	// Last is the most recent completed report, nil before any run.
	Last *Report
}

// Status reports the controller's current state.
func (c *Controller) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Status{
		Phase:     c.phase,
		Epoch:     c.cfg.Router.RingEpoch(),
		Migrating: c.cfg.Router.Migrating(),
		Shares:    c.sharesLocked(),
		Plan:      c.plan,
		Last:      c.last,
	}
}

// settle delivers in-flight cloud traffic so scans observe every
// committed write.
func (c *Controller) settle() {
	if c.cfg.Settle != nil {
		c.cfg.Settle()
		return
	}
	for _, cl := range c.cfg.Clouds {
		cl.Settle()
	}
}

// drain quiesces buffered writers and the router's members.
func (c *Controller) drain(ctx context.Context) error {
	if c.cfg.Drain != nil {
		if err := c.cfg.Drain(ctx); err != nil {
			return fmt.Errorf("reshard: drain: %w", err)
		}
	}
	if err := c.cfg.Router.Sync(ctx); err != nil {
		return fmt.Errorf("reshard: sync: %w", err)
	}
	c.settle()
	return nil
}

// check fires a controller crash point against the configured fault
// plan; nil plans never fire.
func (c *Controller) check(point string) error {
	if c.cfg.Faults == nil {
		return nil
	}
	return c.cfg.Faults.Check(point)
}
