// Package s3sdbsqs implements the paper's third architecture (§4.3,
// Figure 3): data in S3, provenance in SimpleDB, and an SQS queue per
// client used as a write-ahead log to restore atomicity — and with it read
// correctness — on top of the second architecture.
//
// The protocol has two phases. The log phase (Store.PutBatch) runs at the
// client: it records everything the transaction will do on the WAL queue —
// a begin record with the transaction's record count, a pointer per file
// version to a temporary S3 object holding its data ("we store the file as
// a temporary S3 object, recording a pointer to the temporary object in
// the WAL queue"), the provenance in 8 KB chunks, the MD5 consistency
// records, and finally a commit record. One PASS flush batch — a close's
// whole ancestor chain — is one transaction, so begin/commit overhead is
// paid once per close rather than once per version. The commit phase
// (CommitDaemon) drains the queue, pushes committed transactions to S3 and
// SimpleDB (items grouped into BatchPutAttributes calls), and only then
// deletes the log records and the temporary objects.
//
// Idempotency makes replay after daemon crashes safe: COPY-then-delete (not
// rename) keeps the temporary object until the very end, and S3 and
// SimpleDB writes are idempotent. Uncommitted transactions are ignored;
// SQS's four-day retention reaps their messages and the Cleaner daemon
// reaps their temporary objects.
package s3sdbsqs

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"strconv"
	"sync"

	"passcloud/internal/cloud"
	"passcloud/internal/cloud/retry"
	"passcloud/internal/cloud/sqs"
	"passcloud/internal/core"
	"passcloud/internal/core/integrity"
	"passcloud/internal/core/sdbprov"
	"passcloud/internal/pass"
	"passcloud/internal/prov"
	"passcloud/internal/sim"
)

// TmpPrefix prefixes temporary data objects awaiting commit.
const TmpPrefix = "tmp/"

// Config parameterizes the store.
type Config struct {
	// Cloud supplies S3, SimpleDB and SQS. Required.
	Cloud *cloud.Cloud
	// Bucket and Domain follow sdbprov defaults when empty.
	Bucket string
	Domain string
	// ClientID names this client's WAL queue ("Each client has an SQS
	// queue that it uses as a write-ahead log"). Defaults to "client0".
	ClientID string
	// Faults optionally injects client crashes at protocol points.
	Faults *sim.FaultPlan
	// MaxReadRetries bounds the consistency retry loop.
	MaxReadRetries int
	// DisableQueryCache turns off the sdbprov layer's generation-stamped
	// query cache, restoring the paper's one-query-run-per-call costs.
	DisableQueryCache bool
	// Retry bounds the transient-error backoff around every cloud call.
	Retry retry.Policy
	// DisableIntegrity turns off the Merkle ledger and checkpoint riders —
	// the op-count parity baseline. Checkpoints are stamped with the
	// ClientID, so clients sharing a domain commit to their own writes.
	DisableIntegrity bool
}

// Store is the S3+SimpleDB+SQS architecture (client side).
type Store struct {
	cloud  *cloud.Cloud
	layer  *sdbprov.Layer
	faults *sim.FaultPlan
	queue  string

	mu sync.Mutex
	// logged tracks the highest version this client has committed to the
	// WAL per object. Partial-batch recovery can reorder flushes across
	// retries; an older pending version logged after a newer one must not
	// carry a data record, or the commit daemon would regress the object.
	logged map[prov.ObjectID]prov.Version
}

// New builds the store, creating bucket, domain and WAL queue if needed.
func New(cfg Config) (*Store, error) {
	if cfg.Cloud == nil {
		return nil, errors.New("s3sdbsqs: Config.Cloud is required")
	}
	if cfg.ClientID == "" {
		cfg.ClientID = "client0"
	}
	layer, err := sdbprov.New(sdbprov.Config{
		Cloud:             cfg.Cloud,
		Bucket:            cfg.Bucket,
		Domain:            cfg.Domain,
		Faults:            cfg.Faults,
		MaxReadRetries:    cfg.MaxReadRetries,
		DisableQueryCache: cfg.DisableQueryCache,
		Retry:             cfg.Retry,
		Writer:            cfg.ClientID,
		DisableIntegrity:  cfg.DisableIntegrity,
	})
	if err != nil {
		return nil, err
	}
	queue := "wal-" + cfg.ClientID
	//passvet:allow retrywrap -- one-shot namespace setup at construction: no caller context exists yet, and a failure surfaces directly instead of being retried behind the builder's back
	if err := cfg.Cloud.SQS.CreateQueue(queue); err != nil && !errors.Is(err, sqs.ErrQueueExists) {
		return nil, err
	}
	return &Store{cloud: cfg.Cloud, layer: layer, faults: cfg.Faults, queue: queue,
		logged: make(map[prov.ObjectID]prov.Version)}, nil
}

// Name implements core.Store.
func (s *Store) Name() string { return "s3+sdb+sqs" }

// Properties implements core.Store: Table 1 row 3 — everything.
func (s *Store) Properties() core.Properties {
	return core.Properties{
		Atomicity:      true,
		Consistency:    true,
		CausalOrdering: true,
		EfficientQuery: true,
	}
}

// Layer exposes the SimpleDB provenance layer.
func (s *Store) Layer() *sdbprov.Layer { return s.layer }

// RetryStats snapshots the store's retry counters (shared with its layer,
// the commit daemon and the cleaner).
func (s *Store) RetryStats() retry.Snapshot { return s.layer.RetryStats() }

// Queue returns the WAL queue name.
func (s *Store) Queue() string { return s.queue }

// ExportArc implements core.Migrator via the provenance layer. The WAL
// must be drained first (the reshard controller syncs and pumps the
// commit daemon before exporting): logged-but-uncommitted transactions
// are invisible to the layer scan and would be left behind.
func (s *Store) ExportArc(ctx context.Context, match func(prov.ObjectID) bool) (*core.ArcExport, error) {
	return s.layer.ExportArc(ctx, match)
}

// ImportArc implements core.Migrator via the provenance layer, bypassing
// the WAL exactly like the commit daemon's apply path does: the records
// were already made durable by the source shard, so re-logging them
// would only add a redundant failure window.
func (s *Store) ImportArc(ctx context.Context, exp *core.ArcExport) error {
	return s.layer.ImportArc(ctx, exp)
}

// RemoveArc implements core.Migrator via the provenance layer.
func (s *Store) RemoveArc(ctx context.Context, match func(prov.ObjectID) bool) (int, error) {
	return s.layer.RemoveArc(ctx, match)
}

// StampToken implements core.Stamped via the provenance layer's stamp.
func (s *Store) StampToken() string { return s.layer.StampToken() }

// PutBatch implements core.Store: the §4.3 log phase, batch-first. The
// whole batch becomes ONE write-ahead-log transaction — a single begin
// record, one temporary-object pointer per file version, the batch's
// provenance in 8 KB chunks, the MD5 consistency records, and a single
// commit — so a close with K unpersisted ancestors pays one begin/commit
// pair instead of K, and the commit daemon can push the whole batch's
// items to SimpleDB with grouped BatchPutAttributes calls.
//
// Nothing touches the real data keys or the provenance domain here — only
// the WAL queue and temporary objects. A crash (or context cancellation)
// at any point leaves an uncommitted transaction that the commit daemon
// ignores and the cleaner eventually reaps, so a retried batch is safe.
func (s *Store) PutBatch(ctx context.Context, batch []pass.FlushEvent) error {
	return s.layer.TrackWrites(func() error { return s.putBatch(ctx, batch) })
}

func (s *Store) putBatch(ctx context.Context, batch []pass.FlushEvent) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(batch) == 0 {
		return nil
	}
	// Query-visible state only changes when the commit daemon pushes this
	// transaction (WriteEncodedBatch bumps the layer's generation then),
	// but the contract is that every PutBatch invalidates: a retried or
	// replayed batch must never be answered from a pre-write snapshot.
	defer s.layer.InvalidateQueries()
	txid := s.cloud.RNG.Hex(8)

	// Assemble the messages that follow begin: per event — data pointer,
	// provenance chunks, MD5 record. Pre-encoding sends >1 KB values to S3
	// now, as the paper's formula requires (N_provrecs>1KB extra PUTs in
	// this architecture too); the WAL carries pointers.
	type tmpPut struct {
		key  string
		data []byte
		meta map[string]string
	}
	var msgs []walMessage
	var tmps []tmpPut
	for i, ev := range batch {
		if err := ctx.Err(); err != nil {
			return err
		}
		item := prov.EncodeItemName(ev.Ref)
		// The integrity leaf hashes the ORIGINAL record set, before value
		// encoding diverts >1 KB values to pointers; it travels in the WAL
		// because the commit daemon never sees the decoded form.
		var leaf string
		if s.layer.IntegrityEnabled() {
			leaf = integrity.SubjectHash(ev.Ref, ev.Records)
		}
		encoded, err := s.layer.EncodeValues(ctx, ev.Ref, ev.Records, "wal")
		if err != nil {
			return err
		}
		chunks, err := prov.ChunkJSON(encoded, walChunkBudget)
		if err != nil {
			return err
		}
		s.mu.Lock()
		stale := ev.Persistent() && s.logged[ev.Ref.Object] > ev.Ref.Version
		s.mu.Unlock()
		var nonce, md5hex string
		if ev.Persistent() && !stale {
			// An event whose object already logged a newer version keeps
			// its provenance records but drops the data pointer: replaying
			// the old bytes through the commit daemon would regress the
			// object the newer transaction committed.
			nonce = strconv.Itoa(int(ev.Ref.Version)) + "-" + s.cloud.RNG.Hex(4)
			md5hex = sdbprov.ConsistencyMD5(ev.Data, nonce)
			tmpKey := fmt.Sprintf("%s%s-%d", TmpPrefix, txid, i)
			msgs = append(msgs, walMessage{
				TxID:    txid,
				Kind:    kindData,
				TmpKey:  tmpKey,
				RealKey: sdbprov.DataKey(ev.Ref.Object),
				Nonce:   nonce,
				Version: int(ev.Ref.Version),
			})
			tmps = append(tmps, tmpPut{key: tmpKey, data: ev.Data, meta: map[string]string{
				sdbprov.MetaNonce:   nonce,
				sdbprov.MetaVersion: strconv.Itoa(int(ev.Ref.Version)),
			}})
		}
		for _, chunk := range chunks {
			msgs = append(msgs, walMessage{TxID: txid, Kind: kindProv, Item: item, Records: chunk, Leaf: leaf})
		}
		if ev.Persistent() && !stale {
			msgs = append(msgs, walMessage{TxID: txid, Kind: kindMD5, Item: item, MD5: md5hex})
		}
	}
	// Seq-number the transaction: begin=0, records 1..N, commit=N+1. The
	// daemon assembles by distinct Seq, so duplicate deliveries and
	// duplicate (retried) sends collapse instead of inflating the count.
	total := len(msgs) + 2
	for i := range msgs {
		msgs[i].Seq = i + 1
	}
	commit := walMessage{TxID: txid, Kind: kindCommit, Seq: total - 1}

	// 1(b): begin record with the transaction's record count.
	if err := s.faults.Check("wal/before-begin"); err != nil {
		return err
	}
	if err := s.send(ctx, walMessage{TxID: txid, Kind: kindBegin, Seq: 0, Count: total}); err != nil {
		return err
	}
	if err := s.faults.Check("wal/after-begin"); err != nil {
		return err
	}

	// 1(c): data goes to temporary objects; only pointers enter the log
	// ("we cannot directly record large data items on the WAL queue").
	// Re-PUT of the same temporary key/content is idempotent under retry.
	for _, tp := range tmps {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := s.layer.Retrier().Do(ctx, "s3sdbsqs/tmp-put", func() error {
			return s.cloud.S3.Put(s.layer.Bucket(), tp.key, tp.data, tp.meta)
		})
		if err != nil {
			return fmt.Errorf("s3sdbsqs: temp put: %w", err)
		}
		if err := s.faults.Check("wal/after-tmp-put"); err != nil {
			return err
		}
	}

	// 1(c)–1(d): data pointers, provenance chunks, MD5 records.
	for i, m := range msgs {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := s.send(ctx, m); err != nil {
			return err
		}
		if err := s.faults.Check(fmt.Sprintf("wal/after-record-%d", i)); err != nil {
			return err
		}
	}
	if err := s.faults.Check("wal/before-commit"); err != nil {
		return err
	}

	// 1(e): the commit record seals the transaction.
	if err := s.send(ctx, commit); err != nil {
		return err
	}
	// The transaction is sealed: remember the versions it will commit so a
	// reordered retry of an older pending version cannot log a data record
	// over them.
	s.mu.Lock()
	for _, ev := range batch {
		if ev.Persistent() && ev.Ref.Version > s.logged[ev.Ref.Object] {
			s.logged[ev.Ref.Object] = ev.Ref.Version
		}
	}
	s.mu.Unlock()
	if err := s.faults.Check("wal/after-commit"); err != nil {
		// The commit record is already on the queue: the transaction WILL
		// commit once the daemon drains it. Report every event as landed so
		// the caller does not replay the batch into a second transaction.
		landed := make([]prov.Ref, len(batch))
		for i, ev := range batch {
			landed[i] = ev.Ref
		}
		return core.PartialWrite(landed, err)
	}
	return nil
}

// send encodes and enqueues one WAL message, retrying transient SQS errors.
// A send retried after a lost response duplicates the message; the daemon's
// Seq-based assembly makes that harmless.
func (s *Store) send(ctx context.Context, m walMessage) error {
	body, err := m.encode()
	if err != nil {
		return err
	}
	err = s.layer.Retrier().Do(ctx, "s3sdbsqs/wal-send", func() error {
		_, serr := s.cloud.SQS.SendMessage(s.queue, body)
		return serr
	})
	if err != nil {
		return fmt.Errorf("s3sdbsqs: wal send: %w", err)
	}
	return nil
}

// Get implements core.Store via the verified-read protocol (shared with
// architecture 2). Data logged but not yet committed is not visible; once
// the commit daemon runs, reads verify MD5(data‖nonce) and retry across
// the COPY/PutAttributes window until both sides agree.
func (s *Store) Get(ctx context.Context, object prov.ObjectID) (*core.Object, error) {
	return s.layer.VerifiedGet(ctx, object)
}

// Provenance implements core.Store.
func (s *Store) Provenance(ctx context.Context, ref prov.Ref) ([]prov.Record, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	records, _, ok, err := s.layer.FetchItem(ctx, ref)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: %s", core.ErrNotFound, ref)
	}
	return records, nil
}

// Query implements core.Querier: the SimpleDB layer's native plans —
// predicate pushdown, two-phase tool queries, prefix traversals, snapshot
// fallback — answer every descriptor.
func (s *Store) Query(ctx context.Context, q prov.Query) iter.Seq2[core.Entry, error] {
	return s.layer.Query(ctx, q)
}

// Explain implements core.Querier.
func (s *Store) Explain(q prov.Query) core.QueryPlan {
	p := s.layer.Explain(q)
	p.Arch = s.Name()
	return p
}

// PlanQueryRefs implements core.RefPlanner: the SimpleDB layer's plan
// simulation predicts the reference set q's native plan would return.
func (s *Store) PlanQueryRefs(q prov.Query) ([]prov.Ref, bool) {
	return s.layer.PlanQueryRefs(q)
}

// AllProvenance implements Q.1.
//
// Deprecated: build prov.Q1 and use Query.
func (s *Store) AllProvenance(ctx context.Context) (map[prov.Ref][]prov.Record, error) {
	return s.layer.AllProvenance(ctx)
}

// AllProvenanceSeq streams Q.1.
//
// Deprecated: build prov.Q1 and use Query.
func (s *Store) AllProvenanceSeq(ctx context.Context) iter.Seq2[core.Entry, error] {
	return s.layer.AllProvenanceSeq(ctx)
}

// ProvenanceGraph implements core.GraphQuerier.
func (s *Store) ProvenanceGraph(ctx context.Context) (*prov.Graph, error) {
	return s.layer.ProvenanceGraph(ctx)
}

// OutputsOf implements Q.2.
//
// Deprecated: build prov.QOutputsOf and use Query.
func (s *Store) OutputsOf(ctx context.Context, tool string) ([]prov.Ref, error) {
	return s.layer.OutputsOf(ctx, tool)
}

// DescendantsOfOutputs implements Q.3.
//
// Deprecated: build prov.QDescendantsOfOutputs and use Query.
func (s *Store) DescendantsOfOutputs(ctx context.Context, tool string) ([]prov.Ref, error) {
	return s.layer.DescendantsOfOutputs(ctx, tool)
}

// Dependents runs one indexed prefix query.
//
// Deprecated: build prov.QDependents and use Query.
func (s *Store) Dependents(ctx context.Context, object prov.ObjectID) ([]prov.Ref, error) {
	return s.layer.Dependents(ctx, object)
}

// Audit implements integrity.Auditor via the shared provenance layer. Only
// committed state is auditable: WAL transactions the commit daemon has not
// drained yet are invisible, exactly like they are to queries.
func (s *Store) Audit(ctx context.Context) (*integrity.Audit, error) {
	return s.layer.Audit(ctx)
}

var (
	_ core.Store        = (*Store)(nil)
	_ core.Querier      = (*Store)(nil)
	_ core.GraphQuerier = (*Store)(nil)
)
