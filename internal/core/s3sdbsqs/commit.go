package s3sdbsqs

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"passcloud/internal/cloud"
	"passcloud/internal/cloud/s3"
	"passcloud/internal/core/sdbprov"
	"passcloud/internal/prov"
	"passcloud/internal/sim"
)

// CommitDaemon executes the §4.3 commit phase: "A separate daemon on the
// client, the commit daemon, reads the log records from transactions that
// have a commit record and pushes them to S3 and SimpleDB appropriately.
// After transmitting all the operations for a transaction, the commit
// daemon deletes the log records in the WAL queue."
//
// Replay safety relies on idempotency (§4.3): COPY keeps the temporary
// object until the final delete, so a crash mid-commit simply reprocesses
// the transaction — re-COPY and re-PutAttributes change nothing.
type CommitDaemon struct {
	cloud  *cloud.Cloud
	layer  *sdbprov.Layer
	queue  string
	faults *sim.FaultPlan

	// Threshold is the approximate queue depth that triggers a drain:
	// "The daemon periodically monitors the WAL queue for the number of
	// messages ... Once it exceeds a threshold, the daemon executes the
	// commit phase."
	Threshold int

	// Visibility hides received messages while a drain is in progress.
	Visibility time.Duration

	// pending carries partially assembled transactions across rounds: due
	// to SQS's eventual consistency "there may be times where the daemon
	// receives the commit record of a transaction but does not receive all
	// rest of the records".
	pending map[string]*txState
}

// txState is one transaction under assembly. A transaction covers one PASS
// flush batch, so it may carry several data pointers (one per file version)
// and the provenance of several items.
type txState struct {
	begin    bool
	count    int // messages expected after begin (commit included)
	commit   bool
	dataMsgs []walMessage
	md5Msgs  []walMessage
	provMsgs []walMessage
	msgSeen  map[string]bool   // message IDs, so redelivery does not duplicate
	receipts map[string]string // message ID -> latest receipt handle
}

// NewCommitDaemon builds a daemon for a store's WAL queue.
func NewCommitDaemon(st *Store, faults *sim.FaultPlan) *CommitDaemon {
	return &CommitDaemon{
		cloud:      st.cloud,
		layer:      st.layer,
		queue:      st.queue,
		faults:     faults,
		Threshold:  1,
		Visibility: 5 * time.Minute,
		pending:    make(map[string]*txState),
	}
}

// RunOnce performs one daemon cycle: check the approximate queue depth
// against the threshold, and if reached (or force is set), drain the queue
// and process every complete committed transaction. It returns the number
// of transactions committed this round.
func (d *CommitDaemon) RunOnce(ctx context.Context, force bool) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if !force {
		n, err := d.cloud.SQS.ApproximateNumberOfMessages(d.queue)
		if err != nil {
			return 0, err
		}
		if n < d.Threshold {
			return 0, nil
		}
	}
	if err := d.drain(ctx); err != nil {
		return 0, err
	}
	return d.processReady(ctx)
}

// Run loops RunOnce until the context ends, advancing through the poll
// interval on the simulated clock. Examples use it; tests use RunOnce.
func (d *CommitDaemon) Run(ctx context.Context, poll time.Duration) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, err := d.RunOnce(ctx, false); err != nil {
			return err
		}
		d.cloud.Clock.Advance(poll)
	}
}

// drain pulls messages until several consecutive receives come back empty —
// the repeat-until-satisfied discipline SQS sampling demands.
func (d *CommitDaemon) drain(ctx context.Context) error {
	emptyRounds := 0
	for emptyRounds < 4 {
		if err := ctx.Err(); err != nil {
			return err
		}
		batch, err := d.cloud.SQS.ReceiveMessage(d.queue, 10, d.Visibility)
		if err != nil {
			return err
		}
		if len(batch) == 0 {
			emptyRounds++
			continue
		}
		emptyRounds = 0
		for _, m := range batch {
			wal, err := decodeWAL(m.Body)
			if err != nil {
				// A corrupt message cannot belong to a valid commit;
				// delete it so it stops churning.
				_ = d.cloud.SQS.DeleteMessage(d.queue, m.ReceiptHandle)
				continue
			}
			d.absorb(wal, m.ID, m.ReceiptHandle)
		}
	}
	return nil
}

// absorb merges one received message into its transaction's state.
func (d *CommitDaemon) absorb(wal walMessage, msgID, receipt string) {
	tx := d.pending[wal.TxID]
	if tx == nil {
		tx = &txState{
			msgSeen:  make(map[string]bool),
			receipts: make(map[string]string),
		}
		d.pending[wal.TxID] = tx
	}
	tx.receipts[msgID] = receipt // always refresh: handles rotate per receive
	if tx.msgSeen[msgID] {
		return // redelivery of an already-absorbed message
	}
	tx.msgSeen[msgID] = true

	switch wal.Kind {
	case kindBegin:
		tx.begin = true
		tx.count = wal.Count
	case kindCommit:
		tx.commit = true
	case kindData:
		tx.dataMsgs = append(tx.dataMsgs, wal)
	case kindMD5:
		tx.md5Msgs = append(tx.md5Msgs, wal)
	case kindProv:
		tx.provMsgs = append(tx.provMsgs, wal)
	}
}

// complete reports whether every message of the transaction has arrived.
func (tx *txState) complete() bool {
	if !tx.begin || !tx.commit {
		return false
	}
	have := len(tx.provMsgs) + len(tx.dataMsgs) + len(tx.md5Msgs) + 1 // +1 commit
	return have >= tx.count
}

// processReady commits every fully assembled transaction, in deterministic
// object/version order within the round.
func (d *CommitDaemon) processReady(ctx context.Context) (int, error) {
	var ready []string
	for txid, tx := range d.pending {
		if tx.complete() {
			ready = append(ready, txid)
		}
	}
	sort.Slice(ready, func(i, j int) bool {
		a, b := d.pending[ready[i]], d.pending[ready[j]]
		ka, kb := txOrderKey(a), txOrderKey(b)
		if ka != kb {
			return ka < kb
		}
		return ready[i] < ready[j]
	})

	done := 0
	for _, txid := range ready {
		if err := ctx.Err(); err != nil {
			return done, err
		}
		var retry bool
		terr := d.layer.TrackWrites(func() error {
			var err error
			retry, err = d.commitTx(ctx, txid, d.pending[txid])
			return err
		})
		err := terr
		if err != nil {
			return done, err
		}
		if retry {
			continue // e.g. temp object not yet visible: next round
		}
		delete(d.pending, txid)
		done++
	}
	return done, nil
}

// txOrderKey orders transactions by first data destination and version so
// that same-object versions commit in order within a round.
func txOrderKey(tx *txState) string {
	if len(tx.dataMsgs) == 0 {
		return ""
	}
	first := tx.dataMsgs[0]
	for _, m := range tx.dataMsgs[1:] {
		if m.RealKey < first.RealKey || (m.RealKey == first.RealKey && m.Version < first.Version) {
			first = m
		}
	}
	return fmt.Sprintf("%s#%09d", first.RealKey, first.Version)
}

// commitTx executes the §4.3 commit steps for one transaction:
//
//	(b) COPY each object from its temporary name to its real name;
//	(c) store the batch's provenance in SimpleDB, items grouped into
//	    BatchPutAttributes calls;
//	(d) delete the WAL messages, then delete the temporary objects.
//
// retry is true when the transaction should be reattempted later (a
// temporary object has not propagated to the serving replica yet).
func (d *CommitDaemon) commitTx(ctx context.Context, txid string, tx *txState) (retry bool, err error) {
	// (b) the data COPYs, in (key, version) order so that several versions
	// of one object within the transaction land last-writer-correct. The
	// temporary objects' metadata already carries nonce and version; COPY
	// preserves it.
	dataMsgs := append([]walMessage(nil), tx.dataMsgs...)
	sort.Slice(dataMsgs, func(i, j int) bool {
		if dataMsgs[i].RealKey != dataMsgs[j].RealKey {
			return dataMsgs[i].RealKey < dataMsgs[j].RealKey
		}
		return dataMsgs[i].Version < dataMsgs[j].Version
	})
	for _, dm := range dataMsgs {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		err := d.cloud.S3.Copy(d.layer.Bucket(), dm.TmpKey, d.layer.Bucket(), dm.RealKey, nil)
		if err != nil {
			if errors.Is(err, s3.ErrNoSuchKey) {
				return true, nil // not propagated yet; retry next round
			}
			return false, fmt.Errorf("s3sdbsqs: commit copy: %w", err)
		}
		if err := d.faults.Check("commit/after-copy"); err != nil {
			return false, err
		}
	}

	// (c) provenance into SimpleDB. Records were value-encoded during the
	// log phase, so they group straight into batched item writes.
	recordsByItem := make(map[string][]prov.Record)
	var itemOrder []string
	for _, pm := range tx.provMsgs {
		records, err := pm.decodeRecords()
		if err != nil {
			return false, err
		}
		if pm.Item == "" {
			continue
		}
		if _, ok := recordsByItem[pm.Item]; !ok {
			itemOrder = append(itemOrder, pm.Item)
		}
		recordsByItem[pm.Item] = append(recordsByItem[pm.Item], records...)
	}
	md5ByItem := make(map[string]string, len(tx.md5Msgs))
	for _, mm := range tx.md5Msgs {
		if _, ok := recordsByItem[mm.Item]; !ok {
			itemOrder = append(itemOrder, mm.Item)
		}
		md5ByItem[mm.Item] = mm.MD5
	}
	// SQS sampling may deliver the chunks in any order; commit items in a
	// deterministic order regardless.
	sort.Strings(itemOrder)
	writes := make([]sdbprov.ItemWrite, 0, len(itemOrder))
	for _, item := range itemOrder {
		subject, err := prov.ParseItemName(item)
		if err != nil {
			return false, err
		}
		writes = append(writes, sdbprov.ItemWrite{
			Subject: subject,
			Records: recordsByItem[item],
			MD5:     md5ByItem[item],
		})
	}
	if len(writes) > 0 {
		if err := d.layer.WriteEncodedBatch(ctx, writes, "commit"); err != nil {
			return false, err
		}
		if err := d.faults.Check("commit/after-prov-write"); err != nil {
			return false, err
		}
	}

	// (d) delete the log records...
	for _, receipt := range tx.receipts {
		if err := d.cloud.SQS.DeleteMessage(d.queue, receipt); err != nil {
			return false, err
		}
	}
	if err := d.faults.Check("commit/after-delete-messages"); err != nil {
		return false, err
	}
	// ...and only then the temporary objects, preserving idempotent replay.
	for _, dm := range dataMsgs {
		if err := d.cloud.S3.Delete(d.layer.Bucket(), dm.TmpKey); err != nil {
			return false, err
		}
	}
	return false, d.faults.Check("commit/after-tmp-delete")
}

// PendingTransactions reports how many transactions are partially
// assembled — a test observability hook.
func (d *CommitDaemon) PendingTransactions() int { return len(d.pending) }
