package s3sdbsqs

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"time"

	"passcloud/internal/cloud"
	"passcloud/internal/cloud/s3"
	"passcloud/internal/cloud/sqs"
	"passcloud/internal/core/sdbprov"
	"passcloud/internal/prov"
	"passcloud/internal/sim"
)

// CommitDaemon executes the §4.3 commit phase: "A separate daemon on the
// client, the commit daemon, reads the log records from transactions that
// have a commit record and pushes them to S3 and SimpleDB appropriately.
// After transmitting all the operations for a transaction, the commit
// daemon deletes the log records in the WAL queue."
//
// Replay safety relies on idempotency (§4.3): COPY keeps the temporary
// object until the final delete, so a crash mid-commit simply reprocesses
// the transaction — re-COPY and re-PutAttributes change nothing. Two
// details harden that story against redelivery:
//
//   - transactions assemble by distinct WAL sequence number, never by
//     message copy, so duplicate deliveries (SQS at-least-once) and
//     duplicate sends (a client retrying a lost response) cannot make a
//     transaction look complete while a distinct record is missing;
//   - a transaction observed via redelivered messages re-COPYs its data
//     only after confirming the live object is not already a NEWER version
//     — a stale transaction replayed after a crash-before-delete must not
//     regress an object that committed again since.
type CommitDaemon struct {
	cloud  *cloud.Cloud
	layer  *sdbprov.Layer
	queue  string
	faults *sim.FaultPlan

	// Threshold is the approximate queue depth that triggers a drain:
	// "The daemon periodically monitors the WAL queue for the number of
	// messages ... Once it exceeds a threshold, the daemon executes the
	// commit phase."
	Threshold int

	// Visibility hides received messages while a drain is in progress.
	Visibility time.Duration

	// pending carries partially assembled transactions across rounds: due
	// to SQS's eventual consistency "there may be times where the daemon
	// receives the commit record of a transaction but does not receive all
	// rest of the records".
	pending map[string]*txState

	// committedVersion tracks, per real data key, the highest version this
	// daemon has committed in its lifetime: the cheap (no extra ops) replay
	// guard. A restarted daemon loses it and falls back to the HEAD probe
	// on redelivered transactions.
	committedVersion map[string]int
}

// txState is one transaction under assembly. A transaction covers one PASS
// flush batch, so it may carry several data pointers (one per file version)
// and the provenance of several items.
type txState struct {
	begin    bool
	count    int // total messages in the tx, begin and commit included
	commit   bool
	dataMsgs []walMessage
	md5Msgs  []walMessage
	provMsgs []walMessage
	seqSeen  map[int]bool      // distinct WAL sequence numbers absorbed
	receipts map[string]string // message ID -> latest receipt handle
	// redelivered is set when any copy arrived with ReceiveCount > 1: a
	// prior daemon may have partially committed this tx before crashing.
	redelivered bool
	// firstSeen bounds how long an incomplete tx is retained.
	firstSeen time.Time
}

// NewCommitDaemon builds a daemon for a store's WAL queue.
func NewCommitDaemon(st *Store, faults *sim.FaultPlan) *CommitDaemon {
	return &CommitDaemon{
		cloud:            st.cloud,
		layer:            st.layer,
		queue:            st.queue,
		faults:           faults,
		Threshold:        1,
		Visibility:       5 * time.Minute,
		pending:          make(map[string]*txState),
		committedVersion: make(map[string]int),
	}
}

// RunOnce performs one daemon cycle: check the approximate queue depth
// against the threshold, and if reached (or force is set), drain the queue
// and process every complete committed transaction. It returns the number
// of transactions committed this round.
func (d *CommitDaemon) RunOnce(ctx context.Context, force bool) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if !force {
		var n int
		err := d.layer.Retrier().Do(ctx, "s3sdbsqs/queue-depth", func() error {
			var qerr error
			n, qerr = d.cloud.SQS.ApproximateNumberOfMessages(d.queue)
			return qerr
		})
		if err != nil {
			return 0, err
		}
		if n < d.Threshold {
			return 0, nil
		}
	}
	if err := d.drain(ctx); err != nil {
		return 0, err
	}
	return d.processReady(ctx)
}

// Run loops RunOnce until the context ends, advancing through the poll
// interval on the simulated clock. Examples use it; tests use RunOnce.
func (d *CommitDaemon) Run(ctx context.Context, poll time.Duration) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, err := d.RunOnce(ctx, false); err != nil {
			return err
		}
		d.cloud.Clock.Advance(poll)
	}
}

// drain pulls messages until several consecutive receives come back empty —
// the repeat-until-satisfied discipline SQS sampling demands. Transient
// receive errors back off and retry inside the loop.
func (d *CommitDaemon) drain(ctx context.Context) error {
	emptyRounds := 0
	for emptyRounds < 4 {
		if err := ctx.Err(); err != nil {
			return err
		}
		var batch []sqs.Message
		err := d.layer.Retrier().Do(ctx, "s3sdbsqs/wal-receive", func() error {
			var rerr error
			batch, rerr = d.cloud.SQS.ReceiveMessage(d.queue, 10, d.Visibility)
			return rerr
		})
		if err != nil {
			return err
		}
		if len(batch) == 0 {
			emptyRounds++
			continue
		}
		emptyRounds = 0
		for _, m := range batch {
			wal, err := decodeWAL(m.Body)
			if err != nil {
				// A corrupt message cannot belong to a valid commit;
				// delete it so it stops churning.
				//passvet:allow retrywrap -- best-effort purge of an undecodable message: a lost delete only means SQS re-offers it next round, so retrying here buys nothing
				_ = d.cloud.SQS.DeleteMessage(d.queue, m.ReceiptHandle)
				continue
			}
			d.absorb(wal, m)
		}
	}
	return nil
}

// absorb merges one received message copy into its transaction's state.
// Distinct WAL sequence numbers advance assembly; further copies of a seq —
// redelivery or a duplicated send — only refresh bookkeeping (receipts must
// be tracked per copy so the final delete clears every copy).
func (d *CommitDaemon) absorb(wal walMessage, m sqs.Message) {
	tx := d.pending[wal.TxID]
	if tx == nil {
		tx = &txState{
			seqSeen:   make(map[int]bool),
			receipts:  make(map[string]string),
			firstSeen: d.cloud.Clock.Now(),
		}
		d.pending[wal.TxID] = tx
	}
	tx.receipts[m.ID] = m.ReceiptHandle // always refresh: handles rotate per receive
	if m.ReceiveCount > 1 {
		tx.redelivered = true
	}
	if tx.seqSeen[wal.Seq] {
		return // another copy of an already-absorbed record
	}
	tx.seqSeen[wal.Seq] = true

	switch wal.Kind {
	case kindBegin:
		tx.begin = true
		tx.count = wal.Count
	case kindCommit:
		tx.commit = true
	case kindData:
		tx.dataMsgs = append(tx.dataMsgs, wal)
	case kindMD5:
		tx.md5Msgs = append(tx.md5Msgs, wal)
	case kindProv:
		tx.provMsgs = append(tx.provMsgs, wal)
	}
}

// complete reports whether every distinct record of the transaction has
// arrived: begin, commit, and count total sequence numbers. Message copies
// never count twice.
func (tx *txState) complete() bool {
	if !tx.begin || !tx.commit {
		return false
	}
	return len(tx.seqSeen) >= tx.count
}

// processReady commits every fully assembled transaction, in deterministic
// object/version order within the round, and prunes incomplete transactions
// whose records have outlived SQS retention: their missing messages can
// never arrive (SQS reaped them), so holding the assembled fragment would
// wedge the daemon's pending set forever.
func (d *CommitDaemon) processReady(ctx context.Context) (int, error) {
	now := d.cloud.Clock.Now()
	for txid, tx := range d.pending {
		if !tx.complete() && now.Sub(tx.firstSeen) > sqs.RetentionPeriod {
			delete(d.pending, txid)
		}
	}
	var ready []string
	for txid, tx := range d.pending {
		if tx.complete() {
			ready = append(ready, txid)
		}
	}
	sort.Slice(ready, func(i, j int) bool {
		a, b := d.pending[ready[i]], d.pending[ready[j]]
		ka, kb := txOrderKey(a), txOrderKey(b)
		if ka != kb {
			return ka < kb
		}
		return ready[i] < ready[j]
	})

	done := 0
	for _, txid := range ready {
		if err := ctx.Err(); err != nil {
			return done, err
		}
		var retry bool
		terr := d.layer.TrackWrites(func() error {
			var err error
			retry, err = d.commitTx(ctx, txid, d.pending[txid])
			return err
		})
		err := terr
		if err != nil {
			return done, err
		}
		if retry {
			continue // e.g. temp object not yet visible: next round
		}
		delete(d.pending, txid)
		done++
	}
	return done, nil
}

// txOrderKey orders transactions by first data destination and version so
// that same-object versions commit in order within a round.
func txOrderKey(tx *txState) string {
	if len(tx.dataMsgs) == 0 {
		return ""
	}
	first := tx.dataMsgs[0]
	for _, m := range tx.dataMsgs[1:] {
		if m.RealKey < first.RealKey || (m.RealKey == first.RealKey && m.Version < first.Version) {
			first = m
		}
	}
	return fmt.Sprintf("%s#%09d", first.RealKey, first.Version)
}

// commitTx executes the §4.3 commit steps for one transaction:
//
//	(b) COPY each object from its temporary name to its real name;
//	(c) store the batch's provenance in SimpleDB, items grouped into
//	    BatchPutAttributes calls;
//	(d) delete the WAL messages, then delete the temporary objects.
//
// retryTx is true when the transaction should be reattempted later (a
// temporary object has not propagated to the serving replica yet).
func (d *CommitDaemon) commitTx(ctx context.Context, txid string, tx *txState) (retryTx bool, err error) {
	// (b) the data COPYs, in (key, version) order so that several versions
	// of one object within the transaction land last-writer-correct. The
	// temporary objects' metadata already carries nonce and version; COPY
	// preserves it.
	dataMsgs := append([]walMessage(nil), tx.dataMsgs...)
	sort.Slice(dataMsgs, func(i, j int) bool {
		if dataMsgs[i].RealKey != dataMsgs[j].RealKey {
			return dataMsgs[i].RealKey < dataMsgs[j].RealKey
		}
		return dataMsgs[i].Version < dataMsgs[j].Version
	})
	if tx.redelivered && len(dataMsgs) > 0 {
		// A redelivered transaction may be a replay racing a newer commit
		// that has not propagated to every replica yet. The staleReplay
		// probe below must not trust an unconverged HEAD — wait out the
		// horizon first, exactly like the orphan scan does before its
		// destructive decisions.
		d.layer.ConsistencyWait()
	}
	for _, dm := range dataMsgs {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		stale, err := d.staleReplay(tx, dm)
		if err != nil {
			return false, err
		}
		if stale {
			// A newer version of this object committed since this tx was
			// logged (the tx is a replay of a crash-interrupted commit):
			// re-COPYing would regress the object. The provenance item for
			// this version is still (re-)written below — items are
			// per-version and idempotent.
			continue
		}
		err = d.layer.Retrier().Do(ctx, "s3sdbsqs/commit-copy", func() error {
			cerr := d.cloud.S3.Copy(d.layer.Bucket(), dm.TmpKey, d.layer.Bucket(), dm.RealKey, nil)
			if errors.Is(cerr, s3.ErrNoSuchKey) {
				retryTx = true // not propagated yet; retry next round
				return nil
			}
			return cerr
		})
		if err != nil {
			return false, fmt.Errorf("s3sdbsqs: commit copy: %w", err)
		}
		if retryTx {
			return true, nil
		}
		if v, ok := d.committedVersion[dm.RealKey]; !ok || dm.Version > v {
			d.committedVersion[dm.RealKey] = dm.Version
		}
		if err := d.faults.Check("commit/after-copy"); err != nil {
			return false, err
		}
	}

	// (c) provenance into SimpleDB. Records were value-encoded during the
	// log phase, so they group straight into batched item writes.
	recordsByItem := make(map[string][]prov.Record)
	leafByItem := make(map[string]string)
	var itemOrder []string
	for _, pm := range tx.provMsgs {
		records, err := pm.decodeRecords()
		if err != nil {
			return false, err
		}
		if pm.Item == "" {
			continue
		}
		if _, ok := recordsByItem[pm.Item]; !ok {
			itemOrder = append(itemOrder, pm.Item)
		}
		recordsByItem[pm.Item] = append(recordsByItem[pm.Item], records...)
		if pm.Leaf != "" {
			leafByItem[pm.Item] = pm.Leaf
		}
	}
	md5ByItem := make(map[string]string, len(tx.md5Msgs))
	for _, mm := range tx.md5Msgs {
		if _, ok := recordsByItem[mm.Item]; !ok {
			itemOrder = append(itemOrder, mm.Item)
		}
		md5ByItem[mm.Item] = mm.MD5
	}
	// SQS sampling may deliver the chunks in any order; commit items in a
	// deterministic order regardless.
	sort.Strings(itemOrder)
	writes := make([]sdbprov.ItemWrite, 0, len(itemOrder))
	for _, item := range itemOrder {
		subject, err := prov.ParseItemName(item)
		if err != nil {
			return false, err
		}
		writes = append(writes, sdbprov.ItemWrite{
			Subject: subject,
			Records: recordsByItem[item],
			MD5:     md5ByItem[item],
			Leaf:    leafByItem[item],
		})
	}
	if len(writes) > 0 {
		if err := d.layer.WriteEncodedBatch(ctx, writes, "commit"); err != nil {
			return false, err
		}
		if err := d.faults.Check("commit/after-prov-write"); err != nil {
			return false, err
		}
	}

	// (d) delete the log records (every received copy, duplicates included;
	// deletes are idempotent and retried on transient errors)...
	for _, receipt := range tx.receipts {
		r := receipt
		err := d.layer.Retrier().Do(ctx, "s3sdbsqs/wal-delete", func() error {
			return d.cloud.SQS.DeleteMessage(d.queue, r)
		})
		if err != nil {
			return false, err
		}
	}
	if err := d.faults.Check("commit/after-delete-messages"); err != nil {
		return false, err
	}
	// ...and only then the temporary objects, preserving idempotent replay.
	for _, dm := range dataMsgs {
		key := dm.TmpKey
		err := d.layer.Retrier().Do(ctx, "s3sdbsqs/tmp-delete", func() error {
			return d.cloud.S3.Delete(d.layer.Bucket(), key)
		})
		if err != nil {
			return false, err
		}
	}
	return false, d.faults.Check("commit/after-tmp-delete")
}

// staleReplay reports whether dm's COPY would regress its object: true when
// a strictly newer version is already committed. The in-memory
// committedVersion map answers for transactions this daemon committed
// itself; for redelivered transactions — the signature of a predecessor
// daemon crashing mid-commit — a HEAD on the live object checks the
// version the metadata actually carries. Equal versions still re-COPY: the
// tx rewrites its own MD5 record, and data+nonce+MD5 must come from the
// same transaction to stay verifiable.
func (d *CommitDaemon) staleReplay(tx *txState, dm walMessage) (bool, error) {
	if v, ok := d.committedVersion[dm.RealKey]; ok && v > dm.Version {
		return true, nil
	}
	if !tx.redelivered {
		return false, nil
	}
	info, err := d.cloud.S3.Head(d.layer.Bucket(), dm.RealKey)
	if err != nil {
		if errors.Is(err, s3.ErrNoSuchKey) {
			return false, nil // nothing live to regress
		}
		return false, err
	}
	live, err := strconv.Atoi(info.Metadata[sdbprov.MetaVersion])
	if err != nil {
		return false, nil // unversioned foreign object: let COPY decide
	}
	return live > dm.Version, nil
}

// PendingTransactions reports how many transactions are partially
// assembled — a test observability hook.
func (d *CommitDaemon) PendingTransactions() int { return len(d.pending) }
