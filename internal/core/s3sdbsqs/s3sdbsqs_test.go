package s3sdbsqs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"passcloud/internal/cloud"
	"passcloud/internal/cloud/billing"
	"passcloud/internal/core"
	"passcloud/internal/pass"
	"passcloud/internal/prov"
	"passcloud/internal/sim"
)

func newTestStore(t *testing.T, faults *sim.FaultPlan, maxDelay time.Duration) (*Store, *CommitDaemon, *cloud.Cloud) {
	t.Helper()
	cl := cloud.New(cloud.Config{Seed: 1, MaxDelay: maxDelay})
	st, err := New(Config{Cloud: cl, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	return st, NewCommitDaemon(st, nil), cl
}

// pump runs the commit daemon until it reports no progress and nothing
// pending, simulating a daemon that keeps up with its queue.
func pump(t *testing.T, d *CommitDaemon, cl *cloud.Cloud) int {
	t.Helper()
	total := 0
	for i := 0; i < 20; i++ {
		n, err := d.RunOnce(context.Background(), true)
		if err != nil {
			t.Fatalf("commit daemon: %v", err)
		}
		total += n
		if n == 0 && d.PendingTransactions() == 0 {
			return total
		}
		// Let in-flight propagation complete (e.g. temp objects).
		cl.Settle()
	}
	return total
}

func fileEvent(object string, version int, data string, records ...prov.Record) pass.FlushEvent {
	ref := prov.Ref{Object: prov.ObjectID(object), Version: prov.Version(version)}
	base := []prov.Record{
		prov.NewString(ref, prov.AttrType, prov.TypeFile),
		prov.NewString(ref, prov.AttrName, object),
	}
	return pass.FlushEvent{Ref: ref, Type: prov.TypeFile, Data: []byte(data), Records: append(base, records...)}
}

func procEvent(name string, pid int, records ...prov.Record) pass.FlushEvent {
	ref := prov.Ref{Object: prov.ObjectID(fmt.Sprintf("proc/%d/%s", pid, name)), Version: 0}
	base := []prov.Record{
		prov.NewString(ref, prov.AttrType, prov.TypeProcess),
		prov.NewString(ref, prov.AttrName, name),
	}
	return pass.FlushEvent{Ref: ref, Type: prov.TypeProcess, Records: append(base, records...)}
}

func TestLogThenCommitRoundTrip(t *testing.T) {
	st, daemon, cl := newTestStore(t, nil, 0)
	ctx := context.Background()

	if err := core.Put(ctx, st, fileEvent("/out", 0, "payload")); err != nil {
		t.Fatal(err)
	}
	// Before the commit daemon runs, nothing is visible at the real key.
	if _, err := st.Get(ctx, "/out"); err == nil {
		t.Fatal("data visible before commit")
	}

	if n := pump(t, daemon, cl); n != 1 {
		t.Fatalf("committed %d transactions, want 1", n)
	}
	got, err := st.Get(ctx, "/out")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, []byte("payload")) || len(got.Records) != 2 {
		t.Fatalf("got = %+v", got)
	}

	// The temporary object is gone and the WAL queue is empty.
	tmps, err := cl.S3.ListAll(st.Layer().Bucket(), TmpPrefix)
	if err != nil || len(tmps) != 0 {
		t.Fatalf("temp objects remain: %v, %v", tmps, err)
	}
	if n, _ := cl.SQS.Exact(st.Queue()); n != 0 {
		t.Fatalf("WAL queue holds %d messages after commit", n)
	}
}

func TestUncommittedTransactionIsInvisible(t *testing.T) {
	// Crash before the commit record: the daemon must ignore the
	// transaction entirely — this is the atomicity the WAL buys.
	faults := sim.NewFaultPlan()
	faults.Arm("wal/before-commit")
	st, daemon, cl := newTestStore(t, faults, 0)
	ctx := context.Background()

	err := core.Put(ctx, st, fileEvent("/never", 0, "ghost"))
	if !errors.Is(err, sim.ErrCrash) {
		t.Fatalf("err = %v, want injected crash", err)
	}

	if n := pump(t, daemon, cl); n != 0 {
		t.Fatalf("daemon committed %d uncommitted transactions", n)
	}
	if _, err := st.Get(ctx, "/never"); err == nil {
		t.Fatal("uncommitted data became visible")
	}
	if _, err := st.Provenance(ctx, prov.Ref{Object: "/never", Version: 0}); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("uncommitted provenance visible: %v", err)
	}
}

func TestCrashWindowsNeverBreakReadCorrectness(t *testing.T) {
	// Crash the client at every log-phase point in turn. In every case the
	// outcome must be all-or-nothing: either the commit record made it and
	// the daemon completes the write, or nothing becomes visible.
	points := []string{
		"wal/before-begin",
		"wal/after-begin",
		"wal/after-tmp-put",
		"wal/after-record-0",
		"wal/after-record-1",
		"wal/before-commit",
		"wal/after-commit",
	}
	for _, point := range points {
		t.Run(point, func(t *testing.T) {
			faults := sim.NewFaultPlan()
			faults.Arm(point)
			st, daemon, cl := newTestStore(t, faults, 0)
			ctx := context.Background()

			object := "/f-" + strings.ReplaceAll(point, "/", "-")
			err := core.Put(ctx, st, fileEvent(object, 0, "data-"+point))
			crashed := errors.Is(err, sim.ErrCrash)
			if !crashed && err != nil {
				t.Fatal(err)
			}
			pump(t, daemon, cl)

			obj, gerr := st.Get(ctx, prov.ObjectID(object))
			switch {
			case gerr == nil:
				// Visible: must be complete and verified.
				if string(obj.Data) != "data-"+point || len(obj.Records) != 2 {
					t.Fatalf("partial state visible at %s: %+v", point, obj)
				}
			default:
				// Invisible: provenance must be absent too.
				if _, perr := st.Provenance(ctx, prov.Ref{Object: prov.ObjectID(object), Version: 0}); !errors.Is(perr, core.ErrNotFound) {
					t.Fatalf("half state at %s: data absent but provenance %v", point, perr)
				}
			}
		})
	}
}

func TestDaemonCrashReplayIsIdempotent(t *testing.T) {
	// Crash the daemon between every pair of commit steps, restart it, and
	// verify the final state is exactly right each time.
	points := []string{
		"commit/after-copy",
		"commit/after-prov-write",
		"commit/after-delete-messages",
	}
	for _, point := range points {
		t.Run(point, func(t *testing.T) {
			st, _, cl := newTestStore(t, nil, 0)
			ctx := context.Background()
			if err := core.Put(ctx, st, fileEvent("/replay", 0, "payload")); err != nil {
				t.Fatal(err)
			}

			crashFaults := sim.NewFaultPlan()
			crashFaults.Arm(point)
			daemon := NewCommitDaemon(st, crashFaults)
			if _, err := daemon.RunOnce(ctx, true); !errors.Is(err, sim.ErrCrash) {
				t.Fatalf("daemon did not crash at %s: %v", point, err)
			}

			// Visibility timeout must lapse so surviving messages reappear
			// for the restarted daemon.
			cl.Clock.Advance(daemon.Visibility + time.Second)

			fresh := NewCommitDaemon(st, nil)
			pump(t, fresh, cl)

			got, err := st.Get(ctx, "/replay")
			if err != nil {
				t.Fatalf("after replay: %v", err)
			}
			if string(got.Data) != "payload" || len(got.Records) != 2 {
				t.Fatalf("replay corrupted state: %+v", got)
			}
			// Idempotency: no duplicated provenance attributes.
			records, err := st.Provenance(ctx, prov.Ref{Object: "/replay", Version: 0})
			if err != nil || len(records) != 2 {
				t.Fatalf("records after replay = %v, %v", records, err)
			}
		})
	}
}

func TestThresholdGatesCommit(t *testing.T) {
	st, daemon, _ := newTestStore(t, nil, 0)
	daemon.Threshold = 100
	ctx := context.Background()
	if err := core.Put(ctx, st, fileEvent("/gated", 0, "x")); err != nil {
		t.Fatal(err)
	}
	// Below threshold and unforced: nothing happens.
	n, err := daemon.RunOnce(ctx, false)
	if err != nil || n != 0 {
		t.Fatalf("RunOnce below threshold = %d, %v", n, err)
	}
	daemon.Threshold = 1
	n, err = daemon.RunOnce(ctx, false)
	if err != nil || n != 1 {
		t.Fatalf("RunOnce above threshold = %d, %v", n, err)
	}
}

func TestLargeProvenanceChunksAcrossMessages(t *testing.T) {
	st, daemon, cl := newTestStore(t, nil, 0)
	ctx := context.Background()

	ref := prov.Ref{Object: "/wide", Version: 0}
	var extra []prov.Record
	for i := 0; i < 400; i++ {
		extra = append(extra, prov.NewString(ref, prov.AttrEnv, strings.Repeat("v", 64)+fmt.Sprintf("%03d", i)))
	}
	sendsBefore := cl.Usage().OpCount(billing.SQS, "SendMessage")
	if err := core.Put(ctx, st, fileEvent("/wide", 0, "x", extra...)); err != nil {
		t.Fatal(err)
	}
	sends := cl.Usage().OpCount(billing.SQS, "SendMessage") - sendsBefore
	if sends < 6 { // begin + data + >=3 prov chunks + md5 + commit
		t.Fatalf("sends = %d; expected multiple 8 KB chunks", sends)
	}
	pump(t, daemon, cl)
	records, err := st.Provenance(ctx, ref)
	if err != nil || len(records) != 402 {
		t.Fatalf("records = %d, %v", len(records), err)
	}
}

func TestOverflowValuesStoredDuringLogPhase(t *testing.T) {
	st, daemon, cl := newTestStore(t, nil, 0)
	ctx := context.Background()
	big := strings.Repeat("E", 3000)
	ref := prov.Ref{Object: "/big", Version: 0}

	putsBefore := cl.Usage().OpCount(billing.S3, "PUT")
	if err := core.Put(ctx, st, fileEvent("/big", 0, "x", prov.NewString(ref, prov.AttrEnv, big))); err != nil {
		t.Fatal(err)
	}
	// Log phase: overflow object + temp object = 2 PUTs.
	if got := cl.Usage().OpCount(billing.S3, "PUT") - putsBefore; got != 2 {
		t.Fatalf("log-phase PUTs = %d, want 2", got)
	}
	pump(t, daemon, cl)
	records, err := st.Provenance(ctx, ref)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range records {
		if r.Attr == prov.AttrEnv && r.Value.Str == big {
			found = true
		}
	}
	if !found {
		t.Fatal("overflowed value lost through the WAL")
	}
}

func TestCleanerReapsAbandonedTempObjects(t *testing.T) {
	faults := sim.NewFaultPlan()
	faults.Arm("wal/before-commit") // tmp object exists, tx never commits
	st, daemon, cl := newTestStore(t, faults, 0)
	ctx := context.Background()

	if err := core.Put(ctx, st, fileEvent("/aband", 0, "x")); !errors.Is(err, sim.ErrCrash) {
		t.Fatalf("err = %v", err)
	}
	pump(t, daemon, cl)

	cleaner := NewCleaner(st)
	// Too fresh: nothing reaped.
	n, err := cleaner.RunOnce(ctx)
	if err != nil || n != 0 {
		t.Fatalf("fresh temp reaped: %d, %v", n, err)
	}
	// After four days it goes.
	cl.Clock.Advance(4*24*time.Hour + time.Hour)
	n, err = cleaner.RunOnce(ctx)
	if err != nil || n != 1 {
		t.Fatalf("cleaner reaped %d, want 1 (%v)", n, err)
	}
	tmps, _ := cl.S3.ListAll(st.Layer().Bucket(), TmpPrefix)
	if len(tmps) != 0 {
		t.Fatalf("temp objects remain: %v", tmps)
	}
}

func TestSQSRetentionReapsUncommittedLog(t *testing.T) {
	faults := sim.NewFaultPlan()
	faults.Arm("wal/before-commit")
	st, _, cl := newTestStore(t, faults, 0)
	ctx := context.Background()
	if err := core.Put(ctx, st, fileEvent("/old", 0, "x")); !errors.Is(err, sim.ErrCrash) {
		t.Fatal("expected crash")
	}
	if n, _ := cl.SQS.Exact(st.Queue()); n == 0 {
		t.Fatal("log records missing before retention")
	}
	cl.Clock.Advance(4*24*time.Hour + time.Hour)
	if n, _ := cl.SQS.Exact(st.Queue()); n != 0 {
		t.Fatalf("%d log records survived retention", n)
	}
}

func TestTransientEventThroughWAL(t *testing.T) {
	st, daemon, cl := newTestStore(t, nil, 0)
	ctx := context.Background()
	proc := procEvent("tool", 7)
	if err := core.Put(ctx, st, proc); err != nil {
		t.Fatal(err)
	}
	pump(t, daemon, cl)
	records, err := st.Provenance(ctx, proc.Ref)
	if err != nil || len(records) != 2 {
		t.Fatalf("records = %v, %v", records, err)
	}
	// No temp or data object for transient subjects.
	if tmps, _ := cl.S3.ListAll(st.Layer().Bucket(), TmpPrefix); len(tmps) != 0 {
		t.Fatal("transient event left temp objects")
	}
}

func TestEventuallyConsistentEndToEnd(t *testing.T) {
	// With propagation delays everywhere, log + commit + verified read
	// still never surfaces a torn object.
	st, daemon, cl := newTestStore(t, nil, 10*time.Second)
	ctx := context.Background()

	for v := 0; v < 3; v++ {
		ref := prov.Ref{Object: "/e", Version: prov.Version(v)}
		ev := pass.FlushEvent{Ref: ref, Type: prov.TypeFile,
			Data: []byte(fmt.Sprintf("gen%d", v)),
			Records: []prov.Record{
				prov.NewString(ref, prov.AttrType, prov.TypeFile),
				prov.NewString(ref, prov.AttrEnv, fmt.Sprintf("gen%d", v)),
			}}
		if err := core.Put(ctx, st, ev); err != nil {
			t.Fatal(err)
		}
		pump(t, daemon, cl)
	}

	for i := 0; i < 50; i++ {
		obj, err := st.Get(ctx, "/e")
		if err != nil {
			continue // surfaced inconsistency/absence is acceptable
		}
		var envVal string
		for _, r := range obj.Records {
			if r.Attr == prov.AttrEnv {
				envVal = r.Value.Str
			}
		}
		if string(obj.Data) != envVal {
			t.Fatalf("torn read: %q vs %q", obj.Data, envVal)
		}
	}
}

func TestPropertiesRow(t *testing.T) {
	st, _, _ := newTestStore(t, nil, 0)
	p := st.Properties()
	if !p.Atomicity || !p.Consistency || !p.CausalOrdering || !p.EfficientQuery {
		t.Fatalf("properties = %+v, want Table 1 row 3", p)
	}
	if st.Name() != "s3+sdb+sqs" {
		t.Fatalf("Name = %q", st.Name())
	}
}

func TestFullWorkloadThroughStore(t *testing.T) {
	st, daemon, cl := newTestStore(t, nil, 0)
	ctx := context.Background()
	sys := pass.NewSystem(pass.Config{Flush: core.Flusher(st)})

	if err := sys.Ingest(ctx, "/in", []byte("input")); err != nil {
		t.Fatal(err)
	}
	p := sys.Exec(nil, pass.ExecSpec{Name: "tool"})
	if err := sys.Read(p, "/in"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Write(p, "/out", []byte("result"), pass.Truncate); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(ctx, p, "/out"); err != nil {
		t.Fatal(err)
	}
	pump(t, daemon, cl)

	obj, err := st.Get(ctx, "/out")
	if err != nil || string(obj.Data) != "result" {
		t.Fatalf("Get = %v, %v", obj, err)
	}
	outputs, err := st.OutputsOf(ctx, "tool")
	if err != nil || len(outputs) != 1 {
		t.Fatalf("OutputsOf = %v, %v", outputs, err)
	}
	// Causal ordering: the ancestor chain is complete.
	desc, err := st.DescendantsOfOutputs(ctx, "tool")
	if err != nil || len(desc) != 0 {
		t.Fatalf("descendants = %v, %v", desc, err)
	}
}

func TestWALMessageEncodingRejectsOversize(t *testing.T) {
	m := walMessage{TxID: "t", Kind: kindProv, Records: []byte(`"` + strings.Repeat("x", 9000) + `"`)}
	if _, err := m.encode(); err == nil {
		t.Fatal("9 KB message encoded without error")
	}
}

func TestDecodeWALErrors(t *testing.T) {
	if _, err := decodeWAL("not json"); err == nil {
		t.Fatal("garbage decoded")
	}
	if _, err := decodeWAL(`{"kind":"x"}`); err == nil {
		t.Fatal("missing tx accepted")
	}
}
