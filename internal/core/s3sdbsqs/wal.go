package s3sdbsqs

import (
	"encoding/json"
	"fmt"

	"passcloud/internal/cloud/sqs"
	"passcloud/internal/prov"
)

// WAL message kinds (§4.3 log phase).
const (
	kindBegin  = "begin"  // opens a transaction; carries the record count
	kindData   = "data"   // pointer to the temporary S3 object
	kindProv   = "prov"   // a chunk of provenance records (≤ 8 KB)
	kindMD5    = "md5"    // the consistency record for the data
	kindCommit = "commit" // closes the transaction
)

// walMessage is the JSON envelope for every WAL queue message. SQS requires
// Unicode text, which JSON guarantees.
type walMessage struct {
	TxID string `json:"tx"`
	Kind string `json:"kind"`

	// Seq is the message's position within its transaction (0 = begin,
	// Count-1 = commit). The commit daemon assembles transactions by
	// distinct Seq, not by SQS message ID: at-least-once delivery AND
	// retried sends after a lost response both produce duplicate copies of
	// one logical record, and counting copies would let a transaction look
	// complete while a distinct record is still missing.
	Seq int `json:"seq"`

	// Count (begin only): the transaction's total message count, begin and
	// commit included. "record a begin record that has both the id and the
	// number of records in the transaction on the WAL queue".
	Count int `json:"count,omitempty"`

	// Data-record fields: where the temporary object lives and where it
	// must land, plus the nonce and version for the real object's
	// metadata.
	TmpKey  string `json:"tmp,omitempty"`
	RealKey string `json:"real,omitempty"`
	Nonce   string `json:"nonce,omitempty"`
	Version int    `json:"ver,omitempty"`

	// Item names the provenance subject for prov and md5 records.
	Item string `json:"item,omitempty"`

	// Records is a prov chunk payload (JSON array from prov.ChunkJSON).
	Records json.RawMessage `json:"recs,omitempty"`

	// Leaf (prov kind) carries the subject's integrity leaf —
	// integrity.SubjectHash over the ORIGINAL record set. The commit daemon
	// only ever holds the encoded form (pointer values resolved would cost
	// extra GETs), so the log phase computes the leaf and the WAL carries
	// it to the commit point.
	Leaf string `json:"leaf,omitempty"`

	// MD5 is the consistency record value (md5 kind).
	MD5 string `json:"md5,omitempty"`
}

// walChunkBudget is the space left for record payloads inside one SQS
// message after envelope overhead.
const walChunkBudget = sqs.MaxMessageSize - 256

func (m walMessage) encode() (string, error) {
	b, err := json.Marshal(m)
	if err != nil {
		return "", err
	}
	if len(b) > sqs.MaxMessageSize {
		return "", fmt.Errorf("s3sdbsqs: WAL message %s/%s is %d bytes, exceeds the 8KB limit", m.TxID, m.Kind, len(b))
	}
	return string(b), nil
}

func decodeWAL(body string) (walMessage, error) {
	var m walMessage
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		return walMessage{}, fmt.Errorf("s3sdbsqs: undecodable WAL message: %w", err)
	}
	if m.TxID == "" || m.Kind == "" {
		return walMessage{}, fmt.Errorf("s3sdbsqs: WAL message missing tx or kind")
	}
	return m, nil
}

// decodeRecords unpacks a prov chunk into records.
func (m walMessage) decodeRecords() ([]prov.Record, error) {
	return prov.UnmarshalJSONRecords(m.Records)
}
