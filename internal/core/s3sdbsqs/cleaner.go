package s3sdbsqs

import (
	"context"
	"time"

	"passcloud/internal/cloud"
	"passcloud/internal/cloud/s3"
	"passcloud/internal/core/sdbprov"
)

// Cleaner reaps temporary objects abandoned by uncommitted transactions:
// "the temporary objects that have been stored on S3, must be explicitly
// removed if they belong to uncommitted transactions. We use a cleaner
// daemon to remove temporary objects that have not been accessed for 4
// days" (§4.3). Four days matches SQS retention, so by the time a
// temporary object is old enough to reap, its transaction's WAL messages
// are guaranteed gone and the transaction can never commit.
type Cleaner struct {
	cloud  *cloud.Cloud
	layer  *sdbprov.Layer
	bucket string

	// MaxAge is the abandonment horizon (default 4 days).
	MaxAge time.Duration
}

// NewCleaner builds a cleaner for a store's bucket.
func NewCleaner(st *Store) *Cleaner {
	return NewCleanerForLayer(st.cloud, st.layer)
}

// NewCleanerForLayer builds a cleaner directly over a provenance layer.
func NewCleanerForLayer(c *cloud.Cloud, layer *sdbprov.Layer) *Cleaner {
	return &Cleaner{cloud: c, layer: layer, bucket: layer.Bucket(), MaxAge: 4 * 24 * time.Hour}
}

// RunOnce deletes every temporary object older than MaxAge, returning how
// many were removed.
func (c *Cleaner) RunOnce(ctx context.Context) (n int, err error) {
	err = c.layer.TrackWrites(func() error {
		n, err = c.runOnce(ctx)
		return err
	})
	return n, err
}

func (c *Cleaner) runOnce(ctx context.Context) (int, error) {
	var infos []s3.Info
	err := c.layer.Retrier().Do(ctx, "s3sdbsqs/clean-list", func() error {
		var lerr error
		infos, lerr = c.cloud.S3.ListAll(c.bucket, TmpPrefix)
		return lerr
	})
	if err != nil {
		return 0, err
	}
	now := c.cloud.Clock.Now()
	removed := 0
	for _, info := range infos {
		if err := ctx.Err(); err != nil {
			return removed, err
		}
		if now.Sub(info.LastModified) <= c.MaxAge {
			continue
		}
		key := info.Key
		// DELETE is idempotent: a retry after a lost response is harmless.
		err := c.layer.Retrier().Do(ctx, "s3sdbsqs/clean-delete", func() error {
			return c.cloud.S3.Delete(c.bucket, key)
		})
		if err != nil {
			return removed, err
		}
		removed++
	}
	return removed, nil
}
