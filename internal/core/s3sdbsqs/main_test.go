package s3sdbsqs

import (
	"testing"

	"passcloud/internal/leakcheck"
)

// TestMain fails the binary if the WAL commit daemon's drain and
// cleanup loops leave goroutines behind after the tests pass.
func TestMain(m *testing.M) { leakcheck.Main(m) }
