package s3sdbsqs

import (
	"context"
	"fmt"
	"testing"

	"passcloud/internal/cloud"
	"passcloud/internal/core"
	"passcloud/internal/prov"
)

// TestPerClientQueuesAreIsolated verifies the paper's "each client has an
// SQS queue that it uses as a write-ahead log": two clients on one region,
// each with its own queue and daemon; each daemon commits only its own
// client's transactions, and both end up queryable in the shared domain.
func TestPerClientQueuesAreIsolated(t *testing.T) {
	ctx := context.Background()
	cl := cloud.New(cloud.Config{Seed: 3})

	stA, err := New(Config{Cloud: cl, ClientID: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	stB, err := New(Config{Cloud: cl, ClientID: "bob"})
	if err != nil {
		t.Fatal(err)
	}
	if stA.Queue() == stB.Queue() {
		t.Fatalf("clients share a WAL queue: %q", stA.Queue())
	}

	if err := core.Put(ctx, stA, fileEvent("/from-alice", 0, "a")); err != nil {
		t.Fatal(err)
	}
	if err := core.Put(ctx, stB, fileEvent("/from-bob", 0, "b")); err != nil {
		t.Fatal(err)
	}

	// Only Alice's daemon runs: only her object commits.
	daemonA := NewCommitDaemon(stA, nil)
	pump(t, daemonA, cl)
	if _, err := stA.Get(ctx, "/from-alice"); err != nil {
		t.Fatalf("alice's commit missing: %v", err)
	}
	if _, err := stA.Get(ctx, "/from-bob"); err == nil {
		t.Fatal("bob's transaction committed by alice's daemon")
	}
	// Bob's log is intact.
	if n, _ := cl.SQS.Exact(stB.Queue()); n == 0 {
		t.Fatal("bob's WAL drained by the wrong daemon")
	}

	// Bob's daemon catches up; both visible through either store (shared
	// bucket + domain).
	daemonB := NewCommitDaemon(stB, nil)
	pump(t, daemonB, cl)
	for _, object := range []prov.ObjectID{"/from-alice", "/from-bob"} {
		if _, err := stB.Get(ctx, object); err != nil {
			t.Fatalf("get %s via bob: %v", object, err)
		}
	}
	all, err := stA.AllProvenance(ctx)
	if err != nil || len(all) != 2 {
		t.Fatalf("shared domain has %d subjects, %v", len(all), err)
	}
}

// TestManyClientsInterleavedCommits drives several clients with interleaved
// daemon cycles — the paper's multi-writer cloud at small scale.
func TestManyClientsInterleavedCommits(t *testing.T) {
	ctx := context.Background()
	cl := cloud.New(cloud.Config{Seed: 4})
	const clients = 5

	stores := make([]*Store, clients)
	daemons := make([]*CommitDaemon, clients)
	for i := range stores {
		st, err := New(Config{Cloud: cl, ClientID: fmt.Sprintf("c%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = st
		daemons[i] = NewCommitDaemon(st, nil)
	}

	for round := 0; round < 3; round++ {
		for i, st := range stores {
			object := fmt.Sprintf("/c%d/r%d", i, round)
			if err := core.Put(ctx, st, fileEvent(object, 0, object)); err != nil {
				t.Fatal(err)
			}
		}
		// Interleave: only some daemons run per round.
		for i, d := range daemons {
			if (round+i)%2 == 0 {
				if _, err := d.RunOnce(ctx, true); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	// Everyone drains in the end.
	for _, d := range daemons {
		pump(t, d, cl)
	}
	for i := range stores {
		for round := 0; round < 3; round++ {
			object := prov.ObjectID(fmt.Sprintf("/c%d/r%d", i, round))
			obj, err := stores[0].Get(ctx, object)
			if err != nil {
				t.Fatalf("get %s: %v", object, err)
			}
			if string(obj.Data) != string(object) {
				t.Fatalf("%s data = %q", object, obj.Data)
			}
		}
	}
}
