package s3sdbsqs

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"passcloud/internal/cloud"
	"passcloud/internal/cloud/sqs"
	"passcloud/internal/core"
	"passcloud/internal/pass"
	"passcloud/internal/prov"
	"passcloud/internal/sim"
)

func testEvent(object string, version int, data string, extra ...prov.Record) pass.FlushEvent {
	ref := prov.Ref{Object: prov.ObjectID(object), Version: prov.Version(version)}
	records := []prov.Record{
		prov.NewString(ref, prov.AttrType, prov.TypeFile),
		prov.NewString(ref, prov.AttrName, object),
	}
	return pass.FlushEvent{Ref: ref, Type: prov.TypeFile, Data: []byte(data), Records: append(records, extra...)}
}

// pumpUntilDrained runs fresh daemons (restart semantics) until a round
// commits nothing and holds no pending transactions.
func pumpUntilDrained(t *testing.T, cl *cloud.Cloud, st *Store, faults *sim.FaultPlan) {
	t.Helper()
	for i := 0; i < 12; i++ {
		d := NewCommitDaemon(st, faults)
		d.Visibility = 10 * time.Second
		n, err := d.RunOnce(context.Background(), true)
		cl.Clock.Advance(11 * time.Second)
		cl.Settle()
		if err == nil && n == 0 && d.PendingTransactions() == 0 {
			return
		}
	}
	t.Fatal("daemon never drained")
}

// TestCommitRedeliveryDoesNotDoubleCommit crashes the daemon between the
// SimpleDB provenance write and the WAL message deletes — the §4.3
// redelivery window. A restarted daemon reprocesses the whole transaction;
// the final state must be single-application: one consistent object, no
// duplicated provenance records.
func TestCommitRedeliveryDoesNotDoubleCommit(t *testing.T) {
	ctx := context.Background()
	faults := sim.NewFaultPlan()
	cl := cloud.New(cloud.Config{Seed: 42, MaxDelay: time.Second, Faults: faults})
	st, err := New(Config{Cloud: cl, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutBatch(ctx, []pass.FlushEvent{testEvent("/redeliver", 0, "payload")}); err != nil {
		t.Fatalf("log phase: %v", err)
	}
	cl.Settle()

	// First daemon crashes after writing provenance, before deleting the
	// WAL messages.
	faults.Arm("commit/after-prov-write")
	d1 := NewCommitDaemon(st, faults)
	d1.Visibility = 10 * time.Second
	if _, err := d1.RunOnce(ctx, true); !errors.Is(err, sim.ErrCrash) {
		t.Fatalf("expected injected crash, got %v", err)
	}
	cl.Clock.Advance(11 * time.Second) // past visibility: messages redeliver
	cl.Settle()

	// A restarted daemon must reprocess the redelivered transaction to
	// completion without double-applying.
	pumpUntilDrained(t, cl, st, nil)

	obj, err := st.Get(ctx, "/redeliver")
	if err != nil {
		t.Fatalf("get after recovery: %v", err)
	}
	if string(obj.Data) != "payload" {
		t.Fatalf("data = %q, want %q", obj.Data, "payload")
	}
	seen := map[string]int{}
	for _, r := range obj.Records {
		seen[r.Attr+"="+r.Value.String()]++
	}
	for k, n := range seen {
		if n > 1 {
			t.Errorf("record %q applied %d times after redelivery", k, n)
		}
	}
	if n, _ := cl.SQS.Exact(st.Queue()); n != 0 {
		t.Errorf("%d WAL messages left after recovery", n)
	}
}

// TestDuplicateCopiesCannotCompleteTransaction is the minimized regression
// for the count-by-copies bug: duplicate message copies (redelivery, or a
// client re-sending after a lost response) must never make a transaction
// look complete while a distinct record is missing.
func TestDuplicateCopiesCannotCompleteTransaction(t *testing.T) {
	tx := &txState{seqSeen: make(map[int]bool), receipts: make(map[string]string)}
	d := &CommitDaemon{pending: map[string]*txState{"tx1": tx}}

	absorb := func(msgID string, m walMessage) {
		d.absorb(m, sqs.Message{ID: msgID, ReceiptHandle: "r-" + msgID})
	}
	// A 4-message transaction: begin(0), prov(1), prov(2), commit(3).
	absorb("m0", walMessage{TxID: "tx1", Kind: kindBegin, Seq: 0, Count: 4})
	absorb("m1", walMessage{TxID: "tx1", Kind: kindProv, Seq: 1, Item: "foo_0"})
	// Seq 1 delivered twice more (a retried send and a redelivery); seq 2
	// is still missing. Under the old have>=count arithmetic these copies
	// would complete the transaction.
	absorb("m1b", walMessage{TxID: "tx1", Kind: kindProv, Seq: 1, Item: "foo_0"})
	absorb("m1c", walMessage{TxID: "tx1", Kind: kindProv, Seq: 1, Item: "foo_0"})
	absorb("m3", walMessage{TxID: "tx1", Kind: kindCommit, Seq: 3})
	if tx.complete() {
		t.Fatal("transaction completed from duplicate copies while seq 2 is missing")
	}
	absorb("m2", walMessage{TxID: "tx1", Kind: kindProv, Seq: 2, Item: "foo_0"})
	if !tx.complete() {
		t.Fatal("transaction with every distinct seq should be complete")
	}
	// Every copy's receipt must be tracked so the commit deletes them all.
	if len(tx.receipts) != 6 {
		t.Fatalf("tracked %d receipts, want 6 (duplicates must be deleted too)", len(tx.receipts))
	}
}

// TestStaleRedeliveryCannotRegressNewerVersion covers the crash-before-
// delete window followed by a newer commit: when v0's transaction
// redelivers after v1 already committed, replaying its COPY must not roll
// the object back. The propagation horizon (30s) deliberately exceeds the
// redelivery gap (9s), so v1's COPY has NOT converged when the replayed
// transaction is processed — the guard must wait out the horizon rather
// than trust whichever replica a HEAD happens to hit.
func TestStaleRedeliveryCannotRegressNewerVersion(t *testing.T) {
	ctx := context.Background()
	faults := sim.NewFaultPlan()
	cl := cloud.New(cloud.Config{Seed: 2, MaxDelay: 30 * time.Second, Faults: faults})
	st, err := New(Config{Cloud: cl, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}

	// v0 logs and its daemon crashes after the provenance write — the WAL
	// messages survive and will redeliver. The 36s visibility outlasts the
	// settle before v1's commit round (so v0 stays locked through it) but
	// expires inside v1's 30s propagation window after its COPY.
	if err := st.PutBatch(ctx, []pass.FlushEvent{testEvent("/obj", 0, "old")}); err != nil {
		t.Fatal(err)
	}
	cl.Settle()
	faults.Arm("commit/after-prov-write")
	d1 := NewCommitDaemon(st, faults)
	d1.Visibility = 36 * time.Second
	if _, err := d1.RunOnce(ctx, true); !errors.Is(err, sim.ErrCrash) {
		t.Fatalf("expected injected crash, got %v", err)
	}

	// v1 logs and commits cleanly on a fresh daemon while v0's messages
	// are still visibility-locked by the crashed round — so v1 lands in an
	// earlier round than v0's redelivery, and only the replay guard (not
	// same-round version ordering) can protect it. The fresh daemon knows
	// nothing about v0's transaction, exactly like a restart.
	if err := st.PutBatch(ctx, []pass.FlushEvent{testEvent("/obj", 1, "new")}); err != nil {
		t.Fatal(err)
	}
	cl.Clock.Advance(2 * time.Second) // v0 messages stay locked (36s visibility)
	cl.Settle()                       // v1's tmp object must be visible to its daemon
	d2 := NewCommitDaemon(st, nil)
	d2.Visibility = time.Second
	if n, err := d2.RunOnce(ctx, true); err != nil || n != 1 {
		t.Fatalf("v1 commit round: n=%d err=%v", n, err)
	}
	// Let v0's transaction redeliver to yet another fresh daemon while
	// v1's COPY is still inside the propagation window (9s < 30s horizon)
	// — no Settle here, that is the point.
	cl.Clock.Advance(9 * time.Second)
	pumpUntilDrained(t, cl, st, nil)

	obj, err := st.Get(ctx, "/obj")
	if err != nil {
		t.Fatalf("get after recovery: %v", err)
	}
	if obj.Ref.Version != 1 || string(obj.Data) != "new" {
		t.Fatalf("object regressed: have v%d %q, want v1 %q", obj.Ref.Version, obj.Data, "new")
	}
}

// TestIncompleteTransactionPrunedAfterRetention: a transaction whose client
// crashed mid-log can never complete; once SQS retention has reaped its
// messages the daemon must drop the assembled fragment instead of holding
// it forever.
func TestIncompleteTransactionPrunedAfterRetention(t *testing.T) {
	ctx := context.Background()
	faults := sim.NewFaultPlan()
	cl := cloud.New(cloud.Config{Seed: 3, Faults: faults})
	st, err := New(Config{Cloud: cl, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	// Crash after the first WAL record: begin + one record, no commit.
	faults.Arm("wal/after-record-0")
	err = st.PutBatch(ctx, []pass.FlushEvent{testEvent("/wedge", 0, "x")})
	if !errors.Is(err, sim.ErrCrash) {
		t.Fatalf("expected injected crash, got %v", err)
	}

	d := NewCommitDaemon(st, faults)
	d.Visibility = time.Second
	if _, err := d.RunOnce(ctx, true); err != nil {
		t.Fatal(err)
	}
	if d.PendingTransactions() == 0 {
		t.Fatal("expected an incomplete transaction to be pending")
	}
	// Past retention, the same daemon must prune the fragment.
	cl.Clock.Advance(sqs.RetentionPeriod + time.Hour)
	if _, err := d.RunOnce(ctx, true); err != nil {
		t.Fatal(err)
	}
	if n := d.PendingTransactions(); n != 0 {
		t.Fatalf("%d incomplete transactions still pending after retention", n)
	}
}

// TestCommittedLogPhaseReportsLanded: a crash after the commit record is on
// the queue must tell the flush layer the batch landed — the transaction
// will commit; replaying it would log a duplicate transaction.
func TestCommittedLogPhaseReportsLanded(t *testing.T) {
	ctx := context.Background()
	faults := sim.NewFaultPlan()
	cl := cloud.New(cloud.Config{Seed: 5, Faults: faults})
	st, err := New(Config{Cloud: cl, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	faults.Arm("wal/after-commit")
	ev := testEvent("/sealed", 0, "data")
	err = st.PutBatch(ctx, []pass.FlushEvent{ev})
	if !errors.Is(err, sim.ErrCrash) {
		t.Fatalf("expected injected crash, got %v", err)
	}
	var pw *core.PartialWriteError
	if !errors.As(err, &pw) {
		t.Fatalf("expected PartialWriteError, got %T: %v", err, err)
	}
	if len(pw.Landed) != 1 || pw.Landed[0] != ev.Ref {
		t.Fatalf("landed = %v, want [%s]", pw.Landed, ev.Ref)
	}
	if !strings.Contains(pw.Error(), "1 events landed") {
		t.Fatalf("unexpected error rendering: %v", pw)
	}
}
