// Arc migration for the SimpleDB-indexed architectures (core.Migrator):
// export decodes matching items to their original record form (plus the
// raw S3 data objects, nonce metadata included, so the §4.2 consistency
// protocol keeps verifying on the destination), import re-encodes them
// through the layer's own write pipeline — the destination's ledger
// mints its own checkpoints over the imported leaves, riding the batch
// writes at zero extra cost, and each shard stays single-writer — and
// removal deletes items, their overflow/spill objects, the moved data
// objects, and the ledger slots, finishing with a fresh checkpoint on
// the ledger item so the source's commitment reflects the departure.
package sdbprov

import (
	"context"
	"errors"
	"fmt"

	"passcloud/internal/cloud/s3"
	"passcloud/internal/core"
	"passcloud/internal/core/integrity"
	"passcloud/internal/prov"
)

// arcItem is one exported item: the subject's decoded (original-form)
// records and its consistency record.
type arcItem struct {
	subject prov.Ref
	records []prov.Record
	md5     string
}

// arcData is one exported S3 data object, verbatim: body plus metadata
// (version and consistency nonce).
type arcData struct {
	key  string
	body []byte
	meta map[string]string
}

// arcPayload is the architecture-specific half of a core.ArcExport.
type arcPayload struct {
	items []arcItem
	datas []arcData
}

// scanItemNames pages "select itemName()" over the domain and calls fn
// for every item that parses as a subject and matches the predicate.
func (l *Layer) scanItemNames(ctx context.Context, match func(prov.ObjectID) bool, fn func(item string, ref prov.Ref) error) error {
	token := ""
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		page, err := l.selectItemNames(ctx, token)
		if err != nil {
			return err
		}
		for _, name := range page.names {
			ref, perr := prov.ParseItemName(name)
			if perr != nil {
				continue // the ledger item, never a subject
			}
			if !match(ref.Object) {
				continue
			}
			if err := fn(name, ref); err != nil {
				return err
			}
		}
		if page.next == "" {
			return nil
		}
		token = page.next
	}
}

type itemNamePage struct {
	names []string
	next  string
}

func (l *Layer) selectItemNames(ctx context.Context, token string) (itemNamePage, error) {
	var page itemNamePage
	err := l.retrier.Do(ctx, "sdbprov/reshard-select", func() error {
		res, serr := l.cfg.Cloud.SDB.Select("select itemName() from "+l.cfg.Domain, token)
		if serr != nil {
			return serr
		}
		page.names = page.names[:0]
		for _, item := range res.Items {
			page.names = append(page.names, item.Name)
		}
		page.next = res.NextToken
		return nil
	})
	return page, err
}

// ExportArc implements core.Migrator.
func (l *Layer) ExportArc(ctx context.Context, match func(prov.ObjectID) bool) (*core.ArcExport, error) {
	exp := &core.ArcExport{}
	payload := &arcPayload{}
	dataObjects := make(map[prov.ObjectID]bool)
	err := l.scanItemNames(ctx, match, func(item string, ref prov.Ref) error {
		records, md5hex, ok, err := l.FetchItem(ctx, ref)
		if err != nil {
			return err
		}
		if !ok {
			return nil // deleted between Select and GetAttributes
		}
		payload.items = append(payload.items, arcItem{subject: ref, records: records, md5: md5hex})
		exp.Subjects = append(exp.Subjects, ref)
		exp.Objects++
		for _, rec := range records {
			if rec.Value.Kind == prov.KindString {
				exp.Bytes += int64(len(rec.Value.Str))
			}
		}
		if md5hex != "" {
			dataObjects[ref.Object] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Data bodies travel verbatim: the nonce in the metadata is what the
	// copied consistency records hash over.
	for _, it := range payload.items {
		if !dataObjects[it.subject.Object] {
			continue
		}
		delete(dataObjects, it.subject.Object) // one object, one data key
		key := DataKey(it.subject.Object)
		var obj *s3.Object
		err := l.retrier.Do(ctx, "sdbprov/reshard-data-get", func() error {
			var gerr error
			obj, gerr = l.cfg.Cloud.S3.Get(l.cfg.Bucket, key)
			return gerr
		})
		if err != nil {
			if errors.Is(err, s3.ErrNoSuchKey) {
				continue // an orphaned item's data never landed
			}
			return nil, err
		}
		payload.datas = append(payload.datas, arcData{key: key, body: obj.Body, meta: obj.Metadata})
		exp.Objects++
		exp.Bytes += int64(len(obj.Body))
	}
	exp.Payload = payload
	return exp, nil
}

// ImportArc implements core.Migrator. Records re-encode natively
// (overflow objects re-mint under this layer's bucket) and the batch
// write commits the imported leaves to this layer's own ledger.
func (l *Layer) ImportArc(ctx context.Context, exp *core.ArcExport) error {
	payload, ok := exp.Payload.(*arcPayload)
	if !ok {
		return fmt.Errorf("sdbprov: import of a foreign arc payload (%T)", exp.Payload)
	}
	return l.TrackWrites(func() error {
		for _, d := range payload.datas {
			err := l.retrier.Do(ctx, "sdbprov/reshard-data-put", func() error {
				return l.cfg.Cloud.S3.Put(l.cfg.Bucket, d.key, d.body, d.meta)
			})
			if err != nil {
				return fmt.Errorf("sdbprov: reshard data put: %w", err)
			}
		}
		writes := make([]ItemWrite, 0, len(payload.items))
		for _, it := range payload.items {
			encoded, err := l.EncodeValues(ctx, it.subject, it.records, "sdbprov/reshard")
			if err != nil {
				return err
			}
			w := ItemWrite{Subject: it.subject, Records: encoded, MD5: it.md5}
			if l.ledger != nil {
				w.Leaf = integrity.SubjectHash(it.subject, it.records)
			}
			writes = append(writes, w)
		}
		return l.WriteEncodedBatch(ctx, writes, "sdbprov/reshard")
	})
}

// RemoveArc implements core.Migrator.
func (l *Layer) RemoveArc(ctx context.Context, match func(prov.ObjectID) bool) (int, error) {
	removed := 0
	err := l.TrackWrites(func() error {
		var items []string
		var refs []prov.Ref
		if err := l.scanItemNames(ctx, match, func(item string, ref prov.Ref) error {
			items = append(items, item)
			refs = append(refs, ref)
			return nil
		}); err != nil {
			return err
		}
		// Phantom slots: a ledger entry whose item is already gone (a
		// tampered-away item the Select can no longer surface). Its leaves
		// must still leave the commitment or the next audit flags a root
		// mismatch against records that no longer exist.
		var phantoms []string
		if l.ledger != nil {
			live := make(map[string]bool, len(items))
			for _, item := range items {
				live[item] = true
			}
			for _, slot := range l.ledger.Slots() {
				if slot == LedgerItem || live[slot] {
					continue
				}
				ref, perr := prov.ParseItemName(slot)
				if perr != nil || !match(ref.Object) {
					continue
				}
				phantoms = append(phantoms, slot)
				l.catalog.Forget(ref)
			}
		}
		if len(items) == 0 && len(phantoms) == 0 {
			return nil
		}
		// Deletions change what queries see even if a later step fails.
		defer l.gen.Bump()
		seenObject := make(map[prov.ObjectID]bool)
		for i, item := range items {
			// Overflow and spill objects all live under the item's prefix.
			if err := l.deletePrefix(ctx, OverflowPrefix+"/"+item+"/"); err != nil {
				return err
			}
			err := l.retrier.Do(ctx, "sdbprov/reshard-delete-item", func() error {
				return l.cfg.Cloud.SDB.DeleteAttributes(l.cfg.Domain, item, nil)
			})
			if err != nil {
				return fmt.Errorf("sdbprov: reshard delete item: %w", err)
			}
			l.catalog.Forget(refs[i])
			removed++
			if object := refs[i].Object; !seenObject[object] {
				seenObject[object] = true
				err := l.retrier.Do(ctx, "sdbprov/reshard-delete-data", func() error {
					return l.cfg.Cloud.S3.Delete(l.cfg.Bucket, DataKey(object))
				})
				if err != nil {
					return fmt.Errorf("sdbprov: reshard delete data: %w", err)
				}
			}
		}
		return l.DropFromLedger(ctx, append(items, phantoms...))
	})
	return removed, err
}

// deletePrefix removes every S3 object under prefix.
func (l *Layer) deletePrefix(ctx context.Context, prefix string) error {
	marker := ""
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var page *s3.ListPage
		err := l.retrier.Do(ctx, "sdbprov/reshard-list", func() error {
			var lerr error
			page, lerr = l.cfg.Cloud.S3.List(l.cfg.Bucket, prefix, marker, 0)
			return lerr
		})
		if err != nil {
			return err
		}
		for _, info := range page.Objects {
			key := info.Key
			err := l.retrier.Do(ctx, "sdbprov/reshard-delete", func() error {
				return l.cfg.Cloud.S3.Delete(l.cfg.Bucket, key)
			})
			if err != nil {
				return err
			}
		}
		if !page.IsTruncated {
			return nil
		}
		marker = page.NextMarker
	}
}

var _ core.Migrator = (*Layer)(nil)
