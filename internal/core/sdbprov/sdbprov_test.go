package sdbprov

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"passcloud/internal/cloud"
	"passcloud/internal/cloud/billing"
	"passcloud/internal/cloud/sdb"
	"passcloud/internal/core"
	"passcloud/internal/prov"
	"passcloud/internal/sim"
)

func newTestLayer(t *testing.T, maxDelay time.Duration) (*Layer, *cloud.Cloud) {
	t.Helper()
	cl := cloud.New(cloud.Config{Seed: 1, MaxDelay: maxDelay})
	layer, err := New(Config{Cloud: cl})
	if err != nil {
		t.Fatal(err)
	}
	return layer, cl
}

func ref(obj string, v int) prov.Ref {
	return prov.Ref{Object: prov.ObjectID(obj), Version: prov.Version(v)}
}

func TestWriteFetchRoundTrip(t *testing.T) {
	layer, _ := newTestLayer(t, 0)
	subject := ref("/f", 2)
	records := []prov.Record{
		prov.NewString(subject, prov.AttrType, prov.TypeFile),
		prov.NewInput(subject, ref("/dep", 0)),
		prov.NewString(subject, prov.AttrEnv, ""), // empty value survives
	}
	if err := layer.WriteItem(context.Background(), subject, records, "cafebabe", "t"); err != nil {
		t.Fatal(err)
	}
	got, md5hex, ok, err := layer.FetchItem(context.Background(), subject)
	if err != nil || !ok {
		t.Fatalf("fetch: %v %v", ok, err)
	}
	if md5hex != "cafebabe" {
		t.Fatalf("md5 = %q", md5hex)
	}
	if len(got) != 3 {
		t.Fatalf("records = %v", got)
	}
	byAttr := map[string]prov.Record{}
	for _, r := range got {
		byAttr[r.Attr] = r
	}
	if byAttr[prov.AttrInput].Value.Ref != ref("/dep", 0) {
		t.Fatalf("input = %v", byAttr[prov.AttrInput])
	}
	if byAttr[prov.AttrEnv].Value.Str != "" {
		t.Fatalf("empty env = %v", byAttr[prov.AttrEnv])
	}
}

func TestFetchMissingItem(t *testing.T) {
	layer, _ := newTestLayer(t, 0)
	_, _, ok, err := layer.FetchItem(context.Background(), ref("/ghost", 0))
	if err != nil || ok {
		t.Fatalf("missing item: ok=%v err=%v", ok, err)
	}
}

func TestOverflowValueRoundTrip(t *testing.T) {
	layer, cl := newTestLayer(t, 0)
	subject := ref("/big", 0)
	big := strings.Repeat("V", 5000)
	records := []prov.Record{prov.NewString(subject, prov.AttrEnv, big)}

	putsBefore := cl.Usage().OpCount(billing.S3, "PUT")
	if err := layer.WriteItem(context.Background(), subject, records, "", "t"); err != nil {
		t.Fatal(err)
	}
	if got := cl.Usage().OpCount(billing.S3, "PUT") - putsBefore; got != 1 {
		t.Fatalf("overflow PUTs = %d, want 1", got)
	}
	got, _, ok, err := layer.FetchItem(context.Background(), subject)
	if err != nil || !ok || len(got) != 1 || got[0].Value.Str != big {
		t.Fatalf("round trip failed: %v %v %v", got, ok, err)
	}
}

func TestItemSpillBeyond256Attrs(t *testing.T) {
	layer, _ := newTestLayer(t, 0)
	subject := ref("/wide", 0)
	var records []prov.Record
	for i := 0; i < 700; i++ {
		records = append(records, prov.NewInput(subject, ref(fmt.Sprintf("/dep%04d", i), 0)))
	}
	if err := layer.WriteItem(context.Background(), subject, records, "beef", "t"); err != nil {
		t.Fatal(err)
	}
	got, md5hex, ok, err := layer.FetchItem(context.Background(), subject)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if md5hex != "beef" {
		t.Fatalf("md5 lost in spill: %q", md5hex)
	}
	if len(got) != 700 {
		t.Fatalf("records = %d, want 700", len(got))
	}
	seen := map[prov.Ref]bool{}
	for _, r := range got {
		seen[r.Value.Ref] = true
	}
	if len(seen) != 700 {
		t.Fatalf("distinct inputs = %d", len(seen))
	}
}

func TestEscapedLiteralRoundTripQuick(t *testing.T) {
	layer, _ := newTestLayer(t, 0)
	i := 0
	f := func(value string) bool {
		if len(value) > 900 || strings.ContainsRune(value, 0) {
			return true
		}
		i++
		subject := ref(fmt.Sprintf("/q%d", i), 0)
		records := []prov.Record{prov.NewString(subject, prov.AttrEnv, value)}
		if err := layer.WriteItem(context.Background(), subject, records, "", "t"); err != nil {
			return false
		}
		got, _, ok, err := layer.FetchItem(context.Background(), subject)
		return err == nil && ok && len(got) == 1 && got[0].Value.Str == value
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestConsistencyMD5(t *testing.T) {
	if ConsistencyMD5([]byte("a"), "x") == ConsistencyMD5([]byte("a"), "y") {
		t.Fatal("nonce has no effect")
	}
	if ConsistencyMD5([]byte("a"), "x") != ConsistencyMD5([]byte("a"), "x") {
		t.Fatal("not deterministic")
	}
	if len(ConsistencyMD5(nil, "")) != 32 {
		t.Fatal("not an MD5 hex digest")
	}
}

func TestVerifiedGetHappyPath(t *testing.T) {
	layer, cl := newTestLayer(t, 0)
	subject := ref("/v", 4)
	data := []byte("content")
	nonce := "4-abcd"
	if err := layer.WriteItem(context.Background(), subject, []prov.Record{
		prov.NewString(subject, prov.AttrType, prov.TypeFile),
	}, ConsistencyMD5(data, nonce), "t"); err != nil {
		t.Fatal(err)
	}
	meta := map[string]string{MetaNonce: nonce, MetaVersion: "4"}
	if err := cl.S3.Put(layer.Bucket(), DataKey("/v"), data, meta); err != nil {
		t.Fatal(err)
	}
	obj, err := layer.VerifiedGet(context.Background(), "/v")
	if err != nil {
		t.Fatal(err)
	}
	if obj.Ref != subject || string(obj.Data) != "content" || len(obj.Records) != 1 {
		t.Fatalf("obj = %+v", obj)
	}
}

func TestVerifiedGetDetectsTamperedData(t *testing.T) {
	layer, cl := newTestLayer(t, 0)
	subject := ref("/tampered", 0)
	nonce := "0-xyzw"
	if err := layer.WriteItem(context.Background(), subject, []prov.Record{
		prov.NewString(subject, prov.AttrType, prov.TypeFile),
	}, ConsistencyMD5([]byte("original"), nonce), "t"); err != nil {
		t.Fatal(err)
	}
	// The data stored does not match the consistency record.
	meta := map[string]string{MetaNonce: nonce, MetaVersion: "0"}
	if err := cl.S3.Put(layer.Bucket(), DataKey("/tampered"), []byte("doctored"), meta); err != nil {
		t.Fatal(err)
	}
	_, err := layer.VerifiedGet(context.Background(), "/tampered")
	if !errors.Is(err, core.ErrInconsistent) {
		t.Fatalf("err = %v, want ErrInconsistent", err)
	}
}

func TestVerifiedGetNotFound(t *testing.T) {
	layer, _ := newTestLayer(t, 0)
	_, err := layer.VerifiedGet(context.Background(), "/absent")
	if !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestVerifiedGetRetriesAcrossPropagation(t *testing.T) {
	// Data propagates before provenance: the verified reader must wait it
	// out (its RetryWait advances the clock) and succeed, not tear.
	layer, cl := newTestLayer(t, 10*time.Second)
	subject := ref("/slow", 0)
	data := []byte("slow data")
	nonce := "0-slow"
	meta := map[string]string{MetaNonce: nonce, MetaVersion: "0"}
	if err := cl.S3.Put(layer.Bucket(), DataKey("/slow"), data, meta); err != nil {
		t.Fatal(err)
	}
	if err := layer.WriteItem(context.Background(), subject, []prov.Record{
		prov.NewString(subject, prov.AttrType, prov.TypeFile),
	}, ConsistencyMD5(data, nonce), "t"); err != nil {
		t.Fatal(err)
	}
	obj, err := layer.VerifiedGet(context.Background(), "/slow")
	if err != nil {
		t.Fatalf("verified get across propagation: %v", err)
	}
	if string(obj.Data) != "slow data" {
		t.Fatalf("data = %q", obj.Data)
	}
}

func TestQueryEngineAgainstGroundTruth(t *testing.T) {
	layer, _ := newTestLayer(t, 0)
	ctx := context.Background()

	// blast -> out -> child; other -> other-out.
	blast := ref("proc/1/blast", 0)
	other := ref("proc/2/other", 0)
	out := ref("/out", 0)
	otherOut := ref("/other-out", 0)
	child := ref("/child", 0)
	write := func(subject prov.Ref, records ...prov.Record) {
		t.Helper()
		if err := layer.WriteItem(context.Background(), subject, records, "", "t"); err != nil {
			t.Fatal(err)
		}
	}
	write(blast,
		prov.NewString(blast, prov.AttrType, prov.TypeProcess),
		prov.NewString(blast, prov.AttrName, "blast"))
	write(other,
		prov.NewString(other, prov.AttrType, prov.TypeProcess),
		prov.NewString(other, prov.AttrName, "other"))
	write(out,
		prov.NewString(out, prov.AttrType, prov.TypeFile),
		prov.NewInput(out, blast))
	write(otherOut,
		prov.NewString(otherOut, prov.AttrType, prov.TypeFile),
		prov.NewInput(otherOut, other))
	write(child,
		prov.NewString(child, prov.AttrType, prov.TypeFile),
		prov.NewInput(child, out))

	outputs, err := layer.OutputsOf(ctx, "blast")
	if err != nil || len(outputs) != 1 || outputs[0] != out {
		t.Fatalf("OutputsOf = %v, %v", outputs, err)
	}
	desc, err := layer.DescendantsOfOutputs(ctx, "blast")
	if err != nil || len(desc) != 1 || desc[0] != child {
		t.Fatalf("Descendants = %v, %v", desc, err)
	}
	all, err := layer.AllProvenance(ctx)
	if err != nil || len(all) != 5 {
		t.Fatalf("AllProvenance = %d, %v", len(all), err)
	}
}

func TestDependentsChunking(t *testing.T) {
	cl := cloud.New(cloud.Config{Seed: 1})
	layer, err := New(Config{Cloud: cl, QueryChunk: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// One tool with 10 instances, each producing one file: the dependents
	// query must chunk the OR expression (ceil(10/3) = 4 queries) and
	// still find everything.
	var instances []prov.Ref
	for i := 0; i < 10; i++ {
		inst := ref(fmt.Sprintf("proc/%d/tool", i), 0)
		instances = append(instances, inst)
		if err := layer.WriteItem(context.Background(), inst, []prov.Record{
			prov.NewString(inst, prov.AttrType, prov.TypeProcess),
			prov.NewString(inst, prov.AttrName, "tool"),
		}, "", "t"); err != nil {
			t.Fatal(err)
		}
		out := ref(fmt.Sprintf("/out%d", i), 0)
		if err := layer.WriteItem(context.Background(), out, []prov.Record{
			prov.NewString(out, prov.AttrType, prov.TypeFile),
			prov.NewInput(out, inst),
		}, "", "t"); err != nil {
			t.Fatal(err)
		}
	}
	before := cl.Usage()
	outputs, err := layer.OutputsOf(ctx, "tool")
	if err != nil {
		t.Fatal(err)
	}
	if len(outputs) != 10 {
		t.Fatalf("outputs = %d, want 10", len(outputs))
	}
	after := cl.Usage()
	// 1 instance Query plus ceil(10/3) = 4 dependents chunks, which ride
	// QueryWithAttributes so the type filter needs no per-item follow-up.
	queries := after.OpCount(billing.SimpleDB, "Query") - before.OpCount(billing.SimpleDB, "Query")
	chunks := after.OpCount(billing.SimpleDB, "QueryWithAttributes") - before.OpCount(billing.SimpleDB, "QueryWithAttributes")
	if queries < 1 || chunks < 4 {
		t.Fatalf("queries = %d, chunked attr queries = %d; chunking not exercised", queries, chunks)
	}
	// The N+1 is gone: no GetAttributes per dependent.
	if gets := after.OpCount(billing.SimpleDB, "GetAttributes") - before.OpCount(billing.SimpleDB, "GetAttributes"); gets != 0 {
		t.Fatalf("OutputsOf issued %d GetAttributes; type must ride the chunk queries", gets)
	}
}

// TestExplainPredictsRidingAttrPointerGets: a two-phase query whose filter
// attribute rides the phase-2 QueryWithAttributes must predict the S3 GET
// that decoding a pointer-encoded (overflow) value of that attribute
// issues — the metered==predicted contract holds for riding attributes too.
func TestExplainPredictsRidingAttrPointerGets(t *testing.T) {
	cl := cloud.New(cloud.Config{Seed: 1})
	layer, err := New(Config{Cloud: cl, DisableQueryCache: true})
	if err != nil {
		t.Fatal(err)
	}
	proc, out := ref("proc/1/blast", 0), ref("/out", 0)
	big := strings.Repeat("x", core.OverflowThreshold+1)
	if err := layer.WriteItem(context.Background(), proc, []prov.Record{
		prov.NewString(proc, prov.AttrType, prov.TypeProcess),
		prov.NewString(proc, prov.AttrName, "blast"),
	}, "", "t"); err != nil {
		t.Fatal(err)
	}
	if err := layer.WriteItem(context.Background(), out, []prov.Record{
		prov.NewString(out, prov.AttrType, prov.TypeFile),
		prov.NewInput(out, proc),
		prov.NewString(out, "notes", big), // stored as an S3 pointer
	}, "", "t"); err != nil {
		t.Fatal(err)
	}

	q := prov.Query{
		Tool:       "blast",
		Attrs:      []prov.AttrFilter{{Attr: "notes", Value: "short"}},
		Projection: prov.ProjectRefs,
	}
	plan := layer.Explain(q)
	if !plan.Exact {
		t.Fatalf("single-writer plan not exact: %+v", plan)
	}
	before := cl.Usage().TotalOps()
	entries, err := core.CollectEntries(layer.Query(context.Background(), q))
	if err != nil {
		t.Fatal(err)
	}
	metered := cl.Usage().TotalOps() - before
	if plan.EstOps != metered {
		t.Fatalf("Explain predicted %d ops, meters recorded %d\n%s", plan.EstOps, metered, plan)
	}
	if len(entries) != 0 {
		t.Fatalf("query matched %v, want none (the pointer value is not %q)", entries, "short")
	}
}

// TestFailedWriteLeavesNoPhantomCatalogItem: a write that fails before its
// SimpleDB item lands must not be mirrored into the planner catalog, or
// Explain would simulate plans over an item that does not exist.
func TestFailedWriteLeavesNoPhantomCatalogItem(t *testing.T) {
	faults := sim.NewFaultPlan()
	faults.Arm("t/after-spill-put")
	cl := cloud.New(cloud.Config{Seed: 1})
	layer, err := New(Config{Cloud: cl, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	subject := ref("/big", 0)
	records := make([]prov.Record, 0, sdb.MaxAttrsPerItem+10)
	for i := 0; i < sdb.MaxAttrsPerItem+10; i++ {
		records = append(records, prov.NewString(subject, fmt.Sprintf("k%03d", i), "v"))
	}
	if err := layer.WriteItem(context.Background(), subject, records, "", "t"); err == nil {
		t.Fatal("armed spill fault did not fire")
	}
	if n := layer.catalog.Items(); n != 0 {
		t.Fatalf("failed write left %d phantom catalog item(s)", n)
	}
}

func TestDefaultsAndAccessors(t *testing.T) {
	layer, cl := newTestLayer(t, 0)
	if layer.Bucket() != "pass" || layer.Domain() != "provenance" {
		t.Fatalf("defaults: %q %q", layer.Bucket(), layer.Domain())
	}
	if layer.Cloud() != cl {
		t.Fatal("Cloud accessor broken")
	}
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil cloud accepted")
	}
}

func TestWriteEncodedBatchGroupsItems(t *testing.T) {
	layer, cl := newTestLayer(t, 0)
	ctx := context.Background()

	// 27 small items: 25 fit the first BatchPutAttributes call, 2 the
	// second — two SimpleDB ops total instead of 27.
	var writes []ItemWrite
	for i := 0; i < 27; i++ {
		subject := ref(fmt.Sprintf("/batch/%02d", i), 0)
		writes = append(writes, ItemWrite{
			Subject: subject,
			Records: []prov.Record{
				prov.NewString(subject, prov.AttrType, prov.TypeFile),
				prov.NewString(subject, prov.AttrName, string(subject.Object)),
			},
		})
	}
	before := cl.Usage().Ops(billing.SimpleDB)
	if err := layer.WriteEncodedBatch(ctx, writes, "t"); err != nil {
		t.Fatal(err)
	}
	if got := cl.Usage().Ops(billing.SimpleDB) - before; got != 2 {
		t.Fatalf("27-item batch cost %d SimpleDB ops, want 2", got)
	}
	for _, w := range writes {
		records, _, ok, err := layer.FetchItem(context.Background(), w.Subject)
		if err != nil || !ok {
			t.Fatalf("fetch %v: ok=%v err=%v", w.Subject, ok, err)
		}
		if len(records) != 2 {
			t.Fatalf("records(%v) = %v", w.Subject, records)
		}
	}
}

func TestWriteEncodedBatchOversizedItemFallsBack(t *testing.T) {
	layer, _ := newTestLayer(t, 0)
	ctx := context.Background()

	// One item with >100 attributes cannot ride a single batch call: it
	// must take the chunked PutAttributes path, while its small sibling
	// still lands via the batch path.
	big := ref("/big", 0)
	var bigRecords []prov.Record
	for i := 0; i < 150; i++ {
		bigRecords = append(bigRecords, prov.NewInput(big, ref(fmt.Sprintf("/in/%03d", i), 0)))
	}
	small := ref("/small", 0)
	writes := []ItemWrite{
		{Subject: big, Records: bigRecords},
		{Subject: small, Records: []prov.Record{prov.NewString(small, prov.AttrType, prov.TypeFile)}, MD5: "beef"},
	}
	if err := layer.WriteEncodedBatch(ctx, writes, "t"); err != nil {
		t.Fatal(err)
	}
	records, _, ok, err := layer.FetchItem(context.Background(), big)
	if err != nil || !ok || len(records) != 150 {
		t.Fatalf("big item: ok=%v err=%v n=%d", ok, err, len(records))
	}
	_, md5hex, ok, err := layer.FetchItem(context.Background(), small)
	if err != nil || !ok || md5hex != "beef" {
		t.Fatalf("small item: ok=%v err=%v md5=%q", ok, err, md5hex)
	}
}

func TestWriteEncodedBatchCancellation(t *testing.T) {
	layer, _ := newTestLayer(t, 0)
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	subject := ref("/c", 0)
	err := layer.WriteEncodedBatch(cctx, []ItemWrite{{Subject: subject,
		Records: []prov.Record{prov.NewString(subject, prov.AttrType, prov.TypeFile)}}}, "t")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, _, ok, _ := layer.FetchItem(context.Background(), subject); ok {
		t.Fatal("cancelled batch wrote an item")
	}
}

// --- query-performance subsystem -------------------------------------------

func TestEscapeQueryNeutralizesQuotes(t *testing.T) {
	if got := escapeQuery("no quotes"); got != "no quotes" {
		t.Fatalf("escapeQuery mangled a clean name: %q", got)
	}
	if got := escapeQuery("a'b"); got != "a''b" {
		t.Fatalf("escapeQuery(a'b) = %q, want doubled quote", got)
	}

	// End to end: an attribute name containing a quote travels through a
	// bracket expression without terminating the quoted name early. The
	// expression must parse and match only the intended item.
	layer, cl := newTestLayer(t, 0)
	hostile := "attr'] or ['type' = 'file"
	subject := ref("/esc", 0)
	if err := layer.WriteItem(context.Background(), subject, []prov.Record{
		prov.NewString(subject, prov.AttrType, prov.TypeFile),
	}, "", "t"); err != nil {
		t.Fatal(err)
	}
	// Unescaped, the quote closes the attribute name early and the rest of
	// the string leaks into the expression grammar.
	if _, err := cl.SDB.Query(layer.Domain(), "['"+hostile+"' = 'x']", 0, ""); err == nil {
		t.Fatal("unescaped quote did not corrupt the expression; hostile input too tame")
	}
	expr := "['" + escapeQuery(hostile) + "' = 'x']"
	res, err := cl.SDB.Query(layer.Domain(), expr, 0, "")
	if err != nil {
		t.Fatalf("escaped expression failed to parse: %v", err)
	}
	// The whole hostile string is one (absent) attribute name: no match.
	if len(res.ItemNames) != 0 {
		t.Fatalf("escaped query matched %v; quote broke out of the name", res.ItemNames)
	}
}

func TestOutputsOfNoNPlusOne(t *testing.T) {
	layer, cl := newTestLayer(t, 0)
	ctx := context.Background()

	// One tool, many dependents: the old path issued one GetAttributes per
	// dependent to read its type.
	tool := ref("proc/1/tool", 0)
	if err := layer.WriteItem(context.Background(), tool, []prov.Record{
		prov.NewString(tool, prov.AttrType, prov.TypeProcess),
		prov.NewString(tool, prov.AttrName, "tool"),
	}, "", "t"); err != nil {
		t.Fatal(err)
	}
	const deps = 40
	for i := 0; i < deps; i++ {
		out := ref(fmt.Sprintf("/out/%02d", i), 0)
		if err := layer.WriteItem(context.Background(), out, []prov.Record{
			prov.NewString(out, prov.AttrType, prov.TypeFile),
			prov.NewInput(out, tool),
		}, "", "t"); err != nil {
			t.Fatal(err)
		}
	}

	before := cl.Usage()
	outputs, err := layer.OutputsOf(ctx, "tool")
	if err != nil {
		t.Fatal(err)
	}
	if len(outputs) != deps {
		t.Fatalf("outputs = %d, want %d", len(outputs), deps)
	}
	after := cl.Usage()
	if gets := after.OpCount(billing.SimpleDB, "GetAttributes") - before.OpCount(billing.SimpleDB, "GetAttributes"); gets != 0 {
		t.Fatalf("OutputsOf issued %d GetAttributes for %d dependents (N+1 not fixed)", gets, deps)
	}
	// Total SimpleDB ops: 1 instance query + ceil(40/32) = 2 chunked
	// attribute queries — far under one op per dependent.
	if ops := after.Ops(billing.SimpleDB) - before.Ops(billing.SimpleDB); ops > 4 {
		t.Fatalf("OutputsOf cost %d SimpleDB ops for %d dependents", ops, deps)
	}
}

func TestLayerCacheRepeatQueriesFree(t *testing.T) {
	layer, cl := newTestLayer(t, 0)
	ctx := context.Background()
	tool := ref("proc/1/tool", 0)
	if err := layer.WriteItem(context.Background(), tool, []prov.Record{
		prov.NewString(tool, prov.AttrType, prov.TypeProcess),
		prov.NewString(tool, prov.AttrName, "tool"),
	}, "", "t"); err != nil {
		t.Fatal(err)
	}
	out := ref("/out", 0)
	if err := layer.WriteItem(context.Background(), out, []prov.Record{
		prov.NewString(out, prov.AttrType, prov.TypeFile),
		prov.NewInput(out, tool),
	}, "", "t"); err != nil {
		t.Fatal(err)
	}

	cold := []func() error{
		func() error { _, err := layer.OutputsOf(ctx, "tool"); return err },
		func() error { _, err := layer.DescendantsOfOutputs(ctx, "tool"); return err },
		func() error { _, err := layer.AllProvenance(ctx); return err },
		func() error { _, err := layer.Dependents(ctx, tool.Object); return err },
	}
	for _, q := range cold {
		if err := q(); err != nil {
			t.Fatal(err)
		}
	}
	before := cl.Usage().TotalOps()
	for _, q := range cold { // warm repeats
		if err := q(); err != nil {
			t.Fatal(err)
		}
	}
	if ops := cl.Usage().TotalOps() - before; ops != 0 {
		t.Fatalf("repeat queries cost %d cloud ops, want 0", ops)
	}

	// A write invalidates: the next query pays cloud ops again and sees
	// the new item.
	out2 := ref("/out2", 0)
	if err := layer.WriteItem(context.Background(), out2, []prov.Record{
		prov.NewString(out2, prov.AttrType, prov.TypeFile),
		prov.NewInput(out2, tool),
	}, "", "t"); err != nil {
		t.Fatal(err)
	}
	outputs, err := layer.OutputsOf(ctx, "tool")
	if err != nil || len(outputs) != 2 {
		t.Fatalf("OutputsOf after write = %v, %v; stale memo served", outputs, err)
	}
}

func TestUncachedLayerKeepsPaperCosts(t *testing.T) {
	cl := cloud.New(cloud.Config{Seed: 1})
	layer, err := New(Config{Cloud: cl, DisableQueryCache: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	tool := ref("proc/1/tool", 0)
	if err := layer.WriteItem(context.Background(), tool, []prov.Record{
		prov.NewString(tool, prov.AttrType, prov.TypeProcess),
		prov.NewString(tool, prov.AttrName, "tool"),
	}, "", "t"); err != nil {
		t.Fatal(err)
	}
	if _, err := layer.OutputsOf(ctx, "tool"); err != nil {
		t.Fatal(err)
	}
	before := cl.Usage().TotalOps()
	if _, err := layer.OutputsOf(ctx, "tool"); err != nil {
		t.Fatal(err)
	}
	if ops := cl.Usage().TotalOps() - before; ops == 0 {
		t.Fatal("uncached repeat query cost 0 ops; the knob does not disable the cache")
	}
}
