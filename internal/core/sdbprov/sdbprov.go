// Package sdbprov is the SimpleDB provenance layer shared by the paper's
// second and third architectures (§4.2, §4.3): provenance lives in SimpleDB
// — one item per object version, one attribute-value pair per record — and
// data lives in S3, with an MD5-of-data-plus-nonce record tying the two
// together for consistency verification.
//
// The layer implements:
//
//   - the item encoding of §4.2 (ItemName=foo_2; input=bar:2; type=file),
//     with values above 1 KB diverted to S3 objects and referenced by
//     pointer ("We store any provenance values larger than the 1KB SimpleDB
//     limit as separate S3 objects, referenced from SimpleDB");
//   - chunked PutAttributes ("Since SimpleDB allows us to store only 100
//     attributes per call, we might have to issue multiple PutAttributes
//     calls");
//   - the verified read: fetch data and provenance, compare
//     MD5(data‖nonce) against the stored consistency record, and "reissue
//     the query, retrieving data from S3 until we get consistent provenance
//     and data";
//   - the indexed query engine behind Table 3's SimpleDB column, with the
//     N+1 lookups of the paper's description aggregated away: dependents'
//     type attributes ride the same QueryWithAttributes pass as the refs,
//     chunked ancestry queries run concurrently per BFS level, and query
//     results plus the full-repository graph are kept in a
//     generation-stamped snapshot cache (internal/core/qcache) so repeated
//     queries on an unchanged domain cost zero cloud ops.
package sdbprov

import (
	"context"
	"crypto/md5"
	"encoding/hex"
	"errors"
	"fmt"
	"iter"
	"strconv"
	"time"

	"passcloud/internal/cloud"
	"passcloud/internal/cloud/retry"
	"passcloud/internal/cloud/s3"
	"passcloud/internal/cloud/sdb"
	"passcloud/internal/core"
	"passcloud/internal/core/integrity"
	"passcloud/internal/core/planner"
	"passcloud/internal/core/qcache"
	"passcloud/internal/prov"
	"passcloud/internal/sim"
)

// Reserved attribute names on provenance items.
const (
	// AttrMD5 holds hex(MD5(data ‖ nonce)) — the consistency record.
	AttrMD5 = "x-md5"
	// AttrMore points to an S3 object holding records beyond SimpleDB's
	// 256-pairs-per-item limit. The paper's encoding ("all the provenance
	// of an object version ... as attributes of one item") silently
	// assumes items fit; a compile's linker reads thousands of inputs, so
	// the limit is real and the excess spills, exactly like the >1 KB
	// value rule.
	AttrMore = "x-more"
)

// LedgerItem names the non-provenance item that carries a fresh integrity
// checkpoint after out-of-band deletions (the orphan scan). Its name has no
// version suffix, so ParseItemName rejects it and every scan and query path
// skips it like any other foreign item.
const LedgerItem = "x-ledger"

// Reserved S3 metadata keys on data objects.
const (
	// MetaNonce is the nonce used in the consistency record. "The nonce is
	// typically the file version" plus entropy against reuse.
	MetaNonce = "x-nonce"
	// MetaVersion is the version of the stored data.
	MetaVersion = "x-ver"
)

// Key layout within the bucket.
const (
	// DataPrefix prefixes data object keys.
	DataPrefix = "data"
	// OverflowPrefix prefixes >1 KB record-value objects.
	OverflowPrefix = "prov"
)

// ignoreAttrs are bookkeeping attributes skipped when decoding provenance.
var ignoreAttrs = map[string]bool{AttrMD5: true, AttrMore: true, integrity.AttrRoot: true}

// Config parameterizes a Layer.
type Config struct {
	// Cloud supplies S3 and SimpleDB. Required.
	Cloud *cloud.Cloud
	// Bucket and Domain name the S3 bucket and SimpleDB domain; both are
	// created if missing. Defaults: "pass" / "provenance".
	Bucket string
	Domain string
	// Faults optionally injects crashes inside multi-step writes.
	Faults *sim.FaultPlan
	// MaxReadRetries bounds the consistency retry loop (default 16).
	MaxReadRetries int
	// RetryWait is called between consistency retries. The default
	// advances the simulated clock by a quarter of the propagation
	// horizon, modeling the real time a client would wait before
	// reissuing.
	RetryWait func()
	// QueryChunk is the number of OR-ed values per ancestry query
	// expression (default 32).
	QueryChunk int
	// QueryConcurrency bounds the in-flight chunked ancestry queries per
	// BFS level (default 4). 1 restores strictly sequential chunks.
	QueryConcurrency int
	// DisableQueryCache turns off the generation-stamped query cache,
	// restoring one indexed query run per call (Table 3's SimpleDB row).
	DisableQueryCache bool
	// Retry bounds the transient-error backoff around every cloud call the
	// layer issues. The zero value uses the shared defaults.
	Retry retry.Policy
	// Writer identifies this client in integrity checkpoints (default "w").
	// Clients sharing a domain must use distinct writers.
	Writer string
	// DisableIntegrity turns off the Merkle ledger and its checkpoint
	// riders — the pre-integrity write shape, kept for the op-count parity
	// baselines.
	DisableIntegrity bool
}

// Layer is the shared provenance store.
type Layer struct {
	cfg Config

	// gen counts provenance writes; cache (nil when disabled) memoizes
	// query results and the scanned graph while gen is unchanged.
	gen   qcache.Generation
	cache *qcache.Cache
	// stamp samples the repository generation independently of the cache;
	// pagination cursors bind to it.
	stamp qcache.StampFunc
	// pins retains paginated queries' evaluated result sets.
	pins core.Pins
	// catalog mirrors this client's writes for Explain's cost predictions;
	// tracker tells the planner whether anything else wrote to the shared
	// region (predictions then degrade to estimates).
	catalog *planner.SDBCatalog
	tracker *qcache.WriteTracker
	// retrier backs off and retries transient cloud errors on every call
	// the layer issues; its meters feed the cost harness's retry-overhead
	// report.
	retrier *retry.Retrier
	// ledger rolls the Merkle commitment over committed items (nil when
	// integrity is disabled); its checkpoints ride batch writes as the
	// x-root attribute.
	ledger *integrity.Ledger
}

// New builds the layer, creating bucket and domain if needed.
func New(cfg Config) (*Layer, error) {
	if cfg.Cloud == nil {
		return nil, errors.New("sdbprov: Config.Cloud is required")
	}
	if cfg.Bucket == "" {
		cfg.Bucket = "pass"
	}
	if cfg.Domain == "" {
		cfg.Domain = "provenance"
	}
	if cfg.MaxReadRetries <= 0 {
		cfg.MaxReadRetries = 16
	}
	if cfg.QueryChunk <= 0 {
		cfg.QueryChunk = 32
	}
	if cfg.QueryConcurrency <= 0 {
		cfg.QueryConcurrency = 4
	}
	if cfg.RetryWait == nil {
		clock := cfg.Cloud.Clock
		step := cfg.Cloud.S3.MaxDelay()/4 + time.Millisecond
		cfg.RetryWait = func() { clock.Advance(step) }
	}
	l := &Layer{
		cfg:     cfg,
		catalog: planner.NewSDBCatalog(),
		tracker: qcache.NewWriteTracker(cfg.Cloud),
		retrier: retry.New(cfg.Retry, cfg.Cloud.Clock, cfg.Cloud.RNG),
	}
	if !cfg.DisableIntegrity {
		l.ledger = integrity.NewLedger(cfg.Writer)
	}
	// Resource creation meters as a mutation (CreateBucket is an S3 PUT);
	// track it so a solo client's plans stay exact.
	err := l.tracker.Track(func() error {
		//passvet:allow retrywrap -- one-shot namespace setup at construction: no caller context exists yet, and a failure surfaces directly instead of being retried behind the builder's back
		if err := cfg.Cloud.S3.CreateBucket(cfg.Bucket); err != nil && !errors.Is(err, s3.ErrBucketAlreadyExists) {
			return err
		}
		//passvet:allow retrywrap -- one-shot namespace setup at construction: no caller context exists yet, and a failure surfaces directly instead of being retried behind the builder's back
		if err := cfg.Cloud.SDB.CreateDomain(cfg.Domain); err != nil && !errors.Is(err, sdb.ErrDomainExists) {
			return err
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	l.stamp = qcache.CloudStamp(&l.gen, cfg.Cloud)
	if !cfg.DisableQueryCache {
		l.cache = qcache.New(l.stamp)
	}
	return l, nil
}

// TrackWrites runs one of this client's outermost write sections under
// the planner's write tracker, so the mutations it meters count as own.
// Do not nest tracked sections — attribution would double-count.
func (l *Layer) TrackWrites(f func() error) error { return l.tracker.Track(f) }

// ForeignWrites reports region mutations this client did not perform.
func (l *Layer) ForeignWrites() uint64 { return l.tracker.Foreign() }

// InvalidateQueries bumps the layer's write generation, expiring every
// cached snapshot and memoized query result. Layer write paths call it
// themselves; callers that mutate the domain behind the layer's back
// (orphan-scan deletions, shared-domain writers) must call it too.
func (l *Layer) InvalidateQueries() { l.gen.Bump() }

// CacheStats exposes the query-cache counters (zero when disabled).
func (l *Layer) CacheStats() qcache.Stats {
	if l.cache == nil {
		return qcache.Stats{}
	}
	return l.cache.Stats()
}

// ConsistencyWait blocks (in simulated time) for one full propagation
// horizon, the wait a client performs before trusting that a negative read
// — a missing object, a missing item — reflects reality rather than a
// stale replica. Recovery scans use it before destructive decisions.
func (l *Layer) ConsistencyWait() {
	for i := 0; i < 4; i++ {
		l.cfg.RetryWait()
	}
}

// Retrier returns the layer's retry executor, shared with the protocol code
// built on the layer (stores, commit daemon, cleaner) so one run's retry
// overhead is metered in one place.
func (l *Layer) Retrier() *retry.Retrier { return l.retrier }

// RetryStats snapshots the layer's retry counters.
func (l *Layer) RetryStats() retry.Snapshot { return l.retrier.Snapshot() }

// Bucket returns the S3 bucket name.
func (l *Layer) Bucket() string { return l.cfg.Bucket }

// Domain returns the SimpleDB domain name.
func (l *Layer) Domain() string { return l.cfg.Domain }

// Cloud returns the underlying cloud.
func (l *Layer) Cloud() *cloud.Cloud { return l.cfg.Cloud }

// DataKey returns the S3 key holding an object's data.
func DataKey(object prov.ObjectID) string { return DataPrefix + string(object) }

// overflowKey names the S3 object holding one >1 KB record value.
func (l *Layer) overflowKey(subject prov.Ref, n int) string {
	return fmt.Sprintf("%s/%s/%d", OverflowPrefix, prov.EncodeItemName(subject), n)
}

// ConsistencyMD5 computes the §4.2 consistency record: MD5 of the data
// concatenated with the nonce. "The MD5sum of the data itself (without the
// nonce) is sufficient ... except when a file is overwritten with the same
// data", hence the nonce.
func ConsistencyMD5(data []byte, nonce string) string {
	h := md5.New()
	h.Write(data)
	h.Write([]byte(nonce))
	return hex.EncodeToString(h.Sum(nil))
}

// EncodeValues prepares records for storage: string values over 1 KB are
// written to their own S3 objects (their PUTs count toward the paper's op
// totals) and replaced by pointers; smaller literals are escaped. The
// returned records carry the stored form and can travel through the WAL or
// go straight to WriteEncoded.
func (l *Layer) EncodeValues(ctx context.Context, subject prov.Ref, records []prov.Record, faultPrefix string) ([]prov.Record, error) {
	out := make([]prov.Record, len(records))
	overflowN := 0
	for i, rec := range records {
		if rec.Value.Kind != prov.KindString {
			out[i] = rec
			continue
		}
		value := rec.Value.Str
		if len(value) > core.OverflowThreshold {
			okey := l.overflowKey(subject, overflowN)
			overflowN++
			// Re-PUT of the same key/content is idempotent, so a retry
			// after a lost response cannot double-apply.
			err := l.retrier.Do(ctx, "sdbprov/overflow-put", func() error {
				return l.cfg.Cloud.S3.Put(l.cfg.Bucket, okey, []byte(value), nil)
			})
			if err != nil {
				return nil, fmt.Errorf("sdbprov: overflow put: %w", err)
			}
			if err := l.cfg.Faults.Check(faultPrefix + "/after-overflow-put"); err != nil {
				return nil, err
			}
			value = core.PointerValue(okey)
		} else {
			value = core.EscapeLiteral(value)
		}
		rec.Value = prov.StringValue(value)
		out[i] = rec
	}
	return out, nil
}

// buildAttrs renders one subject's pre-encoded records into the item's
// attribute list: inline records, the MD5 consistency record, the integrity
// checkpoint rider (rootToken, when non-empty), and — for records beyond
// the 256-pairs-per-item limit — an S3 spill object referenced by the
// AttrMore attribute (the spill PUT happens here).
// observe mirrors the item into the planner catalog; callers invoke it
// only once the SimpleDB write succeeds, so a failed write cannot leave a
// phantom item skewing Explain.
func (l *Layer) buildAttrs(ctx context.Context, subject prov.Ref, encoded []prov.Record, md5hex, rootToken, faultPrefix string) (attrs []sdb.ReplaceableAttr, observe func(), err error) {
	item := prov.EncodeItemName(subject)

	// Reserve room for the bookkeeping attributes.
	reserved := 1 // AttrMore slot
	if md5hex != "" {
		reserved++
	}
	if rootToken != "" {
		reserved++
	}
	inline := encoded
	var spill []prov.Record
	if len(encoded)+reserved > sdb.MaxAttrsPerItem {
		cut := sdb.MaxAttrsPerItem - reserved
		inline, spill = encoded[:cut], encoded[cut:]
	}
	observe = func() { l.catalog.Observe(subject, inline, spill) }

	attrs = make([]sdb.ReplaceableAttr, 0, len(inline)+reserved)
	for _, rec := range inline {
		attrs = append(attrs, sdb.ReplaceableAttr{Name: rec.Attr, Value: rec.Value.String()})
	}
	if md5hex != "" {
		attrs = append(attrs, sdb.ReplaceableAttr{Name: AttrMD5, Value: md5hex, Replace: true})
	}
	if rootToken != "" {
		attrs = append(attrs, sdb.ReplaceableAttr{Name: integrity.AttrRoot, Value: rootToken, Replace: true})
	}

	if len(spill) > 0 {
		blob, err := prov.MarshalJSONRecords(spill)
		if err != nil {
			return nil, nil, err
		}
		mkey := fmt.Sprintf("%s/%s/more", OverflowPrefix, item)
		err = l.retrier.Do(ctx, "sdbprov/spill-put", func() error {
			return l.cfg.Cloud.S3.Put(l.cfg.Bucket, mkey, blob, nil)
		})
		if err != nil {
			return nil, nil, fmt.Errorf("sdbprov: spill put: %w", err)
		}
		if err := l.cfg.Faults.Check(faultPrefix + "/after-spill-put"); err != nil {
			return nil, nil, err
		}
		attrs = append(attrs, sdb.ReplaceableAttr{Name: AttrMore, Value: mkey, Replace: true})
	}
	return attrs, observe, nil
}

// WriteEncoded stores pre-encoded records (from EncodeValues) as one
// SimpleDB item via chunked PutAttributes calls ("Since SimpleDB allows us
// to store only 100 attributes per call, we might have to issue multiple
// PutAttributes calls"). md5hex, when non-empty, adds the consistency
// record. faultPrefix scopes the crash points so each caller's protocol is
// independently testable.
func (l *Layer) WriteEncoded(ctx context.Context, subject prov.Ref, encoded []prov.Record, md5hex, faultPrefix string) error {
	// Invalidate cached query state even on failure: a partial chunked
	// write is already visible to queries.
	defer l.gen.Bump()
	attrs, observe, err := l.buildAttrs(ctx, subject, encoded, md5hex, "", faultPrefix)
	if err != nil {
		return err
	}
	if err := l.putChunked(ctx, subject, attrs, faultPrefix); err != nil {
		return err
	}
	observe()
	return nil
}

// putChunked issues the chunked PutAttributes loop for one item.
func (l *Layer) putChunked(ctx context.Context, subject prov.Ref, attrs []sdb.ReplaceableAttr, faultPrefix string) error {
	item := prov.EncodeItemName(subject)
	for start := 0; start < len(attrs); start += sdb.MaxAttrsPerCall {
		end := start + sdb.MaxAttrsPerCall
		if end > len(attrs) {
			end = len(attrs)
		}
		chunk := attrs[start:end]
		// PutAttributes is idempotent (§2.2): the same (name, value) pairs
		// collapse, so a retried-after-lost-response chunk cannot duplicate.
		err := l.retrier.Do(ctx, "sdbprov/put-attributes", func() error {
			return l.cfg.Cloud.SDB.PutAttributes(l.cfg.Domain, item, chunk)
		})
		if err != nil {
			return fmt.Errorf("sdbprov: put attributes: %w", err)
		}
		if err := l.cfg.Faults.Check(faultPrefix + "/after-putattrs-chunk"); err != nil {
			return err
		}
	}
	return nil
}

// WriteItem encodes and stores a subject's provenance in one step — the
// direct (architecture 2) single-item write path. As an outermost write
// entry point it runs under the planner's write tracker.
func (l *Layer) WriteItem(ctx context.Context, subject prov.Ref, records []prov.Record, md5hex, faultPrefix string) error {
	return l.TrackWrites(func() error {
		encoded, err := l.EncodeValues(ctx, subject, records, faultPrefix)
		if err != nil {
			return err
		}
		return l.WriteEncoded(ctx, subject, encoded, md5hex, faultPrefix)
	})
}

// ItemWrite is one subject's worth of a batched provenance write. Records
// must already carry their stored form (EncodeValues).
type ItemWrite struct {
	Subject prov.Ref
	Records []prov.Record
	// MD5 is the consistency record value; empty for transient subjects.
	MD5 string
	// Leaf is the subject's integrity leaf — integrity.SubjectHash over the
	// ORIGINAL (pre-encoding) record set. Empty skips the ledger for this
	// item (callers that predate the integrity subsystem).
	Leaf string
}

// WriteEncodedBatch stores many subjects' provenance with as few SimpleDB
// calls as possible: items that fit in a single call are grouped into
// BatchPutAttributes requests of up to 25 items each (the 2009 batch
// limit), and oversized items fall back to the chunked PutAttributes path.
// This is the write amortization both indexed architectures ride: a close
// with K unpersisted ancestors costs ⌈K/25⌉ SimpleDB calls instead of K.
//
// Transient SimpleDB errors are retried with backoff (re-sending a group is
// idempotent: per-item set semantics collapse duplicates). When the batch
// still fails after some groups landed, the error is a typed
// core.PartialWriteError listing the landed subjects, so callers can tell
// a half-landed batch from an all-or-nothing failure instead of guessing.
//
// When the batch carries integrity leaves, the whole batch is committed to
// the Merkle ledger up front and the minted checkpoint rides every item as
// one extra attribute — zero additional SimpleDB calls. Slot replacement
// makes the commit idempotent: a WAL replay or partial-batch retry
// re-commits the same items with the same leaves and converges to the same
// root (only the checkpoint sequence advances).
func (l *Layer) WriteEncodedBatch(ctx context.Context, writes []ItemWrite, faultPrefix string) error {
	if len(writes) > 0 {
		// Invalidate cached query state even on failure: earlier groups of
		// a partially written batch are already visible to queries.
		defer l.gen.Bump()
	}
	rootToken := ""
	if l.ledger != nil {
		slots := make(map[string][]string)
		for _, w := range writes {
			if w.Leaf == "" {
				continue
			}
			item := prov.EncodeItemName(w.Subject)
			slots[item] = append(slots[item], w.Leaf)
		}
		if len(slots) > 0 {
			rootToken = l.ledger.Commit(slots).Token()
		}
	}
	var landed []prov.Ref
	var group []sdb.BatchItem
	var groupObserve []func()
	var groupSubjects []prov.Ref
	flushGroup := func() error {
		if len(group) == 0 {
			return nil
		}
		batch := group
		err := l.retrier.Do(ctx, "sdbprov/batch-put", func() error {
			return l.cfg.Cloud.SDB.BatchPutAttributes(l.cfg.Domain, batch)
		})
		if err != nil {
			return fmt.Errorf("sdbprov: batch put attributes: %w", err)
		}
		// The group landed: mirror its items into the planner catalog and
		// record them for partial-failure reporting.
		for _, observe := range groupObserve {
			observe()
		}
		landed = append(landed, groupSubjects...)
		group, groupObserve, groupSubjects = group[:0], groupObserve[:0], groupSubjects[:0]
		return l.cfg.Faults.Check(faultPrefix + "/after-batchput")
	}
	// partial tags errors with whatever landed before the failure.
	partial := func(err error) error { return core.PartialWrite(landed, err) }

	seen := make(map[string]bool, len(writes))
	for _, w := range writes {
		if err := ctx.Err(); err != nil {
			return partial(err)
		}
		attrs, observe, err := l.buildAttrs(ctx, w.Subject, w.Records, w.MD5, rootToken, faultPrefix)
		if err != nil {
			return partial(err)
		}
		if len(attrs) > sdb.MaxAttrsPerCall {
			// Oversized item: the chunked single-item path. Flush the
			// pending group first so the batch's ancestors-before-
			// descendants write order survives a crash between calls.
			if err := flushGroup(); err != nil {
				return partial(err)
			}
			clear(seen)
			if err := l.putChunked(ctx, w.Subject, attrs, faultPrefix); err != nil {
				return partial(err)
			}
			observe()
			landed = append(landed, w.Subject)
			continue
		}
		name := prov.EncodeItemName(w.Subject)
		if seen[name] {
			// The same subject twice in one batch (version churn): flush
			// the group so the duplicate lands in a later call, preserving
			// write order without tripping the one-item-per-call rule.
			if err := flushGroup(); err != nil {
				return partial(err)
			}
			clear(seen)
		}
		seen[name] = true
		group = append(group, sdb.BatchItem{Name: name, Attrs: attrs})
		groupObserve = append(groupObserve, observe)
		groupSubjects = append(groupSubjects, w.Subject)
		if len(group) == sdb.MaxItemsPerBatch {
			if err := flushGroup(); err != nil {
				return partial(err)
			}
			clear(seen)
		}
	}
	return partial(flushGroup())
}

// FetchItem retrieves and decodes a subject's provenance. ok is false when
// the item is not (yet) visible.
func (l *Layer) FetchItem(ctx context.Context, subject prov.Ref) (records []prov.Record, md5hex string, ok bool, err error) {
	item := prov.EncodeItemName(subject)
	var attrs []sdb.Attr
	err = l.retrier.Do(ctx, "sdbprov/get-attributes", func() error {
		var gerr error
		attrs, ok, gerr = l.cfg.Cloud.SDB.GetAttributes(l.cfg.Domain, item)
		return gerr
	})
	if err != nil || !ok {
		return nil, "", ok, err
	}
	records, md5hex, _, err = l.decodeAttrs(ctx, subject, attrs)
	if err != nil {
		return nil, "", false, err
	}
	return records, md5hex, true, nil
}

// decodeAttrs converts stored attributes back into records, resolving value
// pointers (one GET each) and the item-spill object if present. rootToken
// is the item's integrity checkpoint rider, if any.
func (l *Layer) decodeAttrs(ctx context.Context, subject prov.Ref, attrs []sdb.Attr) ([]prov.Record, string, string, error) {
	var md5hex, moreKey, rootToken string
	out := make([]prov.Record, 0, len(attrs))
	for _, a := range attrs {
		switch a.Name {
		case AttrMD5:
			md5hex = a.Value
			continue
		case AttrMore:
			moreKey = a.Value
			continue
		case integrity.AttrRoot:
			rootToken = a.Value
			continue
		}
		rec, err := l.decodeStored(ctx, subject, a.Name, a.Value)
		if err != nil {
			return nil, "", "", err
		}
		out = append(out, rec)
	}
	if moreKey != "" {
		var obj *s3.Object
		err := l.retrier.Do(ctx, "sdbprov/spill-get", func() error {
			var gerr error
			obj, gerr = l.cfg.Cloud.S3.Get(l.cfg.Bucket, moreKey)
			return gerr
		})
		if err != nil {
			return nil, "", "", fmt.Errorf("sdbprov: spill get: %w", err)
		}
		spilled, err := prov.UnmarshalJSONRecords(obj.Body)
		if err != nil {
			return nil, "", "", err
		}
		for _, rec := range spilled {
			if rec.Value.Kind == prov.KindString {
				// Spilled string values carry the stored form.
				resolved, err := l.decodeStored(ctx, subject, rec.Attr, rec.Value.Str)
				if err != nil {
					return nil, "", "", err
				}
				rec = resolved
			}
			out = append(out, rec)
		}
	}
	return out, md5hex, rootToken, nil
}

// decodeStored turns one stored attribute value back into a record,
// resolving pointers and unescaping literals.
func (l *Layer) decodeStored(ctx context.Context, subject prov.Ref, attr, raw string) (prov.Record, error) {
	if !prov.IsRefAttr(attr) {
		okey, literal, isPtr := core.DecodeValue(raw)
		if isPtr {
			var obj *s3.Object
			err := l.retrier.Do(ctx, "sdbprov/overflow-get", func() error {
				var gerr error
				obj, gerr = l.cfg.Cloud.S3.Get(l.cfg.Bucket, okey)
				return gerr
			})
			if err != nil {
				return prov.Record{}, fmt.Errorf("sdbprov: overflow get: %w", err)
			}
			literal = string(obj.Body)
		}
		return prov.Record{Subject: subject, Attr: attr, Value: prov.StringValue(literal)}, nil
	}
	ref, err := prov.ParseRef(raw)
	if err != nil {
		return prov.Record{}, fmt.Errorf("sdbprov: %w", err)
	}
	return prov.Record{Subject: subject, Attr: attr, Value: prov.RefValue(ref)}, nil
}

// VerifiedGet implements the §4.2 read protocol: retrieve the data and its
// provenance, verify MD5(data‖nonce) against the consistency record, and
// retry on mismatch "until we get consistent provenance and data". It
// returns core.ErrInconsistent when the retry budget is exhausted and
// core.ErrNoProvenance when data exists but its item never appears —
// the atomicity-violation surface.
func (l *Layer) VerifiedGet(ctx context.Context, object prov.ObjectID) (*core.Object, error) {
	var lastErr error = core.ErrInconsistent
	for attempt := 0; attempt <= l.cfg.MaxReadRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if attempt > 0 {
			l.cfg.RetryWait()
		}

		var obj *s3.Object
		err := l.retrier.Do(ctx, "sdbprov/data-get", func() error {
			var gerr error
			obj, gerr = l.cfg.Cloud.S3.Get(l.cfg.Bucket, DataKey(object))
			return gerr
		})
		if err != nil {
			if errors.Is(err, s3.ErrNoSuchKey) {
				lastErr = fmt.Errorf("%w: %s", core.ErrNotFound, object)
				continue // the object may simply not have propagated yet
			}
			return nil, err
		}
		nonce := obj.Metadata[MetaNonce]
		ver, verr := strconv.Atoi(obj.Metadata[MetaVersion])
		if verr != nil {
			lastErr = fmt.Errorf("%w: data missing version metadata", core.ErrNoProvenance)
			continue
		}
		ref := prov.Ref{Object: object, Version: prov.Version(ver)}

		records, md5hex, ok, err := l.FetchItem(ctx, ref)
		if err != nil {
			return nil, err
		}
		if !ok {
			lastErr = fmt.Errorf("%w: %s", core.ErrNoProvenance, ref)
			continue
		}
		if md5hex == "" || md5hex != ConsistencyMD5(obj.Body, nonce) {
			// Eventual consistency let S3 and SimpleDB disagree; reissue.
			lastErr = fmt.Errorf("%w: %s (md5 mismatch)", core.ErrInconsistent, ref)
			continue
		}
		return &core.Object{Ref: ref, Data: obj.Body, Records: records}, nil
	}
	return nil, lastErr
}

// --- query engine (Table 3, SimpleDB column) --------------------------------

// AllProvenanceSeq streams every item's provenance one object version at a
// time: "there is no way for SimpleDB to generalize the query and needs to
// issue one query per item" (§5, Q.1). With the cache disabled, pagination
// means only one Select page plus one item are resident at once; with the
// cache enabled, entries come from the (built-if-needed) snapshot — zero
// cloud ops when warm.
func (l *Layer) AllProvenanceSeq(ctx context.Context) iter.Seq2[core.Entry, error] {
	if l.cache == nil {
		return l.scanSeq(ctx)
	}
	return func(yield func(core.Entry, error) bool) {
		g, err := l.snapshot(ctx)
		if err != nil {
			yield(core.Entry{}, err)
			return
		}
		for _, subject := range g.Subjects() {
			if !yield(core.Entry{Ref: subject, Records: g.Records(subject)}, nil) {
				return
			}
		}
	}
}

// scanSeq is the live one-query-per-item repository scan.
func (l *Layer) scanSeq(ctx context.Context) iter.Seq2[core.Entry, error] {
	return func(yield func(core.Entry, error) bool) {
		token := ""
		for {
			if err := ctx.Err(); err != nil {
				yield(core.Entry{}, err)
				return
			}
			res, err := l.cfg.Cloud.SDB.Select("select itemName() from "+l.cfg.Domain, token)
			if err != nil {
				yield(core.Entry{}, err)
				return
			}
			for _, item := range res.Items {
				ref, err := prov.ParseItemName(item.Name)
				if err != nil {
					continue // foreign item in a shared domain
				}
				records, _, ok, err := l.FetchItem(ctx, ref)
				if err != nil {
					yield(core.Entry{}, err)
					return
				}
				if !ok {
					continue
				}
				if !yield(core.Entry{Ref: ref, Records: records}, nil) {
					return
				}
			}
			if res.NextToken == "" {
				return
			}
			token = res.NextToken
		}
	}
}

// AllProvenance materializes the repository's provenance into a map (Q.1
// over all objects, for callers that need the whole repository at once) —
// from the snapshot cache when enabled.
func (l *Layer) AllProvenance(ctx context.Context) (map[prov.Ref][]prov.Record, error) {
	if l.cache != nil {
		g, err := l.snapshot(ctx)
		if err != nil {
			return nil, err
		}
		return qcache.MapFromGraph(g), nil
	}
	out := make(map[prov.Ref][]prov.Record)
	for entry, err := range l.scanSeq(ctx) {
		if err != nil {
			return nil, err
		}
		out[entry.Ref] = entry.Records
	}
	return out, nil
}

// buildGraph materializes the scan into a provenance graph.
func (l *Layer) buildGraph(ctx context.Context) (*prov.Graph, error) {
	g := prov.NewGraph()
	for entry, err := range l.scanSeq(ctx) {
		if err != nil {
			return nil, err
		}
		g.AddAll(entry.Records)
	}
	return g, nil
}

// snapshot returns the cached graph, building it (singleflight) on a miss.
func (l *Layer) snapshot(ctx context.Context) (*prov.Graph, error) {
	return l.cache.Graph(ctx, l.buildGraph)
}

// ProvenanceGraph returns the repository graph, shared from the snapshot
// cache when warm. Read-only.
func (l *Layer) ProvenanceGraph(ctx context.Context) (*prov.Graph, error) {
	if l.cache != nil {
		return l.snapshot(ctx)
	}
	return l.buildGraph(ctx)
}

// --- integrity (chain/ledger/audit) -----------------------------------------

// IntegrityEnabled reports whether the layer maintains the Merkle ledger.
func (l *Layer) IntegrityEnabled() bool { return l.ledger != nil }

// DropFromLedger removes deleted items' leaves from the Merkle ledger and
// re-persists a fresh checkpoint on the dedicated ledger item, so the
// commitment follows a legitimate deletion (the orphan scan) instead of
// flagging it. This is the one place a checkpoint costs its own SimpleDB
// call — a recovery path, never the healthy write path.
func (l *Layer) DropFromLedger(ctx context.Context, items []string) error {
	if l.ledger == nil || len(items) == 0 {
		return nil
	}
	for _, item := range items {
		l.ledger.Remove(item)
	}
	cp := l.ledger.Commit(nil)
	attrs := []sdb.ReplaceableAttr{{Name: integrity.AttrRoot, Value: cp.Token(), Replace: true}}
	err := l.retrier.Do(ctx, "sdbprov/ledger-put", func() error {
		return l.cfg.Cloud.SDB.PutAttributes(l.cfg.Domain, LedgerItem, attrs)
	})
	if err != nil {
		return fmt.Errorf("sdbprov: ledger put: %w", err)
	}
	return nil
}

// Audit implements integrity.Auditor: a live full-domain scan (never the
// query cache — a verifier must read what is actually stored) returning
// every item's decoded records plus every checkpoint rider encountered.
// The op cost — Select pages, one GetAttributes per item, pointer GETs —
// is exactly what the verification-cost benchmark meters.
func (l *Layer) Audit(ctx context.Context) (*integrity.Audit, error) {
	a := &integrity.Audit{
		Entries:        make(map[prov.Ref][]prov.Record),
		RetainsHistory: true, // items are per-version and never reclaimed
	}
	addCheckpoint := func(token string) {
		if token == "" {
			return
		}
		// A rider that no longer parses was tampered with; dropping it
		// surfaces as a stale or missing checkpoint downstream.
		if cp, err := integrity.ParseCheckpoint(token); err == nil {
			a.Checkpoints = append(a.Checkpoints, cp)
		}
	}
	token := ""
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var res *sdb.SelectResult
		err := l.retrier.Do(ctx, "sdbprov/audit-select", func() error {
			var serr error
			res, serr = l.cfg.Cloud.SDB.Select("select itemName() from "+l.cfg.Domain, token)
			return serr
		})
		if err != nil {
			return nil, err
		}
		for _, item := range res.Items {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			name := item.Name
			var attrs []sdb.Attr
			var ok bool
			err := l.retrier.Do(ctx, "sdbprov/audit-get", func() error {
				var gerr error
				attrs, ok, gerr = l.cfg.Cloud.SDB.GetAttributes(l.cfg.Domain, name)
				return gerr
			})
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			ref, perr := prov.ParseItemName(name)
			if perr != nil {
				// The ledger item (or a foreign item): harvest any rider.
				for _, at := range attrs {
					if at.Name == integrity.AttrRoot {
						addCheckpoint(at.Value)
					}
				}
				continue
			}
			records, _, rider, err := l.decodeAttrs(ctx, ref, attrs)
			if err != nil {
				return nil, err
			}
			a.Entries[ref] = records
			addCheckpoint(rider)
		}
		if res.NextToken == "" {
			return a, nil
		}
		token = res.NextToken
	}
}
