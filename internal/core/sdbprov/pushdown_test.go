package sdbprov

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"passcloud/internal/cloud"
	"passcloud/internal/cloud/billing"
	"passcloud/internal/core"
	"passcloud/internal/prov"
)

// This file is the pushdown oracle: randomized descriptors run through the
// layer's native SimpleDB plans AND through the shared in-memory evaluator
// (core.EvalQuery) over the same records. Any disagreement means the
// pushdown lies — including the quote-escaping and stored-form-encoding
// edge cases that motivated the oracle (a tool named "o'brien" or a value
// beginning with the pointer mark must match identically in both worlds).

// genRepo writes a deterministic pseudo-random repository into the layer
// and returns its decoded-record oracle graph.
func genRepo(t *testing.T, layer *Layer, rng *rand.Rand, n int) *prov.Graph {
	t.Helper()
	// Pools deliberately contain the hostile cases: single quotes (the
	// 2009 grammar's escape), doubled quotes, the pointer escape mark, and
	// names that collide as prefixes.
	names := []string{"blast", "bl'ast", "o''brien", "\x1emarked", "softmean", "align warp"}
	types := []string{prov.TypeFile, prov.TypeProcess, prov.TypePipe}
	attrs := []string{prov.AttrName, prov.AttrType, prov.AttrArgv, "custom", "we'ird attr"}
	objects := []string{"/data/a", "/data/ab", "/out/x", "proc/7/tool", "/d'q/o"}

	g := prov.NewGraph()
	var subjects []prov.Ref
	for i := 0; i < n; i++ {
		obj := objects[rng.Intn(len(objects))]
		subject := prov.Ref{Object: prov.ObjectID(obj), Version: prov.Version(i)}
		var records []prov.Record
		records = append(records,
			prov.NewString(subject, prov.AttrType, types[rng.Intn(len(types))]),
			prov.NewString(subject, prov.AttrName, names[rng.Intn(len(names))]))
		// Extra descriptive records, sometimes on quote-bearing attrs.
		for k := 0; k < rng.Intn(3); k++ {
			records = append(records,
				prov.NewString(subject, attrs[rng.Intn(len(attrs))], names[rng.Intn(len(names))]))
		}
		// Acyclic ancestry: inputs only reference earlier subjects.
		for k := 0; k < rng.Intn(3) && len(subjects) > 0; k++ {
			records = append(records, prov.NewInput(subject, subjects[rng.Intn(len(subjects))]))
		}
		if err := layer.WriteItem(context.Background(), subject, records, "", "gen"); err != nil {
			t.Fatal(err)
		}
		g.AddAll(records)
		subjects = append(subjects, subject)
	}
	return g
}

// genQuery builds one pseudo-random descriptor over the same pools.
func genQuery(rng *rand.Rand) prov.Query {
	names := []string{"blast", "bl'ast", "o''brien", "\x1emarked", "softmean", "nosuch"}
	types := []string{"", prov.TypeFile, prov.TypeProcess}
	prefixes := []string{"", "/data/", "/data/a:", "/out/x:", "proc/"}
	q := prov.Query{Projection: prov.ProjectRefs}
	switch rng.Intn(4) {
	case 0:
		q.Tool = names[rng.Intn(len(names))]
		q.Type = types[rng.Intn(len(types))]
	case 1:
		q.Type = types[rng.Intn(len(types))]
		if rng.Intn(2) == 0 {
			q.Attrs = []prov.AttrFilter{{Attr: "custom", Value: names[rng.Intn(len(names))]}}
		}
	case 2:
		q.RefPrefix = prefixes[rng.Intn(len(prefixes))]
	case 3:
		q.Refs = []prov.Ref{
			{Object: "/data/a", Version: prov.Version(rng.Intn(30))},
			{Object: "/out/x", Version: prov.Version(rng.Intn(30))},
		}
		if rng.Intn(2) == 0 {
			q.Type = types[rng.Intn(len(types))]
		}
	}
	switch rng.Intn(3) {
	case 1:
		q.Direction = prov.TraverseDescendants
		q.Depth = rng.Intn(3) // 0 = unlimited
		q.IncludeSeeds = rng.Intn(2) == 0
	case 2:
		q.Direction = prov.TraverseAncestors
		q.Depth = rng.Intn(3)
		q.IncludeSeeds = rng.Intn(2) == 0
	}
	return q
}

func sortedRefs(refs []prov.Ref) []prov.Ref {
	out := append([]prov.Ref(nil), refs...)
	prov.SortRefs(out)
	return out
}

// TestPushdownAgreesWithEvaluator is the oracle test proper, run with the
// cache enabled and disabled (both plan families must agree with the
// evaluator).
func TestPushdownAgreesWithEvaluator(t *testing.T) {
	for _, disableCache := range []bool{false, true} {
		t.Run(fmt.Sprintf("cache=%v", !disableCache), func(t *testing.T) {
			cl := cloud.New(cloud.Config{Seed: 7})
			layer, err := New(Config{Cloud: cl, DisableQueryCache: disableCache, QueryChunk: 3})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(42))
			oracle := genRepo(t, layer, rng, 60)
			ctx := context.Background()

			for i := 0; i < 200; i++ {
				q := genQuery(rng)
				native, err := core.CollectRefs(layer.Query(ctx, q))
				if err != nil {
					t.Fatalf("query %d %+v: %v", i, q, err)
				}
				want := core.EvalQueryRefs(oracle, q)
				if !reflect.DeepEqual(sortedRefs(native), want) {
					t.Errorf("query %d diverged\n  descriptor: %+v\n  key: %s\n  native: %v\n  oracle: %v",
						i, q, q.Key(), sortedRefs(native), want)
				}
			}
		})
	}
}

// TestPushdownFullProjection: full-record projection agrees with the
// oracle's records for filtered queries.
func TestPushdownFullProjection(t *testing.T) {
	cl := cloud.New(cloud.Config{Seed: 9})
	layer, err := New(Config{Cloud: cl, DisableQueryCache: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	oracle := genRepo(t, layer, rng, 40)
	ctx := context.Background()

	q := prov.Query{Type: prov.TypeFile, Projection: prov.ProjectFull}
	entries, err := core.CollectEntries(layer.Query(ctx, q))
	if err != nil {
		t.Fatal(err)
	}
	want := core.EvalQuery(oracle, q)
	if len(entries) != len(want) {
		t.Fatalf("entries = %d, oracle = %d", len(entries), len(want))
	}
	core.SortEntries(entries)
	for i, e := range entries {
		if e.Ref != want[i].Ref {
			t.Fatalf("entry %d ref %v != %v", i, e.Ref, want[i].Ref)
		}
		got := map[string]int{}
		for _, r := range e.Records {
			got[r.Attr+"="+r.Value.String()]++
		}
		expect := map[string]int{}
		for _, r := range want[i].Records {
			expect[r.Attr+"="+r.Value.String()]++
		}
		if !reflect.DeepEqual(got, expect) {
			t.Fatalf("entry %v records diverged:\n  native: %v\n  oracle: %v", e.Ref, got, expect)
		}
	}
}

// TestToolFilterFetchesNothingExtra pins the acceptance criterion: a
// tool-filtered refs-only query must not fetch any non-matching object's
// provenance — zero GetAttributes, zero Select; only the indexed Query
// calls appear on the meter.
func TestToolFilterFetchesNothingExtra(t *testing.T) {
	cl := cloud.New(cloud.Config{Seed: 11})
	layer, err := New(Config{Cloud: cl, DisableQueryCache: true})
	if err != nil {
		t.Fatal(err)
	}
	tool := prov.Ref{Object: "proc/1/blast", Version: 0}
	if err := layer.WriteItem(context.Background(), tool, []prov.Record{
		prov.NewString(tool, prov.AttrType, prov.TypeProcess),
		prov.NewString(tool, prov.AttrName, "blast"),
	}, "", "t"); err != nil {
		t.Fatal(err)
	}
	out := prov.Ref{Object: "/out", Version: 0}
	if err := layer.WriteItem(context.Background(), out, []prov.Record{
		prov.NewString(out, prov.AttrType, prov.TypeFile),
		prov.NewInput(out, tool),
	}, "", "t"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		noise := prov.Ref{Object: prov.ObjectID(fmt.Sprintf("/noise%02d", i)), Version: 0}
		if err := layer.WriteItem(context.Background(), noise, []prov.Record{
			prov.NewString(noise, prov.AttrType, prov.TypeFile),
		}, "", "t"); err != nil {
			t.Fatal(err)
		}
	}

	before := cl.Usage()
	refs, err := core.CollectRefs(layer.Query(context.Background(), prov.QOutputsOf("blast")))
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 1 || refs[0] != out {
		t.Fatalf("outputs = %v", refs)
	}
	after := cl.Usage()
	if gets := after.OpCount(billing.SimpleDB, "GetAttributes") - before.OpCount(billing.SimpleDB, "GetAttributes"); gets != 0 {
		t.Errorf("tool-filtered query issued %d GetAttributes; non-matching items were fetched", gets)
	}
	if selects := after.OpCount(billing.SimpleDB, "Select") - before.OpCount(billing.SimpleDB, "Select"); selects != 0 {
		t.Errorf("tool-filtered query issued %d Select calls (repository scan)", selects)
	}
	if ops := after.TotalOps() - before.TotalOps(); ops > 2 {
		t.Errorf("tool-filtered query cost %d ops; want the two indexed phases", ops)
	}
}
