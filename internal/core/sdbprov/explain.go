package sdbprov

import (
	"strings"

	"passcloud/internal/cloud/sdb"
	"passcloud/internal/core"
	"passcloud/internal/prov"
)

// This file implements Explain: the Table 3 cost model extended to
// arbitrary descriptors. Instead of closed-form formulas, the planner
// *simulates* the exact native pipeline (plan selection, phase order, chunk
// boundaries, page boundaries) against the client-side catalog of observed
// writes, so on a single-writer repository the predicted operation counts
// equal the metered ones. The simulation deliberately mirrors
// computeRefs/computeDescendants step for step — when one changes, change
// the other.

// Explain implements core.Querier.
func (l *Layer) Explain(q prov.Query) core.QueryPlan {
	// Predictions are exact only while every region mutation came from
	// this client: the catalog never sees other writers' items.
	p := core.QueryPlan{Arch: "simpledb", Exact: l.tracker.Foreign() == 0}
	if err := q.Validate(); err != nil {
		p.Strategy = "invalid"
		return p
	}
	if q.Cursor != "" {
		if core.ExplainCursor(&p, q, &l.pins, l.stampToken()) {
			return p
		}
		// Evicted pin at an unchanged generation: fall through and cost the
		// re-evaluation (free only when memoized or snapshot-warm).
	}
	stripped := q
	stripped.Limit = 0
	l.explainInto(&p, stripped)
	if q.Limit > 0 {
		p.AddStep("-", "paginate", 0, "first page evaluates fully, sorts and pins; later pages are free")
	}
	return p
}

// explainInto fills the plan for a non-paginated descriptor.
func (l *Layer) explainInto(p *core.QueryPlan, q prov.Query) {
	switch {
	case l.graphFallback(q):
		p.Strategy = "graph-walk"
		l.explainScan(p, "one query per item, evaluated on the materialized graph")
	case l.seedPlanOf(q) == seedAll && q.Direction == prov.TraverseNone:
		if q.Projection == prov.ProjectFull {
			p.Strategy = "scan"
			l.explainScan(p, "Q.1 shape: one query per item")
			return
		}
		p.Strategy = "item-listing"
		if l.memoizedRefs(q) {
			p.Cached = true
			p.AddStep("-", "memo", 0, "refs memoized for this generation")
			return
		}
		p.AddStep("SimpleDB", "Select", core.PlanPages(l.catalog.Items(), sdb.SelectPageLimit), "item names only")
	default:
		sim := &planSim{l: l, p: p}
		var refs []prov.Ref
		if l.memoizedRefs(q) {
			p.Strategy = "memo"
			p.Cached = true
			p.AddStep("-", "memo", 0, "refs memoized for this generation")
			sim.mute = true
			refs = sim.refs(q)
		} else {
			refs = sim.refs(q)
		}
		if q.Projection == prov.ProjectFull {
			if l.warmGraph() != nil {
				p.AddStep("-", "snapshot", 0, "records from the warm snapshot")
				return
			}
			p.Cached = false
			p.AddStep("SimpleDB", "GetAttributes", int64(len(refs)), "fetch matched items only")
			if gets := l.catalog.ItemGets(refs); gets > 0 {
				p.AddStep("S3", "GET", gets, "resolve overflow/spill values of matched items")
			}
		}
	}
}

// explainScan predicts the full-repository pass (or reports the warm
// snapshot).
func (l *Layer) explainScan(p *core.QueryPlan, note string) {
	if l.cache != nil && l.cache.Warm() {
		p.Cached = true
		p.AddStep("-", "snapshot", 0, "warm snapshot: zero cloud ops")
		return
	}
	items := l.catalog.Items()
	p.AddStep("SimpleDB", "Select", core.PlanPages(items, sdb.SelectPageLimit), "enumerate items")
	p.AddStep("SimpleDB", "GetAttributes", int64(items), note)
	if gets := l.catalog.DecodeGets(); gets > 0 {
		p.AddStep("S3", "GET", gets, "resolve overflow/spill values")
	}
}

// memoizedRefs reports whether q's reference set is memoized at the
// current generation.
func (l *Layer) memoizedRefs(q prov.Query) bool {
	return l.cache != nil && l.cache.HasRefs(refsMemoKey(q))
}

// planSim simulates the native refs pipeline against the planner catalog,
// accumulating predicted steps. mute suppresses step accounting (used when
// a memoized sub-result makes a phase free).
type planSim struct {
	l    *Layer
	p    *core.QueryPlan
	mute bool
}

func (s *planSim) step(service, op string, count int64, note string) {
	if !s.mute {
		s.p.AddStep(service, op, count, note)
	}
}

func (s *planSim) strategy(name string) {
	if !s.mute && s.p.Strategy == "" {
		s.p.Strategy = name
	}
}

func (s *planSim) pushdown(expr string) {
	if !s.mute {
		s.p.Pushdown = append(s.p.Pushdown, expr)
	}
}

// refs mirrors computeRefs.
func (s *planSim) refs(q prov.Query) []prov.Ref {
	if q.Direction == prov.TraverseDescendants {
		return s.descendants(q)
	}
	return s.seeds(q)
}

// seeds mirrors the seed strategies of computeRefs.
func (s *planSim) seeds(q prov.Query) []prov.Ref {
	cat := s.l.catalog
	switch s.l.seedPlanOf(q) {
	case seedTwoPhase:
		s.strategy("indexed-two-phase")
		s.pushdown(instancesExpr(q.Tool))
		instances := cat.MatchAttr(prov.AttrName, core.EscapeLiteral(q.Tool))
		s.step("SimpleDB", "Query", core.PlanPages(len(instances), sdb.QueryPageLimit), "phase 1: instances of the tool")
		filters := q.AttrFilters()
		names := make([]string, len(filters))
		for i, f := range filters {
			names[i] = f.Attr
		}
		deps := s.chunkedDependents(instances, "phase 2: dependents, filter attributes riding along", names)
		var out []prov.Ref
		for _, d := range deps {
			if !s.matchesStored(d, filters) {
				continue
			}
			if q.RefPrefix != "" && !strings.HasPrefix(d.String(), q.RefPrefix) {
				continue
			}
			out = append(out, d)
		}
		return out
	case seedPushdown:
		s.strategy("indexed-pushdown")
		s.pushdown(pushdownExpr(q.AttrFilters()))
		matches := cat.MatchAttrs(storedFilters(q.AttrFilters()))
		s.step("SimpleDB", "Query", core.PlanPages(len(matches), sdb.QueryPageLimit), "predicates evaluated inside the backend")
		return filterPrefix(matches, q.RefPrefix)
	case seedPinned:
		s.strategy("pinned-refs")
		filters := q.AttrFilters()
		seen := make(map[prov.Ref]bool, len(q.Refs))
		var pinned []prov.Ref
		for _, r := range q.Refs {
			if seen[r] {
				continue
			}
			seen[r] = true
			if q.RefPrefix != "" && !strings.HasPrefix(r.String(), q.RefPrefix) {
				continue
			}
			pinned = append(pinned, r)
		}
		if len(filters) == 0 {
			prov.SortRefs(pinned)
			return pinned
		}
		s.step("SimpleDB", "GetAttributes", int64(len(pinned)), "fetch pinned items to apply filters")
		if gets := cat.ItemGets(pinned); gets > 0 {
			s.step("S3", "GET", gets, "resolve overflow/spill values of pinned items")
		}
		var out []prov.Ref
		for _, r := range pinned {
			if s.matchesStored(r, filters) {
				out = append(out, r)
			}
		}
		prov.SortRefs(out)
		return out
	default: // seedListing, seedAll
		s.strategy("item-listing")
		s.step("SimpleDB", "Select", core.PlanPages(cat.Items(), sdb.SelectPageLimit), "enumerate item names")
		return filterPrefix(cat.AllRefs(), q.RefPrefix)
	}
}

// descendants mirrors computeDescendants.
func (s *planSim) descendants(q prov.Query) []prov.Ref {
	seedsQ := stripTraversal(q)

	found := make(map[prov.Ref]bool)
	expanded := make(map[prov.Ref]bool)
	var out []prov.Ref
	var frontier []prov.Ref
	level := 0
	var isSeed func(prov.Ref) bool

	if s.l.seedPlanOf(seedsQ) == seedListing {
		s.strategy("indexed-prefix")
		s.pushdown(startsWithExpr(q.RefPrefix))
		level1 := s.l.catalog.DependentsOfPrefix(q.RefPrefix)
		s.step("SimpleDB", "Query", core.PlanPages(len(level1), sdb.QueryPageLimit), "starts-with covers every matching version at once")
		prefix := q.RefPrefix
		isSeed = func(r prov.Ref) bool { return strings.HasPrefix(r.String(), prefix) }
		for _, n := range level1 {
			if !found[n] && (q.IncludeSeeds || !isSeed(n)) {
				found[n] = true
				out = append(out, n)
			}
			if !expanded[n] {
				expanded[n] = true
				frontier = append(frontier, n)
			}
		}
		level = 1
	} else {
		var seeds []prov.Ref
		if !s.mute && s.l.memoizedRefs(seedsQ) {
			s.step("-", "memo", 0, "seed query memoized for this generation")
			prev := s.mute
			s.mute = true
			seeds = s.seeds(seedsQ)
			s.mute = prev
		} else {
			seeds = s.seeds(seedsQ)
		}
		s.strategy("indexed-bfs")
		seedSet := make(map[prov.Ref]bool, len(seeds))
		for _, sr := range seeds {
			seedSet[sr] = true
			expanded[sr] = true
		}
		isSeed = func(r prov.Ref) bool { return seedSet[r] }
		frontier = seeds
	}

	for ; len(frontier) > 0 && (q.Depth == 0 || level < q.Depth); level++ {
		next := s.chunkedDependents(frontier, "BFS level: chunked dependency queries", nil)
		frontier = frontier[:0]
		for _, n := range next {
			if !found[n] && (q.IncludeSeeds || !isSeed(n)) {
				found[n] = true
				out = append(out, n)
			}
			if !expanded[n] {
				expanded[n] = true
				frontier = append(frontier, n)
			}
		}
	}
	return out
}

// chunkedDependents mirrors dependentsOf: ⌈n/chunk⌉ queries, each paging on
// its own match count, results deduplicated in chunk order. When attrNames
// ride along (QueryWithAttributes), decoding a pointer-encoded requested
// value costs an S3 GET per chunk response it appears in — exactly as the
// runtime's per-chunk decode does, including re-decoding an item matched
// by several chunks.
func (s *planSim) chunkedDependents(refs []prov.Ref, note string, attrNames []string) []prov.Ref {
	chunkSize := s.l.cfg.QueryChunk
	op := "Query"
	if len(attrNames) > 0 {
		op = "QueryWithAttributes"
	}
	var ops, gets int64
	seen := make(map[prov.Ref]bool)
	var out []prov.Ref
	for start := 0; start < len(refs); start += chunkSize {
		end := min(start+chunkSize, len(refs))
		matches := s.l.catalog.Dependents(refs[start:end])
		ops += core.PlanPages(len(matches), sdb.QueryPageLimit)
		gets += s.l.catalog.AttrGets(matches, attrNames)
		for _, m := range matches {
			if !seen[m] {
				seen[m] = true
				out = append(out, m)
			}
		}
	}
	if len(refs) > 0 {
		s.step("SimpleDB", op, ops, note)
		if gets > 0 {
			s.step("S3", "GET", gets, "resolve pointer-encoded riding attribute values")
		}
	}
	return out
}

// matchesStored applies attribute filters against the catalog's stored-form
// records, mirroring the runtime's decoded comparison (stored and decoded
// equality agree because the escaping is injective).
func (s *planSim) matchesStored(ref prov.Ref, filters []prov.AttrFilter) bool {
	if len(filters) == 0 {
		return true
	}
	records := s.l.catalog.Records(ref)
	for _, f := range filters {
		if !core.MatchRecords(records, f.Attr, core.EscapeLiteral(f.Value)) {
			return false
		}
	}
	return true
}

// storedFilters converts decoded filter values to their stored forms.
func storedFilters(filters []prov.AttrFilter) []prov.AttrFilter {
	out := make([]prov.AttrFilter, len(filters))
	for i, f := range filters {
		out[i] = prov.AttrFilter{Attr: f.Attr, Value: core.EscapeLiteral(f.Value)}
	}
	return out
}

// PlanQueryRefs implements core.RefPlanner: the reference set Query(q)'s
// native plan would return, predicted from the client-side planner catalog
// without cloud traffic. ok is false for shapes with no native indexed
// plan (the full-graph fallbacks) — for those the shard router keeps its
// union-graph path. Predictions are best-effort when foreign writers have
// touched the region; Explain's Exact flag carries that caveat.
func (l *Layer) PlanQueryRefs(q prov.Query) ([]prov.Ref, bool) {
	if err := q.Validate(); err != nil {
		return nil, false
	}
	q.Limit, q.Cursor = 0, ""
	if q.Direction == prov.TraverseAncestors {
		// The one supported ancestor shape is the router's virtual
		// inputs-of-refs round: the raw union of the pinned refs' direct
		// inputs, read straight off the catalog's inline records. The
		// layer itself answers ancestor queries from the materialized
		// graph, so this descriptor is never executed here.
		if len(q.Refs) == 0 || q.Depth != 1 || !q.IncludeSeeds || q.Tool != "" ||
			q.RefPrefix != "" || len(q.AttrFilters()) > 0 || q.Projection != prov.ProjectRefs {
			return nil, false
		}
		seen := make(map[prov.Ref]bool)
		var out []prov.Ref
		for _, r := range q.Refs {
			for _, rec := range l.catalog.Records(r) {
				if rec.Attr == prov.AttrInput && rec.Value.Kind == prov.KindRef && !seen[rec.Value.Ref] {
					seen[rec.Value.Ref] = true
					out = append(out, rec.Value.Ref)
				}
			}
		}
		prov.SortRefs(out)
		return out, true
	}
	if l.graphFallback(q) {
		return nil, false
	}
	sim := &planSim{l: l, p: &core.QueryPlan{}, mute: true}
	return sim.refs(q), true
}
