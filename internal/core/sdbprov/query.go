package sdbprov

import (
	"context"
	"fmt"
	"iter"
	"strings"

	"passcloud/internal/cloud/sdb"
	"passcloud/internal/core"
	"passcloud/internal/core/qcache"
	"passcloud/internal/prov"
)

// This file is the layer's composable query engine: one prov.Query
// descriptor in, the cheapest 2009 SimpleDB plan out. The planner picks
// between:
//
//   - indexed-two-phase: the paper's Q.2 shape — one Query for the tool's
//     instances, then chunked QueryWithAttributes for their dependents,
//     with every client-side attribute filter riding the same response;
//   - indexed-pushdown: attribute predicates compiled into one bracket
//     expression joined with `intersection`, evaluated entirely inside
//     SimpleDB — non-matching items' provenance is never fetched;
//   - indexed-prefix: descendants of "every version with this ref prefix"
//     as a single starts-with query (the Dependents idiom);
//   - item-listing: refs-only enumeration from Select itemName();
//   - scan / graph-walk: the Q.1 repository pass (or the warm snapshot),
//     with the shared in-memory evaluator (core.EvalQuery) as the fallback
//     for descriptors SimpleDB cannot push down.
//
// Pushdown honesty: predicates compare against the *stored* encoding
// (core.EscapeLiteral), because that is what SimpleDB indexed; the shared
// evaluator compares decoded records. Property tests drive randomized
// descriptors through both and any disagreement is a bug here. Values too
// large to live inline (pointer-encoded, > 1 KB) cannot be matched by the
// index at all, so such filters fall back to the graph plan. Records
// spilled past the 256-attribute item limit are invisible to the index —
// the architecture's documented blind spot; scan-backed plans see them.
//
// Results are memoized by the descriptor's canonical key (prov.Query.Key)
// in the layer's generation-stamped cache, and paginated descriptors pin
// their evaluation to the snapshot generation of the first page
// (core.RunPaged), so page sequences stay consistent across concurrent
// writes.

// seedPlan classifies how a descriptor's seed set is computed natively.
type seedPlan int

const (
	// seedAll: no filters — every item.
	seedAll seedPlan = iota
	// seedTwoPhase: Tool filter — instances, then dependents.
	seedTwoPhase
	// seedPushdown: attribute predicates in one backend expression.
	seedPushdown
	// seedListing: RefPrefix only — enumerate item names, filter client-side.
	seedListing
	// seedPinned: explicit Refs.
	seedPinned
	// seedGraph: no native plan; materialize the graph and evaluate there.
	seedGraph
)

// pushable reports whether a filter value's stored form stays inline —
// values over the overflow threshold are stored as S3 pointers, which the
// SimpleDB index cannot match by equality.
func pushable(v string) bool { return len(v) <= core.OverflowThreshold }

// seedPlanOf picks the native seed strategy for q's filter section.
func (l *Layer) seedPlanOf(q prov.Query) seedPlan {
	filters := q.AttrFilters()
	switch {
	case q.Tool != "":
		if len(q.Refs) > 0 || !pushable(q.Tool) {
			return seedGraph
		}
		for _, f := range filters {
			if !pushable(f.Value) {
				return seedGraph
			}
		}
		return seedTwoPhase
	case len(q.Refs) > 0:
		return seedPinned
	case len(filters) > 0:
		for _, f := range filters {
			if !pushable(f.Value) {
				return seedGraph
			}
		}
		return seedPushdown
	case q.RefPrefix != "":
		return seedListing
	default:
		return seedAll
	}
}

// graphFallback reports whether q is answered from the materialized graph:
// ancestor walks (the snapshot is the cheapest recursive-query substrate),
// unpushable filters, and descendants-of-everything (one scan beats
// chunk-querying the whole repository).
func (l *Layer) graphFallback(q prov.Query) bool {
	sp := l.seedPlanOf(q)
	return q.Direction == prov.TraverseAncestors ||
		sp == seedGraph ||
		(q.Direction == prov.TraverseDescendants && sp == seedAll)
}

// Query implements core.Querier. Entries stream in backend order; a
// paginated descriptor (Limit/Cursor) returns one ref-sorted page whose
// last entry carries the resume cursor.
func (l *Layer) Query(ctx context.Context, q prov.Query) iter.Seq2[core.Entry, error] {
	return func(yield func(core.Entry, error) bool) {
		if err := q.Validate(); err != nil {
			yield(core.Entry{}, err)
			return
		}
		if q.Limit > 0 || q.Cursor != "" {
			core.RunPaged(ctx, q, l.stampToken(), &l.pins, l.evalAll, yield)
			return
		}
		l.runQuery(ctx, q, yield)
	}
}

// stampToken renders the repository generation cursors bind to.
func (l *Layer) stampToken() string {
	st := l.stamp()
	return fmt.Sprintf("%d.%d", st.Gen, st.Epoch)
}

// StampToken implements core.Stamped: the repository generation this
// layer's cursors bind to, exported for composing stores (the shard
// router) that mint composite stamps.
func (l *Layer) StampToken() string { return l.stampToken() }

// evalAll materializes a full (non-paginated) evaluation for the paging
// layer. Memoized refs make a re-evaluation at an unchanged generation
// free.
func (l *Layer) evalAll(ctx context.Context, q prov.Query) ([]core.Entry, error) {
	var out []core.Entry
	var ferr error
	l.runQuery(ctx, q, func(e core.Entry, err error) bool {
		if err != nil {
			ferr = err
			return false
		}
		out = append(out, e)
		return true
	})
	return out, ferr
}

// runQuery executes one non-paginated descriptor.
func (l *Layer) runQuery(ctx context.Context, q prov.Query, yield func(core.Entry, error) bool) {
	switch {
	case l.graphFallback(q):
		g, err := l.ProvenanceGraph(ctx)
		if err != nil {
			yield(core.Entry{}, err)
			return
		}
		for _, e := range core.EvalQuery(g, q) {
			if !yield(e, nil) {
				return
			}
		}
	case l.seedPlanOf(q) == seedAll && q.Direction == prov.TraverseNone && q.Projection == prov.ProjectFull:
		// Q.1: stream the one-query-per-item scan (or the warm snapshot).
		for entry, err := range l.AllProvenanceSeq(ctx) {
			if err != nil {
				yield(core.Entry{}, err)
				return
			}
			if !yield(entry, nil) {
				return
			}
		}
	default:
		refs, err := l.refsFor(ctx, q)
		if err != nil {
			yield(core.Entry{}, err)
			return
		}
		if q.Projection == prov.ProjectRefs {
			for _, r := range refs {
				if !yield(core.Entry{Ref: r}, nil) {
					return
				}
			}
			return
		}
		// Full projection: fetch the matched items only — never the rest
		// of the repository (the pushdown dividend).
		g := l.warmGraph()
		for _, r := range refs {
			var records []prov.Record
			if g != nil {
				records = g.Records(r)
			} else {
				if err := ctx.Err(); err != nil {
					yield(core.Entry{}, err)
					return
				}
				var ok bool
				records, _, ok, err = l.FetchItem(ctx, r)
				if err != nil {
					yield(core.Entry{}, err)
					return
				}
				_ = ok // a vanished item yields its ref with no records
			}
			if !yield(core.Entry{Ref: r, Records: records}, nil) {
				return
			}
		}
	}
}

// warmGraph returns the resident snapshot when valid, else nil.
func (l *Layer) warmGraph() *prov.Graph {
	if l.cache == nil {
		return nil
	}
	return l.cache.PeekGraph()
}

// refsFor computes q's matched references, memoized under the descriptor's
// canonical key for the current write generation.
func (l *Layer) refsFor(ctx context.Context, q prov.Query) ([]prov.Ref, error) {
	if l.cache == nil {
		return l.computeRefs(ctx, q)
	}
	refs, err := l.cache.Refs(ctx, refsMemoKey(q), func(ctx context.Context) ([]prov.Ref, error) {
		return l.computeRefs(ctx, q)
	})
	return qcache.CopyRefs(refs), err
}

// refsMemoKey is the cache key of a descriptor's reference set.
func refsMemoKey(q prov.Query) string { return "qv2\x00" + q.RefsKey() }

// computeRefs is the uncached native pipeline.
func (l *Layer) computeRefs(ctx context.Context, q prov.Query) ([]prov.Ref, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if q.Direction == prov.TraverseDescendants {
		return l.computeDescendants(ctx, q)
	}
	switch l.seedPlanOf(q) {
	case seedTwoPhase:
		return l.computeTwoPhase(ctx, q)
	case seedPushdown:
		refs, err := l.queryRefs(ctx, pushdownExpr(q.AttrFilters()))
		if err != nil {
			return nil, err
		}
		return filterPrefix(refs, q.RefPrefix), nil
	case seedPinned:
		return l.computePinned(ctx, q)
	default: // seedListing, seedAll
		refs, err := l.listRefs(ctx)
		if err != nil {
			return nil, err
		}
		return filterPrefix(refs, q.RefPrefix), nil
	}
}

// computeTwoPhase is the paper's Q.2 plan generalized: phase one retrieves
// the tool's instances by indexed name lookup; phase two retrieves their
// dependents with every requested filter attribute riding the same chunked
// QueryWithAttributes responses — no per-dependent follow-up calls.
func (l *Layer) computeTwoPhase(ctx context.Context, q prov.Query) ([]prov.Ref, error) {
	instances, err := l.instancesOf(ctx, q.Tool)
	if err != nil {
		return nil, err
	}
	filters := q.AttrFilters()
	names := make([]string, len(filters))
	for i, f := range filters {
		names[i] = f.Attr
	}
	deps, err := l.dependentsOf(ctx, instances, names)
	if err != nil {
		return nil, err
	}
	var out []prov.Ref
	for _, d := range deps {
		if !d.matches(filters) {
			continue
		}
		if q.RefPrefix != "" && !strings.HasPrefix(d.ref.String(), q.RefPrefix) {
			continue
		}
		out = append(out, d.ref)
	}
	return out, nil
}

// computePinned resolves an explicit Refs seed set: free for refs-only
// descriptors, one FetchItem per ref when attribute filters must be
// checked.
func (l *Layer) computePinned(ctx context.Context, q prov.Query) ([]prov.Ref, error) {
	filters := q.AttrFilters()
	seen := make(map[prov.Ref]bool, len(q.Refs))
	var out []prov.Ref
	for _, r := range q.Refs {
		if seen[r] {
			continue
		}
		seen[r] = true
		if q.RefPrefix != "" && !strings.HasPrefix(r.String(), q.RefPrefix) {
			continue
		}
		if len(filters) > 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			records, _, ok, err := l.FetchItem(ctx, r)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			match := true
			for _, f := range filters {
				if !core.MatchRecords(records, f.Attr, f.Value) {
					match = false
					break
				}
			}
			if !match {
				continue
			}
		}
		out = append(out, r)
	}
	prov.SortRefs(out)
	return out, nil
}

// computeDescendants runs the traversal: seeds from the filter section,
// then chunked dependency queries per BFS level ("it has to retrieve each
// item ... then lookup further ancestors"). Prefix-only seeds skip seed
// materialization entirely — the whole first level is one starts-with
// query over every version at once.
func (l *Layer) computeDescendants(ctx context.Context, q prov.Query) ([]prov.Ref, error) {
	seedsQ := stripTraversal(q)

	found := make(map[prov.Ref]bool)
	expanded := make(map[prov.Ref]bool)
	var out []prov.Ref
	var frontier []prov.Ref
	level := 0
	var isSeed func(prov.Ref) bool

	if l.seedPlanOf(seedsQ) == seedListing {
		expr := startsWithExpr(q.RefPrefix)
		level1, err := l.queryRefs(ctx, expr)
		if err != nil {
			return nil, err
		}
		prefix := q.RefPrefix
		isSeed = func(r prov.Ref) bool { return strings.HasPrefix(r.String(), prefix) }
		for _, n := range level1 {
			if !found[n] && (q.IncludeSeeds || !isSeed(n)) {
				found[n] = true
				out = append(out, n)
			}
			if !expanded[n] {
				expanded[n] = true
				frontier = append(frontier, n)
			}
		}
		level = 1
	} else {
		seeds, err := l.refsFor(ctx, seedsQ) // memoized sub-query (Q.2 inside Q.3)
		if err != nil {
			return nil, err
		}
		seedSet := make(map[prov.Ref]bool, len(seeds))
		for _, s := range seeds {
			seedSet[s] = true
			expanded[s] = true
		}
		isSeed = func(r prov.Ref) bool { return seedSet[r] }
		frontier = seeds
	}

	for ; len(frontier) > 0 && (q.Depth == 0 || level < q.Depth); level++ {
		next, err := l.dependentsOf(ctx, frontier, nil)
		if err != nil {
			return nil, err
		}
		frontier = frontier[:0]
		for _, n := range next {
			if !found[n.ref] && (q.IncludeSeeds || !isSeed(n.ref)) {
				found[n.ref] = true
				out = append(out, n.ref)
			}
			if !expanded[n.ref] {
				expanded[n.ref] = true
				frontier = append(frontier, n.ref)
			}
		}
	}
	return out, nil
}

// stripTraversal reduces q to its seed descriptor.
func stripTraversal(q prov.Query) prov.Query {
	q.Direction, q.Depth, q.IncludeSeeds = prov.TraverseNone, 0, false
	q.Projection = prov.ProjectRefs
	q.Limit, q.Cursor = 0, ""
	return q
}

// --- expression builders -----------------------------------------------------

// instancesExpr matches items whose name attribute is tool. The index holds
// stored (escaped) forms, so the literal is escaped exactly like the write
// path escaped it — a tool name needing escape would otherwise never match.
func instancesExpr(tool string) string {
	return "['" + escapeQuery(prov.AttrName) + "' = " + sdb.QuoteString(core.EscapeLiteral(tool)) + "]"
}

// pushdownExpr compiles attribute equality filters into one expression:
// per-attribute predicates joined with `intersection`, values in stored
// form.
func pushdownExpr(filters []prov.AttrFilter) string {
	var b strings.Builder
	for i, f := range filters {
		if i > 0 {
			b.WriteString(" intersection ")
		}
		b.WriteString("['" + escapeQuery(f.Attr) + "' = " + sdb.QuoteString(core.EscapeLiteral(f.Value)) + "]")
	}
	return b.String()
}

// startsWithExpr matches items listing any input with the given ref-string
// prefix — every version of an object at once when the prefix is "obj:".
func startsWithExpr(prefix string) string {
	return "['" + escapeQuery(prov.AttrInput) + "' starts-with " + sdb.QuoteString(prefix) + "]"
}

// filterPrefix keeps refs whose canonical form has the prefix.
func filterPrefix(refs []prov.Ref, prefix string) []prov.Ref {
	if prefix == "" {
		return refs
	}
	out := refs[:0]
	for _, r := range refs {
		if strings.HasPrefix(r.String(), prefix) {
			out = append(out, r)
		}
	}
	return out
}

// --- backend primitives ------------------------------------------------------

// instancesOf finds all object versions whose name attribute is tool
// (phase one of Q.2: "retrieve all objects that correspond to instances of
// blast").
func (l *Layer) instancesOf(ctx context.Context, tool string) ([]prov.Ref, error) {
	return l.queryRefs(ctx, instancesExpr(tool))
}

// queryRefs runs one Query expression to completion, parsing item names.
func (l *Layer) queryRefs(ctx context.Context, expr string) ([]prov.Ref, error) {
	var out []prov.Ref
	token := ""
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := l.cfg.Cloud.SDB.Query(l.cfg.Domain, expr, 0, token)
		if err != nil {
			return nil, err
		}
		for _, item := range res.ItemNames {
			ref, err := prov.ParseItemName(item)
			if err != nil {
				continue
			}
			out = append(out, ref)
		}
		if res.NextToken == "" {
			return out, nil
		}
		token = res.NextToken
	}
}

// listRefs enumerates every item's ref from Select itemName() — names
// only, no attribute fetch.
func (l *Layer) listRefs(ctx context.Context) ([]prov.Ref, error) {
	var out []prov.Ref
	token := ""
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := l.cfg.Cloud.SDB.Select("select itemName() from "+l.cfg.Domain, token)
		if err != nil {
			return nil, err
		}
		for _, item := range res.Items {
			ref, err := prov.ParseItemName(item.Name)
			if err != nil {
				continue // foreign item in a shared domain
			}
			out = append(out, ref)
		}
		if res.NextToken == "" {
			return out, nil
		}
		token = res.NextToken
	}
}

// refAttrs pairs a matched item with the decoded values of the attributes
// that rode the query response.
type refAttrs struct {
	ref   prov.Ref
	attrs map[string][]string
}

// matches applies decoded attribute equality filters: every filter must be
// satisfied by some value (the multi-valued-attribute rule).
func (ra refAttrs) matches(filters []prov.AttrFilter) bool {
	for _, f := range filters {
		ok := false
		for _, v := range ra.attrs[f.Attr] {
			if v == f.Value {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// queryRefAttrs runs one QueryWithAttributes expression to completion,
// returning each matching item with the requested attributes decoded from
// the same response — no follow-up GetAttributes per item.
func (l *Layer) queryRefAttrs(ctx context.Context, expr string, attrNames []string) ([]refAttrs, error) {
	want := make(map[string]bool, len(attrNames))
	for _, n := range attrNames {
		want[n] = true
	}
	var out []refAttrs
	token := ""
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := l.cfg.Cloud.SDB.QueryWithAttributes(l.cfg.Domain, expr, attrNames, 0, token)
		if err != nil {
			return nil, err
		}
		for _, item := range res.Items {
			ref, err := prov.ParseItemName(item.Name)
			if err != nil {
				continue
			}
			ra := refAttrs{ref: ref, attrs: make(map[string][]string)}
			for _, a := range item.Attrs {
				if !want[a.Name] {
					continue
				}
				rec, err := l.decodeStored(ctx, ref, a.Name, a.Value)
				if err != nil {
					return nil, err
				}
				ra.attrs[a.Name] = append(ra.attrs[a.Name], rec.Value.String())
			}
			out = append(out, ra)
		}
		if res.NextToken == "" {
			return out, nil
		}
		token = res.NextToken
	}
}

// inputChunkExpr renders one chunk's OR expression over input values.
func inputChunkExpr(refs []prov.Ref) string {
	var b strings.Builder
	b.WriteString("[")
	for i, r := range refs {
		if i > 0 {
			b.WriteString(" or ")
		}
		b.WriteString("'" + escapeQuery(prov.AttrInput) + "' = " + sdb.QuoteString(r.String()))
	}
	b.WriteString("]")
	return b.String()
}

// dependentsOf finds items listing any of refs as an input, chunking the
// OR expression ("execute a second QueryWithAttributes to retrieve all
// objects that have as ancestor, objects in the result of the first
// query"). When attrNames is non-empty, each item's requested attributes
// ride the same query response — the aggregation that removes the
// one-GetAttributes-per-dependent N+1 from Q.2. Chunks run concurrently
// under the QueryConcurrency bound; results merge in chunk order,
// deduplicated, so the output is identical to the sequential scan's.
func (l *Layer) dependentsOf(ctx context.Context, refs []prov.Ref, attrNames []string) ([]refAttrs, error) {
	chunk := l.cfg.QueryChunk
	nchunks := (len(refs) + chunk - 1) / chunk
	if nchunks == 0 {
		return nil, nil
	}

	runChunk := func(part []prov.Ref) ([]refAttrs, error) {
		expr := inputChunkExpr(part)
		if len(attrNames) > 0 {
			return l.queryRefAttrs(ctx, expr, attrNames)
		}
		found, err := l.queryRefs(ctx, expr)
		if err != nil {
			return nil, err
		}
		out := make([]refAttrs, len(found))
		for i, f := range found {
			out[i] = refAttrs{ref: f}
		}
		return out, nil
	}

	results := make([][]refAttrs, nchunks)
	err := core.RunLimited(ctx, nchunks, l.cfg.QueryConcurrency, func(ci int) error {
		start := ci * chunk
		end := min(start+chunk, len(refs))
		found, err := runChunk(refs[start:end])
		if err != nil {
			return err
		}
		results[ci] = found
		return nil
	})
	if err != nil {
		return nil, err
	}

	seen := make(map[prov.Ref]bool)
	var out []refAttrs
	for _, part := range results {
		for _, ra := range part {
			if !seen[ra.ref] {
				seen[ra.ref] = true
				out = append(out, ra)
			}
		}
	}
	return out, nil
}

// --- deprecated fixed verbs --------------------------------------------------

// OutputsOf implements Q.2: instances of tool, then the files depending on
// them — the QOutputsOf descriptor through the native engine, with the
// type filter riding phase two's QueryWithAttributes.
//
// Deprecated: build prov.QOutputsOf and use Query.
func (l *Layer) OutputsOf(ctx context.Context, tool string) ([]prov.Ref, error) {
	return core.OutputsOf(ctx, l, tool)
}

// DescendantsOfOutputs implements Q.3 by iterated dependency queries:
// "SimpleDB ... does not support recursive queries or stored procedures.
// Hence, for ancestry queries, it has to retrieve each item ... then lookup
// further ancestors."
//
// Deprecated: build prov.QDescendantsOfOutputs and use Query.
func (l *Layer) DescendantsOfOutputs(ctx context.Context, tool string) ([]prov.Ref, error) {
	return core.DescendantsOfOutputs(ctx, l, tool)
}

// Dependents finds items listing any version of object among their inputs,
// with a single indexed prefix query: input values are "object:version", so
// ['input' starts-with 'object:'] covers every version at once.
//
// Deprecated: build prov.QDependents and use Query.
func (l *Layer) Dependents(ctx context.Context, object prov.ObjectID) ([]prov.Ref, error) {
	return core.Dependents(ctx, l, object)
}

// escapeQuery escapes single quotes inside a bracket-language attribute
// name, which is written between single quotes ('attr'): the 2009 query
// grammar escapes a quote by doubling it, exactly like string literals.
// Attribute names today come from our own fixed vocabulary, but provenance
// attributes are user-extensible in PASS — a quote must not be able to
// terminate the name early and smuggle operators into the expression.
func escapeQuery(s string) string { return strings.ReplaceAll(s, "'", "''") }

var _ core.Querier = (*Layer)(nil)
