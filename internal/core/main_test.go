package core

import (
	"testing"

	"passcloud/internal/leakcheck"
)

// TestMain fails the binary if the fan-out scan workers (fanout.go)
// leave goroutines behind after the tests pass.
func TestMain(m *testing.M) { leakcheck.Main(m) }
