package qcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"passcloud/internal/cloud"
	"passcloud/internal/prov"
)

func genStamp(gen *Generation) StampFunc {
	return func() Stamp { return Stamp{Gen: gen.Load()} }
}

func testGraph(n int) *prov.Graph {
	g := prov.NewGraph()
	for i := 0; i < n; i++ {
		ref := prov.Ref{Object: prov.ObjectID(fmt.Sprintf("/o%d", i))}
		g.Add(prov.NewString(ref, prov.AttrType, prov.TypeFile))
	}
	return g
}

func TestGraphHitWhileGenerationUnchanged(t *testing.T) {
	var gen Generation
	c := New(genStamp(&gen))
	builds := 0
	build := func(context.Context) (*prov.Graph, error) {
		builds++
		return testGraph(builds), nil
	}
	ctx := context.Background()

	g1, err := c.Graph(ctx, build)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := c.Graph(ctx, build)
	if err != nil {
		t.Fatal(err)
	}
	if builds != 1 || g1 != g2 {
		t.Fatalf("builds = %d, snapshots identical = %v; want one shared build", builds, g1 == g2)
	}
	st := c.Stats()
	if st.GraphHits != 1 || st.GraphMisses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWriteInvalidatesSnapshotAndMemo(t *testing.T) {
	var gen Generation
	c := New(genStamp(&gen))
	ctx := context.Background()
	builds := 0
	build := func(context.Context) (*prov.Graph, error) {
		builds++
		return testGraph(builds), nil
	}
	computes := 0
	compute := func(context.Context) ([]prov.Ref, error) {
		computes++
		return []prov.Ref{{Object: prov.ObjectID(fmt.Sprintf("/r%d", computes))}}, nil
	}

	if _, err := c.Graph(ctx, build); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Refs(ctx, "q", compute); err != nil {
		t.Fatal(err)
	}

	gen.Bump() // a write lands

	g, err := c.Graph(ctx, build)
	if err != nil {
		t.Fatal(err)
	}
	if builds != 2 {
		t.Fatalf("builds after bump = %d, want rebuild", builds)
	}
	if g.Len() != 2 {
		t.Fatalf("served stale snapshot after write: len = %d", g.Len())
	}
	refs, err := c.Refs(ctx, "q", compute)
	if err != nil {
		t.Fatal(err)
	}
	if computes != 2 || refs[0].Object != "/r2" {
		t.Fatalf("memo survived write: computes = %d, refs = %v", computes, refs)
	}
}

func TestConcurrentBuildsCoalesce(t *testing.T) {
	var gen Generation
	c := New(genStamp(&gen))
	var builds atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	build := func(context.Context) (*prov.Graph, error) {
		builds.Add(1)
		close(started)
		<-release
		return testGraph(3), nil
	}
	ctx := context.Background()

	const callers = 8
	var wg sync.WaitGroup
	graphs := make([]*prov.Graph, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			graphs[i], errs[i] = c.Graph(ctx, build)
		}()
	}
	<-started
	// All callers are now either the leader or waiting on it.
	close(release)
	wg.Wait()

	if n := builds.Load(); n != 1 {
		t.Fatalf("builds = %d, want 1 (singleflight)", n)
	}
	for i := range graphs {
		if errs[i] != nil || graphs[i] != graphs[0] {
			t.Fatalf("caller %d: graph %p err %v, want shared snapshot", i, graphs[i], errs[i])
		}
	}
}

func TestWaiterDetachesOnOwnCancellation(t *testing.T) {
	var gen Generation
	c := New(genStamp(&gen))
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		_, _ = c.Graph(context.Background(), func(context.Context) (*prov.Graph, error) {
			close(started)
			<-release
			return testGraph(1), nil
		})
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Graph(ctx, func(context.Context) (*prov.Graph, error) {
			t.Error("waiter must not start its own build while one is in flight")
			return nil, nil
		})
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter did not detach on cancellation")
	}
	close(release)
}

func TestLeaderCancellationPromotesWaiter(t *testing.T) {
	var gen Generation
	c := New(genStamp(&gen))
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	started := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		_, err := c.Graph(leaderCtx, func(ctx context.Context) (*prov.Graph, error) {
			close(started)
			<-ctx.Done()
			return nil, ctx.Err()
		})
		leaderDone <- err
	}()
	<-started

	waiterDone := make(chan error, 1)
	go func() {
		_, err := c.Graph(context.Background(), func(context.Context) (*prov.Graph, error) {
			return testGraph(1), nil
		})
		waiterDone <- err
	}()
	// Give the waiter a moment to join the in-flight call, then kill the
	// leader: the waiter must take over and succeed.
	time.Sleep(10 * time.Millisecond)
	cancelLeader()
	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v", err)
	}
	select {
	case err := <-waiterDone:
		if err != nil {
			t.Fatalf("promoted waiter err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter was not promoted after leader cancellation")
	}
}

// TestStaleLeaderDoesNotClobberNewerSnapshot: a build that straddles a
// write finishes with a stale stamp and must not overwrite a snapshot a
// later leader installed for the current stamp.
func TestStaleLeaderDoesNotClobberNewerSnapshot(t *testing.T) {
	var gen Generation
	c := New(genStamp(&gen))
	ctx := context.Background()

	started := make(chan struct{})
	release := make(chan struct{})
	slowDone := make(chan struct{})
	go func() { // leader A: starts at gen 0, finishes after the write
		defer close(slowDone)
		_, _ = c.Graph(ctx, func(context.Context) (*prov.Graph, error) {
			close(started)
			<-release
			return testGraph(1), nil // the stale (pre-write) view
		})
	}()
	<-started
	gen.Bump() // a write lands mid-build

	// Leader B: builds and installs the post-write snapshot.
	fresh, err := c.Graph(ctx, func(context.Context) (*prov.Graph, error) {
		return testGraph(2), nil
	})
	if err != nil || fresh.Len() != 2 {
		t.Fatalf("fresh build: %v len %d", err, fresh.Len())
	}
	close(release)
	<-slowDone

	// The current-stamp snapshot must still be B's, at zero extra builds.
	g, err := c.Graph(ctx, func(context.Context) (*prov.Graph, error) {
		t.Error("rebuild triggered; stale leader evicted the fresh snapshot")
		return testGraph(3), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if g != fresh {
		t.Fatalf("snapshot replaced: len %d, want the fresh one", g.Len())
	}
}

func TestBuildErrorIsNotCached(t *testing.T) {
	var gen Generation
	c := New(genStamp(&gen))
	ctx := context.Background()
	boom := errors.New("boom")
	calls := 0
	if _, err := c.Graph(ctx, func(context.Context) (*prov.Graph, error) {
		calls++
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, err := c.Graph(ctx, func(context.Context) (*prov.Graph, error) {
		calls++
		return testGraph(1), nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d; an error must not be cached", calls)
	}
}

func TestEpochExpiresSnapshotOnEventuallyConsistentRegion(t *testing.T) {
	cl := cloud.New(cloud.Config{Seed: 1, MaxDelay: 10 * time.Second})
	var gen Generation
	c := New(CloudStamp(&gen, cl))
	ctx := context.Background()
	builds := 0
	build := func(context.Context) (*prov.Graph, error) {
		builds++
		return testGraph(builds), nil
	}
	if _, err := c.Graph(ctx, build); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Graph(ctx, build); err != nil || builds != 1 {
		t.Fatalf("builds = %d, err = %v; want hit within the horizon", builds, err)
	}
	cl.Settle() // time passes the propagation horizon: replicas converged
	if _, err := c.Graph(ctx, build); err != nil {
		t.Fatal(err)
	}
	if builds != 2 {
		t.Fatalf("builds = %d; a settled region must expire the snapshot", builds)
	}
}

// TestForeignWriteInvalidates covers the shared-region case: another
// client's write — which never bumps this store's Generation — must still
// expire the snapshot, via the region's metered mutation count.
func TestForeignWriteInvalidates(t *testing.T) {
	cl := cloud.New(cloud.Config{Seed: 1})
	if err := cl.S3.CreateBucket("pass"); err != nil {
		t.Fatal(err)
	}
	var gen Generation
	c := New(CloudStamp(&gen, cl))
	ctx := context.Background()
	builds := 0
	build := func(context.Context) (*prov.Graph, error) {
		builds++
		return testGraph(builds), nil
	}
	if _, err := c.Graph(ctx, build); err != nil {
		t.Fatal(err)
	}
	// A neighbor client writes directly to the region.
	if err := cl.S3.Put("pass", "data/foreign", []byte("x"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Graph(ctx, build); err != nil {
		t.Fatal(err)
	}
	if builds != 2 {
		t.Fatalf("builds = %d; a foreign write must invalidate the snapshot", builds)
	}
}

func TestStrongRegionEpochConstant(t *testing.T) {
	cl := cloud.New(cloud.Config{Seed: 1})
	var gen Generation
	c := New(CloudStamp(&gen, cl))
	ctx := context.Background()
	builds := 0
	build := func(context.Context) (*prov.Graph, error) {
		builds++
		return testGraph(1), nil
	}
	if _, err := c.Graph(ctx, build); err != nil {
		t.Fatal(err)
	}
	cl.Settle()
	if _, err := c.Graph(ctx, build); err != nil {
		t.Fatal(err)
	}
	if builds != 1 {
		t.Fatalf("builds = %d; strong consistency should cache across Settle", builds)
	}
}

// TestConcurrentQueriesDuringWrites hammers the cache from query goroutines
// while a writer bumps the generation, asserting (under -race) that no
// caller ever observes a half-built graph: every returned snapshot has the
// full record count its build put in.
func TestConcurrentQueriesDuringWrites(t *testing.T) {
	var gen Generation
	c := New(genStamp(&gen))
	const graphSize = 50
	build := func(context.Context) (*prov.Graph, error) {
		// Simulate a multi-step cloud scan: the graph grows record by
		// record before being published.
		g := prov.NewGraph()
		for i := 0; i < graphSize; i++ {
			ref := prov.Ref{Object: prov.ObjectID(fmt.Sprintf("/o%d", i))}
			g.Add(prov.NewString(ref, prov.AttrType, prov.TypeFile))
		}
		return g, nil
	}
	ctx := context.Background()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // the writer
		defer wg.Done()
		for i := 0; i < 200; i++ {
			gen.Bump()
		}
		close(stop)
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() { // the queriers
			defer wg.Done()
			for {
				g, err := c.Graph(ctx, build)
				if err != nil {
					t.Errorf("Graph: %v", err)
					return
				}
				if g.Len() != graphSize {
					t.Errorf("observed half-built graph: %d subjects", g.Len())
					return
				}
				if _, err := c.Refs(ctx, "k", func(context.Context) ([]prov.Ref, error) {
					return []prov.Ref{{Object: "/r"}}, nil
				}); err != nil {
					t.Errorf("Refs: %v", err)
					return
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}
	wg.Wait()
}

func TestMapFromGraphCopies(t *testing.T) {
	g := testGraph(2)
	m := MapFromGraph(g)
	if len(m) != 2 {
		t.Fatalf("len = %d", len(m))
	}
	for ref, records := range m {
		records[0].Attr = "mutated"
		if g.Records(ref)[0].Attr == "mutated" {
			t.Fatal("MapFromGraph aliases the snapshot's records")
		}
		break
	}
}
