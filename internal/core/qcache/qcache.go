// Package qcache is the query-performance subsystem shared by the three
// architectures: a generation-stamped snapshot cache for the provenance
// graph, a generation-stamped memo for indexed query results, and
// singleflight coalescing so concurrent identical scans share one cloud
// pass.
//
// The paper concedes that querying is where the cloud architectures pay
// their price — S3-only "has to scan the whole repository" per query and
// SimpleDB "has to retrieve each item ... then lookup further ancestors"
// (§5) — but also notes that "the second phase can, of course, be executed
// from a cache". This package generalizes that observation: a repository
// that has not changed since the last scan can answer every query class
// from the cached snapshot at zero cloud ops.
//
// Invalidation is write-driven. Each store owns a Generation counter and
// bumps it whenever a write could change query results (PutBatch, Sync,
// the WAL commit daemon's SimpleDB pushes, orphan-scan deletions). Cached
// state is keyed by the Stamp observed *before* the backing scan started,
// so a write that lands mid-scan invalidates the snapshot being built: the
// write's bump makes the next query observe a newer stamp and rebuild.
//
// Under eventual consistency a write-generation counter alone is not
// enough: a scan may have been served by a stale replica, and with no
// further writes the cache would pin that staleness forever, even after
// the region converges. The Stamp therefore carries a second component,
// the consistency epoch — the region's clock quantized by its propagation
// horizon. When simulated time passes the horizon (Settle, retry waits),
// the epoch advances and the snapshot expires. Staleness served from the
// cache is thereby bounded by what the backend itself may serve, plus at
// most one propagation horizon. Strongly consistent regions have a zero
// horizon and a constant epoch, so only writes invalidate.
package qcache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"passcloud/internal/cloud"
	"passcloud/internal/cloud/billing"
	"passcloud/internal/prov"
)

// Generation is a store's write-generation counter. Stores bump it on any
// write that could change query results; bumping more often than necessary
// costs cache misses, never staleness, so stores bump unconditionally —
// including on failed batches, whose partial effects may already be
// visible.
type Generation struct {
	n atomic.Uint64
}

// Bump invalidates every snapshot taken at earlier generations.
func (g *Generation) Bump() { g.n.Add(1) }

// Load returns the current generation.
func (g *Generation) Load() uint64 { return g.n.Load() }

// Stamp identifies one cacheable repository state: a write generation plus
// the consistency epoch of the region.
type Stamp struct {
	Gen   uint64
	Epoch int64
}

// StampFunc samples the current stamp. It must be cheap and safe for
// concurrent use.
type StampFunc func() Stamp

// CloudStamp builds the standard StampFunc for a store on a simulated
// region. The generation component is the sum of two monotonic counters —
// the store's own write generation and the region's metered mutation count
// — so the cache also invalidates when a *different* client of a shared
// region writes, which the store's PutBatch bumps alone cannot see. The
// epoch component is cl's clock quantized by its propagation horizon
// (constant on strongly consistent regions).
func CloudStamp(gen *Generation, cl *cloud.Cloud) StampFunc {
	horizon := int64(cl.MaxDelay())
	return func() Stamp {
		st := Stamp{Gen: gen.Load() + regionWrites(cl)}
		if horizon > 0 {
			st.Epoch = cl.Clock.Now().UnixNano() / horizon
		}
		return st
	}
}

// mutatingOps are the metered operations (Meter "Service/Name" keys) that
// can change what a provenance query observes. SQS traffic is absent
// deliberately: WAL messages are not query-visible until the commit
// daemon's S3/SimpleDB writes, which are listed.
var mutatingOps = []string{
	billing.S3.String() + "/PUT",
	billing.S3.String() + "/COPY",
	billing.S3.String() + "/DELETE",
	billing.SimpleDB.String() + "/PutAttributes",
	billing.SimpleDB.String() + "/BatchPutAttributes",
	billing.SimpleDB.String() + "/DeleteAttributes",
	billing.SimpleDB.String() + "/DeleteDomain",
}

// regionWrites counts every mutating operation metered on the region, by
// any client — a constant-work counter read, not a meter snapshot, since
// it runs on every stamp sample including warm hits. Monotonic, and
// queries perform none of the listed ops, so a scan never invalidates
// itself.
func regionWrites(cl *cloud.Cloud) uint64 {
	return uint64(cl.Meter.OpSum(mutatingOps))
}

// WriteTracker attributes the region's metered mutations to this client:
// every write path the client owns runs under Track, and whatever the
// region meters beyond that was written by somebody else. Query planners
// use Foreign to downgrade their predictions from exact to estimate —
// their statistics catalogs only mirror this client's own writes.
//
// Attribution samples the meter around each tracked section, so mutations
// a *concurrent* foreign writer lands inside this client's write window
// are misattributed as own; the tracker is a planner heuristic, not an
// audit log.
type WriteTracker struct {
	cl  *cloud.Cloud
	own atomic.Int64
}

// NewWriteTracker builds a tracker for cl. Mutations metered before the
// tracker existed (a pre-populated shared region) count as foreign: the
// client's planner never observed them.
func NewWriteTracker(cl *cloud.Cloud) *WriteTracker {
	return &WriteTracker{cl: cl}
}

// Track runs one of this client's write sections, attributing the
// mutations it meters to the client.
func (t *WriteTracker) Track(f func() error) error {
	before := regionWrites(t.cl)
	err := f()
	t.own.Add(int64(regionWrites(t.cl) - before))
	return err
}

// Foreign reports how many of the region's metered mutations this client
// did not perform itself (clamped at zero under concurrent-window
// misattribution).
func (t *WriteTracker) Foreign() uint64 {
	total := int64(regionWrites(t.cl))
	if own := t.own.Load(); total > own {
		return uint64(total - own)
	}
	return 0
}

// Stats counts cache outcomes; tests and benchmarks read it to prove that
// repeated queries stop touching the cloud.
type Stats struct {
	// GraphHits/GraphMisses count Graph calls served from / rebuilding the
	// snapshot. RefHits/RefMisses count Refs calls likewise.
	GraphHits, GraphMisses uint64
	RefHits, RefMisses     uint64
	// Coalesced counts calls that joined another caller's in-flight build
	// instead of issuing their own cloud pass.
	Coalesced uint64
}

// graphCall is one in-flight snapshot build being shared.
type graphCall struct {
	stamp Stamp
	done  chan struct{}
	graph *prov.Graph
	err   error
}

// refCall is one in-flight result computation being shared.
type refCall struct {
	done chan struct{}
	refs []prov.Ref
	err  error
}

// Cache holds one store's cached query state. The zero value is not
// usable; construct with New. All methods are safe for concurrent use.
//
// The cached *prov.Graph is shared between callers and must be treated as
// immutable; Graph's read methods are safe for concurrent readers.
type Cache struct {
	stamp StampFunc

	mu         sync.Mutex
	graph      *prov.Graph // nil: no valid snapshot
	graphStamp Stamp
	graphBuild *graphCall // non-nil: a build is in flight

	refStamp Stamp
	refs     map[string][]prov.Ref
	refBuild map[string]*refCall

	stats Stats
}

// New builds a cache over the given stamp source.
func New(stamp StampFunc) *Cache {
	return &Cache{
		stamp:    stamp,
		refs:     make(map[string][]prov.Ref),
		refBuild: make(map[string]*refCall),
	}
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Warm reports whether a graph snapshot for the current stamp is resident —
// a pure peek (no counters move, nothing builds). Query planners use it to
// predict that a scan-backed query will cost zero cloud ops.
func (c *Cache) Warm() bool {
	now := c.stamp()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.graph != nil && c.graphStamp == now
}

// PeekGraph returns the resident snapshot when it is valid at the current
// stamp, else nil — a pure peek that never builds. The returned graph is
// shared: read-only.
func (c *Cache) PeekGraph() *prov.Graph {
	now := c.stamp()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.graph != nil && c.graphStamp == now {
		return c.graph
	}
	return nil
}

// HasRefs reports whether a memoized result for key is resident at the
// current stamp — a pure peek for query planners.
func (c *Cache) HasRefs(key string) bool {
	now := c.stamp()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.refStamp != now {
		return false
	}
	_, ok := c.refs[key]
	return ok
}

// Graph returns the provenance-graph snapshot for the current stamp,
// building it via build on a miss. Concurrent callers at the same stamp
// share one build (singleflight); a caller whose context ends while
// waiting detaches with its context's error. The returned graph is shared:
// read-only.
func (c *Cache) Graph(ctx context.Context, build func(context.Context) (*prov.Graph, error)) (*prov.Graph, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		now := c.stamp()
		c.mu.Lock()
		if c.graph != nil && c.graphStamp == now {
			c.stats.GraphHits++
			g := c.graph
			c.mu.Unlock()
			return g, nil
		}
		if fc := c.graphBuild; fc != nil && fc.stamp == now {
			c.stats.Coalesced++
			c.mu.Unlock()
			g, err, retry := waitShared(ctx, fc.done, func() (*prov.Graph, error) { return fc.graph, fc.err })
			if !retry {
				return g, err
			}
			continue // the leader was cancelled; try to become leader
		}
		// Become the leader for this stamp. The stamp was sampled before
		// the scan starts, so a write landing mid-scan (which bumps the
		// generation) makes this snapshot unreachable for later queries.
		fc := &graphCall{stamp: now, done: make(chan struct{})}
		c.graphBuild = fc
		c.stats.GraphMisses++
		c.mu.Unlock()

		g, err := build(ctx)

		// Install only while the built snapshot is still current: if a
		// write (or a newer leader) landed during the build, caching under
		// the old stamp would at best be dead weight and at worst clobber
		// a fresher snapshot installed by a concurrent leader.
		fresh := c.stamp()
		c.mu.Lock()
		fc.graph, fc.err = g, err
		if c.graphBuild == fc {
			c.graphBuild = nil
		}
		if err == nil && fresh == now {
			c.graph, c.graphStamp = g, now
		}
		c.mu.Unlock()
		close(fc.done)
		return g, err
	}
}

// Refs memoizes one indexed query's result under key for the current
// stamp, computing it via compute on a miss. Concurrent callers with the
// same key and stamp share one computation. The returned slice is shared:
// callers must not mutate it (CopyRefs defends the public API surface).
func (c *Cache) Refs(ctx context.Context, key string, compute func(context.Context) ([]prov.Ref, error)) ([]prov.Ref, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		now := c.stamp()
		c.mu.Lock()
		if c.refStamp != now {
			// A write (or epoch advance) landed: drop the whole memo. The
			// in-flight builds keyed under the old stamp finish but are not
			// recorded.
			c.refStamp = now
			c.refs = make(map[string][]prov.Ref)
			c.refBuild = make(map[string]*refCall)
		}
		if refs, ok := c.refs[key]; ok {
			c.stats.RefHits++
			c.mu.Unlock()
			return refs, nil
		}
		if fc, ok := c.refBuild[key]; ok {
			c.stats.Coalesced++
			c.mu.Unlock()
			refs, err, retry := waitShared(ctx, fc.done, func() ([]prov.Ref, error) { return fc.refs, fc.err })
			if !retry {
				return refs, err
			}
			continue
		}
		fc := &refCall{done: make(chan struct{})}
		c.refBuild[key] = fc
		c.stats.RefMisses++
		c.mu.Unlock()

		refs, err := compute(ctx)

		c.mu.Lock()
		fc.refs, fc.err = refs, err
		// Record only if the memo generation this build was registered
		// under is still current (the map is swapped wholesale on
		// invalidation, so a stale build simply finds itself evicted).
		if c.refBuild[key] == fc {
			delete(c.refBuild, key)
			if err == nil {
				c.refs[key] = refs
			}
		}
		c.mu.Unlock()
		close(fc.done)
		return refs, err
	}
}

// waitShared waits for a shared in-flight call, honoring the waiter's own
// context. retry is true when the leader failed with a cancellation that
// does not apply to this caller, who should attempt the work itself.
func waitShared[T any](ctx context.Context, done <-chan struct{}, result func() (T, error)) (v T, err error, retry bool) {
	select {
	case <-done:
		v, err = result()
		if err == nil {
			return v, nil, false
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The leader's context died, not ours: take over.
			var zero T
			return zero, nil, true
		}
		return v, err, false
	case <-ctx.Done():
		var zero T
		return zero, ctx.Err(), false
	}
}

// CopyRefs returns a defensive copy of a shared result slice for handing
// across an API boundary.
func CopyRefs(refs []prov.Ref) []prov.Ref {
	if refs == nil {
		return nil
	}
	return append([]prov.Ref(nil), refs...)
}

// MapFromGraph materializes an AllProvenance-shaped map from a shared
// snapshot. Record slices are copied so callers may mutate the result
// without corrupting the cache.
func MapFromGraph(g *prov.Graph) map[prov.Ref][]prov.Record {
	out := make(map[prov.Ref][]prov.Record, g.Len())
	for _, subject := range g.Subjects() {
		out[subject] = append([]prov.Record(nil), g.Records(subject)...)
	}
	return out
}
