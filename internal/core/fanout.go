package core

import (
	"context"
	"sync"
	"sync/atomic"
)

// RunLimited runs fn(0) … fn(n-1) with at most conc calls in flight,
// returning the first error. After an error (or once ctx is done), tasks
// that have not started are skipped; tasks already running finish their
// current operation. fn receives the task index only — it should check ctx
// itself at its own cancellation points, which keeps the caller's context
// semantics (including test doubles that override Err) intact.
//
// conc <= 1 degenerates to a sequential loop with the same early-stop
// behavior. This is the one bounded-fanout implementation shared by the
// write path's concurrent PUTs, the parallel repository scan, and the
// chunked ancestry queries.
func RunLimited(ctx context.Context, n, conc int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if conc <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		wg       sync.WaitGroup
		stop     atomic.Bool
		errMu    sync.Mutex
		firstErr error
	)
	record := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		stop.Store(true)
	}
	sem := make(chan struct{}, conc)
	for i := 0; i < n; i++ {
		if stop.Load() {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			if stop.Load() {
				return
			}
			if err := ctx.Err(); err != nil {
				record(err)
				return
			}
			if err := fn(i); err != nil {
				record(err)
			}
		}()
	}
	wg.Wait()
	return firstErr
}
