package core

import (
	"reflect"
	"testing"

	"passcloud/internal/prov"
)

func evalRef(obj string, v int) prov.Ref {
	return prov.Ref{Object: prov.ObjectID(obj), Version: prov.Version(v)}
}

// evalGraph builds the reference topology:
//
//	proc (name=blast, process)
//	  └─ out1 (file)  ── child1 (file) ── grand (file)
//	/x:0 ── /x:1 (version chain)
func evalGraph() *prov.Graph {
	g := prov.NewGraph()
	proc, out1 := evalRef("proc/1/blast", 0), evalRef("/out1", 0)
	child1, grand := evalRef("/child1", 0), evalRef("/grand", 0)
	x0, x1 := evalRef("/x", 0), evalRef("/x", 1)
	g.AddAll([]prov.Record{
		prov.NewString(proc, prov.AttrType, prov.TypeProcess),
		prov.NewString(proc, prov.AttrName, "blast"),
		prov.NewString(out1, prov.AttrType, prov.TypeFile),
		prov.NewInput(out1, proc),
		prov.NewString(child1, prov.AttrType, prov.TypeFile),
		prov.NewInput(child1, out1),
		prov.NewString(grand, prov.AttrType, prov.TypeFile),
		prov.NewInput(grand, child1),
		prov.NewString(x0, prov.AttrType, prov.TypeFile),
		prov.NewString(x1, prov.AttrType, prov.TypeFile),
		prov.NewInput(x1, x0),
	})
	return g
}

func refsOf(entries []Entry) []prov.Ref {
	out := make([]prov.Ref, len(entries))
	for i, e := range entries {
		out[i] = e.Ref
	}
	return out
}

func TestEvalQueryShapes(t *testing.T) {
	g := evalGraph()
	cases := []struct {
		name string
		q    prov.Query
		want []prov.Ref
	}{
		{"q2", prov.QOutputsOf("blast"), []prov.Ref{evalRef("/out1", 0)}},
		{"q3", prov.QDescendantsOfOutputs("blast"),
			[]prov.Ref{evalRef("/child1", 0), evalRef("/grand", 0)}},
		{"q3 depth1", prov.Query{Tool: "blast", Type: prov.TypeFile,
			Direction: prov.TraverseDescendants, Depth: 1},
			[]prov.Ref{evalRef("/child1", 0)}},
		{"dependents includes later versions", prov.QDependents("/x"),
			[]prov.Ref{evalRef("/x", 1)}},
		{"descendants exclude seeds by default",
			prov.Query{RefPrefix: "/x:", Direction: prov.TraverseDescendants, Depth: 1},
			nil},
		{"ancestors", prov.QAncestors(evalRef("/grand", 0)),
			[]prov.Ref{evalRef("/child1", 0), evalRef("/out1", 0), evalRef("proc/1/blast", 0)}},
		{"ancestors depth1", prov.Query{Refs: []prov.Ref{evalRef("/grand", 0)},
			Direction: prov.TraverseAncestors, Depth: 1},
			[]prov.Ref{evalRef("/child1", 0)}},
		{"attr filter", prov.Query{Type: prov.TypeProcess},
			[]prov.Ref{evalRef("proc/1/blast", 0)}},
		{"prefix", prov.Query{RefPrefix: "/x"},
			[]prov.Ref{evalRef("/x", 0), evalRef("/x", 1)}},
		{"pinned refs keep unknown", prov.Query{Refs: []prov.Ref{evalRef("/ghost", 9)}},
			[]prov.Ref{evalRef("/ghost", 9)}},
		{"pinned refs with filter drop unknown",
			prov.Query{Refs: []prov.Ref{evalRef("/ghost", 9)}, Type: prov.TypeFile},
			nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := EvalQueryRefs(g, tc.q)
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("EvalQueryRefs(%+v) = %v, want %v", tc.q, got, tc.want)
			}
		})
	}
}

func TestEvalQueryProjection(t *testing.T) {
	g := evalGraph()
	full := EvalQuery(g, prov.Query{Type: prov.TypeProcess, Projection: prov.ProjectFull})
	if len(full) != 1 || len(full[0].Records) != 2 {
		t.Fatalf("full projection = %+v", full)
	}
	refs := EvalQuery(g, prov.Query{Type: prov.TypeProcess, Projection: prov.ProjectRefs})
	if len(refs) != 1 || refs[0].Records != nil {
		t.Fatalf("refs projection = %+v", refs)
	}
}

func TestEvalQueryIncludeSeeds(t *testing.T) {
	g := evalGraph()
	// /x:1 is both a seed (matches the prefix) and a descendant of /x:0.
	q := prov.Query{RefPrefix: "/x:", Direction: prov.TraverseDescendants, Depth: 1, IncludeSeeds: true}
	got := EvalQueryRefs(g, q)
	if !reflect.DeepEqual(got, []prov.Ref{evalRef("/x", 1)}) {
		t.Fatalf("IncludeSeeds = %v", got)
	}
}

// TestEvalQueryEdgeOnlySeeds: a descendants traversal must also seed refs
// that exist only as input edges. On S3-only an overwrite erases the
// superseded version's records from the scan graph, leaving the version
// visible solely through its consumers' input records — its dependents
// must still be found, as SimpleDB's starts-with-on-input plan does.
func TestEvalQueryEdgeOnlySeeds(t *testing.T) {
	g := prov.NewGraph()
	proc := evalRef("proc/1/analyze", 0)
	v0, v1 := evalRef("/data", 0), evalRef("/data", 1)
	g.AddAll([]prov.Record{
		// /data:0 itself has no records: its metadata was overwritten.
		prov.NewString(proc, prov.AttrType, prov.TypeProcess),
		prov.NewInput(proc, v0),
		prov.NewString(v1, prov.AttrType, prov.TypeFile),
	})

	got := EvalQueryRefs(g, prov.QDependents("/data"))
	if !reflect.DeepEqual(got, []prov.Ref{proc}) {
		t.Fatalf("dependents over edge-only seed = %v, want [%v]", got, proc)
	}
	// Record-bearing filters still exclude edge-only refs: nothing asserts
	// attributes about them.
	typed := prov.Query{RefPrefix: "/data:", Type: prov.TypeFile,
		Direction: prov.TraverseDescendants, Depth: 1, IncludeSeeds: true}
	if got := EvalQueryRefs(g, typed); len(got) != 0 {
		t.Fatalf("typed filter matched an edge-only ref: %v", got)
	}
}

func TestVerbHelpersCompile(t *testing.T) {
	// The deprecated verbs must compile to descriptors that EvalQuery
	// answers identically to the legacy graph algorithms.
	g := evalGraph()
	q3 := EvalQueryRefs(g, prov.QDescendantsOfOutputs("blast"))
	legacy := map[prov.Ref]bool{}
	for _, out := range g.FindByAttr(prov.AttrName, "blast") {
		for _, c := range g.Children(out) {
			for _, d := range append(g.Descendants(c), c) {
				legacy[d] = true
			}
		}
	}
	// legacy holds outputs' descendants plus the outputs; drop outputs.
	for _, out := range q3 {
		if !legacy[out] {
			t.Fatalf("descendant %v not in legacy closure", out)
		}
	}
}
